// Streaming: the daily-operation story (§I, §V-B) run the way a production
// deployment would — as a continuous event stream instead of one batch per
// day. A four-day world with persistent and agile campaigns is replayed
// event-at-a-time through the internal/stream engine with one-day tumbling
// windows: the engine rotates windows, detects each sealed window on a
// worker pool, and emits campaign lineage deltas (appear / persist /
// rotate) as each window closes. The same days are then run through the
// classic batch Detector + tracker loop to show the two paths agree
// exactly.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"os/signal"
	"syscall"
	"time"

	"smash/internal/core"
	"smash/internal/stream"
	"smash/internal/synth"
	"smash/internal/trace"
	"smash/internal/tracker"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	world, err := synth.Generate(synth.Config{
		Name:          "streaming",
		Seed:          21,
		Days:          4,
		Clients:       350,
		BenignServers: 1000,
		MeanRequests:  15,
	})
	if err != nil {
		return err
	}
	detOpts := []core.Option{
		core.WithSeed(1),
		core.WithWhois(world.Whois),
		core.WithProber(world.Prober),
	}

	// The stream source: all four days concatenated in arrival order, as a
	// TSV replay or live feed would deliver them.
	var events []trace.Request
	for _, day := range world.Days {
		events = append(events, day.Requests...)
	}

	eng, err := stream.New(stream.Config{
		Name:     "streaming",
		Window:   24 * time.Hour,
		Workers:  4,
		Detector: detOpts,
	})
	if err != nil {
		return err
	}
	// The run context makes ^C a hard shutdown: ingestion stops and
	// in-flight window detections abort at their next stage boundary.
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()

	fmt.Println("streaming 4 days through 1-day tumbling windows:")
	for w := range eng.StartContext(ctx, &stream.SliceSource{Requests: events}) {
		fmt.Println(w.Render())
		for i := range w.Deltas {
			fmt.Println("  " + w.Deltas[i].Render())
		}
	}
	if err := eng.Err(); err != nil {
		return err
	}
	stats := eng.Stats()
	fmt.Printf("\ningested %d events into %d windows\n", stats.Events, stats.Windows)
	fmt.Print(eng.Tracker().Summary())

	// The proof of equivalence: the batch loop over the same days grows
	// identical lineages.
	batch := tracker.New()
	det := core.New(detOpts...)
	for _, day := range world.Days {
		report, err := det.Run(day)
		if err != nil {
			return err
		}
		batch.Observe(report)
	}
	streamed, batched := eng.Tracker().Lineages(), batch.Lineages()
	if len(streamed) != len(batched) {
		return fmt.Errorf("stream/batch divergence: %d vs %d lineages", len(streamed), len(batched))
	}
	for i := range streamed {
		if streamed[i].Render() != batched[i].Render() {
			return fmt.Errorf("lineage %d diverges:\n  stream: %s\n  batch:  %s",
				i, streamed[i].Render(), batched[i].Render())
		}
	}
	fmt.Printf("\nbatch detector + tracker over the same days: %d identical lineages ✓\n", len(batched))
	return nil
}
