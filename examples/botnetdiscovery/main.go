// Botnet discovery: the communication-activity scenario of the paper's case
// studies. The example plants Bagle-style (two-tier), Sality-style
// (compromised downloaders) and Zeus-style (DGA, zero-day) botnets, runs
// SMASH, and contrasts what the unsupervised pipeline recovers with what
// the signature IDS snapshots knew — reproducing the shapes of Tables VII,
// VIII and X.
//
//	go run ./examples/botnetdiscovery
package main

import (
	"fmt"
	"log"

	"smash/internal/eval"
	"smash/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	env, err := eval.NewEnvFromConfig(synth.Config{
		Name:          "botnets",
		Seed:          7,
		Clients:       400,
		BenignServers: 1200,
		MeanRequests:  20,
	})
	if err != nil {
		return err
	}

	fmt.Println("=== Communication-activity campaigns (botnet infrastructure) ===")
	for _, name := range []string{"bagle", "sality", "zeus"} {
		cs, err := eval.BuildCaseStudy(env, name)
		if err != nil {
			return err
		}
		fmt.Println(cs.Render())
	}

	// The zero-day claim (§V-A2): Zeus has zero 2012-signature coverage yet
	// SMASH recovers the pool without any signatures at all.
	zeus, err := eval.BuildCaseStudy(env, "zeus")
	if err != nil {
		return err
	}
	fmt.Printf("zero-day check: zeus IDS2012=%d IDS2013=%d SMASH=%d/%d\n",
		zeus.IDS2012, zeus.IDS2013, zeus.Found, zeus.Active)
	if zeus.IDS2012 == 0 && zeus.Found > 0 {
		fmt.Println("SMASH detected the campaign before any 2012 signature existed — zero-day discovery")
	}

	// The holistic-view claim (§V-D1): the two Bagle tiers (download +
	// C&C) merge into one campaign through the shared bot population.
	bagle, err := eval.BuildCaseStudy(env, "bagle")
	if err != nil {
		return err
	}
	cc, dl := 0, 0
	for _, row := range bagle.Rows {
		switch row.Category {
		case string(synth.CatC2):
			cc++
		case string(synth.CatDownload):
			dl++
		}
	}
	fmt.Printf("holistic view: the merged Bagle campaign spans %d C&C and %d download servers\n", cc, dl)
	return nil
}
