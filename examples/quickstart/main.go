// Quickstart: generate a small synthetic ISP day, run the SMASH pipeline
// over it through the staged core.Pipeline API — with an Observer printing
// per-stage timings — and print the inferred malicious campaigns.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"smash/internal/core"
	"smash/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A small world: ~300 clients browsing ~800 benign sites, with the
	// default campaign mix (Bagle, Sality, Zeus DGA, domain flux, ZmEu
	// scanning, iframe injection, ...) injected on top.
	world, err := synth.Generate(synth.Config{
		Name:          "quickstart",
		Seed:          1,
		Clients:       300,
		BenignServers: 800,
		MeanRequests:  20,
	})
	if err != nil {
		return err
	}

	// The pipeline mirrors Fig. 2 of the paper in five first-class stages:
	// preprocessing, per-dimension ASH mining (fanned out across cores),
	// correlation, pruning, campaign inference. The whois registry enables
	// the whois dimension; the prober answers the pruning stage's
	// redirection/liveness questions from the synthetic topology. The
	// observer prints each stage's wall-clock time as it finishes, and the
	// context would let us abort mid-run (^C handling, deadlines).
	pipeline := core.NewPipeline(
		core.WithSeed(1),
		core.WithWhois(world.Whois),
		core.WithProber(world.Prober),
		core.WithThreshold(0.8), // the paper's operating point
		core.WithObserver(&core.LogObserver{W: os.Stderr, Prefix: "quickstart: "}),
	)
	report, err := pipeline.RunTrace(context.Background(), world.Trace())
	if err != nil {
		return err
	}

	fmt.Println(report.TraceStats.Render())
	fmt.Println(report.Preprocess.Render())
	fmt.Printf("mined %d main herds and %v secondary herds\n\n",
		report.MainHerds, report.SecondaryHerds)

	fmt.Printf("inferred %d multi-client campaigns:\n", len(report.Campaigns))
	for _, c := range report.Campaigns {
		fmt.Println(" ", c.Render())
	}
	fmt.Printf("\ninferred %d single-client campaigns:\n", len(report.SingleClientCampaigns))
	for _, c := range report.SingleClientCampaigns {
		fmt.Println(" ", c.Render())
	}

	// Check against the world's ground truth.
	detected := make(map[string]bool)
	for _, c := range report.AllCampaigns() {
		for _, s := range c.Servers {
			detected[s] = true
		}
	}
	truth := world.Truth.MaliciousServers()
	found := 0
	for _, s := range truth {
		if detected[s] {
			found++
		}
	}
	fmt.Printf("\nground truth: detected %d of %d planted campaign servers\n", found, len(truth))
	return nil
}
