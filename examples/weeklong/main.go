// Weeklong: the multi-day evolution study (§V-B). A seven-day world is
// generated with persistent campaigns (stable server pools), agile
// campaigns (daily domain rotation with the same bots) and a campaign that
// only appears mid-week. Running SMASH day by day reproduces the shapes of
// Tables V and VI and Figure 7: most detected servers belong to agile
// campaigns, confirming that malware rotates domains to evade blocking.
//
//	go run ./examples/weeklong
package main

import (
	"fmt"
	"log"

	"smash/internal/eval"
	"smash/internal/synth"
	"smash/internal/tracker"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	env, err := eval.NewEnvFromConfig(synth.Config{
		Name:          "Data2012week",
		Seed:          12,
		Days:          7,
		Clients:       350,
		BenignServers: 1000,
		MeanRequests:  15,
	})
	if err != nil {
		return err
	}

	tableV, err := eval.TableV(env)
	if err != nil {
		return err
	}
	fmt.Println(tableV.Render())

	tableVI, err := eval.TableVI(env)
	if err != nil {
		return err
	}
	fmt.Println(tableVI.Render())

	fig7, err := eval.BuildFigure7(env)
	if err != nil {
		return err
	}
	fmt.Println(fig7.Render())

	// The paper's observation: most servers belong to agile campaigns
	// (new servers contacted by already-known infected clients).
	agile, total := 0, 0
	for _, d := range fig7.Days[1:] {
		agile += d.NewServerOldClient
		total += d.OldServers + d.NewServerOldClient + d.NewServerNewClient
	}
	if total > 0 {
		fmt.Printf("across days 2-7, %.0f%% of detected servers belong to agile campaigns\n\n",
			100*float64(agile)/float64(total))
	}

	// Daily operation: the tracker links each day's campaigns into
	// cross-day lineages by client overlap, so an agile domain-rotating
	// operation stays one identity all week.
	tk := tracker.New()
	for day := 0; day < len(env.World.Days); day++ {
		report, err := env.Run(day, 0.8, 1.0)
		if err != nil {
			return err
		}
		tk.Observe(report)
	}
	fmt.Print(tk.Summary())
	return nil
}
