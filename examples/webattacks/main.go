// Web attacks: the attacking-activity scenario. Bots scan benign servers
// for a vulnerable phpMyAdmin setup.php (ZmEu) and upload a webshell to
// WordPress sites (iframe injection). The targeted benign servers form
// malicious attacking campaigns (Fig. 1b of the paper); SMASH recovers the
// victim herds while the IDS labels only a handful — the shape of Table IX,
// where SMASH found 600 injected servers and the IDS only four.
//
//	go run ./examples/webattacks
package main

import (
	"fmt"
	"log"

	"smash/internal/campaign"
	"smash/internal/eval"
	"smash/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	env, err := eval.NewEnvFromConfig(synth.Config{
		Name:          "webattacks",
		Seed:          3,
		Clients:       400,
		BenignServers: 1200,
		MeanRequests:  20,
	})
	if err != nil {
		return err
	}

	fmt.Println("=== Attacking-activity campaigns (benign victims) ===")
	for _, name := range []string{"zmeu-scan", "iframe-inject"} {
		cs, err := eval.BuildCaseStudy(env, name)
		if err != nil {
			return err
		}
		fmt.Println(cs.Render())
		ratio := "n/a"
		if cs.IDS2013 > 0 {
			ratio = fmt.Sprintf("%.0fx", float64(cs.Found)/float64(cs.IDS2013))
		}
		fmt.Printf("SMASH/IDS coverage ratio for %s: %d vs %d (%s)\n\n",
			name, cs.Found, cs.IDS2013, ratio)
	}

	// Attack campaigns are classified by their error-dominated traffic:
	// the probed files mostly do not exist on the victims.
	report, err := env.Run(0, 0.8, 1.0)
	if err != nil {
		return err
	}
	attacking := 0
	for _, c := range report.AllCampaigns() {
		if c.Kind == campaign.KindAttacking {
			attacking++
		}
	}
	fmt.Printf("campaign classification: %d of %d inferred campaigns look like attacking activity\n",
		attacking, len(report.AllCampaigns()))
	return nil
}
