// Benchmarks regenerating every experiment of the paper (see DESIGN.md's
// per-experiment index) plus microbenchmarks for the performance substrate
// and ablation benchmarks for the design choices.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// World generation is amortized across iterations (sync.Once); each
// iteration re-runs the pipeline/evaluation under measurement. Ablation
// benchmarks additionally report recall/fp metrics via b.ReportMetric.
package smash_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"smash/internal/campaign"
	"smash/internal/cluster"
	"smash/internal/core"
	"smash/internal/eval"
	"smash/internal/graph"
	"smash/internal/obs"
	"smash/internal/similarity"
	"smash/internal/sparse"
	"smash/internal/stats"
	"smash/internal/store"
	"smash/internal/stream"
	"smash/internal/synth"
	"smash/internal/trace"
	"smash/internal/wire"
)

// benchScale keeps bench iterations around a second; raise for full-scale
// reproduction runs.
const (
	benchClients = 500
	benchServers = 1500
	benchSeed    = 42
)

var (
	benchOnce sync.Once
	dayWorld  *synth.World
	day2World *synth.World
	weekWorld *synth.World
	benchErr  error
)

func benchWorlds(b *testing.B) (*synth.World, *synth.World, *synth.World) {
	b.Helper()
	benchOnce.Do(func() {
		mk := func(name string, seed int64, days int) (*synth.World, error) {
			return synth.Generate(synth.Config{
				Name: name, Seed: seed, Days: days,
				Clients: benchClients, BenignServers: benchServers, MeanRequests: 25,
			})
		}
		if dayWorld, benchErr = mk("Data2011day", benchSeed, 1); benchErr != nil {
			return
		}
		if day2World, benchErr = mk("Data2012day", benchSeed+1, 1); benchErr != nil {
			return
		}
		weekWorld, benchErr = mk("Data2012week", benchSeed+2, 7)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return dayWorld, day2World, weekWorld
}

// --- Table and figure reproduction benches -------------------------------

func BenchmarkTableI(b *testing.B) {
	w1, w2, wk := benchWorlds(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := eval.TableI(eval.NewEnvFromWorld(w1), eval.NewEnvFromWorld(w2), eval.NewEnvFromWorld(wk))
		if out == "" {
			b.Fatal("empty table")
		}
	}
}

func benchTable(b *testing.B, fn func(e *eval.Env) (*eval.Table, error)) {
	w1, _, _ := benchWorlds(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := fn(eval.NewEnvFromWorld(w1))
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	benchTable(b, func(e *eval.Env) (*eval.Table, error) { return eval.TableII(e) })
}
func BenchmarkTableIII(b *testing.B) {
	benchTable(b, func(e *eval.Env) (*eval.Table, error) { return eval.TableIII(e) })
}
func BenchmarkTableIV(b *testing.B) { benchTable(b, eval.TableIV) }
func BenchmarkTableXI(b *testing.B) {
	benchTable(b, func(e *eval.Env) (*eval.Table, error) { return eval.TableXI(e) })
}
func BenchmarkTableXII(b *testing.B) {
	benchTable(b, func(e *eval.Env) (*eval.Table, error) { return eval.TableXII(e) })
}

func BenchmarkTableV(b *testing.B) {
	_, _, wk := benchWorlds(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := eval.TableV(eval.NewEnvFromWorld(wk))
		if err != nil {
			b.Fatal(err)
		}
		_ = t
	}
}

func BenchmarkTableVI(b *testing.B) {
	_, _, wk := benchWorlds(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eval.TableVI(eval.NewEnvFromWorld(wk)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	w1, _, _ := benchWorlds(b)
	for i := 0; i < b.N; i++ {
		if _, err := eval.BuildFigure6(eval.NewEnvFromWorld(w1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	_, _, wk := benchWorlds(b)
	for i := 0; i < b.N; i++ {
		if _, err := eval.BuildFigure7(eval.NewEnvFromWorld(wk)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	w1, _, _ := benchWorlds(b)
	for i := 0; i < b.N; i++ {
		if _, err := eval.BuildFigure8(eval.NewEnvFromWorld(w1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	w1, _, _ := benchWorlds(b)
	for i := 0; i < b.N; i++ {
		if _, err := eval.BuildFigure9(eval.NewEnvFromWorld(w1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	w1, _, _ := benchWorlds(b)
	for i := 0; i < b.N; i++ {
		if _, err := eval.BuildFigure10(eval.NewEnvFromWorld(w1)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCase(b *testing.B, name string) {
	w1, _, _ := benchWorlds(b)
	for i := 0; i < b.N; i++ {
		cs, err := eval.BuildCaseStudy(eval.NewEnvFromWorld(w1), name)
		if err != nil {
			b.Fatal(err)
		}
		if cs.Active == 0 {
			b.Fatalf("campaign %s inactive", name)
		}
	}
}

func BenchmarkCaseBagle(b *testing.B)  { benchCase(b, "bagle") }
func BenchmarkCaseSality(b *testing.B) { benchCase(b, "sality") }
func BenchmarkCaseIframe(b *testing.B) { benchCase(b, "iframe-inject") }
func BenchmarkCaseZeus(b *testing.B)   { benchCase(b, "zeus") }

// --- End-to-end pipeline scaling ------------------------------------------

func BenchmarkPipeline(b *testing.B) {
	for _, size := range []struct {
		name             string
		clients, servers int
	}{
		{"small", 250, 800},
		{"medium", 500, 1500},
		{"large", 1000, 3500},
	} {
		b.Run(size.name, func(b *testing.B) {
			world, err := synth.Generate(synth.Config{
				Name: "scale", Seed: benchSeed,
				Clients: size.clients, BenignServers: size.servers, MeanRequests: 25,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				det := core.New(core.WithSeed(1), core.WithWhois(world.Whois), core.WithProber(world.Prober))
				if _, err := det.Run(world.Trace()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipelineParallelMining compares sequential dimension mining
// (1 worker) against the full fan-out (NumCPU workers) on one day trace —
// the speedup the staged pipeline's WithMiningWorkers buys. Reports are
// identical for any worker count (see TestParallelMiningEquivalence).
func BenchmarkPipelineParallelMining(b *testing.B) {
	world, _, _ := benchWorlds(b)
	tr := world.Trace()
	raw, stats := trace.BuildIndex(tr), tr.ComputeStats()
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			det := core.New(
				core.WithSeed(1),
				core.WithWhois(world.Whois),
				core.WithProber(world.Prober),
				core.WithMiningWorkers(workers),
			)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := det.RunIndex(raw, stats); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamThroughput measures sustained events/sec through the full
// streaming path: bounded ingestion, sharded incremental indexing, window
// sealing, and windowed detection on a worker pool. The week world is
// replayed as one continuous stream, once as 1-day tumbling windows and
// once as sliding windows (24h window, 6h stride) where each event belongs
// to four overlapping windows — the configuration that exercises the
// stride-fragment ring.
func BenchmarkStreamThroughput(b *testing.B) {
	_, _, wk := benchWorlds(b)
	var events []trace.Request
	for _, day := range wk.Days {
		events = append(events, day.Requests...)
	}
	for _, mode := range []struct {
		name    string
		stride  time.Duration
		minWins int
	}{
		{"tumbling", 0, len(wk.Days)},
		{"sliding", 6 * time.Hour, len(wk.Days)},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng, err := stream.New(stream.Config{
					Window:  24 * time.Hour,
					Stride:  mode.stride,
					Workers: runtime.GOMAXPROCS(0),
					Detector: []core.Option{
						core.WithSeed(1), core.WithWhois(wk.Whois), core.WithProber(wk.Prober),
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				windows := 0
				for range eng.Start(&stream.SliceSource{Requests: events}) {
					windows++
				}
				if err := eng.Err(); err != nil {
					b.Fatal(err)
				}
				if windows < mode.minWins {
					b.Fatalf("windows = %d, want >= %d", windows, mode.minWins)
				}
			}
			b.StopTimer()
			perSec := float64(b.N) * float64(len(events)) / b.Elapsed().Seconds()
			b.ReportMetric(perSec, "events/s")
		})
	}
}

// BenchmarkObsOverhead is BenchmarkStreamThroughput/tumbling with the full
// observability plane wired in — metrics registry, window tracer and a
// discard slog logger — so diffing the two events/s figures bounds the
// instrumentation cost on the hot streaming path.
func BenchmarkObsOverhead(b *testing.B) {
	_, _, wk := benchWorlds(b)
	var events []trace.Request
	for _, day := range wk.Days {
		events = append(events, day.Requests...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := obs.NewRegistry()
		eng, err := stream.New(stream.Config{
			Window:  24 * time.Hour,
			Workers: runtime.GOMAXPROCS(0),
			Detector: []core.Option{
				core.WithSeed(1), core.WithWhois(wk.Whois), core.WithProber(wk.Prober),
			},
			Metrics: reg,
			Tracer:  obs.NewTracer(0),
			Logger:  obs.Discard(),
		})
		if err != nil {
			b.Fatal(err)
		}
		windows := 0
		for range eng.Start(&stream.SliceSource{Requests: events}) {
			windows++
		}
		if err := eng.Err(); err != nil {
			b.Fatal(err)
		}
		if windows < len(wk.Days) {
			b.Fatalf("windows = %d, want >= %d", windows, len(wk.Days))
		}
	}
	b.StopTimer()
	perSec := float64(b.N) * float64(len(events)) / b.Elapsed().Seconds()
	b.ReportMetric(perSec, "events/s")
}

// --- Durability: campaign-state store append and restore ------------------

// benchWindowResult fabricates one window's result with churning campaign
// membership, the shape the store persists per window.
func benchWindowResult(seq int) *stream.WindowResult {
	report := &core.Report{}
	for c := 0; c < 4; c++ {
		camp := campaign.Campaign{ID: c, Kind: campaign.KindCommunication}
		for s := 0; s < 12; s++ {
			camp.Servers = append(camp.Servers, fmt.Sprintf("srv-%d-%d.test", c, (seq+s)%40))
		}
		for cl := 0; cl < 25; cl++ {
			camp.Clients = append(camp.Clients, fmt.Sprintf("client-%d-%d", c, cl))
		}
		report.Campaigns = append(report.Campaigns, camp)
	}
	base := time.Date(2020, 9, 13, 0, 0, 0, 0, time.UTC)
	return &stream.WindowResult{
		Seq:      seq,
		Start:    base.AddDate(0, 0, seq),
		End:      base.AddDate(0, 0, seq+1),
		Requests: 5000,
		Report:   report,
	}
}

// BenchmarkStoreAppend measures the per-window durability cost of the
// campaign-state store — mirror apply only (memory), plus WAL append, plus
// fsync — including the periodic snapshot+compaction at the default
// cadence.
func BenchmarkStoreAppend(b *testing.B) {
	for _, mode := range []struct {
		name string
		cfg  func(b *testing.B) store.Config
	}{
		{"memory", func(b *testing.B) store.Config { return store.Config{} }},
		{"wal", func(b *testing.B) store.Config { return store.Config{Dir: b.TempDir()} }},
		{"wal-fsync", func(b *testing.B) store.Config { return store.Config{Dir: b.TempDir(), Sync: true} }},
	} {
		b.Run(mode.name, func(b *testing.B) {
			st, err := store.Open(mode.cfg(b))
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.Consume(benchWindowResult(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHistorySink measures the analytics history log's per-window
// cost — the extra tmp+rename file write Consume performs after the WAL
// append — and what retention GC adds (and saves) when the log is kept
// bounded. "unbounded" grows one file per window; "retain64"/"retain8"
// cap the log, deleting the oldest file(s) as new windows land.
func BenchmarkHistorySink(b *testing.B) {
	for _, mode := range []struct {
		name   string
		retain int
	}{
		{"unbounded", 0},
		{"retain64", 64},
		{"retain8", 8},
	} {
		b.Run(mode.name, func(b *testing.B) {
			st, err := store.Open(store.Config{Dir: b.TempDir(), RetainWindows: mode.retain})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.Consume(benchWindowResult(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if hs := st.HistoryStats(); mode.retain > 0 && hs.Windows > mode.retain {
				b.Fatalf("retention failed: %d windows retained", hs.Windows)
			}
		})
	}
}

// BenchmarkRestore measures recovery: reopening a state directory holding
// benchRestoreWindows windows, either as a pure WAL replay (the kill -9
// path) or from a clean snapshot (the graceful-shutdown path).
func BenchmarkRestore(b *testing.B) {
	const benchRestoreWindows = 256
	for _, mode := range []struct {
		name  string
		clean bool // Close before reopening: snapshot, empty WAL
	}{
		{"wal-replay", false},
		{"snapshot", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := store.Config{Dir: b.TempDir(), SnapshotEvery: 1 << 30}
				st, err := store.Open(cfg)
				if err != nil {
					b.Fatal(err)
				}
				for w := 0; w < benchRestoreWindows; w++ {
					if err := st.Consume(benchWindowResult(w)); err != nil {
						b.Fatal(err)
					}
				}
				if mode.clean {
					if err := st.Close(); err != nil {
						b.Fatal(err)
					}
				} else {
					st.Abandon() // the kill -9 analogue
				}
				b.StartTimer()

				st2, err := store.Open(cfg)
				if err != nil {
					b.Fatal(err)
				}
				tk := st2.Restore()
				b.StopTimer()
				if tk.Day() != benchRestoreWindows {
					b.Fatalf("restored %d windows, want %d", tk.Day(), benchRestoreWindows)
				}
				if err := st2.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

// --- Overhead substrate: sparse product vs dense N² (§VI Overhead) --------

// denseClientPairs is the naive O(N²) baseline the paper's overhead section
// worries about: every server pair's client-set intersection.
func denseClientPairs(idx *trace.Index, minSim float64) int {
	keys := idx.ServerKeys()
	edges := 0
	for i := 0; i < len(keys); i++ {
		ci := idx.Servers[keys[i]].Clients
		for j := i + 1; j < len(keys); j++ {
			cj := idx.Servers[keys[j]].Clients
			inter := 0
			small, big := ci, cj
			if len(cj) < len(ci) {
				small, big = cj, ci
			}
			for c := range small {
				if _, ok := big[c]; ok {
					inter++
				}
			}
			if similarity.SetSim(inter, len(ci), len(cj)) >= minSim {
				edges++
			}
		}
	}
	return edges
}

func BenchmarkSimilaritySparse(b *testing.B) {
	w1, _, _ := benchWorlds(b)
	idx := trace.BuildIndex(w1.Trace())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sg := similarity.BuildClientGraph(idx, similarity.Options{})
		if sg.G.N() == 0 {
			b.Fatal("empty graph")
		}
	}
}

func BenchmarkSimilarityDense(b *testing.B) {
	w1, _, _ := benchWorlds(b)
	idx := trace.BuildIndex(w1.Trace())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if denseClientPairs(idx, similarity.DefaultClientMinSimilarity) < 0 {
			b.Fatal("impossible")
		}
	}
}

// --- Microbenchmarks -------------------------------------------------------

func BenchmarkLouvain(b *testing.B) {
	for _, n := range []int{100, 1000, 5000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := stats.NewRand(1, "bench-louvain")
			g := graph.New(n)
			// Planted partition: 20 communities with dense intra edges.
			for i := 0; i < 8*n; i++ {
				c := rng.Intn(20)
				lo, hi := c*n/20, (c+1)*n/20
				u, v := lo+rng.Intn(hi-lo), lo+rng.Intn(hi-lo)
				if u != v {
					_ = g.AddEdge(u, v, 1)
				}
			}
			for i := 0; i < n/2; i++ { // sparse inter-community noise
				u, v := rng.Intn(n), rng.Intn(n)
				if u != v {
					_ = g.AddEdge(u, v, 0.3)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				labels := g.Louvain(7)
				if len(labels) != n {
					b.Fatal("bad labels")
				}
			}
		})
	}
}

func BenchmarkCoOccurrence(b *testing.B) {
	rng := stats.NewRand(2, "bench-cooc")
	inc := sparse.NewIncidence(3000)
	for r := 0; r < 3000; r++ {
		for k := 0; k < 20; k++ {
			inc.Set(r, uint64(rng.Intn(2000)))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pairs := inc.CoOccurrence(500)
		if len(pairs) == 0 {
			b.Fatal("no pairs")
		}
	}
}

func BenchmarkServerFileSim(b *testing.B) {
	filesA := []string{"login.php", "news.php", "a1b2c3d4e5f6g7h8i9j0k1l2m3n4.php", "x.gif"}
	filesB := []string{"login.php", "4n3m2l1k0j9i8h7g6f5e4d3c2b1a.php", "y.gif"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		similarity.ServerFileSim(filesA, filesB, 25, 0.8)
	}
}

func BenchmarkSigma(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stats.Sigma(float64(i%40), stats.DefaultMu, stats.DefaultBeta)
	}
}

// --- Ablations --------------------------------------------------------------

// ablationMetrics runs the detector with extra options and reports recall
// over ground truth and false-positive counts as benchmark metrics.
func ablationMetrics(b *testing.B, opts ...core.Option) {
	w1, _, _ := benchWorlds(b)
	all := append([]core.Option{
		core.WithSeed(1), core.WithWhois(w1.Whois), core.WithProber(w1.Prober),
	}, opts...)
	var recall, fps float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det := core.New(all...)
		report, err := det.Run(w1.Trace())
		if err != nil {
			b.Fatal(err)
		}
		detected := make(map[string]bool)
		for _, c := range report.AllCampaigns() {
			for _, s := range c.Servers {
				detected[s] = true
			}
		}
		truth, found, fp := 0, 0, 0
		for s := range detected {
			st, ok := w1.Truth.Servers[s]
			if !ok || (st.Campaign == "" && !st.Noise) {
				fp++
			}
		}
		for s, st := range w1.Truth.Servers {
			if st.Campaign == "" || st.Noise {
				continue
			}
			if _, active := report.RawIndex.Servers[s]; !active {
				continue
			}
			truth++
			if detected[s] {
				found++
			}
		}
		if truth > 0 {
			recall = float64(found) / float64(truth)
		}
		fps = float64(fp)
	}
	b.ReportMetric(recall, "recall")
	b.ReportMetric(fps, "falsepos")
}

// BenchmarkAblationFull is the reference configuration.
func BenchmarkAblationFull(b *testing.B) { ablationMetrics(b) }

// BenchmarkAblationNoWhois drops the whois dimension (DESIGN.md: whois and
// IP individually weak but confirm URI-file herds).
func BenchmarkAblationNoWhois(b *testing.B) {
	ablationMetrics(b, core.WithoutWhoisDimension())
}

// BenchmarkAblationStrictSigma moves the sigma midpoint from 4 to 8,
// requiring larger herd intersections.
func BenchmarkAblationStrictSigma(b *testing.B) {
	ablationMetrics(b, core.WithSigma(8, 5.5))
}

// BenchmarkAblationHighThreshold operates at the paper's strictest
// threshold (1.5) where FPs vanish but recall drops.
func BenchmarkAblationHighThreshold(b *testing.B) {
	ablationMetrics(b, core.WithThreshold(1.5), core.WithSingleClientThreshold(1.5))
}

// BenchmarkAblationDenseEdges raises the similarity edge cutoff to 0.25,
// the design alternative rejected in DESIGN.md (herd densities collapse).
func BenchmarkAblationDenseEdges(b *testing.B) {
	ablationMetrics(b, core.WithSimilarityOptions(similarity.Options{MinSimilarity: 0.25}))
}

// BenchmarkAblationNoIDF disables the popularity filter (preprocessing
// trade-off of §III-A).
func BenchmarkAblationNoIDF(b *testing.B) {
	ablationMetrics(b, core.WithIDFThreshold(1<<30))
}

// BenchmarkAblationComponents swaps Louvain for connected components: weak
// bridges then merge herds, densities collapse, and recall falls — the
// ablation motivating the paper's community-detection choice.
func BenchmarkAblationComponents(b *testing.B) {
	ablationMetrics(b, core.WithComponentMining())
}

// --- Cluster: wire codec -------------------------------------------------

// BenchmarkWireCodec measures the cluster interchange codec over one
// day-scale index: a full encode (canonical dictionary build + count
// maps) followed by a full decode (fresh symbols + index rebuild), the
// per-window cost an ingest node and the aggregator pay between them.
// events/s is the request volume the codec round-trips per second;
// bytes/op is the encoded fragment size.
func BenchmarkWireCodec(b *testing.B) {
	w1, _, _ := benchWorlds(b)
	idx := trace.BuildIndex(w1.Days[0])
	encoded := wire.EncodeIndex(idx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := wire.EncodeIndex(idx)
		dec, err := wire.DecodeIndex(enc)
		if err != nil {
			b.Fatal(err)
		}
		if dec.RequestCount != idx.RequestCount {
			b.Fatal("lossy round-trip")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*float64(idx.RequestCount)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(len(encoded)), "bytes/fragment")
}

// --- Cluster: crash recovery ---------------------------------------------

// clusterBenchFragments splits the bench week across nodes×windows wire
// fragments, the shape a fault-tolerant aggregator logs and replays: each
// day is one window, each node holds its client-hash partition of it.
func clusterBenchFragments(b *testing.B, nodes int) []*wire.Fragment {
	b.Helper()
	_, _, week := benchWorlds(b)
	var frags []*wire.Fragment
	for day, tr := range week.Days {
		parts := make([]*trace.Index, nodes)
		for i := range parts {
			parts[i] = trace.NewIndex()
		}
		for i := range tr.Requests {
			r := &tr.Requests[i]
			parts[cluster.PartitionOf(r.Client, nodes)].Add(r)
		}
		start := cluster.WindowStart(int64(day), 24*time.Hour)
		for i, idx := range parts {
			frags = append(frags, &wire.Fragment{
				Node: fmt.Sprintf("node-%d", i), Window: int64(day),
				Start: start, End: start.Add(24 * time.Hour), Index: idx,
			})
		}
	}
	return frags
}

// BenchmarkFragmentLogAppend measures the durable-ack hot path: encoding
// one day-partition fragment into a length-prefixed frame and appending
// it to the per-window fragment log (no fsync, the default for the
// aggregator's WAL). This cost sits on every /v1/ingest request once
// crash recovery is enabled, so it bounds cluster intake throughput.
func BenchmarkFragmentLogAppend(b *testing.B) {
	frags := clusterBenchFragments(b, 4)
	frag := frags[0]
	flog, err := cluster.OpenFragLog(b.TempDir(), false)
	if err != nil {
		b.Fatal(err)
	}
	defer flog.Close()
	encoded := wire.EncodeFragment(frag)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := flog.Append(frag); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			flog.Remove(frag.Window) // keep the bench dir bounded
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*float64(frag.Index.RequestCount)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(len(encoded)), "bytes/fragment")
}

// BenchmarkAggregatorReplay measures crash-recovery startup: an
// aggregator resuming from a fragment log holding a week of 4-node
// traffic (28 fragments) — open with torn-tail scan, decode every frame,
// and rebuild the in-memory window state through the normal accept path.
// This is the downtime a crashed aggregator adds before serving again.
func BenchmarkAggregatorReplay(b *testing.B) {
	frags := clusterBenchFragments(b, 4)
	dir := b.TempDir()
	flog, err := cluster.OpenFragLog(dir, false)
	if err != nil {
		b.Fatal(err)
	}
	var events int
	for _, f := range frags {
		if err := flog.Append(f); err != nil {
			b.Fatal(err)
		}
		events += f.Index.RequestCount
	}
	flog.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Expect one node more than ever reports so no window seals:
		// the measurement isolates replay from detection.
		agg, err := cluster.NewAggregator(cluster.AggregatorConfig{
			Window: 24 * time.Hour, Expect: 5, FragDir: dir,
		})
		if err != nil {
			b.Fatal(err)
		}
		results := agg.Start(context.Background())
		agg.Abandon() // stop right after resume, leaving the log intact
		for range results {
		}
		if got := agg.Stats().Replayed; got != len(frags) {
			b.Fatalf("replayed %d fragments, want %d", got, len(frags))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*float64(events)/b.Elapsed().Seconds(), "events/s")
}

// --- Cluster: hop provenance ----------------------------------------------

// BenchmarkHopEncode measures stamping one transit hop onto an
// already-encoded day-scale fragment — the per-attempt cost a forwarder
// pays on the delivery hot path. AppendHop is a pure byte append (no
// re-encode), so this must stay orders of magnitude below the codec's
// per-fragment cost no matter how large the index payload grows.
func BenchmarkHopEncode(b *testing.B) {
	frags := clusterBenchFragments(b, 4)
	encoded := wire.EncodeFragment(frags[0])
	hop := wire.Hop{
		Node: "node-0", Role: "ingest",
		Send: time.Unix(1315872000, 0).UTC(), Attempts: 1,
	}
	buf := make([]byte, len(encoded), len(encoded)+64)
	copy(buf, encoded)
	b.ReportAllocs()
	b.ResetTimer()
	var hopBytes int
	for i := 0; i < b.N; i++ {
		out := wire.AppendHop(buf[:len(encoded)], hop)
		hopBytes = len(out) - len(encoded)
	}
	b.StopTimer()
	b.ReportMetric(float64(hopBytes), "bytes/hop")
	b.ReportMetric(float64(len(encoded)), "bytes/fragment")
}

// BenchmarkForwarderTracing is the tracing-overhead A/B: one day-partition
// fragment delivered over loopback HTTP with hop provenance stamped
// (hops) versus stripped (nohops). The two must agree within noise — the
// acceptance bar for leaving tracing on in production clusters.
func BenchmarkForwarderTracing(b *testing.B) {
	frags := clusterBenchFragments(b, 4)
	idx := frags[0].Index
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"hops", false}, {"nohops", true}} {
		b.Run(mode.name, func(b *testing.B) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				io.Copy(io.Discard, r.Body)
				w.WriteHeader(http.StatusAccepted)
			}))
			defer ts.Close()
			fwd, err := cluster.NewForwarder(cluster.ForwarderConfig{
				URL: ts.URL, Node: "node-0", Stride: 24 * time.Hour,
				DisableHops: mode.disable,
			})
			if err != nil {
				b.Fatal(err)
			}
			start := cluster.WindowStart(0, 24*time.Hour)
			w := &stream.WindowResult{
				Start: start, End: start.Add(24 * time.Hour),
				Requests: idx.RequestCount, Index: idx,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := fwd.Consume(w); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*float64(idx.RequestCount)/b.Elapsed().Seconds(), "events/s")
		})
	}
}
