module smash

go 1.24
