// Package smash is a from-scratch Go reproduction of SMASH — "Systematic
// Mining of Associated Server Herds for Malware Campaign Discovery"
// (Zhang, Saha, Gu, Lee, Mellia; ICDCS 2015).
//
// SMASH ingests network-wide HTTP traffic and discovers Associated Server
// Herds: groups of servers involved in the same malware campaign — C&C
// domain-flux pools, drop zones, exploit kits, scanned victim pools,
// webshell-injected benign sites. It mines per-dimension server-similarity
// graphs (client sets, URI files, IP sets, whois records), extracts
// communities with Louvain modularity clustering, correlates the
// communities across dimensions with an erf-shaped scoring function, prunes
// redirection/referrer noise, and merges the surviving herds into whole
// campaigns.
//
// Layout:
//
//   - internal/core        — the staged detection pipeline (public API):
//     core.Pipeline with five first-class stages, context cancellation,
//     parallel dimension mining, Observer hooks; core.Detector wraps it
//   - internal/stream      — streaming ingestion engine: sliding windows,
//     sharded incremental indexing, watermark, worker pool, lineage
//     deltas, pluggable result sinks
//   - internal/store       — durable campaign-state store: snapshot +
//     NDJSON WAL with compaction, crash-safe restore, live mirror,
//     per-window history log with count/age retention and GC, and
//     gap-free delta subscriptions for live consumers
//   - internal/serve       — embedded HTTP query/ops API over the store:
//     /v1/lineages (paginated, filterable), /v1/lineages/{id}/timeline,
//     /v1/windows (seq/time ranges), /v1/windows/latest,
//     /v1/windows/{seq}/trace, /v1/deltas (SSE with Last-Event-ID
//     resume), /v1/stats, /healthz, Prometheus /metrics, optional
//     /debug/pprof, and the cluster's POST /v1/ingest intake
//   - internal/obs         — stdlib-only observability plane: concurrent
//     metrics registry (counters, gauges, log-bucketed latency
//     histograms, func collectors, runtime stats, Prometheus text
//     rendering), bounded window-lifecycle Tracer, slog helpers
//   - internal/wire        — versioned binary codec shipping trace.Index
//     window fragments (with their symbol dictionaries) between processes
//   - internal/cluster     — horizontal scale-out: ingest-side fragment
//     Forwarder (stream.Sink) with a durable on-disk spool, the
//     window-aligning Aggregator with per-node watermarks, a straggler
//     policy and crash recovery via a fragment log (WAL of raw wire
//     fragments, replayed on restart), and the detection-free Merger
//     tier for fan-in trees
//   - internal/source      — real-traffic ingestion surface: access-log
//     format parsers (tsv, Apache/Nginx common and combined, JSON lines
//     with field mapping) with strict error accounting, a
//     rotation-following file tailer with byte-offset checkpoints, and
//     the bounded queue behind the HTTP push intake
//   - internal/trace       — HTTP traffic model, TSV codec, interned-ID
//     server index (shared symbol tables, counted aggregates with exact
//     Merge/Unmerge)
//   - internal/intern      — dense string↔uint32 interning tables
//   - internal/similarity  — the four dimension metrics and graph builders
//   - internal/graph       — weighted graphs + Louvain community detection
//   - internal/sparse      — pooled row-wise co-occurrence products over
//     interned feature ids (pairwise sims)
//   - internal/herd        — ASH mining over dimension graphs
//   - internal/correlate   — eq. (9) multi-dimension scoring
//   - internal/prune       — redirection/referrer noise pruning
//   - internal/campaign    — campaign inference and classification
//   - internal/synth       — synthetic ISP world (the evaluation substrate)
//   - internal/ids         — simulated IDS snapshots and blacklists
//   - internal/eval        — reproduction of every table and figure
//   - internal/profiling   — pprof wiring for the CLIs' -cpuprofile /
//     -memprofile flags
//   - cmd/smash, cmd/tracegen, cmd/smashbench — batch CLIs
//   - cmd/smashd           — streaming daemon over TSV files, stdin,
//     tailed access logs (-format, -follow) or pushed batches (-push),
//     with durable state (-state-dir), the ops API (-listen), and
//     cluster roles (-role ingest|merge|aggregate) with crash
//     recovery and spooling riding on the same -state-dir
//   - cmd/benchjson        — bench output -> BENCH_<pr>.json trajectory
//   - examples/            — runnable scenarios
//
// See README.md for a walkthrough and DESIGN.md for the staged pipeline
// API (stage graph, Observer contract, cancellation semantics), the
// Performance section (interned-ID data plane, incremental sliding
// windows, scratch reuse), the Sources section (format grammars and the
// projection laws, rotation/checkpoint semantics, push backpressure),
// the Cluster section (fragment lifecycle, window alignment, straggler
// policy, remap-merge invariants, and the fault-tolerance protocol:
// fragment log, frontier reconcile, spool, merge tier), the
// Observability section (metric catalog, span model, logging
// conventions) and the Analytics plane section (history log format,
// retention/GC rules, SSE resume semantics). The benchmarks in bench_test.go regenerate each
// experiment.
package smash
