package core

import (
	"testing"

	"smash/internal/similarity"
	"smash/internal/synth"
	"smash/internal/trace"
)

// testWorld generates a small deterministic world once per test binary.
var testWorldCache *synth.World

func testWorld(t *testing.T) *synth.World {
	t.Helper()
	if testWorldCache != nil {
		return testWorldCache
	}
	w, err := synth.Generate(synth.Config{
		Name: "coretest", Seed: 11, Days: 1,
		Clients: 400, BenignServers: 1200, MeanRequests: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	testWorldCache = w
	return w
}

func runDetector(t *testing.T, w *synth.World, opts ...Option) *Report {
	t.Helper()
	all := append([]Option{
		WithSeed(7),
		WithWhois(w.Whois),
		WithProber(w.Prober),
	}, opts...)
	det := New(all...)
	report, err := det.Run(w.Trace())
	if err != nil {
		t.Fatal(err)
	}
	return report
}

func TestRunEmptyTrace(t *testing.T) {
	det := New()
	if _, err := det.Run(&trace.Trace{}); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := det.Run(nil); err == nil {
		t.Error("nil trace accepted")
	}
}

func TestPipelineFindsPlantedCampaigns(t *testing.T) {
	w := testWorld(t)
	report := runDetector(t, w)
	if len(report.Campaigns) == 0 {
		t.Fatal("no campaigns inferred")
	}

	detected := make(map[string]bool)
	for _, c := range report.AllCampaigns() {
		for _, s := range c.Servers {
			detected[s] = true
		}
	}
	// Core recall check on the strongly-correlated campaigns: zeus (shared
	// IP + same file + same clients) and fluxnet.
	for _, name := range []string{"zeus", "fluxnet", "sality"} {
		ct := w.Truth.Campaigns[name]
		found := 0
		for _, s := range ct.Servers {
			if detected[s] {
				found++
			}
		}
		if found < len(ct.Servers)/2 {
			t.Errorf("campaign %s: only %d/%d servers detected", name, found, len(ct.Servers))
		}
	}
}

func TestPipelinePrecision(t *testing.T) {
	w := testWorld(t)
	report := runDetector(t, w)
	fp := 0
	total := 0
	var fps []string
	for _, c := range report.AllCampaigns() {
		for _, s := range c.Servers {
			total++
			st, ok := w.Truth.Servers[s]
			if !ok || st.Campaign == "" {
				if !ok {
					fp++
					fps = append(fps, s)
				}
				// Noise servers are the paper's known FP classes and are
				// expected to appear.
			}
		}
	}
	if total == 0 {
		t.Fatal("no servers detected")
	}
	if frac := float64(fp) / float64(total); frac > 0.25 {
		t.Errorf("false positive fraction %.2f too high (%d/%d): %v", frac, fp, total, fps)
	}
}

func TestPipelineDeterministic(t *testing.T) {
	w := testWorld(t)
	r1 := runDetector(t, w)
	r2 := runDetector(t, w)
	if len(r1.Campaigns) != len(r2.Campaigns) {
		t.Fatalf("campaign counts differ: %d vs %d", len(r1.Campaigns), len(r2.Campaigns))
	}
	for i := range r1.Campaigns {
		a, b := r1.Campaigns[i], r2.Campaigns[i]
		if len(a.Servers) != len(b.Servers) {
			t.Fatalf("campaign %d sizes differ", i)
		}
		for j := range a.Servers {
			if a.Servers[j] != b.Servers[j] {
				t.Fatalf("campaign %d member %d differs", i, j)
			}
		}
	}
}

func TestThresholdMonotonicity(t *testing.T) {
	w := testWorld(t)
	var prevServers int
	first := true
	for _, thresh := range []float64{0.5, 0.8, 1.0, 1.5} {
		report := runDetector(t, w, WithThreshold(thresh), WithSingleClientThreshold(thresh))
		n := len(CampaignServers(report.AllCampaigns()))
		if !first && n > prevServers {
			t.Errorf("thresh %g found %d servers, more than previous %d", thresh, n, prevServers)
		}
		prevServers = n
		first = false
	}
	if prevServers < 0 {
		t.Fatal("unreachable")
	}
}

func TestZeroDayDetection(t *testing.T) {
	// Zeus has zero IDS2012 coverage but SMASH must find it: the
	// unsupervised pipeline needs no signatures.
	w := testWorld(t)
	report := runDetector(t, w)
	oracles := synth.BuildOracles(w)
	labels2012 := oracles.IDS2012.Scan(report.Index)
	zeus := w.Truth.Campaigns["zeus"]
	detected := make(map[string]bool)
	for _, c := range report.AllCampaigns() {
		for _, s := range c.Servers {
			detected[s] = true
		}
	}
	smashFound, idsFound := 0, 0
	for _, s := range zeus.Servers {
		if detected[s] {
			smashFound++
		}
		if labels2012.Detected(s) {
			idsFound++
		}
	}
	if idsFound != 0 {
		t.Fatalf("test setup broken: IDS2012 knows zeus")
	}
	if smashFound < len(zeus.Servers)/2 {
		t.Errorf("zero-day: SMASH found only %d/%d zeus servers", smashFound, len(zeus.Servers))
	}
}

func TestSingleClientSplit(t *testing.T) {
	w := testWorld(t)
	report := runDetector(t, w)
	for _, c := range report.Campaigns {
		if len(c.Clients) < 2 {
			t.Errorf("multi-client campaign %d has %d clients", c.ID, len(c.Clients))
		}
	}
	// The world plants six single-bot campaigns; at least some must
	// surface in the single-client set.
	if len(report.SingleClientCampaigns) == 0 {
		t.Error("no single-client campaigns found despite planted lone-flux campaigns")
	}
}

func TestDecomposition(t *testing.T) {
	w := testWorld(t)
	report := runDetector(t, w)
	decomp := report.Decomposition()
	if len(decomp) == 0 {
		t.Fatal("empty decomposition")
	}
	totalFile := 0
	total := 0
	for combo, n := range decomp {
		total += n
		if containsDim(combo, similarity.DimFile) {
			totalFile += n
		}
	}
	// The paper finds the URI-file dimension dominant; our world mirrors
	// that (most campaigns share handler scripts).
	if totalFile*2 < total {
		t.Errorf("file dimension contributes only %d/%d servers", totalFile, total)
	}
}

func containsDim(combo, dim string) bool {
	for len(combo) > 0 {
		i := 0
		for i < len(combo) && combo[i] != '+' {
			i++
		}
		if combo[:i] == dim {
			return true
		}
		if i == len(combo) {
			break
		}
		combo = combo[i+1:]
	}
	return false
}

func TestNicheClustersPruned(t *testing.T) {
	// The niche browsing clusters form main-dimension herds but share no
	// secondary dimension; they must not be reported.
	w := testWorld(t)
	report := runDetector(t, w)
	for _, c := range report.AllCampaigns() {
		for _, s := range c.Servers {
			if len(s) > 5 && s[:5] == "niche" {
				t.Errorf("niche cluster server %s reported as malicious", s)
			}
		}
	}
}

func TestPreprocessingRan(t *testing.T) {
	w := testWorld(t)
	report := runDetector(t, w)
	if report.Preprocess.ServersBefore == 0 {
		t.Error("preprocess stats empty")
	}
	if report.TraceStats.Requests == 0 {
		t.Error("trace stats empty")
	}
	if report.MainHerds == 0 {
		t.Error("no main herds")
	}
	if len(report.SecondaryHerds) < 3 {
		t.Errorf("secondary herd dims = %v", report.SecondaryHerds)
	}
}

func TestExtensibilityExtraDimension(t *testing.T) {
	// Register a trivial extra dimension (user-agent similarity) and make
	// sure the pipeline carries it through.
	w := testWorld(t)
	report := runDetector(t, w, WithExtraDimension(uaDimension{}))
	if _, ok := report.SecondaryHerds["useragent"]; !ok {
		t.Error("extra dimension not mined")
	}
}

// uaDimension is a toy dimension connecting servers sharing a rare
// User-Agent, used to exercise WithExtraDimension.
type uaDimension struct{}

func (uaDimension) Name() string { return "useragent" }

func (uaDimension) Build(idx *trace.Index) *similarity.ServerGraph {
	return similarity.BuildUserAgentGraph(idx, similarity.Options{})
}
