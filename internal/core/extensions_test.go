package core

import (
	"fmt"
	"testing"
	"time"

	"smash/internal/herd"
	"smash/internal/similarity"
	"smash/internal/trace"
)

// parameterCampaignTrace builds the paper's false-negative scenario
// (§V-A2): a campaign whose servers share NO built-in secondary dimension —
// different URI files, different IPs, no whois — but use the same URI
// parameter pattern (Cycbot/FakeAV/Tidserv style). Background servers give
// Louvain something to separate from.
func parameterCampaignTrace() (*trace.Trace, []string) {
	tr := &trace.Trace{Name: "param-campaign"}
	add := func(client, host, ip, path, query string) {
		tr.Requests = append(tr.Requests, trace.Request{
			Time: time.Unix(0, 0), Client: client, Host: host, ServerIP: ip,
			Path: path, Query: query, UserAgent: "bot", Status: 200,
		})
	}
	var campaign []string
	for i := 0; i < 8; i++ {
		host := fmt.Sprintf("cyc%d.com", i)
		campaign = append(campaign, host)
		for _, bot := range []string{"bot1", "bot2"} {
			// Distinct file and IP per server; shared parameter pattern.
			add(bot, host, fmt.Sprintf("9.9.9.%d", i),
				fmt.Sprintf("/h%d.php", i),
				fmt.Sprintf("v=%d&tid=%d&cb=%d", i, i*7, i*13))
		}
	}
	for i := 0; i < 30; i++ {
		host := fmt.Sprintf("bg%d.com", i)
		for c := 0; c < 2; c++ {
			add(fmt.Sprintf("user%d-%d", i, c), host,
				fmt.Sprintf("8.8.%d.%d", i, c), fmt.Sprintf("/p%d.html", i), "")
		}
	}
	return tr, campaign
}

func TestQueryDimensionRecoversParameterCampaign(t *testing.T) {
	tr, campaign := parameterCampaignTrace()

	// Without the query dimension the campaign shares nothing secondary:
	// it must be missed (the paper's false negative).
	base := New(WithSeed(3))
	baseReport, err := base.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	baseDetected := detectedSet(baseReport)
	for _, s := range campaign {
		if baseDetected[s] {
			t.Fatalf("server %s detected without the query dimension; scenario broken", s)
		}
	}

	// With the query-pattern extra dimension the campaign is recovered.
	ext := New(WithSeed(3), WithExtraDimension(herd.QueryDimension(similarity.Options{})))
	extReport, err := ext.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	extDetected := detectedSet(extReport)
	found := 0
	for _, s := range campaign {
		if extDetected[s] {
			found++
		}
	}
	if found < len(campaign) {
		t.Errorf("query dimension recovered only %d/%d parameter-pattern servers", found, len(campaign))
	}
	// Background servers stay clean.
	for s := range extDetected {
		if len(s) > 2 && s[:2] == "bg" {
			t.Errorf("background server %s detected", s)
		}
	}
}

func detectedSet(r *Report) map[string]bool {
	out := make(map[string]bool)
	for _, c := range r.AllCampaigns() {
		for _, s := range c.Servers {
			out[s] = true
		}
	}
	return out
}

func TestUserAgentDimensionConstructor(t *testing.T) {
	d := herd.UserAgentDimension(similarity.Options{})
	if d.Name() != similarity.DimUserAgent {
		t.Errorf("name = %q", d.Name())
	}
	tr, _ := parameterCampaignTrace()
	sg := d.Build(trace.BuildIndex(tr))
	if sg.G.N() == 0 {
		t.Error("empty graph")
	}
}
