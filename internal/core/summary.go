package core

import (
	"encoding/json"
	"io"

	"smash/internal/campaign"
)

// Summary is the JSON-serializable form of a Report, for exporting pipeline
// results to downstream tooling (SIEM ingestion, diffing runs, dashboards).
type Summary struct {
	Trace struct {
		Name     string `json:"name"`
		Clients  int    `json:"clients"`
		Requests int    `json:"requests"`
		Servers  int    `json:"servers"`
		URIFiles int    `json:"uriFiles"`
	} `json:"trace"`
	Preprocess struct {
		ServersBefore  int     `json:"serversBefore"`
		ServersAfter   int     `json:"serversAfter"`
		RequestsBefore int     `json:"requestsBefore"`
		RequestsAfter  int     `json:"requestsAfter"`
		Reduction      float64 `json:"trafficReduction"`
	} `json:"preprocess"`
	MainHerds      int              `json:"mainHerds"`
	SecondaryHerds map[string]int   `json:"secondaryHerds"`
	Campaigns      []CampaignRecord `json:"campaigns"`
}

// CampaignRecord is one campaign in the JSON summary.
type CampaignRecord struct {
	ID           int            `json:"id"`
	Kind         string         `json:"kind"`
	Score        float64        `json:"score"`
	SingleClient bool           `json:"singleClient"`
	Clients      []string       `json:"clients"`
	Servers      []ServerRecord `json:"servers"`
}

// ServerRecord is one campaign member in the JSON summary.
type ServerRecord struct {
	Server     string   `json:"server"`
	Score      float64  `json:"score"`
	Dimensions []string `json:"dimensions,omitempty"`
}

// Summarize converts the report into its serializable form.
func (r *Report) Summarize() *Summary {
	s := &Summary{SecondaryHerds: make(map[string]int, len(r.SecondaryHerds))}
	s.Trace.Name = r.TraceStats.Name
	s.Trace.Clients = r.TraceStats.Clients
	s.Trace.Requests = r.TraceStats.Requests
	s.Trace.Servers = r.TraceStats.Servers
	s.Trace.URIFiles = r.TraceStats.URIFiles
	s.Preprocess.ServersBefore = r.Preprocess.ServersBefore
	s.Preprocess.ServersAfter = r.Preprocess.ServersAfter
	s.Preprocess.RequestsBefore = r.Preprocess.RequestsBefore
	s.Preprocess.RequestsAfter = r.Preprocess.RequestsAfter
	s.Preprocess.Reduction = r.Preprocess.TrafficReduction()
	s.MainHerds = r.MainHerds
	for dim, n := range r.SecondaryHerds {
		s.SecondaryHerds[dim] = n
	}
	s.Campaigns = r.appendCampaignRecords(s.Campaigns, r.Campaigns, false)
	s.Campaigns = r.appendCampaignRecords(s.Campaigns, r.SingleClientCampaigns, true)
	return s
}

func (r *Report) appendCampaignRecords(out []CampaignRecord, list []campaign.Campaign, single bool) []CampaignRecord {
	for _, c := range list {
		rec := CampaignRecord{
			ID: c.ID, Kind: c.Kind.String(), Score: c.Score,
			SingleClient: single, Clients: c.Clients,
		}
		for _, srv := range c.Servers {
			sr := ServerRecord{Server: srv}
			if sc := r.Scores[srv]; sc != nil {
				sr.Score = sc.Score
				sr.Dimensions = sc.Dimensions
			}
			rec.Servers = append(rec.Servers, sr)
		}
		out = append(out, rec)
	}
	return out
}

// WriteJSON writes the report summary as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Summarize())
}
