// Package core is SMASH's public pipeline: it wires preprocessing, ASH
// mining, multi-dimension correlation, pruning and campaign inference
// (Fig. 2 of the paper) behind a Detector with functional options.
//
// Typical use:
//
//	det := core.New(core.WithSeed(42), core.WithWhois(registry))
//	report, err := det.Run(dayTrace)
//	for _, c := range report.Campaigns { ... }
//
// The staged form of the same flow is Pipeline: five first-class stages
// with typed State artifacts, context cancellation end-to-end, parallel
// dimension mining, and Observer hooks around every stage (see
// pipeline.go and DESIGN.md). Detector.Run/RunIndex are thin wrappers over
// Pipeline.Run with a background context.
//
// The detector is deterministic for a fixed option set and input trace;
// mining-worker count changes wall-clock time, never output.
package core

import (
	"context"
	"errors"

	"smash/internal/campaign"
	"smash/internal/correlate"
	"smash/internal/herd"
	"smash/internal/preprocess"
	"smash/internal/prune"
	"smash/internal/similarity"
	"smash/internal/trace"
	"smash/internal/webprobe"
	"smash/internal/whois"
)

// config collects all tunables; modified only through Options.
type config struct {
	seed            int64
	idfThreshold    int
	threshold       float64
	singleThreshold float64
	mu, beta        float64
	simOpts         similarity.Options
	prober          webprobe.Prober
	registry        whois.Registry
	minClients      int
	extraDims       []herd.Dimension
	disableWhoisDim bool
	mineFunc        herd.MineFunc
	mineWorkers     int
	observers       []Observer
}

// Option configures a Detector.
type Option func(*config)

// WithSeed sets the seed for the deterministic community detection.
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithIDFThreshold sets the preprocessing popularity cut (default 200).
func WithIDFThreshold(t int) Option { return func(c *config) { c.idfThreshold = t } }

// WithThreshold sets the inference threshold for multi-client campaigns
// (the paper evaluates 0.5/0.8/1.0/1.5 and operates at 0.8).
func WithThreshold(t float64) Option { return func(c *config) { c.threshold = t } }

// WithSingleClientThreshold sets the (stricter) threshold applied to
// campaigns with a single involved client (paper: 1.0).
func WithSingleClientThreshold(t float64) Option {
	return func(c *config) { c.singleThreshold = t }
}

// WithSigma overrides the sigma normalizer parameters µ and β.
func WithSigma(mu, beta float64) Option {
	return func(c *config) { c.mu, c.beta = mu, beta }
}

// WithSimilarityOptions overrides the similarity graph builders' options.
func WithSimilarityOptions(o similarity.Options) Option {
	return func(c *config) { c.simOpts = o }
}

// WithProber sets the active prober used by pruning and verification.
func WithProber(p webprobe.Prober) Option { return func(c *config) { c.prober = p } }

// WithWhois sets the whois registry enabling the whois dimension.
func WithWhois(r whois.Registry) Option { return func(c *config) { c.registry = r } }

// WithMinClients sets the minimum involved clients for a campaign to be
// reported in Campaigns (smaller ones go to SingleClientCampaigns;
// default 2).
func WithMinClients(n int) Option { return func(c *config) { c.minClients = n } }

// WithExtraDimension registers an additional secondary dimension,
// exercising the paper's extensibility claim (§III-B).
func WithExtraDimension(d herd.Dimension) Option {
	return func(c *config) { c.extraDims = append(c.extraDims, d) }
}

// WithoutWhoisDimension disables the whois dimension even when a registry
// is configured (used by the dimension ablation benchmarks).
func WithoutWhoisDimension() Option { return func(c *config) { c.disableWhoisDim = true } }

// WithComponentMining replaces Louvain community detection with plain
// connected components — the naive baseline the ablation benchmarks
// compare against (a single weak edge then merges herds).
func WithComponentMining() Option {
	return func(c *config) { c.mineFunc = herd.MineComponents }
}

// WithMiningWorkers bounds the dimension-mining fan-out of StageMine: the
// similarity graphs of the main and secondary dimensions are built and
// mined on a pool of n goroutines. 0 (the default) uses runtime.NumCPU();
// 1 restores fully sequential mining. The worker count changes wall-clock
// time only — reports are identical for any value.
func WithMiningWorkers(n int) Option { return func(c *config) { c.mineWorkers = n } }

// WithObserver registers a stage observer (may be given multiple times;
// observers fire in registration order).
func WithObserver(o Observer) Option {
	return func(c *config) {
		if o != nil {
			c.observers = append(c.observers, o)
		}
	}
}

func defaultConfig() config {
	return config{
		seed:            1,
		idfThreshold:    preprocess.DefaultIDFThreshold,
		threshold:       correlate.DefaultThreshold,
		singleThreshold: 1.0,
		minClients:      2,
	}
}

// Detector runs the SMASH pipeline. It is a thin compatibility wrapper
// over Pipeline: Run/RunIndex execute all five stages with a background
// context, RunContext/RunIndexContext thread a caller context through.
type Detector struct {
	pipe *Pipeline
}

// New builds a Detector from options.
func New(opts ...Option) *Detector {
	return &Detector{pipe: NewPipeline(opts...)}
}

// Pipeline exposes the detector's staged pipeline for per-stage control
// (observers are shared; both views run the same configuration).
func (d *Detector) Pipeline() *Pipeline { return d.pipe }

// Report is the output of one pipeline run. The JSON shape is stable:
// heavyweight internals (indexes, per-dimension herds) are excluded, and
// empty collections are omitted.
type Report struct {
	// TraceStats summarizes the input (Table I row).
	TraceStats trace.Stats `json:"traceStats"`
	// Preprocess reports the IDF filtering.
	Preprocess preprocess.Result `json:"preprocess"`
	// MainHerds counts main-dimension ASHs; SecondaryHerds per dimension.
	MainHerds      int            `json:"mainHerds"`
	SecondaryHerds map[string]int `json:"secondaryHerds,omitempty"`
	// Campaigns are inferred campaigns with >= MinClients clients.
	Campaigns []campaign.Campaign `json:"campaigns,omitempty"`
	// SingleClientCampaigns are campaigns below MinClients, held to the
	// stricter single-client threshold (Appendix C).
	SingleClientCampaigns []campaign.Campaign `json:"singleClientCampaigns,omitempty"`
	// Scores maps scored servers to their correlation verdicts.
	Scores map[string]*correlate.ServerScore `json:"scores,omitempty"`
	// PruneStats reports the noise-pruning stage.
	PruneStats prune.Stats `json:"pruneStats"`
	// Index is the post-preprocessing traffic index (used by evaluation
	// and verification).
	Index *trace.Index `json:"-"`
	// RawIndex is the pre-filter index (used by figure reproduction).
	RawIndex *trace.Index `json:"-"`
	// Mined keeps the per-dimension herds for diagnostics/ablations.
	Mined *herd.Result `json:"-"`
}

// AllCampaigns returns multi-client and single-client campaigns together.
func (r *Report) AllCampaigns() []campaign.Campaign {
	out := make([]campaign.Campaign, 0, len(r.Campaigns)+len(r.SingleClientCampaigns))
	out = append(out, r.Campaigns...)
	out = append(out, r.SingleClientCampaigns...)
	return out
}

// CampaignServers returns the union of servers over the given campaigns.
func CampaignServers(campaigns []campaign.Campaign) []string {
	seen := make(map[string]struct{})
	var out []string
	for i := range campaigns {
		for _, s := range campaigns[i].Servers {
			if _, ok := seen[s]; ok {
				continue
			}
			seen[s] = struct{}{}
			out = append(out, s)
		}
	}
	return out
}

// ErrEmptyTrace is returned when the input trace has no requests.
var ErrEmptyTrace = errors.New("core: empty trace")

// Run executes the full pipeline on one trace (typically one day).
func (d *Detector) Run(t *trace.Trace) (*Report, error) {
	return d.RunContext(context.Background(), t)
}

// RunContext is Run with cooperative cancellation: once ctx is done the
// pipeline stops at the next stage boundary (inside mining, at the next
// dimension) and returns ctx.Err(). extra observers fire for this run
// only, after the configured ones.
func (d *Detector) RunContext(ctx context.Context, t *trace.Trace, extra ...Observer) (*Report, error) {
	return d.pipe.RunTrace(ctx, t, extra...)
}

// RunIndex executes the pipeline on a prebuilt raw (pre-filter) index. This
// is the streaming entry point: internal/stream accumulates each window's
// index incrementally across shards instead of materializing a Trace, then
// hands the merged index here. Run is equivalent to
// RunIndex(trace.BuildIndex(t), t.ComputeStats()). stats labels the report;
// the index itself is the unit of detection. The caller must not mutate raw
// afterwards. A Detector is stateless, so concurrent RunIndex calls on one
// Detector are safe.
func (d *Detector) RunIndex(raw *trace.Index, stats trace.Stats) (*Report, error) {
	return d.RunIndexContext(context.Background(), raw, stats)
}

// RunIndexContext is RunIndex with cooperative cancellation (see
// RunContext for the semantics). extra observers fire for this run only,
// after the configured ones.
func (d *Detector) RunIndexContext(ctx context.Context, raw *trace.Index, stats trace.Stats, extra ...Observer) (*Report, error) {
	return d.pipe.Run(ctx, raw, stats, extra...)
}

// filterByScore drops campaign members below the threshold and campaigns
// left with fewer than two servers, renumbering ids.
func filterByScore(campaigns []campaign.Campaign, scores map[string]*correlate.ServerScore, threshold float64) []campaign.Campaign {
	var out []campaign.Campaign
	for _, c := range campaigns {
		var kept []string
		for _, s := range c.Servers {
			if sc := scores[s]; sc != nil && sc.Score >= threshold {
				kept = append(kept, s)
			}
		}
		if len(kept) < 2 {
			continue
		}
		c.Servers = kept
		c.ID = len(out)
		out = append(out, c)
	}
	return out
}

// Decomposition returns the Fig. 8 dimension-combination counts over all
// reported campaigns' servers.
func (r *Report) Decomposition() map[string]int {
	out := make(map[string]int)
	for _, c := range r.AllCampaigns() {
		for _, s := range c.Servers {
			sc := r.Scores[s]
			if sc == nil {
				continue
			}
			key := ""
			for i, d := range sc.Dimensions {
				if i > 0 {
					key += "+"
				}
				key += d
			}
			out[key]++
		}
	}
	return out
}
