// Package core is SMASH's public pipeline: it wires preprocessing, ASH
// mining, multi-dimension correlation, pruning and campaign inference
// (Fig. 2 of the paper) behind a single Detector with functional options.
//
// Typical use:
//
//	det := core.New(core.WithSeed(42), core.WithWhois(registry))
//	report, err := det.Run(dayTrace)
//	for _, c := range report.Campaigns { ... }
//
// The detector is deterministic for a fixed option set and input trace.
package core

import (
	"errors"
	"fmt"

	"smash/internal/campaign"
	"smash/internal/correlate"
	"smash/internal/herd"
	"smash/internal/preprocess"
	"smash/internal/prune"
	"smash/internal/similarity"
	"smash/internal/trace"
	"smash/internal/webprobe"
	"smash/internal/whois"
)

// config collects all tunables; modified only through Options.
type config struct {
	seed            int64
	idfThreshold    int
	threshold       float64
	singleThreshold float64
	mu, beta        float64
	simOpts         similarity.Options
	prober          webprobe.Prober
	registry        whois.Registry
	minClients      int
	extraDims       []herd.Dimension
	disableWhoisDim bool
	mineFunc        herd.MineFunc
}

// Option configures a Detector.
type Option func(*config)

// WithSeed sets the seed for the deterministic community detection.
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithIDFThreshold sets the preprocessing popularity cut (default 200).
func WithIDFThreshold(t int) Option { return func(c *config) { c.idfThreshold = t } }

// WithThreshold sets the inference threshold for multi-client campaigns
// (the paper evaluates 0.5/0.8/1.0/1.5 and operates at 0.8).
func WithThreshold(t float64) Option { return func(c *config) { c.threshold = t } }

// WithSingleClientThreshold sets the (stricter) threshold applied to
// campaigns with a single involved client (paper: 1.0).
func WithSingleClientThreshold(t float64) Option {
	return func(c *config) { c.singleThreshold = t }
}

// WithSigma overrides the sigma normalizer parameters µ and β.
func WithSigma(mu, beta float64) Option {
	return func(c *config) { c.mu, c.beta = mu, beta }
}

// WithSimilarityOptions overrides the similarity graph builders' options.
func WithSimilarityOptions(o similarity.Options) Option {
	return func(c *config) { c.simOpts = o }
}

// WithProber sets the active prober used by pruning and verification.
func WithProber(p webprobe.Prober) Option { return func(c *config) { c.prober = p } }

// WithWhois sets the whois registry enabling the whois dimension.
func WithWhois(r whois.Registry) Option { return func(c *config) { c.registry = r } }

// WithMinClients sets the minimum involved clients for a campaign to be
// reported in Campaigns (smaller ones go to SingleClientCampaigns;
// default 2).
func WithMinClients(n int) Option { return func(c *config) { c.minClients = n } }

// WithExtraDimension registers an additional secondary dimension,
// exercising the paper's extensibility claim (§III-B).
func WithExtraDimension(d herd.Dimension) Option {
	return func(c *config) { c.extraDims = append(c.extraDims, d) }
}

// WithoutWhoisDimension disables the whois dimension even when a registry
// is configured (used by the dimension ablation benchmarks).
func WithoutWhoisDimension() Option { return func(c *config) { c.disableWhoisDim = true } }

// WithComponentMining replaces Louvain community detection with plain
// connected components — the naive baseline the ablation benchmarks
// compare against (a single weak edge then merges herds).
func WithComponentMining() Option {
	return func(c *config) { c.mineFunc = herd.MineComponents }
}

func defaultConfig() config {
	return config{
		seed:            1,
		idfThreshold:    preprocess.DefaultIDFThreshold,
		threshold:       correlate.DefaultThreshold,
		singleThreshold: 1.0,
		minClients:      2,
	}
}

// Detector runs the SMASH pipeline.
type Detector struct {
	cfg config
}

// New builds a Detector from options.
func New(opts ...Option) *Detector {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return &Detector{cfg: cfg}
}

// Report is the output of one pipeline run.
type Report struct {
	// TraceStats summarizes the input (Table I row).
	TraceStats trace.Stats
	// Preprocess reports the IDF filtering.
	Preprocess preprocess.Result
	// MainHerds counts main-dimension ASHs; SecondaryHerds per dimension.
	MainHerds      int
	SecondaryHerds map[string]int
	// Campaigns are inferred campaigns with >= MinClients clients.
	Campaigns []campaign.Campaign
	// SingleClientCampaigns are campaigns below MinClients, held to the
	// stricter single-client threshold (Appendix C).
	SingleClientCampaigns []campaign.Campaign
	// Scores maps scored servers to their correlation verdicts.
	Scores map[string]*correlate.ServerScore
	// PruneStats reports the noise-pruning stage.
	PruneStats prune.Stats
	// Index is the post-preprocessing traffic index (used by evaluation
	// and verification).
	Index *trace.Index
	// RawIndex is the pre-filter index (used by figure reproduction).
	RawIndex *trace.Index
	// Mined keeps the per-dimension herds for diagnostics/ablations.
	Mined *herd.Result
}

// AllCampaigns returns multi-client and single-client campaigns together.
func (r *Report) AllCampaigns() []campaign.Campaign {
	out := make([]campaign.Campaign, 0, len(r.Campaigns)+len(r.SingleClientCampaigns))
	out = append(out, r.Campaigns...)
	out = append(out, r.SingleClientCampaigns...)
	return out
}

// CampaignServers returns the union of servers over the given campaigns.
func CampaignServers(campaigns []campaign.Campaign) []string {
	seen := make(map[string]struct{})
	var out []string
	for i := range campaigns {
		for _, s := range campaigns[i].Servers {
			if _, ok := seen[s]; ok {
				continue
			}
			seen[s] = struct{}{}
			out = append(out, s)
		}
	}
	return out
}

// ErrEmptyTrace is returned when the input trace has no requests.
var ErrEmptyTrace = errors.New("core: empty trace")

// Run executes the full pipeline on one trace (typically one day).
func (d *Detector) Run(t *trace.Trace) (*Report, error) {
	if t == nil || len(t.Requests) == 0 {
		return nil, ErrEmptyTrace
	}
	return d.RunIndex(trace.BuildIndex(t), t.ComputeStats())
}

// RunIndex executes the pipeline on a prebuilt raw (pre-filter) index. This
// is the streaming entry point: internal/stream accumulates each window's
// index incrementally across shards instead of materializing a Trace, then
// hands the merged index here. Run is equivalent to
// RunIndex(trace.BuildIndex(t), t.ComputeStats()). stats labels the report;
// the index itself is the unit of detection. The caller must not mutate raw
// afterwards. A Detector is stateless, so concurrent RunIndex calls on one
// Detector are safe.
func (d *Detector) RunIndex(raw *trace.Index, stats trace.Stats) (*Report, error) {
	if raw == nil {
		return nil, ErrEmptyTrace
	}
	cfg := d.cfg

	report := &Report{TraceStats: stats, SecondaryHerds: make(map[string]int)}

	// Stage 1: preprocessing (SLD aggregation happened during indexing).
	report.RawIndex = raw
	idx := raw.Clone()
	report.Preprocess = preprocess.FilterIDF(idx, cfg.idfThreshold)
	report.Index = idx

	// Stage 2: ASH mining over all dimensions.
	secondary := []herd.Dimension{
		herd.FileDimension(cfg.simOpts),
		herd.IPDimension(cfg.simOpts),
	}
	if cfg.registry != nil && !cfg.disableWhoisDim {
		secondary = append(secondary, herd.WhoisDimension(cfg.registry, cfg.simOpts))
	}
	secondary = append(secondary, cfg.extraDims...)
	miner, err := herd.NewMiner(herd.ClientDimension(cfg.simOpts), secondary, cfg.seed)
	if err != nil {
		return nil, fmt.Errorf("core: build miner: %w", err)
	}
	if cfg.mineFunc != nil {
		miner.SetMineFunc(cfg.mineFunc)
	}
	mined := miner.Mine(idx)
	report.Mined = mined
	report.MainHerds = len(mined.Main)
	for dim, herds := range mined.Secondary {
		report.SecondaryHerds[dim] = len(herds)
	}

	// Stage 3: correlation. Score once at the laxer of the two thresholds;
	// the stricter single-client threshold is applied after campaign
	// formation when the involved-client count is known (§V, footnote 9).
	low := cfg.threshold
	if cfg.singleThreshold < low {
		low = cfg.singleThreshold
	}
	corr := correlate.Correlate(mined, correlate.Options{
		Mu: cfg.mu, Beta: cfg.beta, Threshold: low,
	})
	report.Scores = corr.Scores

	// Stage 4: pruning.
	pruned, pruneStats := prune.Prune(corr.Herds, idx, prune.Options{
		Prober: cfg.prober,
		Whois:  cfg.registry,
	})
	report.PruneStats = pruneStats

	// Stage 5: campaign inference + per-population thresholds.
	campaigns := campaign.Infer(pruned, idx)
	campaign.Classify(campaigns, idx, 0.5)
	multi, single := campaign.FilterMinClients(campaigns, cfg.minClients)
	report.Campaigns = filterByScore(multi, corr.Scores, cfg.threshold)
	report.SingleClientCampaigns = filterByScore(single, corr.Scores, cfg.singleThreshold)
	return report, nil
}

// filterByScore drops campaign members below the threshold and campaigns
// left with fewer than two servers, renumbering ids.
func filterByScore(campaigns []campaign.Campaign, scores map[string]*correlate.ServerScore, threshold float64) []campaign.Campaign {
	var out []campaign.Campaign
	for _, c := range campaigns {
		var kept []string
		for _, s := range c.Servers {
			if sc := scores[s]; sc != nil && sc.Score >= threshold {
				kept = append(kept, s)
			}
		}
		if len(kept) < 2 {
			continue
		}
		c.Servers = kept
		c.ID = len(out)
		out = append(out, c)
	}
	return out
}

// Decomposition returns the Fig. 8 dimension-combination counts over all
// reported campaigns' servers.
func (r *Report) Decomposition() map[string]int {
	out := make(map[string]int)
	for _, c := range r.AllCampaigns() {
		for _, s := range c.Servers {
			sc := r.Scores[s]
			if sc == nil {
				continue
			}
			key := ""
			for i, d := range sc.Dimensions {
				if i > 0 {
					key += "+"
				}
				key += d
			}
			out[key]++
		}
	}
	return out
}
