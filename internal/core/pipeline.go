package core

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"smash/internal/campaign"
	"smash/internal/correlate"
	"smash/internal/herd"
	"smash/internal/preprocess"
	"smash/internal/prune"
	"smash/internal/trace"
)

// Stage names, in execution order (Fig. 2 of the paper).
const (
	StagePreprocess = "preprocess"
	StageMine       = "mine"
	StageCorrelate  = "correlate"
	StagePrune      = "prune"
	StageInfer      = "infer"
)

// StageNames returns the five pipeline stage names in execution order.
func StageNames() []string {
	return []string{StagePreprocess, StageMine, StageCorrelate, StagePrune, StageInfer}
}

// State carries one run's intermediate artifacts across stage boundaries.
// Each stage reads the fields earlier stages filled and writes its own, so
// a caller holding a State can rerun only the downstream stages (see
// Pipeline.RunFrom) after tweaking what a stage consumes.
type State struct {
	// Raw is the pre-filter index the run started from (stage input).
	Raw *trace.Index
	// Stats labels the report (stage input).
	Stats trace.Stats
	// Index is the post-preprocessing index (set by StagePreprocess).
	Index *trace.Index
	// Preprocess is the IDF filter outcome (set by StagePreprocess).
	Preprocess preprocess.Result
	// Mined holds the per-dimension herds (set by StageMine).
	Mined *herd.Result
	// Correlation is the multi-dimension scoring outcome (set by
	// StageCorrelate).
	Correlation *correlate.Result
	// Pruned holds the herds surviving noise pruning (set by StagePrune;
	// non-nil once the stage has run, even when empty).
	Pruned []prune.PrunedASH
	// PruneStats reports the pruning stage (set by StagePrune).
	PruneStats prune.Stats
	// Report accumulates the run's public output; complete after
	// StageInfer.
	Report *Report
}

// report returns the state's report, creating it on first use so partial
// reruns starting past StagePreprocess still assemble one.
func (st *State) report() *Report {
	if st.Report == nil {
		st.Report = &Report{
			TraceStats:     st.Stats,
			SecondaryHerds: make(map[string]int),
			RawIndex:       st.Raw,
			Index:          st.Index,
		}
	}
	return st.Report
}

// inputsReady reports whether the state holds the upstream artifacts the
// named stage consumes, so a partial rerun starting there fails with a
// diagnosable error instead of a nil dereference mid-stage.
func (st *State) inputsReady(stage string) error {
	missing := func(field, producer string) error {
		return fmt.Errorf("core: stage %s needs State.%s (run %s first)", stage, field, producer)
	}
	switch stage {
	case StagePreprocess:
		if st.Raw == nil {
			return ErrEmptyTrace
		}
	case StageMine:
		if st.Index == nil {
			return missing("Index", StagePreprocess)
		}
	case StageCorrelate:
		if st.Mined == nil {
			return missing("Mined", StageMine)
		}
	case StagePrune, StageInfer:
		if st.Index == nil {
			return missing("Index", StagePreprocess)
		}
		if st.Correlation == nil {
			return missing("Correlation", StageCorrelate)
		}
		if stage == StageInfer && st.Pruned == nil {
			return missing("Pruned", StagePrune)
		}
	}
	return nil
}

// artifact returns the intermediate product a finished stage exposes to
// observers through StageResult.Artifact.
func (st *State) artifact(stage string) any {
	switch stage {
	case StagePreprocess:
		return st.Preprocess
	case StageMine:
		return st.Mined
	case StageCorrelate:
		return st.Correlation
	case StagePrune:
		return st.Pruned
	case StageInfer:
		return st.Report
	default:
		return nil
	}
}

// Stage is one pipeline step as a first-class value: a name plus the
// function that advances a State. Stages obtained from Pipeline.Stages can
// be run individually, giving callers per-stage control (custom
// scheduling, caching, partial reruns) that Run's fixed sequence does not.
type Stage struct {
	// Name is one of the Stage* constants.
	Name string
	// Run advances st; it reads the fields earlier stages filled.
	Run func(ctx context.Context, st *State) error
}

// StageResult describes one finished stage to observers.
type StageResult struct {
	// Stage is the stage name.
	Stage string `json:"stage"`
	// Index is the stage's position in execution order (0-based).
	Index int `json:"index"`
	// Duration is the stage's wall-clock time.
	Duration time.Duration `json:"duration"`
	// Artifact is the stage's intermediate product (see State.artifact);
	// nil when the stage failed.
	Artifact any `json:"-"`
	// Err is the stage's error, if any.
	Err error `json:"-"`
}

// Observer receives stage lifecycle events from a Pipeline run. Install
// with WithObserver. Implementations must be safe for concurrent use when
// the pipeline is shared across goroutines (e.g. the stream worker pool).
type Observer interface {
	// StageStart fires before the stage runs.
	StageStart(stage string, index int)
	// StageEnd fires after the stage returns, success or failure.
	StageEnd(res StageResult)
}

// Pipeline is the staged form of the detector: the same five-stage Fig. 2
// flow as Detector.Run, but with each stage exposed as a first-class value,
// context cancellation between stages and inside dimension mining, and
// observer hooks around every stage. A Pipeline is stateless and safe for
// concurrent runs.
type Pipeline struct {
	cfg config

	// The miner is part of the pipeline's per-Detector scratch: dimensions
	// and miner are immutable once built, so one instance serves every run
	// (the streaming engine runs one detection per window) instead of
	// being reconstructed per window.
	mineOnce sync.Once
	miner    *herd.Miner
	mineErr  error
}

// NewPipeline builds a Pipeline from the same options as New.
func NewPipeline(opts ...Option) *Pipeline {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return &Pipeline{cfg: cfg}
}

// Stages returns the five stages in execution order, bound to this
// pipeline's configuration.
func (p *Pipeline) Stages() []Stage {
	return []Stage{
		{Name: StagePreprocess, Run: p.runPreprocess},
		{Name: StageMine, Run: p.runMine},
		{Name: StageCorrelate, Run: p.runCorrelate},
		{Name: StagePrune, Run: p.runPrune},
		{Name: StageInfer, Run: p.runInfer},
	}
}

// Run executes all five stages over a raw (pre-filter) index. It returns
// ctx.Err() as soon as the current stage finishes once ctx is cancelled;
// inside StageMine cancellation is checked per dimension. extra observers,
// if any, fire for this run only, after the configured ones — the hook
// that lets a caller running many concurrent windows attribute stage
// events to one window (see internal/stream's lifecycle tracing).
func (p *Pipeline) Run(ctx context.Context, raw *trace.Index, stats trace.Stats, extra ...Observer) (*Report, error) {
	if raw == nil {
		return nil, ErrEmptyTrace
	}
	return p.RunFrom(ctx, &State{Raw: raw, Stats: stats}, StagePreprocess, extra...)
}

// RunTrace indexes a trace and runs all five stages.
func (p *Pipeline) RunTrace(ctx context.Context, t *trace.Trace, extra ...Observer) (*Report, error) {
	if t == nil || len(t.Requests) == 0 {
		return nil, ErrEmptyTrace
	}
	return p.Run(ctx, trace.BuildIndex(t), t.ComputeStats(), extra...)
}

// RunFrom executes the stages starting at the named stage, using whatever
// upstream artifacts st already holds — the partial-rerun entry point: keep
// the State from a full run, adjust, and rerun only downstream stages. A
// State missing the starting stage's upstream artifacts is rejected.
// extra observers fire for this run only, after the configured ones.
func (p *Pipeline) RunFrom(ctx context.Context, st *State, from string, extra ...Observer) (*Report, error) {
	stages := p.Stages()
	first := -1
	for i, s := range stages {
		if s.Name == from {
			first = i
			break
		}
	}
	if first < 0 {
		return nil, fmt.Errorf("core: unknown stage %q", from)
	}
	if err := st.inputsReady(from); err != nil {
		return nil, err
	}
	for i := first; i < len(stages); i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := p.runStage(ctx, stages[i], i, st, extra); err != nil {
			return nil, err
		}
	}
	return st.Report, nil
}

// runStage executes one stage surrounded by observer notifications: the
// pipeline's configured observers first, then the run's extra ones.
func (p *Pipeline) runStage(ctx context.Context, s Stage, index int, st *State, extra []Observer) error {
	for _, o := range p.cfg.observers {
		o.StageStart(s.Name, index)
	}
	for _, o := range extra {
		o.StageStart(s.Name, index)
	}
	start := time.Now()
	err := s.Run(ctx, st)
	res := StageResult{Stage: s.Name, Index: index, Duration: time.Since(start), Err: err}
	if err == nil {
		res.Artifact = st.artifact(s.Name)
	}
	for _, o := range p.cfg.observers {
		o.StageEnd(res)
	}
	for _, o := range extra {
		o.StageEnd(res)
	}
	return err
}

// runPreprocess is stage 1: clone the raw index and apply the IDF
// popularity filter (SLD aggregation happened during indexing).
func (p *Pipeline) runPreprocess(_ context.Context, st *State) error {
	if st.Raw == nil {
		return ErrEmptyTrace
	}
	r := st.report()
	r.RawIndex = st.Raw
	idx := st.Raw.Clone()
	st.Preprocess = preprocess.FilterIDF(idx, p.cfg.idfThreshold)
	st.Index = idx
	r.Preprocess = st.Preprocess
	r.Index = idx
	return nil
}

// buildMiner assembles the dimension set and miner from the configuration.
func (p *Pipeline) buildMiner() (*herd.Miner, error) {
	cfg := p.cfg
	secondary := []herd.Dimension{
		herd.FileDimension(cfg.simOpts),
		herd.IPDimension(cfg.simOpts),
	}
	if cfg.registry != nil && !cfg.disableWhoisDim {
		secondary = append(secondary, herd.WhoisDimension(cfg.registry, cfg.simOpts))
	}
	secondary = append(secondary, cfg.extraDims...)
	miner, err := herd.NewMiner(herd.ClientDimension(cfg.simOpts), secondary, cfg.seed)
	if err != nil {
		return nil, fmt.Errorf("core: build miner: %w", err)
	}
	if cfg.mineFunc != nil {
		miner.SetMineFunc(cfg.mineFunc)
	}
	return miner, nil
}

// runMine is stage 2: ASH mining over all dimensions, fanned out on a
// bounded worker pool (WithMiningWorkers) with per-dimension cancellation.
func (p *Pipeline) runMine(ctx context.Context, st *State) error {
	p.mineOnce.Do(func() { p.miner, p.mineErr = p.buildMiner() })
	if p.mineErr != nil {
		return p.mineErr
	}
	mined, err := p.miner.MineContext(ctx, st.Index, p.cfg.mineWorkers)
	if err != nil {
		return err
	}
	st.Mined = mined
	r := st.report()
	r.Mined = mined
	r.MainHerds = len(mined.Main)
	for dim, herds := range mined.Secondary {
		r.SecondaryHerds[dim] = len(herds)
	}
	return nil
}

// runCorrelate is stage 3: multi-dimension scoring. It scores once at the
// laxer of the two thresholds; the stricter single-client threshold is
// applied after campaign formation when the involved-client count is known
// (§V, footnote 9).
func (p *Pipeline) runCorrelate(_ context.Context, st *State) error {
	cfg := p.cfg
	low := cfg.threshold
	if cfg.singleThreshold < low {
		low = cfg.singleThreshold
	}
	st.Correlation = correlate.Correlate(st.Mined, correlate.Options{
		Mu: cfg.mu, Beta: cfg.beta, Threshold: low,
	})
	st.report().Scores = st.Correlation.Scores
	return nil
}

// runPrune is stage 4: redirection/referrer noise pruning.
func (p *Pipeline) runPrune(_ context.Context, st *State) error {
	pruned, pruneStats := prune.Prune(st.Correlation.Herds, st.Index, prune.Options{
		Prober: p.cfg.prober,
		Whois:  p.cfg.registry,
	})
	if pruned == nil {
		// Non-nil even when everything was pruned: nil Pruned marks a
		// state where the prune stage never ran (see inputsReady).
		pruned = []prune.PrunedASH{}
	}
	st.Pruned = pruned
	st.PruneStats = pruneStats
	st.report().PruneStats = pruneStats
	return nil
}

// runInfer is stage 5: campaign inference, classification and
// per-population thresholds.
func (p *Pipeline) runInfer(_ context.Context, st *State) error {
	cfg := p.cfg
	campaigns := campaign.Infer(st.Pruned, st.Index)
	campaign.Classify(campaigns, st.Index, 0.5)
	multi, single := campaign.FilterMinClients(campaigns, cfg.minClients)
	r := st.report()
	r.Campaigns = filterByScore(multi, st.Correlation.Scores, cfg.threshold)
	r.SingleClientCampaigns = filterByScore(single, st.Correlation.Scores, cfg.singleThreshold)
	return nil
}

// LogObserver is a ready-made Observer that writes one line per finished
// stage — the timing/diagnostic hook smashd -v installs.
type LogObserver struct {
	// W receives the log lines.
	W io.Writer
	// Prefix is prepended to every line (e.g. "smashd: ").
	Prefix string
}

// StageStart implements Observer (no output; the end line carries timing).
func (l *LogObserver) StageStart(string, int) {}

// StageEnd implements Observer.
func (l *LogObserver) StageEnd(res StageResult) {
	if res.Err != nil {
		fmt.Fprintf(l.W, "%sstage %-10s %10s  error: %v\n",
			l.Prefix, res.Stage, res.Duration.Round(time.Microsecond), res.Err)
		return
	}
	fmt.Fprintf(l.W, "%sstage %-10s %10s\n",
		l.Prefix, res.Stage, res.Duration.Round(time.Microsecond))
}

// TimingObserver accumulates per-stage wall-clock totals across runs. It is
// safe for concurrent pipelines (e.g. the stream worker pool); smashbench
// installs one to report where evaluation time goes.
type TimingObserver struct {
	mu    sync.Mutex
	total map[string]time.Duration
	runs  map[string]int
}

// NewTimingObserver returns an empty timing accumulator.
func NewTimingObserver() *TimingObserver {
	return &TimingObserver{
		total: make(map[string]time.Duration),
		runs:  make(map[string]int),
	}
}

// StageStart implements Observer.
func (t *TimingObserver) StageStart(string, int) {}

// StageEnd implements Observer.
func (t *TimingObserver) StageEnd(res StageResult) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total[res.Stage] += res.Duration
	t.runs[res.Stage]++
}

// Total returns the accumulated duration and run count for one stage.
func (t *TimingObserver) Total(stage string) (time.Duration, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total[stage], t.runs[stage]
}

// Render formats the accumulated totals, pipeline stages first in execution
// order, then any custom stage names alphabetically.
func (t *TimingObserver) Render() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	known := make(map[string]bool)
	order := StageNames()
	for _, s := range order {
		known[s] = true
	}
	var extra []string
	for s := range t.total {
		if !known[s] {
			extra = append(extra, s)
		}
	}
	sort.Strings(extra)
	out := "pipeline stage totals:\n"
	for _, s := range append(order, extra...) {
		n, ok := t.runs[s]
		if !ok {
			continue
		}
		out += fmt.Sprintf("  %-10s %12s over %d runs\n",
			s, t.total[s].Round(time.Microsecond), n)
	}
	return out
}
