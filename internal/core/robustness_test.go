package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"smash/internal/similarity"
	"smash/internal/trace"
)

func mkReq(client, host, ip, path string) trace.Request {
	return trace.Request{
		Time: time.Unix(0, 0), Client: client, Host: host, ServerIP: ip,
		Path: path, Status: 200,
	}
}

// Degenerate inputs must never panic and must return sane (usually empty)
// reports.
func TestRunDegenerateTraces(t *testing.T) {
	tests := []struct {
		name string
		tr   *trace.Trace
	}{
		{"single request", &trace.Trace{Requests: []trace.Request{
			mkReq("c", "a.com", "1.1.1.1", "/x"),
		}}},
		{"one client many servers", func() *trace.Trace {
			tr := &trace.Trace{}
			for i := 0; i < 50; i++ {
				tr.Requests = append(tr.Requests, mkReq("c", fmt.Sprintf("s%d.com", i), "1.1.1.1", "/x"))
			}
			return tr
		}()},
		{"many clients one server", func() *trace.Trace {
			tr := &trace.Trace{}
			for i := 0; i < 50; i++ {
				tr.Requests = append(tr.Requests, mkReq(fmt.Sprintf("c%d", i), "hub.com", "1.1.1.1", "/x"))
			}
			return tr
		}()},
		{"hostless requests", &trace.Trace{Requests: []trace.Request{
			mkReq("c1", "", "5.5.5.5", "/x"),
			mkReq("c2", "", "5.5.5.5", "/x"),
		}}},
		{"empty fields", &trace.Trace{Requests: []trace.Request{
			{Time: time.Unix(0, 0), Client: "c"},
		}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			det := New(WithSeed(1))
			report, err := det.Run(tt.tr)
			if err != nil {
				t.Fatalf("degenerate trace errored: %v", err)
			}
			for _, c := range report.AllCampaigns() {
				if len(c.Servers) < 2 {
					t.Errorf("campaign with %d servers reported", len(c.Servers))
				}
			}
		})
	}
}

// One client visiting everything must not produce campaigns: its servers
// form a single-client ASH, but nothing correlates across secondary
// dimensions.
func TestRunSingleCrawlerClient(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 60; i++ {
		tr.Requests = append(tr.Requests, mkReq("crawler",
			fmt.Sprintf("s%d.com", i), fmt.Sprintf("1.1.%d.%d", i/250, i%250),
			fmt.Sprintf("/page%d.html", i)))
	}
	report, err := New(WithSeed(1)).Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(report.AllCampaigns()); n != 0 {
		t.Errorf("crawler produced %d campaigns", n)
	}
}

func TestOptionsCoverage(t *testing.T) {
	// Exercise the remaining option setters end-to-end on a tiny trace.
	tr := &trace.Trace{}
	for i := 0; i < 8; i++ {
		for _, bot := range []string{"b1", "b2"} {
			tr.Requests = append(tr.Requests,
				mkReq(bot, fmt.Sprintf("evil%d.com", i), "9.9.9.9", "/login.php"))
		}
	}
	det := New(
		WithSeed(2),
		WithIDFThreshold(100),
		WithSigma(4, 5.5),
		WithSimilarityOptions(similarity.Options{MinSimilarity: 0.02}),
		WithMinClients(2),
		WithoutWhoisDimension(),
	)
	report, err := det.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Campaigns) == 0 {
		t.Error("shared-IP shared-file herd not detected")
	}
}

func TestComponentMiningOption(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 8; i++ {
		for _, bot := range []string{"b1", "b2"} {
			tr.Requests = append(tr.Requests,
				mkReq(bot, fmt.Sprintf("evil%d.com", i), "9.9.9.9", "/login.php"))
		}
	}
	report, err := New(WithSeed(2), WithComponentMining()).Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if report.MainHerds == 0 {
		t.Error("component mining produced no herds")
	}
}

func TestSummarizeAndJSON(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 8; i++ {
		for _, bot := range []string{"b1", "b2"} {
			tr.Requests = append(tr.Requests,
				mkReq(bot, fmt.Sprintf("evil%d.com", i), "9.9.9.9", "/login.php"))
		}
	}
	tr.Requests = append(tr.Requests, mkReq("lone", "x1.com", "8.8.8.1", "/gate.php"))
	tr.Requests = append(tr.Requests, mkReq("lone", "x2.com", "8.8.8.1", "/gate.php"))
	report, err := New(WithSeed(2)).Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	summary := report.Summarize()
	if summary.Trace.Requests != len(tr.Requests) {
		t.Errorf("summary requests = %d", summary.Trace.Requests)
	}
	if len(summary.Campaigns) != len(report.AllCampaigns()) {
		t.Errorf("summary campaigns = %d, want %d",
			len(summary.Campaigns), len(report.AllCampaigns()))
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Summary
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if round.Trace.Name != summary.Trace.Name || round.MainHerds != summary.MainHerds {
		t.Error("round-tripped summary differs")
	}
	if !strings.Contains(buf.String(), "secondaryHerds") {
		t.Error("JSON missing secondaryHerds")
	}
}
