package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"smash/internal/similarity"
	"smash/internal/trace"
)

// TestPipelineStagesRunIndividually drives the five stages by hand through
// Pipeline.Stages and checks the assembled report matches a plain Run —
// the first-class-stage contract partial reruns build on.
func TestPipelineStagesRunIndividually(t *testing.T) {
	w := testWorld(t)
	opts := []Option{WithSeed(7), WithWhois(w.Whois), WithProber(w.Prober)}
	p := NewPipeline(opts...)
	tr := w.Trace()

	st := &State{Raw: trace.BuildIndex(tr), Stats: tr.ComputeStats()}
	for i, s := range p.Stages() {
		if want := StageNames()[i]; s.Name != want {
			t.Fatalf("stage %d = %q, want %q", i, s.Name, want)
		}
		if err := s.Run(context.Background(), st); err != nil {
			t.Fatalf("stage %s: %v", s.Name, err)
		}
	}
	if st.Report == nil || st.Mined == nil || st.Correlation == nil {
		t.Fatal("state artifacts missing after manual stage run")
	}

	want, err := New(opts...).Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Report.Summarize(), want.Summarize()) {
		t.Error("manually staged run diverges from Detector.Run")
	}
}

// TestPipelineRunFrom reruns only the downstream stages after correlation
// with a fresh state seeded from a prior full run.
func TestPipelineRunFrom(t *testing.T) {
	w := testWorld(t)
	p := NewPipeline(WithSeed(7), WithWhois(w.Whois), WithProber(w.Prober))
	tr := w.Trace()

	st := &State{Raw: trace.BuildIndex(tr), Stats: tr.ComputeStats()}
	full, err := p.RunFrom(context.Background(), st, StagePreprocess)
	if err != nil {
		t.Fatal(err)
	}

	// Rerun from correlation only: upstream artifacts stay, downstream is
	// recomputed into a fresh report.
	st2 := &State{Raw: st.Raw, Stats: st.Stats, Index: st.Index, Preprocess: st.Preprocess, Mined: st.Mined}
	partial, err := p.RunFrom(context.Background(), st2, StageCorrelate)
	if err != nil {
		t.Fatal(err)
	}
	if len(partial.Campaigns) != len(full.Campaigns) {
		t.Errorf("partial rerun: %d campaigns, full run: %d", len(partial.Campaigns), len(full.Campaigns))
	}
	if _, err := p.RunFrom(context.Background(), &State{}, "bogus"); err == nil {
		t.Error("unknown stage name accepted")
	}
	// A state missing the starting stage's upstream artifacts must be
	// rejected with an error, not a nil dereference mid-stage.
	for _, from := range []string{StageMine, StageCorrelate, StagePrune, StageInfer} {
		if _, err := p.RunFrom(context.Background(), &State{Raw: st.Raw}, from); err == nil {
			t.Errorf("incomplete state accepted for rerun from %s", from)
		}
	}
}

// stageRecorder captures observer callbacks.
type stageRecorder struct {
	mu     sync.Mutex
	starts []string
	ends   []StageResult
}

func (r *stageRecorder) StageStart(stage string, _ int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.starts = append(r.starts, stage)
}

func (r *stageRecorder) StageEnd(res StageResult) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ends = append(r.ends, res)
}

// TestObserverSeesEveryStage checks hook ordering, durations and
// artifacts.
func TestObserverSeesEveryStage(t *testing.T) {
	w := testWorld(t)
	rec := &stageRecorder{}
	det := New(WithSeed(7), WithWhois(w.Whois), WithProber(w.Prober), WithObserver(rec))
	if _, err := det.Run(w.Trace()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec.starts, StageNames()) {
		t.Errorf("observed starts = %v, want %v", rec.starts, StageNames())
	}
	if len(rec.ends) != len(StageNames()) {
		t.Fatalf("observed %d ends, want %d", len(rec.ends), len(StageNames()))
	}
	for i, res := range rec.ends {
		if res.Stage != StageNames()[i] || res.Index != i {
			t.Errorf("end %d = %s/%d", i, res.Stage, res.Index)
		}
		if res.Err != nil {
			t.Errorf("stage %s erred: %v", res.Stage, res.Err)
		}
		if res.Duration < 0 {
			t.Errorf("stage %s has negative duration", res.Stage)
		}
		if res.Artifact == nil {
			t.Errorf("stage %s exposed no artifact", res.Stage)
		}
	}
}

// TestTimingAndLogObservers exercises the two ready-made observers.
func TestTimingAndLogObservers(t *testing.T) {
	w := testWorld(t)
	timing := NewTimingObserver()
	var logBuf bytes.Buffer
	det := New(WithSeed(7), WithWhois(w.Whois), WithProber(w.Prober),
		WithObserver(timing), WithObserver(&LogObserver{W: &logBuf, Prefix: "test: "}))
	if _, err := det.Run(w.Trace()); err != nil {
		t.Fatal(err)
	}
	for _, s := range StageNames() {
		if d, n := timing.Total(s); n != 1 || d <= 0 {
			t.Errorf("timing for %s: %v over %d runs", s, d, n)
		}
		if !strings.Contains(logBuf.String(), s) {
			t.Errorf("log observer missing stage %s:\n%s", s, logBuf.String())
		}
	}
	if !strings.Contains(timing.Render(), "mine") {
		t.Errorf("timing render missing stages:\n%s", timing.Render())
	}
}

// TestRunContextCancelledUpFront returns ctx.Err() without running stages.
func TestRunContextCancelledUpFront(t *testing.T) {
	w := testWorld(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rec := &stageRecorder{}
	det := New(WithSeed(7), WithObserver(rec))
	if _, err := det.RunContext(ctx, w.Trace()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(rec.starts) != 0 {
		t.Errorf("stages ran under a cancelled context: %v", rec.starts)
	}
}

// cancelAfterStage cancels the run context as soon as the named stage ends.
type cancelAfterStage struct {
	stage  string
	cancel context.CancelFunc
}

func (c *cancelAfterStage) StageStart(string, int) {}
func (c *cancelAfterStage) StageEnd(res StageResult) {
	if res.Stage == c.stage {
		c.cancel()
	}
}

// TestRunContextCancelBetweenStages cancels right after preprocessing and
// expects the run to stop before mining.
func TestRunContextCancelBetweenStages(t *testing.T) {
	w := testWorld(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := &stageRecorder{}
	det := New(WithSeed(7),
		WithObserver(&cancelAfterStage{stage: StagePreprocess, cancel: cancel}),
		WithObserver(rec))
	if _, err := det.RunContext(ctx, w.Trace()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !reflect.DeepEqual(rec.starts, []string{StagePreprocess}) {
		t.Errorf("stages started = %v, want only preprocess", rec.starts)
	}
}

// blockingDimension parks its Build until released, signalling when it
// starts — the hook for cancelling mid-mining.
type blockingDimension struct {
	name    string
	started chan struct{}
	release chan struct{}
}

func (d *blockingDimension) Name() string { return d.name }

func (d *blockingDimension) Build(idx *trace.Index) *similarity.ServerGraph {
	close(d.started)
	<-d.release
	return similarity.BuildUserAgentGraph(idx, similarity.Options{})
}

// TestRunContextCancelMidMining cancels while a dimension build is in
// flight: the run must return ctx.Err() promptly — waiting out at most the
// in-flight dimension — without starting the remaining dimensions.
func TestRunContextCancelMidMining(t *testing.T) {
	w := testWorld(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	slow := &blockingDimension{name: "slowdim", started: make(chan struct{}), release: make(chan struct{})}
	done := make(chan error, 1)
	det := New(WithSeed(7), WithMiningWorkers(1), WithExtraDimension(slow))
	go func() {
		_, err := det.RunContext(ctx, w.Trace())
		done <- err
	}()

	select {
	case <-slow.started:
	case <-time.After(30 * time.Second):
		t.Fatal("mining never reached the blocking dimension")
	}
	cancel()
	close(slow.release)

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunContext did not return after cancellation")
	}
}

// TestParallelMiningEquivalence is the determinism guard for the mining
// fan-out: a parallel run must produce a byte-identical report to the
// legacy sequential path on the same day trace.
func TestParallelMiningEquivalence(t *testing.T) {
	w := testWorld(t)
	tr := w.Trace()
	raw, stats := trace.BuildIndex(tr), tr.ComputeStats()
	base := []Option{WithSeed(7), WithWhois(w.Whois), WithProber(w.Prober)}

	seq, err := New(append(base, WithMiningWorkers(1))...).RunIndex(raw, stats)
	if err != nil {
		t.Fatal(err)
	}
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 2
	}
	par, err := New(append(base, WithMiningWorkers(workers))...).
		RunIndexContext(context.Background(), raw, stats)
	if err != nil {
		t.Fatal(err)
	}

	seqJSON, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	parJSON, err := json.Marshal(par)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqJSON, parJSON) {
		t.Errorf("parallel mining (workers=%d) diverges from sequential run", workers)
	}
	if !reflect.DeepEqual(seq.Summarize(), par.Summarize()) {
		t.Error("parallel mining summary diverges from sequential run")
	}
	if !reflect.DeepEqual(seq.Mined.Secondary, par.Mined.Secondary) {
		t.Error("parallel mining herds diverge from sequential run")
	}
}
