package similarity

import (
	"smash/internal/sparse"
	"smash/internal/trace"
)

// DimQuery names the optional query-parameter-pattern secondary dimension.
// The paper's false-negative analysis (§V-A2) finds 40 missed servers
// (Cycbot, FakeAV, Tidserv) that share no built-in secondary dimension but
// do share URI parameter patterns, and suggests extending the URI-file
// dimension with parameter patterns; this dimension is that extension,
// pluggable via core.WithExtraDimension.
const DimQuery = "querypattern"

// BuildQueryGraph connects servers whose query-parameter-pattern sets are
// similar (eq. 1 form over patterns such as "e&id&p"). Patterns seen on
// more than MaxFanout servers are ignored as too generic.
func BuildQueryGraph(idx *trace.Index, opts Options) *ServerGraph {
	opts = opts.normalized()
	sg, nodes := newServerGraph(idx)
	inc := sparse.Get(len(nodes.Infos))
	defer inc.Release()
	for id, info := range nodes.Infos {
		for q := range info.Queries {
			inc.Set(id, uint64(q))
		}
	}
	for _, p := range inc.CoOccurrence(opts.MaxFanout) {
		a, b := int(p.A), int(p.B)
		sim := SetSim(int(p.Count),
			len(nodes.Infos[a].Queries),
			len(nodes.Infos[b].Queries))
		if sim >= opts.MinSimilarity {
			_ = sg.G.AddEdge(a, b, sim)
		}
	}
	return sg
}
