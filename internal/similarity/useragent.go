package similarity

import (
	"smash/internal/sparse"
	"smash/internal/trace"
)

// DimUserAgent names the optional User-Agent secondary dimension. It is not
// part of the paper's three built-in secondary dimensions but demonstrates
// the extensibility hook (§III-B: "SMASH ... can easily incorporate new
// dimensions"): malware families often use one distinctive User-Agent
// string across all their servers (e.g. Sality's "KUKU v5.05exp").
const DimUserAgent = "useragent"

// BuildUserAgentGraph connects servers whose observed User-Agent sets are
// similar (eq. 1 form over UA sets). The fan-out cap naturally excludes
// ubiquitous browser UAs, leaving the rare malware-specific strings as the
// discriminating features.
func BuildUserAgentGraph(idx *trace.Index, opts Options) *ServerGraph {
	opts = opts.normalized()
	sg, nodes := newServerGraph(idx)
	inc := sparse.Get(len(nodes.Infos))
	defer inc.Release()
	for id, info := range nodes.Infos {
		for ua := range info.UserAgents {
			inc.Set(id, uint64(ua))
		}
	}
	for _, p := range inc.CoOccurrence(opts.MaxFanout) {
		a, b := int(p.A), int(p.B)
		sim := SetSim(int(p.Count),
			len(nodes.Infos[a].UserAgents),
			len(nodes.Infos[b].UserAgents))
		if sim >= opts.MinSimilarity {
			_ = sg.G.AddEdge(a, b, sim)
		}
	}
	return sg
}
