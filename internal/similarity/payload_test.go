package similarity

import (
	"testing"
	"time"

	"smash/internal/trace"
)

func TestBuildPayloadGraph(t *testing.T) {
	tr := &trace.Trace{}
	add := func(client, host, digest string) {
		tr.Requests = append(tr.Requests, trace.Request{
			Time: time.Unix(0, 0), Client: client, Host: host, ServerIP: "1.1.1.1",
			Path: "/f", Status: 200, PayloadDigest: digest,
		})
	}
	// Two download servers serve the same binary under different names.
	add("bot", "dl1.com", "sha1:payload-A")
	add("bot", "dl2.com", "sha1:payload-A")
	// A benign server with its own content.
	add("u", "site.com", "sha1:other")
	idx := trace.BuildIndex(tr)
	sg := BuildPayloadGraph(idx, Options{})
	a, b := sg.IDs["dl1.com"], sg.IDs["dl2.com"]
	connected := false
	sg.G.Neighbors(a, func(v int, w float64) {
		if v == b && w == 1.0 {
			connected = true
		}
	})
	if !connected {
		t.Error("shared-payload pair not connected")
	}
	site := sg.IDs["site.com"]
	sg.G.Neighbors(site, func(v int, w float64) {
		t.Errorf("site.com connected to %s", sg.Names[v])
	})
}

func TestBuildPayloadGraphNoDigests(t *testing.T) {
	tr := &trace.Trace{Requests: []trace.Request{
		{Time: time.Unix(0, 0), Client: "c", Host: "a.com", Path: "/x", Status: 200},
		{Time: time.Unix(0, 0), Client: "c", Host: "b.com", Path: "/x", Status: 200},
	}}
	idx := trace.BuildIndex(tr)
	if sg := BuildPayloadGraph(idx, Options{}); sg.G.EdgeCount() != 0 {
		t.Error("edges without digests")
	}
}

func TestBuildTemporalGraph(t *testing.T) {
	base := time.Unix(10_000, 0).UTC()
	tr := &trace.Trace{}
	add := func(at time.Time, client, host string) {
		tr.Requests = append(tr.Requests, trace.Request{
			Time: at, Client: client, Host: host, ServerIP: "1.1.1.1",
			Path: "/x", Status: 200,
		})
	}
	// A bot bursts through its C&C pool within one minute, twice.
	for round := 0; round < 2; round++ {
		at := base.Add(time.Duration(round) * 10 * time.Minute)
		add(at, "bot", "cc1.com")
		add(at.Add(2*time.Second), "bot", "cc2.com")
		add(at.Add(4*time.Second), "bot", "cc3.com")
	}
	// The same bot visits a benign site hours later.
	add(base.Add(5*time.Hour), "bot", "news.com")
	idx := trace.BuildIndex(tr)
	sg := BuildTemporalGraph(tr, idx, Options{})
	a, b := sg.IDs["cc1.com"], sg.IDs["cc2.com"]
	weight := 0.0
	sg.G.Neighbors(a, func(v int, w float64) {
		if v == b {
			weight = w
		}
	})
	if weight < 0.9 {
		t.Errorf("burst pair weight = %g, want ~1 (identical window sets)", weight)
	}
	news := sg.IDs["news.com"]
	sg.G.Neighbors(news, func(v int, w float64) {
		t.Errorf("news.com temporally linked to %s", sg.Names[v])
	})
}

func TestBuildTemporalGraphSkipsFilteredServers(t *testing.T) {
	base := time.Unix(0, 0).UTC()
	tr := &trace.Trace{Requests: []trace.Request{
		{Time: base, Client: "c", Host: "kept.com", Path: "/x", Status: 200},
		{Time: base, Client: "c", Host: "filtered.com", Path: "/x", Status: 200},
	}}
	idx := trace.BuildIndex(tr)
	idx.Remove("filtered.com")
	sg := BuildTemporalGraph(tr, idx, Options{})
	if _, ok := sg.IDs["filtered.com"]; ok {
		t.Error("filtered server present in temporal graph")
	}
	if sg.G.EdgeCount() != 0 {
		t.Error("edge to a filtered server")
	}
}
