package similarity

import (
	"strconv"

	"smash/internal/sparse"
	"smash/internal/trace"
)

// DimPayload names the optional payload-similarity secondary dimension
// suggested in the paper's Extensions discussion (§VI): malware download
// tiers serve the same binary (possibly under different names) from many
// servers, so shared payload digests of the captured response prefixes link
// them even when every other dimension is randomized.
const DimPayload = "payload"

// BuildPayloadGraph connects servers whose observed payload-digest sets are
// similar (eq. 1 form over digests). Digests served by more than MaxFanout
// servers (shared CDN assets, common libraries) are skipped.
func BuildPayloadGraph(idx *trace.Index, opts Options) *ServerGraph {
	opts = opts.normalized()
	sg := newServerGraph(idx)
	inc := sparse.NewIncidence()
	for _, name := range sg.Names {
		_ = inc.RowID(name)
		for d := range idx.Servers[name].Payloads {
			inc.Set(name, d)
		}
	}
	for _, p := range inc.CoOccurrence(opts.MaxFanout) {
		a, b := int(p.A), int(p.B)
		sim := SetSim(int(p.Count),
			len(idx.Servers[sg.Names[a]].Payloads),
			len(idx.Servers[sg.Names[b]].Payloads))
		if sim >= opts.MinSimilarity {
			_ = sg.G.AddEdge(a, b, sim)
		}
	}
	return sg
}

// DimTemporal names the optional temporal co-occurrence secondary dimension
// (§VI Extensions, after Gao et al.): servers that one client contacts
// within the same short time window are temporally related — bots cycle
// through their C&C pool in bursts.
const DimTemporal = "temporal"

// TemporalWindow is the co-occurrence bucket width in seconds.
const TemporalWindow = 60

// BuildTemporalGraph connects servers that share (client, time-window)
// co-occurrences, weighted by the eq. 1 form over the servers' window sets.
// It needs the raw trace for timestamps; servers absent from idx (e.g.
// filtered by preprocessing) are ignored.
func BuildTemporalGraph(t *trace.Trace, idx *trace.Index, opts Options) *ServerGraph {
	opts = opts.normalized()
	sg := newServerGraph(idx)
	inc := sparse.NewIncidence()
	windows := make(map[string]map[string]struct{}, len(sg.Names)) // server -> window tokens
	for _, name := range sg.Names {
		_ = inc.RowID(name)
		windows[name] = make(map[string]struct{})
	}
	for i := range t.Requests {
		r := &t.Requests[i]
		key := r.ServerKey()
		set, ok := windows[key]
		if !ok {
			continue
		}
		token := r.Client + "@" + strconv.FormatInt(r.Time.Unix()/TemporalWindow, 10)
		if _, seen := set[token]; seen {
			continue
		}
		set[token] = struct{}{}
		inc.Set(key, token)
	}
	for _, p := range inc.CoOccurrence(opts.MaxFanout) {
		a, b := int(p.A), int(p.B)
		sim := SetSim(int(p.Count), len(windows[sg.Names[a]]), len(windows[sg.Names[b]]))
		if sim >= opts.MinSimilarity {
			_ = sg.G.AddEdge(a, b, sim)
		}
	}
	return sg
}
