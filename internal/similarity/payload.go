package similarity

import (
	"smash/internal/sparse"
	"smash/internal/trace"
)

// DimPayload names the optional payload-similarity secondary dimension
// suggested in the paper's Extensions discussion (§VI): malware download
// tiers serve the same binary (possibly under different names) from many
// servers, so shared payload digests of the captured response prefixes link
// them even when every other dimension is randomized.
const DimPayload = "payload"

// BuildPayloadGraph connects servers whose observed payload-digest sets are
// similar (eq. 1 form over digests). Digests served by more than MaxFanout
// servers (shared CDN assets, common libraries) are skipped.
func BuildPayloadGraph(idx *trace.Index, opts Options) *ServerGraph {
	opts = opts.normalized()
	sg, nodes := newServerGraph(idx)
	inc := sparse.Get(len(nodes.Infos))
	defer inc.Release()
	for id, info := range nodes.Infos {
		for d := range info.Payloads {
			inc.Set(id, uint64(d))
		}
	}
	for _, p := range inc.CoOccurrence(opts.MaxFanout) {
		a, b := int(p.A), int(p.B)
		sim := SetSim(int(p.Count),
			len(nodes.Infos[a].Payloads),
			len(nodes.Infos[b].Payloads))
		if sim >= opts.MinSimilarity {
			_ = sg.G.AddEdge(a, b, sim)
		}
	}
	return sg
}

// DimTemporal names the optional temporal co-occurrence secondary dimension
// (§VI Extensions, after Gao et al.): servers that one client contacts
// within the same short time window are temporally related — bots cycle
// through their C&C pool in bursts.
const DimTemporal = "temporal"

// TemporalWindow is the co-occurrence bucket width in seconds.
const TemporalWindow = 60

// BuildTemporalGraph connects servers that share (client, time-window)
// co-occurrences, weighted by the eq. 1 form over the servers' window sets.
// It needs the raw trace for timestamps; servers absent from idx (e.g.
// filtered by preprocessing) are ignored. The co-occurrence token packs the
// interned client id with the time bucket into one uint64 feature.
func BuildTemporalGraph(t *trace.Trace, idx *trace.Index, opts Options) *ServerGraph {
	opts = opts.normalized()
	sg, nodes := newServerGraph(idx)
	inc := sparse.Get(len(nodes.Infos))
	defer inc.Release()
	windows := make([]map[uint64]struct{}, len(nodes.Infos)) // node -> window tokens
	for id := range nodes.Infos {
		windows[id] = make(map[uint64]struct{})
	}
	for i := range t.Requests {
		r := &t.Requests[i]
		id, ok := nodes.IDs[idx.Syms.RequestServerKey(r)]
		if !ok {
			continue
		}
		cid := idx.Syms.Clients.ID(r.Client)
		token := uint64(cid)<<32 | uint64(uint32(r.Time.Unix()/TemporalWindow))
		if _, seen := windows[id][token]; seen {
			continue
		}
		windows[id][token] = struct{}{}
		inc.Set(id, token)
	}
	for _, p := range inc.CoOccurrence(opts.MaxFanout) {
		a, b := int(p.A), int(p.B)
		sim := SetSim(int(p.Count), len(windows[a]), len(windows[b]))
		if sim >= opts.MinSimilarity {
			_ = sg.G.AddEdge(a, b, sim)
		}
	}
	return sg
}
