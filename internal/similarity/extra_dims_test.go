package similarity

import (
	"testing"
	"time"

	"smash/internal/trace"
)

// indexFromRows builds an index from (client, host, ip, path, query, ua).
func indexFromRows(rows [][6]string) *trace.Index {
	tr := &trace.Trace{}
	for _, r := range rows {
		tr.Requests = append(tr.Requests, trace.Request{
			Time: time.Unix(0, 0), Client: r[0], Host: r[1], ServerIP: r[2],
			Path: r[3], Query: r[4], UserAgent: r[5], Status: 200,
		})
	}
	return trace.BuildIndex(tr)
}

func TestBuildQueryGraph(t *testing.T) {
	idx := indexFromRows([][6]string{
		// Campaign servers share the p&id&e parameter pattern with
		// different values and different files.
		{"bot", "cyc1.com", "1.1.1.1", "/a.php", "p=1&id=9&e=0", "x"},
		{"bot", "cyc2.com", "1.1.1.2", "/b.php", "p=7&id=3&e=1", "x"},
		// Benign server with a different pattern.
		{"u", "shop.com", "2.2.2.2", "/c.php", "item=5", "x"},
	})
	sg := BuildQueryGraph(idx, Options{})
	a, b := sg.IDs["cyc1.com"], sg.IDs["cyc2.com"]
	connected := false
	sg.G.Neighbors(a, func(v int, w float64) {
		if v == b && w == 1.0 {
			connected = true
		}
	})
	if !connected {
		t.Error("parameter-pattern pair not connected")
	}
	shop := sg.IDs["shop.com"]
	sg.G.Neighbors(shop, func(v int, w float64) {
		t.Errorf("shop.com connected to %s", sg.Names[v])
	})
}

func TestBuildQueryGraphNoQueries(t *testing.T) {
	idx := indexFromRows([][6]string{
		{"u", "a.com", "1.1.1.1", "/x", "", "ua"},
		{"u", "b.com", "1.1.1.2", "/y", "", "ua"},
	})
	sg := BuildQueryGraph(idx, Options{})
	if sg.G.EdgeCount() != 0 {
		t.Error("edges without any query patterns")
	}
}

func TestBuildUserAgentGraph(t *testing.T) {
	idx := indexFromRows([][6]string{
		// Sality-style distinctive UA shared by the campaign.
		{"bot", "cc1.com", "1.1.1.1", "/", "", "KUKU v5.05exp"},
		{"bot", "cc2.com", "1.1.1.2", "/", "", "KUKU v5.05exp"},
		{"u", "site.com", "2.2.2.2", "/", "", "Mozilla/5.0"},
	})
	sg := BuildUserAgentGraph(idx, Options{})
	a, b := sg.IDs["cc1.com"], sg.IDs["cc2.com"]
	connected := false
	sg.G.Neighbors(a, func(v int, w float64) {
		if v == b {
			connected = true
		}
	})
	if !connected {
		t.Error("shared-UA pair not connected")
	}
}

func TestBuildUserAgentGraphFanoutCap(t *testing.T) {
	// A ubiquitous browser UA must not link the whole web once it exceeds
	// the fan-out cap.
	var rows [][6]string
	for i := 0; i < 30; i++ {
		rows = append(rows, [6]string{"u", "s" + string(rune('a'+i)) + ".com",
			"1.1.1.1", "/", "", "CommonBrowser"})
	}
	idx := indexFromRows(rows)
	sg := BuildUserAgentGraph(idx, Options{MaxFanout: 10})
	if got := sg.G.EdgeCount(); got != 0 {
		t.Errorf("common UA created %d edges despite cap", got)
	}
}
