// Package similarity implements the four relationship dimensions of SMASH
// (§III-B): the main client-similarity dimension (eq. 1) and the secondary
// URI-file (eqs. 2-7), IP-address-set (eq. 8) and whois dimensions. Each
// builder turns a trace.Index into a weighted server-similarity graph on
// which the herd miner runs Louvain community detection.
//
// Pairwise similarity is never computed densely: set-valued dimensions go
// through the sparse co-occurrence product (see internal/sparse), so only
// server pairs that actually share a client/IP/file/whois token are touched.
package similarity

import (
	"math"
	"sort"

	"smash/internal/graph"
	"smash/internal/sparse"
	"smash/internal/trace"
	"smash/internal/whois"
)

// Dimension names used across the pipeline. Client is the main dimension;
// the rest are secondary (§III-B).
const (
	DimClient = "client"
	DimFile   = "urifile"
	DimIP     = "ipset"
	DimWhois  = "whois"
)

// SecondaryDimensions lists the secondary dimension names in canonical order.
func SecondaryDimensions() []string {
	return []string{DimFile, DimIP, DimWhois}
}

// SetSim is the importance-weighted set similarity used by both the client
// dimension (eq. 1) and the IP dimension (eq. 8):
//
//	sim = (|A∩B|/|A|) · (|A∩B|/|B|)
//
// Two servers are similar when their common elements are important to both.
func SetSim(intersection, sizeA, sizeB int) float64 {
	if sizeA == 0 || sizeB == 0 || intersection == 0 {
		return 0
	}
	i := float64(intersection)
	return (i / float64(sizeA)) * (i / float64(sizeB))
}

// DefaultLenThreshold is the paper's len parameter (Appendix B): filenames
// of at most 25 characters are compared exactly; longer (likely obfuscated)
// names are compared by character distribution.
const DefaultLenThreshold = 25

// DefaultCosineThreshold is the paper's cosine cutoff for long filenames.
const DefaultCosineThreshold = 0.8

// FileNameSim implements eqs. (2)-(6): 1 if the two URI files are "similar",
// else 0. Short names (<= lenThreshold) must match exactly; long names are
// similar when the cosine of their byte-frequency distributions exceeds
// cosThreshold.
func FileNameSim(fi, fj string, lenThreshold int, cosThreshold float64) float64 {
	if fi == fj {
		return 1
	}
	if len(fi) <= lenThreshold || len(fj) <= lenThreshold {
		return 0
	}
	if CharCosine(fi, fj) > cosThreshold {
		return 1
	}
	return 0
}

// CharCosine returns the cosine similarity of the byte-frequency vectors of
// two strings (the CharSet vectors of eq. 6).
func CharCosine(a, b string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	var fa, fb [256]float64
	for i := 0; i < len(a); i++ {
		fa[a[i]]++
	}
	for i := 0; i < len(b); i++ {
		fb[b[i]]++
	}
	dot, na, nb := 0.0, 0.0, 0.0
	for i := 0; i < 256; i++ {
		dot += fa[i] * fb[i]
		na += fa[i] * fa[i]
		nb += fb[i] * fb[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// ServerFileSim implements eq. (7): the product of (fraction of Si's files
// that have a similar file on Sj) and the converse fraction.
func ServerFileSim(filesA, filesB []string, lenThreshold int, cosThreshold float64) float64 {
	if len(filesA) == 0 || len(filesB) == 0 {
		return 0
	}
	setB := make(map[string]struct{}, len(filesB))
	var longB []string
	for _, f := range filesB {
		setB[f] = struct{}{}
		if len(f) > lenThreshold {
			longB = append(longB, f)
		}
	}
	setA := make(map[string]struct{}, len(filesA))
	var longA []string
	for _, f := range filesA {
		setA[f] = struct{}{}
		if len(f) > lenThreshold {
			longA = append(longA, f)
		}
	}
	matched := func(f string, exact map[string]struct{}, longOther []string) bool {
		if _, ok := exact[f]; ok {
			return true
		}
		if len(f) <= lenThreshold {
			return false
		}
		for _, g := range longOther {
			if CharCosine(f, g) > cosThreshold {
				return true
			}
		}
		return false
	}
	ma := 0
	for _, f := range filesA {
		if matched(f, setB, longB) {
			ma++
		}
	}
	mb := 0
	for _, f := range filesB {
		if matched(f, setA, longA) {
			mb++
		}
	}
	return (float64(ma) / float64(len(filesA))) * (float64(mb) / float64(len(filesB)))
}

// ServerGraph is a similarity graph whose nodes are server keys.
type ServerGraph struct {
	// G is the weighted similarity graph.
	G *graph.Graph
	// Names maps node id -> server key.
	Names []string
	// IDs maps server key -> node id.
	IDs map[string]int
}

// newServerGraph allocates a ServerGraph over the sorted server keys of idx
// so node ids are deterministic.
func newServerGraph(idx *trace.Index) *ServerGraph {
	names := idx.ServerKeys()
	ids := make(map[string]int, len(names))
	for i, n := range names {
		ids[n] = i
	}
	return &ServerGraph{G: graph.New(len(names)), Names: names, IDs: ids}
}

// Options tunes the similarity graph builders.
type Options struct {
	// MinSimilarity is the minimum edge weight to keep (edges below it are
	// dropped, keeping the graphs sparse). Zero uses DefaultMinSimilarity.
	MinSimilarity float64
	// MaxFanout skips features (clients, IPs, file tokens, whois tokens)
	// shared by more than this many servers when generating candidate
	// pairs. Zero uses DefaultMaxFanout; negative disables the cap.
	MaxFanout int
	// LenThreshold is the filename length above which the cosine test is
	// used. Zero uses DefaultLenThreshold.
	LenThreshold int
	// CosineThreshold is the cosine cutoff for long filenames. Zero uses
	// DefaultCosineThreshold.
	CosineThreshold float64
	// MinSharedFeatures is the minimum number of shared features for a
	// pair to receive an edge. The client dimension uses 2 so that a
	// single shared visitor cannot link servers (servers visited by only
	// one client are handled by the dedicated single-client ASHs instead,
	// per Appendix C of the paper). Zero uses 1.
	MinSharedFeatures int
}

// Default thresholds. The paper keeps every nonzero-similarity edge in the
// secondary dimensions and relies on weighted Louvain modularity to
// separate weakly-attached servers, so the default cutoff is only an
// epsilon guarding numeric noise; raising it is an ablation knob (see
// bench_test.go). The main client dimension uses a stronger cutoff: eq. (1)
// demands that the common clients be important to *both* servers, and a
// popular benign server sharing two bots with a C&C pool has sim of about
// 2/|C| — noise that would otherwise bridge campaign cliques into
// sprawling benign communities. The fan-out cap mirrors the paper's IDF
// spirit for features.
const (
	DefaultMinSimilarity       = 0.01
	DefaultClientMinSimilarity = 0.1
	DefaultMaxFanout           = 500
)

func (o Options) normalized() Options {
	if o.MinSimilarity == 0 {
		o.MinSimilarity = DefaultMinSimilarity
	}
	if o.MaxFanout == 0 {
		o.MaxFanout = DefaultMaxFanout
	}
	if o.MaxFanout < 0 {
		o.MaxFanout = 0 // sparse package convention: 0 = uncapped
	}
	if o.LenThreshold == 0 {
		o.LenThreshold = DefaultLenThreshold
	}
	if o.CosineThreshold == 0 {
		o.CosineThreshold = DefaultCosineThreshold
	}
	if o.MinSharedFeatures <= 0 {
		o.MinSharedFeatures = 1
	}
	return o
}

// BuildClientGraph builds the main-dimension similarity graph: servers are
// connected with weight Client(Si,Sj) from eq. (1) when they share clients.
func BuildClientGraph(idx *trace.Index, opts Options) *ServerGraph {
	opts = opts.normalized()
	sg := newServerGraph(idx)
	inc := sparse.NewIncidence()
	for _, name := range sg.Names {
		// Intern rows in node-id order so incidence row ids == node ids.
		rid := inc.RowID(name)
		_ = rid
		for c := range idx.Servers[name].Clients {
			inc.Set(name, c)
		}
	}
	for _, p := range inc.CoOccurrence(opts.MaxFanout) {
		if int(p.Count) < opts.MinSharedFeatures {
			continue
		}
		a, b := int(p.A), int(p.B)
		sim := SetSim(int(p.Count), len(idx.Servers[sg.Names[a]].Clients), len(idx.Servers[sg.Names[b]].Clients))
		if sim >= opts.MinSimilarity {
			_ = sg.G.AddEdge(a, b, sim)
		}
	}
	return sg
}

// BuildIPGraph builds the IP-address-set secondary dimension graph (eq. 8).
func BuildIPGraph(idx *trace.Index, opts Options) *ServerGraph {
	opts = opts.normalized()
	sg := newServerGraph(idx)
	inc := sparse.NewIncidence()
	for _, name := range sg.Names {
		_ = inc.RowID(name)
		for ip := range idx.Servers[name].IPs {
			inc.Set(name, ip)
		}
	}
	for _, p := range inc.CoOccurrence(opts.MaxFanout) {
		a, b := int(p.A), int(p.B)
		sim := SetSim(int(p.Count), len(idx.Servers[sg.Names[a]].IPs), len(idx.Servers[sg.Names[b]].IPs))
		if sim >= opts.MinSimilarity {
			_ = sg.G.AddEdge(a, b, sim)
		}
	}
	return sg
}

// BuildFileGraph builds the URI-file secondary dimension graph. Candidate
// server pairs are generated from shared file tokens (exact for short
// names, a distribution bucket for long names); each candidate pair is then
// scored with the full eq. (7) similarity.
func BuildFileGraph(idx *trace.Index, opts Options) *ServerGraph {
	opts = opts.normalized()
	sg := newServerGraph(idx)
	inc := sparse.NewIncidence()

	// Long (possibly obfuscated) filenames: cluster them by cosine
	// similarity so that similar-but-unequal names map to one token.
	longNames := make(map[string][]int) // long file -> server node ids
	for id, name := range sg.Names {
		_ = inc.RowID(name)
		for f := range idx.Servers[name].Files {
			if len(f) > opts.LenThreshold {
				longNames[f] = append(longNames[f], id)
				continue
			}
			inc.Set(name, "x:"+f)
		}
	}
	if len(longNames) > 0 {
		files := make([]string, 0, len(longNames))
		for f := range longNames {
			files = append(files, f)
		}
		sort.Strings(files)
		groups := clusterLongNames(files, opts.CosineThreshold)
		for gi, members := range groups {
			token := "g:" + itoa(gi)
			for _, fi := range members {
				for _, server := range longNames[files[fi]] {
					inc.Set(sg.Names[server], token)
				}
			}
		}
	}

	for _, p := range inc.CoOccurrence(opts.MaxFanout) {
		a, b := int(p.A), int(p.B)
		sim := ServerFileSim(
			idx.Servers[sg.Names[a]].FileList(),
			idx.Servers[sg.Names[b]].FileList(),
			opts.LenThreshold, opts.CosineThreshold)
		if sim >= opts.MinSimilarity {
			_ = sg.G.AddEdge(a, b, sim)
		}
	}
	return sg
}

// clusterLongNames groups long filenames into connected components of the
// "cosine > threshold" relation using a union-find over pairwise checks.
// The population of long names is small in practice (they only appear in
// obfuscating campaigns), so the quadratic pass is cheap; a hard cap guards
// pathological inputs.
func clusterLongNames(files []string, cosThreshold float64) [][]int {
	const maxPairwise = 4096
	parent := make([]int, len(files))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	n := len(files)
	if n > maxPairwise {
		n = maxPairwise
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if CharCosine(files[i], files[j]) > cosThreshold {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[ri] = rj
				}
			}
		}
	}
	groups := make(map[int][]int)
	for i := range files {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(groups))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BuildWhoisGraph builds the whois secondary dimension graph: servers whose
// registration records share at least whois.MinSharedFields fields are
// connected with the field-overlap similarity. Candidate pairs come from
// shared field-signature tokens.
func BuildWhoisGraph(idx *trace.Index, reg whois.Registry, opts Options) *ServerGraph {
	opts = opts.normalized()
	sg := newServerGraph(idx)
	if reg == nil {
		return sg
	}
	records := make(map[int]whois.Record)
	inc := sparse.NewIncidence()
	for id, name := range sg.Names {
		_ = inc.RowID(name)
		rec, ok := reg.Lookup(name)
		if !ok {
			continue
		}
		records[id] = rec
		for _, token := range whois.FieldSignature(rec) {
			inc.Set(name, token)
		}
	}
	for _, p := range inc.CoOccurrence(opts.MaxFanout) {
		a, b := int(p.A), int(p.B)
		sim := whois.Similarity(records[a], records[b])
		if sim > 0 {
			_ = sg.G.AddEdge(a, b, sim)
		}
	}
	return sg
}
