// Package similarity implements the four relationship dimensions of SMASH
// (§III-B): the main client-similarity dimension (eq. 1) and the secondary
// URI-file (eqs. 2-7), IP-address-set (eq. 8) and whois dimensions. Each
// builder turns a trace.Index into a weighted server-similarity graph on
// which the herd miner runs Louvain community detection.
//
// Pairwise similarity is never computed densely: set-valued dimensions go
// through the sparse co-occurrence product (see internal/sparse), so only
// server pairs that actually share a client/IP/file/whois token are touched.
// Builders run entirely on interned ids: node ids come from the index's
// cached NodeTable (built once per index, not once per dimension) and
// features are the data plane's uint32 symbol ids, so no string is hashed
// inside a mining loop.
package similarity

import (
	"math"
	"slices"
	"sort"

	"smash/internal/graph"
	"smash/internal/sparse"
	"smash/internal/trace"
	"smash/internal/whois"
)

// Dimension names used across the pipeline. Client is the main dimension;
// the rest are secondary (§III-B).
const (
	DimClient = "client"
	DimFile   = "urifile"
	DimIP     = "ipset"
	DimWhois  = "whois"
)

// SecondaryDimensions lists the secondary dimension names in canonical order.
func SecondaryDimensions() []string {
	return []string{DimFile, DimIP, DimWhois}
}

// SetSim is the importance-weighted set similarity used by both the client
// dimension (eq. 1) and the IP dimension (eq. 8):
//
//	sim = (|A∩B|/|A|) · (|A∩B|/|B|)
//
// Two servers are similar when their common elements are important to both.
func SetSim(intersection, sizeA, sizeB int) float64 {
	if sizeA == 0 || sizeB == 0 || intersection == 0 {
		return 0
	}
	i := float64(intersection)
	return (i / float64(sizeA)) * (i / float64(sizeB))
}

// DefaultLenThreshold is the paper's len parameter (Appendix B): filenames
// of at most 25 characters are compared exactly; longer (likely obfuscated)
// names are compared by character distribution.
const DefaultLenThreshold = 25

// DefaultCosineThreshold is the paper's cosine cutoff for long filenames.
const DefaultCosineThreshold = 0.8

// FileNameSim implements eqs. (2)-(6): 1 if the two URI files are "similar",
// else 0. Short names (<= lenThreshold) must match exactly; long names are
// similar when the cosine of their byte-frequency distributions exceeds
// cosThreshold.
func FileNameSim(fi, fj string, lenThreshold int, cosThreshold float64) float64 {
	if fi == fj {
		return 1
	}
	if len(fi) <= lenThreshold || len(fj) <= lenThreshold {
		return 0
	}
	if CharCosine(fi, fj) > cosThreshold {
		return 1
	}
	return 0
}

// CharCosine returns the cosine similarity of the byte-frequency vectors of
// two strings (the CharSet vectors of eq. 6).
func CharCosine(a, b string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	var fa, fb [256]float64
	for i := 0; i < len(a); i++ {
		fa[a[i]]++
	}
	for i := 0; i < len(b); i++ {
		fb[b[i]]++
	}
	dot, na, nb := 0.0, 0.0, 0.0
	for i := 0; i < 256; i++ {
		dot += fa[i] * fb[i]
		na += fa[i] * fa[i]
		nb += fb[i] * fb[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// fileSet is one server's URI files prepared for repeated eq. (7)
// evaluations: the sorted full list plus the long-name sublist. Preparing
// once per server (not once per candidate pair) is what keeps the file
// dimension out of the profile.
type fileSet struct {
	sorted []string // all files, sorted (FileList order)
	long   []string // files longer than lenThreshold
}

func newFileSet(files []string, lenThreshold int) fileSet {
	fs := fileSet{sorted: files}
	for _, f := range files {
		if len(f) > lenThreshold {
			fs.long = append(fs.long, f)
		}
	}
	return fs
}

// serverFileSimSets implements eq. (7) over two prepared file sets: the
// product of (fraction of Si's files with a similar file on Sj) and the
// converse fraction. Exact matches are found by a sorted merge walk; only
// long names fall back to the pairwise cosine test.
func serverFileSimSets(a, b fileSet, lenThreshold int, cosThreshold float64) float64 {
	na, nb := len(a.sorted), len(b.sorted)
	if na == 0 || nb == 0 {
		return 0
	}
	// Exact intersection count via merge walk (lists are sorted and
	// deduplicated). An exact match satisfies both directions at once.
	exact := 0
	for i, j := 0, 0; i < na && j < nb; {
		switch {
		case a.sorted[i] == b.sorted[j]:
			exact++
			i++
			j++
		case a.sorted[i] < b.sorted[j]:
			i++
		default:
			j++
		}
	}
	cosMatched := func(f string, other []string) bool {
		for _, g := range other {
			if f != g && CharCosine(f, g) > cosThreshold {
				return true
			}
		}
		return false
	}
	count := func(x, y fileSet) int {
		m := exact
		// Long names without an exact partner may still match by cosine.
		for i, j := 0, 0; i < len(x.long); i++ {
			f := x.long[i]
			for j < len(y.sorted) && y.sorted[j] < f {
				j++
			}
			if j < len(y.sorted) && y.sorted[j] == f {
				continue // already counted as exact
			}
			if cosMatched(f, y.long) {
				m++
			}
		}
		return m
	}
	return (float64(count(a, b)) / float64(na)) * (float64(count(b, a)) / float64(nb))
}

// ServerFileSim implements eq. (7): the product of (fraction of Si's files
// that have a similar file on Sj) and the converse fraction. Inputs are
// treated as file *sets* (the paper's formulation): they need not be
// sorted, and duplicate entries collapse before the fractions are taken.
// Hot paths prepare fileSets once per server and use the internal sorted
// form instead.
func ServerFileSim(filesA, filesB []string, lenThreshold int, cosThreshold float64) float64 {
	dedup := func(files []string) []string {
		s := append([]string(nil), files...)
		sort.Strings(s)
		return slices.Compact(s)
	}
	return serverFileSimSets(
		newFileSet(dedup(filesA), lenThreshold),
		newFileSet(dedup(filesB), lenThreshold),
		lenThreshold, cosThreshold)
}

// ServerGraph is a similarity graph whose nodes are server keys.
type ServerGraph struct {
	// G is the weighted similarity graph.
	G *graph.Graph
	// Names maps node id -> server key. Shared with the index's NodeTable;
	// treat as read-only.
	Names []string
	// IDs maps server key -> node id. Shared with the index's NodeTable;
	// treat as read-only.
	IDs map[string]int
}

// newServerGraph allocates a ServerGraph over the index's cached node
// table, so node ids are deterministic (sorted server keys) and the sort
// happens once per index rather than once per dimension.
func newServerGraph(idx *trace.Index) (*ServerGraph, *trace.NodeTable) {
	nodes := idx.Nodes()
	return &ServerGraph{G: graph.New(len(nodes.Names)), Names: nodes.Names, IDs: nodes.IDs}, nodes
}

// Options tunes the similarity graph builders.
type Options struct {
	// MinSimilarity is the minimum edge weight to keep (edges below it are
	// dropped, keeping the graphs sparse). Zero uses DefaultMinSimilarity.
	MinSimilarity float64
	// MaxFanout skips features (clients, IPs, file tokens, whois tokens)
	// shared by more than this many servers when generating candidate
	// pairs. Zero uses DefaultMaxFanout; negative disables the cap.
	MaxFanout int
	// LenThreshold is the filename length above which the cosine test is
	// used. Zero uses DefaultLenThreshold.
	LenThreshold int
	// CosineThreshold is the cosine cutoff for long filenames. Zero uses
	// DefaultCosineThreshold.
	CosineThreshold float64
	// MinSharedFeatures is the minimum number of shared features for a
	// pair to receive an edge. The client dimension uses 2 so that a
	// single shared visitor cannot link servers (servers visited by only
	// one client are handled by the dedicated single-client ASHs instead,
	// per Appendix C of the paper). Zero uses 1.
	MinSharedFeatures int
}

// Default thresholds. The paper keeps every nonzero-similarity edge in the
// secondary dimensions and relies on weighted Louvain modularity to
// separate weakly-attached servers, so the default cutoff is only an
// epsilon guarding numeric noise; raising it is an ablation knob (see
// bench_test.go). The main client dimension uses a stronger cutoff: eq. (1)
// demands that the common clients be important to *both* servers, and a
// popular benign server sharing two bots with a C&C pool has sim of about
// 2/|C| — noise that would otherwise bridge campaign cliques into
// sprawling benign communities. The fan-out cap mirrors the paper's IDF
// spirit for features.
const (
	DefaultMinSimilarity       = 0.01
	DefaultClientMinSimilarity = 0.1
	DefaultMaxFanout           = 500
)

func (o Options) normalized() Options {
	if o.MinSimilarity == 0 {
		o.MinSimilarity = DefaultMinSimilarity
	}
	if o.MaxFanout == 0 {
		o.MaxFanout = DefaultMaxFanout
	}
	if o.MaxFanout < 0 {
		o.MaxFanout = 0 // sparse package convention: 0 = uncapped
	}
	if o.LenThreshold == 0 {
		o.LenThreshold = DefaultLenThreshold
	}
	if o.CosineThreshold == 0 {
		o.CosineThreshold = DefaultCosineThreshold
	}
	if o.MinSharedFeatures <= 0 {
		o.MinSharedFeatures = 1
	}
	return o
}

// BuildClientGraph builds the main-dimension similarity graph: servers are
// connected with weight Client(Si,Sj) from eq. (1) when they share clients.
func BuildClientGraph(idx *trace.Index, opts Options) *ServerGraph {
	opts = opts.normalized()
	sg, nodes := newServerGraph(idx)
	inc := sparse.Get(len(nodes.Infos))
	defer inc.Release()
	for id, info := range nodes.Infos {
		for c := range info.Clients {
			inc.Set(id, uint64(c))
		}
	}
	for _, p := range inc.CoOccurrence(opts.MaxFanout) {
		if int(p.Count) < opts.MinSharedFeatures {
			continue
		}
		a, b := int(p.A), int(p.B)
		sim := SetSim(int(p.Count), len(nodes.Infos[a].Clients), len(nodes.Infos[b].Clients))
		if sim >= opts.MinSimilarity {
			_ = sg.G.AddEdge(a, b, sim)
		}
	}
	return sg
}

// BuildIPGraph builds the IP-address-set secondary dimension graph (eq. 8).
func BuildIPGraph(idx *trace.Index, opts Options) *ServerGraph {
	opts = opts.normalized()
	sg, nodes := newServerGraph(idx)
	inc := sparse.Get(len(nodes.Infos))
	defer inc.Release()
	for id, info := range nodes.Infos {
		for ip := range info.IPs {
			inc.Set(id, uint64(ip))
		}
	}
	for _, p := range inc.CoOccurrence(opts.MaxFanout) {
		a, b := int(p.A), int(p.B)
		sim := SetSim(int(p.Count), len(nodes.Infos[a].IPs), len(nodes.Infos[b].IPs))
		if sim >= opts.MinSimilarity {
			_ = sg.G.AddEdge(a, b, sim)
		}
	}
	return sg
}

// longGroupBase offsets the synthetic long-name group tokens past the file
// id space, so the two feature kinds cannot collide in one incidence.
const longGroupBase = uint64(1) << 40

// BuildFileGraph builds the URI-file secondary dimension graph. Candidate
// server pairs are generated from shared file tokens (the interned file id
// for short names, a distribution bucket for long names); each candidate
// pair is then scored with the full eq. (7) similarity over file sets
// prepared once per server.
func BuildFileGraph(idx *trace.Index, opts Options) *ServerGraph {
	opts = opts.normalized()
	sg, nodes := newServerGraph(idx)
	inc := sparse.Get(len(nodes.Infos))
	defer inc.Release()
	fileNames := idx.Syms.Files.Names()

	// Long (possibly obfuscated) filenames: cluster them by cosine
	// similarity so that similar-but-unequal names map to one token.
	longNames := make(map[string][]int) // long file -> server node ids
	for id, info := range nodes.Infos {
		for f := range info.Files {
			name := fileNames[f]
			if len(name) > opts.LenThreshold {
				longNames[name] = append(longNames[name], id)
				continue
			}
			inc.Set(id, uint64(f))
		}
	}
	if len(longNames) > 0 {
		files := make([]string, 0, len(longNames))
		for f := range longNames {
			files = append(files, f)
		}
		sort.Strings(files)
		groups := clusterLongNames(files, opts.CosineThreshold)
		for gi, members := range groups {
			token := longGroupBase + uint64(gi)
			for _, fi := range members {
				for _, server := range longNames[files[fi]] {
					inc.Set(server, token)
				}
			}
		}
	}

	// File sets are prepared lazily: only servers that appear in candidate
	// pairs pay the sort.
	fileSets := make([]fileSet, len(nodes.Infos))
	prepared := make([]bool, len(nodes.Infos))
	setOf := func(id int) fileSet {
		if !prepared[id] {
			fileSets[id] = newFileSet(nodes.Infos[id].FileList(), opts.LenThreshold)
			prepared[id] = true
		}
		return fileSets[id]
	}

	for _, p := range inc.CoOccurrence(opts.MaxFanout) {
		a, b := int(p.A), int(p.B)
		sim := serverFileSimSets(setOf(a), setOf(b), opts.LenThreshold, opts.CosineThreshold)
		if sim >= opts.MinSimilarity {
			_ = sg.G.AddEdge(a, b, sim)
		}
	}
	return sg
}

// clusterLongNames groups long filenames into connected components of the
// "cosine > threshold" relation using a union-find over pairwise checks.
// The population of long names is small in practice (they only appear in
// obfuscating campaigns), so the quadratic pass is cheap; a hard cap guards
// pathological inputs.
func clusterLongNames(files []string, cosThreshold float64) [][]int {
	const maxPairwise = 4096
	parent := make([]int, len(files))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	n := len(files)
	if n > maxPairwise {
		n = maxPairwise
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if CharCosine(files[i], files[j]) > cosThreshold {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[ri] = rj
				}
			}
		}
	}
	groups := make(map[int][]int)
	for i := range files {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(groups))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}

// BuildWhoisGraph builds the whois secondary dimension graph: servers whose
// registration records share at least whois.MinSharedFields fields are
// connected with the field-overlap similarity. Candidate pairs come from
// shared field-signature tokens.
func BuildWhoisGraph(idx *trace.Index, reg whois.Registry, opts Options) *ServerGraph {
	opts = opts.normalized()
	sg, nodes := newServerGraph(idx)
	if reg == nil {
		return sg
	}
	records := make(map[int]whois.Record)
	inc := sparse.Get(len(nodes.Infos))
	defer inc.Release()
	for id, name := range nodes.Names {
		rec, ok := reg.Lookup(name)
		if !ok {
			continue
		}
		records[id] = rec
		for _, token := range whois.FieldSignature(rec) {
			inc.SetString(id, token)
		}
	}
	for _, p := range inc.CoOccurrence(opts.MaxFanout) {
		a, b := int(p.A), int(p.B)
		sim := whois.Similarity(records[a], records[b])
		if sim > 0 {
			_ = sg.G.AddEdge(a, b, sim)
		}
	}
	return sg
}
