package similarity

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"smash/internal/trace"
	"smash/internal/whois"
)

func TestSetSim(t *testing.T) {
	tests := []struct {
		name          string
		inter, na, nb int
		want          float64
	}{
		{"identical sets", 5, 5, 5, 1.0},
		{"half overlap both", 5, 10, 10, 0.25},
		{"no overlap", 0, 10, 10, 0},
		{"empty side", 3, 0, 10, 0},
		{"asymmetric importance", 2, 2, 8, 0.25},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SetSim(tt.inter, tt.na, tt.nb); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("SetSim(%d,%d,%d) = %g, want %g", tt.inter, tt.na, tt.nb, got, tt.want)
			}
		})
	}
}

func TestSetSimBoundsAndSymmetry(t *testing.T) {
	f := func(i, a, b uint8) bool {
		inter := int(i)
		na, nb := int(a), int(b)
		if inter > na {
			inter = na
		}
		if inter > nb {
			inter = nb
		}
		s1 := SetSim(inter, na, nb)
		s2 := SetSim(inter, nb, na)
		return s1 == s2 && s1 >= 0 && s1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCharCosine(t *testing.T) {
	if got := CharCosine("abc", "abc"); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical cosine = %g, want 1", got)
	}
	if got := CharCosine("abc", "cba"); math.Abs(got-1) > 1e-12 {
		t.Errorf("permutation cosine = %g, want 1", got)
	}
	if got := CharCosine("aaa", "bbb"); got != 0 {
		t.Errorf("disjoint cosine = %g, want 0", got)
	}
	if got := CharCosine("", "abc"); got != 0 {
		t.Errorf("empty cosine = %g, want 0", got)
	}
}

func TestCharCosineBounds(t *testing.T) {
	f := func(a, b string) bool {
		c := CharCosine(a, b)
		return c >= 0 && c <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFileNameSim(t *testing.T) {
	long1 := "ab0cd1ef2gh3ij4kl5mn6op7qr8st9"    // 30 chars
	long2 := "ba0dc1fe2hg3ji4lk5nm6po7rq8ts9"    // same multiset
	longDiff := "zzzzzzzzzzzzzzzzzzzzzzzzzzzzzz" // disjoint
	tests := []struct {
		name   string
		fi, fj string
		want   float64
	}{
		{"exact short match", "login.php", "login.php", 1},
		{"short mismatch", "login.php", "news.php", 0},
		{"short vs long mismatch", "a.php", long1, 0},
		{"long permuted match", long1, long2, 1},
		{"long disjoint", long1, longDiff, 0},
		{"long exact", long1, long1, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := FileNameSim(tt.fi, tt.fj, DefaultLenThreshold, DefaultCosineThreshold)
			if got != tt.want {
				t.Errorf("FileNameSim(%q,%q) = %g, want %g", tt.fi, tt.fj, got, tt.want)
			}
		})
	}
}

func TestServerFileSim(t *testing.T) {
	// Both servers expose only the shared C&C script: full similarity.
	if got := ServerFileSim([]string{"login.php"}, []string{"login.php"}, 25, 0.8); got != 1 {
		t.Errorf("identical single-file = %g, want 1", got)
	}
	// Server A has 2 files, one shared; server B has 1 file, shared:
	// (1/2)*(1/1) = 0.5.
	got := ServerFileSim([]string{"login.php", "x.gif"}, []string{"login.php"}, 25, 0.8)
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("partial = %g, want 0.5", got)
	}
	if got := ServerFileSim(nil, []string{"a"}, 25, 0.8); got != 0 {
		t.Errorf("empty side = %g, want 0", got)
	}
}

func TestServerFileSimSymmetric(t *testing.T) {
	a := []string{"login.php", "setup.php", "x.gif"}
	b := []string{"setup.php", "y.gif"}
	s1 := ServerFileSim(a, b, 25, 0.8)
	s2 := ServerFileSim(b, a, 25, 0.8)
	if math.Abs(s1-s2) > 1e-12 {
		t.Errorf("asymmetric: %g vs %g", s1, s2)
	}
}

// buildIndex creates an index from compact specs: each spec is
// (client, host, ip, path).
func buildIndex(specs [][4]string) *trace.Index {
	tr := &trace.Trace{}
	for _, s := range specs {
		tr.Requests = append(tr.Requests, trace.Request{
			Time: time.Unix(0, 0), Client: s[0], Host: s[1], ServerIP: s[2], Path: s[3], Status: 200,
		})
	}
	return trace.BuildIndex(tr)
}

func TestBuildClientGraph(t *testing.T) {
	idx := buildIndex([][4]string{
		// bot1, bot2 contact both C&C domains; a benign user visits news.com.
		{"bot1", "cc1.com", "9.9.9.1", "/login.php"},
		{"bot1", "cc2.com", "9.9.9.2", "/login.php"},
		{"bot2", "cc1.com", "9.9.9.1", "/login.php"},
		{"bot2", "cc2.com", "9.9.9.2", "/login.php"},
		{"user", "news.com", "8.8.8.8", "/index.html"},
	})
	sg := BuildClientGraph(idx, Options{})
	a, b := sg.IDs["cc1.com"], sg.IDs["cc2.com"]
	found := false
	sg.G.Neighbors(a, func(v int, w float64) {
		if v == b {
			found = true
			if math.Abs(w-1.0) > 1e-12 {
				t.Errorf("edge weight = %g, want 1 (identical client sets)", w)
			}
		}
	})
	if !found {
		t.Fatal("C&C pair not connected in client graph")
	}
	n := sg.IDs["news.com"]
	sg.G.Neighbors(n, func(v int, w float64) {
		t.Errorf("news.com should be isolated, connected to %s", sg.Names[v])
	})
}

func TestBuildIPGraph(t *testing.T) {
	idx := buildIndex([][4]string{
		// Domain-flux: two domains resolving to the same IP.
		{"c1", "flux1.com", "6.6.6.6", "/a"},
		{"c2", "flux2.com", "6.6.6.6", "/b"},
		{"c3", "other.com", "7.7.7.7", "/c"},
	})
	sg := BuildIPGraph(idx, Options{})
	a, b := sg.IDs["flux1.com"], sg.IDs["flux2.com"]
	found := false
	sg.G.Neighbors(a, func(v int, w float64) {
		if v == b && w == 1.0 {
			found = true
		}
	})
	if !found {
		t.Error("flux pair not connected with weight 1 in IP graph")
	}
}

func TestBuildFileGraphShortNames(t *testing.T) {
	idx := buildIndex([][4]string{
		// ZmEu scan: different victims, same vulnerable file, different paths.
		{"bot", "victim1.com", "1.1.1.1", "/phpmyadmin/scripts/setup.php"},
		{"bot", "victim2.com", "1.1.1.2", "/pma/setup.php"},
		{"u", "normal.com", "2.2.2.2", "/about.html"},
	})
	sg := BuildFileGraph(idx, Options{})
	a, b := sg.IDs["victim1.com"], sg.IDs["victim2.com"]
	found := false
	sg.G.Neighbors(a, func(v int, w float64) {
		if v == b {
			found = true
		}
	})
	if !found {
		t.Error("scan victims not connected in file graph")
	}
}

func TestBuildFileGraphObfuscatedNames(t *testing.T) {
	// Two servers with obfuscated (long, permuted) filenames must connect.
	f1 := "a1b2c3d4e5f6g7h8i9j0k1l2m3n4.php"
	f2 := "4n3m2l1k0j9i8h7g6f5e4d3c2b1a.php"
	idx := buildIndex([][4]string{
		{"bot", "obf1.com", "3.3.3.1", "/" + f1},
		{"bot", "obf2.com", "3.3.3.2", "/" + f2},
	})
	sg := BuildFileGraph(idx, Options{})
	a, b := sg.IDs["obf1.com"], sg.IDs["obf2.com"]
	found := false
	sg.G.Neighbors(a, func(v int, w float64) {
		if v == b {
			found = true
		}
	})
	if !found {
		t.Error("obfuscated-name servers not connected in file graph")
	}
}

func TestBuildWhoisGraph(t *testing.T) {
	idx := buildIndex([][4]string{
		{"c", "evil1.com", "1.1.1.1", "/"},
		{"c", "evil2.com", "1.1.1.2", "/"},
		{"c", "clean.com", "2.2.2.2", "/"},
	})
	reg := whois.NewMapRegistry()
	reg.Add(whois.Record{Domain: "evil1.com", Phone: "+7-1", Address: "1 Bad St", NameServers: []string{"ns1.bad.net"}})
	reg.Add(whois.Record{Domain: "evil2.com", Phone: "+7-1", Address: "1 Bad St", NameServers: []string{"ns1.bad.net"}})
	reg.Add(whois.Record{Domain: "clean.com", Phone: "+1-555", Address: "Main St", NameServers: []string{"ns.clean.com"}})
	sg := BuildWhoisGraph(idx, reg, Options{})
	a, b := sg.IDs["evil1.com"], sg.IDs["evil2.com"]
	found := false
	sg.G.Neighbors(a, func(v int, w float64) {
		if v == b {
			found = true
			if w < 0.5 {
				t.Errorf("whois edge weight = %g, want >= 0.6 (3/5 fields)", w)
			}
		}
	})
	if !found {
		t.Error("whois-linked domains not connected")
	}
	c := sg.IDs["clean.com"]
	sg.G.Neighbors(c, func(v int, w float64) {
		t.Errorf("clean.com should be isolated, connected to %s", sg.Names[v])
	})
}

func TestBuildWhoisGraphNilRegistry(t *testing.T) {
	idx := buildIndex([][4]string{{"c", "a.com", "1.1.1.1", "/"}})
	sg := BuildWhoisGraph(idx, nil, Options{})
	if sg.G.N() != 1 || sg.G.EdgeCount() != 0 {
		t.Error("nil registry should produce an edgeless graph")
	}
}

func TestFanoutCapInClientGraph(t *testing.T) {
	// A "client" shared by very many servers (e.g. a crawler) must not
	// create a clique when MaxFanout is small.
	var specs [][4]string
	for i := 0; i < 20; i++ {
		specs = append(specs, [4]string{"crawler", "s" + string(rune('a'+i)) + ".com", "1.1.1.1", "/"})
	}
	idx := buildIndex(specs)
	sg := BuildClientGraph(idx, Options{MaxFanout: 10})
	if got := sg.G.EdgeCount(); got != 0 {
		t.Errorf("crawler created %d edges despite fan-out cap", got)
	}
	sgAll := BuildClientGraph(idx, Options{MaxFanout: -1})
	if got := sgAll.G.EdgeCount(); got != 20*19/2 {
		t.Errorf("uncapped edges = %d, want %d", got, 20*19/2)
	}
}

func TestSecondaryDimensions(t *testing.T) {
	dims := SecondaryDimensions()
	if len(dims) != 3 {
		t.Fatalf("dims = %v", dims)
	}
	for _, d := range dims {
		if d == DimClient {
			t.Error("main dimension listed as secondary")
		}
	}
}
