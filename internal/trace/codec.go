package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// The on-disk format is a line-oriented TSV, one request per line:
//
//	unixNano \t client \t host \t serverIP \t path \t query \t userAgent \t referrer \t status \t payloadDigest
//
// Empty fields are written as "-". Lines beginning with '#' are comments.
// The payload-digest column is optional on input (9-field legacy records
// parse with an empty digest). This mirrors the flow-log exports SMASH
// would consume at an ISP vantage point while staying trivially greppable.

const (
	fieldCount       = 10
	legacyFieldCount = 9
)

// ErrBadRecord is wrapped by decode errors caused by malformed lines.
var ErrBadRecord = errors.New("malformed trace record")

// Writer streams requests to an io.Writer in the TSV trace format.
type Writer struct {
	w   *bufio.Writer
	buf []byte
	err error
}

// NewWriter returns a trace writer wrapping w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

func emptyDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func dashEmpty(s string) string {
	if s == "-" {
		return ""
	}
	return s
}

// Write appends one request. Errors are sticky and returned from Flush too.
func (tw *Writer) Write(r *Request) error {
	if tw.err != nil {
		return tw.err
	}
	tw.buf = AppendRecord(tw.buf[:0], r)
	tw.buf = append(tw.buf, '\n')
	_, tw.err = tw.w.Write(tw.buf)
	return tw.err
}

// AppendRecord appends r as one TSV record line (without a trailing
// newline) — the emit-side counterpart of ParseRecord, shared by Writer
// and the internal/source TSV emitter.
func AppendRecord(dst []byte, r *Request) []byte {
	return fmt.Appendf(dst, "%d\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%d\t%s",
		r.Time.UnixNano(),
		emptyDash(sanitizeField(r.Client)),
		emptyDash(sanitizeField(r.Host)),
		emptyDash(sanitizeField(r.ServerIP)),
		emptyDash(sanitizeField(r.Path)),
		emptyDash(sanitizeField(r.Query)),
		emptyDash(sanitizeField(r.UserAgent)),
		emptyDash(sanitizeField(r.Referrer)),
		r.Status,
		emptyDash(sanitizeField(r.PayloadDigest)))
}

// Flush flushes buffered records and reports any sticky error.
func (tw *Writer) Flush() error {
	if tw.err != nil {
		return tw.err
	}
	return tw.w.Flush()
}

// sanitizeField replaces tabs and newlines so one record stays one line.
func sanitizeField(s string) string {
	if !strings.ContainsAny(s, "\t\n\r") {
		return s
	}
	r := strings.NewReplacer("\t", " ", "\n", " ", "\r", " ")
	return r.Replace(s)
}

// WriteTrace writes an entire trace.
func WriteTrace(w io.Writer, t *Trace) error {
	tw := NewWriter(w)
	if _, err := fmt.Fprintf(tw.w, "# trace %s\n", sanitizeField(t.Name)); err != nil {
		return err
	}
	for i := range t.Requests {
		if err := tw.Write(&t.Requests[i]); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// Reader streams requests from an io.Reader in the TSV trace format.
type Reader struct {
	s    *bufio.Scanner
	line int
	name string
}

// NewReader returns a trace reader wrapping r.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 1<<16), 1<<20)
	return &Reader{s: s}
}

// Name returns the trace name seen in a "# trace NAME" header, if any.
func (tr *Reader) Name() string { return tr.name }

// Read returns the next request, or io.EOF at end of input.
func (tr *Reader) Read() (Request, error) {
	for tr.s.Scan() {
		tr.line++
		line := tr.s.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, "# trace "); ok {
				tr.name = strings.TrimSpace(rest)
			}
			continue
		}
		return tr.parse(line)
	}
	if err := tr.s.Err(); err != nil {
		return Request{}, err
	}
	return Request{}, io.EOF
}

func (tr *Reader) parse(line string) (Request, error) {
	req, err := ParseRecord(line)
	if err != nil {
		return Request{}, fmt.Errorf("line %d: %w", tr.line, err)
	}
	return req, nil
}

// ParseRecord parses one TSV trace record line (without its trailing
// newline). It is the single line-level grammar shared by Reader and the
// internal/source TSV decoder; malformed lines wrap ErrBadRecord.
func ParseRecord(line string) (Request, error) {
	fields := strings.Split(line, "\t")
	if len(fields) != fieldCount && len(fields) != legacyFieldCount {
		return Request{}, fmt.Errorf("%d fields, want %d or %d: %w",
			len(fields), fieldCount, legacyFieldCount, ErrBadRecord)
	}
	ns, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Request{}, fmt.Errorf("time: %w", ErrBadRecord)
	}
	status, err := strconv.Atoi(fields[8])
	if err != nil {
		return Request{}, fmt.Errorf("status: %w", ErrBadRecord)
	}
	req := Request{
		Time:      time.Unix(0, ns).UTC(),
		Client:    dashEmpty(fields[1]),
		Host:      dashEmpty(fields[2]),
		ServerIP:  dashEmpty(fields[3]),
		Path:      dashEmpty(fields[4]),
		Query:     dashEmpty(fields[5]),
		UserAgent: dashEmpty(fields[6]),
		Referrer:  dashEmpty(fields[7]),
		Status:    status,
	}
	if len(fields) == fieldCount {
		req.PayloadDigest = dashEmpty(fields[9])
	}
	return req, nil
}

// ReadTrace reads an entire trace into memory.
func ReadTrace(r io.Reader) (*Trace, error) {
	tr := NewReader(r)
	t := &Trace{}
	for {
		req, err := tr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		t.Requests = append(t.Requests, req)
	}
	t.Name = tr.Name()
	return t, nil
}
