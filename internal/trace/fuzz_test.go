package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReader must never panic on arbitrary input, and every request it
// accepts must survive a write/read round trip.
func FuzzReader(f *testing.F) {
	f.Add("1\tc\th.com\t1.1.1.1\t/\t-\t-\t-\t200\tsha1:x\n")
	f.Add("# trace foo\n99\tc\t-\t-\t/a?b=1\tq=2\tua\tref.com\t404\n")
	f.Add("garbage\nmore\tgarbage\n")
	f.Fuzz(func(t *testing.T, input string) {
		r := NewReader(strings.NewReader(input))
		for i := 0; i < 1000; i++ {
			req, err := r.Read()
			if err != nil {
				return
			}
			var buf bytes.Buffer
			w := NewWriter(&buf)
			if err := w.Write(&req); err != nil {
				t.Fatalf("rewrite accepted request failed: %v", err)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			back, err := NewReader(&buf).Read()
			if err != nil {
				t.Fatalf("reread failed: %v (request %+v)", err, req)
			}
			_ = back
		}
	})
}

// FuzzURIFile must never panic and must keep its output invariants.
func FuzzURIFile(f *testing.F) {
	f.Add("/images/news.php")
	f.Add("")
	f.Add("/a/b/c?d=e")
	f.Fuzz(func(t *testing.T, path string) {
		got := URIFileOf(path)
		if got == "" {
			t.Errorf("empty URI file for %q", path)
		}
		if got != "/" && strings.ContainsAny(got, "/?") {
			t.Errorf("URIFileOf(%q) = %q contains separator", path, got)
		}
	})
}

// FuzzQueryPattern must never panic and must be idempotent over its own
// output treated as a query of bare parameters.
func FuzzQueryPattern(f *testing.F) {
	f.Add("p=1&id=2&e=3")
	f.Add("")
	f.Add("&&&")
	f.Fuzz(func(t *testing.T, q string) {
		p := QueryPattern(q)
		if QueryPattern(p) != p {
			t.Errorf("QueryPattern not idempotent on %q: %q vs %q", q, p, QueryPattern(p))
		}
	})
}
