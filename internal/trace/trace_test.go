package trace

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func req(client, host, ip, path string) Request {
	return Request{
		Time:     time.Unix(1000, 0).UTC(),
		Client:   client,
		Host:     host,
		ServerIP: ip,
		Path:     path,
		Status:   200,
	}
}

func TestURIFile(t *testing.T) {
	tests := []struct {
		path string
		want string
	}{
		{"/images/news.php", "news.php"},
		{"/login.php", "login.php"},
		{"/", "/"},
		{"", "/"},
		{"/wp-content/uploads/sm3.php", "sm3.php"},
		{"/a/b/", "/"},
		{"setup.php", "setup.php"},
		{"/scrape.php?info_hash=xyz", "scrape.php"},
		{"/images/file.txt", "file.txt"},
	}
	for _, tt := range tests {
		t.Run(tt.path, func(t *testing.T) {
			if got := URIFileOf(tt.path); got != tt.want {
				t.Errorf("URIFileOf(%q) = %q, want %q", tt.path, got, tt.want)
			}
		})
	}
}

func TestURIFileNeverContainsSlashOrQuery(t *testing.T) {
	f := func(path string) bool {
		got := URIFileOf(path)
		if got == "/" {
			return true
		}
		for i := 0; i < len(got); i++ {
			if got[i] == '/' || got[i] == '?' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestServerKey(t *testing.T) {
	r := req("c1", "a.xyz.com", "1.2.3.4", "/x")
	if got := r.ServerKey(); got != "xyz.com" {
		t.Errorf("ServerKey = %q, want xyz.com", got)
	}
	r2 := req("c1", "", "1.2.3.4", "/x")
	if got := r2.ServerKey(); got != "1.2.3.4" {
		t.Errorf("ServerKey = %q, want 1.2.3.4", got)
	}
}

func TestComputeStats(t *testing.T) {
	tr := &Trace{Name: "T", Requests: []Request{
		req("c1", "a.xyz.com", "1.1.1.1", "/p/a.php"),
		req("c1", "b.xyz.com", "1.1.1.2", "/q/a.php"),
		req("c2", "other.net", "2.2.2.2", "/b.php"),
		req("c2", "other.net", "2.2.2.2", "/b.php"),
	}}
	s := tr.ComputeStats()
	if s.Clients != 2 {
		t.Errorf("Clients = %d, want 2", s.Clients)
	}
	if s.Requests != 4 {
		t.Errorf("Requests = %d, want 4", s.Requests)
	}
	if s.Servers != 2 {
		t.Errorf("Servers = %d, want 2 (SLD aggregation)", s.Servers)
	}
	if s.URIFiles != 2 {
		t.Errorf("URIFiles = %d, want 2", s.URIFiles)
	}
	if s.Render() == "" {
		t.Error("empty render")
	}
}

func TestBuildIndexAggregation(t *testing.T) {
	tr := &Trace{Requests: []Request{
		req("c1", "a.xyz.com", "1.1.1.1", "/a.php"),
		req("c2", "b.xyz.com", "1.1.1.2", "/b.php"),
		req("c1", "other.net", "2.2.2.2", "/c.php"),
	}}
	idx := BuildIndex(tr)
	if len(idx.Servers) != 2 {
		t.Fatalf("servers = %d, want 2", len(idx.Servers))
	}
	xyz := idx.Servers["xyz.com"]
	if xyz == nil {
		t.Fatal("xyz.com missing")
	}
	if len(xyz.Clients) != 2 {
		t.Errorf("xyz.com clients = %d, want 2", len(xyz.Clients))
	}
	if len(xyz.IPs) != 2 {
		t.Errorf("xyz.com IPs = %d, want 2", len(xyz.IPs))
	}
	if len(xyz.Hosts) != 2 {
		t.Errorf("xyz.com hosts = %d, want 2", len(xyz.Hosts))
	}
	if xyz.IDF() != 2 {
		t.Errorf("IDF = %d, want 2", xyz.IDF())
	}
	if got := idx.ServersOfClient("c1"); len(got) != 2 {
		t.Errorf("c1 contacted %d servers, want 2", len(got))
	}
}

func TestIndexReferrerAndErrors(t *testing.T) {
	r1 := req("c1", "victim.com", "3.3.3.3", "/x.php")
	r1.Referrer = "landing.com"
	r1.Status = 404
	r2 := req("c2", "victim.com", "3.3.3.3", "/x.php")
	r2.Referrer = "www.landing.com"
	tr := &Trace{Requests: []Request{r1, r2}}
	idx := BuildIndex(tr)
	v := idx.Servers["victim.com"]
	ref, share := v.DominantReferrer()
	if ref != "landing.com" || share != 1.0 {
		t.Errorf("DominantReferrer = %q %g, want landing.com 1.0", ref, share)
	}
	if got := v.ErrorFraction(); got != 0.5 {
		t.Errorf("ErrorFraction = %g, want 0.5", got)
	}
}

func TestSelfReferrerIgnored(t *testing.T) {
	r := req("c1", "a.example.com", "1.1.1.1", "/x")
	r.Referrer = "b.example.com" // same SLD -> not an external referrer
	idx := BuildIndex(&Trace{Requests: []Request{r}})
	if n := len(idx.Servers["example.com"].Referrers); n != 0 {
		t.Errorf("self-referrer recorded: %d entries", n)
	}
}

func TestIndexRemove(t *testing.T) {
	tr := &Trace{Requests: []Request{
		req("c1", "a.com", "1.1.1.1", "/x"),
		req("c1", "b.com", "1.1.1.2", "/y"),
		req("c2", "a.com", "1.1.1.1", "/x"),
	}}
	idx := BuildIndex(tr)
	idx.Remove("a.com")
	if _, ok := idx.Servers["a.com"]; ok {
		t.Fatal("a.com still present")
	}
	if idx.RequestCount != 1 {
		t.Errorf("RequestCount = %d, want 1", idx.RequestCount)
	}
	if got := idx.ServersOfClient("c2"); got != nil {
		t.Errorf("c2 should have been dropped (no remaining servers), got %v", got)
	}
	if got := idx.ServersOfClient("c1"); len(got) != 1 {
		t.Errorf("c1 servers = %d, want 1", len(got))
	}
	idx.Remove("missing") // no-op must not panic
}

func TestIndexClone(t *testing.T) {
	tr := &Trace{Requests: []Request{req("c1", "a.com", "1.1.1.1", "/x")}}
	idx := BuildIndex(tr)
	cl := idx.Clone()
	cl.Remove("a.com")
	if _, ok := idx.Servers["a.com"]; !ok {
		t.Error("clone removal mutated original")
	}
	if idx.RequestCount != 1 {
		t.Errorf("original RequestCount = %d, want 1", idx.RequestCount)
	}
}

func TestFileListSorted(t *testing.T) {
	sy := NewSymbols()
	info := newServerInfo(sy, "a.com")
	info.Files[sy.Files.ID("z.php")] = 1
	info.Files[sy.Files.ID("a.php")] = 2
	info.Files[sy.Files.ID("m.gif")] = 1
	got := info.FileList()
	want := []string{"a.php", "m.gif", "z.php"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FileList = %v, want %v", got, want)
		}
	}
}

func TestDominantReferrerEmpty(t *testing.T) {
	info := newServerInfo(NewSymbols(), "a.com")
	info.Requests = 5
	if ref, share := info.DominantReferrer(); ref != "" || share != 0 {
		t.Errorf("DominantReferrer on empty = %q %g", ref, share)
	}
}

func TestServerKeysSorted(t *testing.T) {
	tr := &Trace{Requests: []Request{
		req("c1", "zzz.com", "1.1.1.1", "/"),
		req("c1", "aaa.com", "1.1.1.2", "/"),
	}}
	idx := BuildIndex(tr)
	keys := idx.ServerKeys()
	if len(keys) != 2 || keys[0] != "aaa.com" || keys[1] != "zzz.com" {
		t.Errorf("ServerKeys = %v", keys)
	}
}

func TestQueryPattern(t *testing.T) {
	tests := []struct {
		query string
		want  string
	}{
		{"p=16435&id=21799517&e=0", "e&id&p"},
		{"id=1&p=2&e=3", "e&id&p"}, // order-insensitive
		{"single=x", "single"},
		{"", ""},
		{"flag", "flag"},    // bare parameter
		{"a=1&&b=2", "a&b"}, // empty segment skipped
	}
	for _, tt := range tests {
		if got := QueryPattern(tt.query); got != tt.want {
			t.Errorf("QueryPattern(%q) = %q, want %q", tt.query, got, tt.want)
		}
	}
}

func TestQueryPatternValueIndependent(t *testing.T) {
	f := func(a, b uint32) bool {
		q1 := fmt.Sprintf("p=%d&id=%d", a, b)
		q2 := fmt.Sprintf("p=%d&id=%d", b, a)
		return QueryPattern(q1) == QueryPattern(q2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexTracksQueries(t *testing.T) {
	r := req("c1", "a.com", "1.1.1.1", "/x.php")
	r.Query = "p=1&id=2"
	idx := BuildIndex(&Trace{Requests: []Request{r}})
	info := idx.Servers["a.com"]
	if info.QueryCount("id&p") != 1 {
		t.Errorf("Queries = %v", info.Queries)
	}
	cl := idx.Clone()
	if cl.Servers["a.com"].QueryCount("id&p") != 1 {
		t.Error("Clone dropped queries")
	}
}

func canonicalIndex(idx *Index) string { return idx.Fingerprint() }

func mergeTestRequests() []Request {
	var reqs []Request
	for i := 0; i < 40; i++ {
		r := req(fmt.Sprintf("c%d", i%7), fmt.Sprintf("s%d.com", i%5), fmt.Sprintf("9.9.9.%d", i%3), fmt.Sprintf("/f%d.php", i%4))
		r.Query = "id=1&p=2"
		r.UserAgent = fmt.Sprintf("ua%d", i%2)
		r.Referrer = fmt.Sprintf("ref%d.com", i%3)
		if i%6 == 0 {
			r.Status = 404
		}
		r.PayloadDigest = fmt.Sprintf("sha1:%d", i%4)
		reqs = append(reqs, r)
	}
	return reqs
}

// A sharded build (partial indexes merged in any order) must equal the
// sequential build — the invariant the streaming engine depends on. Both
// merge paths are covered: shards sharing one Symbols (the engine's
// arrangement, id fast path) and shards with private Symbols (name remap).
func TestIndexMergeEqualsSequentialBuild(t *testing.T) {
	reqs := mergeTestRequests()
	want := canonicalIndex(BuildIndex(&Trace{Requests: reqs}))

	for _, shared := range []bool{true, false} {
		name := "private-symbols"
		if shared {
			name = "shared-symbols"
		}
		t.Run(name, func(t *testing.T) {
			syms := NewSymbols()
			mk := func() *Index {
				if shared {
					return NewIndexWith(syms)
				}
				return NewIndex()
			}
			shards := []*Index{mk(), mk(), mk()}
			for i := range reqs {
				shards[i%3].Add(&reqs[i])
			}
			got := mk()
			// Merge in reverse shard order to exercise commutativity.
			for i := len(shards) - 1; i >= 0; i-- {
				got.Merge(shards[i])
			}
			if g := canonicalIndex(got); g != want {
				t.Errorf("merged index diverges from sequential build:\n got: %s\nwant: %s", g, want)
			}
		})
	}
}

// Unmerge must be the exact inverse of Merge: merging a fragment in and
// unmerging it again restores the index byte-for-byte — the invariant the
// incremental sliding-window path relies on.
func TestUnmergeInvertsMerge(t *testing.T) {
	reqs := mergeTestRequests()
	syms := NewSymbols()
	base := NewIndexWith(syms)
	frag := NewIndexWith(syms)
	for i := range reqs {
		if i%4 == 0 {
			frag.Add(&reqs[i])
		} else {
			base.Add(&reqs[i])
		}
	}
	want := canonicalIndex(base)
	base.Merge(frag)
	if canonicalIndex(base) == want {
		t.Fatal("merge changed nothing; fragment too small to test")
	}
	base.Unmerge(frag)
	if got := canonicalIndex(base); got != want {
		t.Errorf("Unmerge did not restore the index:\n got: %s\nwant: %s", got, want)
	}

	// Unmerging everything empties the index completely.
	all := NewIndexWith(syms)
	all.Merge(base)
	all.Merge(frag)
	all.Unmerge(base)
	all.Unmerge(frag)
	if len(all.Servers) != 0 || len(all.ClientServers) != 0 || all.RequestCount != 0 {
		t.Errorf("full Unmerge left residue: %d servers, %d clients, %d requests",
			len(all.Servers), len(all.ClientServers), all.RequestCount)
	}
}

// Index.ComputeStats must agree with Trace.ComputeStats whenever every
// request carries a server key (the only requests an Index retains).
func TestIndexComputeStatsMatchesTrace(t *testing.T) {
	tr := &Trace{Name: "idxstats"}
	for i := 0; i < 30; i++ {
		tr.Requests = append(tr.Requests,
			req(fmt.Sprintf("c%d", i%4), fmt.Sprintf("s%d.com", i%6), "8.8.8.8", fmt.Sprintf("/f%d", i%3)))
	}
	want := tr.ComputeStats()
	got := BuildIndex(tr).ComputeStats("idxstats")
	if got != want {
		t.Errorf("index stats %+v != trace stats %+v", got, want)
	}
}
