// Package trace defines SMASH's HTTP traffic data model: individual HTTP
// request records as observed at the edge of an ISP or enterprise network,
// whole traces, and the aggregated per-server index that every downstream
// pipeline stage (preprocessing, similarity mining, pruning) consumes.
//
// A "server" in SMASH's sense is a logical endpoint keyed by second-level
// domain when a hostname is known, or by the literal IP address otherwise,
// matching the paper's aggregation rule (§III-A).
//
// # Interned data plane
//
// Every hot key — server, client, IP, URI file, referrer, User-Agent,
// query pattern, payload digest, hostname — is interned once at ingest
// into a shared Symbols table and carried as a dense uint32 id from then
// on. The per-server aggregates (ServerInfo) and the client->server
// relation are id-keyed counted multisets (Counts): integer map operations
// replace string re-hashing in every downstream hot loop, and because
// membership is counted rather than boolean, Merge has an exact inverse
// (Unmerge) for consumers that retire previously merged fragments in
// place.
// Strings resurface only at API boundaries (reports, lineages, rendered
// output), always ordered by name so that the run-dependent id assignment
// never leaks into output.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"smash/internal/domain"
	"smash/internal/intern"
)

// Request is one HTTP request observed on the wire.
type Request struct {
	// Time is when the request was observed.
	Time time.Time
	// Client identifies the internal client host (e.g. its IP address).
	Client string
	// Host is the HTTP Host header value (hostname or IP literal).
	Host string
	// ServerIP is the destination IP address of the TCP connection.
	ServerIP string
	// Path is the URI path, without the query string.
	Path string
	// Query is the raw query string, without the leading '?'.
	Query string
	// UserAgent is the User-Agent header value ("-" when absent).
	UserAgent string
	// Referrer is the Referer header's host part ("" when absent).
	Referrer string
	// Status is the HTTP response status code (0 when no response seen).
	Status int
	// PayloadDigest is an opaque digest of the response payload prefix
	// (the paper's monitor captured the first 5000 bytes per connection);
	// empty when unavailable. It feeds the optional payload-similarity
	// dimension suggested in §VI Extensions.
	PayloadDigest string
}

// ServerKey returns the logical server identity of the request: the SLD of
// the Host header, or the destination IP when no hostname was seen.
func (r *Request) ServerKey() string {
	if r.Host != "" {
		return domain.SLD(r.Host)
	}
	return r.ServerIP
}

// URIFile extracts the "URI file" as defined in §III-B2 of the paper: the
// substring of the URI from the last '/' to the end, stopping before any
// '?' — usually the file or script handling the request. The query part is
// never included; a trailing slash yields "/" (matching the Sality C&C
// example where the shared filename is "/").
func (r *Request) URIFile() string {
	return URIFileOf(r.Path)
}

// URIFileOf extracts the URI file from a raw path string.
func URIFileOf(path string) string {
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i]
	}
	if path == "" {
		return "/"
	}
	i := strings.LastIndexByte(path, '/')
	if i < 0 {
		return path
	}
	file := path[i+1:]
	if file == "" {
		return "/"
	}
	return file
}

// Trace is an ordered collection of requests, typically one observation day.
type Trace struct {
	// Name labels the trace (e.g. "Data2011day").
	Name string
	// Requests holds the observed requests in arrival order.
	Requests []Request
}

// Stats summarizes a trace in the shape of the paper's Table I.
type Stats struct {
	Name     string
	Clients  int
	Requests int
	Servers  int
	URIFiles int
}

// ComputeStats scans the trace once and returns Table-I style statistics.
// Servers are counted after SLD aggregation; URI files are counted as
// distinct (server, file) pairs to match the paper's per-server file notion.
func (t *Trace) ComputeStats() Stats {
	clients := make(map[string]struct{})
	servers := make(map[string]struct{})
	files := make(map[string]struct{})
	for i := range t.Requests {
		r := &t.Requests[i]
		clients[r.Client] = struct{}{}
		key := r.ServerKey()
		servers[key] = struct{}{}
		files[key+"\x00"+r.URIFile()] = struct{}{}
	}
	return Stats{
		Name:     t.Name,
		Clients:  len(clients),
		Requests: len(t.Requests),
		Servers:  len(servers),
		URIFiles: len(files),
	}
}

// Render formats the stats as one row of a Table-I style report.
func (s Stats) Render() string {
	return fmt.Sprintf("%-16s clients=%-8d requests=%-10d servers=%-8d uriFiles=%d",
		s.Name, s.Clients, s.Requests, s.Servers, s.URIFiles)
}

// Counts is an id-keyed counted multiset: feature id -> number of requests
// that contributed the feature. Distinct cardinality is len; counted
// membership is what makes Merge/Unmerge exact inverses.
type Counts map[uint32]uint32

// Symbols is the shared symbol table of the interned data plane: one
// intern.Table per key namespace. Indexes that are merged into each other
// (window fragments, clones) share one Symbols so ids are directly
// compatible; Merge falls back to string remapping otherwise.
//
// Symbols also memoizes the two per-request string derivations (host ->
// SLD server key, raw query -> parameter pattern id), which repeat heavily
// in any real trace.
type Symbols struct {
	Servers  *intern.Table
	Clients  *intern.Table
	IPs      *intern.Table
	Files    *intern.Table
	Agents   *intern.Table
	Queries  *intern.Table
	Payloads *intern.Table
	Hosts    *intern.Table

	slds     sync.Map // raw host -> SLD string
	patterns sync.Map // raw query -> query-pattern id (Queries table)
}

// NewSymbols returns an empty symbol table set.
func NewSymbols() *Symbols {
	return &Symbols{
		Servers:  intern.NewTable(),
		Clients:  intern.NewTable(),
		IPs:      intern.NewTable(),
		Files:    intern.NewTable(),
		Agents:   intern.NewTable(),
		Queries:  intern.NewTable(),
		Payloads: intern.NewTable(),
		Hosts:    intern.NewTable(),
	}
}

// SLD returns domain.SLD(host) through a memo cache — hostnames repeat on
// almost every request, so the parse runs once per distinct host.
func (sy *Symbols) SLD(host string) string {
	if v, ok := sy.slds.Load(host); ok {
		return v.(string)
	}
	s := domain.SLD(host)
	sy.slds.Store(host, s)
	return s
}

// RequestServerKey is Request.ServerKey through the SLD memo cache.
func (sy *Symbols) RequestServerKey(r *Request) string {
	if r.Host != "" {
		return sy.SLD(r.Host)
	}
	return r.ServerIP
}

// queryPatternID interns the parameter pattern of a raw query string,
// memoizing per raw query so the split/sort/join runs once per distinct
// query string.
func (sy *Symbols) queryPatternID(rawQuery string) uint32 {
	if v, ok := sy.patterns.Load(rawQuery); ok {
		return v.(uint32)
	}
	id := sy.Queries.ID(QueryPattern(rawQuery))
	sy.patterns.Store(rawQuery, id)
	return id
}

// ServerInfo aggregates everything SMASH needs to know about one logical
// server, accumulated over a trace. All aggregates are id-keyed counted
// multisets over the index's Symbols; use the name-resolving helpers (or
// Symbols directly) at API boundaries.
type ServerInfo struct {
	// Key is the server identity (SLD or IP literal).
	Key string
	// SID is the server's id in the Symbols.Servers table.
	SID uint32
	// Clients counts requests per client id that contacted the server.
	Clients Counts
	// IPs counts requests per destination IP id observed for the server.
	IPs Counts
	// Files counts requests per URI-file id.
	Files Counts
	// Referrers counts requests per referring server id (Servers table),
	// for referrer group pruning.
	Referrers Counts
	// UserAgents counts requests per User-Agent id (Agents table).
	UserAgents Counts
	// Queries counts requests per query-parameter-pattern id (sorted
	// parameter names, e.g. "e&id&p"), used for campaign pattern matching.
	Queries Counts
	// Payloads counts requests per payload-digest id (empty digests are
	// not recorded).
	Payloads Counts
	// Hosts counts requests per raw (normalized) hostname id aggregated
	// into this server.
	Hosts Counts
	// Requests is the total number of requests to this server.
	Requests int
	// ErrorRequests counts requests whose status was >= 400.
	ErrorRequests int

	syms *Symbols
}

// Syms exposes the symbol tables the info's ids resolve through.
func (s *ServerInfo) Syms() *Symbols { return s.syms }

// IDF is the server's popularity measure from Appendix A: the number of
// distinct clients that contacted it.
func (s *ServerInfo) IDF() int { return len(s.Clients) }

// FileList returns the server's URI files sorted lexicographically.
func (s *ServerInfo) FileList() []string {
	names := s.syms.Files.Names()
	out := make([]string, 0, len(s.Files))
	for f := range s.Files {
		out = append(out, names[f])
	}
	sort.Strings(out)
	return out
}

// IPList returns the server's destination IPs sorted lexicographically.
func (s *ServerInfo) IPList() []string {
	names := s.syms.IPs.Names()
	out := make([]string, 0, len(s.IPs))
	for ip := range s.IPs {
		out = append(out, names[ip])
	}
	sort.Strings(out)
	return out
}

// ClientIDSet returns the client-id set as-is; resolve names through
// Syms().Clients when needed.
func (s *ServerInfo) ClientIDSet() Counts { return s.Clients }

// has reports counted membership of name in m under table t without
// interning name.
func has(t *intern.Table, m Counts, name string) bool {
	id, ok := t.Lookup(name)
	if !ok {
		return false
	}
	return m[id] > 0
}

// HasFile reports whether the server served the named URI file.
func (s *ServerInfo) HasFile(name string) bool { return has(s.syms.Files, s.Files, name) }

// HasUserAgent reports whether the server saw the named User-Agent.
func (s *ServerInfo) HasUserAgent(name string) bool { return has(s.syms.Agents, s.UserAgents, name) }

// FileCount returns how many requests hit the named URI file.
func (s *ServerInfo) FileCount(name string) int {
	if id, ok := s.syms.Files.Lookup(name); ok {
		return int(s.Files[id])
	}
	return 0
}

// QueryCount returns how many requests carried the named query pattern.
func (s *ServerInfo) QueryCount(pattern string) int {
	if id, ok := s.syms.Queries.Lookup(pattern); ok {
		return int(s.Queries[id])
	}
	return 0
}

// ReferrerCount returns how many requests were referred by the named server.
func (s *ServerInfo) ReferrerCount(server string) int {
	if id, ok := s.syms.Servers.Lookup(server); ok {
		return int(s.Referrers[id])
	}
	return 0
}

// topName returns the name of the most frequent id in m (ties broken
// lexicographically by name), or "" for an empty multiset.
func topName(t *intern.Table, m Counts) string {
	names := t.Names()
	best, bestN := "", uint32(0)
	for id, n := range m {
		name := names[id]
		if n > bestN || (n == bestN && name < best) {
			best, bestN = name, n
		}
	}
	return best
}

// TopFile returns the server's most requested URI file.
func (s *ServerInfo) TopFile() string { return topName(s.syms.Files, s.Files) }

// TopUserAgent returns the server's most frequent User-Agent.
func (s *ServerInfo) TopUserAgent() string { return topName(s.syms.Agents, s.UserAgents) }

// TopQuery returns the server's most frequent query-parameter pattern.
func (s *ServerInfo) TopQuery() string { return topName(s.syms.Queries, s.Queries) }

// DominantReferrer returns the referrer server responsible for the largest
// share of this server's requests and that share in [0,1]. It returns
// ("", 0) when no request carried a referrer.
func (s *ServerInfo) DominantReferrer() (string, float64) {
	names := s.syms.Servers.Names()
	best, bestN := "", uint32(0)
	for ref, n := range s.Referrers {
		name := names[ref]
		if n > bestN || (n == bestN && name < best) {
			best, bestN = name, n
		}
	}
	if bestN == 0 || s.Requests == 0 {
		return "", 0
	}
	return best, float64(bestN) / float64(s.Requests)
}

// ErrorFraction reports the fraction of this server's requests that returned
// an error status (>= 400), used by the "suspicious campaign" verification.
func (s *ServerInfo) ErrorFraction() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.ErrorRequests) / float64(s.Requests)
}

// NodeTable is the deterministic server <-> dense-node-id mapping the
// similarity builders and miners share: node i is the i-th server key in
// sorted order. It is built once per quiescent index (Nodes) instead of
// once per dimension, and must be treated as read-only.
type NodeTable struct {
	// Names maps node id -> server key, sorted.
	Names []string
	// IDs maps server key -> node id.
	IDs map[string]int
	// Infos maps node id -> the server's info.
	Infos []*ServerInfo
}

// Index is the aggregated per-server view of a trace after SLD aggregation.
type Index struct {
	// Syms is the symbol table set all ids in the index resolve through.
	Syms *Symbols
	// Servers maps server key -> accumulated info.
	Servers map[string]*ServerInfo
	// ClientServers counts requests per (client id, server id) pair:
	// client id -> server id -> requests. len(ClientServers[c]) is the
	// number of distinct servers the client contacted.
	ClientServers map[uint32]Counts
	// RequestCount is the total number of requests indexed.
	RequestCount int

	nodesMu sync.Mutex
	nodes   *NodeTable
}

// NewIndex returns an empty index with its own fresh Symbols.
func NewIndex() *Index {
	return NewIndexWith(NewSymbols())
}

// NewIndexWith returns an empty index sharing the given Symbols. Window
// fragments that will later be merged must share one Symbols so Merge can
// take the id fast path.
func NewIndexWith(syms *Symbols) *Index {
	return &Index{
		Syms:          syms,
		Servers:       make(map[string]*ServerInfo),
		ClientServers: make(map[uint32]Counts),
	}
}

// BuildIndex aggregates a trace into an Index. Hostnames are SLD-aggregated;
// servers without hostnames are keyed by IP.
func BuildIndex(t *Trace) *Index {
	idx := NewIndex()
	for i := range t.Requests {
		idx.Add(&t.Requests[i])
	}
	return idx
}

// newServerInfo builds an empty ServerInfo — the single place the per-field
// map set is constructed, shared by Add and Merge so a new field cannot be
// initialized in one path and forgotten in the other.
func newServerInfo(syms *Symbols, key string) *ServerInfo {
	return &ServerInfo{
		Key:        key,
		SID:        syms.Servers.ID(key),
		syms:       syms,
		Clients:    make(Counts),
		IPs:        make(Counts),
		Files:      make(Counts),
		Referrers:  make(Counts),
		UserAgents: make(Counts),
		Queries:    make(Counts),
		Payloads:   make(Counts),
		Hosts:      make(Counts),
	}
}

// invalidate drops the cached node table after a mutation.
func (idx *Index) invalidate() { idx.nodes = nil }

// EnsureServer returns the info for key, registering an empty one in the
// index if the server was not yet known. It is the constructor decoders
// (internal/wire) use to rebuild an index field-by-field without going
// through per-request Add.
func (idx *Index) EnsureServer(key string) *ServerInfo {
	info := idx.Servers[key]
	if info == nil {
		info = newServerInfo(idx.Syms, key)
		idx.Servers[key] = info
		idx.invalidate()
	}
	return info
}

// Add incorporates one request into the index.
func (idx *Index) Add(r *Request) {
	sy := idx.Syms
	key := sy.RequestServerKey(r)
	if key == "" {
		return
	}
	info := idx.Servers[key]
	if info == nil {
		info = newServerInfo(sy, key)
		idx.Servers[key] = info
	}
	cid := sy.Clients.ID(r.Client)
	info.Clients[cid]++
	if r.ServerIP != "" {
		info.IPs[sy.IPs.ID(r.ServerIP)]++
	}
	info.Files[sy.Files.ID(r.URIFile())]++
	if r.Referrer != "" {
		refKey := sy.SLD(r.Referrer)
		if refKey != key {
			info.Referrers[sy.Servers.ID(refKey)]++
		}
	}
	if r.UserAgent != "" {
		info.UserAgents[sy.Agents.ID(r.UserAgent)]++
	}
	if r.Query != "" {
		info.Queries[sy.queryPatternID(r.Query)]++
	}
	if r.PayloadDigest != "" {
		info.Payloads[sy.Payloads.ID(r.PayloadDigest)]++
	}
	if r.Host != "" {
		info.Hosts[sy.Hosts.ID(domain.Normalize(r.Host))]++
	}
	info.Requests++
	if r.Status >= 400 {
		info.ErrorRequests++
	}
	cs := idx.ClientServers[cid]
	if cs == nil {
		cs = make(Counts)
		idx.ClientServers[cid] = cs
	}
	cs[info.SID]++
	idx.RequestCount++
	idx.invalidate()
}

// Nodes returns the cached deterministic node table (sorted server keys).
// It is built lazily on a quiescent index and safe to request from
// concurrent dimension builders; any mutation invalidates it.
func (idx *Index) Nodes() *NodeTable {
	idx.nodesMu.Lock()
	defer idx.nodesMu.Unlock()
	if idx.nodes == nil {
		names := make([]string, 0, len(idx.Servers))
		for k := range idx.Servers {
			names = append(names, k)
		}
		sort.Strings(names)
		nt := &NodeTable{
			Names: names,
			IDs:   make(map[string]int, len(names)),
			Infos: make([]*ServerInfo, len(names)),
		}
		for i, n := range names {
			nt.IDs[n] = i
			nt.Infos[i] = idx.Servers[n]
		}
		idx.nodes = nt
	}
	return idx.nodes
}

// ServerKeys returns all server keys in sorted order (for deterministic
// iteration downstream). The result is a copy and may be retained.
func (idx *Index) ServerKeys() []string {
	return append([]string(nil), idx.Nodes().Names...)
}

// ServersOfClient returns the sorted server keys the named client
// contacted, or nil for an unknown client.
func (idx *Index) ServersOfClient(client string) []string {
	cid, ok := idx.Syms.Clients.Lookup(client)
	if !ok {
		return nil
	}
	cs := idx.ClientServers[cid]
	if len(cs) == 0 {
		return nil
	}
	names := idx.Syms.Servers.Names()
	out := make([]string, 0, len(cs))
	for sid := range cs {
		out = append(out, names[sid])
	}
	sort.Strings(out)
	return out
}

// Remove deletes a server from the index, including its entries in the
// client->servers relation. Used by the preprocessing IDF filter.
func (idx *Index) Remove(key string) {
	info := idx.Servers[key]
	if info == nil {
		return
	}
	for c := range info.Clients {
		if cs := idx.ClientServers[c]; cs != nil {
			delete(cs, info.SID)
			if len(cs) == 0 {
				delete(idx.ClientServers, c)
			}
		}
	}
	idx.RequestCount -= info.Requests
	delete(idx.Servers, key)
	idx.invalidate()
}

// Clone returns a deep copy of the index sharing the same Symbols. The
// preprocessing stage filters a clone so the raw index remains available
// for figure reproduction.
func (idx *Index) Clone() *Index {
	out := NewIndexWith(idx.Syms)
	out.Merge(idx)
	return out
}

// mergeCounts folds src into dst (dst[k] += src[k]).
func mergeCounts(dst, src Counts) {
	for k, n := range src {
		dst[k] += n
	}
}

// remapCounts folds src (under from) into dst (under to), translating ids
// through their names.
func remapCounts(dst Counts, to *intern.Table, src Counts, from *intern.Table) {
	names := from.Names()
	for k, n := range src {
		dst[to.ID(names[k])] += n
	}
}

// Merge folds other into idx. Every aggregate in the index is a counted
// multiset, so merging commutes: shard-built partial indexes merged in any
// order yield exactly the index a sequential Add of the same requests
// would have produced. The streaming engine relies on this to maintain its
// stride-fragment ring. Clone is Merge into an empty index, so the two
// stay one implementation. other is left untouched.
//
// When other shares idx's Symbols (the only arrangement the engine
// produces), the merge is a pure integer-map fold; otherwise ids are
// remapped through their names.
func (idx *Index) Merge(other *Index) {
	if other == nil {
		return
	}
	if other.Syms == idx.Syms {
		for k, src := range other.Servers {
			dst := idx.Servers[k]
			if dst == nil {
				dst = newServerInfo(idx.Syms, k)
				idx.Servers[k] = dst
			}
			mergeCounts(dst.Clients, src.Clients)
			mergeCounts(dst.IPs, src.IPs)
			mergeCounts(dst.Files, src.Files)
			mergeCounts(dst.Referrers, src.Referrers)
			mergeCounts(dst.UserAgents, src.UserAgents)
			mergeCounts(dst.Queries, src.Queries)
			mergeCounts(dst.Payloads, src.Payloads)
			mergeCounts(dst.Hosts, src.Hosts)
			dst.Requests += src.Requests
			dst.ErrorRequests += src.ErrorRequests
		}
		for c, set := range other.ClientServers {
			cs := idx.ClientServers[c]
			if cs == nil {
				cs = make(Counts, len(set))
				idx.ClientServers[c] = cs
			}
			mergeCounts(cs, set)
		}
	} else {
		sy, osy := idx.Syms, other.Syms
		for k, src := range other.Servers {
			dst := idx.Servers[k]
			if dst == nil {
				dst = newServerInfo(sy, k)
				idx.Servers[k] = dst
			}
			remapCounts(dst.Clients, sy.Clients, src.Clients, osy.Clients)
			remapCounts(dst.IPs, sy.IPs, src.IPs, osy.IPs)
			remapCounts(dst.Files, sy.Files, src.Files, osy.Files)
			remapCounts(dst.Referrers, sy.Servers, src.Referrers, osy.Servers)
			remapCounts(dst.UserAgents, sy.Agents, src.UserAgents, osy.Agents)
			remapCounts(dst.Queries, sy.Queries, src.Queries, osy.Queries)
			remapCounts(dst.Payloads, sy.Payloads, src.Payloads, osy.Payloads)
			remapCounts(dst.Hosts, sy.Hosts, src.Hosts, osy.Hosts)
			dst.Requests += src.Requests
			dst.ErrorRequests += src.ErrorRequests
		}
		clientNames := osy.Clients.Names()
		serverNames := osy.Servers.Names()
		for c, set := range other.ClientServers {
			cid := sy.Clients.ID(clientNames[c])
			cs := idx.ClientServers[cid]
			if cs == nil {
				cs = make(Counts, len(set))
				idx.ClientServers[cid] = cs
			}
			for sid, n := range set {
				cs[sy.Servers.ID(serverNames[sid])] += n
			}
		}
	}
	idx.RequestCount += other.RequestCount
	idx.invalidate()
}

// unmergeCounts subtracts src from dst, deleting keys that reach zero.
func unmergeCounts(dst, src Counts) {
	for k, n := range src {
		if cur := dst[k]; cur > n {
			dst[k] = cur - n
		} else {
			delete(dst, k)
		}
	}
}

// Unmerge is the exact inverse of Merge: it subtracts other's counted
// aggregates from idx, deleting entries (and servers) whose counts reach
// zero, so unmerging an index that was previously merged in restores idx
// byte-for-byte (TestUnmergeInvertsMerge). The counted-multiset
// representation exists to make this inverse exact; note the streaming
// engine's stride-fragment ring itself does not call it — eviction there
// adopts the expired fragment instead (see internal/stream) — Unmerge is
// the API for rolling-aggregate consumers that must retire a previously
// merged fragment in place. other must share idx's Symbols and must be a
// subset of what was merged; counts clamp at zero otherwise.
func (idx *Index) Unmerge(other *Index) {
	if other == nil {
		return
	}
	if other.Syms != idx.Syms {
		panic("trace: Unmerge requires a shared Symbols")
	}
	for k, src := range other.Servers {
		dst := idx.Servers[k]
		if dst == nil {
			continue
		}
		unmergeCounts(dst.Clients, src.Clients)
		unmergeCounts(dst.IPs, src.IPs)
		unmergeCounts(dst.Files, src.Files)
		unmergeCounts(dst.Referrers, src.Referrers)
		unmergeCounts(dst.UserAgents, src.UserAgents)
		unmergeCounts(dst.Queries, src.Queries)
		unmergeCounts(dst.Payloads, src.Payloads)
		unmergeCounts(dst.Hosts, src.Hosts)
		dst.Requests -= src.Requests
		dst.ErrorRequests -= src.ErrorRequests
		if dst.Requests <= 0 {
			delete(idx.Servers, k)
		}
	}
	for c, set := range other.ClientServers {
		cs := idx.ClientServers[c]
		if cs == nil {
			continue
		}
		unmergeCounts(cs, set)
		if len(cs) == 0 {
			delete(idx.ClientServers, c)
		}
	}
	idx.RequestCount -= other.RequestCount
	idx.invalidate()
}

// ComputeStats summarizes the index in the shape of the paper's Table I —
// the streaming path's equivalent of Trace.ComputeStats. Requests without a
// server key are not indexed and therefore not counted here.
func (idx *Index) ComputeStats(name string) Stats {
	files := 0
	for _, info := range idx.Servers {
		files += len(info.Files)
	}
	return Stats{
		Name:     name,
		Clients:  len(idx.ClientServers),
		Requests: idx.RequestCount,
		Servers:  len(idx.Servers),
		URIFiles: files,
	}
}

// Fingerprint renders the index into a fully name-resolved, sorted,
// deterministic form: two indexes describe the same traffic aggregate if
// and only if their fingerprints are equal, regardless of how their
// Symbols assigned ids. Used by equivalence tests (incremental window
// maintenance vs scratch builds) and diagnostics; cost is O(index) plus
// sorting, so keep it off hot paths.
func (idx *Index) Fingerprint() string {
	countsByName := func(b *strings.Builder, label string, names []string, m Counts) {
		pairs := make([]string, 0, len(m))
		for id, n := range m {
			pairs = append(pairs, fmt.Sprintf("%s=%d", names[id], n))
		}
		sort.Strings(pairs)
		b.WriteString(" ")
		b.WriteString(label)
		b.WriteString("{")
		b.WriteString(strings.Join(pairs, ","))
		b.WriteString("}\n")
	}
	sy := idx.Syms
	var b strings.Builder
	fmt.Fprintf(&b, "requests=%d\n", idx.RequestCount)
	for _, k := range idx.ServerKeys() {
		s := idx.Servers[k]
		fmt.Fprintf(&b, "server %s req=%d err=%d\n", k, s.Requests, s.ErrorRequests)
		countsByName(&b, "clients", sy.Clients.Names(), s.Clients)
		countsByName(&b, "ips", sy.IPs.Names(), s.IPs)
		countsByName(&b, "files", sy.Files.Names(), s.Files)
		countsByName(&b, "refs", sy.Servers.Names(), s.Referrers)
		countsByName(&b, "uas", sy.Agents.Names(), s.UserAgents)
		countsByName(&b, "queries", sy.Queries.Names(), s.Queries)
		countsByName(&b, "payloads", sy.Payloads.Names(), s.Payloads)
		countsByName(&b, "hosts", sy.Hosts.Names(), s.Hosts)
	}
	clientNames := sy.Clients.Names()
	clients := make([]string, 0, len(idx.ClientServers))
	for c := range idx.ClientServers {
		clients = append(clients, clientNames[c])
	}
	sort.Strings(clients)
	for _, c := range clients {
		cid, _ := sy.Clients.Lookup(c)
		countsByName(&b, "client "+c+" ->", sy.Servers.Names(), idx.ClientServers[cid])
	}
	return b.String()
}

// QueryPattern normalizes a raw query string into its parameter-name
// pattern: parameter names sorted and joined with '&', values dropped. The
// paper uses such patterns ("p=[]&id=[]&e=[]") to link servers handled by
// the same malware kit even when the values differ.
func QueryPattern(query string) string {
	if query == "" {
		return ""
	}
	parts := strings.Split(query, "&")
	names := make([]string, 0, len(parts))
	for _, p := range parts {
		if i := strings.IndexByte(p, '='); i >= 0 {
			p = p[:i]
		}
		if p == "" {
			continue // value without a name ("=x") carries no pattern
		}
		names = append(names, p)
	}
	sort.Strings(names)
	return strings.Join(names, "&")
}
