// Package trace defines SMASH's HTTP traffic data model: individual HTTP
// request records as observed at the edge of an ISP or enterprise network,
// whole traces, and the aggregated per-server index that every downstream
// pipeline stage (preprocessing, similarity mining, pruning) consumes.
//
// A "server" in SMASH's sense is a logical endpoint keyed by second-level
// domain when a hostname is known, or by the literal IP address otherwise,
// matching the paper's aggregation rule (§III-A).
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"smash/internal/domain"
)

// Request is one HTTP request observed on the wire.
type Request struct {
	// Time is when the request was observed.
	Time time.Time
	// Client identifies the internal client host (e.g. its IP address).
	Client string
	// Host is the HTTP Host header value (hostname or IP literal).
	Host string
	// ServerIP is the destination IP address of the TCP connection.
	ServerIP string
	// Path is the URI path, without the query string.
	Path string
	// Query is the raw query string, without the leading '?'.
	Query string
	// UserAgent is the User-Agent header value ("-" when absent).
	UserAgent string
	// Referrer is the Referer header's host part ("" when absent).
	Referrer string
	// Status is the HTTP response status code (0 when no response seen).
	Status int
	// PayloadDigest is an opaque digest of the response payload prefix
	// (the paper's monitor captured the first 5000 bytes per connection);
	// empty when unavailable. It feeds the optional payload-similarity
	// dimension suggested in §VI Extensions.
	PayloadDigest string
}

// ServerKey returns the logical server identity of the request: the SLD of
// the Host header, or the destination IP when no hostname was seen.
func (r *Request) ServerKey() string {
	if r.Host != "" {
		return domain.SLD(r.Host)
	}
	return r.ServerIP
}

// URIFile extracts the "URI file" as defined in §III-B2 of the paper: the
// substring of the URI from the last '/' to the end, stopping before any
// '?' — usually the file or script handling the request. The query part is
// never included; a trailing slash yields "/" (matching the Sality C&C
// example where the shared filename is "/").
func (r *Request) URIFile() string {
	return URIFileOf(r.Path)
}

// URIFileOf extracts the URI file from a raw path string.
func URIFileOf(path string) string {
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i]
	}
	if path == "" {
		return "/"
	}
	i := strings.LastIndexByte(path, '/')
	if i < 0 {
		return path
	}
	file := path[i+1:]
	if file == "" {
		return "/"
	}
	return file
}

// Trace is an ordered collection of requests, typically one observation day.
type Trace struct {
	// Name labels the trace (e.g. "Data2011day").
	Name string
	// Requests holds the observed requests in arrival order.
	Requests []Request
}

// Stats summarizes a trace in the shape of the paper's Table I.
type Stats struct {
	Name     string
	Clients  int
	Requests int
	Servers  int
	URIFiles int
}

// ComputeStats scans the trace once and returns Table-I style statistics.
// Servers are counted after SLD aggregation; URI files are counted as
// distinct (server, file) pairs to match the paper's per-server file notion.
func (t *Trace) ComputeStats() Stats {
	clients := make(map[string]struct{})
	servers := make(map[string]struct{})
	files := make(map[string]struct{})
	for i := range t.Requests {
		r := &t.Requests[i]
		clients[r.Client] = struct{}{}
		key := r.ServerKey()
		servers[key] = struct{}{}
		files[key+"\x00"+r.URIFile()] = struct{}{}
	}
	return Stats{
		Name:     t.Name,
		Clients:  len(clients),
		Requests: len(t.Requests),
		Servers:  len(servers),
		URIFiles: len(files),
	}
}

// Render formats the stats as one row of a Table-I style report.
func (s Stats) Render() string {
	return fmt.Sprintf("%-16s clients=%-8d requests=%-10d servers=%-8d uriFiles=%d",
		s.Name, s.Clients, s.Requests, s.Servers, s.URIFiles)
}

// ServerInfo aggregates everything SMASH needs to know about one logical
// server, accumulated over a trace.
type ServerInfo struct {
	// Key is the server identity (SLD or IP literal).
	Key string
	// Clients is the set of client identities that contacted the server.
	Clients map[string]struct{}
	// IPs is the set of destination IPs observed for the server.
	IPs map[string]struct{}
	// Files maps URI file -> request count.
	Files map[string]int
	// Referrers maps referring server key -> request count, for referrer
	// group pruning.
	Referrers map[string]int
	// UserAgents maps User-Agent -> request count.
	UserAgents map[string]int
	// Queries maps query-parameter patterns (sorted parameter names, e.g.
	// "e&id&p") -> request count, used for campaign pattern matching.
	Queries map[string]int
	// Payloads maps payload digests -> request count (empty digests are
	// not recorded).
	Payloads map[string]int
	// Requests is the total number of requests to this server.
	Requests int
	// ErrorRequests counts requests whose status was >= 400.
	ErrorRequests int
	// Hosts is the set of raw hostnames aggregated into this server.
	Hosts map[string]struct{}
}

// IDF is the server's popularity measure from Appendix A: the number of
// distinct clients that contacted it.
func (s *ServerInfo) IDF() int { return len(s.Clients) }

// FileList returns the server's URI files sorted lexicographically.
func (s *ServerInfo) FileList() []string {
	out := make([]string, 0, len(s.Files))
	for f := range s.Files {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// DominantReferrer returns the referrer server responsible for the largest
// share of this server's requests and that share in [0,1]. It returns
// ("", 0) when no request carried a referrer.
func (s *ServerInfo) DominantReferrer() (string, float64) {
	best, bestN := "", 0
	for ref, n := range s.Referrers {
		if n > bestN || (n == bestN && ref < best) {
			best, bestN = ref, n
		}
	}
	if bestN == 0 || s.Requests == 0 {
		return "", 0
	}
	return best, float64(bestN) / float64(s.Requests)
}

// ErrorFraction reports the fraction of this server's requests that returned
// an error status (>= 400), used by the "suspicious campaign" verification.
func (s *ServerInfo) ErrorFraction() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.ErrorRequests) / float64(s.Requests)
}

// Index is the aggregated per-server view of a trace after SLD aggregation.
type Index struct {
	// Servers maps server key -> accumulated info.
	Servers map[string]*ServerInfo
	// ClientServers maps client -> set of server keys it contacted.
	ClientServers map[string]map[string]struct{}
	// RequestCount is the total number of requests indexed.
	RequestCount int
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		Servers:       make(map[string]*ServerInfo),
		ClientServers: make(map[string]map[string]struct{}),
	}
}

// BuildIndex aggregates a trace into an Index. Hostnames are SLD-aggregated;
// servers without hostnames are keyed by IP.
func BuildIndex(t *Trace) *Index {
	idx := NewIndex()
	for i := range t.Requests {
		idx.Add(&t.Requests[i])
	}
	return idx
}

// newServerInfo builds an empty ServerInfo — the single place the per-field
// map set is constructed, shared by Add and Merge so a new field cannot be
// initialized in one path and forgotten in the other.
func newServerInfo(key string) *ServerInfo {
	return &ServerInfo{
		Key:        key,
		Clients:    make(map[string]struct{}),
		IPs:        make(map[string]struct{}),
		Files:      make(map[string]int),
		Referrers:  make(map[string]int),
		UserAgents: make(map[string]int),
		Queries:    make(map[string]int),
		Payloads:   make(map[string]int),
		Hosts:      make(map[string]struct{}),
	}
}

// Add incorporates one request into the index.
func (idx *Index) Add(r *Request) {
	key := r.ServerKey()
	if key == "" {
		return
	}
	info := idx.Servers[key]
	if info == nil {
		info = newServerInfo(key)
		idx.Servers[key] = info
	}
	info.Clients[r.Client] = struct{}{}
	if r.ServerIP != "" {
		info.IPs[r.ServerIP] = struct{}{}
	}
	info.Files[r.URIFile()]++
	if r.Referrer != "" {
		refKey := domain.SLD(r.Referrer)
		if refKey != key {
			info.Referrers[refKey]++
		}
	}
	if r.UserAgent != "" {
		info.UserAgents[r.UserAgent]++
	}
	if r.Query != "" {
		info.Queries[QueryPattern(r.Query)]++
	}
	if r.PayloadDigest != "" {
		info.Payloads[r.PayloadDigest]++
	}
	if r.Host != "" {
		info.Hosts[domain.Normalize(r.Host)] = struct{}{}
	}
	info.Requests++
	if r.Status >= 400 {
		info.ErrorRequests++
	}
	cs := idx.ClientServers[r.Client]
	if cs == nil {
		cs = make(map[string]struct{})
		idx.ClientServers[r.Client] = cs
	}
	cs[key] = struct{}{}
	idx.RequestCount++
}

// ServerKeys returns all server keys in sorted order (for deterministic
// iteration downstream).
func (idx *Index) ServerKeys() []string {
	keys := make([]string, 0, len(idx.Servers))
	for k := range idx.Servers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Remove deletes a server from the index, including its entries in the
// client->servers map. Used by the preprocessing IDF filter.
func (idx *Index) Remove(key string) {
	info := idx.Servers[key]
	if info == nil {
		return
	}
	for c := range info.Clients {
		if cs := idx.ClientServers[c]; cs != nil {
			delete(cs, key)
			if len(cs) == 0 {
				delete(idx.ClientServers, c)
			}
		}
	}
	idx.RequestCount -= info.Requests
	delete(idx.Servers, key)
}

// Clone returns a deep copy of the index. The preprocessing stage filters a
// clone so the raw index remains available for figure reproduction.
func (idx *Index) Clone() *Index {
	out := NewIndex()
	out.Merge(idx)
	return out
}

// Merge folds other into idx. Every aggregate in the index commutes (set
// unions and counter sums), so merging shard-built partial indexes in any
// order yields exactly the index a sequential Add of the same requests
// would have produced. The streaming engine relies on this to build one
// window index from concurrently filled shards. Clone is Merge into an
// empty index, so the two stay one implementation. other is left untouched.
func (idx *Index) Merge(other *Index) {
	if other == nil {
		return
	}
	for k, src := range other.Servers {
		dst := idx.Servers[k]
		if dst == nil {
			dst = newServerInfo(k)
			idx.Servers[k] = dst
		}
		for x := range src.Clients {
			dst.Clients[x] = struct{}{}
		}
		for x := range src.IPs {
			dst.IPs[x] = struct{}{}
		}
		for x, n := range src.Files {
			dst.Files[x] += n
		}
		for x, n := range src.Referrers {
			dst.Referrers[x] += n
		}
		for x, n := range src.UserAgents {
			dst.UserAgents[x] += n
		}
		for x, n := range src.Queries {
			dst.Queries[x] += n
		}
		for x, n := range src.Payloads {
			dst.Payloads[x] += n
		}
		for x := range src.Hosts {
			dst.Hosts[x] = struct{}{}
		}
		dst.Requests += src.Requests
		dst.ErrorRequests += src.ErrorRequests
	}
	for c, set := range other.ClientServers {
		cs := idx.ClientServers[c]
		if cs == nil {
			cs = make(map[string]struct{}, len(set))
			idx.ClientServers[c] = cs
		}
		for s := range set {
			cs[s] = struct{}{}
		}
	}
	idx.RequestCount += other.RequestCount
}

// ComputeStats summarizes the index in the shape of the paper's Table I —
// the streaming path's equivalent of Trace.ComputeStats. Requests without a
// server key are not indexed and therefore not counted here.
func (idx *Index) ComputeStats(name string) Stats {
	files := 0
	for _, info := range idx.Servers {
		files += len(info.Files)
	}
	return Stats{
		Name:     name,
		Clients:  len(idx.ClientServers),
		Requests: idx.RequestCount,
		Servers:  len(idx.Servers),
		URIFiles: files,
	}
}

// QueryPattern normalizes a raw query string into its parameter-name
// pattern: parameter names sorted and joined with '&', values dropped. The
// paper uses such patterns ("p=[]&id=[]&e=[]") to link servers handled by
// the same malware kit even when the values differ.
func QueryPattern(query string) string {
	if query == "" {
		return ""
	}
	parts := strings.Split(query, "&")
	names := make([]string, 0, len(parts))
	for _, p := range parts {
		if i := strings.IndexByte(p, '='); i >= 0 {
			p = p[:i]
		}
		if p == "" {
			continue // value without a name ("=x") carries no pattern
		}
		names = append(names, p)
	}
	sort.Strings(names)
	return strings.Join(names, "&")
}
