package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestCodecRoundTrip(t *testing.T) {
	orig := &Trace{
		Name: "Data2011day",
		Requests: []Request{
			{
				Time:      time.Unix(100, 5).UTC(),
				Client:    "10.0.0.1",
				Host:      "a.example.com",
				ServerIP:  "1.2.3.4",
				Path:      "/images/news.php",
				Query:     "p=16435&id=21799517&e=0",
				UserAgent: "Internet Exploder",
				Referrer:  "landing.com",
				Status:    200,
			},
			{
				Time:     time.Unix(101, 0).UTC(),
				Client:   "10.0.0.2",
				Host:     "",
				ServerIP: "5.6.7.8",
				Path:     "/",
				Status:   404,
			},
		},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name {
		t.Errorf("Name = %q, want %q", got.Name, orig.Name)
	}
	if len(got.Requests) != len(orig.Requests) {
		t.Fatalf("got %d requests, want %d", len(got.Requests), len(orig.Requests))
	}
	for i := range orig.Requests {
		if got.Requests[i] != orig.Requests[i] {
			t.Errorf("request %d mismatch:\n got %+v\nwant %+v", i, got.Requests[i], orig.Requests[i])
		}
	}
}

func TestCodecSanitizesTabs(t *testing.T) {
	orig := &Trace{Requests: []Request{{
		Time:      time.Unix(1, 0).UTC(),
		Client:    "c",
		Host:      "h.com",
		UserAgent: "evil\tagent\nwith newline",
		Status:    200,
	}}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.ContainsAny(got.Requests[0].UserAgent, "\t\n") {
		t.Errorf("UserAgent not sanitized: %q", got.Requests[0].UserAgent)
	}
}

func TestReaderErrors(t *testing.T) {
	tests := []struct {
		name string
		line string
	}{
		{"too few fields", "123\ta\tb"},
		{"bad time", "abc\tc\th\ti\tp\tq\tu\tr\t200"},
		{"bad status", "123\tc\th\ti\tp\tq\tu\tr\tXX"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewReader(strings.NewReader(tt.line)).Read()
			if !errors.Is(err, ErrBadRecord) {
				t.Errorf("err = %v, want ErrBadRecord", err)
			}
		})
	}
}

func TestReaderSkipsCommentsAndBlanks(t *testing.T) {
	input := "# a comment\n\n# trace foo\n1\tc\th.com\t1.1.1.1\t/\t-\t-\t-\t200\n"
	r := NewReader(strings.NewReader(input))
	req, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if req.Client != "c" {
		t.Errorf("Client = %q", req.Client)
	}
	if r.Name() != "foo" {
		t.Errorf("Name = %q, want foo", r.Name())
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestWriterStickyError(t *testing.T) {
	w := NewWriter(failWriter{})
	r := Request{Time: time.Unix(1, 0)}
	// Buffered writer: first writes succeed until the buffer flushes, so
	// force a flush to surface the error, then confirm it is sticky.
	for i := 0; i < 10000; i++ {
		if err := w.Write(&r); err != nil {
			break
		}
	}
	if err := w.Flush(); err == nil {
		t.Error("Flush should report the write error")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("boom") }
