package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestTableBasics(t *testing.T) {
	tb := NewTable()
	if tb.Len() != 0 {
		t.Fatalf("new table Len = %d", tb.Len())
	}
	a := tb.ID("alpha")
	b := tb.ID("beta")
	if a == b {
		t.Fatalf("distinct strings share id %d", a)
	}
	if got := tb.ID("alpha"); got != a {
		t.Errorf("re-intern changed id: %d != %d", got, a)
	}
	if tb.Name(a) != "alpha" || tb.Name(b) != "beta" {
		t.Errorf("Name roundtrip: %q %q", tb.Name(a), tb.Name(b))
	}
	if id, ok := tb.Lookup("beta"); !ok || id != b {
		t.Errorf("Lookup(beta) = %d,%v", id, ok)
	}
	if _, ok := tb.Lookup("gamma"); ok {
		t.Error("Lookup of unknown string succeeded")
	}
	if tb.Len() != 2 {
		t.Errorf("Len = %d, want 2", tb.Len())
	}
	names := tb.Names()
	if len(names) != 2 || names[a] != "alpha" || names[b] != "beta" {
		t.Errorf("Names snapshot = %v", names)
	}
}

// Ids stay dense and consistent under concurrent interning of an
// overlapping key set — the stream-shard workload.
func TestTableConcurrent(t *testing.T) {
	tb := NewTable()
	const goroutines, keys = 8, 200
	var wg sync.WaitGroup
	got := make([][]uint32, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := make([]uint32, keys)
			for k := 0; k < keys; k++ {
				ids[k] = tb.ID(fmt.Sprintf("key-%d", k))
			}
			got[g] = ids
		}(g)
	}
	wg.Wait()
	if tb.Len() != keys {
		t.Fatalf("Len = %d, want %d", tb.Len(), keys)
	}
	for g := 1; g < goroutines; g++ {
		for k := 0; k < keys; k++ {
			if got[g][k] != got[0][k] {
				t.Fatalf("goroutine %d got id %d for key %d, goroutine 0 got %d",
					g, got[g][k], k, got[0][k])
			}
		}
	}
	seen := make(map[uint32]bool)
	for k := 0; k < keys; k++ {
		id, ok := tb.Lookup(fmt.Sprintf("key-%d", k))
		if !ok || seen[id] || int(id) >= keys {
			t.Fatalf("key %d: id=%d ok=%v dup=%v", k, id, ok, seen[id])
		}
		seen[id] = true
	}
}
