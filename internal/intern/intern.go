// Package intern provides string interning: a Table maps each distinct
// string to a dense uint32 id assigned at first sight, and back. The data
// plane interns every hot key (server, client, IP, URI file, ...) once at
// ingest so that downstream aggregation, merging and similarity mining
// operate on integer ids — integer map operations hash a single word where
// string maps re-hash the whole key on every touch.
//
// Tables are safe for concurrent use and optimized for the read-mostly
// workload of a long-running stream: after warm-up almost every key repeats,
// so ID hits and Name lookups take no locks at all. Ids are assigned in
// first-intern order and are therefore NOT stable across runs or shards —
// they must never leak into output ordering; anything user-visible sorts by
// name (see DESIGN.md "Performance").
package intern

import (
	"sync"
	"sync/atomic"
)

// Table interns strings to dense uint32 ids.
type Table struct {
	ids sync.Map // string -> uint32
	mu  sync.Mutex
	// names is the id -> string mapping. The slice header is republished
	// atomically on every append; entries below the published length are
	// immutable, so readers index the loaded snapshot without locking.
	names atomic.Value // []string
}

// NewTable returns an empty table.
func NewTable() *Table {
	t := &Table{}
	t.names.Store([]string(nil))
	return t
}

// ID interns s and returns its id. The first call for a given string
// assigns the next dense id; later calls are lock-free lookups.
func (t *Table) ID(s string) uint32 {
	if v, ok := t.ids.Load(s); ok {
		return v.(uint32)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Re-check under the lock: another goroutine may have interned s
	// between the Load miss and the Lock.
	if v, ok := t.ids.Load(s); ok {
		return v.(uint32)
	}
	names := t.names.Load().([]string)
	id := uint32(len(names))
	t.names.Store(append(names, s))
	t.ids.Store(s, id)
	return id
}

// Lookup returns the id of s without interning it.
func (t *Table) Lookup(s string) (uint32, bool) {
	v, ok := t.ids.Load(s)
	if !ok {
		return 0, false
	}
	return v.(uint32), true
}

// Name returns the string with the given id. It panics if id was never
// assigned, mirroring slice indexing.
func (t *Table) Name(id uint32) string {
	return t.names.Load().([]string)[id]
}

// Names returns a point-in-time snapshot of the id -> string mapping:
// Names()[id] is valid for every id assigned before the call. The returned
// slice must not be modified.
func (t *Table) Names() []string {
	return t.names.Load().([]string)
}

// Len reports how many strings have been interned.
func (t *Table) Len() int {
	return len(t.names.Load().([]string))
}
