// Package webprobe abstracts the active HTTP probing SMASH's pruning stage
// performs (§III-D): following redirection chains of inferred servers and
// checking whether an inferred domain still exists. The production system
// sends live HTTP requests; the synthetic evaluation world answers from its
// generated topology (see DESIGN.md substitution table). Both sit behind
// the Prober interface so the pipeline is identical in either mode.
package webprobe

import (
	"context"
	"errors"
	"net/http"
	"time"

	"smash/internal/domain"
)

// Prober answers the two active questions the pruning and verification
// stages ask about a server.
type Prober interface {
	// RedirectTarget returns the server an HTTP request to the given
	// server is redirected to (the next hop of its redirection chain),
	// or ("", false) if it does not redirect.
	RedirectTarget(server string) (string, bool)
	// Exists reports whether the server still responds at all. The
	// "suspicious campaign" verification treats dead domains as evidence
	// of a short-lived malicious registration.
	Exists(server string) bool
}

// MapProber is an in-memory Prober driven by explicit tables; the synthetic
// world builds one from its redirect topology.
type MapProber struct {
	// Redirects maps server -> next hop.
	Redirects map[string]string
	// Dead marks servers that no longer exist.
	Dead map[string]bool
}

var _ Prober = (*MapProber)(nil)

// NewMapProber returns an empty MapProber (everything exists, no redirects).
func NewMapProber() *MapProber {
	return &MapProber{Redirects: make(map[string]string), Dead: make(map[string]bool)}
}

// RedirectTarget implements Prober.
func (m *MapProber) RedirectTarget(server string) (string, bool) {
	t, ok := m.Redirects[server]
	return t, ok
}

// Exists implements Prober.
func (m *MapProber) Exists(server string) bool { return !m.Dead[server] }

// NullProber answers "no redirect, exists" for everything; pruning then
// falls back to passive (referrer-based) evidence only.
type NullProber struct{}

var _ Prober = NullProber{}

// RedirectTarget implements Prober.
func (NullProber) RedirectTarget(string) (string, bool) { return "", false }

// Exists implements Prober.
func (NullProber) Exists(string) bool { return true }

// HTTPProber is a live Prober backed by net/http, for real deployments. It
// issues HEAD requests with redirects disabled and a short timeout.
type HTTPProber struct {
	// Client is the HTTP client to use; nil uses a 5-second-timeout client
	// that does not follow redirects.
	Client *http.Client
	// Scheme is "http" or "https"; empty means "http".
	Scheme string
}

var _ Prober = (*HTTPProber)(nil)

func (p *HTTPProber) client() *http.Client {
	if p.Client != nil {
		return p.Client
	}
	return &http.Client{
		Timeout: 5 * time.Second,
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
}

func (p *HTTPProber) scheme() string {
	if p.Scheme == "" {
		return "http"
	}
	return p.Scheme
}

func (p *HTTPProber) head(server string) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, p.scheme()+"://"+server+"/", nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.client().Do(req)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// RedirectTarget implements Prober: a 3xx response with a Location header
// pointing at a different SLD is a redirect.
func (p *HTTPProber) RedirectTarget(server string) (string, bool) {
	resp, err := p.head(server)
	if err != nil {
		return "", false
	}
	defer resp.Body.Close()
	if resp.StatusCode < 300 || resp.StatusCode >= 400 {
		return "", false
	}
	loc, err := resp.Location()
	if err != nil || loc.Host == "" {
		return "", false
	}
	target := domain.SLD(loc.Host)
	if target == "" || target == domain.SLD(server) {
		return "", false
	}
	return target, true
}

// Exists implements Prober: any HTTP response at all counts as existing;
// transport errors (NXDOMAIN, refused, timeout) count as dead.
func (p *HTTPProber) Exists(server string) bool {
	resp, err := p.head(server)
	if err != nil {
		var netErr interface{ Timeout() bool }
		// Timeouts are ambiguous; err on the side of "exists" so slow
		// servers are not misclassified as takedowns.
		if errors.As(err, &netErr) && netErr.Timeout() {
			return true
		}
		return false
	}
	resp.Body.Close()
	return true
}
