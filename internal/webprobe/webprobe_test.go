package webprobe

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
)

func TestMapProber(t *testing.T) {
	p := NewMapProber()
	p.Redirects["a.com"] = "b.com"
	p.Dead["gone.com"] = true
	if target, ok := p.RedirectTarget("a.com"); !ok || target != "b.com" {
		t.Errorf("RedirectTarget = %q %v", target, ok)
	}
	if _, ok := p.RedirectTarget("b.com"); ok {
		t.Error("unexpected redirect for b.com")
	}
	if p.Exists("gone.com") {
		t.Error("dead server exists")
	}
	if !p.Exists("a.com") {
		t.Error("live server dead")
	}
}

func TestNullProber(t *testing.T) {
	var p NullProber
	if _, ok := p.RedirectTarget("x.com"); ok {
		t.Error("NullProber redirected")
	}
	if !p.Exists("x.com") {
		t.Error("NullProber said dead")
	}
}

func TestHTTPProberRedirect(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "http://landing.example.com/home", http.StatusFound)
	}))
	defer srv.Close()
	u, err := url.Parse(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	p := &HTTPProber{}
	// The test server's host is 127.0.0.1:port; the prober strips the port
	// and resolves the Location header's SLD.
	target, ok := p.RedirectTarget(u.Host)
	if !ok || target != "example.com" {
		t.Errorf("RedirectTarget = %q %v, want example.com true", target, ok)
	}
	if !p.Exists(u.Host) {
		t.Error("live test server reported dead")
	}
}

func TestHTTPProberNoRedirect(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	u, err := url.Parse(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	p := &HTTPProber{}
	if _, ok := p.RedirectTarget(u.Host); ok {
		t.Error("200 response treated as redirect")
	}
}

func TestHTTPProberDead(t *testing.T) {
	// Port 1 on localhost is almost certainly closed: connection refused.
	p := &HTTPProber{}
	if p.Exists("127.0.0.1:1") {
		t.Skip("something is listening on port 1; skipping")
	}
}
