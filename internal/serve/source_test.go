package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"smash/internal/source"
)

// postRaw POSTs a raw-event batch to /v1/ingest with a Content-Type.
func postRaw(h http.Handler, ctype, body, query string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/ingest"+query, strings.NewReader(body))
	if ctype != "" {
		req.Header.Set("Content-Type", ctype)
	}
	h.ServeHTTP(rec, req)
	return rec
}

func drainQueue(t *testing.T, q *source.PushQueue, n int) []string {
	t.Helper()
	var clients []string
	for i := 0; i < n; i++ {
		r, err := q.Read()
		if err != nil {
			t.Fatalf("queue Read %d: %v", i, err)
		}
		clients = append(clients, r.Client)
	}
	return clients
}

// TestPushIngest drives the raw-event plane end to end: batches parse
// with strict error accounting, land on the queue in order, and ?eos=1
// ends the stream.
func TestPushIngest(t *testing.T) {
	st := memStore(t)
	q := source.NewPushQueue(64)
	h := NewHandler(Config{Store: st, Push: q})

	body := `{"ts":1330560000,"client":"a","host":"h.test","path":"/1","status":200}
not json at all
{"ts":1330560001,"client":"b","host":"h.test","path":"/2","status":200}
`
	rec := postRaw(h, "application/x-ndjson; charset=utf-8", body, "")
	if rec.Code != http.StatusAccepted {
		t.Fatalf("push status = %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Status    string `json:"status"`
		Format    string `json:"format"`
		Events    int    `json:"events"`
		Malformed int    `json:"malformed"`
		EOS       bool   `json:"eos"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Format != "jsonl" || resp.Events != 2 || resp.Malformed != 1 {
		t.Errorf("push response = %+v; want jsonl, 2 events, 1 malformed", resp)
	}
	if got := drainQueue(t, q, 2); strings.Join(got, ",") != "a,b" {
		t.Errorf("queued clients = %v; want [a b]", got)
	}

	// A TSV batch on the same listener lands under its own format.
	rec = postRaw(h, "text/tab-separated-values", "1330560002000000000\tc\th.test\t-\t/3\t-\t-\t-\t200\t-\n", "")
	if rec.Code != http.StatusAccepted {
		t.Fatalf("tsv push status = %d: %s", rec.Code, rec.Body)
	}
	if got := drainQueue(t, q, 1); got[0] != "c" {
		t.Errorf("tsv push queued %v; want [c]", got)
	}

	// /v1/stats exposes both per-format push counter blocks.
	srec := get(t, h, "/v1/stats")
	var stats struct {
		Sources []source.Stats `json:"sources"`
	}
	if err := json.Unmarshal(srec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	byFormat := map[string]source.Stats{}
	for _, s := range stats.Sources {
		byFormat[s.Format] = s
	}
	if s := byFormat["jsonl"]; s.Name != "push" || s.Lines != 2 || s.ParseErrors != 1 || s.PushBatches != 1 {
		t.Errorf("jsonl push stats = %+v", s)
	}
	if s := byFormat["tsv"]; s.Lines != 1 || s.PushBatches != 1 {
		t.Errorf("tsv push stats = %+v", s)
	}

	// eos closes the queue: drained, then EOF, and later pushes conflict.
	rec = postRaw(h, "application/x-ndjson", `{"ts":1330560003,"client":"d"}`, "?eos=1")
	if rec.Code != http.StatusAccepted {
		t.Fatalf("eos push status = %d: %s", rec.Code, rec.Body)
	}
	if got := drainQueue(t, q, 1); got[0] != "d" {
		t.Errorf("eos batch queued %v; want [d]", got)
	}
	if _, err := q.Read(); !errors.Is(err, io.EOF) {
		t.Errorf("queue after eos: %v; want EOF", err)
	}
	if rec := postRaw(h, "application/x-ndjson", `{"ts":1330560004,"client":"e"}`, ""); rec.Code != http.StatusConflict {
		t.Errorf("push after eos status = %d; want 409", rec.Code)
	}
}

func TestPushIngestContentTypes(t *testing.T) {
	st := memStore(t)

	// Unknown Content-Type on a push-only node: 415 listing the raw types.
	h := NewHandler(Config{Store: st, Push: source.NewPushQueue(4)})
	rec := postRaw(h, "application/xml", "<x/>", "")
	if rec.Code != http.StatusUnsupportedMediaType {
		t.Fatalf("unknown type status = %d: %s", rec.Code, rec.Body)
	}
	if body := rec.Body.String(); !strings.Contains(body, "application/x-ndjson") {
		t.Errorf("415 body does not list the raw-event types: %s", body)
	}

	// A node with neither push queue nor aggregator does not mount the
	// intake route at all.
	bare := NewHandler(Config{Store: memStore(t)})
	rec = postRaw(bare, "application/x-ndjson", `{"ts":1}`, "")
	if rec.Code != http.StatusNotFound {
		t.Errorf("push without a queue status = %d; want 404", rec.Code)
	}

	// Access-log bodies honor the PushOptions static host.
	q := source.NewPushQueue(4)
	h = NewHandler(Config{Store: memStore(t), Push: q, PushOptions: source.Options{Host: "static.test"}})
	line := `1.2.3.4 - - [01/Mar/2012:00:00:05 +0000] "GET /x HTTP/1.1" 200 -` + "\n"
	if rec := postRaw(h, "text/x-common-log", line, ""); rec.Code != http.StatusAccepted {
		t.Fatalf("common push status = %d: %s", rec.Code, rec.Body)
	}
	r, err := q.Read()
	if err != nil {
		t.Fatal(err)
	}
	if r.Host != "static.test" || r.Client != "1.2.3.4" {
		t.Errorf("pushed access-log event = %+v; want the static host applied", r)
	}
}

// TestMetricsLintSources lints the exposition of a source-wired handler
// (the standalone and ingest roles' shape) and pins the smash_source_*
// contract: every series present, HELP/TYPE'd, labeled by source and
// format.
func TestMetricsLintSources(t *testing.T) {
	st := memStore(t)
	fileCtrs := source.NewCounters("/var/log/access.log", "combined")
	idleCtrs := source.NewCounters("idle.log", "tsv")
	q := source.NewPushQueue(8)
	h := NewHandler(Config{
		Store: st,
		Push:  q,
		Sources: func() []source.Stats {
			return []source.Stats{fileCtrs.Stats(), idleCtrs.Stats()}
		},
	})

	// Exercise the counters so the series carry non-zero values: a file
	// source parsing lines (with one error, a rotation, a checkpoint and
	// a resume skip) plus one accepted push batch.
	f, err := source.New("combined", source.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dec := source.NewDecoder(strings.NewReader(
		`h.test c - - [01/Mar/2012:08:30:00 +0000] "GET / HTTP/1.1" 200 - "-" "ua"`+"\n garbage \n"), f, fileCtrs)
	for {
		if _, err := dec.Read(); err != nil {
			break
		}
	}
	if rec := postRaw(h, "application/x-ndjson", `{"ts":1330560000,"client":"a"}`, ""); rec.Code != http.StatusAccepted {
		t.Fatalf("push status = %d", rec.Code)
	}
	drainQueue(t, q, 1)

	rec := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	body := rec.Body.String()
	lintPrometheus(t, body)

	families := []string{
		"smash_source_lines_total",
		"smash_source_parse_errors_total",
		"smash_source_bytes_total",
		"smash_source_rotations_total",
		"smash_source_skipped_events_total",
		"smash_source_checkpoints_total",
		"smash_source_push_batches_total",
		"smash_source_lag_seconds",
	}
	for _, name := range families {
		if !strings.Contains(body, "# HELP "+name+" ") {
			t.Errorf("metrics missing HELP for %s", name)
		}
		if !strings.Contains(body, "# TYPE "+name+" ") {
			t.Errorf("metrics missing TYPE for %s", name)
		}
	}
	for _, want := range []string{
		`smash_source_lines_total{source="/var/log/access.log",format="combined"} 1`,
		`smash_source_parse_errors_total{source="/var/log/access.log",format="combined"} 1`,
		`smash_source_lines_total{source="push",format="jsonl"} 1`,
		`smash_source_push_batches_total{source="push",format="jsonl"} 1`,
		`smash_source_lag_seconds{source="push",format="jsonl"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if !strings.Contains(body, `smash_source_lag_seconds{source="/var/log/access.log"`) {
		t.Errorf("file source parsed events but exports no lag gauge:\n%s", body)
	}
	// A source that has seen no events keeps its counters (at zero) but
	// must not emit a lag sample — the stats sentinel is -1, not a fake
	// zero lag.
	if !strings.Contains(body, `smash_source_lines_total{source="idle.log",format="tsv"} 0`) {
		t.Errorf("idle source missing its zero-valued counters:\n%s", body)
	}
	if strings.Contains(body, `smash_source_lag_seconds{source="idle.log"`) {
		t.Errorf("idle source emitted a lag sample before any event:\n%s", body)
	}
}
