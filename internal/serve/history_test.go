package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"smash/internal/core"
	"smash/internal/source"
	"smash/internal/store"
	"smash/internal/stream"
	"smash/internal/trace"
	"smash/internal/tracker"
)

// fixtureHistory streams the cmd/smash fixture through 10-minute windows
// (instead of the single 24h window of fixtureStore) so the store retains
// a multi-window history: the campaign surfaces in window 1, later
// windows are too thin to re-detect it, and RetireAfter 1 retires the
// lineage in window 3 — so the history carries both an appear and a
// retire delta for the analytics endpoints to render.
func fixtureHistory(t *testing.T) *store.Store {
	return fixtureHistoryAt(t, "")
}

// fixtureHistoryAt is fixtureHistory against a state directory (empty
// for memory-only).
func fixtureHistoryAt(t *testing.T, dir string) *store.Store {
	t.Helper()
	f, err := os.Open(filepath.Join("..", "..", "cmd", "smash", "testdata", "campaign.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	newTracker := func() *tracker.Tracker {
		tk := tracker.New()
		tk.RetireAfter = 1
		return tk
	}
	st, err := store.Open(store.Config{Dir: dir, NewTracker: newTracker})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := stream.New(stream.Config{
		Name:     "servetest",
		Window:   10 * time.Minute,
		Tracker:  newTracker(),
		Sinks:    []stream.Sink{st},
		Detector: []core.Option{core.WithSeed(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for range eng.Start(trace.NewReader(f)) {
	}
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestWindowsGolden(t *testing.T) {
	h := NewHandler(Config{Store: fixtureHistory(t)})

	rec := get(t, h, "/v1/windows")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	checkGolden(t, "windows.golden.json", rec.Body.Bytes())

	// Seq range + pagination.
	rec = get(t, h, "/v1/windows?from=1&limit=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	checkGolden(t, "windows_range.golden.json", rec.Body.Bytes())

	// A time range: everything overlapping the first window only.
	timeRange := get(t, h, "/v1/windows?from=2020-09-13T12:00:00Z&to=2020-09-13T12:30:00Z")
	var tr struct {
		Total   int `json:"total"`
		Windows []struct {
			Seq int `json:"seq"`
		} `json:"windows"`
	}
	if err := json.Unmarshal(timeRange.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Total != 1 || len(tr.Windows) != 1 || tr.Windows[0].Seq != 0 {
		t.Errorf("time range picked %+v", tr)
	}

	for _, bad := range []string{
		"/v1/windows?from=yesterday",
		"/v1/windows?to=-3",
		"/v1/windows?limit=x",
	} {
		if rec := get(t, h, bad); rec.Code != http.StatusBadRequest {
			t.Errorf("%s status = %d", bad, rec.Code)
		}
	}
}

func TestLineageFilters(t *testing.T) {
	h := NewHandler(Config{Store: fixtureHistory(t)})

	rec := get(t, h, "/v1/lineages?kind=communication&minClients=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	checkGolden(t, "lineages_filter.golden.json", rec.Body.Bytes())

	// The server filter walks live member maps: against the single-window
	// fixture (whose lineage is never retired) it matches positively.
	liveStore, _ := fixtureStore(t)
	live := NewHandler(Config{Store: liveStore})
	if rec := get(t, live, "/v1/lineages?server=evil-a.test"); !strings.Contains(rec.Body.String(), `"total": 1`) {
		t.Errorf("live server filter: %s", rec.Body)
	}
	if rec := get(t, live, "/v1/lineages?server=ben-one.test"); !strings.Contains(rec.Body.String(), `"total": 0`) {
		t.Errorf("benign server matched a lineage: %s", rec.Body)
	}

	count := func(path string) int {
		var out struct {
			Total int `json:"total"`
		}
		rec := get(t, h, path)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s status = %d: %s", path, rec.Code, rec.Body)
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		return out.Total
	}
	all := count("/v1/lineages")
	if all == 0 {
		t.Fatal("fixture produced no lineages")
	}
	if got := count("/v1/lineages?server=not-a-server.test"); got != 0 {
		t.Errorf("unknown server matched %d lineages", got)
	}
	if got := count("/v1/lineages?kind=nope"); got != 0 {
		t.Errorf("unknown kind matched %d lineages", got)
	}
	if got := count("/v1/lineages?minServers=1000"); got != 0 {
		t.Errorf("minServers=1000 matched %d lineages", got)
	}
	// The campaign lineage is active only in window 1 (it is retired by
	// end of run, so the member-map server filter no longer matches it —
	// filter on kind instead). A range starting at window 2 must exclude
	// it, a range covering window 1 includes it.
	if got := count("/v1/lineages?activeFrom=2&kind=communication"); got != 0 {
		t.Errorf("activeFrom=2 matched %d campaign lineages", got)
	}
	if got := count("/v1/lineages?activeFrom=1&activeTo=1&kind=communication"); got != 1 {
		t.Errorf("activeFrom=1&activeTo=1 matched %d campaign lineages, want 1", got)
	}
}

func TestLineageTimelineGolden(t *testing.T) {
	h := NewHandler(Config{Store: fixtureHistory(t)})
	rec := get(t, h, "/v1/lineages/0/timeline")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	checkGolden(t, "timeline.golden.json", rec.Body.Bytes())

	if rec := get(t, h, "/v1/lineages/999/timeline"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown lineage timeline status = %d", rec.Code)
	}
	if rec := get(t, h, "/v1/lineages/x/timeline"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad id timeline status = %d", rec.Code)
	}
}

// sseEvents splits an SSE body into events (trailing blank line dropped).
func sseEvents(body string) []string {
	events := strings.Split(body, "\n\n")
	if len(events) > 0 && events[len(events)-1] == "" {
		events = events[:len(events)-1]
	}
	return events
}

func TestDeltasSSE(t *testing.T) {
	h := NewHandler(Config{Store: fixtureHistory(t)})

	// Catch-up mode: the full retained delta feed, framed as SSE.
	rec := get(t, h, "/v1/deltas?live=0")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content-type = %q", ct)
	}
	checkGolden(t, "deltas.sse.golden.txt", rec.Body.Bytes())

	events := sseEvents(rec.Body.String())
	if len(events) < 2 {
		t.Fatalf("fixture produced %d SSE events, want >= 2", len(events))
	}
	firstID := strings.TrimPrefix(strings.SplitN(events[0], "\n", 2)[0], "id: ")

	// Resuming after the first event replays exactly the rest.
	req := httptest.NewRequest("GET", "/v1/deltas?live=0", nil)
	req.Header.Set("Last-Event-ID", firstID)
	resumed := httptest.NewRecorder()
	h.ServeHTTP(resumed, req)
	want := strings.Join(events[1:], "\n\n") + "\n\n"
	if resumed.Body.String() != want {
		t.Errorf("resume from %q diverged:\ngot:\n%s\nwant:\n%s", firstID, resumed.Body, want)
	}

	// Resuming after the final event replays nothing.
	lastID := strings.TrimPrefix(strings.SplitN(events[len(events)-1], "\n", 2)[0], "id: ")
	req = httptest.NewRequest("GET", "/v1/deltas?live=0", nil)
	req.Header.Set("Last-Event-ID", lastID)
	resumed = httptest.NewRecorder()
	h.ServeHTTP(resumed, req)
	if resumed.Body.Len() != 0 {
		t.Errorf("resume from the last event replayed: %s", resumed.Body)
	}

	req = httptest.NewRequest("GET", "/v1/deltas", nil)
	req.Header.Set("Last-Event-ID", "garbage")
	bad := httptest.NewRecorder()
	h.ServeHTTP(bad, req)
	if bad.Code != http.StatusBadRequest {
		t.Errorf("bad Last-Event-ID status = %d", bad.Code)
	}
}

// A live subscriber sees a window's deltas as soon as the store consumes
// it, and the stream ends when the store closes.
func TestDeltasSSELive(t *testing.T) {
	st, err := store.Open(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(Config{Store: st}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/deltas")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	events := make(chan string)
	go func() {
		defer close(events)
		rd := bufio.NewReader(resp.Body)
		var b strings.Builder
		for {
			line, err := rd.ReadString('\n')
			if err != nil {
				return
			}
			if line == "\n" {
				events <- b.String()
				b.Reset()
				continue
			}
			b.WriteString(line)
		}
	}()

	base := time.Date(2020, 9, 13, 0, 0, 0, 0, time.UTC)
	w := stream.WindowResult{
		Seq: 0, Start: base, End: base.Add(time.Hour), Requests: 1,
		Deltas: []stream.Delta{{Window: 0, KindName: "appear", Lineage: 0}},
	}
	if err := st.Consume(&w); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if !strings.HasPrefix(ev, "id: 0.0\nevent: appear\n") {
			t.Errorf("live event = %q", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no live event within 10s")
	}

	// Closing the store ends every live stream.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case ev, ok := <-events:
		if ok {
			t.Errorf("unexpected event after close: %q", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not end after store close")
	}
}

// The acceptance property of the analytics plane: every history-backed
// endpoint answers byte-identically after a kill -9 (no final snapshot,
// WAL-only recovery, history healed from the WAL on reopen).
func TestHistoryEndpointsSurviveKill(t *testing.T) {
	dir := t.TempDir()
	st := fixtureHistoryAt(t, dir)
	h := NewHandler(Config{Store: st})
	paths := []string{
		"/v1/windows",
		"/v1/windows?from=1&limit=1",
		"/v1/lineages?kind=communication",
		"/v1/lineages/0/timeline",
		"/v1/deltas?live=0",
	}
	want := make(map[string]string, len(paths))
	for _, p := range paths {
		rec := get(t, h, p)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s status = %d: %s", p, rec.Code, rec.Body)
		}
		want[p] = rec.Body.String()
	}
	st.Abandon() // kill -9: no final snapshot or compaction

	newTracker := func() *tracker.Tracker {
		tk := tracker.New()
		tk.RetireAfter = 1
		return tk
	}
	st2, err := store.Open(store.Config{Dir: dir, NewTracker: newTracker})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	h2 := NewHandler(Config{Store: st2})
	for _, p := range paths {
		rec := get(t, h2, p)
		if rec.Code != http.StatusOK {
			t.Fatalf("restarted %s status = %d: %s", p, rec.Code, rec.Body)
		}
		if rec.Body.String() != want[p] {
			t.Errorf("%s diverged across kill/restart:\ngot:\n%s\nwant:\n%s", p, rec.Body, want[p])
		}
	}
}

func TestSourceStatsOrdered(t *testing.T) {
	s := &server{
		cfg: Config{Sources: func() []source.Stats {
			return []source.Stats{
				{Name: "z.log", Format: "tsv"},
				{Name: "a.log", Format: "jsonl"},
			}
		}},
		pushCtrs: map[string]*source.Counters{
			"tsv":   source.NewCounters("push", "tsv"),
			"jsonl": source.NewCounters("push", "jsonl"),
		},
	}
	got := s.sourceStats()
	var names []string
	for _, st := range got {
		names = append(names, st.Name+"/"+st.Format)
	}
	want := []string{"a.log/jsonl", "push/jsonl", "push/tsv", "z.log/tsv"}
	if len(names) != len(want) {
		t.Fatalf("sourceStats = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("sourceStats order = %v, want %v", names, want)
		}
	}
}
