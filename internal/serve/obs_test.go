package serve

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"smash/internal/cluster"
	"smash/internal/core"
	"smash/internal/obs"
	"smash/internal/store"
	"smash/internal/stream"
	"smash/internal/trace"
	"smash/internal/wire"
)

// fixtureObserved streams the cmd/smash fixture through a fully
// instrumented engine: registry-backed histograms, lifecycle tracer and
// a store sink, mirroring how cmd/smashd wires a standalone run.
func fixtureObserved(t *testing.T) (*store.Store, *stream.Engine, *obs.Registry, *obs.Tracer) {
	t.Helper()
	f, err := os.Open(filepath.Join("..", "..", "cmd", "smash", "testdata", "campaign.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := store.Open(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tr := obs.NewTracer(16)
	eng, err := stream.New(stream.Config{
		Name:     "servetest",
		Window:   24 * time.Hour,
		Sinks:    []stream.Sink{st},
		Detector: []core.Option{core.WithSeed(1)},
		Metrics:  reg,
		Tracer:   tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	for range eng.Start(trace.NewReader(f)) {
	}
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	return st, eng, reg, tr
}

// TestPprofDisabledByDefault: the profiling endpoints expose process
// internals, so they must be absent unless explicitly enabled.
func TestPprofDisabledByDefault(t *testing.T) {
	st, _ := fixtureStore(t)
	h := NewHandler(Config{Store: st})
	if rec := get(t, h, "/debug/pprof/"); rec.Code != http.StatusNotFound {
		t.Errorf("pprof without Config.Pprof: status = %d, want 404", rec.Code)
	}

	h = NewHandler(Config{Store: st, Pprof: true})
	if rec := get(t, h, "/debug/pprof/"); rec.Code != http.StatusOK {
		t.Errorf("pprof index with Config.Pprof: status = %d, want 200", rec.Code)
	}
	if rec := get(t, h, "/debug/pprof/cmdline"); rec.Code != http.StatusOK {
		t.Errorf("pprof cmdline with Config.Pprof: status = %d, want 200", rec.Code)
	}
}

var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// promFamily maps a sample name to its metric family: histogram samples
// carry _bucket/_sum/_count suffixes on the family name.
func promFamily(name string, types map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

// lintPrometheus parses one text-format exposition and fails on anything
// malformed: samples without HELP/TYPE, duplicate series or metadata,
// names outside the smash_ prefix, unparsable values, and histograms
// whose cumulative buckets decrease or disagree with _count.
func lintPrometheus(t *testing.T, body string) {
	t.Helper()
	helps := make(map[string]bool)
	types := make(map[string]string)
	series := make(map[string]bool)
	bucketLast := make(map[string]float64) // histogram series prefix -> last cumulative
	bucketInf := make(map[string]float64)  // histogram series prefix -> +Inf cumulative

	for ln, line := range strings.Split(body, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if meta, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, ok := strings.Cut(meta, " ")
			if !ok {
				t.Errorf("line %d: HELP without text: %q", ln+1, line)
				continue
			}
			if helps[name] {
				t.Errorf("line %d: duplicate HELP for %s", ln+1, name)
			}
			helps[name] = true
			continue
		}
		if meta, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, _ := strings.Cut(meta, " ")
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Errorf("line %d: bad TYPE %q for %s", ln+1, kind, name)
			}
			if !helps[name] {
				t.Errorf("line %d: TYPE %s without preceding HELP", ln+1, name)
			}
			if _, dup := types[name]; dup {
				t.Errorf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			types[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("line %d: unexpected comment %q", ln+1, line)
			continue
		}

		// Sample: name[{labels}] value
		key := line
		if i := strings.LastIndexByte(line, ' '); i >= 0 {
			key = line[:i]
		}
		value, err := strconv.ParseFloat(line[len(key)+1:], 64)
		if err != nil {
			t.Errorf("line %d: unparsable value in %q", ln+1, line)
			continue
		}
		name, labels := key, ""
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Errorf("line %d: unterminated labels in %q", ln+1, line)
				continue
			}
			name, labels = key[:i], key[i+1:len(key)-1]
		}
		if !metricNameRE.MatchString(name) {
			t.Errorf("line %d: invalid metric name %q", ln+1, name)
		}
		if !strings.HasPrefix(name, "smash_") {
			t.Errorf("line %d: metric %s outside the smash_ prefix", ln+1, name)
		}
		fam := promFamily(name, types)
		if !helps[fam] || types[fam] == "" {
			t.Errorf("line %d: sample %s without HELP/TYPE for family %s", ln+1, name, fam)
		}
		if series[key] {
			t.Errorf("line %d: duplicate series %s", ln+1, key)
		}
		series[key] = true

		// Histogram invariants: cumulative buckets never decrease and the
		// +Inf bucket equals _count.
		if types[fam] == "histogram" {
			prefix := fam + labelsWithoutLe(labels)
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if value < bucketLast[prefix] {
					t.Errorf("line %d: %s cumulative bucket decreased", ln+1, key)
				}
				bucketLast[prefix] = value
				if strings.Contains(labels, `le="+Inf"`) {
					bucketInf[prefix] = value
				}
			case strings.HasSuffix(name, "_count"):
				if inf, ok := bucketInf[prefix]; !ok || inf != value {
					t.Errorf("line %d: %s = %g disagrees with le=\"+Inf\" bucket %g", ln+1, key, value, inf)
				}
			}
		}
	}
	if len(series) == 0 {
		t.Fatal("no samples parsed")
	}
}

// labelsWithoutLe strips the le label so one histogram series' buckets,
// sum and count share a key.
func labelsWithoutLe(labels string) string {
	var kept []string
	for _, kv := range strings.Split(labels, ",") {
		if kv != "" && !strings.HasPrefix(kv, `le="`) {
			kept = append(kept, kv)
		}
	}
	sort.Strings(kept)
	return "{" + strings.Join(kept, ",") + "}"
}

// TestMetricsLint scrapes a fully wired standalone handler and lints the
// exposition; it also pins the PR's contract of at least four latency
// histogram families on /metrics.
func TestMetricsLint(t *testing.T) {
	st, eng, reg, tr := fixtureObserved(t)
	timing := core.NewTimingObserver()
	timing.StageEnd(core.StageResult{Stage: "mine", Duration: 30 * time.Millisecond})
	h := NewHandler(Config{
		Store:       st,
		EngineStats: eng.Stats,
		Timing:      timing,
		Metrics:     reg,
		Tracer:      tr,
	})

	rec := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	lintPrometheus(t, body)

	histograms := []string{
		"smash_ingest_seal_seconds",
		"smash_seal_commit_seconds",
		"smash_window_detect_seconds",
		"smash_pipeline_stage_seconds",
		"smash_sink_consume_seconds",
	}
	for _, name := range histograms {
		if !strings.Contains(body, "# TYPE "+name+" histogram") {
			t.Errorf("metrics missing histogram family %s", name)
		}
		if !strings.Contains(body, name+"_count") {
			t.Errorf("histogram %s has no samples", name)
		}
	}
	for _, want := range []string{
		`smash_sink_consume_seconds_count{sink="store"} 1`,
		`smash_pipeline_stage_seconds_count{stage="mine"} 1`,
		"smash_watermark_lag_seconds",
		"smash_go_goroutines",
		"smash_store_windows_total 1",
		`smash_store_deltas_total{kind="retire"} 0`,
		// Disk-usage gauges: memory-only fixture, so all zero but present.
		"smash_store_snapshot_bytes 0",
		"smash_store_wal_bytes 0",
		"smash_history_bytes 0",
		"smash_history_windows 1",
		"smash_history_gc_runs_total 0",
		"smash_sse_subscribers 0",
		"smash_sse_dropped_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// The disk-usage gauges must report real file sizes on a durable store.
func TestMetricsDiskUsage(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	base := time.Date(2020, 9, 13, 0, 0, 0, 0, time.UTC)
	w := stream.WindowResult{
		Seq: 0, Start: base, End: base.Add(time.Hour), Requests: 1,
		Deltas: []stream.Delta{{Window: 0, KindName: "appear", Lineage: 0}},
	}
	if err := st.Consume(&w); err != nil {
		t.Fatal(err)
	}
	h := NewHandler(Config{Store: st})
	body := get(t, h, "/metrics").Body.String()
	lintPrometheus(t, body)
	for _, name := range []string{"smash_store_snapshot_bytes", "smash_store_wal_bytes", "smash_history_bytes"} {
		found := false
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, name+" ") && !strings.HasSuffix(line, " 0") {
				found = true
			}
		}
		if !found {
			t.Errorf("%s reports no bytes for a durable store:\n%s", name, body)
		}
	}
}

// TestWindowTraceLive checks the trace endpoint against a real engine
// run: the fixture's single window must carry the full lifecycle.
func TestWindowTraceLive(t *testing.T) {
	st, _, reg, tr := fixtureObserved(t)
	h := NewHandler(Config{Store: st, Metrics: reg, Tracer: tr})

	rec := get(t, h, "/v1/windows/0/trace")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	got := tr.Trace(0)
	phases := make(map[string]bool, len(got.Spans))
	for _, s := range got.Spans {
		phases[s.Phase] = true
	}
	for _, want := range []string{"build", "seal", "detect", "detect:preprocess", "detect:mine", "store"} {
		if !phases[want] {
			t.Errorf("live trace missing phase %q (have %v)", want, phases)
		}
	}

	if rec := get(t, h, "/v1/windows/99/trace"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown window trace status = %d", rec.Code)
	}
	if rec := get(t, h, "/v1/windows/abc/trace"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad seq trace status = %d", rec.Code)
	}
	// Without a tracer the route does not exist at all.
	bare := NewHandler(Config{Store: st})
	if rec := get(t, bare, "/v1/windows/0/trace"); rec.Code != http.StatusNotFound {
		t.Errorf("trace without tracer status = %d", rec.Code)
	}
}

// TestWindowTraceGolden pins the endpoint's JSON shape with a handcrafted
// deterministic trace (live spans carry wall-clock timestamps).
func TestWindowTraceGolden(t *testing.T) {
	st, _ := fixtureStore(t)
	tr := obs.NewTracer(8)
	base := time.Date(2020, 9, 13, 0, 0, 0, 0, time.UTC)
	tr.Window(7, base, base.Add(24*time.Hour))
	tr.Record(7, "build", base.Add(100*time.Millisecond), 2*time.Second, "requests", "26")
	tr.Record(7, "seal", base.Add(2100*time.Millisecond), 40*time.Millisecond, "requests", "26")
	tr.Record(7, "detect:preprocess", base.Add(2140*time.Millisecond), 5*time.Millisecond)
	tr.Record(7, "detect:mine", base.Add(2145*time.Millisecond), 60*time.Millisecond)
	tr.Record(7, "detect", base.Add(2140*time.Millisecond), 80*time.Millisecond)
	tr.Record(7, "store", base.Add(2220*time.Millisecond), 3*time.Millisecond)

	h := NewHandler(Config{Store: st, Tracer: tr})
	rec := get(t, h, "/v1/windows/7/trace")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	checkGolden(t, "window_trace.golden.json", rec.Body.Bytes())
}

// TestMetricsLintClusterRole lints the aggregator-role exposition, whose
// collector set (per-node series, fragment-wait histogram, merged-window
// traces) differs from the standalone role's.
func TestMetricsLintClusterRole(t *testing.T) {
	st := memStore(t)
	reg := obs.NewRegistry()
	tr := obs.NewTracer(8)
	agg, err := cluster.NewAggregator(cluster.AggregatorConfig{
		Window: 24 * time.Hour, Expect: 1,
		Detector: []core.Option{core.WithSeed(1)},
		Sinks:    []stream.Sink{st},
		Metrics:  reg,
		Tracer:   tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandler(Config{Store: st, Aggregator: agg, Metrics: reg, Tracer: tr})

	// Feed one fragment + final marker through the HTTP intake and drain.
	results := agg.Start(context.Background())
	drained := make(chan struct{})
	go func() {
		for range results {
		}
		close(drained)
	}()
	frag := windowFragment("n0", 3, "c1")
	// A hop-stamped fragment exercises the transit histogram and the
	// per-node skew gauge (Submit stamps the receive side).
	frag.Hops = []wire.Hop{{Node: "n0", Role: "ingest", Send: time.Now().UTC(), Attempts: 1}}
	if rec := postFragment(t, h, frag); rec.Code != http.StatusAccepted {
		t.Fatalf("ingest status = %d: %s", rec.Code, rec.Body)
	}
	if rec := postFragment(t, h, &wire.Fragment{Node: "n0", Window: 3, Final: true}); rec.Code != http.StatusAccepted {
		t.Fatalf("final marker status = %d", rec.Code)
	}
	<-drained

	body := get(t, h, "/metrics").Body.String()
	lintPrometheus(t, body)
	for _, want := range []string{
		"# TYPE smash_cluster_fragment_wait_seconds histogram",
		"smash_cluster_fragment_wait_seconds_count 1",
		`smash_cluster_node_fragments_total{node="n0"} 1`,
		"smash_cluster_fragments_total 1",
		`smash_sink_consume_seconds_count{sink="store"} 1`,
		"# TYPE smash_hop_transit_seconds histogram",
		"smash_hop_transit_seconds_count 1",
		"# TYPE smash_e2e_event_to_seal_seconds histogram",
		"smash_e2e_event_to_seal_seconds_count 1",
		`smash_cluster_node_clock_skew_seconds{node="n0"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("cluster metrics missing %q\n%s", want, body)
		}
	}

	// The merged window's trace is served under its emitted seq.
	rec := get(t, h, "/v1/windows/0/trace")
	if rec.Code != http.StatusOK {
		t.Fatalf("cluster trace status = %d: %s", rec.Code, rec.Body)
	}
	got := tr.Trace(0)
	phases := make(map[string]bool, len(got.Spans))
	for _, s := range got.Spans {
		phases[s.Phase] = true
	}
	for _, want := range []string{"fragments", "merge", "detect", "store", "hop:n0"} {
		if !phases[want] {
			t.Errorf("cluster trace missing phase %q (have %v)", want, phases)
		}
	}
}
