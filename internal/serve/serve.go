// Package serve is smashd's embedded HTTP query/ops API: the read path
// over the campaign-state store (internal/store) that lets operators ask
// "what campaigns are live right now" while the detector runs.
//
// Endpoints:
//
//	GET  /healthz                   liveness probe
//	GET  /metrics                   Prometheus text metrics rendered from
//	                                an obs.Registry: store counters,
//	                                lineage gauges, live engine counters,
//	                                per-stage pipeline totals, per-node
//	                                cluster counters on an aggregator,
//	                                latency histograms from the engine /
//	                                aggregator / forwarder, and Go runtime
//	                                stats
//	GET  /v1/lineages               lineages (summaries, ordered by ID;
//	                                ?limit=N&offset=M paginate;
//	                                ?server=&kind=&minServers=&minClients=
//	                                &activeFrom=&activeTo= filter)
//	GET  /v1/lineages/{id}          one lineage with full history
//	GET  /v1/lineages/{id}/timeline per-window score/membership/churn
//	                                series for one lineage, from the
//	                                store's history log
//	GET  /v1/windows                retained window records in a seq or
//	                                time range (?from=&to=, seq numbers
//	                                or RFC 3339; ?limit=&offset= paginate)
//	GET  /v1/windows/latest         the most recently applied window record
//	GET  /v1/windows/{seq}/trace    one window's lifecycle spans (build,
//	                                seal, detect stages, sink consumes)
//	                                from the obs.Tracer ring
//	GET  /v1/stats                  store + engine (+ cluster) counters
//	GET  /v1/cluster                this node's place in the cluster tree:
//	                                role, upstream delivery leg, and (on
//	                                aggregator/merge roles) every known
//	                                child — watermark, lag, clock skew,
//	                                spool dwell — recursively from hop
//	                                provenance
//	GET  /v1/deltas                 lineage transitions as Server-Sent
//	                                Events: retained history first, then
//	                                live deltas as windows seal; resumes
//	                                losslessly from Last-Event-ID
//	POST /v1/ingest                 cluster fragment intake (aggregator
//	                                role only): a wire-encoded window
//	                                fragment from an ingest node
//	     /debug/pprof/...           net/http/pprof (only with Config.Pprof)
//
// All /v1 responses are stable, indentation-formatted JSON (golden-tested);
// map keys serialize sorted, so output is deterministic for a fixed state.
// Handlers read the store's mutex-guarded mirror and lock-free atomic
// engine counters. Store reads are cheap (scalar copies; member maps are
// cloned only for single-lineage detail), but they share one mutex with
// the persistence path: a scrape can briefly wait on an in-progress WAL
// fsync or snapshot, and window emission can briefly wait on a burst of
// scrapes. The detection pipeline itself (windowing, mining, scoring)
// never touches that lock.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"smash/internal/cluster"
	"smash/internal/core"
	"smash/internal/obs"
	"smash/internal/source"
	"smash/internal/store"
	"smash/internal/stream"
	"smash/internal/trace"
	"smash/internal/tracker"
	"smash/internal/wire"
)

// FragmentSink is the cluster-tier intake /v1/ingest drives: Submit
// accepts one decoded wire fragment (blocking for backpressure), and the
// stats methods feed /v1/stats, /v1/cluster and the smash_cluster_*
// metrics. Both *cluster.Aggregator (detection tier) and *cluster.Merger
// (fan-in tier) satisfy it.
type FragmentSink interface {
	Submit(*wire.Fragment) error
	Stats() cluster.Stats
	NodeStats() []cluster.NodeStat
	Topology() []cluster.TreeNode
}

// Config wires the handler's data sources.
type Config struct {
	// Store is the campaign-state store backing every /v1 endpoint
	// (required).
	Store *store.Store
	// Timing, when set, contributes per-stage pipeline totals to /metrics.
	// Install the same observer on the detector (core.WithObserver).
	Timing *core.TimingObserver
	// EngineStats, when set, contributes live engine ingestion counters to
	// /v1/stats and /metrics (use Engine.Stats).
	EngineStats func() stream.Stats
	// Aggregator, when set, enables the POST /v1/ingest fragment intake
	// and contributes cluster counters (global and per ingest node) to
	// /v1/stats and /metrics — the aggregator and merge roles' wiring
	// (a *cluster.Aggregator or *cluster.Merger).
	Aggregator FragmentSink
	// Push, when set, enables raw-event intake on POST /v1/ingest:
	// NDJSON / TSV / access-log request bodies (format negotiated by
	// Content-Type, see pushFormats) are parsed with strict error
	// accounting and queued for the engine. Push and Aggregator may
	// coexist on one listener; the cluster fragment Content-Type routes
	// to the aggregator, everything else to the push queue.
	Push *source.PushQueue
	// PushOptions parameterizes the push parsers (static Host fallback,
	// JSONL field mapping) — usually the same Options the daemon's file
	// source was built with.
	PushOptions source.Options
	// Sources, when set, contributes per-source smash_source_* series to
	// /metrics and a sources block to /v1/stats (push intake counters are
	// appended automatically when Push is set).
	Sources func() []source.Stats
	// Node and Role identify this process in the /v1/cluster topology
	// view ("shard0"/"ingest", "merge0"/"merge", "" defaults to the
	// process name and "standalone").
	Node string
	Role string
	// ForwarderStats, when set, contributes this node's upstream delivery
	// leg (spool depth, retries) to /v1/cluster — the ingest and merge
	// roles' wiring (use Forwarder.Stats).
	ForwarderStats func() cluster.ForwarderStats
	// Started stamps the /healthz uptime; zero disables the field.
	Started time.Time
	// Metrics is the registry rendered at /metrics. Pass the registry the
	// engine/aggregator/forwarder instruments live on so their latency
	// histograms appear alongside the store/engine/cluster collectors this
	// handler registers. Nil builds a private registry (the collectors and
	// runtime stats still render).
	Metrics *obs.Registry
	// Tracer, when set, enables GET /v1/windows/{seq}/trace over the
	// tracer's ring of recent window traces.
	Tracer *obs.Tracer
	// Pprof mounts net/http/pprof under /debug/pprof/. Off by default:
	// profiling endpoints expose process internals and burn real CPU when
	// scraped, so operators opt in per process.
	Pprof bool
}

// maxFragmentBytes bounds a /v1/ingest request body. Window fragments are
// compact relative to the traffic they summarize; anything past this is a
// confused or hostile client, not a bigger window.
const maxFragmentBytes = 256 << 20

// NewHandler builds the API's http.Handler and registers the
// store/engine/cluster/pipeline collectors plus Go runtime stats on the
// metrics registry.
func NewHandler(cfg Config) http.Handler {
	if cfg.Store == nil {
		panic("serve: Config.Store is required")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &server{cfg: cfg, reg: reg}
	if cfg.Push != nil {
		s.pushCtrs = make(map[string]*source.Counters)
	}
	registerCollectors(reg, cfg, s.sourceStats)
	obs.RegisterRuntimeMetrics(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /metrics", s.metrics)
	mux.HandleFunc("GET /v1/lineages", s.lineages)
	mux.HandleFunc("GET /v1/lineages/{id}", s.lineage)
	mux.HandleFunc("GET /v1/lineages/{id}/timeline", s.lineageTimeline)
	mux.HandleFunc("GET /v1/windows", s.windows)
	mux.HandleFunc("GET /v1/windows/latest", s.latestWindow)
	mux.HandleFunc("GET /v1/deltas", s.deltas)
	mux.HandleFunc("GET /v1/stats", s.stats)
	mux.HandleFunc("GET /v1/cluster", s.clusterTree)
	if cfg.Tracer != nil {
		mux.HandleFunc("GET /v1/windows/{seq}/trace", s.windowTrace)
	}
	if cfg.Aggregator != nil || cfg.Push != nil {
		mux.HandleFunc("POST /v1/ingest", s.ingest)
	}
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

type server struct {
	cfg Config
	reg *obs.Registry

	// pushCtrs holds one counter block per push body format, created on
	// first use — so /metrics separates NDJSON pushers from TSV pushers.
	pushMu   sync.Mutex
	pushCtrs map[string]*source.Counters
}

// sourceStats merges the daemon's file/stdin source stats with the push
// intake's per-format counters — the one list /v1/stats and the
// smash_source_* collectors render. The merged list is sorted by
// (name, format) so stats responses and metric series stay in one
// deterministic order no matter how sources were configured or in what
// order push formats first appeared.
func (s *server) sourceStats() []source.Stats {
	var out []source.Stats
	if s.cfg.Sources != nil {
		out = s.cfg.Sources()
	}
	s.pushMu.Lock()
	for _, c := range s.pushCtrs {
		out = append(out, c.Stats())
	}
	s.pushMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Format < out[j].Format
	})
	return out
}

// pushCounters returns (creating on first use) the counter block for
// one push body format.
func (s *server) pushCounters(format string) *source.Counters {
	s.pushMu.Lock()
	defer s.pushMu.Unlock()
	c := s.pushCtrs[format]
	if c == nil {
		c = source.NewCounters("push", format)
		s.pushCtrs[format] = c
	}
	return c
}

// lineageSummary is the list-view JSON shape of one lineage.
type lineageSummary struct {
	ID       int    `json:"id"`
	Kind     string `json:"kind"`
	Behavior string `json:"behavior"`
	Retired  bool   `json:"retired,omitempty"`
	// FirstWindow/LastWindow are 0-based global window sequence numbers;
	// WindowsActive counts windows with a matched campaign.
	FirstWindow   int `json:"firstWindow"`
	LastWindow    int `json:"lastWindow"`
	WindowsActive int `json:"windowsActive"`
	Servers       int `json:"servers"`
	Clients       int `json:"clients"`
}

// lineageDetail adds the full per-server/per-client window counts.
type lineageDetail struct {
	lineageSummary
	// ServerWindows/ClientWindows map each member to the number of
	// windows it appeared in.
	ServerWindows map[string]int `json:"serverWindows,omitempty"`
	ClientWindows map[string]int `json:"clientWindows,omitempty"`
}

func summarize(l *tracker.Lineage) lineageSummary {
	behavior := "persistent"
	if l.Agile() {
		behavior = "agile"
	}
	return lineageSummary{
		ID:            l.ID,
		Kind:          l.Kind.String(),
		Behavior:      behavior,
		Retired:       l.Retired,
		FirstWindow:   l.FirstDay,
		LastWindow:    l.LastDay,
		WindowsActive: l.DaysActive,
		Servers:       l.ServerCount(),
		Clients:       l.ClientCount(),
	}
}

// queryInt parses an optional non-negative integer query parameter,
// returning def when absent.
func queryInt(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("%s must be a non-negative integer", name)
	}
	return v, nil
}

func (s *server) lineages(w http.ResponseWriter, r *http.Request) {
	limit, err := queryInt(r, "limit", -1)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	offset, err := queryInt(r, "offset", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	filter, err := lineageFilterFrom(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	all := s.cfg.Store.LineageSummaries()
	if filter.server != "" {
		// Summaries carry no member maps; resolve the server filter to an
		// ID set in one store pass. Retired lineages never match (their
		// member maps were pruned at retirement).
		filter.serverIDs = s.cfg.Store.LineagesWithServer(filter.server)
	}
	all = filter.apply(all)
	// Pagination needs a total order; summaries come ordered by ID, but
	// sort defensively so the page windows stay stable no matter what.
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	out := struct {
		// Count is the number of lineages in this response; Total and
		// Retired describe the whole collection.
		Count    int              `json:"count"`
		Total    int              `json:"total"`
		Retired  int              `json:"retired"`
		Offset   int              `json:"offset,omitempty"`
		Lineages []lineageSummary `json:"lineages"`
	}{Total: len(all), Offset: offset}
	for _, l := range all {
		if l.Retired {
			out.Retired++
		}
	}
	if offset > len(all) {
		offset = len(all)
	}
	page := all[offset:]
	if limit >= 0 && limit < len(page) {
		page = page[:limit]
	}
	out.Count = len(page)
	out.Lineages = make([]lineageSummary, 0, len(page))
	for _, l := range page {
		out.Lineages = append(out.Lineages, summarize(l))
	}
	writeJSON(w, http.StatusOK, out)
}

// pushFormats maps /v1/ingest Content-Types onto source format names
// for the raw-event push intake.
var pushFormats = map[string]string{
	"application/x-ndjson":       "jsonl",
	"application/jsonl":          "jsonl",
	"text/tab-separated-values":  "tsv",
	"application/x-smash-tsv":    "tsv",
	"text/x-common-log":          "common",
	"text/x-combined-log":        "combined",
	"application/x-common-log":   "common",
	"application/x-combined-log": "combined",
}

// ingest is the shared POST /v1/ingest intake. The body's Content-Type
// picks the plane: the cluster fragment type routes to the aggregator
// (wire-encoded window fragments from ingest nodes); the raw-event
// types (pushFormats) route to the push queue, parsed with the same
// strict error accounting as a tailed file. Both planes block while
// their consumer is behind — that blocking, surfaced as a stalled POST,
// is the end-to-end backpressure contract.
func (s *server) ingest(w http.ResponseWriter, r *http.Request) {
	ctype := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ctype, ';'); i >= 0 {
		ctype = ctype[:i]
	}
	ctype = strings.TrimSpace(strings.ToLower(ctype))
	if _, isPush := pushFormats[ctype]; isPush || (ctype != cluster.ContentType && s.cfg.Aggregator == nil) {
		// Raw-event types go to the push queue; so does everything else on
		// a non-aggregator node (the push handler owns the 415 message).
		s.ingestPush(w, r, ctype)
		return
	}
	if s.cfg.Aggregator == nil {
		writeError(w, http.StatusUnsupportedMediaType,
			"this node is not an aggregator; fragment intake is disabled")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxFragmentBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("read fragment: %v", err))
		return
	}
	frag, err := wire.DecodeFragment(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decode fragment: %v", err))
		return
	}
	if err := s.cfg.Aggregator.Submit(frag); err != nil {
		// A stopped aggregator and a fragment that could not be made
		// durable are transient (the forwarder may retry, spool or give
		// up cleanly); anything else marks the fragment itself invalid
		// and must not be retried.
		status := http.StatusBadRequest
		if errors.Is(err, cluster.ErrStopped) || errors.Is(err, cluster.ErrUnavailable) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"status": "accepted", "node": frag.Node, "window": frag.Window,
	})
}

// maxPushBytes bounds one raw-event push batch. Shippers are expected
// to batch by the second, not by the day.
const maxPushBytes = 64 << 20

// ingestPush accepts one batch of raw events. Malformed lines are
// counted and dropped, never rejected wholesale — the same contract as
// a tailed file — and the response reports both tallies. `?eos=1`
// closes the push queue after the batch: queued events drain, then the
// engine sees end-of-stream and the daemon finishes its run.
func (s *server) ingestPush(w http.ResponseWriter, r *http.Request, ctype string) {
	if s.cfg.Push == nil {
		writeError(w, http.StatusUnsupportedMediaType,
			"this node does not accept raw events (no push queue); POST a cluster fragment or use a push-enabled role")
		return
	}
	name, ok := pushFormats[ctype]
	if !ok {
		types := make([]string, 0, len(pushFormats))
		for t := range pushFormats {
			types = append(types, t)
		}
		sort.Strings(types)
		writeError(w, http.StatusUnsupportedMediaType,
			fmt.Sprintf("unsupported Content-Type %q (raw-event types: %s; cluster fragments: %s)",
				ctype, strings.Join(types, ", "), cluster.ContentType))
		return
	}
	f, err := source.New(name, s.cfg.PushOptions)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	ctrs := s.pushCounters(name)
	dec := source.NewDecoder(http.MaxBytesReader(w, r.Body, maxPushBytes), f, ctrs)
	var batch []trace.Request
	for {
		req, err := dec.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("read batch: %v", err))
			return
		}
		batch = append(batch, req)
	}
	// Push blocks while the engine is behind; the client's POST stalls
	// with it (backpressure), unless the client gave up first.
	if err := s.cfg.Push.Push(batch); err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	ctrs.AddBatch()
	eos := r.URL.Query().Get("eos") == "1"
	if eos {
		s.cfg.Push.Close()
	}
	out := map[string]any{
		"status":    "accepted",
		"format":    name,
		"events":    len(batch),
		"malformed": dec.Errors(),
	}
	if eos {
		out["eos"] = true
	}
	writeJSON(w, http.StatusAccepted, out)
}

func (s *server) lineage(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "lineage id must be an integer")
		return
	}
	l := s.cfg.Store.Lineage(id)
	if l == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no lineage %d", id))
		return
	}
	writeJSON(w, http.StatusOK, lineageDetail{
		lineageSummary: summarize(l),
		ServerWindows:  l.Servers,
		ClientWindows:  l.Clients,
	})
}

func (s *server) latestWindow(w http.ResponseWriter, r *http.Request) {
	rec := s.cfg.Store.LastWindow()
	if rec == nil {
		writeError(w, http.StatusNotFound, "no window applied yet")
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	out := struct {
		Store   store.Stats        `json:"store"`
		Engine  *stream.Stats      `json:"engine,omitempty"`
		Cluster *cluster.Stats     `json:"cluster,omitempty"`
		Nodes   []cluster.NodeStat `json:"nodes,omitempty"`
		Sources []source.Stats     `json:"sources,omitempty"`
	}{Store: s.cfg.Store.Stats()}
	if s.cfg.EngineStats != nil {
		es := s.cfg.EngineStats()
		out.Engine = &es
	}
	if s.cfg.Aggregator != nil {
		cs := s.cfg.Aggregator.Stats()
		out.Cluster = &cs
		out.Nodes = s.cfg.Aggregator.NodeStats()
	}
	out.Sources = s.sourceStats()
	writeJSON(w, http.StatusOK, out)
}

// clusterTree renders this node's view of the cluster: its own identity
// and upstream delivery leg, plus — when it assembles fragments — every
// child it has heard from, recursively, reconstructed from the hop
// provenance those fragments carry. Asking the root yields the whole
// tree; asking a merge tier yields its subtree; asking an ingest node
// yields a leaf with its forwarding stats.
func (s *server) clusterTree(w http.ResponseWriter, r *http.Request) {
	out := struct {
		Node     string                  `json:"node,omitempty"`
		Role     string                  `json:"role"`
		Uptime   float64                 `json:"uptimeSeconds,omitempty"`
		Forward  *cluster.ForwarderStats `json:"forward,omitempty"`
		Cluster  *cluster.Stats          `json:"cluster,omitempty"`
		Children []cluster.TreeNode      `json:"children,omitempty"`
	}{Node: s.cfg.Node, Role: s.cfg.Role}
	if out.Role == "" {
		out.Role = "standalone"
	}
	if !s.cfg.Started.IsZero() {
		out.Uptime = time.Since(s.cfg.Started).Seconds()
	}
	if s.cfg.ForwarderStats != nil {
		fs := s.cfg.ForwarderStats()
		out.Forward = &fs
	}
	if s.cfg.Aggregator != nil {
		cs := s.cfg.Aggregator.Stats()
		out.Cluster = &cs
		out.Children = s.cfg.Aggregator.Topology()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	out := map[string]any{"status": "ok"}
	if !s.cfg.Started.IsZero() {
		out["uptimeSeconds"] = int(time.Since(s.cfg.Started) / time.Second)
	}
	writeJSON(w, http.StatusOK, out)
}

// registerCollectors bridges the existing counters — store mirror stats,
// live engine atomics, aggregator node states, source counters, pipeline
// stage totals — onto the registry as scrape-time collectors. Series
// names and values are identical to the pre-registry hand-rolled
// renderer.
func registerCollectors(reg *obs.Registry, cfg Config, sources func() []source.Stats) {
	st := cfg.Store.Stats
	reg.CounterFunc("smash_store_windows_total",
		"Windows applied to the campaign-state store.",
		func(emit obs.Emit) { emit(float64(st().Windows)) })
	reg.CounterFunc("smash_store_requests_total",
		"Requests summed over applied windows.",
		func(emit obs.Emit) { emit(float64(st().Requests)) })
	reg.CounterFunc("smash_store_campaigns_total",
		"Campaigns summed over applied windows.",
		func(emit obs.Emit) { emit(float64(st().Campaigns)) })
	reg.CounterFunc("smash_store_deltas_total",
		"Lineage transitions by kind.",
		func(emit obs.Emit) {
			s := st()
			emit(float64(s.Appeared), "kind", "appear")
			emit(float64(s.Persisted), "kind", "persist")
			emit(float64(s.Rotated), "kind", "rotate")
			emit(float64(s.Retired), "kind", "retire")
		})
	reg.GaugeFunc("smash_lineages",
		"Current lineage count by state.",
		func(emit obs.Emit) {
			s := st()
			emit(float64(s.Lineages-s.RetiredLineages), "state", "active")
			emit(float64(s.RetiredLineages), "state", "retired")
		})
	du := cfg.Store.DiskUsage
	reg.GaugeFunc("smash_store_snapshot_bytes",
		"On-disk size of the store snapshot (0 when memory-only).",
		func(emit obs.Emit) { emit(float64(du().SnapshotBytes)) })
	reg.GaugeFunc("smash_store_wal_bytes",
		"On-disk size of the write-ahead log (0 when memory-only, shrinks at compaction).",
		func(emit obs.Emit) { emit(float64(du().WALBytes)) })
	reg.GaugeFunc("smash_history_bytes",
		"On-disk size of the window history log (0 when memory-only).",
		func(emit obs.Emit) { emit(float64(du().HistoryBytes)) })
	hs := cfg.Store.HistoryStats
	reg.GaugeFunc("smash_history_windows",
		"Windows retained in the history log.",
		func(emit obs.Emit) { emit(float64(hs().Windows)) })
	reg.CounterFunc("smash_history_gc_runs_total",
		"Retention passes that garbage-collected history windows.",
		func(emit obs.Emit) { emit(float64(hs().GCRuns)) })
	reg.GaugeFunc("smash_sse_subscribers",
		"Live /v1/deltas event-stream subscriptions.",
		func(emit obs.Emit) { emit(float64(hs().Subscribers)) })
	reg.CounterFunc("smash_sse_dropped_total",
		"Event-stream subscriptions dropped for falling behind.",
		func(emit obs.Emit) { emit(float64(hs().Dropped)) })

	if cfg.EngineStats != nil {
		es := cfg.EngineStats
		reg.CounterFunc("smash_engine_events_total",
			"Events accepted into windows.",
			func(emit obs.Emit) { emit(float64(es().Events)) })
		reg.CounterFunc("smash_engine_late_events_total",
			"Events dropped beyond the watermark.",
			func(emit obs.Emit) { emit(float64(es().Late)) })
		reg.CounterFunc("smash_engine_windows_total",
			"Windows emitted by the engine this run.",
			func(emit obs.Emit) { emit(float64(es().Windows)) })
	}

	if agg := cfg.Aggregator; agg != nil {
		reg.CounterFunc("smash_cluster_fragments_total",
			"Window fragments accepted from ingest nodes.",
			func(emit obs.Emit) { emit(float64(agg.Stats().Fragments)) })
		reg.CounterFunc("smash_cluster_dropped_fragments_total",
			"Fragments dropped, by reason.",
			func(emit obs.Emit) {
				cs := agg.Stats()
				emit(float64(cs.LateFragments), "reason", "late")
				emit(float64(cs.DuplicateFragments), "reason", "duplicate")
			})
		reg.CounterFunc("smash_cluster_windows_total",
			"Cluster-wide windows sealed and detected.",
			func(emit obs.Emit) { emit(float64(agg.Stats().Windows)) })
		reg.GaugeFunc("smash_cluster_nodes",
			"Ingest nodes by state.",
			func(emit obs.Emit) {
				cs := agg.Stats()
				overdue := 0
				for _, n := range agg.NodeStats() {
					if n.FinalOverdue {
						overdue++
					}
				}
				emit(float64(cs.Nodes-cs.FinishedNodes), "state", "active")
				emit(float64(cs.FinishedNodes), "state", "finished")
				emit(float64(overdue), "state", "overdue")
			})
		reg.CounterFunc("smash_cluster_node_fragments_total",
			"Fragments accepted per ingest node.",
			func(emit obs.Emit) {
				for _, n := range agg.NodeStats() {
					emit(float64(n.Fragments), "node", n.Node)
				}
			})
		reg.GaugeFunc("smash_cluster_node_last_window",
			"Highest window id forwarded per ingest node.",
			func(emit obs.Emit) {
				for _, n := range agg.NodeStats() {
					emit(float64(n.LastWindow), "node", n.Node)
				}
			})
		reg.GaugeFunc("smash_cluster_node_clock_skew_seconds",
			"Estimated clock skew per child node (send-to-accept EWMA; includes network transit, so it upper-bounds true skew). Absent until a hop-stamped fragment arrives.",
			func(emit obs.Emit) {
				for _, n := range agg.NodeStats() {
					if n.ClockSkewSeconds != nil {
						emit(*n.ClockSkewSeconds, "node", n.Node)
					}
				}
			})
	}

	if cfg.Sources != nil || cfg.Push != nil {
		reg.CounterFunc("smash_source_lines_total",
			"Well-formed log lines parsed into events, per source.",
			func(emit obs.Emit) {
				for _, s := range sources() {
					emit(float64(s.Lines), "source", s.Name, "format", s.Format)
				}
			})
		reg.CounterFunc("smash_source_parse_errors_total",
			"Malformed log lines counted and dropped, per source.",
			func(emit obs.Emit) {
				for _, s := range sources() {
					emit(float64(s.ParseErrors), "source", s.Name, "format", s.Format)
				}
			})
		reg.CounterFunc("smash_source_bytes_total",
			"Raw line bytes consumed, per source.",
			func(emit obs.Emit) {
				for _, s := range sources() {
					emit(float64(s.Bytes), "source", s.Name, "format", s.Format)
				}
			})
		reg.CounterFunc("smash_source_rotations_total",
			"Log rotations (rename/recreate or truncation) followed, per source.",
			func(emit obs.Emit) {
				for _, s := range sources() {
					emit(float64(s.Rotations), "source", s.Name, "format", s.Format)
				}
			})
		reg.CounterFunc("smash_source_skipped_events_total",
			"Re-read events dropped below the resume horizon (already applied before a restart), per source.",
			func(emit obs.Emit) {
				for _, s := range sources() {
					emit(float64(s.Skipped), "source", s.Name, "format", s.Format)
				}
			})
		reg.CounterFunc("smash_source_checkpoints_total",
			"Byte-offset checkpoints persisted, per source.",
			func(emit obs.Emit) {
				for _, s := range sources() {
					emit(float64(s.Checkpoints), "source", s.Name, "format", s.Format)
				}
			})
		reg.CounterFunc("smash_source_push_batches_total",
			"HTTP push batches accepted, per source.",
			func(emit obs.Emit) {
				for _, s := range sources() {
					emit(float64(s.PushBatches), "source", s.Name, "format", s.Format)
				}
			})
		reg.GaugeFunc("smash_source_lag_seconds",
			"Wall-clock now minus the newest event time seen, per source (how far ingestion trails real time).",
			func(emit obs.Emit) {
				for _, s := range sources() {
					if s.LagSeconds >= 0 {
						emit(s.LagSeconds, "source", s.Name, "format", s.Format)
					}
				}
			})
	}

	if tm := cfg.Timing; tm != nil {
		stages := core.StageNames()
		sort.Strings(stages)
		reg.CounterFunc("smash_pipeline_stage_seconds_total",
			"Wall-clock per detection stage.",
			func(emit obs.Emit) {
				for _, stage := range stages {
					d, _ := tm.Total(stage)
					emit(d.Seconds(), "stage", stage)
				}
			})
		reg.CounterFunc("smash_pipeline_stage_runs_total",
			"Completed runs per detection stage.",
			func(emit obs.Emit) {
				for _, stage := range stages {
					_, runs := tm.Total(stage)
					emit(float64(runs), "stage", stage)
				}
			})
	}
}

// metrics renders the registry in Prometheus text exposition format.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// windowTrace serves one window's lifecycle spans from the tracer ring.
func (s *server) windowTrace(w http.ResponseWriter, r *http.Request) {
	seq, err := strconv.ParseInt(r.PathValue("seq"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "window seq must be an integer")
		return
	}
	tr := s.cfg.Tracer.Trace(seq)
	if tr == nil {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("no trace for window %d (the ring keeps only recent windows)", seq))
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]any{"error": msg})
}
