// Package serve is smashd's embedded HTTP query/ops API: the read path
// over the campaign-state store (internal/store) that lets operators ask
// "what campaigns are live right now" while the detector runs.
//
// Endpoints:
//
//	GET /healthz              liveness probe
//	GET /metrics              Prometheus text metrics: store counters,
//	                          lineage gauges, live engine counters, and
//	                          per-stage pipeline totals from the
//	                          core.Observer hooks
//	GET /v1/lineages          all lineages (summaries, ordered by ID)
//	GET /v1/lineages/{id}     one lineage with full server/client history
//	GET /v1/windows/latest    the most recently applied window record
//	GET /v1/stats             store + engine counters
//
// All /v1 responses are stable, indentation-formatted JSON (golden-tested);
// map keys serialize sorted, so output is deterministic for a fixed state.
// Handlers read the store's mutex-guarded mirror and lock-free atomic
// engine counters. Store reads are cheap (scalar copies; member maps are
// cloned only for single-lineage detail), but they share one mutex with
// the persistence path: a scrape can briefly wait on an in-progress WAL
// fsync or snapshot, and window emission can briefly wait on a burst of
// scrapes. The detection pipeline itself (windowing, mining, scoring)
// never touches that lock.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"smash/internal/core"
	"smash/internal/store"
	"smash/internal/stream"
	"smash/internal/tracker"
)

// Config wires the handler's data sources.
type Config struct {
	// Store is the campaign-state store backing every /v1 endpoint
	// (required).
	Store *store.Store
	// Timing, when set, contributes per-stage pipeline totals to /metrics.
	// Install the same observer on the detector (core.WithObserver).
	Timing *core.TimingObserver
	// EngineStats, when set, contributes live engine ingestion counters to
	// /v1/stats and /metrics (use Engine.Stats).
	EngineStats func() stream.Stats
	// Started stamps the /healthz uptime; zero disables the field.
	Started time.Time
}

// NewHandler builds the API's http.Handler.
func NewHandler(cfg Config) http.Handler {
	if cfg.Store == nil {
		panic("serve: Config.Store is required")
	}
	s := &server{cfg: cfg}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /metrics", s.metrics)
	mux.HandleFunc("GET /v1/lineages", s.lineages)
	mux.HandleFunc("GET /v1/lineages/{id}", s.lineage)
	mux.HandleFunc("GET /v1/windows/latest", s.latestWindow)
	mux.HandleFunc("GET /v1/stats", s.stats)
	return mux
}

type server struct {
	cfg Config
}

// lineageSummary is the list-view JSON shape of one lineage.
type lineageSummary struct {
	ID       int    `json:"id"`
	Kind     string `json:"kind"`
	Behavior string `json:"behavior"`
	Retired  bool   `json:"retired,omitempty"`
	// FirstWindow/LastWindow are 0-based global window sequence numbers;
	// WindowsActive counts windows with a matched campaign.
	FirstWindow   int `json:"firstWindow"`
	LastWindow    int `json:"lastWindow"`
	WindowsActive int `json:"windowsActive"`
	Servers       int `json:"servers"`
	Clients       int `json:"clients"`
}

// lineageDetail adds the full per-server/per-client window counts.
type lineageDetail struct {
	lineageSummary
	// ServerWindows/ClientWindows map each member to the number of
	// windows it appeared in.
	ServerWindows map[string]int `json:"serverWindows,omitempty"`
	ClientWindows map[string]int `json:"clientWindows,omitempty"`
}

func summarize(l *tracker.Lineage) lineageSummary {
	behavior := "persistent"
	if l.Agile() {
		behavior = "agile"
	}
	return lineageSummary{
		ID:            l.ID,
		Kind:          l.Kind.String(),
		Behavior:      behavior,
		Retired:       l.Retired,
		FirstWindow:   l.FirstDay,
		LastWindow:    l.LastDay,
		WindowsActive: l.DaysActive,
		Servers:       l.ServerCount(),
		Clients:       l.ClientCount(),
	}
}

func (s *server) lineages(w http.ResponseWriter, r *http.Request) {
	all := s.cfg.Store.LineageSummaries()
	out := struct {
		Count    int              `json:"count"`
		Retired  int              `json:"retired"`
		Lineages []lineageSummary `json:"lineages"`
	}{Count: len(all), Lineages: make([]lineageSummary, 0, len(all))}
	for _, l := range all {
		if l.Retired {
			out.Retired++
		}
		out.Lineages = append(out.Lineages, summarize(l))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) lineage(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "lineage id must be an integer")
		return
	}
	l := s.cfg.Store.Lineage(id)
	if l == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no lineage %d", id))
		return
	}
	writeJSON(w, http.StatusOK, lineageDetail{
		lineageSummary: summarize(l),
		ServerWindows:  l.Servers,
		ClientWindows:  l.Clients,
	})
}

func (s *server) latestWindow(w http.ResponseWriter, r *http.Request) {
	rec := s.cfg.Store.LastWindow()
	if rec == nil {
		writeError(w, http.StatusNotFound, "no window applied yet")
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	out := struct {
		Store  store.Stats   `json:"store"`
		Engine *stream.Stats `json:"engine,omitempty"`
	}{Store: s.cfg.Store.Stats()}
	if s.cfg.EngineStats != nil {
		es := s.cfg.EngineStats()
		out.Engine = &es
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	out := map[string]any{"status": "ok"}
	if !s.cfg.Started.IsZero() {
		out["uptimeSeconds"] = int(time.Since(s.cfg.Started) / time.Second)
	}
	writeJSON(w, http.StatusOK, out)
}

// metrics renders Prometheus text exposition format by hand — counters and
// gauges only, no dependency needed.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	st := s.cfg.Store.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	p("# HELP smash_store_windows_total Windows applied to the campaign-state store.\n")
	p("# TYPE smash_store_windows_total counter\n")
	p("smash_store_windows_total %d\n", st.Windows)
	p("# HELP smash_store_requests_total Requests summed over applied windows.\n")
	p("# TYPE smash_store_requests_total counter\n")
	p("smash_store_requests_total %d\n", st.Requests)
	p("# HELP smash_store_campaigns_total Campaigns summed over applied windows.\n")
	p("# TYPE smash_store_campaigns_total counter\n")
	p("smash_store_campaigns_total %d\n", st.Campaigns)
	p("# HELP smash_store_deltas_total Lineage transitions by kind.\n")
	p("# TYPE smash_store_deltas_total counter\n")
	p("smash_store_deltas_total{kind=\"appear\"} %d\n", st.Appeared)
	p("smash_store_deltas_total{kind=\"persist\"} %d\n", st.Persisted)
	p("smash_store_deltas_total{kind=\"rotate\"} %d\n", st.Rotated)
	p("# HELP smash_lineages Current lineage count by state.\n")
	p("# TYPE smash_lineages gauge\n")
	p("smash_lineages{state=\"active\"} %d\n", st.Lineages-st.RetiredLineages)
	p("smash_lineages{state=\"retired\"} %d\n", st.RetiredLineages)

	if s.cfg.EngineStats != nil {
		es := s.cfg.EngineStats()
		p("# HELP smash_engine_events_total Events accepted into windows.\n")
		p("# TYPE smash_engine_events_total counter\n")
		p("smash_engine_events_total %d\n", es.Events)
		p("# HELP smash_engine_late_events_total Events dropped beyond the watermark.\n")
		p("# TYPE smash_engine_late_events_total counter\n")
		p("smash_engine_late_events_total %d\n", es.Late)
		p("# HELP smash_engine_windows_total Windows emitted by the engine this run.\n")
		p("# TYPE smash_engine_windows_total counter\n")
		p("smash_engine_windows_total %d\n", es.Windows)
	}

	if s.cfg.Timing != nil {
		stages := core.StageNames()
		sort.Strings(stages)
		durations := make([]time.Duration, len(stages))
		runs := make([]int, len(stages))
		for i, stage := range stages {
			durations[i], runs[i] = s.cfg.Timing.Total(stage)
		}
		p("# HELP smash_pipeline_stage_seconds_total Wall-clock per detection stage.\n")
		p("# TYPE smash_pipeline_stage_seconds_total counter\n")
		for i, stage := range stages {
			p("smash_pipeline_stage_seconds_total{stage=%q} %g\n", stage, durations[i].Seconds())
		}
		p("# HELP smash_pipeline_stage_runs_total Completed runs per detection stage.\n")
		p("# TYPE smash_pipeline_stage_runs_total counter\n")
		for i, stage := range stages {
			p("smash_pipeline_stage_runs_total{stage=%q} %d\n", stage, runs[i])
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]any{"error": msg})
}
