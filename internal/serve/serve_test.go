package serve

import (
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"smash/internal/campaign"
	"smash/internal/core"
	"smash/internal/store"
	"smash/internal/stream"
	"smash/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fixtureStore streams the handcrafted cmd/smash fixture through a
// memory-only store and returns it with the drained engine.
func fixtureStore(t *testing.T) (*store.Store, *stream.Engine) {
	t.Helper()
	f, err := os.Open(filepath.Join("..", "..", "cmd", "smash", "testdata", "campaign.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := store.Open(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := stream.New(stream.Config{
		Name:     "servetest",
		Window:   24 * time.Hour,
		Sinks:    []stream.Sink{st},
		Detector: []core.Option{core.WithSeed(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for range eng.Start(trace.NewReader(f)) {
	}
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	return st, eng
}

// get performs one request against the handler and returns the response.
func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

// checkGolden compares a response body against testdata/<name>, rewriting
// it under -update.
func checkGolden(t *testing.T, name string, body []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(golden, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != string(want) {
		t.Errorf("%s diverged from golden file\ngot:\n%s\nwant:\n%s", name, body, want)
	}
}

func TestLineagesGolden(t *testing.T) {
	st, eng := fixtureStore(t)
	h := NewHandler(Config{Store: st, EngineStats: eng.Stats})
	rec := get(t, h, "/v1/lineages")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	checkGolden(t, "lineages.golden.json", rec.Body.Bytes())
}

func TestStatsGolden(t *testing.T) {
	st, eng := fixtureStore(t)
	h := NewHandler(Config{Store: st, EngineStats: eng.Stats})
	rec := get(t, h, "/v1/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	checkGolden(t, "stats.golden.json", rec.Body.Bytes())
}

func TestLineageDetailAndErrors(t *testing.T) {
	st, _ := fixtureStore(t)
	h := NewHandler(Config{Store: st})

	rec := get(t, h, "/v1/lineages/0")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var detail struct {
		ID            int            `json:"id"`
		ServerWindows map[string]int `json:"serverWindows"`
		ClientWindows map[string]int `json:"clientWindows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &detail); err != nil {
		t.Fatal(err)
	}
	if detail.ServerWindows["evil-a.test"] != 1 || detail.ClientWindows["c1"] != 1 {
		t.Errorf("detail missing member history: %+v", detail)
	}

	if rec := get(t, h, "/v1/lineages/999"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown lineage status = %d", rec.Code)
	}
	if rec := get(t, h, "/v1/lineages/abc"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad id status = %d", rec.Code)
	}
	if rec := get(t, h, "/v1/nope"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown route status = %d", rec.Code)
	}
}

func TestLatestWindowAndHealth(t *testing.T) {
	st, _ := fixtureStore(t)
	h := NewHandler(Config{Store: st, Started: time.Now()})

	rec := get(t, h, "/v1/windows/latest")
	var win struct {
		Seq      int `json:"seq"`
		Requests int `json:"requests"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &win); err != nil {
		t.Fatal(err)
	}
	if win.Requests != 26 {
		t.Errorf("latest window = %+v", win)
	}

	rec = get(t, h, "/healthz")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Errorf("healthz = %d %s", rec.Code, rec.Body)
	}

	// An empty store has no latest window.
	empty, err := store.Open(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rec := get(t, NewHandler(Config{Store: empty}), "/v1/windows/latest"); rec.Code != http.StatusNotFound {
		t.Errorf("empty latest status = %d", rec.Code)
	}
}

func TestMetrics(t *testing.T) {
	st, eng := fixtureStore(t)
	timing := core.NewTimingObserver()
	timing.StageEnd(core.StageResult{Stage: "mine", Duration: 30 * time.Millisecond})
	h := NewHandler(Config{Store: st, EngineStats: eng.Stats, Timing: timing})

	rec := get(t, h, "/metrics")
	body := rec.Body.String()
	for _, want := range []string{
		"smash_store_windows_total 1",
		"smash_store_requests_total 26",
		`smash_store_deltas_total{kind="appear"} 1`,
		`smash_lineages{state="active"} 1`,
		"smash_engine_events_total 26",
		`smash_pipeline_stage_seconds_total{stage="mine"} 0.03`,
		`smash_pipeline_stage_runs_total{stage="mine"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content-type = %q", ct)
	}
}

// The acceptance property: /v1/lineages reflects every window as soon as
// the sink consumed it — live state during a run, also under concurrent
// readers (exercised by go test -race).
func TestServesLiveStateBetweenWindows(t *testing.T) {
	st, err := store.Open(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandler(Config{Store: st})

	count := func() int {
		var out struct {
			Count int `json:"count"`
		}
		rec := get(t, h, "/v1/lineages")
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		return out.Count
	}

	if count() != 0 {
		t.Fatal("lineages before any window")
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					get(t, h, "/v1/lineages")
					get(t, h, "/v1/stats")
				}
			}
		}()
	}

	days := windowResults(t)
	for i, w := range days {
		if err := st.Consume(&w); err != nil {
			t.Fatal(err)
		}
		if got := count(); got < 1 {
			t.Errorf("after window %d: lineage count = %d", i, got)
		}
	}
	close(stop)
	wg.Wait()
	if st.Stats().Windows != len(days) {
		t.Errorf("windows = %d", st.Stats().Windows)
	}
}

// windowResults fabricates two window results continuing one lineage.
func windowResults(t *testing.T) []stream.WindowResult {
	t.Helper()
	base := time.Date(2020, 9, 13, 0, 0, 0, 0, time.UTC)
	var out []stream.WindowResult
	for i := 0; i < 2; i++ {
		report := &core.Report{Campaigns: []campaign.Campaign{{
			ID:      0,
			Servers: []string{"evil-a.test", "evil-b.test"},
			Clients: []string{"c1", "c2"},
			Kind:    campaign.KindCommunication,
		}}}
		out = append(out, stream.WindowResult{
			Seq:      i,
			Start:    base.AddDate(0, 0, i),
			End:      base.AddDate(0, 0, i+1),
			Requests: 10,
			Report:   report,
		})
	}
	return out
}
