package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"smash/internal/campaign"
	"smash/internal/cluster"
	"smash/internal/core"
	"smash/internal/store"
	"smash/internal/stream"
	"smash/internal/trace"
	"smash/internal/wire"
)

// memStore returns a fresh memory-only store.
func memStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// postFragment POSTs one encoded fragment to the handler.
func postFragment(t *testing.T, h http.Handler, frag *wire.Fragment) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/ingest", bytes.NewReader(wire.EncodeFragment(frag)))
	req.Header.Set("Content-Type", cluster.ContentType)
	h.ServeHTTP(rec, req)
	return rec
}

func windowFragment(node string, window int64, client string) *wire.Fragment {
	idx := trace.NewIndex()
	r := trace.Request{
		Time:   cluster.WindowStart(window, 24*time.Hour).Add(time.Hour),
		Client: client, Host: "pool.example.com", ServerIP: "10.9.9.9",
		Path: "/x", Status: 200,
	}
	idx.Add(&r)
	start := cluster.WindowStart(window, 24*time.Hour)
	return &wire.Fragment{
		Node: node, Window: window,
		Start: start, End: start.Add(24 * time.Hour), Index: idx,
	}
}

// /v1/ingest decodes fragments into the aggregator, rejects garbage, and
// reports cluster state on /v1/stats and /metrics.
func TestIngestEndpoint(t *testing.T) {
	agg, err := cluster.NewAggregator(cluster.AggregatorConfig{
		Window: 24 * time.Hour, Expect: 1,
		Detector: []core.Option{core.WithSeed(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := memStore(t)
	h := NewHandler(Config{Store: st, Aggregator: agg})

	results := agg.Start(context.Background())
	drained := make(chan int)
	go func() {
		n := 0
		for range results {
			n++
		}
		drained <- n
	}()

	if rec := postFragment(t, h, windowFragment("n0", 3, "c1")); rec.Code != http.StatusAccepted {
		t.Fatalf("ingest status = %d: %s", rec.Code, rec.Body)
	}

	// Garbage body and wrong method are rejected.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/ingest", strings.NewReader("not a fragment")))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("garbage fragment status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/ingest", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/ingest status = %d", rec.Code)
	}

	if rec := postFragment(t, h, &wire.Fragment{Node: "n0", Window: 3, Final: true}); rec.Code != http.StatusAccepted {
		t.Fatalf("final marker status = %d", rec.Code)
	}
	if n := <-drained; n != 1 {
		t.Fatalf("aggregator emitted %d windows, want 1", n)
	}

	var stats struct {
		Cluster *cluster.Stats     `json:"cluster"`
		Nodes   []cluster.NodeStat `json:"nodes"`
	}
	if err := json.Unmarshal(get(t, h, "/v1/stats").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cluster == nil || stats.Cluster.Fragments != 1 || stats.Cluster.Windows != 1 {
		t.Errorf("cluster stats = %+v", stats.Cluster)
	}
	if len(stats.Nodes) != 1 || stats.Nodes[0].Node != "n0" || !stats.Nodes[0].Finished {
		t.Errorf("node stats = %+v", stats.Nodes)
	}

	metrics := get(t, h, "/metrics").Body.String()
	for _, want := range []string{
		"smash_cluster_fragments_total 1",
		`smash_cluster_node_fragments_total{node="n0"} 1`,
		`smash_cluster_nodes{state="finished"} 1`,
		`smash_cluster_dropped_fragments_total{reason="late"} 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// Without an aggregator the ingest route does not exist.
func TestIngestDisabledWithoutAggregator(t *testing.T) {
	h := NewHandler(Config{Store: memStore(t)})
	if rec := postFragment(t, h, windowFragment("n0", 0, "c1")); rec.Code != http.StatusNotFound {
		t.Errorf("ingest without aggregator status = %d", rec.Code)
	}
}

// populate feeds n synthetic lineages through the store.
func populate(t *testing.T, st *store.Store, n int) {
	t.Helper()
	for _, w := range manyLineageWindows(t, n) {
		if err := st.Consume(&w); err != nil {
			t.Fatal(err)
		}
	}
}

// /v1/lineages pagination: deterministic ID order, limit/offset windows,
// stable totals, input validation.
func TestLineagesPagination(t *testing.T) {
	st := memStore(t)
	populate(t, st, 5)
	h := NewHandler(Config{Store: st})

	type resp struct {
		Count    int `json:"count"`
		Total    int `json:"total"`
		Offset   int `json:"offset"`
		Lineages []struct {
			ID int `json:"id"`
		} `json:"lineages"`
	}
	page := func(path string) resp {
		t.Helper()
		rec := get(t, h, path)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s status = %d: %s", path, rec.Code, rec.Body)
		}
		var out resp
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	full := page("/v1/lineages")
	if full.Count != 5 || full.Total != 5 {
		t.Fatalf("unpaginated = %+v", full)
	}
	for i, l := range full.Lineages {
		if l.ID != i {
			t.Fatalf("lineages not in ID order: %+v", full.Lineages)
		}
	}

	p := page("/v1/lineages?limit=2&offset=1")
	if p.Count != 2 || p.Total != 5 || p.Offset != 1 ||
		len(p.Lineages) != 2 || p.Lineages[0].ID != 1 || p.Lineages[1].ID != 2 {
		t.Errorf("page limit=2 offset=1 = %+v", p)
	}
	if p := page("/v1/lineages?limit=0"); p.Count != 0 || p.Total != 5 {
		t.Errorf("limit=0 = %+v", p)
	}
	if p := page("/v1/lineages?offset=99"); p.Count != 0 || p.Total != 5 {
		t.Errorf("offset past end = %+v", p)
	}
	if p := page("/v1/lineages?limit=99"); p.Count != 5 {
		t.Errorf("oversized limit = %+v", p)
	}

	for _, bad := range []string{"limit=-1", "limit=x", "offset=-2", "offset=1.5"} {
		if rec := get(t, h, "/v1/lineages?"+bad); rec.Code != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", bad, rec.Code)
		}
	}
}

// manyLineageWindows fabricates windows whose campaigns share no members,
// so each becomes its own lineage.
func manyLineageWindows(t *testing.T, n int) []stream.WindowResult {
	t.Helper()
	base := time.Date(2020, 9, 13, 0, 0, 0, 0, time.UTC)
	var out []stream.WindowResult
	for i := 0; i < n; i++ {
		report := &core.Report{Campaigns: []campaign.Campaign{{
			ID:      0,
			Servers: []string{fmt.Sprintf("evil-%d-a.test", i), fmt.Sprintf("evil-%d-b.test", i)},
			Clients: []string{fmt.Sprintf("c%d-1", i), fmt.Sprintf("c%d-2", i)},
			Kind:    campaign.KindCommunication,
		}}}
		out = append(out, stream.WindowResult{
			Seq:      i,
			Start:    base.AddDate(0, 0, i),
			End:      base.AddDate(0, 0, i+1),
			Requests: 10,
			Report:   report,
		})
	}
	return out
}

// Satellite regression: query handlers racing engine shutdown. /v1/stats
// reads the engine's live atomic counters and /v1/lineages the store
// mirror while Stop drains in-flight windows — go test -race is the
// assertion.
func TestHandlersRaceEngineShutdown(t *testing.T) {
	st := memStore(t)
	world := clusterWorldRequests(t)
	eng, err := stream.New(stream.Config{
		Name:   "racetest",
		Window: 24 * time.Hour,
		Sinks:  []stream.Sink{st},
		Detector: []core.Option{
			core.WithSeed(1),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandler(Config{Store: st, EngineStats: eng.Stats})

	results := eng.Start(&stream.SliceSource{Requests: world})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					get(t, h, "/v1/stats")
					get(t, h, "/v1/lineages")
					get(t, h, "/metrics")
				}
			}
		}()
	}
	// Stop mid-stream while handlers hammer the read paths, then drain.
	wg.Add(1)
	go func() {
		defer wg.Done()
		eng.Stop()
	}()
	for range results {
	}
	close(stop)
	wg.Wait()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	// The store must still serve a coherent view after shutdown.
	rec := get(t, h, "/v1/stats")
	if rec.Code != http.StatusOK {
		t.Errorf("stats after shutdown = %d", rec.Code)
	}
}

// clusterWorldRequests flattens the shared fixture trace into a request
// slice large enough that Stop lands mid-stream.
func clusterWorldRequests(t *testing.T) []trace.Request {
	t.Helper()
	base := time.Date(2020, 9, 13, 0, 0, 0, 0, time.UTC)
	var reqs []trace.Request
	for day := 0; day < 3; day++ {
		for i := 0; i < 400; i++ {
			reqs = append(reqs, trace.Request{
				Time:   base.AddDate(0, 0, day).Add(time.Duration(i) * time.Minute),
				Client: fmt.Sprintf("c%d", i%40),
				Host:   fmt.Sprintf("site-%d.test", i%60),
				Path:   fmt.Sprintf("/f%d", i%5),
				Status: 200,
			})
		}
	}
	return reqs
}

// GET /v1/cluster reconstructs the tree below an aggregator from hop
// provenance: a fragment relayed shard0 -> merge0 -> here must show
// merge0 as a direct child with shard0 beneath it, each with its role.
func TestClusterTreeEndpoint(t *testing.T) {
	st := memStore(t)
	agg, err := cluster.NewAggregator(cluster.AggregatorConfig{
		Window: 24 * time.Hour, Expect: 1,
		Detector: []core.Option{core.WithSeed(1)},
		Sinks:    []stream.Sink{st},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandler(Config{Store: st, Aggregator: agg, Node: "root", Role: "aggregate"})

	results := agg.Start(context.Background())
	drained := make(chan struct{})
	go func() {
		for range results {
		}
		close(drained)
	}()
	now := time.Now().UTC()
	frag := windowFragment("merge0", 3, "c1")
	frag.Hops = []wire.Hop{
		{Node: "shard0", Role: "ingest", Send: now.Add(-2 * time.Second), Recv: now.Add(-1 * time.Second), Attempts: 1},
		{Node: "merge0", Role: "merge", Send: now, Attempts: 1},
	}
	if rec := postFragment(t, h, frag); rec.Code != http.StatusAccepted {
		t.Fatalf("ingest status = %d: %s", rec.Code, rec.Body)
	}
	if rec := postFragment(t, h, &wire.Fragment{Node: "merge0", Window: 3, Final: true}); rec.Code != http.StatusAccepted {
		t.Fatalf("final marker status = %d", rec.Code)
	}
	<-drained

	rec := get(t, h, "/v1/cluster")
	if rec.Code != http.StatusOK {
		t.Fatalf("cluster status = %d: %s", rec.Code, rec.Body)
	}
	var view struct {
		Node     string             `json:"node"`
		Role     string             `json:"role"`
		Cluster  *cluster.Stats     `json:"cluster"`
		Children []cluster.TreeNode `json:"children"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if view.Node != "root" || view.Role != "aggregate" {
		t.Errorf("self = %s/%s, want root/aggregate", view.Node, view.Role)
	}
	if view.Cluster == nil || view.Cluster.Fragments != 1 {
		t.Errorf("cluster stats = %+v, want 1 fragment", view.Cluster)
	}
	if len(view.Children) != 1 {
		t.Fatalf("children = %+v, want exactly merge0", view.Children)
	}
	child := view.Children[0]
	if child.Node != "merge0" || child.Role != "merge" {
		t.Errorf("child = %s/%s, want merge0/merge", child.Node, child.Role)
	}
	if child.LastWindow != 3 {
		t.Errorf("child lastWindow = %d, want 3", child.LastWindow)
	}
	if child.ClockSkewSeconds == nil {
		t.Error("child clock skew missing (Submit stamps Recv on the last hop)")
	}
	if !child.Finished {
		t.Error("child not marked finished after its final marker")
	}
	if len(child.Children) != 1 || child.Children[0].Node != "shard0" {
		t.Fatalf("grandchildren = %+v, want exactly shard0", child.Children)
	}
	gc := child.Children[0]
	if gc.Role != "ingest" {
		t.Errorf("grandchild role = %q, want ingest", gc.Role)
	}
	if gc.ClockSkewSeconds == nil || *gc.ClockSkewSeconds != 1 {
		t.Errorf("grandchild skew = %v, want 1s (stamped into the hop)", gc.ClockSkewSeconds)
	}

	// A standalone handler still answers: a leaf with no children.
	bare := NewHandler(Config{Store: memStore(t)})
	rec = get(t, bare, "/v1/cluster")
	if rec.Code != http.StatusOK {
		t.Fatalf("standalone cluster status = %d", rec.Code)
	}
	var leaf struct {
		Role     string             `json:"role"`
		Children []cluster.TreeNode `json:"children"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &leaf); err != nil {
		t.Fatal(err)
	}
	if leaf.Role != "standalone" || len(leaf.Children) != 0 {
		t.Errorf("standalone view = %+v, want role standalone and no children", leaf)
	}
}
