package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"smash/internal/campaign"
	"smash/internal/cluster"
	"smash/internal/core"
	"smash/internal/store"
	"smash/internal/stream"
	"smash/internal/trace"
	"smash/internal/wire"
)

// memStore returns a fresh memory-only store.
func memStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// postFragment POSTs one encoded fragment to the handler.
func postFragment(t *testing.T, h http.Handler, frag *wire.Fragment) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/ingest", bytes.NewReader(wire.EncodeFragment(frag)))
	req.Header.Set("Content-Type", cluster.ContentType)
	h.ServeHTTP(rec, req)
	return rec
}

func windowFragment(node string, window int64, client string) *wire.Fragment {
	idx := trace.NewIndex()
	r := trace.Request{
		Time:   cluster.WindowStart(window, 24*time.Hour).Add(time.Hour),
		Client: client, Host: "pool.example.com", ServerIP: "10.9.9.9",
		Path: "/x", Status: 200,
	}
	idx.Add(&r)
	start := cluster.WindowStart(window, 24*time.Hour)
	return &wire.Fragment{
		Node: node, Window: window,
		Start: start, End: start.Add(24 * time.Hour), Index: idx,
	}
}

// /v1/ingest decodes fragments into the aggregator, rejects garbage, and
// reports cluster state on /v1/stats and /metrics.
func TestIngestEndpoint(t *testing.T) {
	agg, err := cluster.NewAggregator(cluster.AggregatorConfig{
		Window: 24 * time.Hour, Expect: 1,
		Detector: []core.Option{core.WithSeed(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := memStore(t)
	h := NewHandler(Config{Store: st, Aggregator: agg})

	results := agg.Start(context.Background())
	drained := make(chan int)
	go func() {
		n := 0
		for range results {
			n++
		}
		drained <- n
	}()

	if rec := postFragment(t, h, windowFragment("n0", 3, "c1")); rec.Code != http.StatusAccepted {
		t.Fatalf("ingest status = %d: %s", rec.Code, rec.Body)
	}

	// Garbage body and wrong method are rejected.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/ingest", strings.NewReader("not a fragment")))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("garbage fragment status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/ingest", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/ingest status = %d", rec.Code)
	}

	if rec := postFragment(t, h, &wire.Fragment{Node: "n0", Window: 3, Final: true}); rec.Code != http.StatusAccepted {
		t.Fatalf("final marker status = %d", rec.Code)
	}
	if n := <-drained; n != 1 {
		t.Fatalf("aggregator emitted %d windows, want 1", n)
	}

	var stats struct {
		Cluster *cluster.Stats     `json:"cluster"`
		Nodes   []cluster.NodeStat `json:"nodes"`
	}
	if err := json.Unmarshal(get(t, h, "/v1/stats").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cluster == nil || stats.Cluster.Fragments != 1 || stats.Cluster.Windows != 1 {
		t.Errorf("cluster stats = %+v", stats.Cluster)
	}
	if len(stats.Nodes) != 1 || stats.Nodes[0].Node != "n0" || !stats.Nodes[0].Finished {
		t.Errorf("node stats = %+v", stats.Nodes)
	}

	metrics := get(t, h, "/metrics").Body.String()
	for _, want := range []string{
		"smash_cluster_fragments_total 1",
		`smash_cluster_node_fragments_total{node="n0"} 1`,
		`smash_cluster_nodes{state="finished"} 1`,
		`smash_cluster_dropped_fragments_total{reason="late"} 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// Without an aggregator the ingest route does not exist.
func TestIngestDisabledWithoutAggregator(t *testing.T) {
	h := NewHandler(Config{Store: memStore(t)})
	if rec := postFragment(t, h, windowFragment("n0", 0, "c1")); rec.Code != http.StatusNotFound {
		t.Errorf("ingest without aggregator status = %d", rec.Code)
	}
}

// populate feeds n synthetic lineages through the store.
func populate(t *testing.T, st *store.Store, n int) {
	t.Helper()
	for _, w := range manyLineageWindows(t, n) {
		if err := st.Consume(&w); err != nil {
			t.Fatal(err)
		}
	}
}

// /v1/lineages pagination: deterministic ID order, limit/offset windows,
// stable totals, input validation.
func TestLineagesPagination(t *testing.T) {
	st := memStore(t)
	populate(t, st, 5)
	h := NewHandler(Config{Store: st})

	type resp struct {
		Count    int `json:"count"`
		Total    int `json:"total"`
		Offset   int `json:"offset"`
		Lineages []struct {
			ID int `json:"id"`
		} `json:"lineages"`
	}
	page := func(path string) resp {
		t.Helper()
		rec := get(t, h, path)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s status = %d: %s", path, rec.Code, rec.Body)
		}
		var out resp
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	full := page("/v1/lineages")
	if full.Count != 5 || full.Total != 5 {
		t.Fatalf("unpaginated = %+v", full)
	}
	for i, l := range full.Lineages {
		if l.ID != i {
			t.Fatalf("lineages not in ID order: %+v", full.Lineages)
		}
	}

	p := page("/v1/lineages?limit=2&offset=1")
	if p.Count != 2 || p.Total != 5 || p.Offset != 1 ||
		len(p.Lineages) != 2 || p.Lineages[0].ID != 1 || p.Lineages[1].ID != 2 {
		t.Errorf("page limit=2 offset=1 = %+v", p)
	}
	if p := page("/v1/lineages?limit=0"); p.Count != 0 || p.Total != 5 {
		t.Errorf("limit=0 = %+v", p)
	}
	if p := page("/v1/lineages?offset=99"); p.Count != 0 || p.Total != 5 {
		t.Errorf("offset past end = %+v", p)
	}
	if p := page("/v1/lineages?limit=99"); p.Count != 5 {
		t.Errorf("oversized limit = %+v", p)
	}

	for _, bad := range []string{"limit=-1", "limit=x", "offset=-2", "offset=1.5"} {
		if rec := get(t, h, "/v1/lineages?"+bad); rec.Code != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", bad, rec.Code)
		}
	}
}

// manyLineageWindows fabricates windows whose campaigns share no members,
// so each becomes its own lineage.
func manyLineageWindows(t *testing.T, n int) []stream.WindowResult {
	t.Helper()
	base := time.Date(2020, 9, 13, 0, 0, 0, 0, time.UTC)
	var out []stream.WindowResult
	for i := 0; i < n; i++ {
		report := &core.Report{Campaigns: []campaign.Campaign{{
			ID:      0,
			Servers: []string{fmt.Sprintf("evil-%d-a.test", i), fmt.Sprintf("evil-%d-b.test", i)},
			Clients: []string{fmt.Sprintf("c%d-1", i), fmt.Sprintf("c%d-2", i)},
			Kind:    campaign.KindCommunication,
		}}}
		out = append(out, stream.WindowResult{
			Seq:      i,
			Start:    base.AddDate(0, 0, i),
			End:      base.AddDate(0, 0, i+1),
			Requests: 10,
			Report:   report,
		})
	}
	return out
}

// Satellite regression: query handlers racing engine shutdown. /v1/stats
// reads the engine's live atomic counters and /v1/lineages the store
// mirror while Stop drains in-flight windows — go test -race is the
// assertion.
func TestHandlersRaceEngineShutdown(t *testing.T) {
	st := memStore(t)
	world := clusterWorldRequests(t)
	eng, err := stream.New(stream.Config{
		Name:   "racetest",
		Window: 24 * time.Hour,
		Sinks:  []stream.Sink{st},
		Detector: []core.Option{
			core.WithSeed(1),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandler(Config{Store: st, EngineStats: eng.Stats})

	results := eng.Start(&stream.SliceSource{Requests: world})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					get(t, h, "/v1/stats")
					get(t, h, "/v1/lineages")
					get(t, h, "/metrics")
				}
			}
		}()
	}
	// Stop mid-stream while handlers hammer the read paths, then drain.
	wg.Add(1)
	go func() {
		defer wg.Done()
		eng.Stop()
	}()
	for range results {
	}
	close(stop)
	wg.Wait()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	// The store must still serve a coherent view after shutdown.
	rec := get(t, h, "/v1/stats")
	if rec.Code != http.StatusOK {
		t.Errorf("stats after shutdown = %d", rec.Code)
	}
}

// clusterWorldRequests flattens the shared fixture trace into a request
// slice large enough that Stop lands mid-stream.
func clusterWorldRequests(t *testing.T) []trace.Request {
	t.Helper()
	base := time.Date(2020, 9, 13, 0, 0, 0, 0, time.UTC)
	var reqs []trace.Request
	for day := 0; day < 3; day++ {
		for i := 0; i < 400; i++ {
			reqs = append(reqs, trace.Request{
				Time:   base.AddDate(0, 0, day).Add(time.Duration(i) * time.Minute),
				Client: fmt.Sprintf("c%d", i%40),
				Host:   fmt.Sprintf("site-%d.test", i%60),
				Path:   fmt.Sprintf("/f%d", i%5),
				Status: 200,
			})
		}
	}
	return reqs
}
