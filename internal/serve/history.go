// Historical analytics endpoints: time-range window queries, lineage
// search, per-lineage timelines and the live SSE delta feed — all read
// from the store's history log (store/history.go), so every answer
// survives restarts and is bounded by the retention policy.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"smash/internal/store"
	"smash/internal/stream"
	"smash/internal/tracker"
)

// lineageFilter is the parsed /v1/lineages filter set. Zero values mean
// "no constraint".
type lineageFilter struct {
	server     string
	serverIDs  map[int]bool // resolved from server, nil when unset
	kind       string
	minServers int
	minClients int
	activeFrom int // -1 when unset
	activeTo   int
}

// lineageFilterFrom parses the filter query parameters.
func lineageFilterFrom(r *http.Request) (lineageFilter, error) {
	f := lineageFilter{activeFrom: -1, activeTo: -1}
	q := r.URL.Query()
	f.server = q.Get("server")
	f.kind = q.Get("kind")
	var err error
	if f.minServers, err = queryInt(r, "minServers", 0); err != nil {
		return f, err
	}
	if f.minClients, err = queryInt(r, "minClients", 0); err != nil {
		return f, err
	}
	if f.activeFrom, err = queryInt(r, "activeFrom", -1); err != nil {
		return f, err
	}
	if f.activeTo, err = queryInt(r, "activeTo", -1); err != nil {
		return f, err
	}
	return f, nil
}

// empty reports whether no constraint is set.
func (f *lineageFilter) empty() bool {
	return f.server == "" && f.kind == "" && f.minServers == 0 &&
		f.minClients == 0 && f.activeFrom < 0 && f.activeTo < 0
}

// apply filters the summary list in place.
func (f *lineageFilter) apply(all []*tracker.Lineage) []*tracker.Lineage {
	if f.empty() {
		return all
	}
	out := all[:0]
	for _, l := range all {
		if f.serverIDs != nil && !f.serverIDs[l.ID] {
			continue
		}
		if f.kind != "" && l.Kind.String() != f.kind {
			continue
		}
		if l.ServerCount() < f.minServers || l.ClientCount() < f.minClients {
			continue
		}
		if (f.activeFrom >= 0 || f.activeTo >= 0) && !l.ActiveIn(f.activeFrom, f.activeTo) {
			continue
		}
		out = append(out, l)
	}
	return out
}

// windowBound is one end of a /v1/windows range: either a global window
// seq or an event-time instant.
type windowBound struct {
	set    bool
	isTime bool
	seq    int
	t      time.Time
}

// parseBound accepts a non-negative window seq or an RFC 3339 time.
func parseBound(r *http.Request, name string) (windowBound, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return windowBound{}, nil
	}
	if n, err := strconv.Atoi(raw); err == nil {
		if n < 0 {
			return windowBound{}, fmt.Errorf("%s: window seq must be non-negative", name)
		}
		return windowBound{set: true, seq: n}, nil
	}
	if t, err := time.Parse(time.RFC3339, raw); err == nil {
		return windowBound{set: true, isTime: true, t: t}, nil
	}
	return windowBound{}, fmt.Errorf("%s must be a window seq or an RFC 3339 time", name)
}

// windows serves GET /v1/windows: the retained per-window records in a
// seq or time range, ascending by seq, paginated like /v1/lineages. A
// time `from` keeps windows that end after it; a time `to` keeps windows
// that start before it — i.e. every window overlapping [from, to).
func (s *server) windows(w http.ResponseWriter, r *http.Request) {
	from, err := parseBound(r, "from")
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	to, err := parseBound(r, "to")
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	limit, err := queryInt(r, "limit", -1)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	offset, err := queryInt(r, "offset", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	startSeq := 0
	if from.set && !from.isTime {
		startSeq = from.seq
	}
	recs := s.cfg.Store.History(startSeq)
	match := recs[:0]
	for _, rec := range recs {
		if from.set && from.isTime && !rec.End.After(from.t) {
			continue
		}
		if to.set {
			if to.isTime {
				if !rec.Start.Before(to.t) {
					break // ascending: nothing later can start earlier
				}
			} else if rec.Seq > to.seq {
				break
			}
		}
		match = append(match, rec)
	}
	hs := s.cfg.Store.HistoryStats()
	out := struct {
		// Count is the number of windows in this response; Total the
		// number matching the range. FirstRetained/LastRetained bound the
		// whole retained history (-1 when empty) — a Total smaller than
		// the asked-for range with FirstRetained > 0 means retention has
		// GC'd the older part.
		Count         int             `json:"count"`
		Total         int             `json:"total"`
		Offset        int             `json:"offset,omitempty"`
		FirstRetained int             `json:"firstRetained"`
		LastRetained  int             `json:"lastRetained"`
		Windows       []*store.Record `json:"windows"`
	}{Total: len(match), Offset: offset, FirstRetained: hs.FirstSeq, LastRetained: hs.LastSeq}
	if offset > len(match) {
		offset = len(match)
	}
	page := match[offset:]
	if limit >= 0 && limit < len(page) {
		page = page[:limit]
	}
	out.Count = len(page)
	out.Windows = page
	if out.Windows == nil {
		out.Windows = []*store.Record{}
	}
	writeJSON(w, http.StatusOK, out)
}

// timelinePoint is one window's worth of a lineage's life: what the
// lineage did (appear/persist/rotate/retire) and how big/strong its
// matched campaign was.
type timelinePoint struct {
	// Seq is the global window sequence; Start the window's start time.
	Seq   int       `json:"seq"`
	Start time.Time `json:"start"`
	// Kind is the delta kind this window.
	Kind string `json:"kind"`
	// Score is the matched campaign's detection score (0 on retire).
	Score float64 `json:"score,omitempty"`
	// Servers/Clients size the matched campaign; NewServers counts
	// servers the lineage had never seen before (member churn).
	Servers    int `json:"servers,omitempty"`
	Clients    int `json:"clients,omitempty"`
	NewServers int `json:"newServers,omitempty"`
	// ServerOverlap is the fraction of campaign servers already known.
	ServerOverlap float64 `json:"serverOverlap,omitempty"`
}

// lineageTimeline serves GET /v1/lineages/{id}/timeline: the per-window
// series of one lineage's activity reconstructed from the history log.
// Windows GC'd by retention are absent; FirstRetained tells the client
// how far back the series can go.
func (s *server) lineageTimeline(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "lineage id must be an integer")
		return
	}
	l := s.cfg.Store.Lineage(id)
	if l == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no lineage %d", id))
		return
	}
	hs := s.cfg.Store.HistoryStats()
	points := []timelinePoint{}
	for _, rec := range s.cfg.Store.History(0) {
		// Retire deltas are prepended to a window's delta list, so the
		// i-th non-retire delta aligns with Campaigns[i].
		campIdx := 0
		for i := range rec.Deltas {
			d := &rec.Deltas[i]
			retired := d.KindName == stream.Retire.String()
			idx := campIdx
			if !retired {
				campIdx++
			}
			if d.Lineage != id {
				continue
			}
			p := timelinePoint{Seq: rec.Seq, Start: rec.Start, Kind: d.KindName}
			if !retired && idx < len(rec.Campaigns) {
				p.Score = rec.Campaigns[idx].Score
				p.Servers = d.Servers
				p.Clients = d.Clients
				p.NewServers = len(d.NewServers)
				p.ServerOverlap = d.ServerOverlap
			}
			points = append(points, p)
		}
	}
	out := struct {
		ID            int             `json:"id"`
		Kind          string          `json:"kind"`
		Retired       bool            `json:"retired,omitempty"`
		Count         int             `json:"count"`
		FirstRetained int             `json:"firstRetained"`
		LastRetained  int             `json:"lastRetained"`
		Points        []timelinePoint `json:"points"`
	}{
		ID: id, Kind: l.Kind.String(), Retired: l.Retired,
		Count: len(points), FirstRetained: hs.FirstSeq, LastRetained: hs.LastSeq,
		Points: points,
	}
	writeJSON(w, http.StatusOK, out)
}

// parseEventID parses an SSE Last-Event-ID of the form "seq.idx" — the
// global window seq and the delta's index within that window's record.
func parseEventID(id string) (seq, idx int, err error) {
	s, i, ok := strings.Cut(id, ".")
	if !ok {
		return 0, 0, fmt.Errorf("event id %q: want seq.idx", id)
	}
	if seq, err = strconv.Atoi(s); err != nil || seq < 0 {
		return 0, 0, fmt.Errorf("event id %q: bad seq", id)
	}
	if idx, err = strconv.Atoi(i); err != nil || idx < 0 {
		return 0, 0, fmt.Errorf("event id %q: bad index", id)
	}
	return seq, idx, nil
}

// writeDeltaEvents emits one window record's deltas as SSE events,
// skipping delta indexes <= after (resume). Each event:
//
//	id: <seq>.<idx>
//	event: <appear|persist|rotate|retire>
//	data: {"seq":N,"delta":{...}}
func writeDeltaEvents(w http.ResponseWriter, rec *store.Record, after int) error {
	for i := range rec.Deltas {
		if i <= after {
			continue
		}
		d := &rec.Deltas[i]
		data, err := json.Marshal(d)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "id: %d.%d\nevent: %s\ndata: {\"seq\":%d,\"delta\":%s}\n\n",
			rec.Seq, i, d.KindName, rec.Seq, data); err != nil {
			return err
		}
	}
	return nil
}

// deltas serves GET /v1/deltas as a Server-Sent Events stream: every
// lineage transition, one event per delta, retained history first and
// then live as windows seal. `?from=N` starts at window seq N (default
// 0, i.e. everything retained); a Last-Event-ID header (sent by
// EventSource on reconnect) resumes exactly after the last received
// event. `?live=0` sends the catch-up backlog and closes — a poll-shaped
// snapshot of the same feed.
//
// Exactly-once overall: the store drops a subscriber that falls behind
// (closing the stream) rather than stalling the detection pipeline, and
// the client's automatic reconnect replays the gap from the history log
// by event ID. Deltas older than the retention horizon are gone — a
// resuming client skips to the oldest retained window.
func (s *server) deltas(w http.ResponseWriter, r *http.Request) {
	fromSeq, err := queryInt(r, "from", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	after := -1
	if id := r.Header.Get("Last-Event-ID"); id != "" {
		seq, idx, err := parseEventID(id)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		fromSeq, after = seq, idx
	}
	live := r.URL.Query().Get("live") != "0"
	backlog, sub := s.cfg.Store.SubscribeDeltas(fromSeq)
	defer sub.Close()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	for _, rec := range backlog {
		skip := -1
		if rec.Seq == fromSeq {
			skip = after
		}
		if err := writeDeltaEvents(w, rec, skip); err != nil {
			return
		}
	}
	flush()
	if !live {
		return
	}
	for {
		select {
		case rec, ok := <-sub.C:
			if !ok {
				// Dropped (we fell behind) or the store closed; the client
				// reconnects with Last-Event-ID and replays the gap.
				return
			}
			if err := writeDeltaEvents(w, rec, -1); err != nil {
				return
			}
			flush()
		case <-r.Context().Done():
			return
		}
	}
}
