// Package correlate implements ASH correlation (§III-C): suspicious herds
// are formed by intersecting each main-dimension (client similarity) herd
// with the herds of each secondary dimension, and each server accumulates a
// suspicious score
//
//	S(Si) = Σ_d  w_d(C_d) · w_m(C_m) · σ(|C_d ∩ C_m|)        (eq. 9)
//
// where w(C) is the herd's edge density, σ(x) = ½(1+erf((x−µ)/β)) with the
// paper's µ=4, β=5.5, and the sum ranges over the secondary dimensions whose
// herd containing Si intersects Si's main herd. Servers scoring below the
// inference threshold are removed; herds left with fewer than two servers
// are dropped. A score above 1.0 therefore requires agreement of the main
// dimension and at least two secondary dimensions.
package correlate

import (
	"sort"

	"smash/internal/herd"
	"smash/internal/stats"
)

// Options tunes correlation.
type Options struct {
	// Mu and Beta parameterize the sigma normalizer. Zero values use the
	// paper's defaults (µ=4, β=5.5).
	Mu, Beta float64
	// Threshold is the minimum suspicious score to keep a server. The
	// paper evaluates {0.5, 0.8, 1.0, 1.5} and selects 0.8 for multi-client
	// campaigns. Zero uses DefaultThreshold.
	Threshold float64
}

// DefaultThreshold is the paper's operating point for campaigns with more
// than one involved client.
const DefaultThreshold = 0.8

func (o Options) normalized() Options {
	if o.Mu == 0 {
		o.Mu = stats.DefaultMu
	}
	if o.Beta == 0 {
		o.Beta = stats.DefaultBeta
	}
	if o.Threshold == 0 {
		o.Threshold = DefaultThreshold
	}
	return o
}

// ServerScore is the correlation verdict for one server. The JSON shape is
// stable and consumed by smash -json and the smashd NDJSON feed; the herd
// pointer stays internal.
type ServerScore struct {
	// Server is the server key.
	Server string `json:"server"`
	// Score is the accumulated suspicious score S(Si).
	Score float64 `json:"score"`
	// Dimensions lists the secondary dimensions that contributed, sorted.
	Dimensions []string `json:"dimensions,omitempty"`
	// MainHerd identifies the server's main-dimension herd.
	MainHerd *herd.ASH `json:"-"`
}

// SuspiciousASH is a correlated herd: the servers of one main-dimension herd
// that survived the score threshold.
type SuspiciousASH struct {
	// MainHerd is the originating main-dimension herd.
	MainHerd *herd.ASH
	// Servers is the sorted surviving member list.
	Servers []string
	// Score is the maximum member score (the herd's confidence).
	Score float64
}

// Result is the output of correlation.
type Result struct {
	// Herds holds the suspicious ASHs, ordered by first member.
	Herds []SuspiciousASH
	// Scores maps every scored server (>0 before thresholding) to its
	// verdict, including servers later dropped by the threshold.
	Scores map[string]*ServerScore
}

// Correlate runs ASH correlation over mined herds.
func Correlate(mined *herd.Result, opts Options) *Result {
	opts = opts.normalized()
	membership := herd.BuildMembership(mined)

	scores := make(map[string]*ServerScore)
	for i := range mined.Main {
		mainHerd := &mined.Main[i]
		memberSet := make(map[string]struct{}, len(mainHerd.Servers))
		for _, s := range mainHerd.Servers {
			memberSet[s] = struct{}{}
		}
		for _, server := range mainHerd.Servers {
			byDim := membership[server]
			var entry *ServerScore
			for dim, secHerd := range byDim {
				if dim == mined.MainDimension {
					continue
				}
				inter := intersectionSize(secHerd.Servers, memberSet)
				if inter < 2 {
					// The intersection must associate the server with at
					// least one other server; a singleton intersection
					// carries no herd evidence.
					continue
				}
				if entry == nil {
					entry = &ServerScore{Server: server, MainHerd: mainHerd}
					scores[server] = entry
				}
				entry.Score += secHerd.Density * mainHerd.Density *
					stats.Sigma(float64(inter), opts.Mu, opts.Beta)
				entry.Dimensions = append(entry.Dimensions, dim)
			}
			if entry != nil {
				sort.Strings(entry.Dimensions)
			}
		}
	}

	// Threshold and regroup by main herd.
	byMain := make(map[*herd.ASH][]string)
	for server, sc := range scores {
		if sc.Score >= opts.Threshold {
			byMain[sc.MainHerd] = append(byMain[sc.MainHerd], server)
		}
	}
	res := &Result{Scores: scores}
	for mainHerd, servers := range byMain {
		if len(servers) < 2 {
			continue // groups with one server left are removed (§III-C)
		}
		sort.Strings(servers)
		maxScore := 0.0
		for _, s := range servers {
			if sc := scores[s]; sc.Score > maxScore {
				maxScore = sc.Score
			}
		}
		res.Herds = append(res.Herds, SuspiciousASH{
			MainHerd: mainHerd,
			Servers:  servers,
			Score:    maxScore,
		})
	}
	sort.Slice(res.Herds, func(i, j int) bool {
		return res.Herds[i].Servers[0] < res.Herds[j].Servers[0]
	})
	return res
}

func intersectionSize(sorted []string, set map[string]struct{}) int {
	n := 0
	for _, s := range sorted {
		if _, ok := set[s]; ok {
			n++
		}
	}
	return n
}

// DimensionDecomposition counts, for each distinct combination of
// contributing secondary dimensions, how many servers above the threshold
// were inferred through exactly that combination (Fig. 8). Keys are
// "+"-joined sorted dimension names.
func (r *Result) DimensionDecomposition(threshold float64) map[string]int {
	out := make(map[string]int)
	for _, h := range r.Herds {
		for _, server := range h.Servers {
			sc := r.Scores[server]
			if sc == nil || sc.Score < threshold {
				continue
			}
			out[comboKey(sc.Dimensions)]++
		}
	}
	return out
}

func comboKey(dims []string) string {
	key := ""
	for i, d := range dims {
		if i > 0 {
			key += "+"
		}
		key += d
	}
	return key
}
