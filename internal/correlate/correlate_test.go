package correlate

import (
	"math"
	"testing"

	"smash/internal/herd"
	"smash/internal/similarity"
	"smash/internal/stats"
)

// mkHerd builds an ASH literal with density 1.
func mkHerd(dim string, id int, servers ...string) herd.ASH {
	return herd.ASH{Dimension: dim, ID: id, Servers: servers, Density: 1.0}
}

func minedResult(main []herd.ASH, secondary map[string][]herd.ASH) *herd.Result {
	return &herd.Result{
		MainDimension: similarity.DimClient,
		Main:          main,
		Secondary:     secondary,
	}
}

func TestCorrelateTwoDimensionAgreement(t *testing.T) {
	// 6 servers agree on main + file + ip: with density 1 each and
	// intersection 6, sigma(6) ~ 0.64, so score ~ 1.28 > 1.0.
	servers := []string{"a.com", "b.com", "c.com", "d.com", "e.com", "f.com"}
	mined := minedResult(
		[]herd.ASH{mkHerd(similarity.DimClient, 0, servers...)},
		map[string][]herd.ASH{
			similarity.DimFile: {mkHerd(similarity.DimFile, 0, servers...)},
			similarity.DimIP:   {mkHerd(similarity.DimIP, 0, servers...)},
		})
	res := Correlate(mined, Options{Threshold: 1.0})
	if len(res.Herds) != 1 {
		t.Fatalf("herds = %d, want 1", len(res.Herds))
	}
	h := res.Herds[0]
	if len(h.Servers) != 6 {
		t.Errorf("surviving servers = %d, want 6", len(h.Servers))
	}
	wantScore := 2 * stats.Sigma(6, stats.DefaultMu, stats.DefaultBeta)
	if math.Abs(h.Score-wantScore) > 1e-9 {
		t.Errorf("score = %g, want %g", h.Score, wantScore)
	}
	sc := res.Scores["a.com"]
	if len(sc.Dimensions) != 2 {
		t.Errorf("dimensions = %v, want 2 entries", sc.Dimensions)
	}
}

func TestCorrelateSingleDimensionBelowThreshold(t *testing.T) {
	// Main + one secondary with a small intersection: sigma(3) < 0.5, so a
	// 0.8 threshold removes everything.
	servers := []string{"a.com", "b.com", "c.com"}
	mined := minedResult(
		[]herd.ASH{mkHerd(similarity.DimClient, 0, servers...)},
		map[string][]herd.ASH{
			similarity.DimFile: {mkHerd(similarity.DimFile, 0, servers...)},
		})
	res := Correlate(mined, Options{Threshold: 0.8})
	if len(res.Herds) != 0 {
		t.Errorf("small single-dimension herd survived: %+v", res.Herds)
	}
	// Scores are still recorded for diagnostics.
	if res.Scores["a.com"] == nil || res.Scores["a.com"].Score <= 0 {
		t.Error("score not recorded")
	}
}

func TestCorrelateNoSecondaryAgreement(t *testing.T) {
	// Main herd with no overlapping secondary herds: nothing suspicious.
	mined := minedResult(
		[]herd.ASH{mkHerd(similarity.DimClient, 0, "a.com", "b.com")},
		map[string][]herd.ASH{
			similarity.DimFile: {mkHerd(similarity.DimFile, 0, "x.com", "y.com")},
		})
	res := Correlate(mined, Options{})
	if len(res.Herds) != 0 || len(res.Scores) != 0 {
		t.Errorf("unexpected result: %+v", res)
	}
}

func TestCorrelateSingletonIntersectionIgnored(t *testing.T) {
	// Secondary herd sharing exactly one server with the main herd carries
	// no association evidence.
	mined := minedResult(
		[]herd.ASH{mkHerd(similarity.DimClient, 0, "a.com", "b.com", "c.com")},
		map[string][]herd.ASH{
			similarity.DimFile: {mkHerd(similarity.DimFile, 0, "a.com", "x.com", "y.com")},
		})
	res := Correlate(mined, Options{Threshold: 0.01})
	if len(res.Scores) != 0 {
		t.Errorf("singleton intersection scored: %+v", res.Scores)
	}
}

func TestCorrelateDensityWeighting(t *testing.T) {
	// Lower-density herds contribute proportionally lower scores.
	servers := []string{"a.com", "b.com", "c.com", "d.com", "e.com", "f.com"}
	dense := minedResult(
		[]herd.ASH{mkHerd(similarity.DimClient, 0, servers...)},
		map[string][]herd.ASH{
			similarity.DimFile: {mkHerd(similarity.DimFile, 0, servers...)},
		})
	sparseMain := mkHerd(similarity.DimClient, 0, servers...)
	sparseMain.Density = 0.5
	sparse := minedResult(
		[]herd.ASH{sparseMain},
		map[string][]herd.ASH{
			similarity.DimFile: {mkHerd(similarity.DimFile, 0, servers...)},
		})
	dRes := Correlate(dense, Options{Threshold: 0.01})
	sRes := Correlate(sparse, Options{Threshold: 0.01})
	dScore := dRes.Scores["a.com"].Score
	sScore := sRes.Scores["a.com"].Score
	if math.Abs(sScore-dScore/2) > 1e-9 {
		t.Errorf("density weighting off: dense %g, sparse %g", dScore, sScore)
	}
}

func TestCorrelateLargeGroupBeatsSmallGroup(t *testing.T) {
	big := make([]string, 20)
	for i := range big {
		big[i] = string(rune('a'+i)) + ".com"
	}
	small := []string{"x1.com", "x2.com", "x3.com"}
	mined := minedResult(
		[]herd.ASH{
			mkHerd(similarity.DimClient, 0, big...),
			mkHerd(similarity.DimClient, 1, small...),
		},
		map[string][]herd.ASH{
			similarity.DimFile: {
				mkHerd(similarity.DimFile, 0, big...),
				mkHerd(similarity.DimFile, 1, small...),
			},
		})
	res := Correlate(mined, Options{Threshold: 0.01})
	if res.Scores[big[0]].Score <= res.Scores[small[0]].Score {
		t.Errorf("large group %g should outscore small group %g",
			res.Scores[big[0]].Score, res.Scores[small[0]].Score)
	}
}

func TestDimensionDecomposition(t *testing.T) {
	servers := []string{"a.com", "b.com", "c.com", "d.com", "e.com", "f.com"}
	mined := minedResult(
		[]herd.ASH{mkHerd(similarity.DimClient, 0, servers...)},
		map[string][]herd.ASH{
			similarity.DimFile: {mkHerd(similarity.DimFile, 0, servers...)},
			similarity.DimIP:   {mkHerd(similarity.DimIP, 0, servers[:4]...)},
		})
	res := Correlate(mined, Options{Threshold: 0.3})
	decomp := res.DimensionDecomposition(0.3)
	if decomp["ipset+urifile"] != 4 {
		t.Errorf("ipset+urifile = %d, want 4; decomp=%v", decomp["ipset+urifile"], decomp)
	}
	if decomp["urifile"] != 2 {
		t.Errorf("urifile = %d, want 2; decomp=%v", decomp["urifile"], decomp)
	}
}

func TestCorrelateGroupsWithOneSurvivorDropped(t *testing.T) {
	// Construct scores where only one server in the herd passes: herd must
	// be dropped even though that server scores high.
	servers := []string{"a.com", "b.com", "c.com", "d.com", "e.com"}
	mined := minedResult(
		[]herd.ASH{mkHerd(similarity.DimClient, 0, servers...)},
		map[string][]herd.ASH{
			// a.com gets file+ip (two dims); the others only file.
			similarity.DimFile: {mkHerd(similarity.DimFile, 0, servers...)},
			similarity.DimIP:   {mkHerd(similarity.DimIP, 0, "a.com", "b.com")},
		})
	// Threshold chosen between the single-dim and double-dim scores such
	// that only a.com passes... but a.com+b.com's ip intersection is 2,
	// sigma(2) ~ 0.36 so a.com ~ sigma(5)+0.36·... Let's just compute.
	res := Correlate(mined, Options{Threshold: 0.01})
	aScore := res.Scores["a.com"].Score
	cScore := res.Scores["c.com"].Score
	if aScore <= cScore {
		t.Fatalf("setup broken: a=%g c=%g", aScore, cScore)
	}
	mid := (aScore + cScore) / 2
	res2 := Correlate(mined, Options{Threshold: mid})
	for _, h := range res2.Herds {
		if len(h.Servers) < 2 {
			t.Errorf("herd with %d server(s) survived", len(h.Servers))
		}
	}
}
