package campaign

import (
	"strings"
	"testing"
	"time"

	"smash/internal/correlate"
	"smash/internal/herd"
	"smash/internal/prune"
	"smash/internal/trace"
)

func buildIdx(rows [][4]string, statuses ...int) *trace.Index {
	tr := &trace.Trace{}
	for i, r := range rows {
		status := 200
		if i < len(statuses) {
			status = statuses[i]
		}
		tr.Requests = append(tr.Requests, trace.Request{
			Time: time.Unix(0, 0), Client: r[0], Host: r[1], ServerIP: r[2], Path: r[3],
			Status: status,
		})
	}
	return trace.BuildIndex(tr)
}

func prunedHerd(main *herd.ASH, servers ...string) prune.PrunedASH {
	return prune.PrunedASH{
		Suspicious: &correlate.SuspiciousASH{MainHerd: main, Servers: servers, Score: 1.2},
		Servers:    servers,
	}
}

func TestInferMergesByMainHerd(t *testing.T) {
	// Bagle pattern: download tier and C&C tier are separate pruned herds
	// but share one main (client) herd -> one campaign.
	mainHerd := &herd.ASH{Dimension: "client", ID: 0,
		Servers: []string{"cc1.com", "cc2.com", "dl1.com", "dl2.com"}}
	idx := buildIdx([][4]string{
		{"bot1", "dl1.com", "1.1.1.1", "/images/file.txt"},
		{"bot1", "dl2.com", "1.1.1.2", "/images/file.txt"},
		{"bot1", "cc1.com", "9.9.9.1", "/images/news.php"},
		{"bot1", "cc2.com", "9.9.9.2", "/images/news.php"},
		{"bot2", "cc1.com", "9.9.9.1", "/images/news.php"},
	})
	pruned := []prune.PrunedASH{
		prunedHerd(mainHerd, "dl1.com", "dl2.com"),
		prunedHerd(mainHerd, "cc1.com", "cc2.com"),
	}
	campaigns := Infer(pruned, idx)
	if len(campaigns) != 1 {
		t.Fatalf("campaigns = %d, want 1 (merged)", len(campaigns))
	}
	c := campaigns[0]
	if c.Size() != 4 {
		t.Errorf("servers = %v, want 4", c.Servers)
	}
	if len(c.Clients) != 2 {
		t.Errorf("clients = %v, want [bot1 bot2]", c.Clients)
	}
	if c.Herds != 2 {
		t.Errorf("merged herds = %d, want 2", c.Herds)
	}
	if c.Score != 1.2 {
		t.Errorf("score = %g", c.Score)
	}
}

func TestInferKeepsSeparateCampaigns(t *testing.T) {
	m1 := &herd.ASH{Dimension: "client", ID: 0, Servers: []string{"a1.com", "a2.com"}}
	m2 := &herd.ASH{Dimension: "client", ID: 1, Servers: []string{"b1.com", "b2.com"}}
	idx := buildIdx([][4]string{
		{"botA", "a1.com", "1.1.1.1", "/x.php"},
		{"botA", "a2.com", "1.1.1.2", "/x.php"},
		{"botB", "b1.com", "2.2.2.1", "/y.php"},
		{"botB", "b2.com", "2.2.2.2", "/y.php"},
	})
	pruned := []prune.PrunedASH{
		prunedHerd(m1, "a1.com", "a2.com"),
		prunedHerd(m2, "b1.com", "b2.com"),
	}
	campaigns := Infer(pruned, idx)
	if len(campaigns) != 2 {
		t.Fatalf("campaigns = %d, want 2", len(campaigns))
	}
	// Deterministic order by first server.
	if campaigns[0].Servers[0] != "a1.com" || campaigns[1].Servers[0] != "b1.com" {
		t.Errorf("order: %v / %v", campaigns[0].Servers, campaigns[1].Servers)
	}
}

func TestInferDeterministic(t *testing.T) {
	m1 := &herd.ASH{Dimension: "client", ID: 0, Servers: []string{"a1.com", "a2.com"}}
	m2 := &herd.ASH{Dimension: "client", ID: 1, Servers: []string{"b1.com", "b2.com"}}
	idx := buildIdx([][4]string{
		{"c", "a1.com", "1.1.1.1", "/x"}, {"c", "a2.com", "1.1.1.2", "/x"},
		{"c", "b1.com", "2.2.2.1", "/y"}, {"c", "b2.com", "2.2.2.2", "/y"},
	})
	pruned := []prune.PrunedASH{
		prunedHerd(m2, "b1.com", "b2.com"),
		prunedHerd(m1, "a1.com", "a2.com"),
	}
	a := Infer(pruned, idx)
	b := Infer(pruned, idx)
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if strings.Join(a[i].Servers, ",") != strings.Join(b[i].Servers, ",") {
			t.Fatalf("nondeterministic campaign %d", i)
		}
	}
}

func TestClassify(t *testing.T) {
	// Attacking campaign: victims answer 404 to the scanner's probes.
	idx := buildIdx([][4]string{
		{"bot", "v1.com", "1.1.1.1", "/setup.php"},
		{"bot", "v2.com", "1.1.1.2", "/setup.php"},
		{"bot", "cc.com", "9.9.9.9", "/login.php"},
		{"bot", "cc2.com", "9.9.9.9", "/login.php"},
	}, 404, 404, 200, 200)
	campaigns := []Campaign{
		{Servers: []string{"v1.com", "v2.com"}},
		{Servers: []string{"cc.com", "cc2.com"}},
	}
	Classify(campaigns, idx, 0.5)
	if campaigns[0].Kind != KindAttacking {
		t.Errorf("victims classified %v, want attacking", campaigns[0].Kind)
	}
	if campaigns[1].Kind != KindCommunication {
		t.Errorf("C&C classified %v, want communication", campaigns[1].Kind)
	}
	if KindAttacking.String() != "attacking" || KindCommunication.String() != "communication" {
		t.Error("kind strings wrong")
	}
	if Kind(0).String() != "unknown" {
		t.Error("zero kind should be unknown")
	}
}

func TestFilterMinClients(t *testing.T) {
	campaigns := []Campaign{
		{ID: 0, Clients: []string{"a", "b"}},
		{ID: 1, Clients: []string{"a"}},
		{ID: 2, Clients: nil},
	}
	kept, removed := FilterMinClients(campaigns, 2)
	if len(kept) != 1 || kept[0].ID != 0 {
		t.Errorf("kept = %+v", kept)
	}
	if len(removed) != 2 {
		t.Errorf("removed = %+v", removed)
	}
}

func TestCampaignRender(t *testing.T) {
	c := Campaign{ID: 3, Kind: KindCommunication, Score: 1.5,
		Servers: []string{"a.com", "b.com", "c.com", "d.com", "e.com"},
		Clients: []string{"x"}}
	out := c.Render()
	if !strings.Contains(out, "campaign 3") || !strings.Contains(out, "...") {
		t.Errorf("render = %q", out)
	}
}

func TestInferEmptyAndNilHandling(t *testing.T) {
	idx := trace.NewIndex()
	if got := Infer(nil, idx); len(got) != 0 {
		t.Errorf("empty infer = %+v", got)
	}
	// Pruned herd with nil suspicious pointer must not panic.
	pruned := []prune.PrunedASH{{Servers: []string{"x.com", "y.com"}}}
	got := Infer(pruned, idx)
	if len(got) != 1 {
		t.Errorf("got %d campaigns", len(got))
	}
}
