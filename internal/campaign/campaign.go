// Package campaign implements malicious campaign inference (§III-E): the
// correlation stage captures specific activities (e.g. the download tier and
// the C&C tier of one botnet end up in different herds), so pruned herds
// whose servers belong to the same main-dimension (client similarity) herd
// are merged back into one campaign — the infected clients connecting to
// different tiers still mark one malicious operation.
package campaign

import (
	"fmt"
	"sort"
	"strings"

	"smash/internal/herd"
	"smash/internal/prune"
	"smash/internal/trace"
)

// Kind distinguishes the paper's two malicious activity classes.
type Kind int

const (
	// KindCommunication marks campaigns whose servers are malware
	// infrastructure contacted by bots (C&C, drop zones, exploit kits).
	KindCommunication Kind = iota + 1
	// KindAttacking marks campaigns whose servers are benign victims
	// attacked by bots (scanning, iframe injection).
	KindAttacking
)

// String returns the kind's display name.
func (k Kind) String() string {
	switch k {
	case KindCommunication:
		return "communication"
	case KindAttacking:
		return "attacking"
	default:
		return "unknown"
	}
}

// MarshalText renders the kind as its display name, so JSON output carries
// "communication"/"attacking" instead of bare enum integers.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a display name back into a Kind; unknown names
// (including "unknown") decode to the zero Kind.
func (k *Kind) UnmarshalText(text []byte) error {
	switch string(text) {
	case "communication":
		*k = KindCommunication
	case "attacking":
		*k = KindAttacking
	default:
		*k = 0
	}
	return nil
}

// Campaign is one inferred malicious campaign. The JSON shape is stable
// and consumed by smash -json and the smashd NDJSON feed.
type Campaign struct {
	// ID is a stable identifier within the run.
	ID int `json:"id"`
	// Servers is the sorted set of involved servers.
	Servers []string `json:"servers,omitempty"`
	// Clients is the sorted set of clients contacting those servers.
	Clients []string `json:"clients,omitempty"`
	// Score is the highest member herd score.
	Score float64 `json:"score"`
	// Herds counts how many pruned herds were merged into the campaign.
	Herds int `json:"herds"`
	// Kind is a heuristic activity classification (see Classify).
	Kind Kind `json:"kind"`
}

// Size returns the number of servers in the campaign.
func (c *Campaign) Size() int { return len(c.Servers) }

// Render formats the campaign as a short one-line summary.
func (c *Campaign) Render() string {
	preview := c.Servers
	if len(preview) > 4 {
		preview = preview[:4]
	}
	return fmt.Sprintf("campaign %d [%s] score=%.2f servers=%d clients=%d: %s%s",
		c.ID, c.Kind, c.Score, len(c.Servers), len(c.Clients),
		strings.Join(preview, ", "),
		map[bool]string{true: ", ...", false: ""}[len(c.Servers) > len(preview)])
}

// Infer merges pruned herds into campaigns: herds sharing a main-dimension
// herd are unioned (the main dimension captures the campaign's group
// connection behaviour). Campaign clients are recovered from the index.
func Infer(pruned []prune.PrunedASH, idx *trace.Index) []Campaign {
	// Union-find over herd indices keyed by shared main herd.
	parent := make([]int, len(pruned))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	byMain := make(map[*herd.ASH][]int)
	for i := range pruned {
		if pruned[i].Suspicious == nil || pruned[i].Suspicious.MainHerd == nil {
			continue
		}
		m := pruned[i].Suspicious.MainHerd
		byMain[m] = append(byMain[m], i)
	}
	for _, idxs := range byMain {
		for i := 1; i < len(idxs); i++ {
			union(idxs[0], idxs[i])
		}
	}

	groups := make(map[int][]int)
	for i := range pruned {
		groups[find(i)] = append(groups[find(i)], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	// Deterministic ordering: by smallest first-server name.
	sort.Slice(roots, func(a, b int) bool {
		return firstServer(pruned, groups[roots[a]]) < firstServer(pruned, groups[roots[b]])
	})

	campaigns := make([]Campaign, 0, len(roots))
	for id, r := range roots {
		serverSet := make(map[string]struct{})
		score := 0.0
		for _, hi := range groups[r] {
			for _, s := range pruned[hi].Servers {
				serverSet[s] = struct{}{}
			}
			if pruned[hi].Suspicious != nil && pruned[hi].Suspicious.Score > score {
				score = pruned[hi].Suspicious.Score
			}
		}
		servers := make([]string, 0, len(serverSet))
		for s := range serverSet {
			servers = append(servers, s)
		}
		sort.Strings(servers)
		clients := clientsOf(servers, idx)
		campaigns = append(campaigns, Campaign{
			ID:      id,
			Servers: servers,
			Clients: clients,
			Score:   score,
			Herds:   len(groups[r]),
		})
	}
	return campaigns
}

func firstServer(pruned []prune.PrunedASH, idxs []int) string {
	best := ""
	for _, i := range idxs {
		if len(pruned[i].Servers) == 0 {
			continue
		}
		if best == "" || pruned[i].Servers[0] < best {
			best = pruned[i].Servers[0]
		}
	}
	return best
}

func clientsOf(servers []string, idx *trace.Index) []string {
	set := make(map[uint32]struct{})
	for _, s := range servers {
		info := idx.Servers[s]
		if info == nil {
			continue
		}
		for c := range info.Clients {
			set[c] = struct{}{}
		}
	}
	names := idx.Syms.Clients.Names()
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, names[c])
	}
	sort.Strings(out)
	return out
}

// Classify assigns each campaign a heuristic Kind: campaigns whose servers
// overwhelmingly answer with error statuses or receive requests for one
// shared vulnerable file across many distinct victim domains look like
// attacking activity (the servers are victims); otherwise the campaign is
// communication activity. The threshold errFrac is the minimum mean error
// fraction to call a campaign attacking (the paper's attack examples — ZmEu
// scanning, iframe upload probing — hit files that mostly do not exist).
func Classify(campaigns []Campaign, idx *trace.Index, errFrac float64) {
	if errFrac <= 0 {
		errFrac = 0.5
	}
	for i := range campaigns {
		c := &campaigns[i]
		totalErr, totalReq := 0, 0
		for _, s := range c.Servers {
			info := idx.Servers[s]
			if info == nil {
				continue
			}
			totalErr += info.ErrorRequests
			totalReq += info.Requests
		}
		if totalReq > 0 && float64(totalErr)/float64(totalReq) >= errFrac {
			c.Kind = KindAttacking
		} else {
			c.Kind = KindCommunication
		}
	}
}

// FilterMinClients removes campaigns with fewer than min involved clients.
// The paper reports multi-client campaigns (>= 2) in its headline tables and
// single-client campaigns separately (Appendix C).
func FilterMinClients(campaigns []Campaign, min int) (kept, removed []Campaign) {
	for _, c := range campaigns {
		if len(c.Clients) >= min {
			kept = append(kept, c)
		} else {
			removed = append(removed, c)
		}
	}
	return kept, removed
}
