package source

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"smash/internal/trace"
)

// maxMarks bounds the in-memory commit-mark list. When exceeded, every
// other mark is dropped — checkpoints get coarser (more conservative, an
// earlier offset), never wrong.
const maxMarks = 4096

// TailerConfig configures a file-tailing source.
type TailerConfig struct {
	// Path is the log file to follow.
	Path string
	// Format parses the file's lines.
	Format Format
	// Counters receives activity counts (nil disables accounting).
	Counters *Counters
	// Checkpoint, when non-empty, is the file persisting byte-offset
	// checkpoints (atomic tmp+rename). A Tailer opened with an existing
	// checkpoint resumes from it; see Resume.
	Checkpoint string
	// Poll is the sleep between end-of-file probes (default 200ms).
	Poll time.Duration
}

// Tailer is a stream.Source that follows a live log file the way `tail
// -F` does, plus checkpointing:
//
//   - Growth is picked up by polling after EOF; a consumer parked in
//     Read wakes as soon as the writer appends a complete line.
//   - Rotation (rename + recreate) is detected by comparing the open
//     file's identity against a fresh stat of Path; the old file is
//     drained to EOF — including a final unterminated line — before the
//     new one is opened at offset zero.
//   - Truncation (copytruncate rotation) is detected by the file
//     shrinking below the read position; reading restarts at zero.
//   - After every committed window the safe byte offset is persisted to
//     Checkpoint, so a restarted Tailer skips what the previous process
//     already applied durably.
//
// The checkpoint offset is deliberately conservative: Commit(end) only
// advances it past bytes whose every event carries a timestamp strictly
// before end — i.e. events the engine has either applied in a sealed
// window or dropped as late. Bytes past the offset are re-read on
// resume; the caller is expected to wrap the Tailer in SkipBelow with
// the store's last applied window end, which drops the re-read
// already-applied prefix. Together the two give exact-once delivery for
// tumbling windows across kill -9 (see DESIGN.md, "Sources").
//
// Read, Stop and Commit may be called from different goroutines (one
// reader at a time).
type Tailer struct {
	cfg TailerConfig

	f       *os.File
	filePos int64  // offset of the next byte f.Read returns
	pending []byte // read but not yet consumed (tail may be a partial line)
	readBuf []byte
	backlog bool // draining the rotated-away file found via checkpoint identity
	// switchPending: rotation detected and the old file drained; flush
	// its final partial line, then open Path fresh.
	switchPending bool

	stopped atomic.Bool
	stopCh  chan struct{}

	mu     sync.Mutex
	gen    int
	genIDs map[int]fileID
	marks  []mark

	resumePath string // what Resume reports
	resumeOff  int64
}

// mark records that every byte of generation gen up to offset off
// belongs to an event with timestamp <= tMax (unix nanos). Marks carry
// non-decreasing tMax in append order.
type mark struct {
	gen  int
	tMax int64
	off  int64
}

// checkpoint is the JSON shape persisted to TailerConfig.Checkpoint.
type checkpoint struct {
	Version int    `json:"version"`
	Path    string `json:"path"`
	Dev     uint64 `json:"dev,omitempty"`
	Ino     uint64 `json:"ino,omitempty"`
	HasID   bool   `json:"hasId"`
	Offset  int64  `json:"offset"`
}

// NewTailer opens Path and, when a checkpoint exists, positions the
// read at the checkpointed offset — in Path itself when the identity
// matches, or in the rotated-away file (found by scanning Path's
// directory for the checkpointed inode), which is drained before
// following Path.
func NewTailer(cfg TailerConfig) (*Tailer, error) {
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * time.Millisecond
	}
	if cfg.Format == nil {
		return nil, fmt.Errorf("source: tailer needs a Format")
	}
	t := &Tailer{
		cfg:     cfg,
		readBuf: make([]byte, 32*1024),
		stopCh:  make(chan struct{}),
		genIDs:  make(map[int]fileID),
	}
	ck := loadCheckpoint(cfg.Checkpoint)
	openPath := cfg.Path
	if ck != nil && ck.HasID {
		ckID := fileID{Dev: ck.Dev, Ino: ck.Ino, OK: true}
		if cur, err := statID(cfg.Path); err == nil && cur != ckID {
			// Path was rotated while we were down; the checkpointed file may
			// still be nearby under its rotated name.
			if old := findByID(filepath.Dir(cfg.Path), ckID, cfg.Path); old != "" {
				openPath = old
				t.backlog = true
			} else {
				ck = nil
			}
		}
	}
	f, err := os.Open(openPath)
	if err != nil {
		return nil, fmt.Errorf("source: %w", err)
	}
	t.f = f
	id, _ := fileIDFor(f)
	t.genIDs[t.gen] = id
	if ck != nil {
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("source: %w", err)
		}
		match := !ck.HasID || (id.OK && id.Dev == ck.Dev && id.Ino == ck.Ino)
		if match && ck.Offset <= fi.Size() {
			if _, err := f.Seek(ck.Offset, io.SeekStart); err != nil {
				f.Close()
				return nil, fmt.Errorf("source: %w", err)
			}
			t.filePos = ck.Offset
			t.resumePath, t.resumeOff = openPath, ck.Offset
		} else if t.backlog {
			// Identity scan found the file but it shrank below the
			// checkpoint; drain it from the top.
			t.resumePath, t.resumeOff = openPath, 0
		}
	}
	return t, nil
}

// Resume reports where the Tailer resumed from a checkpoint: the file
// actually opened (Path, or the rotated-away file found by identity)
// and the starting byte offset. ok is false on a fresh start.
func (t *Tailer) Resume() (path string, offset int64, ok bool) {
	return t.resumePath, t.resumeOff, t.resumePath != ""
}

// Stop makes Read finish the file — drain to the current EOF, including
// a final unterminated line — and then return io.EOF instead of
// following further growth. Safe to call concurrently with Read and
// more than once.
func (t *Tailer) Stop() {
	if t.stopped.CompareAndSwap(false, true) {
		close(t.stopCh)
	}
}

// Read returns the next well-formed request, blocking while the file
// has no complete new line. Malformed lines are counted and skipped.
// After Stop it drains to EOF and returns io.EOF.
func (t *Tailer) Read() (trace.Request, error) {
	for {
		if line, ok := t.nextLine(); ok {
			if req, ok := t.consume(line); ok {
				return req, nil
			}
			continue
		}
		n, err := t.fill()
		if n > 0 {
			continue
		}
		if err != nil && err != io.EOF {
			return trace.Request{}, fmt.Errorf("source: %s: %w", t.cfg.Path, err)
		}
		// At EOF with no complete line buffered.
		if t.backlog || t.switchPending {
			if req, ok := t.flushPartial(); ok {
				return req, nil
			}
			t.switchPending = false
			if err := t.switchToPath(); err != nil {
				return trace.Request{}, err
			}
			continue
		}
		if t.stopped.Load() {
			if req, ok := t.flushPartial(); ok {
				return req, nil
			}
			return trace.Request{}, io.EOF
		}
		rotated, err := t.checkRotation()
		if err != nil {
			return trace.Request{}, err
		}
		if rotated {
			continue
		}
		select {
		case <-t.stopCh:
		case <-time.After(t.cfg.Poll):
		}
	}
}

// nextLine pops one complete line off the pending buffer.
func (t *Tailer) nextLine() (string, bool) {
	i := bytes.IndexByte(t.pending, '\n')
	if i < 0 {
		return "", false
	}
	line := t.pending[:i]
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	s := string(line)
	t.pending = t.pending[i+1:]
	return s, true
}

// linePos is the file offset just past the last consumed byte.
func (t *Tailer) linePos() int64 { return t.filePos - int64(len(t.pending)) }

// fill reads more bytes from the current file into pending.
func (t *Tailer) fill() (int, error) {
	n, err := t.f.Read(t.readBuf)
	if n > 0 {
		t.pending = append(t.pending, t.readBuf[:n]...)
		t.filePos += int64(n)
	}
	return n, err
}

// flushPartial treats an unterminated final line as complete — the file
// is done growing (rotation or stop), so the bytes will never be
// finished.
func (t *Tailer) flushPartial() (trace.Request, bool) {
	if len(t.pending) == 0 {
		return trace.Request{}, false
	}
	line := string(t.pending)
	t.pending = t.pending[:0:0] // drop the buffer; the file is done
	return t.consume(line)
}

// consume parses one line, accounting for it, and extends the commit
// marks. ok is false for skipped and malformed lines.
func (t *Tailer) consume(line string) (trace.Request, bool) {
	off := t.linePos()
	req, err := t.cfg.Format.Parse(line)
	switch {
	case err == nil:
		t.cfg.Counters.addLine(len(line) + 1)
		t.cfg.Counters.observeEvent(req.Time)
		t.extendMarks(req.Time.UnixNano(), off)
		return req, true
	case err == ErrSkip:
		t.extendMarks(math.MinInt64, off) // carries no event; always safe to skip
		return trace.Request{}, false
	default:
		t.cfg.Counters.addError()
		t.extendMarks(math.MinInt64, off)
		return trace.Request{}, false
	}
}

// extendMarks records that generation gen is applied-or-late up to off
// once the horizon passes tNs.
func (t *Tailer) extendMarks(tNs int64, off int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	last := int64(math.MinInt64)
	if n := len(t.marks); n > 0 {
		last = t.marks[n-1].tMax
	}
	if tNs < last {
		tNs = last // prefix max: an older event doesn't lower the bar
	}
	if n := len(t.marks); n > 0 && t.marks[n-1].gen == t.gen && tNs == t.marks[n-1].tMax {
		t.marks[n-1].off = off
		return
	}
	t.marks = append(t.marks, mark{gen: t.gen, tMax: tNs, off: off})
	if len(t.marks) > maxMarks {
		// Halve by dropping every other mark (always keeping the last):
		// coarser checkpoints, still conservative.
		kept := t.marks[:0]
		for i := range t.marks {
			if i%2 == 1 || i == len(t.marks)-1 {
				kept = append(kept, t.marks[i])
			}
		}
		t.marks = kept
	}
}

// checkRotation probes Path for rename/recreate and truncation. It
// returns true when the reader switched files (or rewound) and should
// retry immediately.
func (t *Tailer) checkRotation() (bool, error) {
	cur, err := t.f.Stat()
	if err != nil {
		return false, fmt.Errorf("source: %w", err)
	}
	fi, err := os.Stat(t.cfg.Path)
	if err != nil {
		// Mid-rotation hole: the old name is gone, the new file not yet
		// created. Keep polling the old handle.
		return false, nil
	}
	if !os.SameFile(cur, fi) {
		// Double-check for a last write that raced the rename, then hand
		// control back to Read: it delivers the old file's final
		// unterminated line (if any) before switching to the new file.
		if n, _ := t.fill(); n == 0 {
			t.switchPending = true
		}
		return true, nil
	}
	if fi.Size() < t.filePos {
		// Truncated in place (copytruncate): restart from the top. The
		// current generation's bytes no longer exist, so its commit marks
		// must not back a checkpoint offset into the regrown file.
		if _, err := t.f.Seek(0, io.SeekStart); err != nil {
			return false, fmt.Errorf("source: %w", err)
		}
		t.dropGenMarks(t.gen)
		t.bumpGen()
		t.filePos = 0
		t.pending = t.pending[:0]
		return true, nil
	}
	return false, nil
}

// switchToPath closes the drained old file and opens Path fresh.
func (t *Tailer) switchToPath() error {
	t.f.Close()
	f, err := os.Open(t.cfg.Path)
	if err != nil {
		return fmt.Errorf("source: %w", err)
	}
	t.f = f
	t.backlog = false
	t.filePos = 0
	t.pending = t.pending[:0:0]
	t.bumpGen()
	return nil
}

// dropGenMarks discards commit marks for one generation — called when
// that generation's bytes are destroyed (truncation), so a checkpoint
// can never point into data that no longer means what it did.
func (t *Tailer) dropGenMarks(gen int) {
	t.mu.Lock()
	kept := t.marks[:0]
	for _, m := range t.marks {
		if m.gen != gen {
			kept = append(kept, m)
		}
	}
	t.marks = kept
	t.mu.Unlock()
}

// bumpGen advances the rotation generation and records the (possibly
// new) file identity for checkpointing.
func (t *Tailer) bumpGen() {
	id, _ := fileIDFor(t.f)
	t.mu.Lock()
	t.gen++
	t.genIDs[t.gen] = id
	t.mu.Unlock()
	t.cfg.Counters.addRotation()
}

// Commit tells the Tailer that every event with a timestamp strictly
// before end has been durably applied (or dropped as late). It advances
// the safe byte offset past all bytes covered by that horizon and, when
// a checkpoint file is configured and the offset moved, persists it
// atomically. The store sink must run before the sink calling Commit,
// so "applied" means "on disk".
func (t *Tailer) Commit(end time.Time) error {
	endNs := end.UnixNano()
	t.mu.Lock()
	var committed *mark
	for len(t.marks) > 0 && t.marks[0].tMax < endNs {
		committed = &t.marks[0]
		t.marks = t.marks[1:]
	}
	if committed == nil {
		t.mu.Unlock()
		return nil
	}
	m := *committed
	id := t.genIDs[m.gen]
	for g := range t.genIDs {
		if g < m.gen {
			delete(t.genIDs, g)
		}
	}
	t.mu.Unlock()
	if t.cfg.Checkpoint == "" {
		return nil
	}
	if err := writeCheckpoint(t.cfg.Checkpoint, &checkpoint{
		Version: 1,
		Path:    t.cfg.Path,
		Dev:     id.Dev,
		Ino:     id.Ino,
		HasID:   id.OK,
		Offset:  m.off,
	}); err != nil {
		return err
	}
	t.cfg.Counters.addCheckpoint()
	return nil
}

// loadCheckpoint reads a checkpoint file; a missing or corrupt file
// means a fresh start, never an error.
func loadCheckpoint(path string) *checkpoint {
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var ck checkpoint
	if err := json.Unmarshal(data, &ck); err != nil || ck.Version != 1 || ck.Offset < 0 {
		return nil
	}
	return &ck
}

// writeCheckpoint persists atomically: write a temp file in the same
// directory, fsync, rename — the same discipline internal/store uses,
// so a kill -9 leaves either the old checkpoint or the new one, never a
// torn file.
func writeCheckpoint(path string, ck *checkpoint) error {
	data, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("source: checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("source: checkpoint: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("source: checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("source: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("source: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("source: checkpoint: %w", err)
	}
	return nil
}

// statID stats a path and returns its identity.
func statID(path string) (fileID, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return fileID{}, err
	}
	id, _ := fileIDOf(fi)
	return id, nil
}

// findByID scans dir for a file with the given identity, excluding
// excl — how a resumed Tailer locates the rotated-away log it was
// reading when the process died.
func findByID(dir string, id fileID, excl string) string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return ""
	}
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		p := filepath.Join(dir, e.Name())
		if p == excl {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		if got, ok := fileIDOf(fi); ok && got == id {
			return p
		}
	}
	return ""
}

// SkipBelow drops events older than Horizon — the resume filter pairing
// with the Tailer's conservative checkpoint offsets: re-read events the
// previous process already applied durably fall below the last applied
// window's end and are skipped (counted on Counters), so a kill -9
// restart neither duplicates nor loses events.
type SkipBelow struct {
	Src interface {
		Read() (trace.Request, error)
	}
	Horizon  time.Time
	Counters *Counters
}

// Read returns the next event at or after Horizon.
func (s *SkipBelow) Read() (trace.Request, error) {
	for {
		r, err := s.Src.Read()
		if err != nil {
			return r, err
		}
		if r.Time.Before(s.Horizon) {
			s.Counters.addSkipped()
			continue
		}
		return r, nil
	}
}
