package source

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"smash/internal/trace"
)

// clfFormat is the Apache/Nginx access-log grammar, in its two classic
// shapes:
//
//	common:   host ident authuser [date] "request" status bytes
//	combined: common + "referer" "user-agent"
//
// Both accept an optional leading virtual-host token (the vhost_combined
// idiom, `%v %h ...`): with three bare tokens before the bracketed date
// the line is plain common/combined and the configured static Host names
// the server; with four, the first token is the vhost. The emit side
// always writes the vhost token, because without it a log line cannot
// name the server it was served by — the one field SMASH cannot live
// without.
//
// Field mapping onto trace.Request:
//
//	vhost            -> Host (or ServerIP when the token is an IP literal)
//	%h remote host   -> Client
//	[date]           -> Time (second resolution, normalized to UTC)
//	"request" target -> Path + Query (an absolute-URI target also yields
//	                    Host when no vhost token was present)
//	status           -> Status ("-" is 0)
//	"referer"        -> Referrer (host part of the URL)
//	"user-agent"     -> UserAgent
//
// ident, authuser and the byte count are parsed and discarded. Quoted
// fields use backslash escapes (\" \\ \n \r \t \xHH), matching Apache's
// escaping, so arbitrary header bytes survive the one-record-one-line
// rule.
type clfFormat struct {
	name     string
	combined bool
	host     string
}

// clfTime is the CLF timestamp layout: 10/Oct/2000:13:55:36 -0700.
const clfTime = "02/Jan/2006:15:04:05 -0700"

func (f *clfFormat) Name() string { return f.name }

func (f *clfFormat) Parse(line string) (trace.Request, error) {
	if strings.TrimSpace(line) == "" {
		return trace.Request{}, ErrSkip
	}
	l := &clfLexer{s: line}

	// Bare tokens before the bracketed date: h l u, or vhost h l u.
	var pre []string
	for {
		if b, ok := l.peek(); !ok || b == '[' {
			break
		}
		tok, err := l.bare()
		if err != nil {
			return trace.Request{}, badLine("%s: %v", f.name, err)
		}
		pre = append(pre, tok)
		if len(pre) > 4 {
			return trace.Request{}, badLine("%s: too many tokens before the [date]", f.name)
		}
	}
	var req trace.Request
	var client string
	switch len(pre) {
	case 3:
		client = pre[0]
		assignServer(&req, f.host)
	case 4:
		assignServer(&req, pre[0])
		client = pre[1]
	default:
		return trace.Request{}, badLine("%s: %d tokens before the [date], want 3 (h l u) or 4 (vhost h l u)", f.name, len(pre))
	}
	req.Client = dashEmpty(client)

	date, err := l.bracketed()
	if err != nil {
		return trace.Request{}, badLine("%s: date: %v", f.name, err)
	}
	t, err := time.Parse(clfTime, date)
	if err != nil {
		return trace.Request{}, badLine("%s: date %q: %v", f.name, date, err)
	}
	req.Time = t.UTC()

	reqLine, err := l.quoted()
	if err != nil {
		return trace.Request{}, badLine("%s: request line: %v", f.name, err)
	}
	if err := parseRequestLine(&req, reqLine); err != nil {
		return trace.Request{}, badLine("%s: request line %q: %v", f.name, reqLine, err)
	}

	statusTok, err := l.bare()
	if err != nil {
		return trace.Request{}, badLine("%s: status: %v", f.name, err)
	}
	if statusTok != "-" {
		status, err := strconv.Atoi(statusTok)
		if err != nil {
			return trace.Request{}, badLine("%s: status %q", f.name, statusTok)
		}
		req.Status = status
	}
	bytesTok, err := l.bare()
	if err != nil {
		return trace.Request{}, badLine("%s: byte count: %v", f.name, err)
	}
	if bytesTok != "-" {
		if _, err := strconv.ParseInt(bytesTok, 10, 64); err != nil {
			return trace.Request{}, badLine("%s: byte count %q", f.name, bytesTok)
		}
	}

	if f.combined {
		ref, err := l.quoted()
		if err != nil {
			return trace.Request{}, badLine("combined: referer: %v", err)
		}
		if ref != "-" && ref != "" {
			req.Referrer = hostOfURL(ref)
		}
		ua, err := l.quoted()
		if err != nil {
			return trace.Request{}, badLine("combined: user-agent: %v", err)
		}
		req.UserAgent = dashEmpty(ua)
	}
	if !l.eof() {
		return trace.Request{}, badLine("%s: trailing content after the last field", f.name)
	}
	return req, nil
}

func (f *clfFormat) Append(dst []byte, r *trace.Request) []byte {
	vhost := r.Host
	if vhost == "" {
		vhost = r.ServerIP
	}
	dst = append(dst, emptyDash(sanitizeToken(vhost))...)
	dst = append(dst, ' ')
	dst = append(dst, emptyDash(sanitizeToken(r.Client))...)
	dst = append(dst, " - - ["...)
	dst = r.Time.UTC().AppendFormat(dst, clfTime)
	dst = append(dst, "] "...)
	target := r.Path
	if i := strings.IndexByte(target, '?'); i >= 0 {
		target = target[:i]
	}
	if target == "" {
		target = "/"
	}
	if r.Query != "" {
		target += "?" + r.Query
	}
	dst = appendQuoted(dst, "GET "+target+" HTTP/1.1")
	dst = append(dst, ' ')
	if r.Status == 0 {
		dst = append(dst, '-')
	} else {
		dst = strconv.AppendInt(dst, int64(r.Status), 10)
	}
	dst = append(dst, " -"...)
	if f.combined {
		dst = append(dst, ' ')
		if r.Referrer == "" {
			dst = appendQuoted(dst, "-")
		} else {
			dst = appendQuoted(dst, "http://"+r.Referrer+"/")
		}
		dst = append(dst, ' ')
		dst = appendQuoted(dst, emptyDash(r.UserAgent))
	}
	return dst
}

func (f *clfFormat) Project(r trace.Request) trace.Request {
	out := trace.Request{
		Time:   r.Time.Truncate(time.Second).UTC(),
		Client: dashEmpty(sanitizeToken(r.Client)),
		Status: r.Status,
	}
	// The vhost token carries exactly one server identity; the parser
	// classifies it back as hostname or IP literal.
	vhost := r.Host
	if vhost == "" {
		vhost = r.ServerIP
	}
	assignServer(&out, sanitizeToken(vhost))
	path := r.Path
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i]
	}
	if path == "" {
		path = "/"
	}
	out.Path = path
	out.Query = r.Query
	if f.combined {
		out.Referrer = hostOfURL(r.Referrer)
		out.UserAgent = dashEmpty(r.UserAgent)
	}
	return out
}

// assignServer classifies a vhost token: IP literals name the connection
// endpoint (ServerIP), anything else the Host header. "-" and "" leave
// both empty.
func assignServer(r *trace.Request, vhost string) {
	vhost = dashEmpty(vhost)
	if vhost == "" {
		return
	}
	if net.ParseIP(vhost) != nil {
		r.ServerIP = vhost
	} else {
		r.Host = vhost
	}
}

// parseRequestLine splits `METHOD target HTTP/x.y` into Path/Query (and
// Host, for absolute-URI targets when no vhost assigned one). The target
// is everything between the first and last space, so embedded spaces
// survive.
func parseRequestLine(r *trace.Request, s string) error {
	first := strings.IndexByte(s, ' ')
	last := strings.LastIndexByte(s, ' ')
	if first < 0 || last <= first {
		return fmt.Errorf("want METHOD target HTTP/x")
	}
	method, target, proto := s[:first], s[first+1:last], s[last+1:]
	if method == "" || !strings.HasPrefix(proto, "HTTP/") {
		return fmt.Errorf("want METHOD target HTTP/x")
	}
	if target == "" {
		return fmt.Errorf("empty target")
	}
	// Origin-form targets start with '/'; only non-rooted targets can be
	// absolute URIs, so a path that merely contains "://" stays a path.
	if i := strings.Index(target, "://"); i >= 0 && !strings.HasPrefix(target, "/") {
		// Absolute URI (proxy logs): the authority names the server.
		rest := target[i+3:]
		var authority string
		if j := strings.IndexByte(rest, '/'); j >= 0 {
			authority, target = rest[:j], rest[j:]
		} else {
			authority, target = rest, "/"
		}
		if r.Host == "" && r.ServerIP == "" {
			assignServer(r, hostOfAuthority(authority))
		}
	}
	if i := strings.IndexByte(target, '?'); i >= 0 {
		r.Path, r.Query = target[:i], target[i+1:]
	} else {
		r.Path = target
	}
	return nil
}

// hostOfURL extracts the host part of a Referer value: scheme and
// userinfo stripped, path cut, port dropped. Bare hostnames pass
// through.
func hostOfURL(s string) string {
	if s == "" {
		return ""
	}
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	return hostOfAuthority(s)
}

// hostOfAuthority strips userinfo and port from an authority component.
func hostOfAuthority(s string) string {
	if i := strings.LastIndexByte(s, '@'); i >= 0 {
		s = s[i+1:]
	}
	if strings.HasPrefix(s, "[") { // bracketed IPv6 literal
		if i := strings.IndexByte(s, ']'); i >= 0 {
			return s[1:i]
		}
		return s[1:]
	}
	// A single colon separates host from port; two or more mean a bare
	// IPv6 literal, which has no port to strip (keeps hostOfURL a fixed
	// point on its own output).
	if i := strings.IndexByte(s, ':'); i >= 0 && strings.IndexByte(s[i+1:], ':') < 0 {
		s = s[:i]
	}
	return s
}

// sanitizeToken makes a value safe as one bare CLF token: whitespace,
// quotes, brackets and control bytes become '_' so the line structure
// cannot be broken by field content.
func sanitizeToken(s string) string {
	needs := false
	for i := 0; i < len(s); i++ {
		if tokenUnsafe(s[i]) {
			needs = true
			break
		}
	}
	if !needs {
		return s
	}
	b := []byte(s)
	for i := range b {
		if tokenUnsafe(b[i]) {
			b[i] = '_'
		}
	}
	return string(b)
}

func tokenUnsafe(c byte) bool {
	return c <= ' ' || c == '"' || c == '[' || c == ']' || c == 0x7f
}

func emptyDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func dashEmpty(s string) string {
	if s == "-" {
		return ""
	}
	return s
}

// appendQuoted appends s as a CLF quoted string: `"` and `\` get a
// backslash, CR/LF/TAB their mnemonic escape, other control bytes \xHH.
func appendQuoted(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			dst = append(dst, '\\', '"')
		case c == '\\':
			dst = append(dst, '\\', '\\')
		case c == '\n':
			dst = append(dst, '\\', 'n')
		case c == '\r':
			dst = append(dst, '\\', 'r')
		case c == '\t':
			dst = append(dst, '\\', 't')
		case c < 0x20 || c == 0x7f:
			dst = append(dst, fmt.Sprintf("\\x%02x", c)...)
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

// clfLexer walks one log line: bare tokens, [bracketed] dates and
// "quoted" strings with backslash escapes.
type clfLexer struct {
	s string
	i int
}

func (l *clfLexer) ws() {
	for l.i < len(l.s) && (l.s[l.i] == ' ' || l.s[l.i] == '\t') {
		l.i++
	}
}

// peek returns the next non-space byte without consuming it.
func (l *clfLexer) peek() (byte, bool) {
	l.ws()
	if l.i >= len(l.s) {
		return 0, false
	}
	return l.s[l.i], true
}

func (l *clfLexer) eof() bool {
	l.ws()
	return l.i >= len(l.s)
}

func (l *clfLexer) bare() (string, error) {
	l.ws()
	start := l.i
	for l.i < len(l.s) && l.s[l.i] != ' ' && l.s[l.i] != '\t' {
		l.i++
	}
	if l.i == start {
		return "", fmt.Errorf("missing token")
	}
	return l.s[start:l.i], nil
}

func (l *clfLexer) bracketed() (string, error) {
	l.ws()
	if l.i >= len(l.s) || l.s[l.i] != '[' {
		return "", fmt.Errorf("missing [")
	}
	l.i++
	start := l.i
	for l.i < len(l.s) && l.s[l.i] != ']' {
		l.i++
	}
	if l.i >= len(l.s) {
		return "", fmt.Errorf("unterminated [")
	}
	out := l.s[start:l.i]
	l.i++
	return out, nil
}

func (l *clfLexer) quoted() (string, error) {
	l.ws()
	if l.i >= len(l.s) || l.s[l.i] != '"' {
		return "", fmt.Errorf("missing opening quote")
	}
	l.i++
	var b strings.Builder
	for l.i < len(l.s) {
		c := l.s[l.i]
		switch c {
		case '"':
			l.i++
			return b.String(), nil
		case '\\':
			l.i++
			if l.i >= len(l.s) {
				return "", fmt.Errorf("dangling backslash")
			}
			switch e := l.s[l.i]; e {
			case '"', '\\':
				b.WriteByte(e)
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 't':
				b.WriteByte('\t')
			case 'x':
				if l.i+2 >= len(l.s) {
					return "", fmt.Errorf("truncated \\x escape")
				}
				v, err := strconv.ParseUint(l.s[l.i+1:l.i+3], 16, 8)
				if err != nil {
					return "", fmt.Errorf("bad \\x escape")
				}
				b.WriteByte(byte(v))
				l.i += 2
			default:
				return "", fmt.Errorf("unknown escape \\%c", e)
			}
			l.i++
		default:
			b.WriteByte(c)
			l.i++
		}
	}
	return "", fmt.Errorf("unterminated quote")
}
