package source

import (
	"testing"

	"smash/internal/trace"
)

// checkParse is every format fuzzer's shared property: Parse must never
// panic, and any line it accepts must satisfy the projection laws —
// Project is a fixed point on parsed requests' projections, and
// Append/Parse round-trip the projection exactly. A parser bug that
// mangles a field silently (instead of rejecting the line) shows up
// here as a round-trip divergence.
func checkParse(t *testing.T, f Format, line string) {
	r, err := f.Parse(line)
	if err != nil {
		return
	}
	p := f.Project(r)
	if pp := f.Project(p); !sameRequest(p, pp) {
		t.Fatalf("Project not idempotent on parse of %q:\n  once:  %+v\n  twice: %+v", line, p, pp)
	}
	// RFC 3339 (and CLF date formatting) cannot carry years outside
	// [1, 9999]; numeric JSONL timestamps can. Such events are out of
	// the representable domain, so the round-trip law doesn't apply.
	if y := p.Time.Year(); y < 1 || y > 9999 {
		return
	}
	emitted := string(f.Append(nil, &p))
	got, err := f.Parse(emitted)
	if err != nil {
		t.Fatalf("re-parse of emitted line failed: %v\n  source: %q\n  emitted: %q", err, line, emitted)
	}
	if !sameRequest(got, p) {
		t.Fatalf("round trip diverged:\n  source:  %q\n  emitted: %q\n  want %+v\n  got  %+v", line, emitted, p, got)
	}
}

func fuzzFormat(f *testing.F, format Format, seeds []string) {
	for _, s := range seeds {
		f.Add(s)
	}
	// Shared torture seeds: structure-breaking bytes for every grammar.
	f.Add("")
	f.Add("# comment")
	f.Add("\t\t\t\t\t\t\t\t\t")
	f.Add(`"" "" [] - - \x41 \q`)
	f.Add(string([]byte{0x00, 0xff, 0x80, '\t', '"', '[', '\\'}))
	f.Fuzz(func(t *testing.T, line string) {
		checkParse(t, format, line)
	})
}

func FuzzTSV(f *testing.F) {
	r := trace.Request{Client: "c1", Host: "h.test", Path: "/p", Query: "a=1", Status: 200}
	fuzzFormat(f, tsvFormat{}, []string{
		string(trace.AppendRecord(nil, &r)),
		"1330560000000000000\tc\th\t-\t/\t-\t-\t-\t200\t-",
		"nope\tc\th\t-\t/\t-\t-\t-\t200\t-",
	})
}

func FuzzCommon(f *testing.F) {
	format, err := New("common", Options{Host: "static.test"})
	if err != nil {
		f.Fatal(err)
	}
	fuzzFormat(f, format, []string{
		`203.0.113.9 - frank [10/Oct/2000:13:55:36 -0700] "GET /apache_pb.gif HTTP/1.0" 200 2326`,
		`www.example.com 10.1.2.3 - - [01/Mar/2012:00:00:05 +0000] "GET /a?x=1 HTTP/1.1" 404 -`,
		`- 10.0.0.1 - - [01/Mar/2012:08:30:00 +0000] "GET http://evil.test/mal.exe HTTP/1.1" - -`,
		`[::1] c - - [01/Mar/2012:08:30:00 +0000] "GET /v6 HTTP/1.1" 200 0`,
	})
}

func FuzzCombined(f *testing.F) {
	format, err := New("combined", Options{})
	if err != nil {
		f.Fatal(err)
	}
	fuzzFormat(f, format, []string{
		`h.test c - - [01/Mar/2012:08:30:00 +0000] "GET / HTTP/1.1" 200 99 "http://ref.test/lp" "Mozilla/5.0 (X11; \"U\")"`,
		`h.test c - - [01/Mar/2012:08:30:00 +0000] "GET / HTTP/1.1" 200 99 "-" "-"`,
		`h.test c - - [01/Mar/2012:08:30:00 +0000] "GET / HTTP/1.1" 200 99 "http://[2001:db8::1]:443/x" "tab\there \x07bell"`,
	})
}

func FuzzJSONL(f *testing.F) {
	format, err := New("jsonl", Options{})
	if err != nil {
		f.Fatal(err)
	}
	fuzzFormat(f, format, []string{
		`{"ts":"2012-03-01T09:30:15.25Z","client":"c","host":"h.test","path":"/p","status":200}`,
		`{"ts":1330594215123,"client":"c","server_ip":"10.0.0.1","query":"a=1","user_agent":"ua"}`,
		`{"ts":1330594215.5,"client":"c","referrer":"ref.test","payload_digest":"sha1:x"}`,
		`{"ts":-9e99}`,
	})
}
