//go:build !unix

package source

import "os"

// fileID identifies a file independently of its name. On platforms
// without a stable identity the zero value (OK false) disables
// identity-based rotation resume; the Tailer still follows rotations of
// the live file (os.SameFile works everywhere) and checkpoints resume
// on a path + size heuristic.
type fileID struct {
	Dev uint64
	Ino uint64
	OK  bool
}

func fileIDOf(fi os.FileInfo) (fileID, bool) { return fileID{}, false }

func fileIDFor(f *os.File) (fileID, bool) { return fileID{}, false }
