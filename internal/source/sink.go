package source

import "smash/internal/stream"

// CheckpointSink advances a Tailer's checkpoint as windows are applied.
// It must be ordered after the store sink in stream.Config.Sinks: sinks
// run sequentially in window order, so by the time Consume sees a
// window the store has already persisted it, and committing the tail
// offset up to that window's end is safe even against kill -9.
type CheckpointSink struct {
	T *Tailer
}

// Consume implements stream.Sink.
func (s *CheckpointSink) Consume(w *stream.WindowResult) error {
	return s.T.Commit(w.End)
}
