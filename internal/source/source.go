// Package source is smashd's real-traffic ingestion surface: the format
// layer that turns raw server logs — as they are written — into the
// trace.Request events the streaming engine consumes.
//
// Everything upstream of this package replays pre-cooked TSV traces; a
// system aimed at heavy production traffic has to eat real access logs.
// The package provides three pieces:
//
//   - Format parsers ("tsv", "common", "combined", "jsonl") mapping one
//     raw log line onto a trace.Request, each paired with the emitter
//     that writes the same format (cmd/tracegen's -log-format) and a
//     Project function describing exactly which request fields the
//     format can carry. Parsers are strict but never fatal: a Decoder
//     counts malformed lines and keeps going, so one corrupt record
//     cannot kill a daemon that has been up for a month.
//
//   - A rotation-aware file Tailer (tail.go): follows a live log file
//     across rename/recreate and truncation, persists byte-offset
//     checkpoints to the state dir with the same atomic tmp+rename
//     discipline as internal/store, and resumes after a crash without
//     losing or duplicating events (see the Tailer doc for the exact
//     guarantee).
//
//   - A PushQueue (push.go): an in-memory stream.Source fed by the HTTP
//     push listener on POST /v1/ingest (internal/serve), so agents can
//     ship batched raw events over the network instead of sharing a
//     filesystem. Pushes block while the engine is behind — the HTTP
//     handler stalls, propagating the engine's backpressure to the
//     client.
//
// Every source carries a Counters block; internal/serve renders them as
// the smash_source_* Prometheus series (lines parsed, parse errors,
// bytes, rotations, skipped events, checkpoints, event-time lag).
package source

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"smash/internal/trace"
)

// ErrSkip is returned by Format.Parse for lines that carry no event and
// no error either — blank lines and comment headers. Decoders drop them
// without touching the parse-error counter.
var ErrSkip = errors.New("source: skippable line")

// ErrBadLine wraps every malformed-line parse error, so callers can
// distinguish data errors (counted, skipped) from I/O errors (fatal).
var ErrBadLine = errors.New("source: malformed line")

// badLine wraps a malformed-line error with its cause.
func badLine(format string, a ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, a...), ErrBadLine)
}

// Format is one log-line grammar: the parse and emit sides of a format
// plus its projection rule. Implementations are stateless after
// construction and safe for concurrent use.
type Format interface {
	// Name returns the format's registry name ("tsv", "common",
	// "combined", "jsonl").
	Name() string
	// Parse maps one raw line (without its trailing newline) onto a
	// request. Malformed lines wrap ErrBadLine; ignorable lines return
	// ErrSkip.
	Parse(line string) (trace.Request, error)
	// Append appends r rendered as one line of this format (without a
	// trailing newline). Append and Parse round-trip exactly on projected
	// requests: Parse(Append(Project(r))) == Project(r).
	Append(dst []byte, r *trace.Request) []byte
	// Project returns r reduced to what this format can represent — the
	// fields (and timestamp resolution) that survive an Append/Parse
	// round trip. TSV and JSONL are lossless; the access-log formats
	// drop what the grammar has no field for.
	Project(r trace.Request) trace.Request
}

// Options parameterizes format construction.
type Options struct {
	// Host is the static server identity assumed for access-log lines
	// that carry no virtual-host token — an access log usually belongs to
	// one server, so "point smashd at example.com's log" sets Host to
	// example.com. Lines with a vhost token or an absolute request URI
	// override it.
	Host string
	// JSONLMap overrides the JSONL field mapping: logical field name ->
	// JSON key (see JSONLFields). Unmapped fields keep their defaults.
	JSONLMap map[string]string
}

// Names lists the registered format names, sorted.
func Names() []string {
	names := []string{"tsv", "common", "combined", "jsonl"}
	sort.Strings(names)
	return names
}

// New builds the named format.
func New(name string, opt Options) (Format, error) {
	switch name {
	case "tsv":
		return tsvFormat{}, nil
	case "common":
		return &clfFormat{name: "common", host: opt.Host}, nil
	case "combined":
		return &clfFormat{name: "combined", combined: true, host: opt.Host}, nil
	case "jsonl":
		return newJSONLFormat(opt.JSONLMap)
	default:
		return nil, fmt.Errorf("source: unknown format %q (want one of %s)",
			name, strings.Join(Names(), ", "))
	}
}

// Counters is one source's atomic activity counters, shared between the
// reading goroutine and concurrent /metrics scrapes. The zero value is
// unusable; construct with NewCounters. All methods are no-ops on a nil
// receiver so unwired decoders pay only a nil check.
type Counters struct {
	name, format string

	lines       atomic.Int64
	parseErrors atomic.Int64
	bytes       atomic.Int64
	rotations   atomic.Int64
	skipped     atomic.Int64
	checkpoints atomic.Int64
	pushBatches atomic.Int64
	// lastEvent is the max event time observed, as unix nanos, for the
	// event-time lag gauge.
	lastEvent atomic.Int64
}

// NewCounters returns a counter block labeled with the source's name
// (e.g. a file path, "push", "stdin") and format.
func NewCounters(name, format string) *Counters {
	return &Counters{name: name, format: format}
}

func (c *Counters) addLine(n int) {
	if c == nil {
		return
	}
	c.lines.Add(1)
	c.bytes.Add(int64(n))
}

func (c *Counters) addError() {
	if c == nil {
		return
	}
	c.parseErrors.Add(1)
}

func (c *Counters) addSkipped() {
	if c == nil {
		return
	}
	c.skipped.Add(1)
}

func (c *Counters) addRotation() {
	if c == nil {
		return
	}
	c.rotations.Add(1)
}

func (c *Counters) addCheckpoint() {
	if c == nil {
		return
	}
	c.checkpoints.Add(1)
}

// AddBatch counts one accepted push batch — exported for the HTTP push
// handler in internal/serve.
func (c *Counters) AddBatch() {
	if c == nil {
		return
	}
	c.pushBatches.Add(1)
}

func (c *Counters) observeEvent(t time.Time) {
	if c == nil {
		return
	}
	ns := t.UnixNano()
	for {
		old := c.lastEvent.Load()
		if ns <= old || c.lastEvent.CompareAndSwap(old, ns) {
			return
		}
	}
}

// Stats is a point-in-time snapshot of one source's counters, the shape
// served on /v1/stats and rendered as smash_source_* metrics.
type Stats struct {
	// Name labels the source (file path, "push", "stdin").
	Name string `json:"name"`
	// Format is the source's line format.
	Format string `json:"format"`
	// Lines counts parsed lines (valid events); ParseErrors counts
	// malformed lines that were dropped.
	Lines       int64 `json:"lines"`
	ParseErrors int64 `json:"parseErrors"`
	// Bytes counts consumed line bytes (including separators).
	Bytes int64 `json:"bytes"`
	// Rotations counts detected file rotations and truncations.
	Rotations int64 `json:"rotations,omitempty"`
	// Skipped counts events dropped below the resume horizon (already
	// durably applied before a restart).
	Skipped int64 `json:"skipped,omitempty"`
	// Checkpoints counts persisted byte-offset checkpoints.
	Checkpoints int64 `json:"checkpoints,omitempty"`
	// PushBatches counts accepted HTTP push batches.
	PushBatches int64 `json:"pushBatches,omitempty"`
	// LagSeconds is wall-clock now minus the max event time observed —
	// how far the source's events trail real time. Negative values clamp
	// to zero; -1 means no event has been seen yet.
	LagSeconds float64 `json:"lagSeconds"`
}

// Stats snapshots the counters.
func (c *Counters) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	s := Stats{
		Name:        c.name,
		Format:      c.format,
		Lines:       c.lines.Load(),
		ParseErrors: c.parseErrors.Load(),
		Bytes:       c.bytes.Load(),
		Rotations:   c.rotations.Load(),
		Skipped:     c.skipped.Load(),
		Checkpoints: c.checkpoints.Load(),
		PushBatches: c.pushBatches.Load(),
		LagSeconds:  -1,
	}
	if ns := c.lastEvent.Load(); ns != 0 {
		if lag := time.Since(time.Unix(0, ns)).Seconds(); lag > 0 {
			s.LagSeconds = lag
		} else {
			s.LagSeconds = 0
		}
	}
	return s
}

// Decoder streams requests from a reader in a line format, with strict
// error accounting: malformed lines are counted on the Counters (and the
// decoder's own tally) and skipped, never fatal. Only reader I/O errors
// propagate. Decoder implements stream.Source.
type Decoder struct {
	s    *bufio.Scanner
	f    Format
	c    *Counters
	errs int64
}

// NewDecoder returns a decoder over r in format f, accounting on c (nil
// disables accounting).
func NewDecoder(r io.Reader, f Format, c *Counters) *Decoder {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 1<<16), 1<<20)
	return &Decoder{s: s, f: f, c: c}
}

// Read returns the next well-formed request, or io.EOF at end of input.
func (d *Decoder) Read() (trace.Request, error) {
	for d.s.Scan() {
		line := d.s.Text()
		req, err := d.f.Parse(line)
		switch {
		case err == nil:
			d.c.addLine(len(line) + 1)
			d.c.observeEvent(req.Time)
			return req, nil
		case errors.Is(err, ErrSkip):
			continue
		default:
			d.errs++
			d.c.addError()
		}
	}
	if err := d.s.Err(); err != nil {
		return trace.Request{}, err
	}
	return trace.Request{}, io.EOF
}

// Errors returns the number of malformed lines this decoder has dropped.
func (d *Decoder) Errors() int64 { return d.errs }

// tsvFormat adapts the trace TSV record grammar to the Format interface.
// Comment lines ("# trace NAME" headers and friends) are skippable, so a
// file written by trace.WriteTrace decodes cleanly.
type tsvFormat struct{}

func (tsvFormat) Name() string { return "tsv" }

func (tsvFormat) Parse(line string) (trace.Request, error) {
	if line == "" || strings.HasPrefix(line, "#") {
		return trace.Request{}, ErrSkip
	}
	req, err := trace.ParseRecord(line)
	if err != nil {
		return trace.Request{}, fmt.Errorf("tsv: %v: %w", err, ErrBadLine)
	}
	return req, nil
}

func (tsvFormat) Append(dst []byte, r *trace.Request) []byte {
	return trace.AppendRecord(dst, r)
}

// Project is the identity for TSV up to field sanitization: tabs and
// newlines inside fields become spaces (one record must stay one line),
// and a literal "-" becomes empty — the TSV grammar spells empty fields
// "-", so the dash itself is not representable.
func (tsvFormat) Project(r trace.Request) trace.Request {
	clean := func(s string) string {
		if s == "-" {
			return ""
		}
		if !strings.ContainsAny(s, "\t\n\r") {
			return s
		}
		return strings.NewReplacer("\t", " ", "\n", " ", "\r", " ").Replace(s)
	}
	r.Client = clean(r.Client)
	r.Host = clean(r.Host)
	r.ServerIP = clean(r.ServerIP)
	r.Path = clean(r.Path)
	r.Query = clean(r.Query)
	r.UserAgent = clean(r.UserAgent)
	r.Referrer = clean(r.Referrer)
	r.PayloadDigest = clean(r.PayloadDigest)
	r.Time = r.Time.UTC()
	return r
}
