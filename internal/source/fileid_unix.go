//go:build unix

package source

import (
	"os"
	"syscall"
)

// fileID identifies a file independently of its name — device plus
// inode on unix. OK is false on platforms (or filesystems) where no
// stable identity is available; checkpoint resume then falls back to a
// path + size heuristic.
type fileID struct {
	Dev uint64
	Ino uint64
	OK  bool
}

// fileIDOf extracts the identity from a FileInfo.
func fileIDOf(fi os.FileInfo) (fileID, bool) {
	st, ok := fi.Sys().(*syscall.Stat_t)
	if !ok {
		return fileID{}, false
	}
	return fileID{Dev: uint64(st.Dev), Ino: uint64(st.Ino), OK: true}, true
}

// fileIDFor stats an open file and returns its identity.
func fileIDFor(f *os.File) (fileID, bool) {
	fi, err := f.Stat()
	if err != nil {
		return fileID{}, false
	}
	return fileIDOf(fi)
}
