package source

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"smash/internal/stream"
	"smash/internal/trace"
)

// tsvLine renders one TSV event line for a client at a unix-second
// timestamp — the tail tests' traffic generator.
func tsvLine(sec int64, client string) string {
	r := trace.Request{Time: time.Unix(sec, 0).UTC(), Client: client, Host: "h.test", Path: "/p", Status: 200}
	return string(trace.AppendRecord(nil, &r)) + "\n"
}

func appendFile(t *testing.T, path, data string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func newTestTailer(t *testing.T, path, ckpt string) (*Tailer, *Counters) {
	t.Helper()
	ctrs := NewCounters(path, "tsv")
	tl, err := NewTailer(TailerConfig{
		Path: path, Format: tsvFormat{}, Counters: ctrs,
		Checkpoint: ckpt, Poll: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tl, ctrs
}

// startReader drains the tailer on a goroutine, streaming clients until
// EOF. Read errors fail the test.
func startReader(t *testing.T, tl *Tailer) (<-chan string, <-chan struct{}) {
	t.Helper()
	out := make(chan string, 128)
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer close(out)
		for {
			req, err := tl.Read()
			if err != nil {
				if !errors.Is(err, io.EOF) {
					t.Errorf("tailer Read: %v", err)
				}
				return
			}
			out <- req.Client
		}
	}()
	return out, done
}

func recvClient(t *testing.T, ch <-chan string) string {
	t.Helper()
	select {
	case c, ok := <-ch:
		if !ok {
			t.Fatal("tailer finished early")
		}
		return c
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a tailed event")
		return ""
	}
}

func waitDone(t *testing.T, done <-chan struct{}) {
	t.Helper()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("tailer did not stop")
	}
}

func TestTailerFollowsGrowth(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "access.log")
	appendFile(t, path, tsvLine(100, "c1")+tsvLine(101, "c2"))

	tl, _ := newTestTailer(t, path, "")
	ch, done := startReader(t, tl)
	if got := recvClient(t, ch); got != "c1" {
		t.Fatalf("first event %q; want c1", got)
	}
	if got := recvClient(t, ch); got != "c2" {
		t.Fatalf("second event %q; want c2", got)
	}
	// The reader is parked at EOF now; live growth must wake it.
	appendFile(t, path, tsvLine(102, "c3"))
	if got := recvClient(t, ch); got != "c3" {
		t.Fatalf("appended event %q; want c3", got)
	}
	// Stop drains the final unterminated line before EOF.
	appendFile(t, path, tsvLine(103, "c4")[:len(tsvLine(103, "c4"))-1]) // no trailing \n
	tl.Stop()
	var rest []string
	for c := range ch {
		rest = append(rest, c)
	}
	if len(rest) != 1 || rest[0] != "c4" {
		t.Fatalf("post-Stop drain = %v; want [c4]", rest)
	}
	waitDone(t, done)
}

func TestTailerRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "access.log")
	partial := tsvLine(102, "c3")
	partial = partial[:len(partial)-1] // unterminated final line
	appendFile(t, path, tsvLine(100, "c1")+tsvLine(101, "c2")+partial)

	tl, ctrs := newTestTailer(t, path, "")
	ch, done := startReader(t, tl)
	if got := recvClient(t, ch); got != "c1" {
		t.Fatalf("got %q; want c1", got)
	}
	if got := recvClient(t, ch); got != "c2" {
		t.Fatalf("got %q; want c2", got)
	}

	// Rotate: rename the live file away, recreate the path. The old
	// file's final unterminated line must still be delivered, then the
	// new file read from offset zero.
	if err := os.Rename(path, path+".1"); err != nil {
		t.Fatal(err)
	}
	appendFile(t, path, tsvLine(103, "c4"))
	if got := recvClient(t, ch); got != "c3" {
		t.Fatalf("rotated-away partial line: got %q; want c3", got)
	}
	if got := recvClient(t, ch); got != "c4" {
		t.Fatalf("post-rotation event: got %q; want c4", got)
	}
	if n := ctrs.Stats().Rotations; n != 1 {
		t.Errorf("rotations = %d; want 1", n)
	}
	tl.Stop()
	waitDone(t, done)
}

func TestTailerTruncation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "access.log")
	appendFile(t, path, tsvLine(100, "c1")+tsvLine(101, "c2"))

	tl, ctrs := newTestTailer(t, path, "")
	ch, done := startReader(t, tl)
	recvClient(t, ch)
	recvClient(t, ch)

	// copytruncate: same inode, contents replaced with something shorter.
	if err := os.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}
	appendFile(t, path, tsvLine(102, "c3"))
	if got := recvClient(t, ch); got != "c3" {
		t.Fatalf("post-truncation event %q; want c3", got)
	}
	if n := ctrs.Stats().Rotations; n != 1 {
		t.Errorf("rotations = %d; want 1", n)
	}
	tl.Stop()
	waitDone(t, done)
}

func TestTailerCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "access.log")
	ckpt := filepath.Join(dir, "source.ckpt")
	for i := int64(0); i < 6; i++ {
		appendFile(t, path, tsvLine(100+i, fmt.Sprintf("c%d", i)))
	}

	tl, ctrs := newTestTailer(t, path, ckpt)
	ch, done := startReader(t, tl)
	for i := 0; i < 6; i++ {
		recvClient(t, ch)
	}
	// Commit a horizon past the first three events (100, 101, 102): the
	// checkpoint must cover exactly their bytes.
	if err := tl.Commit(time.Unix(103, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	if n := ctrs.Stats().Checkpoints; n != 1 {
		t.Errorf("checkpoints = %d; want 1", n)
	}
	tl.Stop()
	waitDone(t, done)

	// A fresh Tailer resumes at the committed offset: events 0-2 are
	// skipped, 3-5 re-read.
	tl2, _ := newTestTailer(t, path, ckpt)
	if rp, off, ok := tl2.Resume(); !ok || rp != path || off == 0 {
		t.Fatalf("Resume() = %q, %d, %v; want %q with a non-zero offset", rp, off, ok, path)
	}
	ch2, done2 := startReader(t, tl2)
	var got []string
	tl2.Stop()
	for c := range ch2 {
		got = append(got, c)
	}
	waitDone(t, done2)
	if want := []string{"c3", "c4", "c5"}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("resumed events = %v; want %v", got, want)
	}
}

func TestTailerCorruptCheckpointMeansFreshStart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "access.log")
	ckpt := filepath.Join(dir, "source.ckpt")
	appendFile(t, path, tsvLine(100, "c1"))
	appendFile(t, ckpt, "{ not json")

	tl, _ := newTestTailer(t, path, ckpt)
	if _, _, ok := tl.Resume(); ok {
		t.Fatal("corrupt checkpoint produced a resume; want a fresh start")
	}
	ch, done := startReader(t, tl)
	if got := recvClient(t, ch); got != "c1" {
		t.Fatalf("got %q; want c1 (from the top)", got)
	}
	tl.Stop()
	waitDone(t, done)
}

func TestTailerResumeAfterRotationWhileDown(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "access.log")
	ckpt := filepath.Join(dir, "source.ckpt")
	for i := int64(0); i < 4; i++ {
		appendFile(t, path, tsvLine(100+i, fmt.Sprintf("c%d", i)))
	}

	tl, _ := newTestTailer(t, path, ckpt)
	ch, done := startReader(t, tl)
	for i := 0; i < 4; i++ {
		recvClient(t, ch)
	}
	if err := tl.Commit(time.Unix(102, 0).UTC()); err != nil { // past c0, c1
		t.Fatal(err)
	}
	tl.Stop()
	waitDone(t, done)

	// Process dies; logrotate renames the file and a new one appears.
	if err := os.Rename(path, path+".1"); err != nil {
		t.Fatal(err)
	}
	appendFile(t, path, tsvLine(104, "c4"))

	// The restarted Tailer must find the checkpointed inode under its
	// rotated name, drain c2 and c3 from it, then pick up c4 from the
	// new live file.
	tl2, _ := newTestTailer(t, path, ckpt)
	if rp, _, ok := tl2.Resume(); !ok || rp != path+".1" {
		t.Fatalf("Resume() path = %q, ok=%v; want the rotated file %q", rp, ok, path+".1")
	}
	ch2, done2 := startReader(t, tl2)
	var got []string
	for i := 0; i < 3; i++ {
		got = append(got, recvClient(t, ch2))
	}
	tl2.Stop()
	for c := range ch2 {
		got = append(got, c)
	}
	waitDone(t, done2)
	if want := []string{"c2", "c3", "c4"}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("resumed events = %v; want %v", got, want)
	}
}

func TestSkipBelow(t *testing.T) {
	reqs := []trace.Request{
		{Time: time.Unix(100, 0).UTC(), Client: "old1"},
		{Time: time.Unix(150, 0).UTC(), Client: "old2"},
		{Time: time.Unix(200, 0).UTC(), Client: "keep1"}, // exactly at the horizon
		{Time: time.Unix(120, 0).UTC(), Client: "old3"},  // late stragglers drop too
		{Time: time.Unix(250, 0).UTC(), Client: "keep2"},
	}
	ctrs := NewCounters("t", "tsv")
	s := &SkipBelow{Src: &stream.SliceSource{Requests: reqs}, Horizon: time.Unix(200, 0).UTC(), Counters: ctrs}
	var got []string
	for {
		r, err := s.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r.Client)
	}
	if want := []string{"keep1", "keep2"}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("kept %v; want %v", got, want)
	}
	if n := ctrs.Stats().Skipped; n != 3 {
		t.Errorf("skipped = %d; want 3", n)
	}
}

func TestCheckpointSink(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "access.log")
	ckpt := filepath.Join(dir, "source.ckpt")
	appendFile(t, path, tsvLine(100, "c1")+tsvLine(200, "c2"))

	tl, ctrs := newTestTailer(t, path, ckpt)
	ch, done := startReader(t, tl)
	recvClient(t, ch)
	recvClient(t, ch)

	sink := &CheckpointSink{T: tl}
	sink.Consume(&stream.WindowResult{End: time.Unix(150, 0).UTC()})
	if n := ctrs.Stats().Checkpoints; n != 1 {
		t.Fatalf("checkpoints after first window = %d; want 1", n)
	}
	// A window whose horizon moves nothing must not rewrite the file.
	sink.Consume(&stream.WindowResult{End: time.Unix(150, 0).UTC()})
	if n := ctrs.Stats().Checkpoints; n != 1 {
		t.Fatalf("checkpoints after no-op window = %d; want still 1", n)
	}
	tl.Stop()
	waitDone(t, done)
}

func TestPushQueue(t *testing.T) {
	q := NewPushQueue(8)
	batch := []trace.Request{
		{Time: time.Unix(1, 0), Client: "a"},
		{Time: time.Unix(2, 0), Client: "b"},
	}
	if err := q.Push(batch); err != nil {
		t.Fatal(err)
	}
	q.Close()
	// Buffered events survive Close, in order, then EOF.
	var got []string
	for {
		r, err := q.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r.Client)
	}
	if fmt.Sprint(got) != "[a b]" {
		t.Fatalf("drained %v; want [a b]", got)
	}
	if err := q.Push(batch); err == nil {
		t.Fatal("Push after Close succeeded; want an error")
	}
	q.Close() // idempotent
}

func TestPushQueueBackpressure(t *testing.T) {
	q := NewPushQueue(1)
	pushed := make(chan error, 1)
	go func() {
		pushed <- q.Push([]trace.Request{{Client: "a"}, {Client: "b"}, {Client: "c"}})
	}()
	// The pusher is blocked on the full queue until the reader drains.
	select {
	case err := <-pushed:
		t.Fatalf("Push returned %v before the queue drained", err)
	case <-time.After(20 * time.Millisecond):
	}
	for _, want := range []string{"a", "b", "c"} {
		r, err := q.Read()
		if err != nil {
			t.Fatal(err)
		}
		if r.Client != want {
			t.Fatalf("read %q; want %q", r.Client, want)
		}
	}
	if err := <-pushed; err != nil {
		t.Fatalf("Push: %v", err)
	}

	// Close unblocks a stuck pusher with an error.
	q2 := NewPushQueue(1)
	go func() {
		pushed <- q2.Push([]trace.Request{{Client: "x"}, {Client: "y"}})
	}()
	select {
	case err := <-pushed:
		t.Fatalf("Push returned %v before Close", err)
	case <-time.After(20 * time.Millisecond):
	}
	q2.Close()
	if err := <-pushed; err == nil {
		t.Fatal("Push survived Close while blocked; want an error")
	}
}
