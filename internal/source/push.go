package source

import (
	"fmt"
	"io"
	"sync"

	"smash/internal/trace"
)

// PushQueue is the in-memory stream.Source behind the HTTP push
// listener: POST /v1/ingest handlers parse a batch of raw events and
// Push them; the engine's reader goroutine drains them with Read.
//
// The queue is a bounded channel, so backpressure is end-to-end: when
// the engine falls behind, Push blocks, the HTTP handler stalls, and
// the client's POST doesn't return — exactly the signal a shipping
// agent needs to slow down.
type PushQueue struct {
	ch   chan trace.Request
	done chan struct{}
	once sync.Once
}

// NewPushQueue returns a queue buffering up to capacity events
// (default 4096).
func NewPushQueue(capacity int) *PushQueue {
	if capacity <= 0 {
		capacity = 4096
	}
	return &PushQueue{
		ch:   make(chan trace.Request, capacity),
		done: make(chan struct{}),
	}
}

// Push enqueues a batch in order, blocking while the queue is full. It
// fails once the queue is closed (events enqueued before the failure
// stay enqueued).
func (q *PushQueue) Push(batch []trace.Request) error {
	for i := range batch {
		select {
		case <-q.done:
			return fmt.Errorf("source: push queue closed")
		default:
		}
		select {
		case q.ch <- batch[i]:
		case <-q.done:
			return fmt.Errorf("source: push queue closed")
		}
	}
	return nil
}

// Close marks end-of-stream: queued events still drain, then Read
// returns io.EOF. Pushes after Close fail. Safe to call more than once
// and concurrently with Push.
func (q *PushQueue) Close() {
	q.once.Do(func() { close(q.done) })
}

// Read returns the next pushed event, blocking while the queue is
// empty and open, and io.EOF once the queue is closed and drained.
func (q *PushQueue) Read() (trace.Request, error) {
	// Buffered events win over shutdown, so Close never drops what was
	// already accepted.
	select {
	case r := <-q.ch:
		return r, nil
	default:
	}
	select {
	case r := <-q.ch:
		return r, nil
	case <-q.done:
		select {
		case r := <-q.ch:
			return r, nil
		default:
			return trace.Request{}, io.EOF
		}
	}
}
