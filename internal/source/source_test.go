package source

import (
	"errors"
	"strings"
	"testing"
	"time"

	"smash/internal/trace"
)

// sameRequest compares requests with Time.Equal (representation-blind)
// and plain equality everywhere else.
func sameRequest(a, b trace.Request) bool {
	if !a.Time.Equal(b.Time) {
		return false
	}
	a.Time, b.Time = time.Time{}, time.Time{}
	return a == b
}

// trickyRequests is the round-trip gauntlet: every field empty, "-"
// literals, separator bytes inside fields, IP-vs-hostname vhosts, query
// strings with reserved characters, control bytes and non-ASCII text.
func trickyRequests() []trace.Request {
	at := time.Date(2012, 3, 1, 9, 30, 15, 123456789, time.FixedZone("X", 3600))
	return []trace.Request{
		{Time: time.Unix(0, 0)}, // epoch, every field empty
		{Time: at, Client: "10.0.0.7", Host: "www.example.com", Path: "/index.html", Status: 200},
		{Time: at, Client: "-", Host: "-", Path: "-", UserAgent: "-", Referrer: "-"},
		{Time: at, Client: "c1", ServerIP: "203.0.113.9", Path: "/dl/setup.exe", Query: "id=7&k=v", Status: 404},
		{Time: at, Client: "c2", Host: "h.test", Path: "/a b/c", Query: "q= x?y&z", Status: 500,
			UserAgent: `Mozilla/5.0 (X11; "quoted") tab	here`, Referrer: "ref.example"},
		{Time: at, Client: "bad client [x]", Host: `vh"ost`, Path: "", Query: "", Status: 0},
		{Time: at, Client: "c3", Host: "héllo.test", Path: "/ünicode/ø", UserAgent: "ua-日本語",
			Referrer: "http://user:pw@ref.test:8080/some/path?x=1", Status: 302},
		{Time: at, Client: "c4", Host: "h2.test", Path: "/x://y/z", Status: 200},
		{Time: at, Client: "c5", Referrer: "[2001:db8::1]:443", Path: "/p", Status: 200},
		{Time: at, Client: "c6", Host: "h3.test", Path: "/nl", UserAgent: "line1\nline2\rline3",
			PayloadDigest: "sha1:da39a3ee", Status: 200},
		{Time: at, Client: "c7", Host: "h4.test", Path: "/ctl", UserAgent: "bell\x07end", Status: 200},
		{Time: time.Unix(0, 1).UTC(), Client: "c8", ServerIP: "2001:db8::5", Path: "/v6", Status: 204},
	}
}

func TestFormatRoundTrip(t *testing.T) {
	for _, name := range Names() {
		f, err := New(name, Options{Host: "static.test"})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		for i, r := range trickyRequests() {
			p := f.Project(r)
			if pp := f.Project(p); !sameRequest(p, pp) {
				t.Errorf("%s[%d]: Project not idempotent:\n  once:  %+v\n  twice: %+v", name, i, p, pp)
			}
			line := string(f.Append(nil, &p))
			if strings.ContainsAny(line, "\n\r") {
				t.Errorf("%s[%d]: emitted line contains a line break: %q", name, i, line)
			}
			got, err := f.Parse(line)
			if err != nil {
				t.Errorf("%s[%d]: Parse(Append(Project)) failed on %q: %v", name, i, line, err)
				continue
			}
			if !sameRequest(got, p) {
				t.Errorf("%s[%d]: round trip diverged on %q:\n  want %+v\n  got  %+v", name, i, line, p, got)
			}
		}
	}
}

func TestNewUnknownFormat(t *testing.T) {
	if _, err := New("xml", Options{}); err == nil {
		t.Fatal("New(xml) succeeded; want an error naming the valid formats")
	} else if !strings.Contains(err.Error(), "combined") {
		t.Fatalf("error %q does not list the valid formats", err)
	}
}

func TestCLFParseGolden(t *testing.T) {
	utc := func(y int, mo time.Month, d, h, mi, s int) time.Time {
		return time.Date(y, mo, d, h, mi, s, 0, time.UTC)
	}
	cases := []struct {
		name     string
		combined bool
		host     string
		line     string
		want     trace.Request
	}{
		{
			name: "common three tokens, static host",
			host: "srv.example.com",
			line: `203.0.113.9 - frank [10/Oct/2000:13:55:36 -0700] "GET /apache_pb.gif HTTP/1.0" 200 2326`,
			want: trace.Request{Time: utc(2000, 10, 10, 20, 55, 36), Client: "203.0.113.9",
				Host: "srv.example.com", Path: "/apache_pb.gif", Status: 200},
		},
		{
			name: "vhost token names the server",
			line: `www.example.com 10.1.2.3 - - [01/Mar/2012:00:00:05 +0000] "GET /a?x=1&y=2 HTTP/1.1" 404 -`,
			want: trace.Request{Time: utc(2012, 3, 1, 0, 0, 5), Client: "10.1.2.3",
				Host: "www.example.com", Path: "/a", Query: "x=1&y=2", Status: 404},
		},
		{
			name: "IP vhost lands in ServerIP",
			line: `203.0.113.77 10.1.2.3 - - [01/Mar/2012:00:00:05 +0000] "GET / HTTP/1.1" 200 17`,
			want: trace.Request{Time: utc(2012, 3, 1, 0, 0, 5), Client: "10.1.2.3",
				ServerIP: "203.0.113.77", Path: "/", Status: 200},
		},
		{
			name: "absolute URI target names the server when no vhost",
			line: `- 10.0.0.1 - - [01/Mar/2012:08:30:00 +0000] "GET http://evil.test/mal.exe?x=1 HTTP/1.1" 200 5`,
			want: trace.Request{Time: utc(2012, 3, 1, 8, 30, 0), Client: "10.0.0.1",
				Host: "evil.test", Path: "/mal.exe", Query: "x=1", Status: 200},
		},
		{
			name: "dash status is zero",
			line: `h.test c - - [01/Mar/2012:08:30:00 +0000] "GET / HTTP/1.1" - -`,
			want: trace.Request{Time: utc(2012, 3, 1, 8, 30, 0), Client: "c", Host: "h.test", Path: "/"},
		},
		{
			name:     "combined referer and user-agent",
			combined: true,
			line:     `h.test c - - [01/Mar/2012:08:30:00 +0000] "GET / HTTP/1.1" 200 99 "https://u:p@ref.test:8443/lp?a=b" "Mozilla/5.0 (X11; \"U\"; tab\there)"`,
			want: trace.Request{Time: utc(2012, 3, 1, 8, 30, 0), Client: "c", Host: "h.test",
				Path: "/", Status: 200, Referrer: "ref.test", UserAgent: "Mozilla/5.0 (X11; \"U\"; tab\there)"},
		},
		{
			name:     "combined dash referer and dash agent stay empty",
			combined: true,
			line:     `h.test c - - [01/Mar/2012:08:30:00 +0000] "GET / HTTP/1.1" 200 99 "-" "-"`,
			want: trace.Request{Time: utc(2012, 3, 1, 8, 30, 0), Client: "c", Host: "h.test",
				Path: "/", Status: 200},
		},
		{
			name: "rooted path containing :// stays a path",
			line: `h.test c - - [01/Mar/2012:08:30:00 +0000] "GET /redir?to=http://x/y HTTP/1.1" 200 -`,
			want: trace.Request{Time: utc(2012, 3, 1, 8, 30, 0), Client: "c", Host: "h.test",
				Path: "/redir", Query: "to=http://x/y", Status: 200},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			name := "common"
			if tc.combined {
				name = "combined"
			}
			f, err := New(name, Options{Host: tc.host})
			if err != nil {
				t.Fatal(err)
			}
			got, err := f.Parse(tc.line)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tc.line, err)
			}
			if !sameRequest(got, tc.want) {
				t.Errorf("Parse(%q):\n  want %+v\n  got  %+v", tc.line, tc.want, got)
			}
		})
	}
}

func TestCLFParseMalformed(t *testing.T) {
	f, err := New("combined", Options{})
	if err != nil {
		t.Fatal(err)
	}
	lines := []string{
		`one two three four five [01/Mar/2012:08:30:00 +0000] "GET / HTTP/1.1" 200 -`, // 5 pre tokens
		`h c [01/Mar/2012:08:30:00 +0000] "GET / HTTP/1.1" 200 - "-" "-"`,             // 2 pre tokens
		`h c - - [not a date] "GET / HTTP/1.1" 200 - "-" "-"`,
		`h c - - [01/Mar/2012:08:30:00 +0000] "GET / HTTP/1.1 200 - "-" "-"`, // unterminated-ish quotes
		`h c - - [01/Mar/2012:08:30:00 +0000] "no-spaces" 200 - "-" "-"`,     // bad request line
		`h c - - [01/Mar/2012:08:30:00 +0000] "GET / HTTP/1.1" twelve - "-" "-"`,
		`h c - - [01/Mar/2012:08:30:00 +0000] "GET / HTTP/1.1" 200 12x "-" "-"`,
		`h c - - [01/Mar/2012:08:30:00 +0000] "GET / HTTP/1.1" 200 -`,                  // combined missing ref/ua
		`h c - - [01/Mar/2012:08:30:00 +0000] "GET / HTTP/1.1" 200 - "-" "-" trailing`, // trailing junk
		`h c - - [01/Mar/2012:08:30:00 +0000] "GET / HTTP/1.1" 200 - "-" "bad \q escape"`,
	}
	for _, line := range lines {
		if _, err := f.Parse(line); !errors.Is(err, ErrBadLine) {
			t.Errorf("Parse(%q) = %v; want ErrBadLine", line, err)
		}
	}
	for _, line := range []string{"", "   ", "\t"} {
		if _, err := f.Parse(line); !errors.Is(err, ErrSkip) {
			t.Errorf("Parse(%q) = %v; want ErrSkip", line, err)
		}
	}
}

func TestJSONLTimeUnits(t *testing.T) {
	f, err := New("jsonl", Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		raw  string
		want time.Time
	}{
		{`{"ts":"2012-03-01T09:30:15.25Z","client":"c"}`, time.Date(2012, 3, 1, 9, 30, 15, 250000000, time.UTC)},
		{`{"ts":"2012-03-01T10:30:15+01:00","client":"c"}`, time.Date(2012, 3, 1, 9, 30, 15, 0, time.UTC)},
		{`{"ts":1330594215,"client":"c"}`, time.Unix(1330594215, 0).UTC()},
		{`{"ts":1330594215123,"client":"c"}`, time.Unix(1330594215, 123000000).UTC()},
		{`{"ts":1330594215123456,"client":"c"}`, time.Unix(1330594215, 123456000).UTC()},
		{`{"ts":1330594215123456789,"client":"c"}`, time.Unix(1330594215, 123456789).UTC()},
		{`{"ts":1330594215.5,"client":"c"}`, time.Unix(1330594215, 500000000).UTC()},
	}
	for _, tc := range cases {
		got, err := f.Parse(tc.raw)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.raw, err)
			continue
		}
		if !got.Time.Equal(tc.want) {
			t.Errorf("Parse(%q).Time = %v; want %v", tc.raw, got.Time, tc.want)
		}
	}
}

func TestJSONLCustomMapping(t *testing.T) {
	f, err := New("jsonl", Options{JSONLMap: map[string]string{
		"time":   "@timestamp",
		"client": "remote_addr",
		"host":   "vhost",
	}})
	if err != nil {
		t.Fatal(err)
	}
	line := `{"@timestamp":"2012-03-01T00:00:05Z","remote_addr":"10.0.0.9","vhost":"h.test","path":"/x","status":"404"}`
	got, err := f.Parse(line)
	if err != nil {
		t.Fatal(err)
	}
	want := trace.Request{Time: time.Date(2012, 3, 1, 0, 0, 5, 0, time.UTC),
		Client: "10.0.0.9", Host: "h.test", Path: "/x", Status: 404}
	if !sameRequest(got, want) {
		t.Fatalf("Parse(%q):\n  want %+v\n  got  %+v", line, want, got)
	}
	// The default key must not bleed through once remapped.
	if got, err := f.Parse(`{"@timestamp":1330560000,"client":"wrong"}`); err != nil || got.Client != "" {
		t.Fatalf("remapped client read the default key: %+v, %v", got, err)
	}
	// Round trip through the remapped emitter.
	re, err := f.Parse(string(f.Append(nil, &want)))
	if err != nil || !sameRequest(re, want) {
		t.Fatalf("remapped round trip: %+v, %v", re, err)
	}
}

func TestJSONLMappingErrors(t *testing.T) {
	cases := []map[string]string{
		{"nonsense": "x"},            // unknown logical field
		{"client": ""},               // empty key
		{"client": "x", "host": "x"}, // duplicate key
		{"client": "host"},           // collides with a default key
	}
	for _, m := range cases {
		if _, err := New("jsonl", Options{JSONLMap: m}); err == nil {
			t.Errorf("New(jsonl, %v) succeeded; want an error", m)
		}
	}
}

func TestJSONLMalformed(t *testing.T) {
	f, err := New("jsonl", Options{})
	if err != nil {
		t.Fatal(err)
	}
	lines := []string{
		`not json`,
		`{"client":"c"}`,               // missing time
		`{"ts":true}`,                  // bad time type
		`{"ts":"yesterday"}`,           // bad time string
		`{"ts":1330594215,"client":7}`, // non-string field
		`{"ts":1330594215,"status":"abc"}`,
	}
	for _, line := range lines {
		if _, err := f.Parse(line); !errors.Is(err, ErrBadLine) {
			t.Errorf("Parse(%q) = %v; want ErrBadLine", line, err)
		}
	}
	for _, line := range []string{"", "  ", "# header"} {
		if _, err := f.Parse(line); !errors.Is(err, ErrSkip) {
			t.Errorf("Parse(%q) = %v; want ErrSkip", line, err)
		}
	}
}

func TestDecoderErrorAccounting(t *testing.T) {
	f, err := New("common", Options{Host: "h.test"})
	if err != nil {
		t.Fatal(err)
	}
	input := strings.Join([]string{
		`h.test c1 - - [01/Mar/2012:08:30:00 +0000] "GET /a HTTP/1.1" 200 -`,
		``,
		`GARBAGE GARBAGE GARBAGE`,
		`h.test c2 - - [01/Mar/2012:08:30:01 +0000] "GET /b HTTP/1.1" 200 -`,
		`   `,
		`also not a log line at all really [ huh`,
		`h.test c3 - - [01/Mar/2012:08:30:02 +0000] "GET /c HTTP/1.1" 200 -`,
	}, "\n") + "\n"

	ctrs := NewCounters("test-input", "common")
	d := NewDecoder(strings.NewReader(input), f, ctrs)
	var clients []string
	for {
		req, err := d.Read()
		if err != nil {
			if err.Error() != "EOF" {
				t.Fatalf("Read: %v", err)
			}
			break
		}
		clients = append(clients, req.Client)
	}
	if got, want := strings.Join(clients, ","), "c1,c2,c3"; got != want {
		t.Errorf("decoded clients %q; want %q", got, want)
	}
	if d.Errors() != 2 {
		t.Errorf("Errors() = %d; want 2", d.Errors())
	}
	st := ctrs.Stats()
	if st.Lines != 3 || st.ParseErrors != 2 {
		t.Errorf("counters lines=%d parseErrors=%d; want 3, 2", st.Lines, st.ParseErrors)
	}
	if st.Bytes == 0 {
		t.Errorf("counters bytes = 0; want > 0")
	}
	if st.LagSeconds < 0 {
		t.Errorf("LagSeconds = %v after events; want >= 0", st.LagSeconds)
	}
}

func TestCountersNilSafe(t *testing.T) {
	var c *Counters
	c.addLine(5)
	c.addError()
	c.addSkipped()
	c.addRotation()
	c.addCheckpoint()
	c.AddBatch()
	c.observeEvent(time.Now())
	if s := c.Stats(); s != (Stats{}) {
		t.Errorf("nil Counters Stats = %+v; want zero", s)
	}
}
