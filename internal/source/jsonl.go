package source

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"time"

	"smash/internal/trace"
)

// JSONLFields lists the logical field names of the "jsonl" format with
// their default JSON keys. Options.JSONLMap overrides individual keys
// (logical name -> JSON key) so smashd can ingest whatever shape a log
// shipper already emits.
var JSONLFields = map[string]string{
	"time":           "ts",
	"client":         "client",
	"host":           "host",
	"server_ip":      "server_ip",
	"path":           "path",
	"query":          "query",
	"user_agent":     "user_agent",
	"referrer":       "referrer",
	"status":         "status",
	"payload_digest": "payload_digest",
}

// jsonlFormat is one JSON object per line. Lossless: every trace.Request
// field has a key, strings are JSON-escaped (newlines cannot break the
// one-record-one-line rule), and timestamps keep nanosecond resolution.
//
// Timestamps parse from RFC 3339 strings or from bare numbers, whose
// magnitude picks the unit: < 1e11 seconds (fractional part kept),
// < 1e14 milliseconds, < 1e17 microseconds, else nanoseconds — the
// heuristic every log shipper ends up needing, here in one place.
type jsonlFormat struct {
	// keys maps logical field name -> JSON key after overrides.
	keys map[string]string
}

func newJSONLFormat(overrides map[string]string) (*jsonlFormat, error) {
	keys := make(map[string]string, len(JSONLFields))
	for name, key := range JSONLFields {
		keys[name] = key
	}
	for name, key := range overrides {
		if _, ok := keys[name]; !ok {
			known := make([]string, 0, len(JSONLFields))
			for n := range JSONLFields {
				known = append(known, n)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("source: jsonl mapping: unknown field %q (fields: %v)", name, known)
		}
		if key == "" {
			return nil, fmt.Errorf("source: jsonl mapping: empty key for field %q", name)
		}
		keys[name] = key
	}
	seen := make(map[string]string, len(keys))
	for name, key := range keys {
		if prev, dup := seen[key]; dup {
			return nil, fmt.Errorf("source: jsonl mapping: key %q used by both %q and %q", key, prev, name)
		}
		seen[key] = name
	}
	return &jsonlFormat{keys: keys}, nil
}

func (f *jsonlFormat) Name() string { return "jsonl" }

func (f *jsonlFormat) Parse(line string) (trace.Request, error) {
	trimmed := trimSpaces(line)
	if trimmed == "" || trimmed[0] == '#' {
		return trace.Request{}, ErrSkip
	}
	var obj map[string]json.RawMessage
	if err := json.Unmarshal([]byte(trimmed), &obj); err != nil {
		return trace.Request{}, badLine("jsonl: %v", err)
	}
	var req trace.Request
	var err error
	if raw, ok := obj[f.keys["time"]]; ok {
		if req.Time, err = parseJSONTime(raw); err != nil {
			return trace.Request{}, badLine("jsonl: %s: %v", f.keys["time"], err)
		}
	} else {
		return trace.Request{}, badLine("jsonl: missing %q", f.keys["time"])
	}
	str := func(name string) (string, error) {
		raw, ok := obj[f.keys[name]]
		if !ok {
			return "", nil
		}
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return "", badLine("jsonl: %s: want a string", f.keys[name])
		}
		return s, nil
	}
	fields := []struct {
		name string
		dst  *string
	}{
		{"client", &req.Client},
		{"host", &req.Host},
		{"server_ip", &req.ServerIP},
		{"path", &req.Path},
		{"query", &req.Query},
		{"user_agent", &req.UserAgent},
		{"referrer", &req.Referrer},
		{"payload_digest", &req.PayloadDigest},
	}
	for _, fld := range fields {
		if *fld.dst, err = str(fld.name); err != nil {
			return trace.Request{}, err
		}
	}
	if raw, ok := obj[f.keys["status"]]; ok {
		if req.Status, err = parseJSONStatus(raw); err != nil {
			return trace.Request{}, badLine("jsonl: %s: %v", f.keys["status"], err)
		}
	}
	return req, nil
}

func (f *jsonlFormat) Append(dst []byte, r *trace.Request) []byte {
	dst = append(dst, '{')
	dst = appendJSONKey(dst, f.keys["time"])
	dst = strconv.AppendQuote(dst, r.Time.UTC().Format(time.RFC3339Nano))
	field := func(name, v string) {
		if v == "" {
			return
		}
		dst = append(dst, ',')
		dst = appendJSONKey(dst, f.keys[name])
		dst = appendJSONString(dst, v)
	}
	field("client", r.Client)
	field("host", r.Host)
	field("server_ip", r.ServerIP)
	field("path", r.Path)
	field("query", r.Query)
	field("user_agent", r.UserAgent)
	field("referrer", r.Referrer)
	dst = append(dst, ',')
	dst = appendJSONKey(dst, f.keys["status"])
	dst = strconv.AppendInt(dst, int64(r.Status), 10)
	field("payload_digest", r.PayloadDigest)
	return append(dst, '}')
}

// Project is the identity up to UTC normalization: JSONL carries every
// field at full resolution.
func (f *jsonlFormat) Project(r trace.Request) trace.Request {
	r.Time = r.Time.UTC()
	return r
}

func appendJSONKey(dst []byte, key string) []byte {
	dst = appendJSONString(dst, key)
	return append(dst, ':')
}

// appendJSONString appends s as a JSON string. json.Marshal of a string
// cannot fail; doing it by hand keeps emit allocation-free for the
// common ASCII case.
func appendJSONString(dst []byte, s string) []byte {
	clean := true
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x80 {
			clean = false
			break
		}
	}
	if clean {
		dst = append(dst, '"')
		dst = append(dst, s...)
		return append(dst, '"')
	}
	b, _ := json.Marshal(s)
	return append(dst, b...)
}

// parseJSONTime accepts RFC 3339 strings or numeric timestamps with
// magnitude-based units.
func parseJSONTime(raw json.RawMessage) (time.Time, error) {
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		t, err := time.Parse(time.RFC3339Nano, s)
		if err != nil {
			return time.Time{}, fmt.Errorf("bad RFC3339 time %q", s)
		}
		return t.UTC(), nil
	}
	var n json.Number
	if err := json.Unmarshal(raw, &n); err != nil {
		return time.Time{}, fmt.Errorf("want an RFC3339 string or a number")
	}
	if i, err := n.Int64(); err == nil {
		switch abs := absInt64(i); {
		case abs < 1e11: // seconds
			return time.Unix(i, 0).UTC(), nil
		case abs < 1e14: // milliseconds
			return time.Unix(0, i*int64(time.Millisecond)).UTC(), nil
		case abs < 1e17: // microseconds
			return time.Unix(0, i*int64(time.Microsecond)).UTC(), nil
		default: // nanoseconds
			return time.Unix(0, i).UTC(), nil
		}
	}
	fv, err := n.Float64()
	if err != nil {
		return time.Time{}, fmt.Errorf("bad numeric time %q", n.String())
	}
	sec := int64(fv)
	return time.Unix(sec, int64((fv-float64(sec))*1e9)).UTC(), nil
}

func parseJSONStatus(raw json.RawMessage) (int, error) {
	var n int
	if err := json.Unmarshal(raw, &n); err == nil {
		return n, nil
	}
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		if s == "" || s == "-" {
			return 0, nil
		}
		n, err := strconv.Atoi(s)
		if err != nil {
			return 0, fmt.Errorf("bad status %q", s)
		}
		return n, nil
	}
	return 0, fmt.Errorf("want a number or numeric string")
}

func absInt64(i int64) int64 {
	if i < 0 {
		return -i
	}
	return i
}

func trimSpaces(s string) string {
	start, end := 0, len(s)
	for start < end && (s[start] == ' ' || s[start] == '\t' || s[start] == '\r') {
		start++
	}
	for end > start && (s[end-1] == ' ' || s[end-1] == '\t' || s[end-1] == '\r') {
		end--
	}
	return s[start:end]
}
