// Package stats provides the deterministic numerical substrate used across
// SMASH: the erf-based sigma normalizer from eq. (9) of the paper, seeded
// random number generation, a bounded Zipf sampler for the synthetic traffic
// model, and histogram/CDF helpers used to reproduce the paper's figures.
//
// Everything in this package is deterministic given explicit seeds; no global
// mutable state and no wall-clock dependence.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Sigma is the "S"-shaped normalizer from eq. (9):
//
//	sigma(x) = 1/2 * (1 + erf((x-mu)/beta))
//
// The paper sets mu=4 and beta=5.5 so that groups with fewer than four
// servers receive a low score and must be cross-checked against additional
// dimensions to accumulate suspicion.
func Sigma(x, mu, beta float64) float64 {
	if beta == 0 {
		if x >= mu {
			return 1
		}
		return 0
	}
	return 0.5 * (1 + math.Erf((x-mu)/beta))
}

// DefaultMu and DefaultBeta are the paper's empirical sigma parameters.
const (
	DefaultMu   = 4.0
	DefaultBeta = 5.5
)

// SplitMix64 advances a splitmix64 state and returns the next value. It is
// used to derive independent, reproducible sub-seeds from a master seed so
// that changing one component of the synthetic world does not perturb the
// random streams of the others.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed deterministically derives a named sub-seed from a master seed.
// Identical (seed, name) pairs always produce the same result.
func DeriveSeed(seed int64, name string) int64 {
	state := uint64(seed) ^ 0x6a09e667f3bcc908
	for i := 0; i < len(name); i++ {
		state ^= uint64(name[i]) << uint((i%8)*8)
		SplitMix64(&state)
	}
	return int64(SplitMix64(&state))
}

// NewRand returns a seeded *rand.Rand for the given master seed and stream
// name. Separate names yield statistically independent streams.
func NewRand(seed int64, name string) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(seed, name)))
}

// Zipf samples integers in [0, n) with probability proportional to
// 1/(rank+1)^s. It precomputes the cumulative mass so sampling is O(log n).
// The standard library Zipf generator does not allow s <= 1, which the web
// popularity literature needs (s around 0.8-1.2), so we implement our own.
type Zipf struct {
	cum []float64
	rng *rand.Rand
}

// NewZipf builds a bounded Zipf sampler over n ranks with exponent s > 0.
func NewZipf(rng *rand.Rand, n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("zipf: n must be positive, got %d", n)
	}
	if s <= 0 {
		return nil, fmt.Errorf("zipf: exponent must be positive, got %g", s)
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum, rng: rng}, nil
}

// N reports the number of ranks in the sampler's support.
func (z *Zipf) N() int { return len(z.cum) }

// Sample draws one rank in [0, N()).
func (z *Zipf) Sample() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cum, u)
}

// Histogram is an integer-valued frequency histogram used by the figure
// reproductions (IDF distribution, filename length distribution, campaign
// size distribution).
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Add records one observation of value v.
func (h *Histogram) Add(v int) {
	h.counts[v]++
	h.total++
}

// AddN records n observations of value v.
func (h *Histogram) AddN(v, n int) {
	if n <= 0 {
		return
	}
	h.counts[v] += n
	h.total += n
}

// Total reports the number of observations.
func (h *Histogram) Total() int { return h.total }

// Max returns the largest observed value, or 0 for an empty histogram.
func (h *Histogram) Max() int {
	maxV := 0
	for v := range h.counts {
		if v > maxV {
			maxV = v
		}
	}
	return maxV
}

// CDF returns the empirical cumulative distribution as sorted (value,
// fraction<=value) points.
func (h *Histogram) CDF() []CDFPoint {
	if h.total == 0 {
		return nil
	}
	values := make([]int, 0, len(h.counts))
	for v := range h.counts {
		values = append(values, v)
	}
	sort.Ints(values)
	points := make([]CDFPoint, 0, len(values))
	run := 0
	for _, v := range values {
		run += h.counts[v]
		points = append(points, CDFPoint{Value: v, Fraction: float64(run) / float64(h.total)})
	}
	return points
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    int
	Fraction float64
}

// Quantile returns the smallest value v such that at least fraction q of the
// observations are <= v. q is clamped to [0, 1].
func (h *Histogram) Quantile(q float64) int {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	for _, p := range h.CDF() {
		if p.Fraction >= q {
			return p.Value
		}
	}
	return h.Max()
}

// FractionAtMost reports the fraction of observations <= v.
func (h *Histogram) FractionAtMost(v int) float64 {
	if h.total == 0 {
		return 0
	}
	run := 0
	for value, c := range h.counts {
		if value <= v {
			run += c
		}
	}
	return float64(run) / float64(h.total)
}

// RenderCDF renders the CDF as an aligned text table for reports, sampling
// at most maxRows evenly spaced points.
func (h *Histogram) RenderCDF(label string, maxRows int) string {
	points := h.CDF()
	if len(points) == 0 {
		return label + ": (empty)\n"
	}
	if maxRows > 0 && len(points) > maxRows {
		sampled := make([]CDFPoint, 0, maxRows)
		step := float64(len(points)-1) / float64(maxRows-1)
		for i := 0; i < maxRows; i++ {
			sampled = append(sampled, points[int(float64(i)*step+0.5)])
		}
		points = sampled
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d)\n", label, h.total)
	for _, p := range points {
		fmt.Fprintf(&b, "  <= %6d : %6.2f%%\n", p.Value, 100*p.Fraction)
	}
	return b.String()
}

// Mean returns the arithmetic mean of the observations, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	sum := 0.0
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total)
}
