package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSigmaShape(t *testing.T) {
	tests := []struct {
		name string
		x    float64
		want func(v float64) bool
	}{
		{"at mu it is one half", DefaultMu, func(v float64) bool { return math.Abs(v-0.5) < 1e-12 }},
		{"far below mu is near zero", -30, func(v float64) bool { return v < 1e-6 }},
		{"far above mu is near one", 60, func(v float64) bool { return v > 1-1e-6 }},
		{"small groups score low", 1, func(v float64) bool { return v < 0.5 }},
		{"large groups score high", 10, func(v float64) bool { return v > 0.5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Sigma(tt.x, DefaultMu, DefaultBeta)
			if !tt.want(got) {
				t.Errorf("Sigma(%g) = %g, shape constraint failed", tt.x, got)
			}
		})
	}
}

func TestSigmaMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return Sigma(lo, DefaultMu, DefaultBeta) <= Sigma(hi, DefaultMu, DefaultBeta)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSigmaBounds(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		v := Sigma(x, DefaultMu, DefaultBeta)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSigmaZeroBeta(t *testing.T) {
	if got := Sigma(3, 4, 0); got != 0 {
		t.Errorf("Sigma(3,4,0) = %g, want 0", got)
	}
	if got := Sigma(5, 4, 0); got != 1 {
		t.Errorf("Sigma(5,4,0) = %g, want 1", got)
	}
}

func TestDeriveSeedDeterministic(t *testing.T) {
	a := DeriveSeed(42, "clients")
	b := DeriveSeed(42, "clients")
	c := DeriveSeed(42, "servers")
	d := DeriveSeed(43, "clients")
	if a != b {
		t.Errorf("same inputs produced different seeds: %d vs %d", a, b)
	}
	if a == c {
		t.Errorf("different names produced same seed %d", a)
	}
	if a == d {
		t.Errorf("different master seeds produced same seed %d", a)
	}
}

func TestNewRandIndependentStreams(t *testing.T) {
	r1 := NewRand(7, "a")
	r2 := NewRand(7, "a")
	r3 := NewRand(7, "b")
	same, diff := 0, 0
	for i := 0; i < 100; i++ {
		v1, v2, v3 := r1.Int63(), r2.Int63(), r3.Int63()
		if v1 == v2 {
			same++
		}
		if v1 == v3 {
			diff++
		}
	}
	if same != 100 {
		t.Errorf("identical streams diverged: only %d/100 equal", same)
	}
	if diff > 1 {
		t.Errorf("distinct streams collided %d/100 times", diff)
	}
}

func TestZipfValidation(t *testing.T) {
	rng := NewRand(1, "zipf")
	if _, err := NewZipf(rng, 0, 1); err == nil {
		t.Error("NewZipf(0 ranks) should error")
	}
	if _, err := NewZipf(rng, 10, 0); err == nil {
		t.Error("NewZipf(exponent 0) should error")
	}
	if _, err := NewZipf(rng, 10, -1); err == nil {
		t.Error("NewZipf(negative exponent) should error")
	}
}

func TestZipfRange(t *testing.T) {
	rng := NewRand(1, "zipf-range")
	z, err := NewZipf(rng, 50, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		v := z.Sample()
		if v < 0 || v >= 50 {
			t.Fatalf("sample %d out of range [0,50)", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	rng := NewRand(2, "zipf-skew")
	z, err := NewZipf(rng, 100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		counts[z.Sample()]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("rank 0 (%d draws) should dominate rank 50 (%d draws)", counts[0], counts[50])
	}
	if counts[0] < 5*counts[99] {
		t.Errorf("rank 0 (%d) should be >> rank 99 (%d)", counts[0], counts[99])
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{1, 1, 2, 3, 3, 3, 10} {
		h.Add(v)
	}
	cdf := h.CDF()
	if len(cdf) != 4 {
		t.Fatalf("CDF has %d points, want 4", len(cdf))
	}
	last := cdf[len(cdf)-1]
	if last.Value != 10 || math.Abs(last.Fraction-1) > 1e-12 {
		t.Errorf("last CDF point = %+v, want {10 1}", last)
	}
	if got := h.FractionAtMost(3); math.Abs(got-6.0/7.0) > 1e-12 {
		t.Errorf("FractionAtMost(3) = %g, want 6/7", got)
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Errorf("Quantile(0.5) = %d, want 3", got)
	}
	if got := h.Max(); got != 10 {
		t.Errorf("Max = %d, want 10", got)
	}
}

func TestHistogramCDFMonotone(t *testing.T) {
	f := func(values []uint8) bool {
		h := NewHistogram()
		for _, v := range values {
			h.Add(int(v))
		}
		prevV, prevF := -1, 0.0
		for _, p := range h.CDF() {
			if p.Value <= prevV || p.Fraction < prevF {
				return false
			}
			prevV, prevF = p.Value, p.Fraction
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.CDF() != nil {
		t.Error("empty histogram CDF should be nil")
	}
	if h.Mean() != 0 {
		t.Error("empty histogram mean should be 0")
	}
	if h.FractionAtMost(5) != 0 {
		t.Error("empty histogram FractionAtMost should be 0")
	}
}

func TestHistogramAddN(t *testing.T) {
	h := NewHistogram()
	h.AddN(4, 3)
	h.AddN(4, -1) // ignored
	h.AddN(2, 1)
	if h.Total() != 4 {
		t.Errorf("Total = %d, want 4", h.Total())
	}
	if got := h.Mean(); math.Abs(got-3.5) > 1e-12 {
		t.Errorf("Mean = %g, want 3.5", got)
	}
}

func TestHistogramRenderCDF(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Add(i)
	}
	out := h.RenderCDF("test", 5)
	if out == "" {
		t.Fatal("empty render")
	}
	empty := NewHistogram()
	if got := empty.RenderCDF("x", 5); got != "x: (empty)\n" {
		t.Errorf("empty render = %q", got)
	}
}
