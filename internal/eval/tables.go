package eval

import (
	"fmt"
	"sort"
	"strings"

	"smash/internal/campaign"
	"smash/internal/core"
	"smash/internal/synth"
)

// PaperThresholds are the inference thresholds the paper sweeps in Tables
// II, III, XI and XII.
var PaperThresholds = []float64{0.5, 0.8, 1.0, 1.5}

// Table is a generic labelled table: named rows of per-column counts.
type Table struct {
	// Title names the experiment (e.g. "Table II").
	Title string
	// Columns are the column headers.
	Columns []string
	// RowOrder fixes row rendering order; Rows maps row -> cells.
	RowOrder []string
	Rows     map[string][]int
}

func newTable(title string, columns []string, rows []string) *Table {
	t := &Table{Title: title, Columns: columns, RowOrder: rows, Rows: make(map[string][]int, len(rows))}
	for _, r := range rows {
		t.Rows[r] = make([]int, len(columns))
	}
	return t
}

// Add increments a cell.
func (t *Table) Add(row string, col int, delta int) {
	cells, ok := t.Rows[row]
	if !ok {
		cells = make([]int, len(t.Columns))
		t.Rows[row] = cells
		t.RowOrder = append(t.RowOrder, row)
	}
	cells[col] += delta
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	width := 22
	fmt.Fprintf(&b, "%-*s", width, "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%12s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.RowOrder {
		fmt.Fprintf(&b, "%-*s", width, r)
		for _, v := range t.Rows[r] {
			fmt.Fprintf(&b, "%12d", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Verification row names shared by the campaign/server tables.
const (
	rowSMASH          = "SMASH"
	rowIDS2012Total   = "IDS 2012 total"
	rowIDS2013Total   = "IDS 2013 total"
	rowIDS2012Partial = "IDS 2012 partial"
	rowIDS2013Partial = "IDS 2013 partial"
	rowBlacklist      = "Blacklist"
	rowNewServers     = "New Servers"
	rowSuspicious     = "Suspicious"
	rowFP             = "False Positives"
	rowFPUpdated      = "FP (Updated)"
)

// TableI reproduces the dataset statistics table over the given envs.
func TableI(envs ...*Env) string {
	var b strings.Builder
	b.WriteString("Table I: network traffic statistics\n")
	for _, e := range envs {
		for _, day := range e.World.Days {
			b.WriteString("  " + day.ComputeStats().Render() + "\n")
		}
	}
	return b.String()
}

// campaignSelector picks which campaign population a table evaluates.
type campaignSelector func(*core.Report) []campaign.Campaign

func multiClient(r *core.Report) []campaign.Campaign  { return r.Campaigns }
func singleClient(r *core.Report) []campaign.Campaign { return r.SingleClientCampaigns }

// thresholdTable runs the detector at each paper threshold on day 0 of each
// env and fills campaign-count (counting==true: campaigns; false: servers)
// verification rows.
func thresholdTable(title string, envs []*Env, sel campaignSelector, countServers bool, singleThresh func(float64) float64) (*Table, error) {
	var columns []string
	for _, e := range envs {
		for _, th := range PaperThresholds {
			columns = append(columns, fmt.Sprintf("%s@%.1f", shortName(e.World.Config.Name), th))
		}
	}
	rows := []string{rowSMASH, rowIDS2012Total, rowIDS2013Total, rowIDS2012Partial,
		rowIDS2013Partial, rowBlacklist, rowSuspicious, rowFP, rowFPUpdated}
	if countServers {
		rows = []string{rowSMASH, rowIDS2012Total, rowIDS2013Total, rowBlacklist,
			rowNewServers, rowSuspicious, rowFP, rowFPUpdated}
	}
	t := newTable(title, columns, rows)
	col := 0
	for _, e := range envs {
		for _, th := range PaperThresholds {
			report, err := e.Run(0, th, singleThresh(th))
			if err != nil {
				return nil, err
			}
			cl := e.classifier(0, report)
			for _, cp := range sel(report) {
				cp := cp
				verdict := cl.campaignVerdict(&cp)
				if countServers {
					fillServerRows(t, col, cl, &cp, verdict)
				} else {
					fillCampaignRows(t, col, cl, &cp, verdict)
				}
			}
			col++
		}
	}
	return t, nil
}

func shortName(dataset string) string {
	s := strings.TrimPrefix(dataset, "Data")
	if len(s) > 7 {
		s = s[:7]
	}
	return s
}

func fillCampaignRows(t *Table, col int, cl *classifier, cp *campaign.Campaign, verdict Verdict) {
	t.Add(rowSMASH, col, 1)
	switch verdict {
	case VerdictIDS2012Total:
		t.Add(rowIDS2012Total, col, 1)
	case VerdictIDS2013Total:
		t.Add(rowIDS2013Total, col, 1)
	case VerdictIDS2012Partial:
		t.Add(rowIDS2012Partial, col, 1)
	case VerdictIDS2013Partial:
		t.Add(rowIDS2013Partial, col, 1)
	case VerdictBlacklist:
		t.Add(rowBlacklist, col, 1)
	case VerdictSuspicious:
		t.Add(rowSuspicious, col, 1)
	case VerdictFP:
		t.Add(rowFP, col, 1)
		if !cl.campaignIsNoise(cp) {
			t.Add(rowFPUpdated, col, 1)
		}
	}
}

func fillServerRows(t *Table, col int, cl *classifier, cp *campaign.Campaign, verdict Verdict) {
	verdicts := cl.serverVerdicts(cp, verdict)
	for _, s := range cp.Servers {
		t.Add(rowSMASH, col, 1)
		switch verdicts[s] {
		case VerdictIDS2012Total:
			t.Add(rowIDS2012Total, col, 1)
		case VerdictIDS2013Total:
			t.Add(rowIDS2013Total, col, 1)
		case VerdictBlacklist:
			t.Add(rowBlacklist, col, 1)
		case VerdictNewServer:
			t.Add(rowNewServers, col, 1)
		case VerdictSuspicious:
			t.Add(rowSuspicious, col, 1)
		default:
			t.Add(rowFP, col, 1)
			if !cl.truth.Servers[s].Noise {
				t.Add(rowFPUpdated, col, 1)
			}
		}
	}
}

// TableII reproduces the number-of-malicious-campaigns table (multi-client
// campaigns, thresholds 0.5/0.8/1.0/1.5).
func TableII(envs ...*Env) (*Table, error) {
	return thresholdTable("Table II: number of malicious campaigns", envs,
		multiClient, false, func(th float64) float64 { return 1.0 })
}

// TableIII reproduces the number-of-servers table for multi-client
// campaigns.
func TableIII(envs ...*Env) (*Table, error) {
	return thresholdTable("Table III: number of servers in malicious activities", envs,
		multiClient, true, func(th float64) float64 { return 1.0 })
}

// TableXI reproduces the single-client campaign counts (Appendix C): the
// threshold sweep applies to the single-client population.
func TableXI(envs ...*Env) (*Table, error) {
	return thresholdTable("Table XI: number of attack campaigns with single client", envs,
		singleClient, false, func(th float64) float64 { return th })
}

// TableXII reproduces the single-client server counts (Appendix C).
func TableXII(envs ...*Env) (*Table, error) {
	return thresholdTable("Table XII: number of servers in malicious campaigns with single client", envs,
		singleClient, true, func(th float64) float64 { return th })
}

// TableIV categorizes the inferred servers by attack category using the
// labelling oracles' ground truth, in the shape of the paper's Table IV.
func TableIV(e *Env) (*Table, error) {
	report, err := e.Run(0, 0.8, 1.0)
	if err != nil {
		return nil, err
	}
	categories := []string{
		string(synth.CatC2), string(synth.CatWebExploit), string(synth.CatPhishing),
		string(synth.CatDropZone), string(synth.CatOtherMal),
		string(synth.CatScanVictim), string(synth.CatIframeVictim),
	}
	t := newTable("Table IV: attack categories (# of servers)", []string{"servers"}, categories)
	for _, cp := range report.AllCampaigns() {
		for _, s := range cp.Servers {
			st, ok := e.World.Truth.Servers[s]
			if !ok || st.Noise {
				continue
			}
			switch st.Category {
			case synth.CatC2, synth.CatPhishing, synth.CatDropZone,
				synth.CatScanVictim, synth.CatIframeVictim, synth.CatWebExploit:
				t.Add(string(st.Category), 0, 1)
			default:
				t.Add(string(synth.CatOtherMal), 0, 1)
			}
		}
	}
	return t, nil
}

// TableV reproduces the per-day campaign counts over the week dataset.
func TableV(week *Env) (*Table, error) {
	return weekTable("Table V: number of attack campaigns during Data2012week", week, false)
}

// TableVI reproduces the per-day server counts over the week dataset.
func TableVI(week *Env) (*Table, error) {
	return weekTable("Table VI: number of servers involved in malicious activities during Data2012week", week, true)
}

func weekTable(title string, week *Env, countServers bool) (*Table, error) {
	days := len(week.World.Days)
	columns := make([]string, days)
	for d := range columns {
		columns[d] = fmt.Sprintf("Day %d", d+1)
	}
	rows := []string{rowSMASH, rowIDS2013Total, rowIDS2013Partial, rowBlacklist,
		rowSuspicious, rowFP, rowFPUpdated}
	if countServers {
		rows = []string{rowSMASH, rowIDS2013Total, rowBlacklist, rowNewServers,
			rowSuspicious, rowFP, rowFPUpdated}
	}
	t := newTable(title, columns, rows)
	for d := 0; d < days; d++ {
		// Footnote 9: threshold 0.8 for multi-client, 1.0 for single-client
		// campaigns; the week tables count both populations.
		report, err := week.Run(d, 0.8, 1.0)
		if err != nil {
			return nil, err
		}
		cl := week.classifier(d, report)
		for _, cp := range report.AllCampaigns() {
			cp := cp
			verdict := cl.campaignVerdict(&cp)
			if countServers {
				fillWeekServerRows(t, d, cl, &cp, verdict)
			} else {
				fillWeekCampaignRows(t, d, cl, &cp, verdict)
			}
		}
	}
	return t, nil
}

func fillWeekCampaignRows(t *Table, col int, cl *classifier, cp *campaign.Campaign, verdict Verdict) {
	t.Add(rowSMASH, col, 1)
	switch verdict {
	case VerdictIDS2012Total, VerdictIDS2013Total:
		t.Add(rowIDS2013Total, col, 1)
	case VerdictIDS2012Partial, VerdictIDS2013Partial:
		t.Add(rowIDS2013Partial, col, 1)
	case VerdictBlacklist:
		t.Add(rowBlacklist, col, 1)
	case VerdictSuspicious:
		t.Add(rowSuspicious, col, 1)
	case VerdictFP:
		t.Add(rowFP, col, 1)
		if !cl.campaignIsNoise(cp) {
			t.Add(rowFPUpdated, col, 1)
		}
	}
}

func fillWeekServerRows(t *Table, col int, cl *classifier, cp *campaign.Campaign, verdict Verdict) {
	verdicts := cl.serverVerdicts(cp, verdict)
	for _, s := range cp.Servers {
		t.Add(rowSMASH, col, 1)
		switch verdicts[s] {
		case VerdictIDS2012Total, VerdictIDS2013Total:
			t.Add(rowIDS2013Total, col, 1)
		case VerdictBlacklist:
			t.Add(rowBlacklist, col, 1)
		case VerdictNewServer:
			t.Add(rowNewServers, col, 1)
		case VerdictSuspicious:
			t.Add(rowSuspicious, col, 1)
		default:
			t.Add(rowFP, col, 1)
			if !cl.truth.Servers[s].Noise {
				t.Add(rowFPUpdated, col, 1)
			}
		}
	}
}

// FalseNegatives reproduces the paper's FN analysis: ground-truth campaign
// servers labelled by the IDS but absent from SMASH's output, grouped by
// threat identifier.
func FalseNegatives(e *Env, day int) (map[string][]string, error) {
	report, err := e.Run(day, 0.8, 1.0)
	if err != nil {
		return nil, err
	}
	_, l2013 := e.Labels(day)
	detected := make(map[string]bool)
	for _, c := range report.AllCampaigns() {
		for _, s := range c.Servers {
			detected[s] = true
		}
	}
	missed := make(map[string][]string)
	for threat, servers := range l2013.ThreatGroups() {
		for _, s := range servers {
			if !detected[s] {
				missed[threat] = append(missed[threat], s)
			}
		}
	}
	for t := range missed {
		sort.Strings(missed[t])
	}
	return missed, nil
}
