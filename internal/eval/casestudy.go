package eval

import (
	"fmt"
	"sort"
	"strings"

	"smash/internal/campaign"
)

// CaseStudy renders the inferred campaign matching a ground-truth campaign
// in the shape of the paper's Tables VII-X: per-server URI, User-Agent and
// query-parameter pattern, grouped by category, with an oracle-coverage
// summary demonstrating the holistic-view benefit.
type CaseStudy struct {
	// Name is the ground-truth campaign name (e.g. "zeus").
	Name string
	// Found is how many of the campaign's active servers SMASH inferred.
	Found, Active int
	// IDS2012, IDS2013, Blacklisted count oracle coverage of the same
	// population.
	IDS2012, IDS2013, Blacklisted int
	// Rows holds one line per inferred server.
	Rows []CaseStudyRow
	// MergedCampaignSize is the size of the inferred campaign containing
	// the most campaign servers (the holistic merge).
	MergedCampaignSize int
}

// CaseStudyRow describes one inferred server.
type CaseStudyRow struct {
	Category  string
	Server    string
	URIFile   string
	UserAgent string
	Params    string
}

// BuildCaseStudy evaluates one named ground-truth campaign on day 0.
func BuildCaseStudy(e *Env, name string) (*CaseStudy, error) {
	ct, ok := e.World.Truth.Campaigns[name]
	if !ok {
		return nil, fmt.Errorf("eval: unknown campaign %q", name)
	}
	report, err := e.Run(0, 0.8, 1.0)
	if err != nil {
		return nil, err
	}
	l2012, l2013 := e.Labels(0)
	cs := &CaseStudy{Name: name}

	truthSet := make(map[string]bool, len(ct.Servers))
	for _, s := range ct.Servers {
		if _, active := report.RawIndex.Servers[s]; active {
			truthSet[s] = true
			cs.Active++
			if l2012.Detected(s) {
				cs.IDS2012++
			}
			if l2013.Detected(s) {
				cs.IDS2013++
			}
			if e.Oracles.Blacklists.Confirmed(s) {
				cs.Blacklisted++
			}
		}
	}

	var best *campaign.Campaign
	bestOverlap := 0
	for i := range report.AllCampaigns() {
		all := report.AllCampaigns()
		c := &all[i]
		overlap := 0
		for _, s := range c.Servers {
			if truthSet[s] {
				overlap++
			}
		}
		if overlap > bestOverlap {
			best, bestOverlap = c, overlap
		}
	}
	if best == nil {
		return cs, nil
	}
	cs.MergedCampaignSize = len(best.Servers)
	for _, s := range best.Servers {
		if !truthSet[s] {
			continue
		}
		cs.Found++
		info := report.RawIndex.Servers[s]
		row := CaseStudyRow{
			Server:   s,
			Category: string(e.World.Truth.Servers[s].Category),
		}
		if info != nil {
			row.URIFile = info.TopFile()
			row.UserAgent = info.TopUserAgent()
			row.Params = info.TopQuery()
		}
		cs.Rows = append(cs.Rows, row)
	}
	sort.Slice(cs.Rows, func(i, j int) bool {
		if cs.Rows[i].Category != cs.Rows[j].Category {
			return cs.Rows[i].Category < cs.Rows[j].Category
		}
		return cs.Rows[i].Server < cs.Rows[j].Server
	})
	return cs, nil
}

// Render formats the case study.
func (cs *CaseStudy) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Case study %q: SMASH found %d/%d servers (IDS2012: %d, IDS2013: %d, blacklists: %d); merged campaign size %d\n",
		cs.Name, cs.Found, cs.Active, cs.IDS2012, cs.IDS2013, cs.Blacklisted, cs.MergedCampaignSize)
	fmt.Fprintf(&b, "  %-18s %-22s %-24s %-20s %s\n", "category", "server", "URI file", "user-agent", "params")
	const maxRows = 16
	for i, r := range cs.Rows {
		if i == maxRows {
			fmt.Fprintf(&b, "  ... (%d more rows)\n", len(cs.Rows)-maxRows)
			break
		}
		fmt.Fprintf(&b, "  %-18s %-22s %-24s %-20s %s\n",
			r.Category, r.Server, r.URIFile, r.UserAgent, r.Params)
	}
	return b.String()
}

// PaperCaseStudies lists the ground-truth campaigns matching the paper's
// Tables VII (Bagle), VIII (Sality), IX (iframe injection), X (Zeus).
func PaperCaseStudies() []string {
	return []string{"bagle", "sality", "iframe-inject", "zeus"}
}

// MainDimensionStudy reproduces the §V-C1 taxonomy: classify each main
// herd by the ground-truth nature of its members.
type MainDimensionStudy struct {
	// DroppedServers counts servers not placed in any main herd.
	DroppedServers int
	// Herds counts main-dimension herds by class.
	Referrer, Redirection, SimilarContent, Unknown, Malicious, Noise int
	Total                                                            int
}

// BuildMainDimensionStudy classifies day-0 main herds.
func BuildMainDimensionStudy(e *Env) (*MainDimensionStudy, error) {
	report, err := e.Run(0, 0.8, 1.0)
	if err != nil {
		return nil, err
	}
	st := &MainDimensionStudy{}
	inHerd := make(map[string]bool)
	for _, h := range report.Mined.Main {
		st.Total++
		mal, noise, niche, widget, chain := 0, 0, 0, 0, 0
		for _, s := range h.Servers {
			inHerd[s] = true
			truth := e.World.Truth.Servers[s]
			switch {
			case truth.Noise:
				noise++
			case truth.Campaign != "":
				mal++
			case strings.HasPrefix(s, "niche"):
				niche++
			case strings.HasPrefix(s, "widget") || s == "blogring.com":
				widget++
			case strings.HasPrefix(s, "shrt") || s == "chainlanding.com":
				chain++
			}
		}
		n := len(h.Servers)
		switch {
		case mal*2 > n:
			st.Malicious++
		case noise*2 > n:
			st.Noise++
		case widget*2 > n:
			st.Referrer++
		case chain*2 > n:
			st.Redirection++
		case niche*2 > n:
			st.SimilarContent++
		default:
			st.Unknown++
		}
	}
	for s := range report.Index.Servers {
		if !inHerd[s] {
			st.DroppedServers++
		}
	}
	return st, nil
}

// Render formats the study.
func (st *MainDimensionStudy) Render() string {
	return fmt.Sprintf(
		"Main dimension study (§V-C1): %d herds — referrer %d, redirection %d, similar-content %d, unknown %d, malicious %d, noise %d; %d servers dropped (no client correlation)\n",
		st.Total, st.Referrer, st.Redirection, st.SimilarContent, st.Unknown,
		st.Malicious, st.Noise, st.DroppedServers)
}
