package eval

import (
	"fmt"
	"sort"
	"strings"

	"smash/internal/preprocess"
	"smash/internal/stats"
)

// Figure6 reproduces the campaign-size and client-size distributions: CDFs
// of the number of servers and the number of clients per inferred campaign.
type Figure6 struct {
	CampaignSize *stats.Histogram
	ClientSize   *stats.Histogram
}

// BuildFigure6 computes the distributions over all inferred campaigns of
// day 0 at the paper's operating thresholds.
func BuildFigure6(e *Env) (*Figure6, error) {
	report, err := e.Run(0, 0.8, 1.0)
	if err != nil {
		return nil, err
	}
	f := &Figure6{CampaignSize: stats.NewHistogram(), ClientSize: stats.NewHistogram()}
	for _, c := range report.AllCampaigns() {
		f.CampaignSize.Add(len(c.Servers))
		f.ClientSize.Add(len(c.Clients))
	}
	return f, nil
}

// Render formats the two CDFs.
func (f *Figure6) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6: distribution of the client and campaign sizes\n")
	b.WriteString(f.CampaignSize.RenderCDF("  campaign size (servers)", 12))
	b.WriteString(f.ClientSize.RenderCDF("  client size (clients)", 12))
	fmt.Fprintf(&b, "  75%% of campaigns have <= %d servers\n", f.CampaignSize.Quantile(0.75))
	fmt.Fprintf(&b, "  75%% of campaigns have <= %d client(s)\n", f.ClientSize.Quantile(0.75))
	return b.String()
}

// Figure7 reproduces the persistent-vs-agile evolution study: with day 1 as
// the benchmark, classify each later day's detected servers as old servers,
// new servers with old clients (agile campaigns), or new servers with new
// clients (new campaigns); and clients as old or new.
type Figure7 struct {
	Days []Figure7Day
}

// Figure7Day is one day's accounting.
type Figure7Day struct {
	Day                int
	OldServers         int
	NewServerOldClient int
	NewServerNewClient int
	OldClients         int
	NewClients         int
}

// BuildFigure7 computes the evolution over a multi-day env.
func BuildFigure7(e *Env) (*Figure7, error) {
	if len(e.World.Days) < 2 {
		return nil, fmt.Errorf("eval: figure 7 needs a multi-day world, got %d day(s)", len(e.World.Days))
	}
	baseServers := make(map[string]bool)
	baseClients := make(map[string]bool)
	fig := &Figure7{}
	for d := 0; d < len(e.World.Days); d++ {
		report, err := e.Run(d, 0.8, 1.0)
		if err != nil {
			return nil, err
		}
		day := Figure7Day{Day: d + 1}
		seenClients := make(map[string]bool)
		for _, c := range report.AllCampaigns() {
			oldClient := false
			for _, cl := range c.Clients {
				if baseClients[cl] {
					oldClient = true
				}
				if !seenClients[cl] {
					seenClients[cl] = true
					if baseClients[cl] {
						day.OldClients++
					} else {
						day.NewClients++
					}
				}
			}
			for _, s := range c.Servers {
				switch {
				case baseServers[s]:
					day.OldServers++
				case oldClient:
					day.NewServerOldClient++
				default:
					day.NewServerNewClient++
				}
			}
		}
		if d == 0 {
			// Benchmark day: everything becomes the baseline.
			for _, c := range report.AllCampaigns() {
				for _, s := range c.Servers {
					baseServers[s] = true
				}
				for _, cl := range c.Clients {
					baseClients[cl] = true
				}
			}
		}
		fig.Days = append(fig.Days, day)
	}
	return fig, nil
}

// Render formats the per-day evolution.
func (f *Figure7) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7: persistent vs dynamic campaigns (benchmark = day 1)\n")
	b.WriteString("  day  oldSrv  newSrvOldCli  newSrvNewCli  oldCli  newCli\n")
	for _, d := range f.Days {
		fmt.Fprintf(&b, "  %3d  %6d  %12d  %12d  %6d  %6d\n",
			d.Day, d.OldServers, d.NewServerOldClient, d.NewServerNewClient,
			d.OldClients, d.NewClients)
	}
	return b.String()
}

// Figure8 reproduces the secondary-dimension effectiveness decomposition:
// the percentage of inferred servers per contributing dimension combination.
type Figure8 struct {
	Counts map[string]int
	Total  int
}

// BuildFigure8 computes the decomposition for day 0.
func BuildFigure8(e *Env) (*Figure8, error) {
	report, err := e.Run(0, 0.8, 1.0)
	if err != nil {
		return nil, err
	}
	counts := report.Decomposition()
	f := &Figure8{Counts: counts}
	for _, n := range counts {
		f.Total += n
	}
	return f, nil
}

// Fraction returns the share of servers inferred through exactly the given
// combination key (sorted dimension names joined by '+').
func (f *Figure8) Fraction(combo string) float64 {
	if f.Total == 0 {
		return 0
	}
	return float64(f.Counts[combo]) / float64(f.Total)
}

// Render formats the decomposition, largest combination first.
func (f *Figure8) Render() string {
	type kv struct {
		combo string
		n     int
	}
	items := make([]kv, 0, len(f.Counts))
	for c, n := range f.Counts {
		items = append(items, kv{c, n})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].n != items[j].n {
			return items[i].n > items[j].n
		}
		return items[i].combo < items[j].combo
	})
	var b strings.Builder
	b.WriteString("Figure 8: effectiveness of secondary dimensions\n")
	for _, it := range items {
		fmt.Fprintf(&b, "  %-28s %5d servers (%5.2f%%)\n", it.combo, it.n, 100*f.Fraction(it.combo))
	}
	return b.String()
}

// Figure9 reproduces the IDF distribution study (Appendix A): the CDF of
// server popularity for all servers and for IDS-confirmed malicious
// servers, justifying the threshold of 200.
type Figure9 struct {
	All       *stats.Histogram
	Malicious *stats.Histogram
	Threshold int
}

// BuildFigure9 computes the IDF histograms for day 0.
func BuildFigure9(e *Env) (*Figure9, error) {
	report, err := e.Run(0, 0.8, 1.0)
	if err != nil {
		return nil, err
	}
	_, l2013 := e.Labels(0)
	f := &Figure9{
		All:       preprocess.IDFHistogram(report.RawIndex),
		Malicious: stats.NewHistogram(),
		Threshold: preprocess.DefaultIDFThreshold,
	}
	for _, s := range l2013.Servers() {
		if info := report.RawIndex.Servers[s]; info != nil {
			f.Malicious.Add(info.IDF())
		}
	}
	return f, nil
}

// Render formats the IDF CDFs.
func (f *Figure9) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9: IDF distribution (Appendix A)\n")
	b.WriteString(f.All.RenderCDF("  all servers", 10))
	b.WriteString(f.Malicious.RenderCDF("  IDS-confirmed malicious servers", 10))
	fmt.Fprintf(&b, "  max malicious IDF = %d; chosen threshold = %d keeps %.1f%% of servers\n",
		f.Malicious.Max(), f.Threshold, 100*f.All.FractionAtMost(f.Threshold))
	return b.String()
}

// Figure10 reproduces the filename length distribution over IDS-confirmed
// malicious servers (Appendix B), justifying len = 25.
type Figure10 struct {
	Lengths      *stats.Histogram
	LenThreshold int
}

// BuildFigure10 computes the length histogram for day 0.
func BuildFigure10(e *Env) (*Figure10, error) {
	report, err := e.Run(0, 0.8, 1.0)
	if err != nil {
		return nil, err
	}
	_, l2013 := e.Labels(0)
	return &Figure10{
		Lengths:      preprocess.FilenameLengthHistogram(report.RawIndex, l2013.Servers()),
		LenThreshold: 25,
	}, nil
}

// Render formats the length CDF.
func (f *Figure10) Render() string {
	var b strings.Builder
	b.WriteString("Figure 10: length distribution of malicious filenames (Appendix B)\n")
	b.WriteString(f.Lengths.RenderCDF("  filename length", 10))
	fmt.Fprintf(&b, "  %.1f%% of filenames are <= %d characters; max length = %d\n",
		100*f.Lengths.FractionAtMost(f.LenThreshold), f.LenThreshold, f.Lengths.Max())
	return b.String()
}
