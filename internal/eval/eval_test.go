package eval

import (
	"strings"
	"sync"
	"testing"

	"smash/internal/synth"
)

// Shared small envs so the expensive pipeline runs once per population.
var (
	envOnce  sync.Once
	dayEnvG  *Env
	weekEnvG *Env
	envErr   error
)

func testEnvs(t *testing.T) (*Env, *Env) {
	t.Helper()
	envOnce.Do(func() {
		dayEnvG, envErr = NewEnvFromConfig(synth.Config{
			Name: "Data2011day", Seed: 21, Days: 1,
			Clients: 400, BenignServers: 1200, MeanRequests: 20,
		})
		if envErr != nil {
			return
		}
		weekEnvG, envErr = NewEnvFromConfig(synth.Config{
			Name: "Data2012week", Seed: 22, Days: 4,
			Clients: 350, BenignServers: 1000, MeanRequests: 15,
		})
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return dayEnvG, weekEnvG
}

func TestRunCachingAndBounds(t *testing.T) {
	day, _ := testEnvs(t)
	r1, err := day.Run(0, 0.8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := day.Run(0, 0.8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("report not cached")
	}
	if _, err := day.Run(5, 0.8, 1.0); err == nil {
		t.Error("out-of-range day accepted")
	}
}

func TestTableI(t *testing.T) {
	day, week := testEnvs(t)
	out := TableI(day, week)
	if !strings.Contains(out, "Data2011day") || !strings.Contains(out, "Data2012week-day1") {
		t.Errorf("TableI output missing datasets:\n%s", out)
	}
}

func TestTableIIShape(t *testing.T) {
	day, _ := testEnvs(t)
	tab, err := TableII(day)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Columns) != len(PaperThresholds) {
		t.Fatalf("columns = %v", tab.Columns)
	}
	smash := tab.Rows[rowSMASH]
	// Campaign counts must be non-increasing in the threshold.
	for i := 1; i < len(smash); i++ {
		if smash[i] > smash[i-1] {
			t.Errorf("campaigns increased with threshold: %v", smash)
		}
	}
	if smash[1] == 0 {
		t.Error("no campaigns at the operating threshold 0.8")
	}
	// FP updated <= FP at every threshold.
	for i := range tab.Rows[rowFP] {
		if tab.Rows[rowFPUpdated][i] > tab.Rows[rowFP][i] {
			t.Errorf("FP updated exceeds FP at column %d", i)
		}
	}
	// Verification rows partition SMASH: sum of verdict rows == SMASH.
	for i := range smash {
		sum := tab.Rows[rowIDS2012Total][i] + tab.Rows[rowIDS2013Total][i] +
			tab.Rows[rowIDS2012Partial][i] + tab.Rows[rowIDS2013Partial][i] +
			tab.Rows[rowBlacklist][i] + tab.Rows[rowSuspicious][i] + tab.Rows[rowFP][i]
		if sum != smash[i] {
			t.Errorf("verdicts don't partition campaigns at column %d: %d != %d", i, sum, smash[i])
		}
	}
	if tab.Render() == "" {
		t.Error("empty render")
	}
}

func TestTableIIIShape(t *testing.T) {
	day, _ := testEnvs(t)
	tab, err := TableIII(day)
	if err != nil {
		t.Fatal(err)
	}
	smash := tab.Rows[rowSMASH]
	for i := 1; i < len(smash); i++ {
		if smash[i] > smash[i-1] {
			t.Errorf("servers increased with threshold: %v", smash)
		}
	}
	// The headline claim: SMASH finds a multiple of what the oracles know.
	atOp := 1 // threshold 0.8 column
	oracle := tab.Rows[rowIDS2012Total][atOp] + tab.Rows[rowIDS2013Total][atOp] + tab.Rows[rowBlacklist][atOp]
	if smash[atOp] < 2*oracle {
		t.Errorf("SMASH servers (%d) not substantially above oracle coverage (%d)", smash[atOp], oracle)
	}
	// Server verdict rows partition SMASH.
	for i := range smash {
		sum := tab.Rows[rowIDS2012Total][i] + tab.Rows[rowIDS2013Total][i] +
			tab.Rows[rowBlacklist][i] + tab.Rows[rowNewServers][i] +
			tab.Rows[rowSuspicious][i] + tab.Rows[rowFP][i]
		if sum != smash[i] {
			t.Errorf("verdicts don't partition servers at column %d: %d != %d", i, sum, smash[i])
		}
	}
}

func TestFalsePositiveRateLow(t *testing.T) {
	day, _ := testEnvs(t)
	tab, err := TableIII(day)
	if err != nil {
		t.Fatal(err)
	}
	// At the operating threshold the FP-updated rate must be low relative
	// to the preprocessed server population (the paper reports 0.064%
	// against ~50k servers; our world is ~1000x smaller so we only bound
	// the rate loosely).
	report, err := day.Run(0, 0.8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	fpu := tab.Rows[rowFPUpdated][1]
	rate := float64(fpu) / float64(report.Preprocess.ServersAfter)
	if rate > 0.02 {
		t.Errorf("FP(updated) rate %.4f too high (%d servers)", rate, fpu)
	}
}

func TestTablesXIandXII(t *testing.T) {
	day, _ := testEnvs(t)
	tabXI, err := TableXI(day)
	if err != nil {
		t.Fatal(err)
	}
	if tabXI.Rows[rowSMASH][1] == 0 {
		t.Error("no single-client campaigns at threshold 0.8 despite planted lone-flux campaigns")
	}
	tabXII, err := TableXII(day)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(tabXII.Rows[rowSMASH]); i++ {
		if tabXII.Rows[rowSMASH][i] > tabXII.Rows[rowSMASH][i-1] {
			t.Errorf("single-client servers increased with threshold: %v", tabXII.Rows[rowSMASH])
		}
	}
}

func TestTableIV(t *testing.T) {
	day, _ := testEnvs(t)
	tab, err := TableIV(day)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows[string(synth.CatC2)][0] == 0 {
		t.Error("no C&C servers categorized")
	}
	total := 0
	for _, cells := range tab.Rows {
		total += cells[0]
	}
	if total == 0 {
		t.Fatal("empty Table IV")
	}
}

func TestWeekTables(t *testing.T) {
	_, week := testEnvs(t)
	tabV, err := TableV(week)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabV.Columns) != len(week.World.Days) {
		t.Fatalf("columns = %v", tabV.Columns)
	}
	nonzeroDays := 0
	for _, n := range tabV.Rows[rowSMASH] {
		if n > 0 {
			nonzeroDays++
		}
	}
	if nonzeroDays < len(week.World.Days) {
		t.Errorf("campaigns found on only %d/%d days", nonzeroDays, len(week.World.Days))
	}
	tabVI, err := TableVI(week)
	if err != nil {
		t.Fatal(err)
	}
	for d, n := range tabVI.Rows[rowSMASH] {
		if n == 0 {
			t.Errorf("no servers on day %d", d+1)
		}
	}
}

func TestFigure6(t *testing.T) {
	day, _ := testEnvs(t)
	fig, err := BuildFigure6(day)
	if err != nil {
		t.Fatal(err)
	}
	if fig.CampaignSize.Total() == 0 {
		t.Fatal("no campaigns in figure 6")
	}
	if !strings.Contains(fig.Render(), "75%") {
		t.Error("render missing quantile line")
	}
}

func TestFigure7(t *testing.T) {
	day, week := testEnvs(t)
	if _, err := BuildFigure7(day); err == nil {
		t.Error("figure 7 on a 1-day world should error")
	}
	fig, err := BuildFigure7(week)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Days) != len(week.World.Days) {
		t.Fatalf("days = %d", len(fig.Days))
	}
	d0 := fig.Days[0]
	if d0.NewClients == 0 || d0.OldClients != 0 {
		t.Errorf("benchmark day accounting wrong: %+v", d0)
	}
	// The agile fluxnet campaign guarantees new-server-old-client servers
	// on later days; the persistent campaigns guarantee old servers.
	sawAgile, sawPersistent := false, false
	for _, d := range fig.Days[1:] {
		if d.NewServerOldClient > 0 {
			sawAgile = true
		}
		if d.OldServers > 0 {
			sawPersistent = true
		}
	}
	if !sawAgile {
		t.Error("no agile (new server, old client) servers detected")
	}
	if !sawPersistent {
		t.Error("no persistent (old) servers detected")
	}
	if fig.Render() == "" {
		t.Error("empty render")
	}
}

func TestFigure8(t *testing.T) {
	day, _ := testEnvs(t)
	fig, err := BuildFigure8(day)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Total == 0 {
		t.Fatal("empty decomposition")
	}
	// URI file must be the dominant dimension (paper: 53.71% alone plus
	// combinations).
	fileShare := 0.0
	for combo := range fig.Counts {
		if strings.Contains(combo, "urifile") {
			fileShare += fig.Fraction(combo)
		}
	}
	if fileShare < 0.5 {
		t.Errorf("urifile dimension share %.2f, want >= 0.5", fileShare)
	}
	if fig.Render() == "" {
		t.Error("empty render")
	}
}

func TestFigure9(t *testing.T) {
	day, _ := testEnvs(t)
	fig, err := BuildFigure9(day)
	if err != nil {
		t.Fatal(err)
	}
	if fig.All.Total() == 0 || fig.Malicious.Total() == 0 {
		t.Fatal("empty IDF histograms")
	}
	// The threshold must keep nearly all servers (paper: 99%).
	if keep := fig.All.FractionAtMost(fig.Threshold); keep < 0.95 {
		t.Errorf("IDF threshold keeps only %.2f of servers", keep)
	}
	// Malicious servers are unpopular: their IDF stays far below the cut.
	if fig.Malicious.Max() > fig.Threshold {
		t.Errorf("malicious IDF max %d exceeds threshold %d", fig.Malicious.Max(), fig.Threshold)
	}
}

func TestFigure10(t *testing.T) {
	day, _ := testEnvs(t)
	fig, err := BuildFigure10(day)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Lengths.Total() == 0 {
		t.Fatal("empty length histogram")
	}
	if frac := fig.Lengths.FractionAtMost(fig.LenThreshold); frac < 0.5 {
		t.Errorf("only %.2f of malicious filenames below len threshold", frac)
	}
}

func TestCaseStudies(t *testing.T) {
	day, _ := testEnvs(t)
	for _, name := range PaperCaseStudies() {
		t.Run(name, func(t *testing.T) {
			cs, err := BuildCaseStudy(day, name)
			if err != nil {
				t.Fatal(err)
			}
			if cs.Active == 0 {
				t.Fatal("campaign inactive")
			}
			if cs.Found == 0 {
				t.Errorf("SMASH found none of %q's %d servers", name, cs.Active)
			}
			if cs.Render() == "" {
				t.Error("empty render")
			}
		})
	}
	if _, err := BuildCaseStudy(day, "no-such-campaign"); err == nil {
		t.Error("unknown campaign accepted")
	}
}

func TestZeusZeroDayCaseStudy(t *testing.T) {
	day, _ := testEnvs(t)
	cs, err := BuildCaseStudy(day, "zeus")
	if err != nil {
		t.Fatal(err)
	}
	if cs.IDS2012 != 0 {
		t.Errorf("zeus should have zero IDS2012 coverage, got %d", cs.IDS2012)
	}
	if cs.IDS2013 != cs.Active {
		t.Errorf("zeus IDS2013 coverage %d/%d, want full", cs.IDS2013, cs.Active)
	}
	if cs.Found < cs.Active/2 {
		t.Errorf("SMASH found %d/%d zeus servers", cs.Found, cs.Active)
	}
}

func TestIframeHolisticView(t *testing.T) {
	// Table IX's point: SMASH recovers the iframe victim herd almost
	// entirely while the IDS labels only a handful.
	day, _ := testEnvs(t)
	cs, err := BuildCaseStudy(day, "iframe-inject")
	if err != nil {
		t.Fatal(err)
	}
	if cs.IDS2013 >= cs.Found {
		t.Errorf("IDS labels (%d) should be far below SMASH findings (%d)", cs.IDS2013, cs.Found)
	}
	if cs.Found < cs.Active*5/10 {
		t.Errorf("iframe recall too low: %d/%d", cs.Found, cs.Active)
	}
}

func TestRecall(t *testing.T) {
	day, _ := testEnvs(t)
	report, err := day.Run(0, 0.8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rec := day.Recall(0, report)
	if rec.TruthServers == 0 {
		t.Fatal("no truth servers")
	}
	if rec.Detected <= rec.IDSDetected {
		t.Errorf("SMASH (%d) should exceed IDS coverage (%d)", rec.Detected, rec.IDSDetected)
	}
	if rec.Detected <= rec.BlacklistDetected {
		t.Errorf("SMASH (%d) should exceed blacklist coverage (%d)", rec.Detected, rec.BlacklistDetected)
	}
}

func TestFalseNegatives(t *testing.T) {
	day, _ := testEnvs(t)
	missed, err := FalseNegatives(day, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Whatever is missed must genuinely be absent from the report.
	report, err := day.Run(0, 0.8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	detected := make(map[string]bool)
	for _, c := range report.AllCampaigns() {
		for _, s := range c.Servers {
			detected[s] = true
		}
	}
	for threat, servers := range missed {
		for _, s := range servers {
			if detected[s] {
				t.Errorf("threat %s server %s reported as FN but was detected", threat, s)
			}
		}
	}
}

func TestMainDimensionStudy(t *testing.T) {
	day, _ := testEnvs(t)
	st, err := BuildMainDimensionStudy(day)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total == 0 {
		t.Fatal("no main herds")
	}
	if st.Malicious == 0 {
		t.Error("no malicious main herds found")
	}
	if st.SimilarContent == 0 {
		t.Error("niche clusters not visible in main dimension")
	}
	if st.Render() == "" {
		t.Error("empty render")
	}
}

func TestVerdictStrings(t *testing.T) {
	verdicts := []Verdict{VerdictIDS2012Total, VerdictIDS2013Total,
		VerdictIDS2012Partial, VerdictIDS2013Partial, VerdictBlacklist,
		VerdictNewServer, VerdictSuspicious, VerdictFP, Verdict(0)}
	for _, v := range verdicts {
		if v.String() == "" {
			t.Errorf("verdict %d has empty string", v)
		}
	}
}
