package eval

import (
	"testing"

	"smash/internal/synth"
)

// evasionConfig builds a world with one strongly-correlated campaign and
// one evading variant, plus enough background to make evasion meaningful.
func evasionConfig(seed int64, evader synth.CampaignSpec) synth.Config {
	return synth.Config{
		Name: "evasion", Seed: seed, Days: 1,
		Clients: 400, BenignServers: 1200, MeanRequests: 20,
		Campaigns: []synth.CampaignSpec{
			{
				Name: "honest", Kind: synth.KindDomainFlux, Servers: 12, Bots: 3,
				SharedIP: true, SharedWhois: true,
			},
			evader,
		},
	}
}

func detectedOf(t *testing.T, env *Env, campaign string) (int, int) {
	t.Helper()
	report, err := env.Run(0, 0.8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	detected := make(map[string]bool)
	for _, c := range report.AllCampaigns() {
		for _, s := range c.Servers {
			detected[s] = true
		}
	}
	ct := env.World.Truth.Campaigns[campaign]
	found := 0
	for _, s := range ct.Servers {
		if detected[s] {
			found++
		}
	}
	return found, len(ct.Servers)
}

// TestEvasionMainDimension reproduces the §VI argument: bots spraying the
// campaign's URI file at random benign domains cannot hide the campaign —
// the benign domains keep their own visitors, so client similarity still
// isolates the malicious pool.
func TestEvasionMainDimension(t *testing.T) {
	env, err := NewEnvFromConfig(evasionConfig(31, synth.CampaignSpec{
		Name: "evader", Kind: synth.KindDomainFlux, Servers: 12, Bots: 3,
		SharedIP: true, SharedWhois: true, EvadeMain: true,
	}))
	if err != nil {
		t.Fatal(err)
	}
	found, total := detectedOf(t, env, "evader")
	if found < total*3/4 {
		t.Errorf("main-dimension evasion succeeded: only %d/%d servers detected", found, total)
	}
	// The benign decoys must not be swept in: count non-campaign,
	// non-noise detections.
	report, err := env.Run(0, 0.8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	fp := 0
	for _, c := range report.AllCampaigns() {
		for _, s := range c.Servers {
			st, ok := env.World.Truth.Servers[s]
			if !ok || (st.Campaign == "" && !st.Noise) {
				fp++
			}
		}
	}
	if fp > 5 {
		t.Errorf("evasion dragged %d benign decoys into campaigns", fp)
	}
}

// TestEvasionFileDimension: randomizing the handler filename per server
// defeats the URI-file dimension, but a domain-flux pool still shares IPs
// and whois — two secondary dimensions remain and the campaign is caught,
// matching the paper's "non-trivial to simultaneously evade all
// dimensions".
func TestEvasionFileDimension(t *testing.T) {
	env, err := NewEnvFromConfig(evasionConfig(32, synth.CampaignSpec{
		Name: "evader", Kind: synth.KindDomainFlux, Servers: 12, Bots: 3,
		SharedIP: true, SharedWhois: true, RandomFilePerServer: true,
	}))
	if err != nil {
		t.Fatal(err)
	}
	found, total := detectedOf(t, env, "evader")
	if found < total/2 {
		t.Errorf("file evasion defeated SMASH despite shared IP+whois: %d/%d", found, total)
	}
	// The file dimension must NOT be the one that caught them.
	report, err := env.Run(0, 0.8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	ct := env.World.Truth.Campaigns["evader"]
	for _, s := range ct.Servers {
		if sc := report.Scores[s]; sc != nil {
			for _, d := range sc.Dimensions {
				if d == "urifile" {
					t.Fatalf("server %s scored via urifile despite per-server random names", s)
				}
			}
		}
	}
}

// TestEvasionAllSecondary: an attacker who randomizes filenames AND avoids
// shared IPs AND shared whois has no secondary dimension left, so SMASH
// misses the campaign — the paper's stated limitation, and the cost the
// attacker pays is per-server infrastructure.
func TestEvasionAllSecondary(t *testing.T) {
	env, err := NewEnvFromConfig(evasionConfig(33, synth.CampaignSpec{
		Name: "evader", Kind: synth.KindDomainFlux, Servers: 12, Bots: 3,
		RandomFilePerServer: true, // no SharedIP, no SharedWhois
	}))
	if err != nil {
		t.Fatal(err)
	}
	found, _ := detectedOf(t, env, "evader")
	if found != 0 {
		t.Logf("note: %d evader servers still detected (incidental correlation)", found)
	}
	// The honest campaign in the same world must still be caught.
	honestFound, honestTotal := detectedOf(t, env, "honest")
	if honestFound < honestTotal*3/4 {
		t.Errorf("honest campaign suffered from the evader's presence: %d/%d", honestFound, honestTotal)
	}
}
