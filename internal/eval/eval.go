// Package eval reproduces the paper's evaluation (§V): it runs the SMASH
// pipeline over synthetic worlds standing in for the ISP datasets, verifies
// inferred campaigns and servers against the simulated IDS snapshots and
// blacklists exactly as §V-A prescribes, and renders every table and figure
// of the paper (Tables I-VI, XI, XII; Figures 6-10; the four case studies).
//
// The classification ladder mirrors the paper:
//
//	IDS total   — every campaign server labelled by the IDS snapshot
//	IDS partial — at least one server labelled
//	Blacklist   — no IDS label, but blacklist-confirmed servers
//	Suspicious  — no confirmation, but at least half the servers answer
//	              with error statuses or no longer exist
//	FP          — everything else (an upper bound, per the paper)
//	FP updated  — FP after removing the Torrent/TeamViewer noise classes
package eval

import (
	"fmt"

	"smash/internal/campaign"
	"smash/internal/core"
	"smash/internal/ids"
	"smash/internal/synth"
	"smash/internal/trace"
	"smash/internal/webprobe"
)

// Env bundles a generated world with its oracles and caches pipeline runs.
type Env struct {
	// World is the synthetic environment under evaluation.
	World *synth.World
	// Oracles are the ground-truth labelling services.
	Oracles *synth.Oracles
	// ExtraOptions are appended to every detector Run builds — the hook
	// smashbench uses to install a core.TimingObserver across all
	// experiments. Set before the first Run; cached reports are not rerun.
	ExtraOptions []core.Option

	reports map[reportKey]*core.Report
	labels  map[int]labelPair // day -> IDS scan results
}

type reportKey struct {
	day    int
	thresh float64
	single float64
}

type labelPair struct {
	l2012, l2013 ids.Labels
}

// NewEnv generates a world from one of the paper's dataset profiles
// ("Data2011day", "Data2012day", "Data2012week") and builds its oracles.
func NewEnv(profile string, seed int64) (*Env, error) {
	return NewEnvFromConfig(synth.DayProfile(profile, seed))
}

// NewEnvFromConfig generates a world from an explicit config (used by tests
// to run at reduced scale).
func NewEnvFromConfig(cfg synth.Config) (*Env, error) {
	w, err := synth.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("eval: generate world: %w", err)
	}
	return NewEnvFromWorld(w), nil
}

// NewEnvFromWorld wraps an already-generated world with a fresh evaluation
// cache. Benchmarks use this to amortize world generation across iterations
// while still measuring the pipeline.
func NewEnvFromWorld(w *synth.World) *Env {
	return &Env{
		World:   w,
		Oracles: synth.BuildOracles(w),
		reports: make(map[reportKey]*core.Report),
		labels:  make(map[int]labelPair),
	}
}

// Run executes (with caching) the detector on one day at the given
// thresholds. singleThresh <= 0 uses the paper's 1.0.
func (e *Env) Run(day int, thresh, singleThresh float64) (*core.Report, error) {
	if singleThresh <= 0 {
		singleThresh = 1.0
	}
	key := reportKey{day: day, thresh: thresh, single: singleThresh}
	if r, ok := e.reports[key]; ok {
		return r, nil
	}
	if day < 0 || day >= len(e.World.Days) {
		return nil, fmt.Errorf("eval: day %d out of range [0,%d)", day, len(e.World.Days))
	}
	opts := []core.Option{
		core.WithSeed(e.World.Config.Seed),
		core.WithWhois(e.World.Whois),
		core.WithProber(e.World.Prober),
		core.WithThreshold(thresh),
		core.WithSingleClientThreshold(singleThresh),
	}
	opts = append(opts, e.ExtraOptions...)
	report, err := core.New(opts...).Run(e.World.Days[day])
	if err != nil {
		return nil, fmt.Errorf("eval: run day %d: %w", day, err)
	}
	e.reports[key] = report
	return report, nil
}

// Labels returns (with caching) the IDS2012/IDS2013 scan labels for a day.
func (e *Env) Labels(day int) (ids.Labels, ids.Labels) {
	if lp, ok := e.labels[day]; ok {
		return lp.l2012, lp.l2013
	}
	idx := trace.BuildIndex(e.World.Days[day])
	lp := labelPair{
		l2012: e.Oracles.IDS2012.Scan(idx),
		l2013: e.Oracles.IDS2013.Scan(idx),
	}
	e.labels[day] = lp
	return lp.l2012, lp.l2013
}

// Verdict is the verification outcome for a campaign or server.
type Verdict int

// Verdicts, in the paper's precedence order.
const (
	VerdictIDS2012Total Verdict = iota + 1
	VerdictIDS2013Total
	VerdictIDS2012Partial
	VerdictIDS2013Partial
	VerdictBlacklist
	VerdictNewServer // servers only: confirmed via shared patterns
	VerdictSuspicious
	VerdictFP
)

// String returns the verdict's display name.
func (v Verdict) String() string {
	switch v {
	case VerdictIDS2012Total:
		return "IDS 2012 total"
	case VerdictIDS2013Total:
		return "IDS 2013 total"
	case VerdictIDS2012Partial:
		return "IDS 2012 partial"
	case VerdictIDS2013Partial:
		return "IDS 2013 partial"
	case VerdictBlacklist:
		return "Blacklist"
	case VerdictNewServer:
		return "New Servers"
	case VerdictSuspicious:
		return "Suspicious"
	case VerdictFP:
		return "False Positives"
	default:
		return "unknown"
	}
}

// classifier carries the verification context for one report.
type classifier struct {
	l2012, l2013 ids.Labels
	bl           *ids.BlacklistSet
	idx          *trace.Index
	prober       webprobe.Prober
	truth        *synth.Truth
}

func (e *Env) classifier(day int, report *core.Report) *classifier {
	l2012, l2013 := e.Labels(day)
	return &classifier{
		l2012: l2012, l2013: l2013,
		bl:     e.Oracles.Blacklists,
		idx:    report.Index,
		prober: e.World.Prober,
		truth:  e.World.Truth,
	}
}

// serverSuspicious implements the paper's liveness/error heuristic: a server
// is "suspicious-confirmable" when its traffic is error-dominated or the
// domain no longer exists.
func (c *classifier) serverSuspicious(server string) bool {
	if info := c.idx.Servers[server]; info != nil && info.ErrorFraction() >= 0.5 {
		return true
	}
	return !c.prober.Exists(server)
}

// campaignVerdict classifies one inferred campaign (§V-A1).
func (c *classifier) campaignVerdict(cp *campaign.Campaign) Verdict {
	n := len(cp.Servers)
	in2012, in2013, blacklisted, suspicious := 0, 0, 0, 0
	for _, s := range cp.Servers {
		if c.l2012.Detected(s) {
			in2012++
		}
		if c.l2013.Detected(s) {
			in2013++
		}
		if c.bl.Confirmed(s) {
			blacklisted++
		}
		if c.serverSuspicious(s) {
			suspicious++
		}
	}
	switch {
	case in2012 == n:
		return VerdictIDS2012Total
	case in2013 == n:
		return VerdictIDS2013Total
	case in2012 > 0:
		return VerdictIDS2012Partial
	case in2013 > 0:
		return VerdictIDS2013Partial
	case blacklisted > 0:
		return VerdictBlacklist
	case suspicious*2 >= n:
		return VerdictSuspicious
	default:
		return VerdictFP
	}
}

// campaignIsNoise reports whether a majority of the campaign's servers
// belong to the ground-truth noise classes (Torrent / TeamViewer) — the
// paper's "FP (Updated)" adjustment removes these two known-benign classes.
func (c *classifier) campaignIsNoise(cp *campaign.Campaign) bool {
	noise := 0
	for _, s := range cp.Servers {
		if c.truth.Servers[s].Noise {
			noise++
		}
	}
	return noise*2 > len(cp.Servers)
}

// serverVerdicts classifies every server of a campaign (§V-A2): IDS2012,
// IDS2013 (new signatures only), Blacklist, New Server (pattern match with
// a confirmed server of the same campaign), Suspicious, FP.
func (c *classifier) serverVerdicts(cp *campaign.Campaign, campaignVerdict Verdict) map[string]Verdict {
	out := make(map[string]Verdict, len(cp.Servers))
	// First pass: direct confirmations.
	var confirmed []string
	for _, s := range cp.Servers {
		switch {
		case c.l2012.Detected(s):
			out[s] = VerdictIDS2012Total
			confirmed = append(confirmed, s)
		case c.l2013.Detected(s):
			out[s] = VerdictIDS2013Total
			confirmed = append(confirmed, s)
		case c.bl.Confirmed(s):
			out[s] = VerdictBlacklist
			confirmed = append(confirmed, s)
		}
	}
	// Second pass: unconfirmed servers become New Servers when they share
	// a URI file, User-Agent or query pattern with a confirmed campaign
	// member; else Suspicious (in suspicious campaigns) or FP.
	for _, s := range cp.Servers {
		if _, done := out[s]; done {
			continue
		}
		if c.sharesPattern(s, confirmed) {
			out[s] = VerdictNewServer
			continue
		}
		if campaignVerdict == VerdictSuspicious {
			out[s] = VerdictSuspicious
			continue
		}
		out[s] = VerdictFP
	}
	return out
}

// sharesPattern reports whether server s shares a URI file, User-Agent or
// query-parameter pattern with any of the confirmed servers.
func (c *classifier) sharesPattern(s string, confirmed []string) bool {
	info := c.idx.Servers[s]
	if info == nil {
		return false
	}
	for _, ref := range confirmed {
		refInfo := c.idx.Servers[ref]
		if refInfo == nil {
			continue
		}
		for f := range info.Files {
			if _, ok := refInfo.Files[f]; ok {
				return true
			}
		}
		for ua := range info.UserAgents {
			if _, ok := refInfo.UserAgents[ua]; ok {
				return true
			}
		}
		for q := range info.Queries {
			if _, ok := refInfo.Queries[q]; ok {
				return true
			}
		}
	}
	return false
}

// GroundTruthRecall computes how many ground-truth malicious servers the
// report detected, for the headline "N× the IDS+blacklist" comparison.
type GroundTruthRecall struct {
	// TruthServers is the number of ground-truth campaign servers active
	// in the evaluated traffic.
	TruthServers int
	// Detected is how many of those SMASH reported.
	Detected int
	// IDSDetected / BlacklistDetected count oracle coverage of the same
	// population (2013 signatures).
	IDSDetected, BlacklistDetected int
}

// Recall computes ground-truth recall for a day's report.
func (e *Env) Recall(day int, report *core.Report) GroundTruthRecall {
	_, l2013 := e.Labels(day)
	detected := make(map[string]bool)
	for _, c := range report.AllCampaigns() {
		for _, s := range c.Servers {
			detected[s] = true
		}
	}
	var rec GroundTruthRecall
	for s, st := range e.World.Truth.Servers {
		if st.Campaign == "" || st.Noise {
			continue
		}
		if _, active := report.RawIndex.Servers[s]; !active {
			continue // not active this day (agile rotation)
		}
		rec.TruthServers++
		if detected[s] {
			rec.Detected++
		}
		if l2013.Detected(s) {
			rec.IDSDetected++
		}
		if e.Oracles.Blacklists.Confirmed(s) {
			rec.BlacklistDetected++
		}
	}
	return rec
}
