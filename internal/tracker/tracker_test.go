package tracker

import (
	"encoding/json"
	"strings"
	"testing"

	"smash/internal/campaign"
	"smash/internal/core"
	"smash/internal/synth"
)

// weekReports runs the detector over a small multi-day world once.
func weekReports(t *testing.T) (*synth.World, []*core.Report) {
	t.Helper()
	w, err := synth.Generate(synth.Config{
		Name: "trackertest", Seed: 17, Days: 4,
		Clients: 350, BenignServers: 1000, MeanRequests: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	var reports []*core.Report
	for _, day := range w.Days {
		det := core.New(core.WithSeed(5), core.WithWhois(w.Whois), core.WithProber(w.Prober))
		r, err := det.Run(day)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, r)
	}
	return w, reports
}

// lineageFor finds the lineage containing the most servers of a ground
// truth campaign.
func lineageFor(tk *Tracker, servers []string) *Lineage {
	var best *Lineage
	bestN := 0
	for _, l := range tk.Lineages() {
		n := 0
		for _, s := range servers {
			if l.Servers[s] > 0 {
				n++
			}
		}
		if n > bestN {
			best, bestN = l, n
		}
	}
	return best
}

func TestTrackerLinksAcrossDays(t *testing.T) {
	w, reports := weekReports(t)
	tk := New()
	for _, r := range reports {
		matches := tk.Observe(r)
		if len(matches) != len(r.AllCampaigns()) {
			t.Fatalf("matches = %d, campaigns = %d", len(matches), len(r.AllCampaigns()))
		}
	}
	if tk.Day() != len(reports) {
		t.Errorf("Day = %d", tk.Day())
	}

	// The agile fluxnet campaign: one lineage spanning all days, flagged
	// agile, accumulating a rotated server population.
	flux := w.Truth.Campaigns["fluxnet"]
	l := lineageFor(tk, flux.Servers)
	if l == nil {
		t.Fatal("fluxnet has no lineage")
	}
	if l.DaysActive < len(reports) {
		t.Errorf("fluxnet lineage active %d days, want %d", l.DaysActive, len(reports))
	}
	if !l.Agile() {
		t.Errorf("fluxnet lineage not agile: %s", l.Render())
	}
	if l.ServerCount() < flux.Spec.Servers*2 {
		t.Errorf("fluxnet lineage accumulated only %d servers over %d days",
			l.ServerCount(), len(reports))
	}

	// Sality is persistent: one lineage, same servers daily, not agile.
	sality := w.Truth.Campaigns["sality"]
	sl := lineageFor(tk, sality.Servers)
	if sl == nil {
		t.Fatal("sality has no lineage")
	}
	if sl.Agile() {
		t.Errorf("persistent sality flagged agile: %s", sl.Render())
	}
	if sl.DaysActive < len(reports)-1 {
		t.Errorf("sality active only %d days", sl.DaysActive)
	}

	// The late riser appears on day 3 (index 2).
	late := w.Truth.Campaigns["late-riser"]
	ll := lineageFor(tk, late.Servers)
	if ll == nil {
		t.Fatal("late-riser has no lineage")
	}
	if ll.FirstDay < 2 {
		t.Errorf("late-riser FirstDay = %d, want >= 2", ll.FirstDay)
	}
}

func TestTrackerSummary(t *testing.T) {
	_, reports := weekReports(t)
	tk := New()
	for _, r := range reports {
		tk.Observe(r)
	}
	out := tk.Summary()
	if !strings.Contains(out, "lineage") {
		t.Errorf("summary = %q", out)
	}
	if !strings.Contains(out, "agile") {
		t.Error("summary missing agile lineages")
	}
}

func TestTrackerSameDayCampaignsStaySeparate(t *testing.T) {
	_, reports := weekReports(t)
	tk := New()
	matches := tk.Observe(reports[0])
	seen := make(map[*Lineage]int)
	for _, m := range matches {
		seen[m.Lineage]++
		if m.Kind != MatchNew {
			t.Errorf("day-0 campaign matched kind %v", m.Kind)
		}
	}
	for l, n := range seen {
		if n > 1 {
			t.Errorf("lineage %d claimed by %d same-day campaigns", l.ID, n)
		}
	}
}

func TestMatchKindStrings(t *testing.T) {
	for _, m := range []MatchKind{MatchClients, MatchServers, MatchNew, MatchKind(0)} {
		if m.String() == "" {
			t.Errorf("kind %d empty", m)
		}
	}
}

// report builds a one-campaign report from raw server/client sets.
func report(servers, clients []string) *core.Report {
	return &core.Report{Campaigns: []campaign.Campaign{{
		Servers: servers, Clients: clients, Kind: campaign.KindCommunication,
	}}}
}

func TestRetirementPolicy(t *testing.T) {
	tk := New()
	tk.RetireAfter = 2
	servers := []string{"a.test", "b.test"}
	clients := []string{"c1", "c2"}
	tk.Observe(report(servers, clients)) // day 0: lineage 0 born
	empty := &core.Report{}
	tk.Observe(empty) // day 1: idle 1
	tk.Observe(empty) // day 2: idle 2 — still live
	if got := tk.Retired(); got != 0 {
		t.Fatalf("retired after %d idle days = %d, want 0", 2, got)
	}
	tk.Observe(empty) // day 3: idle 3 > RetireAfter — retired
	if got := tk.Retired(); got != 1 {
		t.Fatalf("retired = %d, want 1", got)
	}

	// The same clients return: a retired lineage must not match, so a new
	// lineage is born — but the retired one stays in Lineages.
	matches := tk.Observe(report(servers, clients))
	if matches[0].Kind != MatchNew {
		t.Errorf("campaign matched retired lineage: %v", matches[0].Kind)
	}
	if len(tk.Lineages()) != 2 {
		t.Errorf("lineages = %d, want 2 (retired one kept)", len(tk.Lineages()))
	}
	if !tk.Lineages()[0].Retired {
		t.Error("lineage 0 should stay retired")
	}
	if tk.Lineages()[0].Servers != nil || tk.Lineages()[0].Clients != nil {
		t.Error("retired lineage kept member maps")
	}
	if tk.Lineages()[0].ServerCount() != 2 || tk.Lineages()[0].ClientCount() != 2 {
		t.Errorf("retired lineage lost totals: %s", tk.Lineages()[0].Render())
	}
	sum := tk.Summary()
	if !strings.Contains(sum, "(1 retired)") || !strings.Contains(sum, "(retired)") {
		t.Errorf("summary does not report retirement:\n%s", sum)
	}
}

func TestRetirementKeepsActiveLineagesLive(t *testing.T) {
	tk := New()
	tk.RetireAfter = 3
	servers := []string{"a.test", "b.test"}
	clients := []string{"c1", "c2"}
	for i := 0; i < 10; i++ {
		matches := tk.Observe(report(servers, clients))
		if matches[0].Lineage.ID != 0 {
			t.Fatalf("day %d: active lineage retired or lost", i)
		}
	}
	if tk.Retired() != 0 {
		t.Errorf("active lineage retired")
	}
}

func TestStateRoundTrip(t *testing.T) {
	_, reports := weekReports(t)
	tk := New()
	tk.RetireAfter = 7
	for _, r := range reports[:2] {
		tk.Observe(r)
	}

	// JSON round trip through the serialized state must reproduce the
	// tracker exactly: same summary now, same assignments later.
	data, err := json.Marshal(tk.State())
	if err != nil {
		t.Fatal(err)
	}
	var s State
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	tk2 := FromState(s)
	if tk2.Summary() != tk.Summary() {
		t.Errorf("summary diverged:\n%s\nvs:\n%s", tk2.Summary(), tk.Summary())
	}
	if tk2.RetireAfter != 7 {
		t.Errorf("RetireAfter = %d", tk2.RetireAfter)
	}
	for _, r := range reports[2:] {
		tk.Observe(r)
		tk2.Observe(r)
	}
	if tk2.Summary() != tk.Summary() {
		t.Errorf("post-restore observations diverged:\n%s\nvs:\n%s", tk2.Summary(), tk.Summary())
	}
}

func TestStateIsDeepCopy(t *testing.T) {
	tk := New()
	tk.Observe(report([]string{"a.test"}, []string{"c1"}))
	s := tk.State()
	s.Lineages[0].Servers["mutant.test"] = 9
	s.Lineages[0].ID = 99
	if tk.Lineages()[0].Servers["mutant.test"] != 0 || tk.Lineages()[0].ID != 0 {
		t.Error("State shares memory with the tracker")
	}
	tk2 := FromState(s)
	s.Lineages[0].Servers["second.test"] = 1
	if tk2.Lineages()[0].Servers["second.test"] != 0 {
		t.Error("FromState shares memory with its input")
	}
}

func TestLineageAgileLogic(t *testing.T) {
	l := &Lineage{DaysActive: 1}
	if l.Agile() {
		t.Error("single-day lineage cannot be agile")
	}
	l = &Lineage{DaysActive: 4, AgileDays: 3}
	if !l.Agile() {
		t.Error("mostly-churning lineage should be agile")
	}
	l = &Lineage{DaysActive: 4, AgileDays: 0}
	if l.Agile() {
		t.Error("stable lineage flagged agile")
	}
}
