// Package tracker implements SMASH's daily-operation layer. The paper
// positions SMASH as a system that "can be run everyday to detect daily
// malicious activities" (§I) and studies how campaigns evolve across days
// (§V-B): persistent campaigns keep their server pools, agile campaigns
// rotate servers daily while the infected client population stays put.
//
// Tracker consumes one pipeline Report per day and links each inferred
// campaign to a cross-day lineage by client-set overlap (the main
// dimension's insight applied across time): rotating domains do not change
// who is infected. Each lineage records its server/client history and
// whether it behaves agilely.
package tracker

import (
	"fmt"
	"sort"
	"strings"

	"smash/internal/campaign"
	"smash/internal/core"
)

// Lineage is one cross-day campaign identity. The JSON shape is stable:
// it is the unit of persistence for internal/store snapshots and the
// payload of the /v1/lineages API.
type Lineage struct {
	// ID is the stable tracker-assigned identity.
	ID int `json:"id"`
	// FirstDay and LastDay are 0-based observation days (inclusive).
	FirstDay int `json:"firstDay"`
	LastDay  int `json:"lastDay"`
	// DaysActive counts days with at least one matched campaign.
	DaysActive int `json:"daysActive"`
	// Servers maps server -> number of days it appeared. Nil once the
	// lineage is retired (member history is pruned; totals remain).
	Servers map[string]int `json:"servers,omitempty"`
	// Clients maps client -> number of days it appeared. Nil once
	// retired.
	Clients map[string]int `json:"clients,omitempty"`
	// ServerTotal and ClientTotal count distinct members ever seen; they
	// survive retirement's map pruning.
	ServerTotal int `json:"serverTotal,omitempty"`
	ClientTotal int `json:"clientTotal,omitempty"`
	// AgileDays counts days the lineage matched by clients while its
	// server set had churned (< 50% overlap with everything seen before).
	AgileDays int `json:"agileDays,omitempty"`
	// Kind is the most recent activity classification.
	Kind campaign.Kind `json:"kind"`
	// Retired marks a lineage idle beyond the tracker's RetireAfter
	// policy: it is excluded from matching but kept for reporting. A
	// campaign returning after retirement starts a new lineage.
	Retired bool `json:"retired,omitempty"`
}

// Agile reports whether the lineage rotated servers on most matched days —
// the paper's "agile malicious campaign".
func (l *Lineage) Agile() bool {
	return l.DaysActive > 1 && l.AgileDays*2 >= l.DaysActive-1
}

// ActiveIn reports whether the lineage's observed span [FirstDay, LastDay]
// overlaps the inclusive window-sequence range [from, to]. A negative
// bound is unbounded on that side — the timeline/filter accessor used by
// the analytics plane's active-in-range lineage queries.
func (l *Lineage) ActiveIn(from, to int) bool {
	if from >= 0 && l.LastDay < from {
		return false
	}
	if to >= 0 && l.FirstDay > to {
		return false
	}
	return true
}

// ServerCount returns the number of distinct servers ever seen.
func (l *Lineage) ServerCount() int { return l.ServerTotal }

// ClientCount returns the number of distinct clients ever seen.
func (l *Lineage) ClientCount() int { return l.ClientTotal }

// Render formats the lineage summary.
func (l *Lineage) Render() string {
	kind := "persistent"
	if l.Agile() {
		kind = "agile"
	}
	suffix := ""
	if l.Retired {
		suffix = " (retired)"
	}
	return fmt.Sprintf("lineage %d [%s/%s] days %d-%d (%d active): %d servers, %d clients%s",
		l.ID, l.Kind, kind, l.FirstDay+1, l.LastDay+1, l.DaysActive,
		l.ServerCount(), l.ClientCount(), suffix)
}

// MatchKind explains how a day's campaign joined a lineage.
type MatchKind int

// Match kinds.
const (
	// MatchClients means the campaign's clients overlap an existing
	// lineage (agile or persistent continuation).
	MatchClients MatchKind = iota + 1
	// MatchServers means the servers overlap (client churn).
	MatchServers
	// MatchNew means a new lineage was created.
	MatchNew
)

// String names the match kind.
func (m MatchKind) String() string {
	switch m {
	case MatchClients:
		return "clients"
	case MatchServers:
		return "servers"
	case MatchNew:
		return "new"
	default:
		return "unknown"
	}
}

// Match records the assignment of one day-campaign to a lineage.
type Match struct {
	// Lineage is the assigned lineage.
	Lineage *Lineage
	// Kind explains the assignment.
	Kind MatchKind
	// ServerOverlap is the fraction of the campaign's servers already
	// known to the lineage (0 for new lineages).
	ServerOverlap float64
}

// Tracker links daily reports into lineages.
type Tracker struct {
	day      int
	lineages []*Lineage
	// MinClientOverlap is the minimum fraction of a campaign's clients
	// that must be known to a lineage to match it (default 0.5).
	MinClientOverlap float64
	// RetireAfter bounds lineage liveness: a lineage idle for more than
	// RetireAfter consecutive days (windows) is retired — excluded from
	// matching, member maps pruned (scalar totals remain), kept in
	// Lineages for reporting. 0 (the default) never retires, which means
	// unbounded matching state on an endless stream.
	RetireAfter int

	// retiredNow lists the lineage IDs retired by the most recent Observe
	// call, in ID order — the source of the stream's retire deltas.
	retiredNow []int
}

// New returns an empty tracker.
func New() *Tracker {
	return &Tracker{MinClientOverlap: 0.5}
}

// Lineages returns all lineages ordered by ID.
func (tk *Tracker) Lineages() []*Lineage { return tk.lineages }

// Day returns the number of days observed so far.
func (tk *Tracker) Day() int { return tk.day }

// RetiredNow returns the IDs of lineages retired by the most recent
// Observe call, in ID order. The slice is valid until the next Observe;
// callers that keep it must copy.
func (tk *Tracker) RetiredNow() []int { return tk.retiredNow }

// Retired returns the number of retired lineages.
func (tk *Tracker) Retired() int {
	n := 0
	for _, l := range tk.lineages {
		if l.Retired {
			n++
		}
	}
	return n
}

// Observe consumes one day's report and returns the per-campaign matches,
// in the order of report.AllCampaigns().
func (tk *Tracker) Observe(report *core.Report) []Match {
	day := tk.day
	tk.day++
	tk.retiredNow = tk.retiredNow[:0]
	if tk.RetireAfter > 0 {
		for _, l := range tk.lineages {
			if !l.Retired && day-l.LastDay > tk.RetireAfter {
				l.Retired = true
				// Prune member history: retired lineages keep only
				// scalar state, so idle lineages stop holding memory.
				l.Servers, l.Clients = nil, nil
				tk.retiredNow = append(tk.retiredNow, l.ID)
			}
		}
	}
	campaigns := report.AllCampaigns()
	matches := make([]Match, 0, len(campaigns))
	// Track which lineages were already claimed today so two same-day
	// campaigns do not merge through one lineage.
	claimed := make(map[*Lineage]bool)
	for i := range campaigns {
		c := &campaigns[i]
		best, kind, overlap := tk.findLineage(c, claimed)
		if best == nil {
			best = &Lineage{
				ID:       len(tk.lineages),
				FirstDay: day,
				Servers:  make(map[string]int),
				Clients:  make(map[string]int),
			}
			tk.lineages = append(tk.lineages, best)
			kind = MatchNew
		}
		claimed[best] = true
		if kind == MatchClients && overlap < 0.5 && day > best.LastDay {
			best.AgileDays++
		}
		best.LastDay = day
		best.DaysActive++
		best.Kind = c.Kind
		for _, s := range c.Servers {
			if best.Servers[s] == 0 {
				best.ServerTotal++
			}
			best.Servers[s]++
		}
		for _, cl := range c.Clients {
			if best.Clients[cl] == 0 {
				best.ClientTotal++
			}
			best.Clients[cl]++
		}
		matches = append(matches, Match{Lineage: best, Kind: kind, ServerOverlap: overlap})
	}
	return matches
}

// findLineage picks the best matching unclaimed lineage for a campaign.
func (tk *Tracker) findLineage(c *campaign.Campaign, claimed map[*Lineage]bool) (*Lineage, MatchKind, float64) {
	minClient := tk.MinClientOverlap
	if minClient <= 0 {
		minClient = 0.5
	}
	var best *Lineage
	bestKind := MatchNew
	bestScore := 0.0
	for _, l := range tk.lineages {
		if claimed[l] || l.Retired {
			continue
		}
		clientOv := overlapFrac(c.Clients, l.Clients)
		serverOv := overlapFrac(c.Servers, l.Servers)
		switch {
		case clientOv >= minClient && clientOv > bestScore:
			best, bestKind, bestScore = l, MatchClients, clientOv
		case bestKind != MatchClients && serverOv >= 0.5 && serverOv > bestScore:
			best, bestKind, bestScore = l, MatchServers, serverOv
		}
	}
	if best == nil {
		return nil, MatchNew, 0
	}
	return best, bestKind, overlapFrac(c.Servers, best.Servers)
}

// overlapFrac is the fraction of items already present in the lineage map.
func overlapFrac(items []string, known map[string]int) float64 {
	if len(items) == 0 {
		return 0
	}
	hit := 0
	for _, s := range items {
		if known[s] > 0 {
			hit++
		}
	}
	return float64(hit) / float64(len(items))
}

// Summary renders all lineages, persistent first, then agile, by ID.
func (tk *Tracker) Summary() string {
	ordered := append([]*Lineage(nil), tk.lineages...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Agile() != ordered[j].Agile() {
			return !ordered[i].Agile()
		}
		return ordered[i].ID < ordered[j].ID
	})
	var b strings.Builder
	if n := tk.Retired(); n > 0 {
		fmt.Fprintf(&b, "tracker: %d lineages (%d retired) over %d day(s)\n", len(tk.lineages), n, tk.day)
	} else {
		fmt.Fprintf(&b, "tracker: %d lineages over %d day(s)\n", len(tk.lineages), tk.day)
	}
	for _, l := range ordered {
		b.WriteString("  " + l.Render() + "\n")
	}
	return b.String()
}

// State is the serializable form of a Tracker: the snapshot payload of
// internal/store. The JSON shape is stable.
type State struct {
	// Day is the number of days (windows) observed.
	Day int `json:"day"`
	// MinClientOverlap and RetireAfter mirror the tracker's policy knobs.
	MinClientOverlap float64 `json:"minClientOverlap"`
	RetireAfter      int     `json:"retireAfter,omitempty"`
	// Lineages are all lineages ordered by ID.
	Lineages []*Lineage `json:"lineages,omitempty"`
}

// State returns a deep copy of the tracker's full state. The copy shares
// nothing with the tracker, so it may be serialized or mutated while the
// tracker keeps observing.
func (tk *Tracker) State() State {
	s := State{
		Day:              tk.day,
		MinClientOverlap: tk.MinClientOverlap,
		RetireAfter:      tk.RetireAfter,
	}
	if len(tk.lineages) > 0 {
		s.Lineages = make([]*Lineage, len(tk.lineages))
		for i, l := range tk.lineages {
			s.Lineages[i] = l.Clone()
		}
	}
	return s
}

// FromState reconstructs a tracker from a State deep copy. A tracker
// rebuilt from State() is indistinguishable from the original: Summary is
// byte-identical and future Observe calls assign identically.
func FromState(s State) *Tracker {
	tk := &Tracker{
		day:              s.Day,
		MinClientOverlap: s.MinClientOverlap,
		RetireAfter:      s.RetireAfter,
	}
	if tk.MinClientOverlap <= 0 {
		tk.MinClientOverlap = 0.5
	}
	if len(s.Lineages) > 0 {
		tk.lineages = make([]*Lineage, len(s.Lineages))
		for i, l := range s.Lineages {
			tk.lineages[i] = l.Clone()
		}
	}
	return tk
}

// Clone deep-copies the lineage. Nil member maps (retired lineages) stay
// nil; totals missing from legacy serialized states are derived from the
// maps.
func (l *Lineage) Clone() *Lineage {
	c := *l
	if l.Servers != nil {
		c.Servers = make(map[string]int, len(l.Servers))
		for k, v := range l.Servers {
			c.Servers[k] = v
		}
	}
	if l.Clients != nil {
		c.Clients = make(map[string]int, len(l.Clients))
		for k, v := range l.Clients {
			c.Clients[k] = v
		}
	}
	if c.ServerTotal == 0 {
		c.ServerTotal = len(l.Servers)
	}
	if c.ClientTotal == 0 {
		c.ClientTotal = len(l.Clients)
	}
	return &c
}
