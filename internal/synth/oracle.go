package synth

import (
	"fmt"
	"sort"

	"smash/internal/ids"
	"smash/internal/stats"
)

// Oracles bundles the simulated ground-truth services built from a world:
// the two IDS signature snapshots and the blacklist ecosystem.
type Oracles struct {
	// IDS2012 is the early-2012 signature snapshot.
	IDS2012 *ids.Engine
	// IDS2013 is the June-2013 snapshot (a strict superset in coverage,
	// modelling signature updates and hence the zero-day experiment).
	IDS2013 *ids.Engine
	// Blacklists is the online blacklist ecosystem with the paper's
	// confirmation policy.
	Blacklists *ids.BlacklistSet
}

var blacklistNames = []string{
	"MalwareDomainBlocklist", "MalwareDomainList", "Phishtank",
	"SpyEyeTracker", "ZeusTracker",
}

// BuildOracles derives the IDS signature sets and blacklists from the
// world's ground truth with each campaign's configured coverage fractions.
// Selection is deterministic in the world's seed.
func BuildOracles(w *World) *Oracles {
	var sigs2012, sigs2013 []ids.Signature
	bl := ids.NewBlacklistSet()
	listed := make(map[string][]string, 8) // list name -> servers
	names := make([]string, 0, len(w.Truth.Campaigns))
	for name := range w.Truth.Campaigns {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ct := w.Truth.Campaigns[name]
		servers := append([]string(nil), ct.Servers...)
		sort.Strings(servers)
		// One deterministic shuffle per campaign; coverage prefixes make
		// the 2013 labelled set a superset of the 2012 set.
		rng := stats.NewRand(w.Config.Seed, "oracle-"+name)
		rng.Shuffle(len(servers), func(i, j int) { servers[i], servers[j] = servers[j], servers[i] })
		n2012 := roundCoverage(ct.Spec.Coverage2012, len(servers))
		n2013 := roundCoverage(ct.Spec.Coverage2013, len(servers))
		if n2013 < n2012 {
			n2013 = n2012
		}
		for i := 0; i < n2013; i++ {
			sig := ids.Signature{ThreatID: threatID(name), Server: servers[i]}
			sigs2013 = append(sigs2013, sig)
			if i < n2012 {
				sigs2012 = append(sigs2012, sig)
			}
		}
		nBL := roundCoverage(ct.Spec.BlacklistCoverage, len(servers))
		// Blacklist from the end of the shuffled order so the IDS and
		// blacklist coverages overlap only partially, like real feeds.
		for i := 0; i < nBL; i++ {
			s := servers[len(servers)-1-i]
			list := blacklistNames[(i+len(name))%len(blacklistNames)]
			listed[list] = append(listed[list], s)
		}
		// Aggregator hits: a further slice of servers get 1-3 hits in the
		// WhatIsMyIPAddress-style aggregation (>= 2 confirms).
		nAgg := roundCoverage(ct.Spec.BlacklistCoverage/2, len(servers))
		for i := 0; i < nAgg; i++ {
			s := servers[(n2013+i)%len(servers)]
			bl.AggregatedHits[s] = 1 + (i+len(name))%3
		}
	}
	for _, list := range blacklistNames {
		if servers := listed[list]; len(servers) > 0 {
			bl.Direct = append(bl.Direct, ids.NewBlacklist(list, servers))
		}
	}
	return &Oracles{
		IDS2012:    ids.NewEngine("IDS2012", sigs2012),
		IDS2013:    ids.NewEngine("IDS2013", sigs2013),
		Blacklists: bl,
	}
}

// roundCoverage converts a fraction into a server count, guaranteeing at
// least one server once the fraction is positive and the pool non-empty.
func roundCoverage(frac float64, n int) int {
	if frac <= 0 || n == 0 {
		return 0
	}
	c := int(frac*float64(n) + 0.5)
	if c == 0 {
		c = 1
	}
	if c > n {
		c = n
	}
	return c
}

func threatID(campaign string) string { return "threat/" + campaign }

// CampaignOfThreat inverts threatID for evaluation joins.
func CampaignOfThreat(threat string) string {
	const prefix = "threat/"
	if len(threat) > len(prefix) && threat[:len(prefix)] == prefix {
		return threat[len(prefix):]
	}
	return threat
}

// DayProfile returns a Config resembling one of the paper's datasets. Known
// names: "Data2011day", "Data2012day", "Data2012week". Other names return a
// default single-day profile with that name.
func DayProfile(name string, seed int64) Config {
	switch name {
	case "Data2011day":
		return Config{Name: name, Seed: seed, Days: 1, Clients: 1200, BenignServers: 4000, MeanRequests: 40}
	case "Data2012day":
		return Config{Name: name, Seed: seed + 1, Days: 1, Clients: 1500, BenignServers: 5000, MeanRequests: 45}
	case "Data2012week":
		return Config{Name: name, Seed: seed + 2, Days: 7, Clients: 1500, BenignServers: 5000, MeanRequests: 35}
	default:
		return Config{Name: name, Seed: seed, Days: 1}
	}
}

// String renders a short oracle summary for logs.
func (o *Oracles) String() string {
	return fmt.Sprintf("oracles{ids2012=%d rules, ids2013=%d rules, blacklists=%d}",
		o.IDS2012.RuleCount(), o.IDS2013.RuleCount(), len(o.Blacklists.Direct))
}
