package synth

import (
	"strings"
	"testing"

	"smash/internal/trace"
)

// smallConfig keeps generation fast for unit tests.
func smallConfig() Config {
	return Config{
		Name: "test", Seed: 42, Days: 1,
		Clients: 300, BenignServers: 800, MeanRequests: 15,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w1, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(w1.Trace().Requests) != len(w2.Trace().Requests) {
		t.Fatalf("request counts differ: %d vs %d",
			len(w1.Trace().Requests), len(w2.Trace().Requests))
	}
	for i := range w1.Trace().Requests {
		if w1.Trace().Requests[i] != w2.Trace().Requests[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	cfg2 := smallConfig()
	cfg2.Seed = 43
	w1, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	n := len(w1.Trace().Requests)
	if len(w2.Trace().Requests) < n {
		n = len(w2.Trace().Requests)
	}
	for i := 0; i < n; i++ {
		if w1.Trace().Requests[i] == w2.Trace().Requests[i] {
			same++
		}
	}
	if same == n {
		t.Error("different seeds produced identical traces")
	}
}

func TestValidation(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{"empty campaign name", func(c *Config) {
			c.Campaigns = []CampaignSpec{{Kind: KindDGA, Servers: 2, Bots: 1}}
		}},
		{"duplicate campaign", func(c *Config) {
			c.Campaigns = []CampaignSpec{
				{Name: "x", Kind: KindDGA, Servers: 2, Bots: 1},
				{Name: "x", Kind: KindDGA, Servers: 2, Bots: 1},
			}
		}},
		{"no servers", func(c *Config) {
			c.Campaigns = []CampaignSpec{{Name: "x", Kind: KindDGA, Bots: 1}}
		}},
		{"no bots", func(c *Config) {
			c.Campaigns = []CampaignSpec{{Name: "x", Kind: KindDGA, Servers: 2}}
		}},
		{"too many bots", func(c *Config) {
			c.Campaigns = []CampaignSpec{{Name: "x", Kind: KindDGA, Servers: 2, Bots: 400}}
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := smallConfig()
			tt.mut(&cfg)
			if _, err := Generate(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestGroundTruthPopulated(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Truth.Campaigns) != len(DefaultCampaigns()) {
		t.Errorf("campaign truths = %d, want %d", len(w.Truth.Campaigns), len(DefaultCampaigns()))
	}
	for name, ct := range w.Truth.Campaigns {
		if ct.Spec.StartDay > 0 {
			continue // not active on a 1-day world
		}
		if len(ct.Servers) == 0 {
			t.Errorf("campaign %s has no servers", name)
		}
		if len(ct.Bots) != ct.Spec.Bots {
			t.Errorf("campaign %s bots = %d, want %d", name, len(ct.Bots), ct.Spec.Bots)
		}
		for _, s := range ct.Servers {
			st, ok := w.Truth.Servers[s]
			if !ok {
				t.Errorf("campaign %s server %s missing from server truth", name, s)
				continue
			}
			if st.Campaign != name {
				t.Errorf("server %s attributed to %q, want %q", s, st.Campaign, name)
			}
		}
	}
	if len(w.Truth.MaliciousServers()) < 100 {
		t.Errorf("only %d malicious servers in truth", len(w.Truth.MaliciousServers()))
	}
}

func TestCampaignTrafficPresent(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	idx := trace.BuildIndex(w.Trace())
	zeus := w.Truth.Campaigns["zeus"]
	if len(zeus.Servers) != 8 {
		t.Fatalf("zeus servers = %d, want 8", len(zeus.Servers))
	}
	for _, s := range zeus.Servers {
		info := idx.Servers[s]
		if info == nil {
			t.Fatalf("zeus server %s has no traffic", s)
		}
		if !info.HasFile("login.php") {
			t.Errorf("zeus server %s lacks login.php: %v", s, info.FileList())
		}
		if !strings.HasSuffix(s, ".cz.cc") {
			t.Errorf("zeus server %s not on cz.cc", s)
		}
		if len(info.Clients) != 2 {
			t.Errorf("zeus server %s clients = %d, want 2 bots", s, len(info.Clients))
		}
	}
	// All zeus domains share one IP (domain flux).
	ips := make(map[string]bool)
	for _, s := range zeus.Servers {
		for _, ip := range idx.Servers[s].IPList() {
			ips[ip] = true
		}
	}
	if len(ips) != 1 {
		t.Errorf("zeus IPs = %v, want exactly 1 shared", ips)
	}
}

func TestWhoisSharedFields(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	flux := w.Truth.Campaigns["fluxnet"]
	r0, ok0 := w.Whois.Lookup(flux.Servers[0])
	r1, ok1 := w.Whois.Lookup(flux.Servers[1])
	if !ok0 || !ok1 {
		t.Fatal("fluxnet domains missing whois records")
	}
	if r0.Phone != r1.Phone || r0.Address != r1.Address {
		t.Errorf("shared-whois campaign has disjoint records: %+v vs %+v", r0, r1)
	}
}

func TestVictimsAreBenignServers(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	scan := w.Truth.Campaigns["zmeu-scan"]
	for _, s := range scan.Servers {
		if !strings.HasPrefix(s, "site") {
			t.Errorf("scan victim %s is not a benign population server", s)
		}
		if w.Truth.Servers[s].Category != CatScanVictim {
			t.Errorf("victim %s category = %s", s, w.Truth.Servers[s].Category)
		}
	}
}

func TestObfuscatedCampaignFiles(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	idx := trace.BuildIndex(w.Trace())
	conf := w.Truth.Campaigns["conficker"]
	long := 0
	for _, s := range conf.Servers {
		for _, f := range idx.Servers[s].FileList() {
			if len(f) > 25 {
				long++
			}
		}
	}
	if long < len(conf.Servers) {
		t.Errorf("obfuscated campaign produced only %d long filenames over %d servers",
			long, len(conf.Servers))
	}
}

func TestMultiDayWorld(t *testing.T) {
	cfg := smallConfig()
	cfg.Days = 3
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Days) != 3 {
		t.Fatalf("days = %d, want 3", len(w.Days))
	}
	// Agile campaign rotates servers daily.
	flux := w.Truth.Campaigns["fluxnet"]
	d0 := map[string]bool{}
	for _, s := range flux.ServersByDay[0] {
		d0[s] = true
	}
	overlap := 0
	for _, s := range flux.ServersByDay[1] {
		if d0[s] {
			overlap++
		}
	}
	if overlap != 0 {
		t.Errorf("agile campaign reused %d servers across days", overlap)
	}
	// Persistent campaign keeps its servers.
	sality := w.Truth.Campaigns["sality"]
	if len(sality.ServersByDay[0]) != len(sality.ServersByDay[1]) {
		t.Error("persistent campaign changed size across days")
	}
	// Late riser starts on day 2 (index 2).
	late := w.Truth.Campaigns["late-riser"]
	if len(late.ServersByDay[0]) != 0 || len(late.ServersByDay[1]) != 0 {
		t.Error("late-riser active before StartDay")
	}
	if len(late.ServersByDay[2]) == 0 {
		t.Error("late-riser inactive on StartDay")
	}
}

func TestNoiseGeneration(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	noise := 0
	for _, st := range w.Truth.Servers {
		if st.Noise {
			noise++
		}
	}
	if noise < 30 {
		t.Errorf("noise servers = %d, want >= 30 (torrent + teamviewer)", noise)
	}
	cfg := smallConfig()
	cfg.DisableNoise = true
	w2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s, st := range w2.Truth.Servers {
		if st.Noise {
			t.Errorf("noise server %s generated despite DisableNoise", s)
		}
	}
}

func TestBuildOracles(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	o := BuildOracles(w)
	if o.IDS2012.RuleCount() == 0 || o.IDS2013.RuleCount() == 0 {
		t.Fatal("empty signature sets")
	}
	if o.IDS2013.RuleCount() < o.IDS2012.RuleCount() {
		t.Errorf("IDS2013 (%d rules) smaller than IDS2012 (%d)",
			o.IDS2013.RuleCount(), o.IDS2012.RuleCount())
	}
	idx := trace.BuildIndex(w.Trace())
	l2012 := o.IDS2012.Scan(idx)
	l2013 := o.IDS2013.Scan(idx)
	// Superset property: everything 2012 labels, 2013 labels too.
	for s := range l2012 {
		if !l2013.Detected(s) {
			t.Errorf("server %s labelled by 2012 but not 2013", s)
		}
	}
	// Zeus is the zero-day: no 2012 labels, full 2013 labels.
	zeus := w.Truth.Campaigns["zeus"]
	for _, s := range zeus.Servers {
		if l2012.Detected(s) {
			t.Errorf("zeus server %s labelled by 2012 signatures", s)
		}
		if !l2013.Detected(s) {
			t.Errorf("zeus server %s missed by 2013 signatures", s)
		}
	}
	// Sality: fully covered by 2012 (the paper's Table VIII).
	sality := w.Truth.Campaigns["sality"]
	for _, s := range sality.Servers {
		if !l2012.Detected(s) {
			t.Errorf("sality server %s missed by 2012 signatures", s)
		}
	}
	// Blacklist policy sanity: at least some servers confirmed.
	confirmed := 0
	for _, s := range w.Truth.MaliciousServers() {
		if o.Blacklists.Confirmed(s) {
			confirmed++
		}
	}
	if confirmed == 0 {
		t.Error("no malicious server blacklist-confirmed")
	}
	if o.String() == "" {
		t.Error("empty oracle summary")
	}
}

func TestDayProfiles(t *testing.T) {
	for _, name := range []string{"Data2011day", "Data2012day", "Data2012week", "custom"} {
		cfg := DayProfile(name, 7)
		if cfg.Name != name {
			t.Errorf("profile name = %q, want %q", cfg.Name, name)
		}
	}
	if DayProfile("Data2012week", 7).Days != 7 {
		t.Error("week profile should have 7 days")
	}
}

func TestCampaignOfThreat(t *testing.T) {
	if got := CampaignOfThreat(threatID("zeus")); got != "zeus" {
		t.Errorf("round trip = %q", got)
	}
	if got := CampaignOfThreat("bare"); got != "bare" {
		t.Errorf("bare = %q", got)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KindDomainFlux, KindDGA, KindTwoTier, KindSality,
		KindScanner, KindIframe, KindPhishing, KindDropZone, Kind(0)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("kind %d has empty string", k)
		}
	}
}

func TestTraceStatsReasonable(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := w.Trace().ComputeStats()
	if s.Clients < 250 {
		t.Errorf("clients = %d, want ~300", s.Clients)
	}
	if s.Servers < 500 {
		t.Errorf("servers = %d", s.Servers)
	}
	if s.Requests < 3000 {
		t.Errorf("requests = %d", s.Requests)
	}
}
