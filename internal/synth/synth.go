// Package synth generates the synthetic ISP world that stands in for the
// paper's 9 days of ISP PCAP traces (see DESIGN.md substitution table).
//
// SMASH is purely a function of the relational structure of HTTP traffic —
// which clients talk to which servers, with which URI files, resolving to
// which IPs, registered by whom. The generator reproduces those relations:
//
//   - a benign web population with Zipf server popularity, per-site page
//     sets, shared hosting, tracker/widget referrer groups, redirection
//     chains, and niche browsing clusters (the paper's "similar content" and
//     "unknown" main-dimension groups);
//   - malware campaigns injected with the exact server-side correlation
//     structure the paper describes: domain-flux C&C pools, DGA pools,
//     two-tier download+C&C botnets (Bagle), compromised-site download tiers
//     (Sality), web scanners (ZmEu), iframe injection, phishing and drop
//     zones — including obfuscated long filenames and multi-day
//     persistent/agile evolution;
//   - the two benign false-positive classes the paper identifies (Torrent
//     trackers sharing scrape.php, TeamViewer-style server pools);
//   - a ground-truth manifest plus simulated IDS signature sets (2012 and
//     2013 snapshots) and blacklist services with controlled coverage.
//
// All generation is deterministic for a fixed Config.Seed.
package synth

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"smash/internal/stats"
	"smash/internal/trace"
	"smash/internal/webprobe"
	"smash/internal/whois"
)

// Kind enumerates campaign archetypes.
type Kind int

// Campaign archetypes, mirroring the paper's case studies and categories.
const (
	// KindDomainFlux is a pool of C&C domains sharing IPs and a handler
	// script, contacted by the same bots (Fig. 1a).
	KindDomainFlux Kind = iota + 1
	// KindDGA is a Zeus-style pool of algorithmically generated domains
	// (Table X).
	KindDGA
	// KindTwoTier is a Bagle-style campaign with a download tier and a
	// C&C tier visited by the same bots (Table VII).
	KindTwoTier
	// KindSality is a Sality-style campaign: two C&C domains sharing IP
	// and whois plus a tier of compromised benign download sites
	// (Table VIII).
	KindSality
	// KindScanner is a ZmEu-style scanning campaign: bots probing benign
	// servers for one vulnerable file (Fig. 1b).
	KindScanner
	// KindIframe is an iframe/webshell injection campaign against benign
	// WordPress sites (Table IX).
	KindIframe
	// KindPhishing is a phishing domain pool.
	KindPhishing
	// KindDropZone is a small data-exfiltration drop zone pool.
	KindDropZone
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindDomainFlux:
		return "domainflux"
	case KindDGA:
		return "dga"
	case KindTwoTier:
		return "twotier"
	case KindSality:
		return "sality"
	case KindScanner:
		return "scanner"
	case KindIframe:
		return "iframe"
	case KindPhishing:
		return "phishing"
	case KindDropZone:
		return "dropzone"
	default:
		return "unknown"
	}
}

// Category classifies a server's role, matching the paper's Table IV rows.
type Category string

// Server categories.
const (
	CatC2           Category = "C&C"
	CatDownload     Category = "Download"
	CatWebExploit   Category = "Web exploit"
	CatPhishing     Category = "Phishing"
	CatDropZone     Category = "Drop zone"
	CatOtherMal     Category = "Other malicious"
	CatScanVictim   Category = "Web scanner"
	CatIframeVictim Category = "Iframe injection"
	CatNoise        Category = "Noise"
	CatBenign       Category = "Benign"
)

// CampaignSpec describes one campaign to inject.
type CampaignSpec struct {
	// Name identifies the campaign (unique within a config).
	Name string
	// Kind selects the archetype.
	Kind Kind
	// Servers is the primary tier size (C&C pool, victim pool, ...).
	Servers int
	// SecondaryServers is the download tier size for two-tier archetypes.
	SecondaryServers int
	// Bots is the number of infected clients driving the campaign.
	Bots int
	// StartDay is the first day (0-based) the campaign is active.
	StartDay int
	// Agile rotates the campaign's server pool every day (same bots).
	Agile bool
	// ObfuscatedNames makes the campaign use long randomized URI files
	// drawn from one character multiset (exercising the cosine path).
	ObfuscatedNames bool
	// SharedIP makes the campaign servers share a small IP pool.
	SharedIP bool
	// SharedWhois registers the campaign domains with overlapping whois
	// contact fields.
	SharedWhois bool
	// Coverage2012/Coverage2013 are the fractions of campaign servers the
	// respective IDS signature snapshot can label.
	Coverage2012, Coverage2013 float64
	// BlacklistCoverage is the fraction of servers on blacklists.
	BlacklistCoverage float64
	// DeadFraction is the fraction of campaign domains that no longer
	// resolve at verification time (short-lived registrations).
	DeadFraction float64
	// EvadeMain makes the campaign's bots also visit benign domains with
	// the campaign's URI file — the paper's main-dimension evasion attempt
	// (§VI): the attacker tries to drag benign servers into the herd.
	EvadeMain bool
	// RandomFilePerServer gives every campaign server its own random
	// handler filename — the URI-file-dimension evasion attempt (§VI).
	RandomFilePerServer bool
}

// Config parameterizes world generation.
type Config struct {
	// Name labels the generated traces (e.g. "Data2011day").
	Name string
	// Seed drives all randomness.
	Seed int64
	// Days is the number of observation days to generate (>= 1).
	Days int
	// Clients is the monitored client population size.
	Clients int
	// BenignServers is the benign server population size.
	BenignServers int
	// MeanRequests is the mean number of benign requests per client/day.
	MeanRequests int
	// Campaigns lists the campaigns to inject. Nil uses DefaultCampaigns.
	Campaigns []CampaignSpec
	// DisableNoise suppresses the Torrent/TeamViewer FP-noise classes.
	DisableNoise bool
	// BaseTime is the first day's start; zero uses 2011-10-01 UTC.
	BaseTime time.Time
}

func (c Config) normalized() Config {
	if c.Days <= 0 {
		c.Days = 1
	}
	if c.Clients <= 0 {
		c.Clients = 1200
	}
	if c.BenignServers <= 0 {
		c.BenignServers = 4000
	}
	if c.MeanRequests <= 0 {
		c.MeanRequests = 40
	}
	if c.Campaigns == nil {
		c.Campaigns = DefaultCampaigns()
	}
	if c.BaseTime.IsZero() {
		c.BaseTime = time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.Name == "" {
		c.Name = "synthetic"
	}
	return c
}

// ServerTruth is the ground truth for one server.
type ServerTruth struct {
	// Campaign names the campaign the server belongs to ("" for pure
	// benign background).
	Campaign string
	// Category is the server's role.
	Category Category
	// Noise marks the Torrent/TeamViewer benign FP classes.
	Noise bool
}

// CampaignTruth is the ground truth for one injected campaign.
type CampaignTruth struct {
	// Spec is the generating spec.
	Spec CampaignSpec
	// Servers is every server the campaign used across all days.
	Servers []string
	// ServersByDay records the active server set per day.
	ServersByDay [][]string
	// Bots lists the campaign's client identities.
	Bots []string
}

// Truth is the world's ground-truth manifest.
type Truth struct {
	// Servers maps server key -> truth. Benign background servers are
	// absent.
	Servers map[string]ServerTruth
	// Campaigns maps campaign name -> truth.
	Campaigns map[string]*CampaignTruth
}

// MaliciousServers returns all ground-truth campaign servers (victims
// included, noise excluded), sorted.
func (t *Truth) MaliciousServers() []string {
	out := make([]string, 0, len(t.Servers))
	for s, st := range t.Servers {
		if st.Campaign != "" && !st.Noise {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// World is a fully generated synthetic environment.
type World struct {
	// Config echoes the (normalized) generating config.
	Config Config
	// Days holds one trace per observation day.
	Days []*trace.Trace
	// Whois is the registration database.
	Whois *whois.MapRegistry
	// Prober answers redirection/liveness probes from the topology.
	Prober *webprobe.MapProber
	// Truth is the ground-truth manifest.
	Truth *Truth
}

// Trace returns the single-day trace; it panics only via index bounds if
// the world has multiple days (callers use Days directly then).
func (w *World) Trace() *trace.Trace { return w.Days[0] }

// Generate builds a world from the config. It is deterministic in
// Config.Seed.
func Generate(cfg Config) (*World, error) {
	cfg = cfg.normalized()
	if err := validate(cfg); err != nil {
		return nil, err
	}
	g := &generator{
		cfg:    cfg,
		world:  &World{Config: cfg, Whois: whois.NewMapRegistry(), Prober: webprobe.NewMapProber()},
		truth:  &Truth{Servers: make(map[string]ServerTruth), Campaigns: make(map[string]*CampaignTruth)},
		assign: newBotAssigner(cfg),
	}
	g.world.Truth = g.truth
	g.buildBenignPopulation()
	g.buildCampaignPlans()
	for day := 0; day < cfg.Days; day++ {
		g.emitDay(day)
	}
	return g.world, nil
}

func validate(cfg Config) error {
	names := make(map[string]bool, len(cfg.Campaigns))
	totalBots := 0
	for _, spec := range cfg.Campaigns {
		if spec.Name == "" {
			return fmt.Errorf("synth: campaign with empty name")
		}
		if names[spec.Name] {
			return fmt.Errorf("synth: duplicate campaign name %q", spec.Name)
		}
		names[spec.Name] = true
		if spec.Servers <= 0 {
			return fmt.Errorf("synth: campaign %q has no servers", spec.Name)
		}
		if spec.Bots <= 0 {
			return fmt.Errorf("synth: campaign %q has no bots", spec.Name)
		}
		totalBots += spec.Bots
	}
	// The special benign structures (widgets, chain, noise, niche
	// clusters) reserve a further block of dedicated clients.
	const specialClients = 32
	if totalBots+specialClients > cfg.Clients/2 {
		return fmt.Errorf("synth: %d bots + %d special clients exceed half the client population (%d)",
			totalBots, specialClients, cfg.Clients)
	}
	return nil
}

// botAssigner hands out disjoint client identities to campaigns so that
// distinct campaigns have distinct (but realistic, browsing) bot machines.
type botAssigner struct {
	next    int
	clients int
}

func newBotAssigner(cfg Config) *botAssigner {
	return &botAssigner{clients: cfg.Clients}
}

// take returns n client names starting after previously assigned ones.
func (b *botAssigner) take(n int) []string {
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = clientName(b.next % b.clients)
		b.next++
	}
	return out
}

func clientName(i int) string { return fmt.Sprintf("10.%d.%d.%d", i/65536, i/256%256, i%256) }
func benignName(i int) string { return fmt.Sprintf("site%04d.com", i) }
func benignIP(i int) string   { return fmt.Sprintf("100.%d.%d.%d", i/65536%256, i/256%256, i%256) }

// randomLabel produces a lowercase alphanumeric label of length n.
func randomLabel(rng *rand.Rand, n int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}

// shuffledName builds an obfuscated filename by shuffling a campaign's base
// character multiset, keeping the byte distribution (so CharCosine between
// two such names is 1) while the names differ.
func shuffledName(rng *rand.Rand, base string, ext string) string {
	b := []byte(base)
	rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
	return string(b) + ext
}

func (g *generator) rng(name string) *rand.Rand {
	return stats.NewRand(g.cfg.Seed, name)
}
