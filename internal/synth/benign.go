package synth

import (
	"fmt"
	"math/rand"
	"time"

	"smash/internal/stats"
	"smash/internal/trace"
	"smash/internal/whois"
)

// generator carries all state across the generation phases.
type generator struct {
	cfg    Config
	world  *World
	truth  *Truth
	assign *botAssigner

	benign  []*benignServer
	zipf    *stats.Zipf
	plans   []*campaignPlan
	clock   time.Time
	clockNS int64

	// Special benign structures.
	widgetLanding  string
	widgets        []string
	widgetClients  []string
	usedVictims    map[int]bool
	freshVictims   int
	chainMembers   []string
	chainLanding   string
	chainClients   []string
	torrentClients []string
	tvClients      []string
	nicheClusters  [][]string // server groups visited by fixed niche client sets
	nicheClients   [][]string
}

type benignServer struct {
	name  string
	ip    string
	pages []string
}

const browserUA = "Mozilla/5.0 (Windows NT 6.1) AppleWebKit/537"

var genericPages = []string{"index.html", "style.css", "logo.png"}

// buildBenignPopulation creates the benign servers, their pages, IPs and
// whois records, plus the widget/redirect/niche structures that exercise
// SMASH's pruning and main-dimension taxonomy.
func (g *generator) buildBenignPopulation() {
	rng := g.rng("benign")
	n := g.cfg.BenignServers
	g.benign = make([]*benignServer, n)
	registrars := []string{"GoDaddy", "Namecheap", "Tucows", "eNom", "OVH"}
	for i := 0; i < n; i++ {
		s := &benignServer{name: benignName(i), ip: benignIP(i)}
		// Shared hosting: every 17th server shares its block's IP.
		if i%17 == 0 && i > 0 {
			s.ip = benignIP(i - i%170)
		}
		// Pages: generic pool plus site-specific pages so benign file
		// similarity stays diluted (eq. 7 stays below edge threshold).
		s.pages = append(s.pages, genericPages...)
		own := 3 + rng.Intn(4)
		for p := 0; p < own; p++ {
			s.pages = append(s.pages, fmt.Sprintf("page%d_%d.html", i, p))
		}
		if rng.Float64() < 0.15 { // WordPress installs (iframe victims pool)
			s.pages = append(s.pages, "wp-login.php")
		}
		g.benign[i] = s
		g.world.Whois.Add(whois.Record{
			Domain:      s.name,
			Registrant:  fmt.Sprintf("Owner %d", i),
			Email:       fmt.Sprintf("admin@%s", s.name),
			Phone:       fmt.Sprintf("+1-555-%07d", i),
			Address:     fmt.Sprintf("%d Main St", i),
			Registrar:   registrars[i%len(registrars)],
			NameServers: []string{fmt.Sprintf("ns1.%s", s.name)},
			Created:     g.cfg.BaseTime.AddDate(-2, 0, -i%600),
		})
	}
	zipf, err := stats.NewZipf(g.rng("zipf"), n, 1.0)
	if err != nil {
		panic(fmt.Sprintf("synth: zipf over %d servers: %v", n, err)) // unreachable: n >= 1
	}
	g.zipf = zipf

	// Widget referrer group: a landing blog embeds fixed third-party
	// widgets; visitors fetch them with the landing referrer. The client
	// sets of all special structures come from the same disjoint assigner
	// as campaign bots so the ground truth stays unambiguous.
	g.widgetLanding = "blogring.com"
	for i := 0; i < 5; i++ {
		g.widgets = append(g.widgets, fmt.Sprintf("widget%d.com", i))
	}
	g.widgetClients = g.assign.take(6)
	g.chainClients = g.assign.take(5)
	g.torrentClients = g.assign.take(5)
	g.tvClients = g.assign.take(4)

	// Redirection chain: two URL shorteners hop to a landing site; all
	// three share an IP (the §III-D replacement condition).
	g.chainMembers = []string{"shrt0.com", "shrt1.com"}
	g.chainLanding = "chainlanding.com"
	g.world.Prober.Redirects["shrt0.com"] = "shrt1.com"
	g.world.Prober.Redirects["shrt1.com"] = "chainlanding.com"

	// Niche clusters (§V-C1's "similar content" and "unknown" groups):
	// fixed small client sets visiting fixed server groups with no
	// secondary-dimension overlap.
	for c := 0; c < 3; c++ {
		var servers []string
		for s := 0; s < 8; s++ {
			servers = append(servers, fmt.Sprintf("niche%d-%d.com", c, s))
		}
		g.nicheClusters = append(g.nicheClusters, servers)
		g.nicheClients = append(g.nicheClients, g.assign.take(4))
	}
}

// emitDay generates one day's trace: benign browsing, special structures,
// active campaigns, and noise.
func (g *generator) emitDay(day int) {
	name := g.cfg.Name
	if g.cfg.Days > 1 {
		name = fmt.Sprintf("%s-day%d", g.cfg.Name, day+1)
	}
	t := &trace.Trace{Name: name}
	g.clock = g.cfg.BaseTime.AddDate(0, 0, day)
	g.clockNS = 0

	g.emitBenign(day, t)
	g.emitWidgets(day, t)
	g.emitChain(day, t)
	g.emitNiche(day, t)
	for _, plan := range g.plans {
		plan.emit(g, day, t)
	}
	if !g.cfg.DisableNoise {
		g.emitTorrentNoise(day, t)
		g.emitTeamViewerNoise(day, t)
	}
	g.world.Days = append(g.world.Days, t)
}

// now returns a monotonically increasing timestamp within the day.
func (g *generator) now() time.Time {
	g.clockNS += 1_000_000 // 1ms per request
	return g.clock.Add(time.Duration(g.clockNS))
}

// addReq appends a request with the generator clock.
func (g *generator) addReq(t *trace.Trace, client, host, ip, path, query, ua, referrer string, status int) {
	g.addReqPayload(t, client, host, ip, path, query, ua, referrer, status, "")
}

// addReqPayload appends a request carrying a payload digest.
func (g *generator) addReqPayload(t *trace.Trace, client, host, ip, path, query, ua, referrer string, status int, digest string) {
	t.Requests = append(t.Requests, trace.Request{
		Time: g.now(), Client: client, Host: host, ServerIP: ip,
		Path: path, Query: query, UserAgent: ua, Referrer: referrer,
		Status: status, PayloadDigest: digest,
	})
}

// benignDigest derives a stable payload digest for a benign page. The
// generic static assets share one digest across all sites (a common
// framework file — the fan-out-cap case); site pages digest per site.
func benignDigest(server, page string) string {
	for _, generic := range genericPages {
		if page == generic {
			return "sha1:asset-" + page
		}
	}
	return "sha1:" + server + "/" + page
}

// emitBenign generates the background browsing of every client.
func (g *generator) emitBenign(day int, t *trace.Trace) {
	rng := g.rng(fmt.Sprintf("browse-day%d", day))
	for c := 0; c < g.cfg.Clients; c++ {
		client := clientName(c)
		// Per-client request volume: exponential around the mean.
		reqs := 1 + int(rng.ExpFloat64()*float64(g.cfg.MeanRequests))
		if reqs > 6*g.cfg.MeanRequests {
			reqs = 6 * g.cfg.MeanRequests
		}
		for reqs > 0 {
			srv := g.benign[g.zipf.Sample()]
			// A browsing session: a few pages from one site.
			session := 1 + rng.Intn(4)
			if session > reqs {
				session = reqs
			}
			for s := 0; s < session; s++ {
				page := srv.pages[rng.Intn(len(srv.pages))]
				status := 200
				if rng.Float64() < 0.03 {
					status = 404
				}
				g.addReqPayload(t, client, srv.name, srv.ip, "/"+page, "", browserUA, "", status,
					benignDigest(srv.name, page))
			}
			reqs -= session
		}
	}
}

// emitWidgets generates the widget referrer group: a subset of clients read
// the landing blog and pull its embedded widgets.
func (g *generator) emitWidgets(day int, t *trace.Trace) {
	rng := g.rng(fmt.Sprintf("widgets-day%d", day))
	landingIP := "150.0.0.1"
	for _, client := range g.widgetClients {
		g.addReq(t, client, g.widgetLanding, landingIP, "/posts.html", "", browserUA, "", 200)
		for wi, w := range g.widgets {
			if rng.Float64() < 0.9 {
				g.addReq(t, client, w, fmt.Sprintf("150.0.1.%d", wi), "/widget.js", "", browserUA, g.widgetLanding, 200)
			}
		}
	}
}

// emitChain generates redirection-chain traffic: the same clients touch
// every hop (identical client sets, shared IP, same file).
func (g *generator) emitChain(day int, t *trace.Trace) {
	const chainIP = "150.0.2.1"
	for _, client := range g.chainClients {
		for _, hop := range g.chainMembers {
			g.addReq(t, client, hop, chainIP, "/go.php", "u=abc", browserUA, "", 302)
		}
		g.addReq(t, client, g.chainLanding, chainIP, "/go.php", "", browserUA, "", 200)
	}
}

// emitNiche generates the niche browsing clusters: shared client sets but
// per-server unique files and IPs, so only the main dimension links them.
func (g *generator) emitNiche(day int, t *trace.Trace) {
	rng := g.rng(fmt.Sprintf("niche-day%d", day))
	for ci, servers := range g.nicheClusters {
		for si, srv := range servers {
			ip := fmt.Sprintf("150.%d.3.%d", ci, si)
			for _, client := range g.nicheClients[ci] {
				page := fmt.Sprintf("/content%d_%d.html", si, rng.Intn(5))
				g.addReq(t, client, srv, ip, page, "", browserUA, "", 200)
			}
		}
	}
}

// emitTorrentNoise generates the paper's first FP class: several P2P
// clients hitting many tracker servers, all requesting scrape.php, with
// some trackers sharing IPs.
func (g *generator) emitTorrentNoise(day int, t *trace.Trace) {
	rng := g.rng(fmt.Sprintf("torrent-day%d", day))
	const trackers = 30
	for ti := 0; ti < trackers; ti++ {
		srv := fmt.Sprintf("tracker%02d.net", ti)
		ip := fmt.Sprintf("160.0.%d.%d", ti%4, ti) // several trackers per IP block
		if ti%3 == 0 {
			ip = fmt.Sprintf("160.0.9.%d", ti%5) // shared IPs
		}
		g.truth.Servers[srv] = ServerTruth{Category: CatNoise, Noise: true}
		for _, client := range g.torrentClients {
			hash := randomLabel(rng, 20)
			g.addReq(t, client, srv, ip, "/scrape.php", "info_hash="+hash, "Transmission/2.84", "", 200)
		}
	}
}

// emitTeamViewerNoise generates the paper's second FP class: a large pool
// of IP-addressed servers sharing one path, contacted by ordinary clients.
func (g *generator) emitTeamViewerNoise(day int, t *trace.Trace) {
	const poolSize = 25
	for pi := 0; pi < poolSize; pi++ {
		ip := fmt.Sprintf("170.0.%d.%d", pi/250, pi%250)
		g.truth.Servers[ip] = ServerTruth{Category: CatNoise, Noise: true}
		for _, client := range g.tvClients {
			g.addReq(t, client, "", ip, "/din.aspx", "id=client", "TV/8.0", "", 200)
		}
	}
}

// pickVictims selects n distinct benign web servers for an attack campaign.
// Attackers pick targets from the whole internet, so roughly 80% of victims
// are sites the monitored clients never browse (only the attack traffic is
// visible at the vantage point) and 20% come from the browsed population's
// unpopular tail (their benign pages then dilute the observed file sets —
// the partial-detection path). Victims claimed by another campaign are
// skipped so ground-truth attribution stays unique.
func (g *generator) pickVictims(rng *rand.Rand, n int) []*benignServer {
	if g.usedVictims == nil {
		g.usedVictims = make(map[int]bool)
	}
	out := make([]*benignServer, 0, n)
	total := len(g.benign)
	start := 2 * total / 3 // deep tail of the browsed population
	browsed := n / 5
	for len(out) < browsed && len(g.usedVictims) < total-start {
		i := start + rng.Intn(total-start)
		if g.usedVictims[i] {
			continue
		}
		g.usedVictims[i] = true
		out = append(out, g.benign[i])
	}
	for len(out) < n {
		// Fresh victims extend the site namespace beyond the browsed
		// population; they get whois records but no benign visitors.
		i := total + g.freshVictims
		g.freshVictims++
		s := &benignServer{name: benignName(i), ip: benignIP(i)}
		g.world.Whois.Add(whois.Record{
			Domain:     s.name,
			Registrant: fmt.Sprintf("Owner %d", i),
			Email:      "admin@" + s.name,
			Phone:      fmt.Sprintf("+1-555-%07d", i),
			Address:    fmt.Sprintf("%d Main St", i),
		})
		out = append(out, s)
	}
	return out
}
