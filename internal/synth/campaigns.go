package synth

import (
	"fmt"
	"math/rand"

	"smash/internal/trace"
	"smash/internal/whois"
)

// campaignPlan is the executable form of a CampaignSpec.
type campaignPlan struct {
	spec  CampaignSpec
	index int
	bots  []string
	truth *CampaignTruth

	// For persistent campaigns the tiers are generated once; agile
	// campaigns regenerate them per day.
	tiersByDay map[int][]tier
	// base character multiset for obfuscated filenames.
	obfBase string
	// victims are pre-selected benign servers for attack campaigns.
	victims []*benignServer
}

// tier is one server tier of a campaign on one day.
type tier struct {
	category Category
	servers  []campaignServer
	files    []string // URI files used by the tier (pre-obfuscated)
	paths    []string // path templates containing %s for the file
	query    string
	ua       string
	// errRate is the probability a request returns an error status.
	errRate float64
}

type campaignServer struct {
	name  string
	ips   []string // IP pool; requests rotate through it so IP sets match
	files []string // URI files bots request from this server
}

// DefaultCampaigns returns a campaign mix patterned on the paper's
// evaluation: the named case studies (Bagle, Sality, Zeus, ZmEu scanning,
// iframe injection), additional flux/communication pools, low-coverage
// attack campaigns, and a population of single-client campaigns for the
// Appendix C tables.
func DefaultCampaigns() []CampaignSpec {
	specs := []CampaignSpec{
		{
			Name: "bagle", Kind: KindTwoTier, Servers: 12, SecondaryServers: 10,
			Bots: 3, SharedWhois: true,
			Coverage2012: 0.1, Coverage2013: 0.25, BlacklistCoverage: 0.15,
			DeadFraction: 0.3,
		},
		{
			Name: "sality", Kind: KindSality, Servers: 2, SecondaryServers: 10,
			Bots: 2, SharedIP: true, SharedWhois: true,
			Coverage2012: 1.0, Coverage2013: 1.0, BlacklistCoverage: 0.6,
		},
		{
			Name: "zeus", Kind: KindDGA, Servers: 8, Bots: 2, SharedIP: true,
			Coverage2012: 0, Coverage2013: 1.0, BlacklistCoverage: 0.12,
			DeadFraction: 0.5,
		},
		{
			Name: "fluxnet", Kind: KindDomainFlux, Servers: 20, Bots: 4,
			Agile: true, SharedIP: true, SharedWhois: true,
			Coverage2012: 0.05, Coverage2013: 0.2, BlacklistCoverage: 0.2,
			DeadFraction: 0.4,
		},
		{
			Name: "conficker", Kind: KindDomainFlux, Servers: 14, Bots: 3,
			Agile: true, SharedIP: true, ObfuscatedNames: true,
			Coverage2012: 0.1, Coverage2013: 0.3, BlacklistCoverage: 0.2,
			DeadFraction: 0.3,
		},
		{
			Name: "tdss", Kind: KindTwoTier, Servers: 6, SecondaryServers: 5,
			Bots: 2, Agile: true, SharedIP: true,
			Coverage2012: 0.1, Coverage2013: 0.4, BlacklistCoverage: 0.25,
			DeadFraction: 0.25,
		},
		{
			Name: "zmeu-scan", Kind: KindScanner, Servers: 25, Bots: 2,
			Agile: true, Coverage2012: 0.08, Coverage2013: 0.12,
		},
		{
			Name: "iframe-inject", Kind: KindIframe, Servers: 150, Bots: 2,
			Agile: true, Coverage2012: 0.01, Coverage2013: 0.03,
		},
		{
			Name: "dropzone", Kind: KindDropZone, Servers: 3, Bots: 2,
			SharedIP: true, SharedWhois: true,
			Coverage2013: 0.3, BlacklistCoverage: 0.3, DeadFraction: 0.5,
		},
		{
			Name: "phish-kit", Kind: KindPhishing, Servers: 5, Bots: 1,
			SharedWhois: true, BlacklistCoverage: 0.4, DeadFraction: 0.6,
		},
	}
	// Single-client communication campaigns (Appendix C population).
	for i := 0; i < 6; i++ {
		specs = append(specs, CampaignSpec{
			Name: fmt.Sprintf("lone-flux-%d", i), Kind: KindDomainFlux,
			Servers: 4 + i, Bots: 1, Agile: i%2 == 1, SharedIP: i%2 == 0, SharedWhois: true,
			BlacklistCoverage: 0.2, DeadFraction: 0.4,
			ObfuscatedNames: i%3 == 0,
		})
	}
	// A campaign that only appears mid-week (new servers + new clients in
	// the Fig. 7 accounting).
	specs = append(specs, CampaignSpec{
		Name: "late-riser", Kind: KindDomainFlux, Servers: 8, Bots: 2,
		StartDay: 2, SharedIP: true, SharedWhois: true,
		Coverage2013: 0.2, BlacklistCoverage: 0.3, DeadFraction: 0.3,
	})
	return specs
}

// buildCampaignPlans assigns bots and initializes per-campaign state.
func (g *generator) buildCampaignPlans() {
	for i, spec := range g.cfg.Campaigns {
		plan := &campaignPlan{
			spec:       spec,
			index:      i,
			bots:       g.assign.take(spec.Bots),
			tiersByDay: make(map[int][]tier),
		}
		plan.truth = &CampaignTruth{Spec: spec, Bots: plan.bots}
		if spec.ObfuscatedNames {
			plan.obfBase = randomLabel(g.rng("obf-"+spec.Name), 28)
		}
		switch spec.Kind {
		case KindScanner, KindIframe, KindSality:
			n := spec.Servers
			if spec.Kind == KindSality {
				n = spec.SecondaryServers
			}
			// Agile attack campaigns hit a fresh victim set every day.
			if spec.Agile {
				n *= g.cfg.Days
			}
			plan.victims = g.pickVictims(g.rng("victims-"+spec.Name), n)
		}
		g.plans = append(g.plans, plan)
		g.truth.Campaigns[spec.Name] = plan.truth
	}
}

// tiersFor returns (building if needed) the campaign's tiers for a day.
func (p *campaignPlan) tiersFor(g *generator, day int) []tier {
	genDay := 0
	if p.spec.Agile {
		genDay = day
	}
	if t, ok := p.tiersByDay[genDay]; ok {
		return t
	}
	tiers := p.build(g, genDay)
	p.tiersByDay[genDay] = tiers
	// Record truth for every server of the tier set.
	for _, tr := range tiers {
		for _, s := range tr.servers {
			g.truth.Servers[s.name] = ServerTruth{Campaign: p.spec.Name, Category: tr.category}
			p.truth.Servers = appendUnique(p.truth.Servers, s.name)
		}
	}
	return tiers
}

func appendUnique(list []string, s string) []string {
	for _, v := range list {
		if v == s {
			return list
		}
	}
	return append(list, s)
}

// build constructs the campaign's tiers for a generation day, registering
// whois records, IPs and prober liveness.
func (p *campaignPlan) build(g *generator, genDay int) []tier {
	rng := g.rng(fmt.Sprintf("campaign-%s-gen%d", p.spec.Name, genDay))
	switch p.spec.Kind {
	case KindDomainFlux:
		return []tier{p.domainTier(g, rng, genDay, CatC2, "login.php",
			[]string{"/%s"}, "p="+itoa(rng)+"&id="+itoa(rng), "MSIE 6.0", 0.05)}
	case KindDGA:
		return []tier{p.dgaTier(g, rng, genDay)}
	case KindTwoTier:
		cc := p.domainTier(g, rng, genDay, CatC2, "news.php",
			[]string{"/images/%s"}, "p="+itoa(rng)+"&id="+itoa(rng)+"&e=0", "Internet Exploder", 0.05)
		dl := p.downloadTier(g, rng, genDay)
		return []tier{cc, dl}
	case KindSality:
		cc := p.domainTier(g, rng, genDay, CatC2, "/",
			[]string{"%s"}, "exp="+itoa(rng), "KUKU v5.05exp", 0.05)
		dl := p.compromisedGifTier(g, rng)
		return []tier{cc, dl}
	case KindScanner:
		return []tier{p.victimTier(g, genDay, CatScanVictim, "setup.php",
			[]string{"/phpmyadmin/scripts/%s", "/pma/%s", "/phpMyAdmin/scripts/%s", "/mysql/%s"},
			"", "ZmEu", 0.9)}
	case KindIframe:
		return []tier{p.victimTier(g, genDay, CatIframeVictim, "sm3.php",
			[]string{"/images/%s", "/wp-content/uploads/%s"},
			"", "-", 0.6)}
	case KindPhishing:
		return []tier{p.domainTier(g, rng, genDay, CatPhishing, "verify.php",
			[]string{"/secure/%s"}, "acct=x", browserUA, 0.05)}
	case KindDropZone:
		return []tier{p.domainTier(g, rng, genDay, CatDropZone, "gate.php",
			[]string{"/%s"}, "data="+randomLabel(rng, 12), "MSIE 7.0", 0.05)}
	default:
		return nil
	}
}

func itoa(rng *rand.Rand) string { return fmt.Sprintf("%d", 10000+rng.Intn(89999)) }

// domainTier creates a tier of registered malicious domains.
func (p *campaignPlan) domainTier(g *generator, rng *rand.Rand, genDay int, cat Category, file string, paths []string, query, ua string, errRate float64) tier {
	t := tier{category: cat, paths: paths, query: query, ua: ua, errRate: errRate}
	tlds := []string{".com", ".net", ".info", ".biz", ".org"}
	sharedIPs := []string{
		fmt.Sprintf("66.%d.%d.1", p.index, genDay),
		fmt.Sprintf("66.%d.%d.2", p.index, genDay),
	}
	for i := 0; i < p.spec.Servers; i++ {
		name := randomLabel(rng, 6+rng.Intn(5)) + tlds[i%len(tlds)]
		ips := []string{fmt.Sprintf("66.%d.%d.%d", p.index, genDay, 10+i)}
		if p.spec.SharedIP {
			// Every server resolves through the whole shared pool so the
			// per-server IP sets coincide (domain flux, eq. 8).
			ips = sharedIPs
		}
		f := file
		if p.spec.ObfuscatedNames {
			f = shuffledName(rng, p.obfBase, ".php")
		}
		if p.spec.RandomFilePerServer {
			// File-dimension evasion (§VI): every server gets its own
			// handler name, unrelated character distributions included.
			f = randomLabel(rng, 8+rng.Intn(6)) + ".php"
		}
		t.servers = append(t.servers, campaignServer{name: name, ips: ips, files: []string{f}})
		t.files = append(t.files, f)
		p.registerDomain(g, rng, name)
	}
	return t
}

// dgaTier creates a Zeus-style pool of generated names on a free-hosting
// effective TLD, all resolving to the same IPs and serving login.php.
func (p *campaignPlan) dgaTier(g *generator, rng *rand.Rand, genDay int) tier {
	t := tier{category: CatC2, paths: []string{"/%s"}, query: "", ua: "MSIE 6.0", errRate: 0.05}
	base := randomLabel(rng, 4)
	sharedIP := fmt.Sprintf("66.%d.%d.7", p.index, genDay)
	for i := 0; i < p.spec.Servers; i++ {
		name := fmt.Sprintf("%s%d%dm.cz.cc", base, i+1, (i+1)*11%100)
		t.servers = append(t.servers, campaignServer{name: name, ips: []string{sharedIP}, files: []string{"login.php"}})
		t.files = append(t.files, "login.php")
		p.registerDomain(g, rng, name)
	}
	return t
}

// downloadTier creates a Bagle-style tier of compromised-looking download
// hosts with distinct IPs and whois.
func (p *campaignPlan) downloadTier(g *generator, rng *rand.Rand, genDay int) tier {
	t := tier{category: CatDownload, paths: []string{"/images/%s"}, ua: "Mozilla/4.0 (compatible; MSIE 6.0)", errRate: 0.05}
	words := []string{"lajuve", "shayestegansch", "bigdaybreaker", "holidaysun", "artcraft",
		"gardenweb", "cityline", "bluewave", "sunpeak", "oldmill", "rivervale", "crafted"}
	for i := 0; i < p.spec.SecondaryServers; i++ {
		name := fmt.Sprintf("%s%d.org", words[i%len(words)], p.index*1000+genDay*100+i)
		ip := fmt.Sprintf("77.%d.%d.%d", p.index, genDay, 10+i)
		t.servers = append(t.servers, campaignServer{name: name, ips: []string{ip}, files: []string{"file.txt"}})
		t.files = append(t.files, "file.txt")
		// Compromised sites keep independent registrations.
		g.world.Whois.Add(whois.Record{
			Domain:     name,
			Registrant: fmt.Sprintf("Legit Owner %s", name),
			Email:      "admin@" + name,
			Phone:      fmt.Sprintf("+1-777-%06d", rng.Intn(999999)),
			Address:    fmt.Sprintf("%d Oak Ave", rng.Intn(9999)),
		})
		g.truth.Servers[name] = ServerTruth{Campaign: p.spec.Name, Category: CatDownload}
	}
	return t
}

// compromisedGifTier creates a Sality-style download tier hosted on
// existing benign (compromised) sites serving shared .gif payloads.
func (p *campaignPlan) compromisedGifTier(g *generator, rng *rand.Rand) tier {
	t := tier{category: CatDownload, paths: []string{"/images/%s"}, ua: "KUKU v5.05exp", errRate: 0.05}
	// Every compromised host serves the same payload pair (Table VIII:
	// logos.gif / mainf.gif), so the victims' observed file sets coincide.
	gifs := []string{"logos.gif", "mainf.gif"}
	for _, v := range p.victims {
		t.servers = append(t.servers, campaignServer{name: v.name, ips: []string{v.ip}, files: gifs})
		t.files = append(t.files, gifs...)
	}
	_ = rng
	return t
}

// victimTier creates an attack tier over pre-selected benign victims. For
// agile campaigns the victim pool is Days times larger and each generation
// day uses its own slice.
func (p *campaignPlan) victimTier(g *generator, genDay int, cat Category, file string, paths []string, query, ua string, errRate float64) tier {
	t := tier{category: cat, paths: paths, query: query, ua: ua, errRate: errRate}
	victims := p.victims
	if p.spec.Agile {
		per := p.spec.Servers
		lo := genDay * per
		if lo >= len(victims) {
			lo = len(victims) - per
		}
		hi := lo + per
		if hi > len(victims) {
			hi = len(victims)
		}
		victims = victims[lo:hi]
	}
	for _, v := range victims {
		t.servers = append(t.servers, campaignServer{name: v.name, ips: []string{v.ip}, files: []string{file}})
		t.files = append(t.files, file)
	}
	return t
}

// registerDomain records whois (shared fields when configured) and dead
// status for a malicious domain.
func (p *campaignPlan) registerDomain(g *generator, rng *rand.Rand, name string) {
	rec := whois.Record{
		Domain:     name,
		Registrant: fmt.Sprintf("Registrant %s", randomLabel(rng, 5)),
		Email:      randomLabel(rng, 6) + "@mailbox.ru",
		Created:    g.cfg.BaseTime.AddDate(0, 0, -rng.Intn(30)),
	}
	if p.spec.SharedWhois {
		rec.Phone = fmt.Sprintf("+7-495-%04d", 1000+p.index)
		rec.Address = fmt.Sprintf("%d Lenina St, Bldg %d", p.index+1, p.index+2)
		rec.NameServers = []string{
			fmt.Sprintf("ns1.park%d.net", p.index),
			fmt.Sprintf("ns2.park%d.net", p.index),
		}
	} else {
		rec.Phone = fmt.Sprintf("+7-495-%07d", rng.Intn(9999999))
		rec.Address = fmt.Sprintf("%d %s St", rng.Intn(999), randomLabel(rng, 6))
		rec.NameServers = []string{"ns1." + name}
	}
	g.world.Whois.Add(rec)
	if rng.Float64() < p.spec.DeadFraction {
		g.world.Prober.Dead[name] = true
	}
}

// emit generates the campaign's traffic for one day.
func (p *campaignPlan) emit(g *generator, day int, t *trace.Trace) {
	if day < p.spec.StartDay {
		return
	}
	tiers := p.tiersFor(g, day)
	if p.truth.ServersByDay == nil {
		p.truth.ServersByDay = make([][]string, g.cfg.Days)
	}
	var todays []string
	rng := g.rng(fmt.Sprintf("emit-%s-day%d", p.spec.Name, day))
	if p.spec.EvadeMain && len(tiers) > 0 && len(tiers[0].files) > 0 {
		// Main-dimension evasion (§VI): bots request the campaign's file
		// from random benign domains, trying to drag them into the herd.
		// The benign domains answer 404 and keep their own visitors, which
		// is exactly the counter-evidence the paper's defense relies on.
		file := tiers[0].files[0]
		for _, bot := range p.bots {
			for k := 0; k < 6; k++ {
				v := g.benign[rng.Intn(len(g.benign))]
				g.addReq(t, bot, v.name, v.ip, "/"+file, "", tiers[0].ua, "", 404)
			}
		}
	}
	for _, tr := range tiers {
		for _, s := range tr.servers {
			todays = append(todays, s.name)
			for _, bot := range p.bots {
				hits := 1 + rng.Intn(3)
				if tr.category == CatScanVictim || tr.category == CatIframeVictim {
					hits = 1 // one probe per victim per bot
				}
				for h := 0; h < hits; h++ {
					for fi, file := range s.files {
						path := fmt.Sprintf(tr.paths[rng.Intn(len(tr.paths))], file)
						status := 200
						if rng.Float64() < tr.errRate {
							status = 404
						}
						// Attack probes mostly fail; successful uploads 200.
						if tr.errRate >= 0.5 && status == 200 && rng.Float64() < 0.5 {
							status = 403
						}
						ip := s.ips[(h+fi)%len(s.ips)]
						g.addReq(t, bot, s.name, ip, path, tr.query, tr.ua, "", status)
					}
				}
			}
		}
	}
	p.truth.ServersByDay[day] = todays
}
