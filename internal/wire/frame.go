package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Length-prefixed framing for append-only logs of wire payloads: the
// cluster layer's fragment log and forwarder spool both persist encoded
// fragments as a sequence of frames. A frame is a 4-byte big-endian
// payload length followed by the payload bytes; writers emit header and
// payload as one buffer (one write syscall), so a crash tears at most the
// final frame, and ReadFrames reports exactly where the intact prefix
// ends so the owner can truncate the torn tail — the same healing
// discipline internal/store applies to its WAL.

// MaxFrameBytes bounds one frame's payload — the same ceiling
// internal/serve puts on a POSTed fragment body. A length past it is
// corruption (or a torn header parsed as garbage), not a bigger payload.
const MaxFrameBytes = 256 << 20

// frameHeaderLen is the fixed frame header size.
const frameHeaderLen = 4

// AppendFrame appends one frame holding payload to dst and returns the
// extended slice. Write the returned bytes with a single Write call to
// keep the torn-tail invariant.
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// ReadFrames decodes consecutive frames from r, calling fn with each
// payload (valid only during the call). It returns the byte offset just
// past the last intact frame:
//
//   - a clean end (EOF on a frame boundary) returns (offset, nil);
//   - a torn tail — a partial header or partial payload — returns the
//     offset where the torn frame begins and a nil error, so the owner
//     can truncate the file there and resume appending;
//   - a header whose length is zero or past MaxFrameBytes is reported as
//     ErrCorrupt with the same truncation offset (a torn header's garbage
//     bytes are indistinguishable from real corruption);
//   - fn errors and non-EOF read errors abort the scan and are returned
//     as-is.
func ReadFrames(r io.Reader, fn func(payload []byte) error) (int64, error) {
	var (
		off int64
		hdr [frameHeaderLen]byte
		buf []byte
	)
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return off, nil
			}
			return off, err
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > MaxFrameBytes {
			return off, fmt.Errorf("frame length %d at offset %d: %w", n, off, ErrCorrupt)
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(r, buf); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return off, nil
			}
			return off, err
		}
		if fn != nil {
			if err := fn(buf); err != nil {
				return off, err
			}
		}
		off += frameHeaderLen + int64(n)
	}
}
