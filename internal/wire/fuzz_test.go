package wire

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"smash/internal/trace"
)

// fuzzRequests derives a deterministic request sequence from raw fuzz
// bytes: every 4-byte chunk becomes one request whose fields are drawn
// from small pools (so servers/clients/files actually collide and build
// non-trivial aggregates), with occasional raw substrings of the input
// mixed in to exercise arbitrary byte content in interned names.
func fuzzRequests(data []byte) []trace.Request {
	base := time.Date(2012, 3, 1, 0, 0, 0, 0, time.UTC)
	var reqs []trace.Request
	for i := 0; i+4 <= len(data) && len(reqs) < 512; i += 4 {
		b0, b1, b2, b3 := data[i], data[i+1], data[i+2], data[i+3]
		r := trace.Request{
			Time:   base.Add(time.Duration(b0) * time.Minute),
			Client: fmt.Sprintf("c%d", b1%13),
			Status: 200,
		}
		switch b2 % 4 {
		case 0:
			r.Host = fmt.Sprintf("host%d.example.com", b3%9)
			r.ServerIP = fmt.Sprintf("10.1.0.%d", b3%9)
		case 1:
			r.ServerIP = fmt.Sprintf("10.2.0.%d", b3%7)
		case 2:
			r.Host = fmt.Sprintf("h%d.test", b3%5)
			r.Referrer = fmt.Sprintf("ref%d.test", b0%4)
			r.Query = fmt.Sprintf("a=%d&b=%d", b3%3, b0%2)
		default:
			// Arbitrary bytes as a hostname: interned names must survive
			// any content.
			r.Host = string(data[i : i+2+int(b3%3)])
			r.ServerIP = "10.3.0.1"
			r.PayloadDigest = fmt.Sprintf("d%d", b0%6)
		}
		if b1%3 == 0 {
			r.UserAgent = fmt.Sprintf("ua-%d", b2%4)
		}
		if b0%5 == 0 {
			r.Status = 500
		}
		r.Path = fmt.Sprintf("/p/f%d", b2%6)
		reqs = append(reqs, r)
	}
	return reqs
}

// FuzzIndexRoundTrip is the codec's core guarantee: for any index —
// including one whose symbol table carries foreign ids from unrelated
// interning — encode→decode preserves the Fingerprint exactly, and the
// encoding is canonical across symbol tables.
func FuzzIndexRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(3))
	f.Add([]byte("the quick brown fox jumps over the lazy dog"), uint8(17))
	f.Add(bytesSeq(256), uint8(101))
	f.Fuzz(func(t *testing.T, data []byte, junk uint8) {
		reqs := fuzzRequests(data)

		plain := trace.NewIndex()
		for i := range reqs {
			plain.Add(&reqs[i])
		}

		// Foreign symbol table: pre-intern junk so local ids differ.
		sy := trace.NewSymbols()
		for i := 0; i < int(junk); i++ {
			s := fmt.Sprintf("noise-%d", i)
			sy.Servers.ID(s)
			sy.Clients.ID(s)
			sy.IPs.ID(s)
			sy.Files.ID(s)
			sy.Agents.ID(s)
			sy.Queries.ID(s)
			sy.Payloads.ID(s)
			sy.Hosts.ID(s)
		}
		foreign := trace.NewIndexWith(sy)
		for i := range reqs {
			foreign.Add(&reqs[i])
		}

		encPlain, encForeign := EncodeIndex(plain), EncodeIndex(foreign)
		if string(encPlain) != string(encForeign) {
			t.Fatal("encoding not canonical across symbol tables")
		}
		dec, err := DecodeIndex(encForeign)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if got, want := dec.Fingerprint(), plain.Fingerprint(); got != want {
			t.Errorf("fingerprint diverged:\ngot:\n%s\nwant:\n%s", got, want)
		}
		if string(EncodeIndex(dec)) != string(encPlain) {
			t.Error("encode(decode(b)) != b")
		}
	})
}

// FuzzDecodeIndex feeds arbitrary bytes to the decoder: it must return an
// error or a valid index, never panic or over-allocate.
func FuzzDecodeIndex(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("SMWF"))
	f.Add(EncodeIndex(trace.NewIndex()))
	idx := trace.NewIndex()
	for _, r := range fuzzRequests(bytesSeq(64)) {
		r := r
		idx.Add(&r)
	}
	f.Add(EncodeIndex(idx))
	// Seed a huge claimed length.
	huge := append([]byte("SMWF"), 1)
	huge = binary.AppendUvarint(huge, 10)
	huge = binary.AppendUvarint(huge, 1<<40)
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := DecodeIndex(data)
		if err == nil {
			// Whatever decoded must re-encode cleanly (canonical form).
			if _, err := DecodeIndex(EncodeIndex(dec)); err != nil {
				t.Errorf("re-decode of accepted input failed: %v", err)
			}
		}
		DecodeFragment(data)
	})
}

// FuzzFragmentRoundTrip proves the envelope guarantee with hop records
// present: encode→decode preserves every field, encode(decode(b)) == b,
// and AppendHop on the encoded bytes equals re-encoding with the hop in
// place.
func FuzzFragmentRoundTrip(f *testing.F) {
	f.Add([]byte{}, "n0", int64(0), uint8(0), false)
	f.Add([]byte{1, 2, 3, 4}, "shard1", int64(15248), uint8(2), false)
	f.Add(bytesSeq(64), "merge0", int64(-40), uint8(5), true)
	f.Fuzz(func(t *testing.T, data []byte, node string, window int64, nhops uint8, final bool) {
		base := time.Date(2012, 3, 1, 0, 0, 0, 0, time.UTC)
		frag := &Fragment{
			Node:   node,
			Window: window,
			Start:  base,
			End:    base.Add(time.Hour),
			Final:  final,
		}
		if !final {
			idx := trace.NewIndex()
			for _, r := range fuzzRequests(data) {
				r := r
				idx.Add(&r)
			}
			frag.Index = idx
		}
		for i := 0; i < int(nhops%8); i++ {
			h := Hop{
				Node:     fmt.Sprintf("%s-hop%d", node, i),
				Role:     []string{"ingest", "merge", ""}[i%3],
				Send:     base.Add(time.Duration(i) * time.Second),
				Attempts: i + 1,
			}
			if i%2 == 0 {
				h.Recv = h.Send.Add(time.Duration(i) * time.Millisecond)
			}
			if i%3 == 1 {
				h.SpoolDwell = time.Duration(i) * time.Minute
			}
			frag.Hops = append(frag.Hops, h)
		}

		enc := EncodeFragment(frag)
		dec, err := DecodeFragment(enc)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if dec.Node != frag.Node || dec.Window != frag.Window || dec.Final != frag.Final {
			t.Fatalf("envelope diverged: %+v", dec)
		}
		if len(dec.Hops) != len(frag.Hops) {
			t.Fatalf("decoded %d hops, want %d", len(dec.Hops), len(frag.Hops))
		}
		for i, h := range dec.Hops {
			w := frag.Hops[i]
			if h.Node != w.Node || h.Role != w.Role || !h.Send.Equal(w.Send) || !h.Recv.Equal(w.Recv) ||
				h.Attempts != w.Attempts || h.SpoolDwell != w.SpoolDwell {
				t.Fatalf("hop %d diverged:\ngot  %+v\nwant %+v", i, h, w)
			}
		}
		if frag.Index != nil && dec.Index.Fingerprint() != frag.Index.Fingerprint() {
			t.Error("fragment index fingerprint diverged")
		}
		if string(EncodeFragment(dec)) != string(enc) {
			t.Error("encode(decode(b)) != b")
		}

		extra := Hop{Node: "relay", Role: "merge", Send: base.Add(time.Minute), Attempts: 1}
		appended := AppendHop(enc, extra)
		frag.Hops = append(frag.Hops, extra)
		if string(appended) != string(EncodeFragment(frag)) {
			t.Error("AppendHop diverged from re-encoding")
		}
		if _, err := DecodeFragment(appended); err != nil {
			t.Errorf("decode after AppendHop failed: %v", err)
		}
	})
}

func bytesSeq(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 7)
	}
	return b
}
