package wire

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"smash/internal/trace"
)

// sampleTrace builds a small but feature-dense trace touching every
// ServerInfo aggregate: hostnames and bare IPs, referrers, queries,
// user agents, payload digests, and error statuses.
func sampleTrace() *trace.Trace {
	base := time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
	t := &trace.Trace{Name: "wire-sample"}
	for i := 0; i < 40; i++ {
		t.Requests = append(t.Requests, trace.Request{
			Time:      base.Add(time.Duration(i) * time.Minute),
			Client:    fmt.Sprintf("10.0.0.%d", i%5),
			Host:      fmt.Sprintf("site-%d.example.com", i%7),
			ServerIP:  fmt.Sprintf("198.51.100.%d", i%7),
			Path:      fmt.Sprintf("/app/file%d.php", i%3),
			Query:     "id=1&e=x",
			UserAgent: fmt.Sprintf("agent-%d", i%2),
			Referrer:  "portal.example.org",
			Status:    200 + 200*(i%4/3), // every 4th request errors
		})
	}
	for i := 0; i < 10; i++ {
		t.Requests = append(t.Requests, trace.Request{
			Time:          base.Add(time.Hour),
			Client:        "10.0.1.1",
			ServerIP:      "203.0.113.9", // no hostname: IP-keyed server
			Path:          "/",
			PayloadDigest: fmt.Sprintf("digest-%d", i%3),
			Status:        404,
		})
	}
	return t
}

func TestIndexRoundTrip(t *testing.T) {
	idx := trace.BuildIndex(sampleTrace())
	enc := EncodeIndex(idx)
	dec, err := DecodeIndex(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dec.Fingerprint(), idx.Fingerprint(); got != want {
		t.Errorf("fingerprint diverged after round-trip:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// The encoding is canonical: an index with a foreign symbol table (ids
// offset by unrelated interning) encodes to the same bytes, and
// encode(decode(b)) == b.
func TestEncodingCanonical(t *testing.T) {
	tr := sampleTrace()
	plain := trace.BuildIndex(tr)

	sy := trace.NewSymbols()
	for i := 0; i < 100; i++ {
		junk := fmt.Sprintf("junk-%d", i)
		sy.Servers.ID(junk)
		sy.Clients.ID(junk)
		sy.Files.ID(junk)
		sy.Agents.ID(junk)
	}
	foreign := trace.NewIndexWith(sy)
	for i := range tr.Requests {
		foreign.Add(&tr.Requests[i])
	}

	a, b := EncodeIndex(plain), EncodeIndex(foreign)
	if string(a) != string(b) {
		t.Error("encoding differs across symbol tables")
	}
	dec, err := DecodeIndex(a)
	if err != nil {
		t.Fatal(err)
	}
	if string(EncodeIndex(dec)) != string(a) {
		t.Error("encode(decode(b)) != b")
	}
}

// A decoded fragment remap-merges into an aggregate exactly like the
// original index would.
func TestDecodedFragmentMerges(t *testing.T) {
	idx := trace.BuildIndex(sampleTrace())
	dec, err := DecodeIndex(EncodeIndex(idx))
	if err != nil {
		t.Fatal(err)
	}

	direct := trace.NewIndex()
	direct.Merge(idx)
	viaWire := trace.NewIndex()
	viaWire.Merge(dec)
	if direct.Fingerprint() != viaWire.Fingerprint() {
		t.Error("merge of decoded fragment diverged from merge of original")
	}
}

func TestEmptyIndexRoundTrip(t *testing.T) {
	idx := trace.NewIndex()
	dec, err := DecodeIndex(EncodeIndex(idx))
	if err != nil {
		t.Fatal(err)
	}
	if dec.RequestCount != 0 || len(dec.Servers) != 0 {
		t.Errorf("empty index decoded to %d requests, %d servers", dec.RequestCount, len(dec.Servers))
	}
}

func TestFragmentRoundTrip(t *testing.T) {
	idx := trace.BuildIndex(sampleTrace())
	f := &Fragment{
		Node:   "ingest-0",
		Window: 15248,
		Start:  time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC),
		End:    time.Date(2011, 10, 2, 0, 0, 0, 0, time.UTC),
		Index:  idx,
	}
	dec, err := DecodeFragment(EncodeFragment(f))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Node != f.Node || dec.Window != f.Window || !dec.Start.Equal(f.Start) || !dec.End.Equal(f.End) || dec.Final {
		t.Errorf("envelope diverged: %+v", dec)
	}
	if dec.Index.Fingerprint() != idx.Fingerprint() {
		t.Error("fragment index fingerprint diverged")
	}

	final := &Fragment{Node: "ingest-1", Window: 7, Final: true}
	decF, err := DecodeFragment(EncodeFragment(final))
	if err != nil {
		t.Fatal(err)
	}
	if !decF.Final || decF.Index != nil || decF.Node != "ingest-1" {
		t.Errorf("final marker diverged: %+v", decF)
	}
}

func TestHopRoundTrip(t *testing.T) {
	idx := trace.BuildIndex(sampleTrace())
	f := &Fragment{
		Node:   "ingest-0",
		Window: 42,
		Start:  time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC),
		End:    time.Date(2011, 10, 2, 0, 0, 0, 0, time.UTC),
		Index:  idx,
		Hops: []Hop{
			{
				Node: "ingest-0", Role: "ingest",
				Send:       time.Date(2011, 10, 2, 0, 0, 1, 500, time.UTC),
				Recv:       time.Date(2011, 10, 2, 0, 0, 2, 0, time.UTC),
				Attempts:   3,
				SpoolDwell: 90 * time.Second,
			},
			// In-flight hop: Recv not yet stamped.
			{Node: "merge-0", Role: "merge", Send: time.Date(2011, 10, 2, 0, 0, 3, 0, time.UTC), Attempts: 1},
		},
	}
	enc := EncodeFragment(f)
	dec, err := DecodeFragment(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Hops) != 2 {
		t.Fatalf("decoded %d hops, want 2", len(dec.Hops))
	}
	for i, h := range dec.Hops {
		w := f.Hops[i]
		if h.Node != w.Node || h.Role != w.Role || !h.Send.Equal(w.Send) || !h.Recv.Equal(w.Recv) ||
			h.Attempts != w.Attempts || h.SpoolDwell != w.SpoolDwell {
			t.Errorf("hop %d diverged:\ngot  %+v\nwant %+v", i, h, w)
		}
	}
	if !dec.Hops[1].Recv.IsZero() {
		t.Errorf("unset Recv decoded as %v, want zero time", dec.Hops[1].Recv)
	}
	if string(EncodeFragment(dec)) != string(enc) {
		t.Error("encode(decode(b)) != b with hops present")
	}
	if dec.Index.Fingerprint() != idx.Fingerprint() {
		t.Error("hop trail corrupted the index payload")
	}
}

// AppendHop on encoded bytes is exactly equivalent to appending the hop
// to the struct and re-encoding — the relay fast path changes nothing.
func TestAppendHopMatchesReencode(t *testing.T) {
	idx := trace.BuildIndex(sampleTrace())
	f := &Fragment{
		Node:   "shard1",
		Window: 9,
		Start:  time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC),
		End:    time.Date(2020, 1, 2, 0, 0, 0, 0, time.UTC),
		Index:  idx,
		Hops:   []Hop{{Node: "shard1", Role: "ingest", Send: time.Unix(100, 0).UTC(), Attempts: 1}},
	}
	h := Hop{Node: "merge0", Role: "merge", Send: time.Unix(200, 7).UTC(), Recv: time.Unix(201, 0).UTC(), Attempts: 2, SpoolDwell: time.Second}

	appended := AppendHop(EncodeFragment(f), h)
	f.Hops = append(f.Hops, h)
	if string(appended) != string(EncodeFragment(f)) {
		t.Error("AppendHop diverged from re-encoding with the hop in place")
	}
}

// Final markers carry hops too — the trail is how the root learns the
// role of a node that never shipped a non-empty window.
func TestFinalMarkerCarriesHops(t *testing.T) {
	final := &Fragment{
		Node: "shard0", Window: 12, Final: true,
		Hops: []Hop{{Node: "shard0", Role: "ingest", Send: time.Unix(50, 0).UTC(), Attempts: 1}},
	}
	dec, err := DecodeFragment(EncodeFragment(final))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Final || len(dec.Hops) != 1 || dec.Hops[0].Role != "ingest" {
		t.Errorf("final marker diverged: %+v", dec)
	}
}

// Version-1 fragments (no hop section) still decode, and their strict
// trailing-bytes check still rejects junk.
func TestFragmentV1Compat(t *testing.T) {
	f := &Fragment{
		Node:   "old-node",
		Window: 3,
		Start:  time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC),
		End:    time.Date(2011, 10, 2, 0, 0, 0, 0, time.UTC),
		Index:  trace.BuildIndex(sampleTrace()),
	}
	enc := EncodeFragment(f)
	if enc[4] != FragmentVersion {
		t.Fatalf("version byte = %d, want %d", enc[4], FragmentVersion)
	}
	v1 := append([]byte{}, enc...)
	v1[4] = 1 // a hop-free v2 body is byte-identical to the v1 encoding
	dec, err := DecodeFragment(v1)
	if err != nil {
		t.Fatalf("v1 fragment rejected: %v", err)
	}
	if dec.Node != f.Node || dec.Window != f.Window || dec.Hops != nil {
		t.Errorf("v1 fragment diverged: %+v", dec)
	}
	if _, err := DecodeFragment(append(v1, 0xFF)); err == nil {
		t.Error("v1 fragment with trailing junk accepted")
	}
}

func TestHopDecodeRejectsCorruption(t *testing.T) {
	enc := EncodeFragment(&Fragment{Node: "n", Window: 1, Final: true})
	cases := map[string][]byte{
		"truncated hop":  append(append([]byte{}, enc...), 2, 'a'), // node length 2, one byte
		"hop bad string": append(append([]byte{}, enc...), 0xFF, 0xFF, 0xFF, 0xFF, 0x7F),
		// Keep the hop's node/role/send/recv/attempts bytes, replace the
		// dwell varint with a value above MaxInt64.
		"huge dwell": append(AppendHop(append([]byte{}, enc...), Hop{Node: "x"})[:len(enc)+6],
			0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01),
	}
	for name, data := range cases {
		if _, err := DecodeFragment(data); err == nil {
			t.Errorf("%s: decode accepted corrupt hop section", name)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	enc := EncodeIndex(trace.BuildIndex(sampleTrace()))
	cases := map[string][]byte{
		"empty":         {},
		"bad magic":     append([]byte("XXXX"), enc[4:]...),
		"future ver":    append(append([]byte{}, enc[:4]...), append([]byte{99}, enc[5:]...)...),
		"truncated":     enc[:len(enc)/2],
		"trailing junk": append(append([]byte{}, enc...), 0xFF),
	}
	for name, data := range cases {
		if _, err := DecodeIndex(data); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
	if _, err := DecodeFragment([]byte("SMWF")); err == nil {
		t.Error("fragment decode accepted truncated input")
	}
	// A huge claimed collection length must fail fast, not allocate.
	huge := append(append([]byte{}, enc[:5]...), 0xFF, 0xFF, 0xFF, 0xFF, 0x7F)
	if _, err := DecodeIndex(huge); err == nil {
		t.Error("decode accepted absurd dictionary length")
	}
}

func TestVersionErrorMentionsVersions(t *testing.T) {
	enc := EncodeIndex(trace.NewIndex())
	enc[4] = 9 // bump version byte (fits a single-byte uvarint)
	_, err := DecodeIndex(enc)
	if err == nil || !strings.Contains(err.Error(), "unsupported version 9") {
		t.Errorf("version error = %v", err)
	}
}

// Duplicate or out-of-order count-map entries are corruption, not a
// silent overwrite (the encoder emits strictly increasing positions).
func TestDecodeRejectsUnsortedCounts(t *testing.T) {
	tr := &trace.Trace{Requests: []trace.Request{
		{Time: time.Unix(10, 0), Client: "c1", Host: "a.test", ServerIP: "1.1.1.1", Path: "/x", Status: 200},
		{Time: time.Unix(11, 0), Client: "c2", Host: "a.test", ServerIP: "1.1.1.1", Path: "/x", Status: 200},
	}}
	enc := EncodeIndex(trace.BuildIndex(tr))
	// The two clients of server a.test encode as the pairs (0,1),(1,1).
	// Find that byte run and swap the positions to (1,1),(0,1).
	pat := []byte{2, 0, 1, 1, 1}
	i := bytes.Index(enc, pat)
	if i < 0 {
		t.Fatal("expected count-map byte pattern not found; encoding changed?")
	}
	bad := append([]byte{}, enc...)
	bad[i+1], bad[i+3] = 1, 0
	if _, err := DecodeIndex(bad); err == nil {
		t.Error("out-of-order count map accepted")
	}
	dup := append([]byte{}, enc...)
	dup[i+3] = dup[i+1] // duplicate position
	if _, err := DecodeIndex(dup); err == nil {
		t.Error("duplicate count-map position accepted")
	}
}
