package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"smash/internal/trace"
)

// Frames round-trip in order and ReadFrames reports the full length of a
// clean stream.
func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{[]byte("a"), bytes.Repeat([]byte{0xfe}, 300), []byte("tail")}
	var log []byte
	for _, p := range payloads {
		log = AppendFrame(log, p)
	}
	var got [][]byte
	off, err := ReadFrames(bytes.NewReader(log), func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if off != int64(len(log)) {
		t.Errorf("clean offset = %d, want %d", off, len(log))
	}
	if len(got) != len(payloads) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Errorf("frame %d = %q, want %q", i, got[i], payloads[i])
		}
	}
}

// A torn tail — partial header or partial payload — stops the scan at the
// last intact frame without an error, so the owner can truncate there.
func TestFrameTornTail(t *testing.T) {
	var log []byte
	log = AppendFrame(log, []byte("intact"))
	intact := int64(len(log))
	log = AppendFrame(log, []byte("torn-away"))

	for cut := intact + 1; cut < int64(len(log)); cut++ {
		n := 0
		off, err := ReadFrames(bytes.NewReader(log[:cut]), func([]byte) error { n++; return nil })
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if off != intact || n != 1 {
			t.Errorf("cut %d: offset %d frames %d, want offset %d frames 1", cut, off, n, intact)
		}
	}
}

// Garbage lengths (zero or oversized) are corruption, reported with the
// truncation offset.
func TestFrameCorruptLength(t *testing.T) {
	var log []byte
	log = AppendFrame(log, []byte("ok"))
	intact := int64(len(log))
	for _, n := range []uint32{0, MaxFrameBytes + 1} {
		bad := binary.BigEndian.AppendUint32(append([]byte(nil), log...), n)
		bad = append(bad, "some bytes"...)
		off, err := ReadFrames(bytes.NewReader(bad), nil)
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("length %d: err = %v, want ErrCorrupt", n, err)
		}
		if off != intact {
			t.Errorf("length %d: offset = %d, want %d", n, off, intact)
		}
	}
}

// Fragments framed and read back decode to the original — the fragment
// log's append/replay path in miniature.
func TestFrameFragmentLog(t *testing.T) {
	idx := trace.BuildIndex(sampleTrace())
	frag := &Fragment{
		Node: "n0", Window: 7,
		Start: time.Date(2020, 9, 13, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2020, 9, 14, 0, 0, 0, 0, time.UTC),
		Index: idx,
	}
	var log []byte
	for i := 0; i < 3; i++ {
		log = AppendFrame(log, EncodeFragment(frag))
	}
	count := 0
	_, err := ReadFrames(bytes.NewReader(log), func(p []byte) error {
		got, err := DecodeFragment(p)
		if err != nil {
			return err
		}
		if got.Node != frag.Node || got.Window != frag.Window {
			t.Errorf("decoded fragment = %s/%d", got.Node, got.Window)
		}
		count++
		return nil
	})
	if err != nil || count != 3 {
		t.Fatalf("replay: count=%d err=%v", count, err)
	}
}
