// Package wire is SMASH's cluster interchange codec: a versioned,
// length-prefixed binary encoding of trace.Index snapshots that lets
// ingest nodes ship sealed window fragments to an aggregator in another
// process.
//
// Interned ids are process-local (see internal/intern: ids are assigned in
// first-sight order), so an index cannot be shipped as raw id-keyed maps —
// the receiver's tables would resolve the ids to different strings. The
// codec therefore ships each fragment with its own compact symbol
// dictionary: for every namespace it collects exactly the names the
// fragment references, sorts them, and encodes counts keyed by position in
// that sorted dictionary. Decoding interns the dictionary into a fresh
// trace.Symbols (dense ids in dictionary order) and rebuilds the index;
// the aggregator then folds the decoded fragment in through
// trace.Index.Merge's name-remap path.
//
// Because dictionaries and count maps are sorted by name, encoding is
// canonical: two indexes describing the same traffic aggregate encode to
// identical bytes regardless of how their symbol tables assigned ids, and
// encode(decode(b)) == b. Round-trips preserve trace.Index.Fingerprint
// exactly (fuzz-tested, including foreign symbol tables).
//
// Layout (all integers unsigned LEB128 varints unless noted):
//
//	magic "SMWF" | version | requestCount
//	8 × namespace dictionary: count, then count × (len, bytes)
//	   (order: servers, clients, ips, files, agents, queries, payloads, hosts)
//	serverCount, then per server (sorted by key):
//	   serverDictID | requests | errorRequests
//	   8 × counts map: n, then n × (dictID, count), sorted by dictID
//	clientCount, then per client (sorted by name):
//	   clientDictID | n, then n × (serverDictID, count), sorted by dictID
//
// A Fragment wraps an encoded index with the routing envelope the cluster
// layer needs: source node, epoch-derived window id, window bounds, and
// the end-of-stream marker. Since envelope version 2 a fragment also
// carries a trailing hop-provenance section — self-delimiting records,
// one per transit, read until the buffer ends — which relays extend with
// AppendHop without re-encoding the payload.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"smash/internal/intern"
	"smash/internal/trace"
)

// Version is the current index codec version. Decoders reject anything
// newer.
const Version = 1

// FragmentVersion is the current fragment envelope version. Version 2
// added the trailing hop-provenance section; version-1 fragments (no
// hops) still decode. Decoders reject anything newer.
const FragmentVersion = 2

var magic = [4]byte{'S', 'M', 'W', 'F'}

// ErrCorrupt wraps all decode failures caused by malformed input.
var ErrCorrupt = errors.New("wire: corrupt data")

// dict is one namespace's compact dictionary: the names the fragment
// references, sorted, plus the local-id -> dictionary-position mapping
// used while encoding.
type dict struct {
	names []string
	pos   map[uint32]uint32 // local id -> position in names
}

// dictBuilder accumulates the local ids a namespace references.
type dictBuilder struct {
	table *intern.Table
	used  map[uint32]struct{}
}

func (b *dictBuilder) add(m trace.Counts) {
	for id := range m {
		b.used[id] = struct{}{}
	}
}

// build resolves and sorts the used names. Positions are assigned in
// sorted-name order, which is what makes the encoding canonical.
func (b *dictBuilder) build() dict {
	names := b.table.Names()
	d := dict{
		names: make([]string, 0, len(b.used)),
		pos:   make(map[uint32]uint32, len(b.used)),
	}
	for id := range b.used {
		d.names = append(d.names, names[id])
	}
	sort.Strings(d.names)
	index := make(map[string]uint32, len(d.names))
	for i, n := range d.names {
		index[n] = uint32(i)
	}
	for id := range b.used {
		d.pos[id] = index[names[id]]
	}
	return d
}

// namespace indexes into the fixed dictionary array.
const (
	nsServers = iota
	nsClients
	nsIPs
	nsFiles
	nsAgents
	nsQueries
	nsPayloads
	nsHosts
	nsCount
)

// EncodeIndex serializes idx into the canonical wire form.
func EncodeIndex(idx *trace.Index) []byte {
	return appendIndex(make([]byte, 0, 1<<12), idx)
}

// appendIndex appends the canonical encoding of idx to b — the shared
// implementation of EncodeIndex and EncodeFragment, so a fragment's index
// encodes straight into the envelope buffer without an intermediate copy.
func appendIndex(b []byte, idx *trace.Index) []byte {
	sy := idx.Syms
	builders := [nsCount]dictBuilder{
		nsServers:  {table: sy.Servers, used: map[uint32]struct{}{}},
		nsClients:  {table: sy.Clients, used: map[uint32]struct{}{}},
		nsIPs:      {table: sy.IPs, used: map[uint32]struct{}{}},
		nsFiles:    {table: sy.Files, used: map[uint32]struct{}{}},
		nsAgents:   {table: sy.Agents, used: map[uint32]struct{}{}},
		nsQueries:  {table: sy.Queries, used: map[uint32]struct{}{}},
		nsPayloads: {table: sy.Payloads, used: map[uint32]struct{}{}},
		nsHosts:    {table: sy.Hosts, used: map[uint32]struct{}{}},
	}
	keys := idx.ServerKeys()
	for _, k := range keys {
		s := idx.Servers[k]
		builders[nsServers].used[s.SID] = struct{}{}
		builders[nsClients].add(s.Clients)
		builders[nsIPs].add(s.IPs)
		builders[nsFiles].add(s.Files)
		builders[nsServers].add(s.Referrers)
		builders[nsAgents].add(s.UserAgents)
		builders[nsQueries].add(s.Queries)
		builders[nsPayloads].add(s.Payloads)
		builders[nsHosts].add(s.Hosts)
	}
	for c, cs := range idx.ClientServers {
		builders[nsClients].used[c] = struct{}{}
		builders[nsServers].add(cs)
	}
	var dicts [nsCount]dict
	for i := range builders {
		dicts[i] = builders[i].build()
	}

	b = append(b, magic[:]...)
	b = binary.AppendUvarint(b, Version)
	b = binary.AppendUvarint(b, uint64(idx.RequestCount))
	for i := range dicts {
		b = binary.AppendUvarint(b, uint64(len(dicts[i].names)))
		for _, n := range dicts[i].names {
			b = binary.AppendUvarint(b, uint64(len(n)))
			b = append(b, n...)
		}
	}
	appendCounts := func(b []byte, d *dict, m trace.Counts) []byte {
		pairs := make([][2]uint32, 0, len(m))
		for id, n := range m {
			pairs = append(pairs, [2]uint32{d.pos[id], n})
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
		b = binary.AppendUvarint(b, uint64(len(pairs)))
		for _, p := range pairs {
			b = binary.AppendUvarint(b, uint64(p[0]))
			b = binary.AppendUvarint(b, uint64(p[1]))
		}
		return b
	}
	b = binary.AppendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		s := idx.Servers[k]
		b = binary.AppendUvarint(b, uint64(dicts[nsServers].pos[s.SID]))
		b = binary.AppendUvarint(b, uint64(s.Requests))
		b = binary.AppendUvarint(b, uint64(s.ErrorRequests))
		b = appendCounts(b, &dicts[nsClients], s.Clients)
		b = appendCounts(b, &dicts[nsIPs], s.IPs)
		b = appendCounts(b, &dicts[nsFiles], s.Files)
		b = appendCounts(b, &dicts[nsServers], s.Referrers)
		b = appendCounts(b, &dicts[nsAgents], s.UserAgents)
		b = appendCounts(b, &dicts[nsQueries], s.Queries)
		b = appendCounts(b, &dicts[nsPayloads], s.Payloads)
		b = appendCounts(b, &dicts[nsHosts], s.Hosts)
	}
	// Clients sorted by name == sorted by dictionary position.
	clients := make([]uint32, 0, len(idx.ClientServers))
	for c := range idx.ClientServers {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool {
		return dicts[nsClients].pos[clients[i]] < dicts[nsClients].pos[clients[j]]
	})
	b = binary.AppendUvarint(b, uint64(len(clients)))
	for _, c := range clients {
		b = binary.AppendUvarint(b, uint64(dicts[nsClients].pos[c]))
		b = appendCounts(b, &dicts[nsServers], idx.ClientServers[c])
	}
	return b
}

// reader walks an encoded buffer with bounds checking.
type reader struct {
	b   []byte
	off int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated varint at %d: %w", r.off, ErrCorrupt)
	}
	r.off += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated varint at %d: %w", r.off, ErrCorrupt)
	}
	r.off += n
	return v, nil
}

// length reads a collection length and rejects values that could not fit
// in the remaining bytes (each element takes at least min bytes), bounding
// allocation on corrupt input. The comparison stays in uint64 so a
// 64-bit claimed length cannot overflow its way past the check.
func (r *reader) length(min int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(r.b)-r.off)/uint64(min) {
		return 0, fmt.Errorf("length %d exceeds remaining input: %w", v, ErrCorrupt)
	}
	return int(v), nil
}

// scalar reads a non-negative scalar counter, bounding it to 32 bits so
// int conversions behave identically on every platform.
func (r *reader) scalar() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > 1<<31-1 {
		return 0, fmt.Errorf("scalar %d out of range: %w", v, ErrCorrupt)
	}
	return int(v), nil
}

func (r *reader) str() (string, error) {
	n, err := r.length(1)
	if err != nil {
		return "", err
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s, nil
}

// counts decodes one count map, translating dictionary positions into the
// decoder's local ids through ids (ids[pos] = local id). Positions must
// be strictly increasing — the canonical form the encoder emits — so
// duplicate entries fail as corruption instead of silently overwriting.
func (r *reader) counts(ids []uint32) (trace.Counts, error) {
	n, err := r.length(2)
	if err != nil {
		return nil, err
	}
	m := make(trace.Counts, n)
	prev := int64(-1)
	for i := 0; i < n; i++ {
		pos, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if pos >= uint64(len(ids)) {
			return nil, fmt.Errorf("dictionary position %d out of range: %w", pos, ErrCorrupt)
		}
		if int64(pos) <= prev {
			return nil, fmt.Errorf("count map not sorted at position %d: %w", pos, ErrCorrupt)
		}
		prev = int64(pos)
		c, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if c == 0 || c > 1<<32-1 {
			return nil, fmt.Errorf("count %d out of range: %w", c, ErrCorrupt)
		}
		m[ids[pos]] = uint32(c)
	}
	return m, nil
}

// DecodeIndex rebuilds an index (with fresh Symbols) from EncodeIndex
// output. The result is safe to Merge into any other index — ids remap
// through their names.
func DecodeIndex(data []byte) (*trace.Index, error) {
	idx, n, err := decodeIndex(&reader{b: data})
	if err != nil {
		return nil, err
	}
	if n != len(data) {
		return nil, fmt.Errorf("%d trailing bytes: %w", len(data)-n, ErrCorrupt)
	}
	return idx, nil
}

func decodeIndex(r *reader) (*trace.Index, int, error) {
	if len(r.b)-r.off < len(magic) || string(r.b[r.off:r.off+len(magic)]) != string(magic[:]) {
		return nil, 0, fmt.Errorf("bad magic: %w", ErrCorrupt)
	}
	r.off += len(magic)
	v, err := r.uvarint()
	if err != nil {
		return nil, 0, err
	}
	if v == 0 || v > Version {
		return nil, 0, fmt.Errorf("wire: unsupported version %d (max %d)", v, Version)
	}
	requests, err := r.scalar()
	if err != nil {
		return nil, 0, err
	}

	sy := trace.NewSymbols()
	tables := [nsCount]*intern.Table{
		nsServers: sy.Servers, nsClients: sy.Clients, nsIPs: sy.IPs,
		nsFiles: sy.Files, nsAgents: sy.Agents, nsQueries: sy.Queries,
		nsPayloads: sy.Payloads, nsHosts: sy.Hosts,
	}
	// ids[ns][pos] is the local id of dictionary entry pos. Fresh tables
	// assign dense ids in intern order, so ids[ns][pos] == pos — but going
	// through the table keeps the decoder honest about that invariant.
	var ids [nsCount][]uint32
	var names [nsCount][]string
	for ns := 0; ns < nsCount; ns++ {
		n, err := r.length(1)
		if err != nil {
			return nil, 0, err
		}
		ids[ns] = make([]uint32, n)
		names[ns] = make([]string, n)
		prev := ""
		for i := 0; i < n; i++ {
			s, err := r.str()
			if err != nil {
				return nil, 0, err
			}
			if i > 0 && s <= prev {
				return nil, 0, fmt.Errorf("dictionary not sorted: %w", ErrCorrupt)
			}
			prev = s
			ids[ns][i] = tables[ns].ID(s)
			names[ns][i] = s
		}
	}

	idx := trace.NewIndexWith(sy)
	nServers, err := r.length(3)
	if err != nil {
		return nil, 0, err
	}
	for i := 0; i < nServers; i++ {
		pos, err := r.uvarint()
		if err != nil {
			return nil, 0, err
		}
		if pos >= uint64(len(names[nsServers])) {
			return nil, 0, fmt.Errorf("server position %d out of range: %w", pos, ErrCorrupt)
		}
		key := names[nsServers][pos]
		if _, dup := idx.Servers[key]; dup {
			return nil, 0, fmt.Errorf("duplicate server %q: %w", key, ErrCorrupt)
		}
		info := idx.EnsureServer(key)
		reqs, err := r.scalar()
		if err != nil {
			return nil, 0, err
		}
		errs, err := r.scalar()
		if err != nil {
			return nil, 0, err
		}
		info.Requests, info.ErrorRequests = reqs, errs
		for _, field := range []struct {
			dst *trace.Counts
			ns  int
		}{
			{&info.Clients, nsClients}, {&info.IPs, nsIPs},
			{&info.Files, nsFiles}, {&info.Referrers, nsServers},
			{&info.UserAgents, nsAgents}, {&info.Queries, nsQueries},
			{&info.Payloads, nsPayloads}, {&info.Hosts, nsHosts},
		} {
			m, err := r.counts(ids[field.ns])
			if err != nil {
				return nil, 0, err
			}
			*field.dst = m
		}
	}
	nClients, err := r.length(2)
	if err != nil {
		return nil, 0, err
	}
	for i := 0; i < nClients; i++ {
		pos, err := r.uvarint()
		if err != nil {
			return nil, 0, err
		}
		if pos >= uint64(len(ids[nsClients])) {
			return nil, 0, fmt.Errorf("client position %d out of range: %w", pos, ErrCorrupt)
		}
		cid := ids[nsClients][pos]
		if _, dup := idx.ClientServers[cid]; dup {
			return nil, 0, fmt.Errorf("duplicate client entry: %w", ErrCorrupt)
		}
		m, err := r.counts(ids[nsServers])
		if err != nil {
			return nil, 0, err
		}
		idx.ClientServers[cid] = m
	}
	idx.RequestCount = requests
	return idx, r.off, nil
}

// Fragment is one window fragment in flight from an ingest node to the
// aggregator.
type Fragment struct {
	// Node names the sending ingest node; the aggregator tracks per-node
	// watermarks and metrics by it.
	Node string
	// Window is the epoch-derived window id: windows start at
	// origin + Window*stride, so every node derives the same id for the
	// same wall-clock window without coordination.
	Window int64
	// Start and End bound the window interval.
	Start, End time.Time
	// Final marks the node's end-of-stream: no fragment with a higher
	// Window will follow. Final fragments carry no index.
	Final bool
	// Index is the node's partial traffic aggregate for the window; nil
	// on Final markers.
	Index *trace.Index
	// Hops is the append-only provenance trail: one record per transit,
	// written by the sender just before each delivery attempt and stamped
	// with the receive time on arrival. A fan-in merger copies its
	// children's hops onto the merged fragment before appending its own,
	// so the root sees the full path. Hops never affect the index payload
	// or window identity — two fragments that differ only in Hops merge
	// identically.
	Hops []Hop
}

// Hop is one transit record in a fragment's provenance trail.
type Hop struct {
	// Node and Role identify the sending process ("ingest", "merge").
	Node, Role string
	// Send is the sender's wall clock just before the delivery attempt;
	// Recv is the receiver's wall clock at accept. Recv-Send estimates
	// transit latency plus inter-node clock skew. Zero times encode as 0.
	Send, Recv time.Time
	// Attempts counts delivery attempts for this transit, 1-based; >1
	// means retries or a spool replay preceded this copy.
	Attempts int
	// SpoolDwell is how long the fragment sat in the sender's durable
	// spool before this attempt; zero when it was never spooled.
	SpoolDwell time.Duration
}

const (
	flagFinal    = 1 << 0
	flagHasIndex = 1 << 1
)

// EncodeFragment serializes the fragment envelope plus its index and hop
// trail.
func EncodeFragment(f *Fragment) []byte {
	b := make([]byte, 0, 1<<12)
	b = append(b, magic[:]...)
	b = binary.AppendUvarint(b, FragmentVersion)
	b = binary.AppendUvarint(b, uint64(len(f.Node)))
	b = append(b, f.Node...)
	b = binary.AppendVarint(b, f.Window)
	b = binary.AppendVarint(b, f.Start.UnixNano())
	b = binary.AppendVarint(b, f.End.UnixNano())
	var flags byte
	if f.Final {
		flags |= flagFinal
	}
	if f.Index != nil {
		flags |= flagHasIndex
	}
	b = append(b, flags)
	if f.Index != nil {
		b = appendIndex(b, f.Index)
	}
	for i := range f.Hops {
		b = appendHop(b, &f.Hops[i])
	}
	return b
}

// hopTimeNS maps a wall-clock stamp to its wire form: zero times encode
// as 0 so an unset Recv round-trips exactly.
func hopTimeNS(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

func hopTime(ns int64) time.Time {
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

// appendHop appends one self-delimiting hop record. Hop records trail the
// fragment after the (optional) index; decoders read them until the buffer
// ends, so no count prefix is needed and a relay can extend the trail
// without re-encoding the payload.
func appendHop(b []byte, h *Hop) []byte {
	b = binary.AppendUvarint(b, uint64(len(h.Node)))
	b = append(b, h.Node...)
	b = binary.AppendUvarint(b, uint64(len(h.Role)))
	b = append(b, h.Role...)
	b = binary.AppendVarint(b, hopTimeNS(h.Send))
	b = binary.AppendVarint(b, hopTimeNS(h.Recv))
	b = binary.AppendUvarint(b, uint64(max(h.Attempts, 0)))
	b = binary.AppendUvarint(b, uint64(max(h.SpoolDwell, 0)))
	return b
}

// AppendHop returns encoded (an EncodeFragment result) with one more hop
// record appended. It is a pure byte append — the envelope and index bytes
// are not touched, so relays stamp provenance without paying a re-encode.
func AppendHop(encoded []byte, h Hop) []byte {
	return appendHop(encoded, &h)
}

func decodeHop(r *reader) (Hop, error) {
	var h Hop
	var err error
	if h.Node, err = r.str(); err != nil {
		return h, err
	}
	if h.Role, err = r.str(); err != nil {
		return h, err
	}
	sendNS, err := r.varint()
	if err != nil {
		return h, err
	}
	recvNS, err := r.varint()
	if err != nil {
		return h, err
	}
	h.Send, h.Recv = hopTime(sendNS), hopTime(recvNS)
	if h.Attempts, err = r.scalar(); err != nil {
		return h, err
	}
	dwell, err := r.uvarint()
	if err != nil {
		return h, err
	}
	if dwell > math.MaxInt64 {
		return h, fmt.Errorf("hop dwell %d out of range: %w", dwell, ErrCorrupt)
	}
	h.SpoolDwell = time.Duration(dwell)
	return h, nil
}

// DecodeFragment parses EncodeFragment output.
func DecodeFragment(data []byte) (*Fragment, error) {
	r := &reader{b: data}
	if len(data) < len(magic) || string(data[:len(magic)]) != string(magic[:]) {
		return nil, fmt.Errorf("bad magic: %w", ErrCorrupt)
	}
	r.off = len(magic)
	v, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if v == 0 || v > FragmentVersion {
		return nil, fmt.Errorf("wire: unsupported version %d (max %d)", v, FragmentVersion)
	}
	node, err := r.str()
	if err != nil {
		return nil, err
	}
	window, err := r.varint()
	if err != nil {
		return nil, err
	}
	startNS, err := r.varint()
	if err != nil {
		return nil, err
	}
	endNS, err := r.varint()
	if err != nil {
		return nil, err
	}
	if r.off >= len(r.b) {
		return nil, fmt.Errorf("missing flags: %w", ErrCorrupt)
	}
	flags := r.b[r.off]
	r.off++
	f := &Fragment{
		Node:   node,
		Window: window,
		Start:  time.Unix(0, startNS).UTC(),
		End:    time.Unix(0, endNS).UTC(),
		Final:  flags&flagFinal != 0,
	}
	if flags&flagHasIndex != 0 {
		idx, n, err := decodeIndex(&reader{b: r.b[r.off:]})
		if err != nil {
			return nil, err
		}
		r.off += n
		f.Index = idx
	}
	if v >= 2 {
		// Hop records run to the end of the buffer.
		for r.off < len(r.b) {
			h, err := decodeHop(r)
			if err != nil {
				return nil, err
			}
			f.Hops = append(f.Hops, h)
		}
	} else if r.off != len(r.b) {
		return nil, fmt.Errorf("%d trailing bytes: %w", len(r.b)-r.off, ErrCorrupt)
	}
	return f, nil
}
