package sparse

import "testing"

// fillIncidence populates a pooled incidence with a fixed pseudo-random
// relation (xorshift; no rand dependency so the workload is identical
// every run).
func fillIncidence(m *Incidence, rows, featsPerRow int) {
	state := uint64(88172645463325252)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for r := 0; r < rows; r++ {
		for k := 0; k < featsPerRow; k++ {
			m.Set(r, next()%512)
		}
	}
}

// The pooled incidence + dense co-occurrence accumulator must keep the
// steady-state allocation profile flat: after warm-up, one full
// build+product+release cycle stays under a small constant bound instead
// of scaling with rows×features (the map-based implementation allocated
// per feature and per pair). This is the -benchmem guard for the mining
// hot loop in test form.
func TestCoOccurrenceSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc bounds only hold on production builds")
	}
	const rows, feats = 400, 12
	// Warm the pools: first cycle sizes every buffer.
	m := Get(rows)
	fillIncidence(m, rows, feats)
	m.CoOccurrence(0)
	m.Release()

	allocs := testing.AllocsPerRun(10, func() {
		m := Get(rows)
		fillIncidence(m, rows, feats)
		pairs := m.CoOccurrence(0)
		if len(pairs) == 0 {
			t.Fatal("no pairs")
		}
		m.Release()
	})
	// The pairs result slice legitimately allocates (it escapes to the
	// caller); everything else is pooled. Observed ~15; bound leaves 4x
	// headroom against runtime drift while still catching a return to
	// per-feature or per-pair allocation (thousands).
	if allocs > 60 {
		t.Errorf("steady-state CoOccurrence cycle = %.0f allocs, want <= 60 (pooling regressed)", allocs)
	}
}
