package sparse

import (
	"testing"
	"testing/quick"
)

func TestCoOccurrenceBasic(t *testing.T) {
	m := NewIncidence(3)
	// Rows 0 and 1 share features 1, 2; row 2 shares only feature 2.
	m.Set(0, 1)
	m.Set(0, 2)
	m.Set(1, 1)
	m.Set(1, 2)
	m.Set(2, 2)
	pairs := m.CoOccurrence(0)
	if len(pairs) != 3 {
		t.Fatalf("got %d pairs, want 3: %+v", len(pairs), pairs)
	}
	byPair := make(map[[2]int32]int32)
	for _, p := range pairs {
		byPair[[2]int32{p.A, p.B}] = p.Count
	}
	if byPair[[2]int32{0, 1}] != 2 {
		t.Errorf("0,1 count = %d, want 2", byPair[[2]int32{0, 1}])
	}
	if byPair[[2]int32{0, 2}] != 1 {
		t.Errorf("0,2 count = %d, want 1", byPair[[2]int32{0, 2}])
	}
}

func TestCoOccurrenceDedup(t *testing.T) {
	m := NewIncidence(2)
	m.Set(0, 1)
	m.Set(0, 1) // duplicate must not double-count
	m.Set(1, 1)
	pairs := m.CoOccurrence(0)
	if len(pairs) != 1 || pairs[0].Count != 1 {
		t.Fatalf("pairs = %+v, want one pair with count 1", pairs)
	}
	if m.RowDegree(0) != 1 {
		t.Errorf("row 0 degree = %d, want 1", m.RowDegree(0))
	}
}

func TestFanoutCap(t *testing.T) {
	m := NewIncidence(5)
	// Popular feature shared by 5 rows; rare feature shared by 2.
	for r := 0; r < 5; r++ {
		m.Set(r, 100)
	}
	m.Set(0, 200)
	m.Set(1, 200)
	if got := len(m.CoOccurrence(0)); got != 10 {
		t.Errorf("uncapped pairs = %d, want 10", got)
	}
	capped := m.CoOccurrence(4)
	if len(capped) != 1 {
		t.Fatalf("capped pairs = %+v, want only the rare pair", capped)
	}
	if m.SkippedFeatures(4) != 1 {
		t.Errorf("SkippedFeatures = %d, want 1", m.SkippedFeatures(4))
	}
	if m.SkippedFeatures(0) != 0 {
		t.Errorf("SkippedFeatures(0) = %d, want 0", m.SkippedFeatures(0))
	}
}

func TestCoOccurrenceMatchesBruteForce(t *testing.T) {
	// Property: the sparse product must equal the brute-force pairwise
	// set-intersection computation on random incidence relations.
	f := func(edges []uint16) bool {
		m := NewIncidence(8)
		sets := make(map[int]map[int]bool)
		for _, e := range edges {
			r := int(e>>8) % 8
			c := int(e & 0xff % 32)
			m.Set(r, uint64(c))
			if sets[r] == nil {
				sets[r] = make(map[int]bool)
			}
			sets[r][c] = true
		}
		want := make(map[[2]int32]int32)
		for a := 0; a < 8; a++ {
			for b := a + 1; b < 8; b++ {
				n := int32(0)
				for c := range sets[a] {
					if sets[b][c] {
						n++
					}
				}
				if n > 0 {
					want[[2]int32{int32(a), int32(b)}] = n
				}
			}
		}
		got := make(map[[2]int32]int32)
		for _, p := range m.CoOccurrence(0) {
			got[[2]int32{p.A, p.B}] = p.Count
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCoOccurrenceFunc(t *testing.T) {
	m := NewIncidence(2)
	m.Set(0, 1)
	m.Set(1, 1)
	m.Set(0, 2)
	m.Set(1, 2)
	total := 0
	m.CoOccurrenceFunc(0, func(a, b int32) { total++ })
	if total != 2 {
		t.Errorf("visits = %d, want 2 (one per shared feature)", total)
	}
}

func TestCoOccurrenceSorted(t *testing.T) {
	m := NewIncidence(3)
	for r := 2; r >= 0; r-- {
		m.Set(r, 1)
		m.Set(r, 2)
	}
	pairs := m.CoOccurrence(0)
	for i := 1; i < len(pairs); i++ {
		prev, cur := pairs[i-1], pairs[i]
		if prev.A > cur.A || (prev.A == cur.A && prev.B >= cur.B) {
			t.Fatalf("pairs not sorted: %+v", pairs)
		}
	}
}

func TestEmptyIncidence(t *testing.T) {
	m := NewIncidence(0)
	if got := m.CoOccurrence(0); len(got) != 0 {
		t.Errorf("empty incidence produced pairs: %v", got)
	}
	if m.Rows() != 0 || m.Features() != 0 {
		t.Error("empty incidence reports nonzero dims")
	}
}

func TestSetStringFeatures(t *testing.T) {
	m := NewIncidence(3)
	m.SetString(0, "tok-a")
	m.SetString(1, "tok-a")
	m.Set(1, 7)
	m.Set(2, 7)
	pairs := m.CoOccurrence(0)
	byPair := make(map[[2]int32]int32)
	for _, p := range pairs {
		byPair[[2]int32{p.A, p.B}] = p.Count
	}
	if byPair[[2]int32{0, 1}] != 1 || byPair[[2]int32{1, 2}] != 1 {
		t.Fatalf("mixed string/id features miscounted: %+v", pairs)
	}
	if m.Features() != 2 {
		t.Errorf("Features = %d, want 2", m.Features())
	}
}

// A pooled incidence must behave like a fresh one after Reset, with no
// state bleeding between uses.
func TestPoolReuse(t *testing.T) {
	m := Get(3)
	m.Set(0, 1)
	m.Set(1, 1)
	m.SetString(2, "x")
	if got := len(m.CoOccurrence(0)); got != 1 {
		t.Fatalf("first use pairs = %d, want 1", got)
	}
	m.Release()

	m2 := Get(2)
	if m2.Features() != 0 || m2.Rows() != 2 {
		t.Fatalf("pooled incidence not reset: %d features, %d rows", m2.Features(), m2.Rows())
	}
	if got := len(m2.CoOccurrence(0)); got != 0 {
		t.Fatalf("pooled incidence leaked pairs: %d", got)
	}
	m2.Set(0, 99)
	m2.Set(1, 99)
	pairs := m2.CoOccurrence(0)
	if len(pairs) != 1 || pairs[0].Count != 1 {
		t.Fatalf("pooled incidence after reuse: %+v", pairs)
	}
	m2.Release()
}
