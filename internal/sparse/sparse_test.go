package sparse

import (
	"testing"
	"testing/quick"
)

func TestCoOccurrenceBasic(t *testing.T) {
	m := NewIncidence()
	// s1 and s2 share clients c1, c2; s3 shares only c2 with both.
	m.Set("s1", "c1")
	m.Set("s1", "c2")
	m.Set("s2", "c1")
	m.Set("s2", "c2")
	m.Set("s3", "c2")
	pairs := m.CoOccurrence(0)
	if len(pairs) != 3 {
		t.Fatalf("got %d pairs, want 3: %+v", len(pairs), pairs)
	}
	byNames := make(map[[2]string]int32)
	for _, p := range pairs {
		byNames[[2]string{m.RowName(int(p.A)), m.RowName(int(p.B))}] = p.Count
	}
	if byNames[[2]string{"s1", "s2"}] != 2 {
		t.Errorf("s1,s2 count = %d, want 2", byNames[[2]string{"s1", "s2"}])
	}
	if byNames[[2]string{"s1", "s3"}] != 1 {
		t.Errorf("s1,s3 count = %d, want 1", byNames[[2]string{"s1", "s3"}])
	}
}

func TestCoOccurrenceDedup(t *testing.T) {
	m := NewIncidence()
	m.Set("s1", "c1")
	m.Set("s1", "c1") // duplicate must not double-count
	m.Set("s2", "c1")
	pairs := m.CoOccurrence(0)
	if len(pairs) != 1 || pairs[0].Count != 1 {
		t.Fatalf("pairs = %+v, want one pair with count 1", pairs)
	}
	if m.RowDegree(m.RowID("s1")) != 1 {
		t.Errorf("s1 degree = %d, want 1", m.RowDegree(m.RowID("s1")))
	}
}

func TestFanoutCap(t *testing.T) {
	m := NewIncidence()
	// Popular feature shared by 5 rows; rare feature shared by 2.
	for _, r := range []string{"a", "b", "c", "d", "e"} {
		m.Set(r, "popular")
	}
	m.Set("a", "rare")
	m.Set("b", "rare")
	if got := len(m.CoOccurrence(0)); got != 10 {
		t.Errorf("uncapped pairs = %d, want 10", got)
	}
	capped := m.CoOccurrence(4)
	if len(capped) != 1 {
		t.Fatalf("capped pairs = %+v, want only the rare pair", capped)
	}
	if m.SkippedFeatures(4) != 1 {
		t.Errorf("SkippedFeatures = %d, want 1", m.SkippedFeatures(4))
	}
	if m.SkippedFeatures(0) != 0 {
		t.Errorf("SkippedFeatures(0) = %d, want 0", m.SkippedFeatures(0))
	}
}

func TestCoOccurrenceMatchesBruteForce(t *testing.T) {
	// Property: the sparse product must equal the brute-force pairwise
	// set-intersection computation on random incidence relations.
	f := func(edges []uint16) bool {
		m := NewIncidence()
		sets := make(map[int]map[int]bool)
		rowName := func(i int) string { return string(rune('A' + i)) }
		for _, e := range edges {
			r := int(e>>8) % 8
			c := int(e & 0xff % 32)
			m.Set(rowName(r), string(rune('0'+c)))
			if sets[r] == nil {
				sets[r] = make(map[int]bool)
			}
			sets[r][c] = true
		}
		want := make(map[[2]string]int32)
		for a := 0; a < 8; a++ {
			for b := a + 1; b < 8; b++ {
				n := int32(0)
				for c := range sets[a] {
					if sets[b][c] {
						n++
					}
				}
				if n > 0 {
					ka, kb := rowName(a), rowName(b)
					ia, ib := m.RowID(ka), m.RowID(kb)
					if ia > ib {
						ka, kb = kb, ka
					}
					want[[2]string{ka, kb}] = n
				}
			}
		}
		got := make(map[[2]string]int32)
		for _, p := range m.CoOccurrence(0) {
			got[[2]string{m.RowName(int(p.A)), m.RowName(int(p.B))}] = p.Count
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCoOccurrenceFunc(t *testing.T) {
	m := NewIncidence()
	m.Set("s1", "c1")
	m.Set("s2", "c1")
	m.Set("s1", "c2")
	m.Set("s2", "c2")
	total := 0
	m.CoOccurrenceFunc(0, func(a, b int32) { total++ })
	if total != 2 {
		t.Errorf("visits = %d, want 2 (one per shared feature)", total)
	}
}

func TestCoOccurrenceSorted(t *testing.T) {
	m := NewIncidence()
	for _, r := range []string{"z", "m", "a"} {
		m.Set(r, "f1")
		m.Set(r, "f2")
	}
	pairs := m.CoOccurrence(0)
	for i := 1; i < len(pairs); i++ {
		prev, cur := pairs[i-1], pairs[i]
		if prev.A > cur.A || (prev.A == cur.A && prev.B >= cur.B) {
			t.Fatalf("pairs not sorted: %+v", pairs)
		}
	}
}

func TestEmptyIncidence(t *testing.T) {
	m := NewIncidence()
	if got := m.CoOccurrence(0); len(got) != 0 {
		t.Errorf("empty incidence produced pairs: %v", got)
	}
	if m.Rows() != 0 || m.Features() != 0 {
		t.Error("empty incidence reports nonzero dims")
	}
}
