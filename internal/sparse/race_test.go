//go:build race

package sparse

// raceEnabled flags that the race detector is instrumenting allocations;
// the AllocsPerRun guards skip themselves because instrumented runs
// allocate on paths the production build does not.
const raceEnabled = true
