// Package sparse implements the sparse-matrix substrate the paper cites
// (Buluç & Gilbert) for taming the N² cost of pairwise server similarity.
//
// The set-valued dimensions (client sets, IP sets, URI file sets) are all
// incidence relations: a boolean matrix M with rows = servers and columns =
// features. The pairwise intersection sizes |A∩B| needed by the similarity
// equations are exactly the nonzero entries of M·Mᵀ, which are computed
// row-wise (Gustavson's algorithm) against a dense, pooled accumulator —
// never materializing the dense N×N product and never hashing inside the
// product loop.
//
// Rows are the caller's dense node ids (0..n-1); features are opaque
// uint64 keys — interned symbol ids from the trace data plane, or composed
// ids such as (client<<32|timebucket). A legacy SetString path interns
// string features locally for callers without interned ids (whois tokens).
//
// A per-feature fan-out cap skips extremely popular features: a feature
// shared by f rows contributes f(f-1)/2 pairs, so an unbounded hub feature
// (e.g. the URI file "index.html") would dominate cost while carrying almost
// no discriminating signal. The cap plays the same role for features that
// the paper's IDF filter plays for servers.
//
// Incidences and their scratch buffers are pooled (Get/Release): the
// streaming engine builds six of them per dimension per window, and reuse
// keeps the per-window allocation profile flat.
package sparse

import (
	"slices"
	"sort"
	"sync"
)

// Incidence accumulates a rows×features boolean incidence relation over
// dense integer row ids and uint64 feature keys.
type Incidence struct {
	nRows      int
	featIDs    map[uint64]int32
	strIDs     map[string]int32 // SetString feature keys; lazily allocated
	featRows   [][]int32        // feature id -> row ids (unsorted until finalize)
	rowDegrees []int32          // row id -> number of distinct features
	rowFeats   [][]int32        // row id -> feature ids (built by Finalize)
	finalized  bool
}

// NewIncidence returns an empty incidence relation over rows 0..nRows-1.
func NewIncidence(nRows int) *Incidence {
	m := &Incidence{featIDs: make(map[uint64]int32)}
	m.Reset(nRows)
	return m
}

// Reset clears the relation and re-sizes it to nRows rows, retaining
// allocated capacity for reuse.
func (m *Incidence) Reset(nRows int) {
	m.nRows = nRows
	clear(m.featIDs)
	if m.strIDs != nil {
		clear(m.strIDs)
	}
	for i := range m.featRows {
		m.featRows[i] = m.featRows[i][:0]
	}
	m.featRows = m.featRows[:0]
	for i := range m.rowFeats {
		m.rowFeats[i] = m.rowFeats[i][:0]
	}
	m.rowFeats = m.rowFeats[:0]
	if cap(m.rowDegrees) < nRows {
		m.rowDegrees = make([]int32, nRows)
	}
	m.rowDegrees = m.rowDegrees[:nRows]
	for i := range m.rowDegrees {
		m.rowDegrees[i] = 0
	}
	m.finalized = false
}

// Rows reports the number of rows.
func (m *Incidence) Rows() int { return m.nRows }

// Features reports the number of distinct features.
func (m *Incidence) Features() int { return len(m.featRows) }

// RowDegree returns the number of distinct features set for the row (valid
// after Finalize, which CoOccurrence runs implicitly).
func (m *Incidence) RowDegree(id int) int { return int(m.rowDegrees[id]) }

// addFeature appends a (pre-assigned) feature's row, reusing pooled
// sub-slices where possible.
func (m *Incidence) newFeature() int32 {
	f := int32(len(m.featRows))
	if len(m.featRows) < cap(m.featRows) {
		m.featRows = m.featRows[:len(m.featRows)+1]
		m.featRows[f] = m.featRows[f][:0]
	} else {
		m.featRows = append(m.featRows, nil)
	}
	return f
}

// Set marks (row, feature) as present. Duplicate Set calls for the same pair
// are deduplicated at Finalize time. row must be in [0, Rows()).
func (m *Incidence) Set(row int, feature uint64) {
	f, ok := m.featIDs[feature]
	if !ok {
		f = m.newFeature()
		m.featIDs[feature] = f
	}
	m.featRows[f] = append(m.featRows[f], int32(row))
	m.finalized = false
}

// SetString is Set for callers whose features are strings without interned
// ids (e.g. whois field-signature tokens). String and uint64 features live
// in separate key spaces; mixing both in one Incidence is allowed.
func (m *Incidence) SetString(row int, feature string) {
	if m.strIDs == nil {
		m.strIDs = make(map[string]int32)
	}
	f, ok := m.strIDs[feature]
	if !ok {
		f = m.newFeature()
		m.strIDs[feature] = f
	}
	m.featRows[f] = append(m.featRows[f], int32(row))
	m.finalized = false
}

// Finalize sorts and deduplicates the per-feature row lists, recomputes row
// degrees, and builds the row-major adjacency the co-occurrence product
// walks. It is called automatically by CoOccurrence.
func (m *Incidence) Finalize() {
	if m.finalized {
		return
	}
	for i := range m.rowDegrees {
		m.rowDegrees[i] = 0
	}
	for i := range m.rowFeats {
		m.rowFeats[i] = m.rowFeats[i][:0]
	}
	if cap(m.rowFeats) < m.nRows {
		old := m.rowFeats
		m.rowFeats = make([][]int32, m.nRows)
		copy(m.rowFeats, old)
	}
	m.rowFeats = m.rowFeats[:m.nRows]
	for f, rows := range m.featRows {
		if len(rows) > 1 {
			slices.Sort(rows)
			out := rows[:1]
			for _, r := range rows[1:] {
				if r != out[len(out)-1] {
					out = append(out, r)
				}
			}
			rows = out
			m.featRows[f] = rows
		}
		for _, r := range rows {
			m.rowDegrees[r]++
			m.rowFeats[r] = append(m.rowFeats[r], int32(f))
		}
	}
	m.finalized = true
}

// Pair is one co-occurring row pair with its intersection count.
type Pair struct {
	A, B  int32 // row ids, A < B
	Count int32 // number of shared features
}

// coocScratch is the pooled dense accumulator for the row-wise product.
type coocScratch struct {
	counts  []int32
	touched []int32
}

var scratchPool = sync.Pool{New: func() any { return &coocScratch{} }}

func getScratch(n int) *coocScratch {
	s := scratchPool.Get().(*coocScratch)
	if cap(s.counts) < n {
		s.counts = make([]int32, n)
	}
	s.counts = s.counts[:n]
	return s
}

// CoOccurrence computes, for every pair of rows sharing at least one
// feature, the number of shared features — i.e. the strictly-upper-triangle
// nonzeros of M·Mᵀ. Features whose fan-out exceeds maxFanout are skipped
// (0 or negative means no cap). The result is sorted by (A, B).
//
// The product is computed row-wise against a pooled dense accumulator:
// for each row a, the counts of all partners b > a are accumulated by
// array indexing, then swept in sorted order — no hashing, no per-pair
// allocation.
func (m *Incidence) CoOccurrence(maxFanout int) []Pair {
	m.Finalize()
	s := getScratch(m.nRows)
	defer scratchPool.Put(s)
	counts := s.counts
	touched := s.touched[:0]
	var pairs []Pair
	for a := 0; a < m.nRows; a++ {
		for _, f := range m.rowFeats[a] {
			rows := m.featRows[f]
			if maxFanout > 0 && len(rows) > maxFanout {
				continue
			}
			// rows is sorted; partners of a are the entries after it.
			i := sort.Search(len(rows), func(i int) bool { return rows[i] > int32(a) })
			for _, b := range rows[i:] {
				if counts[b] == 0 {
					touched = append(touched, b)
				}
				counts[b]++
			}
		}
		if len(touched) == 0 {
			continue
		}
		slices.Sort(touched)
		for _, b := range touched {
			pairs = append(pairs, Pair{A: int32(a), B: b, Count: counts[b]})
			counts[b] = 0
		}
		touched = touched[:0]
	}
	s.touched = touched
	return pairs
}

// CoOccurrenceFunc streams co-occurring pairs to fn without materializing
// the pair list, for callers that aggregate on the fly. Pairs arrive in
// unspecified order and a pair may be visited multiple times (once per
// shared feature); fn receives the per-feature increment.
func (m *Incidence) CoOccurrenceFunc(maxFanout int, fn func(a, b int32)) {
	m.Finalize()
	for _, rows := range m.featRows {
		if maxFanout > 0 && len(rows) > maxFanout {
			continue
		}
		for i := 0; i < len(rows); i++ {
			for j := i + 1; j < len(rows); j++ {
				fn(rows[i], rows[j])
			}
		}
	}
}

// SkippedFeatures reports how many features exceed the fan-out cap, for
// diagnostics.
func (m *Incidence) SkippedFeatures(maxFanout int) int {
	if maxFanout <= 0 {
		return 0
	}
	m.Finalize()
	n := 0
	for _, rows := range m.featRows {
		if len(rows) > maxFanout {
			n++
		}
	}
	return n
}

var incPool = sync.Pool{New: func() any { return NewIncidence(0) }}

// Get returns a pooled empty Incidence over nRows rows. Release it when the
// co-occurrence product has been consumed.
func Get(nRows int) *Incidence {
	m := incPool.Get().(*Incidence)
	m.Reset(nRows)
	return m
}

// Release returns the incidence to the pool. The caller must not use it
// afterwards.
func (m *Incidence) Release() { incPool.Put(m) }
