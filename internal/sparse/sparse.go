// Package sparse implements the sparse-matrix substrate the paper cites
// (Buluç & Gilbert) for taming the N² cost of pairwise server similarity.
//
// The set-valued dimensions (client sets, IP sets, URI file sets) are all
// incidence relations: a boolean matrix M with rows = servers and columns =
// features. The pairwise intersection sizes |A∩B| needed by the similarity
// equations are exactly the nonzero entries of M·Mᵀ, which can be computed
// by iterating features (columns) and emitting only co-occurring row pairs —
// never materializing the dense N×N product.
//
// A per-feature fan-out cap skips extremely popular features: a feature
// shared by f rows contributes f(f-1)/2 pairs, so an unbounded hub feature
// (e.g. the URI file "index.html") would dominate cost while carrying almost
// no discriminating signal. The cap plays the same role for features that
// the paper's IDF filter plays for servers.
package sparse

import "sort"

// Incidence accumulates a rows×features boolean incidence relation with
// string-keyed rows and features, assigning dense integer ids.
type Incidence struct {
	rowIDs     map[string]int
	rowNames   []string
	featIDs    map[string]int
	featRows   [][]int32 // feature id -> row ids (unsorted until finalize)
	rowDegrees []int32   // row id -> number of distinct features
	finalized  bool
}

// NewIncidence returns an empty incidence relation.
func NewIncidence() *Incidence {
	return &Incidence{
		rowIDs:  make(map[string]int),
		featIDs: make(map[string]int),
	}
}

// RowID interns a row name and returns its dense id.
func (m *Incidence) RowID(name string) int {
	if id, ok := m.rowIDs[name]; ok {
		return id
	}
	id := len(m.rowNames)
	m.rowIDs[name] = id
	m.rowNames = append(m.rowNames, name)
	m.rowDegrees = append(m.rowDegrees, 0)
	return id
}

// RowName returns the name of a dense row id.
func (m *Incidence) RowName(id int) string { return m.rowNames[id] }

// Rows reports the number of interned rows.
func (m *Incidence) Rows() int { return len(m.rowNames) }

// Features reports the number of interned features.
func (m *Incidence) Features() int { return len(m.featRows) }

// RowDegree returns the number of distinct features set for the row.
func (m *Incidence) RowDegree(id int) int { return int(m.rowDegrees[id]) }

// Set marks (row, feature) as present. Duplicate Set calls for the same pair
// are deduplicated at Finalize time.
func (m *Incidence) Set(row, feature string) {
	r := m.RowID(row)
	f, ok := m.featIDs[feature]
	if !ok {
		f = len(m.featRows)
		m.featIDs[feature] = f
		m.featRows = append(m.featRows, nil)
	}
	m.featRows[f] = append(m.featRows[f], int32(r))
	m.finalized = false
}

// Finalize sorts and deduplicates the per-feature row lists and recomputes
// row degrees. It is called automatically by CoOccurrence.
func (m *Incidence) Finalize() {
	if m.finalized {
		return
	}
	for i := range m.rowDegrees {
		m.rowDegrees[i] = 0
	}
	for f, rows := range m.featRows {
		if len(rows) > 1 {
			sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
			out := rows[:1]
			for _, r := range rows[1:] {
				if r != out[len(out)-1] {
					out = append(out, r)
				}
			}
			rows = out
			m.featRows[f] = rows
		}
		for _, r := range rows {
			m.rowDegrees[r]++
		}
	}
	m.finalized = true
}

// Pair is one co-occurring row pair with its intersection count.
type Pair struct {
	A, B  int32 // row ids, A < B
	Count int32 // number of shared features
}

// CoOccurrence computes, for every pair of rows sharing at least one
// feature, the number of shared features — i.e. the strictly-upper-triangle
// nonzeros of M·Mᵀ. Features whose fan-out exceeds maxFanout are skipped
// (0 or negative means no cap). The result is sorted by (A, B).
func (m *Incidence) CoOccurrence(maxFanout int) []Pair {
	m.Finalize()
	counts := make(map[uint64]int32)
	for _, rows := range m.featRows {
		if maxFanout > 0 && len(rows) > maxFanout {
			continue
		}
		for i := 0; i < len(rows); i++ {
			for j := i + 1; j < len(rows); j++ {
				key := uint64(rows[i])<<32 | uint64(rows[j])
				counts[key]++
			}
		}
	}
	pairs := make([]Pair, 0, len(counts))
	for key, c := range counts {
		pairs = append(pairs, Pair{A: int32(key >> 32), B: int32(key & 0xffffffff), Count: c})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	return pairs
}

// CoOccurrenceFunc streams co-occurring pairs to fn without materializing
// the pair list, for callers that aggregate on the fly. Pairs arrive in
// unspecified order and a pair may be visited multiple times (once per
// shared feature); fn receives the per-feature increment.
func (m *Incidence) CoOccurrenceFunc(maxFanout int, fn func(a, b int32)) {
	m.Finalize()
	for _, rows := range m.featRows {
		if maxFanout > 0 && len(rows) > maxFanout {
			continue
		}
		for i := 0; i < len(rows); i++ {
			for j := i + 1; j < len(rows); j++ {
				fn(rows[i], rows[j])
			}
		}
	}
}

// SkippedFeatures reports how many features exceed the fan-out cap, for
// diagnostics.
func (m *Incidence) SkippedFeatures(maxFanout int) int {
	if maxFanout <= 0 {
		return 0
	}
	m.Finalize()
	n := 0
	for _, rows := range m.featRows {
		if len(rows) > maxFanout {
			n++
		}
	}
	return n
}
