// Package domain provides hostname utilities used throughout SMASH, most
// importantly second-level-domain (SLD) extraction: the preprocessing step of
// the paper aggregates all hostnames sharing a second-level domain into one
// logical server ("a.xyz.com" and "b.xyz.com" both become "xyz.com", all
// Facebook CDN hosts become "fbcdn.net").
//
// A small embedded multi-label public-suffix set handles effective TLDs such
// as "co.uk" and the "cz.cc" free-hosting zone the paper's Zeus case study
// relies on, so "4k0t155m.cz.cc" keeps its distinguishing label.
package domain

import (
	"net"
	"strings"
)

// multiLabelSuffixes lists public suffixes made of more than one label. A
// hostname ending in one of these keeps one additional label in its SLD.
// This is a deliberately small embedded subset of the public suffix list
// covering the zones the synthetic world and paper case studies use; real
// deployments would embed the full public suffix list here.
var multiLabelSuffixes = map[string]struct{}{
	"co.uk":      {},
	"org.uk":     {},
	"ac.uk":      {},
	"gov.uk":     {},
	"com.br":     {},
	"com.cn":     {},
	"com.au":     {},
	"net.au":     {},
	"co.jp":      {},
	"ne.jp":      {},
	"or.jp":      {},
	"co.kr":      {},
	"com.tw":     {},
	"cz.cc":      {},
	"uk.com":     {},
	"us.com":     {},
	"co.in":      {},
	"dyndns.org": {},
	"no-ip.org":  {},
}

// Suffixes returns a copy of the registered multi-label suffix set, primarily
// for tests and diagnostics.
func Suffixes() []string {
	out := make([]string, 0, len(multiLabelSuffixes))
	for s := range multiLabelSuffixes {
		out = append(out, s)
	}
	return out
}

// SLD returns the second-level domain that identifies the logical server a
// hostname belongs to. Rules, in order:
//
//   - IP literals are returned unchanged (the paper treats raw IPs as
//     servers in their own right).
//   - Hostnames ending in a registered multi-label suffix keep one label
//     before the suffix ("a.b.cz.cc" -> "b.cz.cc").
//   - Otherwise the last two labels are kept ("a.xyz.com" -> "xyz.com").
//   - Single-label names and empty strings are returned unchanged.
//
// Hostnames are lowercased and stripped of a trailing dot and port.
func SLD(host string) string {
	host = Normalize(host)
	if host == "" {
		return host
	}
	if IsIPLiteral(host) {
		return host
	}
	labels := strings.Split(host, ".")
	if len(labels) < 2 {
		return host
	}
	// Multi-label suffix: keep one extra label.
	if len(labels) >= 3 {
		suffix := labels[len(labels)-2] + "." + labels[len(labels)-1]
		if _, ok := multiLabelSuffixes[suffix]; ok {
			return strings.Join(labels[len(labels)-3:], ".")
		}
	}
	// A two-label name that *is* a public suffix (e.g. "cz.cc" itself) is
	// returned as-is; there is nothing more specific to aggregate to.
	return strings.Join(labels[len(labels)-2:], ".")
}

// Normalize lowercases a hostname and strips any trailing dot and any port
// suffix. It does not validate the name.
func Normalize(host string) string {
	host = strings.TrimSpace(strings.ToLower(host))
	host = strings.TrimSuffix(host, ".")
	// Strip a port if present. Careful with IPv6 literals in brackets.
	if strings.HasPrefix(host, "[") {
		if end := strings.Index(host, "]"); end >= 0 {
			return host[1:end]
		}
		return host
	}
	if i := strings.LastIndexByte(host, ':'); i >= 0 && strings.Count(host, ":") == 1 {
		return host[:i]
	}
	return host
}

// IsIPLiteral reports whether host parses as an IPv4 or IPv6 address.
func IsIPLiteral(host string) bool {
	return net.ParseIP(host) != nil
}

// Label returns the first (leftmost) label of a hostname, or the hostname
// itself if it has a single label. Useful for DGA-style name analysis.
func Label(host string) string {
	host = Normalize(host)
	if i := strings.IndexByte(host, '.'); i >= 0 {
		return host[:i]
	}
	return host
}
