package domain

import (
	"testing"
	"testing/quick"
)

func TestSLD(t *testing.T) {
	tests := []struct {
		host string
		want string
	}{
		{"a.xyz.com", "xyz.com"},
		{"b.xyz.com", "xyz.com"},
		{"xyz.com", "xyz.com"},
		{"www.static.cdn.fbcdn.net", "fbcdn.net"},
		{"ec2-1-2-3-4.amazonaws.com", "amazonaws.com"},
		{"4k0t155m.cz.cc", "4k0t155m.cz.cc"},
		{"deep.4k0t155m.cz.cc", "4k0t155m.cz.cc"},
		{"cz.cc", "cz.cc"},
		{"example.co.uk", "example.co.uk"},
		{"www.example.co.uk", "example.co.uk"},
		{"host.dyndns.org", "host.dyndns.org"},
		{"localhost", "localhost"},
		{"", ""},
		{"10.1.2.3", "10.1.2.3"},
		{"2001:db8::1", "2001:db8::1"},
		{"WWW.Example.COM.", "example.com"},
		{"example.com:8080", "example.com"},
	}
	for _, tt := range tests {
		t.Run(tt.host, func(t *testing.T) {
			if got := SLD(tt.host); got != tt.want {
				t.Errorf("SLD(%q) = %q, want %q", tt.host, got, tt.want)
			}
		})
	}
}

func TestSLDIdempotent(t *testing.T) {
	f := func(a, b, c string) bool {
		host := sanitizeLabel(a) + "." + sanitizeLabel(b) + "." + sanitizeLabel(c)
		once := SLD(host)
		return SLD(once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// sanitizeLabel maps arbitrary fuzz input to a plausible DNS label so the
// idempotence property targets realistic hostnames.
func sanitizeLabel(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s) && len(out) < 20; i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			out = append(out, c)
		case c >= 'A' && c <= 'Z':
			out = append(out, c+('a'-'A'))
		}
	}
	if len(out) == 0 {
		return "x"
	}
	return string(out)
}

func TestNormalize(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		{" Example.COM. ", "example.com"},
		{"example.com:443", "example.com"},
		{"[2001:db8::1]:8080", "2001:db8::1"},
		{"[2001:db8::1]", "2001:db8::1"},
		{"", ""},
	}
	for _, tt := range tests {
		if got := Normalize(tt.in); got != tt.want {
			t.Errorf("Normalize(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestIsIPLiteral(t *testing.T) {
	if !IsIPLiteral("192.168.0.1") {
		t.Error("IPv4 literal not recognized")
	}
	if !IsIPLiteral("2001:db8::1") {
		t.Error("IPv6 literal not recognized")
	}
	if IsIPLiteral("example.com") {
		t.Error("hostname misidentified as IP")
	}
	if IsIPLiteral("999.1.2.3") {
		t.Error("invalid IPv4 accepted")
	}
}

func TestLabel(t *testing.T) {
	if got := Label("abc.example.com"); got != "abc" {
		t.Errorf("Label = %q, want abc", got)
	}
	if got := Label("single"); got != "single" {
		t.Errorf("Label = %q, want single", got)
	}
}

func TestSuffixesCopy(t *testing.T) {
	s := Suffixes()
	if len(s) == 0 {
		t.Fatal("no suffixes registered")
	}
	found := false
	for _, suffix := range s {
		if suffix == "cz.cc" {
			found = true
		}
	}
	if !found {
		t.Error("cz.cc missing from suffix set (needed by Zeus case study)")
	}
}
