package store

import "os"

// WriteFileAtomic writes data to path through a sibling ".tmp" file
// renamed into place, so a reader (or a crash-recovery scan) only ever
// observes the old content or the new — never a torn mix. With sync the
// file is fsynced before the rename, putting the write in the WAL's
// durability class (survives machine death, not just process death); the
// rename itself becomes durable once the caller fsyncs the containing
// directory with SyncDir. Shared by the store's snapshot and history
// writers and by internal/cluster's fragment-log frontier.
func WriteFileAtomic(path string, data []byte, sync bool) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// SyncDir fsyncs a directory, making a completed rename or unlink within
// it durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
