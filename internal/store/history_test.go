package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// historyJSON renders the full retained history as one JSON blob — the
// byte-identity currency of the restart tests.
func historyJSON(t *testing.T, st *Store) string {
	t.Helper()
	data, err := json.Marshal(st.History(0))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestHistoryMemoryOnly(t *testing.T) {
	st, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	days := worldEvents(t, 3)
	runDays(t, days, nil, st)
	hs := st.HistoryStats()
	if hs.Windows != 3 || hs.FirstSeq != 0 || hs.LastSeq != 2 {
		t.Errorf("history stats = %+v", hs)
	}
	if hs.Bytes != 0 {
		t.Errorf("memory-only history claims %d bytes on disk", hs.Bytes)
	}
	if du := st.DiskUsage(); du != (DiskUsage{}) {
		t.Errorf("memory-only disk usage = %+v", du)
	}
	if got := st.History(2); len(got) != 1 || got[0].Seq != 2 {
		t.Errorf("History(2) = %+v", got)
	}
}

// History queries must be byte-identical across a clean restart.
func TestHistorySurvivesReopen(t *testing.T) {
	days := worldEvents(t, 4)
	dir := t.TempDir()
	st, err := Open(Config{Dir: dir, SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	runDays(t, days, nil, st)
	want := historyJSON(t, st)
	wantDU := st.DiskUsage()
	if wantDU.HistoryBytes == 0 {
		t.Fatal("durable store reports no history bytes")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := historyJSON(t, st2); got != want {
		t.Errorf("history diverged across reopen:\n%s\nvs:\n%s", got, want)
	}
	if got := st2.DiskUsage().HistoryBytes; got != wantDU.HistoryBytes {
		t.Errorf("history bytes = %d, want %d", got, wantDU.HistoryBytes)
	}
}

// The kill -9 analogue: no final snapshot or compaction, and the newest
// history file may be missing entirely (crash between the WAL append and
// the history rename). Reopen must heal the gap from the WAL and answer
// history queries byte-identically.
func TestHistoryHealsAfterKill(t *testing.T) {
	days := worldEvents(t, 4)
	dir := t.TempDir()
	st, err := Open(Config{Dir: dir, SnapshotEvery: 100}) // pure WAL, no mid-run snapshot
	if err != nil {
		t.Fatal(err)
	}
	runDays(t, days, nil, st)
	want := historyJSON(t, st)
	st.Abandon()

	// Simulate the crash landing before the last two history renames.
	for _, seq := range []int{2, 3} {
		if err := os.Remove(historyFile(dir, seq)); err != nil {
			t.Fatal(err)
		}
	}
	st2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Stats().Replayed != 4 {
		t.Errorf("replayed = %d, want 4", st2.Stats().Replayed)
	}
	if got := historyJSON(t, st2); got != want {
		t.Errorf("healed history diverged:\n%s\nvs:\n%s", got, want)
	}
}

// A history file for a window the WAL never applied (torn tail) must be
// dropped at open, not served.
func TestHistoryDropsUnappliedWindows(t *testing.T) {
	days := worldEvents(t, 3)
	dir := t.TempDir()
	st, err := Open(Config{Dir: dir, SnapshotEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	runDays(t, days, nil, st)
	st.Abandon()

	// Tear the final WAL record: window 2 is now unapplied, but its
	// history file still exists.
	walPath := filepath.Join(dir, walFile)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	cut := len(data)
	for i := len(data) - 1; i >= 0; i-- {
		if data[i] == '\n' {
			lines++
			if lines == 2 {
				cut = i + 1
				break
			}
		}
	}
	if err := os.WriteFile(walPath, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	hs := st2.HistoryStats()
	if hs.LastSeq != 1 || hs.Windows != 2 {
		t.Errorf("history stats after torn tail = %+v", hs)
	}
	if _, err := os.Stat(historyFile(dir, 2)); !os.IsNotExist(err) {
		t.Errorf("unapplied history file survived open: %v", err)
	}
}

func TestRetainWindows(t *testing.T) {
	days := worldEvents(t, 5)
	dir := t.TempDir()
	st, err := Open(Config{Dir: dir, RetainWindows: 2})
	if err != nil {
		t.Fatal(err)
	}
	runDays(t, days, nil, st)
	hs := st.HistoryStats()
	if hs.Windows != 2 || hs.FirstSeq != 3 || hs.LastSeq != 4 {
		t.Errorf("history stats = %+v", hs)
	}
	if hs.GCRuns == 0 {
		t.Error("no GC runs counted")
	}
	for seq := 0; seq < 3; seq++ {
		if _, err := os.Stat(historyFile(dir, seq)); !os.IsNotExist(err) {
			t.Errorf("GC'd history file %d still on disk: %v", seq, err)
		}
	}
	// Retention bounds history, not correctness: the tracker state still
	// spans all five windows.
	if st.Applied() != 5 {
		t.Errorf("applied = %d", st.Applied())
	}
	want := historyJSON(t, st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(Config{Dir: dir, RetainWindows: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := historyJSON(t, st2); got != want {
		t.Errorf("retained history diverged across reopen:\n%s\nvs:\n%s", got, want)
	}
}

func TestRetainAge(t *testing.T) {
	days := worldEvents(t, 5)
	st, err := Open(Config{RetainAge: 36 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	runDays(t, days, nil, st)
	// Day windows: with a 36h horizon behind the newest window's end, only
	// the newest two windows can remain.
	hs := st.HistoryStats()
	if hs.Windows != 2 || hs.FirstSeq != 3 {
		t.Errorf("history stats = %+v", hs)
	}
}

func TestSubscribeDeltasBacklogAndLive(t *testing.T) {
	st, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	days := worldEvents(t, 2)
	runDays(t, days, nil, st)

	backlog, sub := st.SubscribeDeltas(0)
	defer sub.Close()
	if len(backlog) != 2 {
		t.Fatalf("backlog = %d records", len(backlog))
	}
	if st.HistoryStats().Subscribers != 1 {
		t.Errorf("subscribers = %d", st.HistoryStats().Subscribers)
	}

	// A third window consumed after subscribing arrives live.
	runDays(t, worldEvents(t, 1), st.Restore(), st)
	select {
	case rec := <-sub.C:
		if rec.Seq != 2 {
			t.Errorf("live record seq = %d", rec.Seq)
		}
	default:
		t.Error("no live record delivered")
	}

	sub.Close()
	if st.HistoryStats().Subscribers != 0 {
		t.Errorf("subscribers after close = %d", st.HistoryStats().Subscribers)
	}
	if _, ok := <-sub.C; ok {
		t.Error("closed subscription channel still open")
	}
}

// A subscriber that stops draining is dropped instead of stalling the
// engine's emit path.
func TestSlowSubscriberDropped(t *testing.T) {
	st, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, sub := st.SubscribeDeltas(0)
	rec := &Record{}
	st.mu.Lock()
	for i := 0; i <= subBuffer; i++ {
		st.publish(rec)
	}
	st.mu.Unlock()
	hs := st.HistoryStats()
	if hs.Subscribers != 0 || hs.Dropped != 1 {
		t.Errorf("history stats = %+v", hs)
	}
	drained := 0
	for range sub.C {
		drained++
	}
	if drained != subBuffer {
		t.Errorf("drained %d buffered records, want %d", drained, subBuffer)
	}
	sub.Close() // idempotent after drop
}
