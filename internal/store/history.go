// History is the store's analytics log: one durable Record per applied
// window, kept beyond WAL compaction so the HTTP API can answer
// time-range queries ("which campaigns were active last Tuesday"),
// per-lineage timelines and SSE delta replays long after the window was
// detected.
//
// On-disk layout (under Config.Dir):
//
//	history/
//	  000000000000.json   Record for global window seq 0
//	  000000000001.json   ...one file per window, written with the same
//	                      tmp+rename discipline as the snapshot
//
// The write ordering is WAL first, history second: a crash between the
// two leaves the record in the WAL, and Open heals the missing history
// file during replay — so history answers are byte-identical across a
// kill -9. The in-memory index (a contiguous slice of Records ascending
// by seq) is rebuilt from the directory at Open and serves every query
// without touching disk.
//
// Retention (Config.RetainWindows / Config.RetainAge) garbage-collects
// history from the oldest window forward, deleting files and trimming the
// in-memory index, so a months-long run stays bounded on disk and in
// memory — the production companion to tracker retirement. The snapshot
// and WAL are already bounded by compaction; history GC is what bounds
// the time axis.
package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const historyDir = "history"

// historyFile names one window's history file.
func historyFile(dir string, seq int) string {
	return filepath.Join(dir, historyDir, fmt.Sprintf("%012d.json", seq))
}

// HistoryStats summarizes the history log and its live subscriptions.
type HistoryStats struct {
	// Windows is the number of retained history records; FirstSeq and
	// LastSeq bound their global window sequence range (-1 when empty).
	Windows  int `json:"windows"`
	FirstSeq int `json:"firstSeq"`
	LastSeq  int `json:"lastSeq"`
	// Bytes is the history log's on-disk footprint (0 when memory-only).
	Bytes int64 `json:"bytes"`
	// GCRuns counts retention passes that removed at least one window.
	GCRuns int64 `json:"gcRuns"`
	// Subscribers is the number of live delta subscriptions; Dropped
	// counts subscriptions closed because the consumer fell behind.
	Subscribers int   `json:"subscribers"`
	Dropped     int64 `json:"dropped"`
}

// DiskUsage reports the store's on-disk footprint by component. Snapshot
// and WAL sizes are stat'ed at call time; history bytes are tracked
// incrementally. All zero for a memory-only store.
type DiskUsage struct {
	SnapshotBytes int64 `json:"snapshotBytes"`
	WALBytes      int64 `json:"walBytes"`
	HistoryBytes  int64 `json:"historyBytes"`
}

// DiskUsage returns the current on-disk footprint.
func (s *Store) DiskUsage() DiskUsage {
	s.mu.Lock()
	defer s.mu.Unlock()
	var du DiskUsage
	if s.cfg.Dir == "" {
		return du
	}
	if fi, err := os.Stat(filepath.Join(s.cfg.Dir, snapshotFile)); err == nil {
		du.SnapshotBytes = fi.Size()
	}
	if fi, err := os.Stat(filepath.Join(s.cfg.Dir, walFile)); err == nil {
		du.WALBytes = fi.Size()
	}
	du.HistoryBytes = s.histBytes
	return du
}

// HistoryStats returns the history log's live summary.
func (s *Store) HistoryStats() HistoryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	hs := HistoryStats{
		Windows:     len(s.hist),
		FirstSeq:    -1,
		LastSeq:     -1,
		Bytes:       s.histBytes,
		GCRuns:      s.histGCs,
		Subscribers: len(s.subs),
		Dropped:     s.subsDropped,
	}
	if len(s.hist) > 0 {
		hs.FirstSeq = s.hist[0].Seq
		hs.LastSeq = s.hist[len(s.hist)-1].Seq
	}
	return hs
}

// History returns the retained window records with Seq >= fromSeq,
// ascending. The records are shared and must be treated as read-only; the
// slice is the caller's.
func (s *Store) History(fromSeq int) []*Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.hist) == 0 {
		return nil
	}
	i := sort.Search(len(s.hist), func(i int) bool { return s.hist[i].Seq >= fromSeq })
	if i >= len(s.hist) {
		return nil
	}
	return append([]*Record(nil), s.hist[i:]...)
}

// loadHistory rebuilds the in-memory history index from DIR/history. Only
// the longest contiguous run of sequence numbers ending at the newest
// file is kept (retention deletes from the front, so a gap means manual
// tampering or a lost rename — everything older than the gap is
// unusable for range queries and is dropped, files included). Records
// claiming windows the snapshot+WAL never applied are dropped the same
// way. Caller is Open, before the store is shared.
func (s *Store) loadHistory() error {
	dir := filepath.Join(s.cfg.Dir, historyDir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	type histEntry struct {
		seq  int
		size int64
		rec  *Record
	}
	var loaded []histEntry
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		seq, err := strconv.Atoi(strings.TrimSuffix(name, ".json"))
		if err != nil {
			continue // foreign file; leave it alone
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		var rec Record
		if uerr := json.Unmarshal(bytes.TrimSpace(data), &rec); uerr != nil {
			return fmt.Errorf("store: corrupt history record %s: %w", name, uerr)
		}
		if rec.Seq != seq {
			return fmt.Errorf("store: history file %s holds seq %d", name, rec.Seq)
		}
		loaded = append(loaded, histEntry{seq: seq, size: int64(len(data)), rec: &rec})
	}
	sort.Slice(loaded, func(i, j int) bool { return loaded[i].seq < loaded[j].seq })
	// Keep the longest contiguous suffix of applied windows.
	keep := len(loaded)
	for keep > 0 && loaded[keep-1].seq >= s.applied {
		keep--
	}
	first := keep
	if first > 0 {
		first-- // the newest kept record anchors the suffix
		for first > 0 && loaded[first-1].seq == loaded[first].seq-1 {
			first--
		}
	}
	for _, e := range append(loaded[:first:first], loaded[keep:]...) {
		os.Remove(historyFile(s.cfg.Dir, e.seq))
	}
	for _, e := range loaded[first:keep] {
		s.hist = append(s.hist, e.rec)
		s.histSizes = append(s.histSizes, e.size)
		s.histBytes += e.size
	}
	return nil
}

// appendHistory appends one record to the history index and, when the
// store is durable, writes its file with tmp+rename (fsynced under
// Config.Sync, matching the WAL's durability class). Idempotent for
// already-retained seqs — WAL replay calls it for every record, retained
// or healed alike. A sequence gap (history lost mid-run) resets the log
// to the new record so the index stays contiguous. Caller holds mu (or is
// Open).
func (s *Store) appendHistory(rec *Record) error {
	if n := len(s.hist); n > 0 {
		last := s.hist[n-1].Seq
		if rec.Seq <= last {
			return nil
		}
		if rec.Seq != last+1 {
			s.dropHistory(n)
		}
	}
	size := int64(0)
	if s.cfg.Dir != "" {
		line, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		line = append(line, '\n')
		path := historyFile(s.cfg.Dir, rec.Seq)
		if err := WriteFileAtomic(path, line, s.cfg.Sync); err != nil {
			return fmt.Errorf("store: history: %w", err)
		}
		size = int64(len(line))
	}
	s.hist = append(s.hist, rec)
	s.histSizes = append(s.histSizes, size)
	s.histBytes += size
	return nil
}

// dropHistory removes the oldest n history records (index + files).
// Caller holds mu.
func (s *Store) dropHistory(n int) {
	for i := 0; i < n; i++ {
		if s.cfg.Dir != "" {
			os.Remove(historyFile(s.cfg.Dir, s.hist[i].Seq))
		}
		s.histBytes -= s.histSizes[i]
	}
	s.hist = s.hist[:copy(s.hist, s.hist[n:])]
	s.histSizes = s.histSizes[:copy(s.histSizes, s.histSizes[n:])]
}

// retain applies the retention policy, GCing history from the oldest
// window forward: RetainWindows caps the retained count, RetainAge drops
// windows whose End has fallen RetainAge behind the newest window's End
// (event time, not wall clock — a replayed historical trace retains the
// same windows a live run would have). The newest window is never
// dropped. Caller holds mu.
func (s *Store) retain() {
	n := len(s.hist)
	if n == 0 {
		return
	}
	drop := 0
	if rw := s.cfg.RetainWindows; rw > 0 && n > rw {
		drop = n - rw
	}
	if ra := s.cfg.RetainAge; ra > 0 {
		cut := s.hist[n-1].End.Add(-ra)
		for drop < n-1 && !s.hist[drop].End.After(cut) {
			drop++
		}
	}
	if drop == 0 {
		return
	}
	s.dropHistory(drop)
	s.histGCs++
}

// DeltaSub is one live delta subscription: every Record the store applies
// after the subscription is delivered on C, in window order. A subscriber
// that falls more than the channel buffer behind is dropped — C is closed
// and the consumer must resubscribe from its last seen event ID (the SSE
// Last-Event-ID resume path), which replays the gap from history.
type DeltaSub struct {
	// C delivers applied window records. Closed when the subscriber is
	// dropped, the subscription is Closed, or the store closes.
	C chan *Record

	s      *Store
	closed bool
}

// subBuffer is the per-subscriber channel capacity: enough to ride out a
// burst of windows sealing back-to-back, small enough that an abandoned
// consumer is dropped (and its memory freed) quickly.
const subBuffer = 64

// SubscribeDeltas atomically returns the retained records with
// Seq >= fromSeq and a live subscription for everything after them —
// there is no window in which a record can fall between the backlog and
// the channel. Close the subscription when done.
func (s *Store) SubscribeDeltas(fromSeq int) ([]*Record, *DeltaSub) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var backlog []*Record
	if len(s.hist) > 0 {
		i := sort.Search(len(s.hist), func(i int) bool { return s.hist[i].Seq >= fromSeq })
		backlog = append([]*Record(nil), s.hist[i:]...)
	}
	sub := &DeltaSub{C: make(chan *Record, subBuffer), s: s}
	if s.subs == nil {
		s.subs = make(map[*DeltaSub]struct{})
	}
	s.subs[sub] = struct{}{}
	return backlog, sub
}

// Close cancels the subscription. Safe to call more than once and after
// the subscriber was dropped.
func (d *DeltaSub) Close() {
	if d == nil || d.s == nil {
		return
	}
	d.s.mu.Lock()
	defer d.s.mu.Unlock()
	d.s.removeSub(d)
}

// removeSub unregisters and closes one subscription. Caller holds mu.
func (s *Store) removeSub(d *DeltaSub) {
	if d.closed {
		return
	}
	d.closed = true
	delete(s.subs, d)
	close(d.C)
}

// publish fans one applied record out to every subscriber. A full channel
// means the consumer is stalled; it is dropped (channel closed, Dropped
// counted) rather than blocking the engine's emit path — the consumer
// resumes losslessly from history via its last event ID. Caller holds mu.
func (s *Store) publish(rec *Record) {
	for d := range s.subs {
		select {
		case d.C <- rec:
		default:
			s.removeSub(d)
			s.subsDropped++
		}
	}
}

// closeSubs drops every subscriber — the store is closing (or simulating
// process death), so live feeds end. Caller holds mu.
func (s *Store) closeSubs() {
	for d := range s.subs {
		s.removeSub(d)
	}
}

// ErrNoHistory distinguishes "window not retained" from other lookup
// failures on history queries.
var ErrNoHistory = errors.New("store: window not in retained history")
