//go:build unix

package store

import (
	"os"
	"syscall"
)

// flock takes a non-blocking exclusive lock on f. The kernel releases it
// when the process dies, so a kill -9'd daemon never wedges its state
// dir.
func flock(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
