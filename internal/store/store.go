// Package store is smashd's durability layer: a campaign-state store that
// makes cross-window lineage tracking survive process restarts and serves
// as the read model for the HTTP API (internal/serve).
//
// The store consumes the same per-window results the CLI prints — it plugs
// into internal/stream as a stream.Sink — and persists them with the
// classic snapshot + write-ahead-log pattern:
//
//	state-dir/
//	  snapshot.json   full tracker state + cumulative counters, written
//	                  atomically (tmp + rename) every SnapshotEvery
//	                  windows and on Close
//	  wal.ndjson      one JSON record per window applied since the last
//	                  snapshot (append-only; flushed per record, fsynced
//	                  when Sync is set)
//	  lock            flock held for the store's lifetime, so a second
//	                  process cannot corrupt the directory; released by
//	                  the kernel on process death
//
// Every record carries a global monotonic sequence number (the tracker's
// window clock), and the snapshot records how many windows it has applied.
// Replay skips WAL records older than the snapshot, so a crash between
// "snapshot renamed" and "WAL truncated" double-applies nothing: recovery
// is idempotent. A torn final WAL line (the kill -9 case) is detected and
// truncated away on open.
//
// Restore rebuilds a tracker.Tracker that is byte-identical — Summary and
// all future Observe decisions — to the tracker of a process that never
// died, because the WAL records exactly the ordered campaign sets the
// original tracker observed and tracker.Observe is deterministic.
//
// The store also keeps an in-memory mirror tracker fed by the same records
// (live and replayed), guarded by a mutex, so HTTP handlers can query
// lineage state concurrently while the engine's own tracker keeps running
// lock-free on the hot path.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"smash/internal/campaign"
	"smash/internal/core"
	"smash/internal/stream"
	"smash/internal/tracker"
)

const (
	snapshotFile = "snapshot.json"
	walFile      = "wal.ndjson"
	lockFile     = "lock"
	// formatVersion guards the on-disk schema.
	formatVersion = 1
)

// Config parameterizes a Store.
type Config struct {
	// Dir is the state directory. Empty means memory-only: the store still
	// mirrors state for serving, but persists nothing.
	Dir string
	// SnapshotEvery is the number of windows between snapshots (and WAL
	// compactions). Default 64.
	SnapshotEvery int
	// Sync fsyncs the WAL after every appended record. Without it a record
	// survives process death (the file write has happened) but not
	// necessarily OS/machine death.
	Sync bool
	// NewTracker builds the mirror (and Restore) trackers, carrying policy
	// knobs like RetireAfter. Default tracker.New.
	NewTracker func() *tracker.Tracker
	// RetainWindows caps the number of windows kept in the history log
	// (see history.go); 0 keeps everything.
	RetainWindows int
	// RetainAge drops history windows whose End has fallen more than this
	// behind the newest window's End (event time); 0 keeps everything.
	RetainAge time.Duration
}

// Record is one window's durable state change: everything needed to replay
// the tracker's Observe call and to serve /v1/windows/latest. The JSON
// shape is stable; one Record per line in the WAL.
type Record struct {
	// Seq is the global window sequence — the tracker's window clock. It
	// keeps counting across restarts, unlike Window.
	Seq int `json:"seq"`
	// Window is the emitting engine's per-run window Seq.
	Window int `json:"window"`
	// Start and End bound the window interval.
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Requests counts indexed requests in the window.
	Requests int `json:"requests"`
	// Aborted marks a non-empty window emitted without a report (hard
	// shutdown mid-detection).
	Aborted bool `json:"aborted,omitempty"`
	// Campaigns are the window's campaigns in tracker observation order
	// (multi-client first, then single-client).
	Campaigns []campaign.Campaign `json:"campaigns,omitempty"`
	// Deltas are the lineage transitions the tracker derived.
	Deltas []stream.Delta `json:"deltas,omitempty"`
}

// Counters are the store's cumulative activity counters. They span
// restarts: replayed windows count exactly once.
type Counters struct {
	// Windows counts applied windows; EmptyWindows those with no requests.
	Windows      int `json:"windows"`
	EmptyWindows int `json:"emptyWindows"`
	// Requests sums window request counts.
	Requests int `json:"requests"`
	// Campaigns sums per-window campaign counts.
	Campaigns int `json:"campaigns"`
	// Appeared/Persisted/Rotated/Retired count deltas by kind.
	Appeared  int `json:"appeared"`
	Persisted int `json:"persisted"`
	Rotated   int `json:"rotated"`
	Retired   int `json:"retired"`
}

// Stats is the store's live summary, served by /v1/stats.
type Stats struct {
	Counters
	// Lineages and RetiredLineages count the mirror tracker's state.
	Lineages        int `json:"lineages"`
	RetiredLineages int `json:"retiredLineages"`
	// Replayed is the number of WAL records replayed when the store
	// opened (0 after a clean shutdown, which compacts on Close).
	Replayed int `json:"replayed"`
	// Restored is the number of windows recovered at open from snapshot
	// plus WAL together.
	Restored int `json:"restored"`
}

// snapshot is the on-disk snapshot schema.
type snapshot struct {
	Version    int           `json:"version"`
	Applied    int           `json:"applied"`
	Counters   Counters      `json:"counters"`
	LastWindow *Record       `json:"lastWindow,omitempty"`
	Tracker    tracker.State `json:"tracker"`
}

// Store is a durable campaign-state store. It implements stream.Sink; all
// methods are safe for concurrent use.
type Store struct {
	cfg Config

	mu        sync.Mutex
	mirror    *tracker.Tracker
	ctr       Counters
	last      *Record
	applied   int // windows applied == mirror.Day()
	replayed  int
	restored  int
	sinceSnap int
	wal       *os.File
	walBuf    *bufio.Writer
	lock      *os.File // flock guarding the state dir against a second process

	// History log + live delta subscriptions (see history.go). hist is
	// contiguous ascending by Seq; histSizes holds each record's on-disk
	// size so retention can account bytes without re-statting.
	hist        []*Record
	histSizes   []int64
	histBytes   int64
	histGCs     int64
	subs        map[*DeltaSub]struct{}
	subsDropped int64
}

// Open loads (or creates) the store under cfg.Dir, replaying any snapshot
// and WAL into the in-memory mirror. With an empty Dir the store is
// memory-only.
func Open(cfg Config) (*Store, error) {
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 64
	}
	if cfg.NewTracker == nil {
		cfg.NewTracker = tracker.New
	}
	s := &Store{cfg: cfg, mirror: cfg.NewTracker()}
	if cfg.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := s.acquireLock(); err != nil {
		return nil, err
	}
	hadSnapshot, err := s.loadSnapshot()
	if err != nil {
		s.releaseLock()
		return nil, err
	}
	// History loads before WAL replay: replay heals any history files a
	// crash between "WAL appended" and "history renamed" failed to write,
	// and appendHistory's idempotence needs the loaded index to dedupe
	// against.
	if err := s.loadHistory(); err != nil {
		s.releaseLock()
		return nil, err
	}
	if err := s.replayWAL(); err != nil {
		s.releaseLock()
		return nil, err
	}
	s.retain()
	// Policy knobs (RetireAfter, MinClientOverlap) switch to the current
	// configuration only once recovery is complete: recorded history must
	// replay under the policy it was observed with — retroactively
	// retiring a lineage mid-replay would contradict the deltas already in
	// the WAL — while future windows follow the operator's new settings.
	fresh := cfg.NewTracker()
	s.mirror.MinClientOverlap = fresh.MinClientOverlap
	s.mirror.RetireAfter = fresh.RetireAfter
	s.restored = s.applied
	// A birth snapshot records the policy a fresh state dir starts under,
	// so a crash before the first periodic snapshot still replays its WAL
	// under the recorded policy on the next open.
	if !hadSnapshot {
		if err := s.snapshotLocked(); err != nil {
			s.wal.Close()
			s.releaseLock()
			return nil, err
		}
	}
	return s, nil
}

// acquireLock flocks DIR/lock so a second process cannot corrupt the WAL
// and snapshots. The kernel releases the lock on process death, so a
// kill -9'd daemon never wedges its state dir.
func (s *Store) acquireLock() error {
	f, err := os.OpenFile(filepath.Join(s.cfg.Dir, lockFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := flock(f); err != nil {
		f.Close()
		return fmt.Errorf("store: state dir %s is in use by another process: %w", s.cfg.Dir, err)
	}
	s.lock = f
	return nil
}

// releaseLock drops the state-dir lock (no-op when memory-only).
func (s *Store) releaseLock() {
	if s.lock != nil {
		s.lock.Close()
		s.lock = nil
	}
}

// loadSnapshot restores mirror, counters and applied count from
// snapshot.json. It reports whether a snapshot existed.
func (s *Store) loadSnapshot() (bool, error) {
	data, err := os.ReadFile(filepath.Join(s.cfg.Dir, snapshotFile))
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return false, fmt.Errorf("store: corrupt snapshot: %w", err)
	}
	if snap.Version != formatVersion {
		return false, fmt.Errorf("store: snapshot format v%d, want v%d", snap.Version, formatVersion)
	}
	if snap.Tracker.Day != snap.Applied {
		return false, fmt.Errorf("store: snapshot tracker day %d != applied %d", snap.Tracker.Day, snap.Applied)
	}
	s.mirror = tracker.FromState(snap.Tracker)
	s.ctr = snap.Counters
	s.last = snap.LastWindow
	s.applied = snap.Applied
	return true, nil
}

// replayWAL applies WAL records newer than the snapshot to the mirror,
// truncates any torn tail, and leaves the file open for appending.
func (s *Store) replayWAL() error {
	path := filepath.Join(s.cfg.Dir, walFile)
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: %w", err)
	}
	good := int64(0)
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail: a kill mid-append leaves no final newline
		}
		line := data[off : off+nl]
		var rec Record
		if uerr := json.Unmarshal(line, &rec); uerr != nil {
			// A newline-terminated line that does not parse is corruption,
			// not a torn tail — silently truncating here would discard
			// every valid record after it. Refuse to open.
			return fmt.Errorf("store: corrupt wal record at byte %d: %w", off, uerr)
		}
		off += nl + 1
		good = int64(off)
		if rec.Seq < s.applied {
			continue // already in the snapshot (crash before compaction)
		}
		if rec.Seq > s.applied {
			return fmt.Errorf("store: wal gap: record seq %d, want %d", rec.Seq, s.applied)
		}
		s.apply(&rec)
		if herr := s.appendHistory(&rec); herr != nil {
			return herr
		}
		s.replayed++
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.wal = f
	s.walBuf = bufio.NewWriter(f)
	return nil
}

// apply folds one record into the mirror tracker and counters. Caller
// holds mu (or is Open, before the store is shared).
func (s *Store) apply(rec *Record) {
	s.mirror.Observe(&core.Report{Campaigns: rec.Campaigns})
	s.ctr.Windows++
	if rec.Requests == 0 {
		s.ctr.EmptyWindows++
	}
	s.ctr.Requests += rec.Requests
	s.ctr.Campaigns += len(rec.Campaigns)
	for i := range rec.Deltas {
		// Classify by KindName, the field that survives JSON: Delta.Kind
		// is json:"-", so replayed records carry only the name.
		switch rec.Deltas[i].KindName {
		case stream.Appear.String():
			s.ctr.Appeared++
		case stream.Persist.String():
			s.ctr.Persisted++
		case stream.Rotate.String():
			s.ctr.Rotated++
		case stream.Retire.String():
			s.ctr.Retired++
		}
	}
	s.last = rec
	s.applied++
}

// SinkName implements stream.NamedSink: store appends show up as the
// "store" span and sink-latency series.
func (s *Store) SinkName() string { return "store" }

// Consume implements stream.Sink: it records one emitted window — the
// in-memory mirror first (so the read model and the seq clock stay in
// lockstep with the engine even when persistence fails), then the WAL
// append — and snapshots every SnapshotEvery windows. A window visible in
// the mirror is therefore durable only once Consume has returned nil.
func (s *Store) Consume(w *stream.WindowResult) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := &Record{
		Seq:      s.applied,
		Window:   w.Seq,
		Start:    w.Start,
		End:      w.End,
		Requests: w.Requests,
		Aborted:  w.Report == nil && w.Requests > 0,
		Deltas:   w.Deltas,
	}
	if w.Report != nil {
		rec.Campaigns = w.Report.AllCampaigns()
	}
	// Mirror first: the in-memory read model and the seq clock stay
	// consistent with the engine's tracker even when persistence fails.
	s.apply(rec)
	if s.wal != nil {
		if err := s.appendWAL(rec); err != nil {
			// A failed append may have left partial bytes on disk; appending
			// more records after it would hide good records behind the torn
			// line and replay records under reused offsets. Disable
			// persistence for the rest of the process instead — serving stays
			// correct, the error surfaces through the engine, and the WAL on
			// disk still recovers everything up to the failure.
			s.wal.Close()
			s.wal = nil
			s.walBuf = nil
			return err
		}
	}
	// History after the WAL: a crash between the two heals on open (the
	// record is still in the WAL); the reverse order could retain history
	// for a window the store never applied. Subscribers see the record
	// only once it is in history, so Last-Event-ID resume never skips.
	if err := s.appendHistory(rec); err != nil {
		return err
	}
	s.publish(rec)
	s.retain()
	if s.wal != nil {
		s.sinceSnap++
		if s.sinceSnap >= s.cfg.SnapshotEvery {
			if err := s.snapshotLocked(); err != nil {
				return err
			}
		}
	}
	return nil
}

// appendWAL writes one record line, flushing (and fsyncing under
// Config.Sync). Caller holds mu.
func (s *Store) appendWAL(rec *Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	line = append(line, '\n')
	if _, err := s.walBuf.Write(line); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	if err := s.walBuf.Flush(); err != nil {
		return fmt.Errorf("store: wal flush: %w", err)
	}
	if s.cfg.Sync {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("store: wal sync: %w", err)
		}
	}
	return nil
}

// Snapshot forces a snapshot + WAL compaction now. No-op when
// memory-only.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	return s.snapshotLocked()
}

// snapshotLocked writes snapshot.json atomically, then compacts the WAL.
// Caller holds mu.
func (s *Store) snapshotLocked() error {
	snap := snapshot{
		Version:    formatVersion,
		Applied:    s.applied,
		Counters:   s.ctr,
		LastWindow: s.last,
		Tracker:    s.mirror.State(),
	}
	data, err := json.Marshal(&snap)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(s.cfg.Dir, snapshotFile)
	if err := WriteFileAtomic(path, data, true); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// The rename must be durable before the WAL shrinks: without the
	// directory fsync a machine crash could surface the OLD snapshot next
	// to the already-compacted WAL — an unrecoverable gap.
	if err := SyncDir(s.cfg.Dir); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Compaction: every WAL record is now covered by the snapshot. A crash
	// before the truncate lands is fine — replay skips seq < applied.
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: wal compact: %w", err)
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: wal compact: %w", err)
	}
	s.walBuf.Reset(s.wal)
	s.sinceSnap = 0
	return nil
}

// Close flushes, snapshots (compacting the WAL) and releases the state
// directory. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.releaseLock()
	s.closeSubs()
	if s.wal == nil {
		return nil
	}
	err := s.snapshotLocked()
	if cerr := s.wal.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("store: %w", cerr)
	}
	s.wal = nil
	s.walBuf = nil
	return err
}

// Abandon simulates process death for tests and benchmarks: the WAL file
// handle and the state-dir lock are dropped with no final snapshot or
// compaction — exactly the on-disk state a kill -9 leaves, but with the
// kernel-held flock released so the same process can reopen the
// directory. The store must not be used afterwards.
func (s *Store) Abandon() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closeSubs()
	if s.wal != nil {
		s.wal.Close()
		s.wal = nil
		s.walBuf = nil
	}
	s.releaseLock()
}

// Restore returns a fresh tracker carrying the store's full restored
// state — the tracker a resuming engine should continue with. The returned
// tracker shares nothing with the store's mirror: the engine may mutate it
// freely while the store keeps mirroring via Consume.
func (s *Store) Restore() *tracker.Tracker {
	s.mu.Lock()
	defer s.mu.Unlock()
	return tracker.FromState(s.mirror.State())
}

// Stats returns the store's live summary.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Counters:        s.ctr,
		Lineages:        len(s.mirror.Lineages()),
		RetiredLineages: s.mirror.Retired(),
		Replayed:        s.replayed,
		Restored:        s.restored,
	}
}

// LineageSummaries returns scalar-only copies of all lineages ordered by
// ID — no member maps, so a polling list endpoint costs O(lineages), not
// O(members), inside the store lock. Use Lineage for one lineage's full
// member history.
func (s *Store) LineageSummaries() []*tracker.Lineage {
	s.mu.Lock()
	defer s.mu.Unlock()
	all := s.mirror.Lineages()
	out := make([]*tracker.Lineage, len(all))
	for i, l := range all {
		c := *l
		c.Servers, c.Clients = nil, nil
		out[i] = &c
	}
	return out
}

// LineagesWithServer returns the IDs of lineages whose server pool
// contains server. Retired lineages never match: their member maps were
// pruned at retirement.
func (s *Store) LineagesWithServer(server string) map[int]bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]bool)
	for _, l := range s.mirror.Lineages() {
		if l.Servers[server] > 0 {
			out[l.ID] = true
		}
	}
	return out
}

// Lineage returns a deep copy of one lineage by ID, or nil. Retired
// lineages have no member maps (pruned at retirement); scalar totals
// remain.
func (s *Store) Lineage(id int) *tracker.Lineage {
	s.mu.Lock()
	defer s.mu.Unlock()
	all := s.mirror.Lineages()
	if id < 0 || id >= len(all) {
		return nil
	}
	return all[id].Clone()
}

// LastWindow returns the most recently applied window record, or nil. The
// record must be treated as read-only.
func (s *Store) LastWindow() *Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Applied returns the number of windows applied over the store's lifetime
// (restored plus consumed).
func (s *Store) Applied() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}
