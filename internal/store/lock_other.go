//go:build !unix

package store

import "os"

// flock is a no-op on platforms without BSD flock semantics: the lock
// file is still created, but double-start protection is unix-only.
func flock(*os.File) error { return nil }
