package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"smash/internal/campaign"
	"smash/internal/core"
	"smash/internal/stream"
	"smash/internal/synth"
	"smash/internal/trace"
	"smash/internal/tracker"
)

// worldEvents synthesizes a small multi-day world and returns its events
// grouped per day, time-ordered within the feed.
func worldEvents(t testing.TB, days int) [][]trace.Request {
	t.Helper()
	w, err := synth.Generate(synth.Config{
		Name: "storetest", Seed: 21, Days: days,
		Clients: 250, BenignServers: 600, MeanRequests: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out [][]trace.Request
	for _, day := range w.Days {
		out = append(out, day.Requests)
	}
	return out
}

// runDays streams the given day slices through an engine wired to tk
// (nil for a fresh tracker) and sinks, returning the engine after the run
// has fully drained.
func runDays(t testing.TB, days [][]trace.Request, tk *tracker.Tracker, sinks ...stream.Sink) *stream.Engine {
	t.Helper()
	var all []trace.Request
	for _, d := range days {
		all = append(all, d...)
	}
	eng, err := stream.New(stream.Config{
		Name:     "storetest",
		Window:   24 * time.Hour,
		Tracker:  tk,
		Sinks:    sinks,
		Detector: []core.Option{core.WithSeed(5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for range eng.Start(&stream.SliceSource{Requests: all}) {
	}
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestMemoryOnlyStore(t *testing.T) {
	st, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	days := worldEvents(t, 2)
	eng := runDays(t, days, nil, st)
	stats := st.Stats()
	if stats.Windows != 2 || stats.Lineages == 0 {
		t.Errorf("stats = %+v", stats)
	}
	if got, want := st.Restore().Summary(), eng.Tracker().Summary(); got != want {
		t.Errorf("mirror diverged from engine tracker:\n%s\nvs:\n%s", got, want)
	}
	if st.LastWindow() == nil || st.LastWindow().Window != 1 {
		t.Errorf("last window = %+v", st.LastWindow())
	}
	if err := st.Close(); err != nil {
		t.Errorf("memory-only Close: %v", err)
	}
}

func TestRoundTripReopen(t *testing.T) {
	days := worldEvents(t, 4)
	dir := t.TempDir()
	st, err := Open(Config{Dir: dir, SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := runDays(t, days, nil, st)
	want := eng.Tracker().Summary()
	wantStats := st.Stats()
	if got := st.Restore().Summary(); got != want {
		t.Fatalf("live mirror diverged:\n%s\nvs:\n%s", got, want)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Restore().Summary(); got != want {
		t.Errorf("reopened summary diverged:\n%s\nvs:\n%s", got, want)
	}
	gotStats := st2.Stats()
	if gotStats.Counters != wantStats.Counters {
		t.Errorf("counters diverged: %+v vs %+v", gotStats.Counters, wantStats.Counters)
	}
	if gotStats.Replayed != 0 {
		t.Errorf("clean shutdown left %d WAL records", gotStats.Replayed)
	}
	if st2.Applied() != 4 {
		t.Errorf("applied = %d, want 4", st2.Applied())
	}
}

// The acceptance scenario: a run killed without Close (kill -9 analogue —
// the WAL is flushed per record but no final snapshot lands), restarted on
// the remaining input, must end in exactly the state of an uninterrupted
// run. Exercised over both persistence paths: pure WAL and snapshot+WAL.
func TestKillRestartEquivalence(t *testing.T) {
	days := worldEvents(t, 4)
	uninterrupted := runDays(t, days, nil).Tracker().Summary()

	for _, snapEvery := range []int{1, 100} {
		dir := t.TempDir()
		st1, err := Open(Config{Dir: dir, SnapshotEvery: snapEvery})
		if err != nil {
			t.Fatal(err)
		}
		runDays(t, days[:2], nil, st1)
		// Kill: no Close, no final snapshot — Abandon leaves exactly the
		// on-disk state a kill -9 would.
		st1.Abandon()

		st2, err := Open(Config{Dir: dir, SnapshotEvery: snapEvery})
		if err != nil {
			t.Fatal(err)
		}
		if st2.Applied() != 2 {
			t.Fatalf("snapEvery=%d: restored %d windows, want 2", snapEvery, st2.Applied())
		}
		// Delta-kind counters must survive replay (Kind itself is not
		// serialized; classification goes by KindName).
		if st2.Stats().Appeared == 0 {
			t.Errorf("snapEvery=%d: replay lost appear-delta counters: %+v", snapEvery, st2.Stats().Counters)
		}
		eng2 := runDays(t, days[2:], st2.Restore(), st2)
		got := eng2.Tracker().Summary()
		if got != uninterrupted {
			t.Errorf("snapEvery=%d: resumed summary diverged:\n%s\nvs uninterrupted:\n%s",
				snapEvery, got, uninterrupted)
		}
		if mirror := st2.Restore().Summary(); mirror != uninterrupted {
			t.Errorf("snapEvery=%d: store mirror diverged:\n%s\nvs:\n%s", snapEvery, mirror, uninterrupted)
		}
		st2.Close()
	}
}

// A torn final WAL line — the canonical kill -9 artifact — is truncated
// away on open, and appends continue cleanly after it.
func TestTornWALTailTruncated(t *testing.T) {
	days := worldEvents(t, 3)
	dir := t.TempDir()
	st1, err := Open(Config{Dir: dir, SnapshotEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	runDays(t, days[:2], nil, st1)
	st1.Abandon() // killed: no Close, no final snapshot

	wal := filepath.Join(dir, walFile)
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":2,"window":9,"req`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := Open(Config{Dir: dir, SnapshotEvery: 100})
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if st2.Applied() != 2 || st2.Stats().Replayed != 2 {
		t.Fatalf("applied=%d replayed=%d, want 2/2", st2.Applied(), st2.Stats().Replayed)
	}
	eng := runDays(t, days[2:], st2.Restore(), st2)
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	want := runDays(t, days, nil).Tracker().Summary()
	if got := eng.Tracker().Summary(); got != want {
		t.Errorf("post-torn-tail resume diverged:\n%s\nvs:\n%s", got, want)
	}
	// The torn bytes are gone from disk.
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"req`) && !strings.Contains(string(data), `"requests"`) {
		t.Error("torn tail still on disk")
	}
}

// A crash between snapshot rename and WAL truncation leaves records the
// snapshot already covers; replay must skip them instead of double
// applying.
func TestCompactionCrashIdempotent(t *testing.T) {
	days := worldEvents(t, 2)
	dir := t.TempDir()
	st1, err := Open(Config{Dir: dir, SnapshotEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	runDays(t, days, nil, st1)
	want := st1.Restore().Summary()

	// Save the WAL (2 records), snapshot (which compacts it away), then
	// put the stale WAL back: exactly the crash-before-truncate state.
	stale, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := st1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walFile), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	st1.Abandon() // crashed process: flock gone, file handles moot

	st2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Applied() != 2 || st2.Stats().Replayed != 0 {
		t.Errorf("applied=%d replayed=%d, want 2/0 (snapshot covers the WAL)",
			st2.Applied(), st2.Stats().Replayed)
	}
	if got := st2.Restore().Summary(); got != want {
		t.Errorf("double-applied state:\n%s\nvs:\n%s", got, want)
	}
}

// A WAL append failure disables persistence but keeps the in-memory
// mirror tracking in lockstep with the engine — and everything durable up
// to the failure still restores.
func TestWALFailureDisablesPersistenceKeepsMirror(t *testing.T) {
	days := worldEvents(t, 3)
	dir := t.TempDir()
	st, err := Open(Config{Dir: dir, SnapshotEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	runDays(t, days[:1], nil, st)

	// Break the WAL out from under the store: the next Consume's flush
	// fails, which must poison persistence (not the store).
	st.wal.Close()
	var rest []trace.Request
	for _, d := range days[1:] {
		rest = append(rest, d...)
	}
	eng, err := stream.New(stream.Config{
		Name:     "storetest",
		Window:   24 * time.Hour,
		Sinks:    []stream.Sink{st},
		Detector: []core.Option{core.WithSeed(5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for range eng.Start(&stream.SliceSource{Requests: rest}) {
	}
	if err := eng.Err(); err == nil || !strings.Contains(err.Error(), "store:") {
		t.Errorf("engine error = %v, want surfaced store error", err)
	}
	// The mirror observed all 3 windows' campaigns in sequence, so it must
	// match a continuous tracker over the same days despite the WAL dying.
	want := runDays(t, days, nil).Tracker().Summary()
	if got := st.Restore().Summary(); got != want {
		t.Errorf("mirror fell behind after WAL failure:\n%s\nvs:\n%s", got, want)
	}
	if st.Stats().Windows != 3 {
		t.Errorf("mirror windows = %d, want 3", st.Stats().Windows)
	}
	if err := st.Close(); err != nil {
		t.Errorf("Close after poisoned WAL: %v", err)
	}

	// Only the pre-failure window survives on disk, cleanly.
	st2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Applied() != 1 {
		t.Errorf("restored %d windows, want 1 (up to the failure)", st2.Applied())
	}
}

// Changing -retire-after across a restart must not rewrite history:
// snapshot + WAL replay under the recorded policy, and the new policy
// takes effect only for windows after recovery.
func TestPolicyChangeAppliesOnlyForward(t *testing.T) {
	// SnapshotEvery 3: replay spans snapshot + trailing WAL record.
	// SnapshotEvery 100: everything after the birth snapshot is WAL-only —
	// the birth snapshot is what records the original policy.
	for _, snapEvery := range []int{3, 100} {
		t.Run(fmt.Sprintf("snapEvery=%d", snapEvery), func(t *testing.T) {
			testPolicyChange(t, snapEvery)
		})
	}
}

func testPolicyChange(t *testing.T, snapEvery int) {
	dir := t.TempDir()
	mk := func(retire int) Config {
		return Config{Dir: dir, SnapshotEvery: snapEvery, NewTracker: func() *tracker.Tracker {
			tk := tracker.New()
			tk.RetireAfter = retire
			return tk
		}}
	}
	base := time.Date(2020, 9, 13, 0, 0, 0, 0, time.UTC)
	consume := func(st *Store, seq int, active bool) {
		t.Helper()
		w := &stream.WindowResult{
			Seq:   seq,
			Start: base.AddDate(0, 0, seq),
			End:   base.AddDate(0, 0, seq+1),
		}
		if active {
			w.Requests = 10
			w.Report = &core.Report{Campaigns: []campaign.Campaign{{
				Servers: []string{"a.test", "b.test"},
				Clients: []string{"c1", "c2"},
				Kind:    campaign.KindCommunication,
			}}}
		}
		if err := st.Consume(w); err != nil {
			t.Fatal(err)
		}
	}

	// Under retire-never: one active window, then three idle ones. The
	// snapshot lands after window 2 (SnapshotEvery=3), window 3 stays in
	// the WAL. No Close: the kill -9 state.
	st1, err := Open(mk(0))
	if err != nil {
		t.Fatal(err)
	}
	for seq, active := range []bool{true, false, false, false} {
		consume(st1, seq, active)
	}
	want := st1.Restore().Summary()
	st1.Abandon() // killed here

	// Reopen with retire-after 2: the replayed window 3 must NOT
	// retroactively retire lineage 0 (it was live when recorded).
	st2, err := Open(mk(2))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Restore().Summary(); got != want {
		t.Errorf("policy change rewrote replayed history:\n%s\nvs:\n%s", got, want)
	}
	tk := st2.Restore()
	if tk.RetireAfter != 2 {
		t.Errorf("RetireAfter = %d, want the new policy (2)", tk.RetireAfter)
	}
	// Going forward the new policy applies: the next window retires the
	// long-idle lineage.
	consume(st2, 4, false)
	if st2.Stats().RetiredLineages != 1 {
		t.Errorf("new policy not applied forward: %+v", st2.Stats())
	}
}

// The state dir is exclusively locked: a second Open fails while the
// first store lives, and succeeds after Close.
func TestStateDirLocked(t *testing.T) {
	dir := t.TempDir()
	st1, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir}); err == nil || !strings.Contains(err.Error(), "in use") {
		t.Errorf("double open allowed: %v", err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	st2.Close()
}

// A corrupt record in the middle of the WAL (newline-terminated but
// unparsable) must refuse to open rather than silently discarding every
// valid record after it. Only a torn FINAL line is recoverable.
func TestCorruptMidWALRejected(t *testing.T) {
	days := worldEvents(t, 2)
	dir := t.TempDir()
	st1, err := Open(Config{Dir: dir, SnapshotEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	runDays(t, days, nil, st1)
	st1.Abandon() // killed

	wal := filepath.Join(dir, walFile)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	// Break the FIRST record's JSON structure, keeping its newline.
	data[0] = 'X'
	if err := os.WriteFile(wal, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir}); err == nil || !strings.Contains(err.Error(), "corrupt wal") {
		t.Errorf("mid-file corruption accepted: %v", err)
	}
}

// A WAL from the future (gap against the snapshot) is corruption, not
// something to guess around.
func TestWALGapRejected(t *testing.T) {
	dir := t.TempDir()
	line := `{"seq":7,"window":0,"start":"2020-01-01T00:00:00Z","end":"2020-01-02T00:00:00Z","requests":0}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, walFile), []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir}); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Errorf("gap accepted: %v", err)
	}
}
