// Package whois models domain registration records and the whois-similarity
// dimension of SMASH (§III-B2): malicious campaign domains are frequently
// registered with overlapping contact details (same postal address, phone
// number, or name servers) even when the registrant names differ, as in the
// paper's Fig. 5 example.
//
// In the original deployment these records come from live whois lookups; the
// synthetic world populates a Registry directly (see DESIGN.md substitution
// table). The similarity code only depends on the Registry interface, so a
// live resolver can be dropped in unchanged.
package whois

import (
	"sort"
	"strings"
	"time"
)

// Record is a normalized whois registration record.
type Record struct {
	Domain      string    `json:"domain"`
	Registrant  string    `json:"registrant"`
	Email       string    `json:"email"`
	Phone       string    `json:"phone"`
	Address     string    `json:"address"`
	Registrar   string    `json:"registrar"`
	NameServers []string  `json:"nameServers"`
	Created     time.Time `json:"created"`
}

// fieldCount is the number of comparable whois fields (registrant, email,
// phone, address, name-server set).
const fieldCount = 5

// MinSharedFields is the paper's rule: two servers must share at least two
// whois fields to be considered associated, so that merely using the same
// registration proxy does not link them.
const MinSharedFields = 2

// Registry resolves server keys (second-level domains) to whois records.
type Registry interface {
	// Lookup returns the record for a domain and whether one exists.
	Lookup(domain string) (Record, bool)
}

// MapRegistry is an in-memory Registry.
type MapRegistry struct {
	records map[string]Record
}

var _ Registry = (*MapRegistry)(nil)

// NewMapRegistry returns an empty in-memory registry.
func NewMapRegistry() *MapRegistry {
	return &MapRegistry{records: make(map[string]Record)}
}

// Add stores a record keyed by its (lowercased) domain.
func (m *MapRegistry) Add(r Record) {
	m.records[strings.ToLower(r.Domain)] = r
}

// Lookup implements Registry.
func (m *MapRegistry) Lookup(domain string) (Record, bool) {
	r, ok := m.records[strings.ToLower(domain)]
	return r, ok
}

// Len reports the number of stored records.
func (m *MapRegistry) Len() int { return len(m.records) }

// Domains returns the registered domains in sorted order.
func (m *MapRegistry) Domains() []string {
	out := make([]string, 0, len(m.records))
	for d := range m.records {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// SharedFields counts how many of the comparable fields two records share.
// Name servers count as one field, shared when the (sorted) sets intersect.
// Empty fields never match.
func SharedFields(a, b Record) int {
	n := 0
	if eqNonEmpty(a.Registrant, b.Registrant) {
		n++
	}
	if eqNonEmpty(a.Email, b.Email) {
		n++
	}
	if eqNonEmpty(a.Phone, b.Phone) {
		n++
	}
	if eqNonEmpty(a.Address, b.Address) {
		n++
	}
	if nsIntersect(a.NameServers, b.NameServers) {
		n++
	}
	return n
}

func eqNonEmpty(a, b string) bool {
	return a != "" && strings.EqualFold(a, b)
}

func nsIntersect(a, b []string) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	set := make(map[string]struct{}, len(a))
	for _, s := range a {
		set[strings.ToLower(s)] = struct{}{}
	}
	for _, s := range b {
		if _, ok := set[strings.ToLower(s)]; ok {
			return true
		}
	}
	return false
}

// Similarity is the whois similarity of two records: the number of shared
// fields over the number of comparable fields, but 0 unless at least
// MinSharedFields are shared (the registration-proxy guard).
func Similarity(a, b Record) float64 {
	shared := SharedFields(a, b)
	if shared < MinSharedFields {
		return 0
	}
	return float64(shared) / float64(fieldCount)
}

// FieldSignature returns stable string tokens, one per non-empty comparable
// field, used to bucket candidate record pairs without O(N²) comparisons:
// records sharing at least one signature token are candidates for the ≥2
// shared field test.
func FieldSignature(r Record) []string {
	var sig []string
	if r.Registrant != "" {
		sig = append(sig, "reg:"+strings.ToLower(r.Registrant))
	}
	if r.Email != "" {
		sig = append(sig, "email:"+strings.ToLower(r.Email))
	}
	if r.Phone != "" {
		sig = append(sig, "phone:"+strings.ToLower(r.Phone))
	}
	if r.Address != "" {
		sig = append(sig, "addr:"+strings.ToLower(r.Address))
	}
	for _, ns := range r.NameServers {
		sig = append(sig, "ns:"+strings.ToLower(ns))
	}
	return sig
}
