package whois

import (
	"testing"
	"time"
)

func rec(domain, registrant, email, phone, addr string, ns ...string) Record {
	return Record{
		Domain:      domain,
		Registrant:  registrant,
		Email:       email,
		Phone:       phone,
		Address:     addr,
		NameServers: ns,
		Created:     time.Unix(0, 0),
	}
}

func TestSharedFields(t *testing.T) {
	// The paper's Fig. 5: different registrants but same address, phone and
	// name servers.
	a := rec("skolewcho.com", "ivan p", "a@x.com", "+7-123", "1 Evil St", "ns1.bad.net")
	b := rec("switcho81.com", "pyotr q", "b@y.com", "+7-123", "1 Evil St", "ns1.bad.net", "ns2.bad.net")
	if got := SharedFields(a, b); got != 3 {
		t.Errorf("SharedFields = %d, want 3 (phone, address, NS)", got)
	}
}

func TestSharedFieldsEmptyNeverMatch(t *testing.T) {
	a := rec("a.com", "", "", "", "")
	b := rec("b.com", "", "", "", "")
	if got := SharedFields(a, b); got != 0 {
		t.Errorf("empty fields matched: %d", got)
	}
}

func TestSharedFieldsCaseInsensitive(t *testing.T) {
	a := rec("a.com", "Evil Corp", "X@EVIL.COM", "", "")
	b := rec("b.com", "evil corp", "x@evil.com", "", "")
	if got := SharedFields(a, b); got != 2 {
		t.Errorf("SharedFields = %d, want 2", got)
	}
}

func TestSimilarityProxyGuard(t *testing.T) {
	// Only one shared field (a common registration proxy email) must yield 0.
	a := rec("a.com", "alice", "proxy@registrar.com", "1", "addr-a")
	b := rec("b.com", "bob", "proxy@registrar.com", "2", "addr-b")
	if got := Similarity(a, b); got != 0 {
		t.Errorf("proxy-only similarity = %g, want 0", got)
	}
}

func TestSimilarityValue(t *testing.T) {
	a := rec("a.com", "x", "e@e.com", "123", "addr", "ns1.z.com")
	b := rec("b.com", "x", "e@e.com", "999", "other", "ns9.q.com")
	if got := Similarity(a, b); got != 2.0/5.0 {
		t.Errorf("similarity = %g, want 0.4", got)
	}
	if got := Similarity(a, a); got != 1.0 {
		t.Errorf("self similarity = %g, want 1", got)
	}
}

func TestSimilaritySymmetric(t *testing.T) {
	a := rec("a.com", "x", "e@e.com", "1", "q", "ns1.a.com")
	b := rec("b.com", "x", "other", "1", "q")
	if Similarity(a, b) != Similarity(b, a) {
		t.Error("similarity not symmetric")
	}
}

func TestMapRegistry(t *testing.T) {
	reg := NewMapRegistry()
	reg.Add(rec("Example.COM", "x", "", "", ""))
	got, ok := reg.Lookup("example.com")
	if !ok {
		t.Fatal("lookup failed")
	}
	if got.Registrant != "x" {
		t.Errorf("record = %+v", got)
	}
	if _, ok := reg.Lookup("missing.com"); ok {
		t.Error("missing domain found")
	}
	if reg.Len() != 1 {
		t.Errorf("Len = %d", reg.Len())
	}
	reg.Add(rec("aaa.com", "y", "", "", ""))
	d := reg.Domains()
	if len(d) != 2 || d[0] != "aaa.com" {
		t.Errorf("Domains = %v", d)
	}
}

func TestFieldSignature(t *testing.T) {
	r := rec("a.com", "X", "E@e.com", "", "Addr", "NS1.z.com", "ns2.z.com")
	sig := FieldSignature(r)
	want := map[string]bool{
		"reg:x": true, "email:e@e.com": true, "addr:addr": true,
		"ns:ns1.z.com": true, "ns:ns2.z.com": true,
	}
	if len(sig) != len(want) {
		t.Fatalf("signature = %v", sig)
	}
	for _, s := range sig {
		if !want[s] {
			t.Errorf("unexpected token %q", s)
		}
	}
	if got := FieldSignature(Record{Domain: "b.com"}); len(got) != 0 {
		t.Errorf("empty record signature = %v", got)
	}
}
