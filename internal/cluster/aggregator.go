package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"smash/internal/core"
	"smash/internal/obs"
	"smash/internal/stream"
	"smash/internal/trace"
	"smash/internal/tracker"
	"smash/internal/wire"
)

// AggregatorConfig parameterizes an Aggregator.
type AggregatorConfig struct {
	// Name labels window reports (default "smashd", matching a standalone
	// engine so cluster and single-node reports are comparable).
	Name string
	// Window is the detection window size (required, > 0).
	Window time.Duration
	// Stride is the window start spacing; 0 defaults to Window. It must
	// equal the ingest nodes' stride or window ids will not align.
	Stride time.Duration
	// Expect is the number of ingest nodes feeding this aggregator
	// (required, > 0). A window seals once every expected node has
	// forwarded it (or passed it).
	Expect int
	// Straggler bounds how far (in windows) the lead node may run ahead
	// of a lagging one before windows seal without the straggler; late
	// fragments are then counted and dropped. 0 waits for every node
	// indefinitely — exact, but a dead node stalls the cluster.
	Straggler int
	// Detector configures the core.Detector run on every merged window.
	Detector []core.Option
	// Tracker overrides the lineage tracker (default tracker.New()).
	Tracker *tracker.Tracker
	// Sinks receive every emitted WindowResult in window order, exactly
	// like stream.Config.Sinks (internal/store plugs in unchanged).
	Sinks []stream.Sink
	// Buffer is the fragment inbox capacity; a full inbox blocks Submit,
	// backpressuring ingest nodes through their forwarders (default 64).
	Buffer int
	// Metrics registers the aggregator's latency histograms (fragment
	// wait, detection, per-stage, per-sink, seal->commit) on this
	// registry. Nil disables metrics.
	Metrics *obs.Registry
	// Tracer records each merged cluster window's lifecycle spans
	// (fragments, merge, detect and its stages, sink consumes). Nil
	// disables tracing.
	Tracer *obs.Tracer
	// Logger receives structured aggregator logs. Nil discards them.
	Logger *slog.Logger
}

// Stats is a live snapshot of the aggregator's counters.
type Stats struct {
	// Nodes is the number of distinct ingest nodes seen so far.
	Nodes int `json:"nodes"`
	// FinishedNodes counts nodes that sent their final marker.
	FinishedNodes int `json:"finishedNodes"`
	// Fragments counts accepted window fragments (excluding final
	// markers, duplicates and late drops).
	Fragments int `json:"fragments"`
	// DuplicateFragments counts redelivered (node, window) fragments
	// dropped for idempotence.
	DuplicateFragments int `json:"duplicateFragments"`
	// LateFragments counts fragments dropped because their window had
	// already sealed (the straggler policy).
	LateFragments int `json:"lateFragments"`
	// Windows counts emitted windows; EmptyWindows those with no events.
	Windows      int `json:"windows"`
	EmptyWindows int `json:"emptyWindows"`
	// Requests sums merged request counts over emitted windows.
	Requests int `json:"requests"`
}

// NodeStat describes one ingest node as seen by the aggregator.
type NodeStat struct {
	// Node is the node's self-reported name.
	Node string `json:"node"`
	// Fragments and Requests count accepted fragments and their events.
	Fragments int `json:"fragments"`
	Requests  int `json:"requests"`
	// LateFragments counts this node's fragments dropped after sealing.
	LateFragments int `json:"lateFragments"`
	// LastWindow is the node's watermark: the highest window id it has
	// forwarded.
	LastWindow int64 `json:"lastWindow"`
	// Finished reports whether the node sent its final marker.
	Finished bool `json:"finished"`
}

type nodeState struct {
	last      int64
	finished  bool
	fragments int
	requests  int
	late      int
}

// Aggregator receives window fragments from ingest nodes, aligns them on
// epoch-derived window ids, merges each window's fragments (remap-merge
// across foreign symbol tables) and drives the detection pipeline,
// tracker and sinks exactly like a standalone stream engine. Create with
// NewAggregator, feed with Submit (typically via internal/serve's
// /v1/ingest), consume the Start channel.
type Aggregator struct {
	cfg AggregatorConfig
	det *core.Detector
	tk  *tracker.Tracker
	log *slog.Logger
	tr  *obs.Tracer

	// Latency instruments; all nil (and so no-ops) without Metrics.
	mWait, mDetect, mSealCommit *obs.Histogram
	mStage, mSink               map[string]*obs.Histogram

	in   chan *wire.Fragment
	out  chan stream.WindowResult
	done chan struct{}
	quit chan struct{}

	stopOnce sync.Once
	started  bool

	errMu sync.Mutex
	err   error

	nodeMu sync.Mutex
	nodes  map[string]*nodeState

	ctrFragments, ctrDup, ctrLate     atomic.Int64
	ctrWindows, ctrEmpty, ctrRequests atomic.Int64
}

// NewAggregator validates the config and builds an aggregator.
func NewAggregator(cfg AggregatorConfig) (*Aggregator, error) {
	if cfg.Window <= 0 {
		return nil, errors.New("cluster: Window must be > 0")
	}
	if cfg.Stride == 0 {
		cfg.Stride = cfg.Window
	}
	if cfg.Stride < 0 || cfg.Stride > cfg.Window {
		return nil, errors.New("cluster: Stride must be in (0, Window]")
	}
	if cfg.Expect <= 0 {
		return nil, errors.New("cluster: Expect must be > 0 (the ingest node count)")
	}
	if cfg.Straggler < 0 {
		return nil, errors.New("cluster: Straggler must be >= 0")
	}
	if cfg.Name == "" {
		cfg.Name = "smashd"
	}
	if cfg.Tracker == nil {
		cfg.Tracker = tracker.New()
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 64
	}
	a := &Aggregator{
		cfg:   cfg,
		det:   core.New(cfg.Detector...),
		tk:    cfg.Tracker,
		log:   cfg.Logger,
		tr:    cfg.Tracer,
		in:    make(chan *wire.Fragment, cfg.Buffer),
		out:   make(chan stream.WindowResult, 1),
		done:  make(chan struct{}),
		quit:  make(chan struct{}),
		nodes: make(map[string]*nodeState),
	}
	if a.log == nil {
		a.log = obs.Discard()
	}
	// Histogram families shared with the stream engine keep the engine's
	// help text: registering the same name twice with one registry must
	// agree on metadata.
	if reg := cfg.Metrics; reg != nil {
		a.mWait = reg.Histogram("smash_cluster_fragment_wait_seconds",
			"Wall-clock from a cluster window's first fragment arrival to its seal.")
		a.mDetect = reg.Histogram("smash_window_detect_seconds",
			"Wall-clock running the detection pipeline, per window.")
		a.mSealCommit = reg.Histogram("smash_seal_commit_seconds",
			"Wall-clock from a window's sealed index to its committed result (sinks done, result published).")
		a.mStage = make(map[string]*obs.Histogram)
		for _, s := range core.StageNames() {
			a.mStage[s] = reg.Histogram("smash_pipeline_stage_seconds",
				"Wall-clock per detection pipeline stage run.", "stage", s)
		}
		a.mSink = make(map[string]*obs.Histogram)
		for _, s := range cfg.Sinks {
			name := clusterSinkName(s)
			a.mSink[name] = reg.Histogram("smash_sink_consume_seconds",
				"Wall-clock per sink consume on the window commit path.", "sink", name)
		}
	}
	return a, nil
}

// clusterSinkName labels a sink for spans and metrics (see
// stream.NamedSink).
func clusterSinkName(s stream.Sink) string {
	if n, ok := s.(stream.NamedSink); ok {
		return n.SinkName()
	}
	return "sink"
}

// Start launches the aggregation loop and returns the result channel. The
// channel closes once every expected node has sent its final marker and
// all pending windows have been flushed, or after Stop.
func (a *Aggregator) Start(ctx context.Context) <-chan stream.WindowResult {
	if a.started {
		panic("cluster: Start called twice")
	}
	a.started = true
	go a.run(ctx)
	return a.out
}

// ErrStopped is returned by Submit once the aggregator has shut down — a
// transient condition from a sender's point of view (retry elsewhere or
// give up), unlike the permanent validation errors Submit also returns.
var ErrStopped = errors.New("cluster: aggregator stopped")

// Submit hands one decoded fragment to the aggregation loop, blocking
// while the inbox is full (that blocking is the cluster's backpressure).
// It fails with ErrStopped once the aggregator has stopped; any other
// error marks the fragment itself as invalid and will not heal on retry.
func (a *Aggregator) Submit(frag *wire.Fragment) error {
	if frag.Node == "" {
		return errors.New("cluster: fragment without a node name")
	}
	if !frag.Final && frag.Index == nil {
		return errors.New("cluster: non-final fragment without an index")
	}
	select {
	case <-a.done:
		return ErrStopped
	default:
	}
	select {
	case a.in <- frag:
		return nil
	case <-a.done:
		return ErrStopped
	}
}

// Stop asks the aggregator to flush every pending window (in window
// order, without waiting for stragglers) and close the output channel.
// Safe to call concurrently and more than once.
func (a *Aggregator) Stop() {
	a.stopOnce.Do(func() { close(a.quit) })
}

// Err returns the first detection, sink or context error, if any. Valid
// once the output channel has closed.
func (a *Aggregator) Err() error {
	a.errMu.Lock()
	defer a.errMu.Unlock()
	return a.err
}

func (a *Aggregator) setErr(err error) {
	a.errMu.Lock()
	defer a.errMu.Unlock()
	if a.err == nil {
		a.err = err
	}
}

// Tracker exposes the cross-window lineage tracker (for end-of-run
// summaries). Valid once the output channel has closed.
func (a *Aggregator) Tracker() *tracker.Tracker { return a.tk }

// Stats returns a live snapshot of the aggregator counters.
func (a *Aggregator) Stats() Stats {
	a.nodeMu.Lock()
	nodes, finished := len(a.nodes), 0
	for _, n := range a.nodes {
		if n.finished {
			finished++
		}
	}
	a.nodeMu.Unlock()
	return Stats{
		Nodes:              nodes,
		FinishedNodes:      finished,
		Fragments:          int(a.ctrFragments.Load()),
		DuplicateFragments: int(a.ctrDup.Load()),
		LateFragments:      int(a.ctrLate.Load()),
		Windows:            int(a.ctrWindows.Load()),
		EmptyWindows:       int(a.ctrEmpty.Load()),
		Requests:           int(a.ctrRequests.Load()),
	}
}

// NodeStats returns per-node counters, sorted by node name.
func (a *Aggregator) NodeStats() []NodeStat {
	a.nodeMu.Lock()
	defer a.nodeMu.Unlock()
	out := make([]NodeStat, 0, len(a.nodes))
	for name, n := range a.nodes {
		out = append(out, NodeStat{
			Node:          name,
			Fragments:     n.fragments,
			Requests:      n.requests,
			LateFragments: n.late,
			LastWindow:    n.last,
			Finished:      n.finished,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// run is the single aggregation goroutine: it owns all window bookkeeping
// and runs detection in window order, so worker-free sequencing is the
// determinism guarantee (fragment arrival order never changes output).
func (a *Aggregator) run(ctx context.Context) {
	// done closes before out (LIFO), so a consumer that has seen the
	// output channel close can rely on Submit failing from then on.
	defer close(a.out)
	defer close(a.done)

	const noWindow = int64(math.MinInt64)
	var (
		pending          = make(map[int64]map[string]*trace.Index)
		minSeen, maxSeen = int64(math.MaxInt64), noWindow
		nextSeal         = noWindow
		sealedAny        bool
		emitted          int
		// firstFrag stamps each pending window's first fragment arrival —
		// the start of its "fragments" (wait) span; nil when neither
		// tracing nor the wait histogram is wired.
		firstFrag map[int64]time.Time
	)
	if a.tr != nil || a.mWait != nil {
		firstFrag = make(map[int64]time.Time)
	}
	a.log.Info("aggregator starting",
		"window", a.cfg.Window, "stride", a.cfg.Stride,
		"expect", a.cfg.Expect, "straggler", a.cfg.Straggler)
	defer func() { a.log.Info("aggregator stopped", "windows", emitted) }()

	accept := func(frag *wire.Fragment) {
		a.nodeMu.Lock()
		node := a.nodes[frag.Node]
		if node == nil {
			node = &nodeState{last: noWindow}
			a.nodes[frag.Node] = node
			a.log.Info("node joined", "node", frag.Node)
		}
		if frag.Final {
			node.finished = true
			a.nodeMu.Unlock()
			a.log.Info("node finished", "node", frag.Node, "lastWindow", frag.Window)
			return
		}
		if frag.Window > node.last {
			node.last = frag.Window
		}
		sealed := sealedAny && frag.Window < nextSeal
		dup := !sealed && pending[frag.Window][frag.Node] != nil
		if sealed {
			node.late++
		} else if !dup {
			node.fragments++
			node.requests += frag.Index.RequestCount
		}
		a.nodeMu.Unlock()
		switch {
		case sealed:
			a.ctrLate.Add(1)
			a.log.Warn("late fragment dropped", "node", frag.Node, "windowID", frag.Window)
			return
		case dup:
			a.ctrDup.Add(1)
			a.log.Debug("duplicate fragment dropped", "node", frag.Node, "windowID", frag.Window)
			return
		}
		a.ctrFragments.Add(1)
		w := pending[frag.Window]
		if w == nil {
			w = make(map[string]*trace.Index, a.cfg.Expect)
			pending[frag.Window] = w
			if firstFrag != nil {
				firstFrag[frag.Window] = time.Now()
			}
		}
		w[frag.Node] = frag.Index
		if frag.Window < minSeen {
			minSeen = frag.Window
		}
		if frag.Window > maxSeen {
			maxSeen = frag.Window
		}
	}

	// watermark is the highest window id known complete: the minimum over
	// all expected nodes of their last forwarded window. Unknown nodes
	// hold it at -inf; finished nodes lift theirs to +inf.
	watermark := func() (int64, bool) {
		a.nodeMu.Lock()
		defer a.nodeMu.Unlock()
		if len(a.nodes) < a.cfg.Expect {
			return noWindow, false
		}
		w, allDone := int64(math.MaxInt64), true
		for _, n := range a.nodes {
			if n.finished {
				continue
			}
			allDone = false
			if n.last < w {
				w = n.last
			}
		}
		return w, allDone
	}

	seal := func(w int64, aborted bool) {
		sealStart := time.Now()
		seq := int64(emitted)
		frags := pending[w]
		delete(pending, w)
		if firstFrag != nil {
			if t0, ok := firstFrag[w]; ok {
				delete(firstFrag, w)
				d := sealStart.Sub(t0)
				a.tr.Record(seq, "fragments", t0, d, "nodes", strconv.Itoa(len(frags)))
				a.mWait.Observe(d.Seconds())
			}
		}
		names := make([]string, 0, len(frags))
		for n := range frags {
			names = append(names, n)
		}
		sort.Strings(names)
		merged := trace.NewIndex()
		for _, n := range names {
			merged.Merge(frags[n])
		}
		sealedAt := time.Now()

		start := WindowStart(w, a.cfg.Stride)
		if a.tr != nil {
			a.tr.Window(seq, start, start.Add(a.cfg.Window))
			a.tr.Record(seq, "merge", sealStart, sealedAt.Sub(sealStart),
				"nodes", strconv.Itoa(len(names)), "requests", strconv.Itoa(merged.RequestCount))
		}
		res := stream.WindowResult{
			Seq:      emitted,
			Start:    start,
			End:      start.Add(a.cfg.Window),
			Requests: merged.RequestCount,
			Index:    merged,
		}
		if merged.RequestCount > 0 && !aborted && ctx.Err() == nil {
			name := fmt.Sprintf("%s-w%d", a.cfg.Name, emitted)
			var extra []core.Observer
			if a.tr != nil || a.mStage != nil {
				extra = append(extra, stream.StageTraceObserver(a.tr, a.mStage, seq))
			}
			t0 := time.Now()
			report, err := a.det.RunIndexContext(ctx, merged, merged.ComputeStats(name), extra...)
			d := time.Since(t0)
			if a.tr != nil {
				attrs := []string(nil)
				if err != nil {
					attrs = []string{"error", err.Error()}
				}
				a.tr.Record(seq, "detect", t0, d, attrs...)
			}
			a.mDetect.Observe(d.Seconds())
			switch {
			case err == nil:
				res.Report = report
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				a.setErr(err)
			default:
				a.setErr(fmt.Errorf("cluster: window %d: %w", emitted, err))
				a.log.Error("window detection failed", "window", emitted, "err", err)
			}
		}
		report := res.Report
		if report == nil {
			report = &core.Report{}
			if merged.RequestCount == 0 {
				a.ctrEmpty.Add(1)
			}
		}
		res.Matches = a.tk.Observe(report)
		// Retire deltas lead, mirroring the standalone engine's emit path
		// so cluster runs stay byte-identical to single-node runs.
		res.Deltas = append(stream.RetireDeltas(res.Seq, a.tk.RetiredNow()),
			stream.DeltasFor(res.Seq, report.AllCampaigns(), res.Matches)...)
		for _, s := range a.cfg.Sinks {
			name := clusterSinkName(s)
			t0 := time.Now()
			err := s.Consume(&res)
			d := time.Since(t0)
			a.tr.Record(seq, name, t0, d)
			a.mSink[name].Observe(d.Seconds())
			if err != nil {
				a.setErr(fmt.Errorf("cluster: sink: %w", err))
				a.log.Error("sink failed", "window", emitted, "sink", name, "err", err)
			}
		}
		a.mSealCommit.ObserveSince(sealedAt)
		a.ctrWindows.Add(1)
		a.ctrRequests.Add(int64(merged.RequestCount))
		a.log.Debug("window committed",
			"window", emitted, "windowID", w, "nodes", len(names), "requests", merged.RequestCount)
		emitted++
		sealedAny = true
		a.out <- res
	}

	// flush seals every remaining window in order, report-less when the
	// context has been cancelled.
	flush := func() {
		for ; sealedAny && nextSeal <= maxSeen; nextSeal++ {
			seal(nextSeal, ctx.Err() != nil)
		}
		if !sealedAny && maxSeen != noWindow {
			for nextSeal = minSeen; nextSeal <= maxSeen; nextSeal++ {
				seal(nextSeal, ctx.Err() != nil)
			}
		}
	}

	for {
		select {
		case frag := <-a.in:
			accept(frag)
		case <-a.quit:
			// Drain fragments already accepted into the inbox before
			// flushing, so Stop never discards a buffered submission.
		drain:
			for {
				select {
				case frag := <-a.in:
					accept(frag)
				default:
					break drain
				}
			}
			flush()
			return
		case <-ctx.Done():
			a.setErr(ctx.Err())
			flush()
			return
		}

		wm, allDone := watermark()
		if allDone {
			flush()
			return
		}
		if maxSeen == noWindow {
			continue
		}
		if !sealedAny {
			nextSeal = minSeen
		}
		for nextSeal <= maxSeen {
			ready := nextSeal <= wm ||
				(a.cfg.Straggler > 0 && maxSeen-nextSeal >= int64(a.cfg.Straggler))
			if !ready {
				break
			}
			seal(nextSeal, false)
			nextSeal++
		}
	}
}
