package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"smash/internal/core"
	"smash/internal/obs"
	"smash/internal/stream"
	"smash/internal/trace"
	"smash/internal/tracker"
	"smash/internal/wire"
)

// AggregatorConfig parameterizes an Aggregator.
type AggregatorConfig struct {
	// Name labels window reports (default "smashd", matching a standalone
	// engine so cluster and single-node reports are comparable).
	Name string
	// Window is the detection window size (required, > 0).
	Window time.Duration
	// Stride is the window start spacing; 0 defaults to Window. It must
	// equal the ingest nodes' stride or window ids will not align.
	Stride time.Duration
	// Expect is the number of ingest nodes feeding this aggregator
	// (required, > 0). A window seals once every expected node has
	// forwarded it (or passed it).
	Expect int
	// Straggler bounds how far (in windows) the lead node may run ahead
	// of a lagging one before windows seal without the straggler; late
	// fragments are then counted and dropped. 0 waits for every node
	// indefinitely — exact, but a dead node stalls the cluster.
	Straggler int
	// Detector configures the core.Detector run on every merged window.
	Detector []core.Option
	// Tracker overrides the lineage tracker (default tracker.New()).
	Tracker *tracker.Tracker
	// Sinks receive every emitted WindowResult in window order, exactly
	// like stream.Config.Sinks (internal/store plugs in unchanged).
	Sinks []stream.Sink
	// Buffer is the fragment inbox capacity; a full inbox blocks Submit,
	// backpressuring ingest nodes through their forwarders (default 64).
	Buffer int
	// FragDir, when set, makes the aggregator crash-recoverable: every
	// fragment is logged there (FragLog) before Submit acknowledges it,
	// and a restarted aggregator replays un-sealed windows through the
	// same dedupe/late filters, resuming byte-identical to a run that
	// never crashed. Empty disables recovery.
	FragDir string
	// FragSync fsyncs every fragment-log append (the WAL durability
	// class; pair it with the store's Sync).
	FragSync bool
	// AppliedWindows reconciles the fragment log's frontier after a
	// crash: the number of windows the durable sink had already applied
	// when this process started (for internal/store,
	// LastWindow().Window+1). The frontier may run at most one window
	// ahead — that window is redone. -1 trusts the frontier outright
	// (only safe when the sinks dedupe or are disposable). Ignored
	// without FragDir.
	AppliedWindows int
	// Metrics registers the aggregator's latency histograms (fragment
	// wait, detection, per-stage, per-sink, seal->commit) on this
	// registry. Nil disables metrics.
	Metrics *obs.Registry
	// Tracer records each merged cluster window's lifecycle spans
	// (fragments, merge, detect and its stages, sink consumes). Nil
	// disables tracing.
	Tracer *obs.Tracer
	// Logger receives structured aggregator logs. Nil discards them.
	Logger *slog.Logger
}

// Aggregator receives window fragments from ingest nodes, aligns them on
// epoch-derived window ids, merges each window's fragments (remap-merge
// across foreign symbol tables) and drives the detection pipeline,
// tracker and sinks exactly like a standalone stream engine. Create with
// NewAggregator, feed with Submit (typically via internal/serve's
// /v1/ingest), consume the Start channel. With FragDir set it survives
// kill -9: see AggregatorConfig.FragDir and the package comment's fault
// tolerance section.
type Aggregator struct {
	*assembler

	cfg AggregatorConfig
	det *core.Detector
	tk  *tracker.Tracker

	// Latency instruments; all nil (and so no-ops) without Metrics.
	mDetect       *obs.Histogram
	mStage, mSink map[string]*obs.Histogram

	out chan stream.WindowResult
}

// NewAggregator validates the config and builds an aggregator.
func NewAggregator(cfg AggregatorConfig) (*Aggregator, error) {
	if cfg.Window <= 0 {
		return nil, errors.New("cluster: Window must be > 0")
	}
	if cfg.Stride == 0 {
		cfg.Stride = cfg.Window
	}
	if cfg.Stride < 0 || cfg.Stride > cfg.Window {
		return nil, errors.New("cluster: Stride must be in (0, Window]")
	}
	if cfg.Expect <= 0 {
		return nil, errors.New("cluster: Expect must be > 0 (the ingest node count)")
	}
	if cfg.Straggler < 0 {
		return nil, errors.New("cluster: Straggler must be >= 0")
	}
	if cfg.Name == "" {
		cfg.Name = "smashd"
	}
	if cfg.Tracker == nil {
		cfg.Tracker = tracker.New()
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 64
	}
	a := &Aggregator{
		cfg: cfg,
		det: core.New(cfg.Detector...),
		tk:  cfg.Tracker,
		out: make(chan stream.WindowResult, 1),
	}
	var mWait, mSealCommit, mHop, mE2E *obs.Histogram
	// Histogram families shared with the stream engine keep the engine's
	// help text: registering the same name twice with one registry must
	// agree on metadata.
	if reg := cfg.Metrics; reg != nil {
		mWait = reg.Histogram("smash_cluster_fragment_wait_seconds",
			"Wall-clock from a cluster window's first fragment arrival to its seal.")
		mHop = reg.Histogram("smash_hop_transit_seconds",
			"Per-hop send-to-accept transit of incoming fragments (clamped at zero under clock skew).")
		mE2E = reg.Histogram("smash_e2e_event_to_seal_seconds",
			"Wall-clock from a window's event-time end to its seal here; live windows only (crash-recovery replays are excluded).")
		a.mDetect = reg.Histogram("smash_window_detect_seconds",
			"Wall-clock running the detection pipeline, per window.")
		mSealCommit = reg.Histogram("smash_seal_commit_seconds",
			"Wall-clock from a window's sealed index to its committed result (sinks done, result published).")
		a.mStage = make(map[string]*obs.Histogram)
		for _, s := range core.StageNames() {
			a.mStage[s] = reg.Histogram("smash_pipeline_stage_seconds",
				"Wall-clock per detection pipeline stage run.", "stage", s)
		}
		a.mSink = make(map[string]*obs.Histogram)
		for _, s := range cfg.Sinks {
			name := clusterSinkName(s)
			a.mSink[name] = reg.Histogram("smash_sink_consume_seconds",
				"Wall-clock per sink consume on the window commit path.", "sink", name)
		}
	}
	var flog *FragLog
	if cfg.FragDir != "" {
		var err error
		flog, err = OpenFragLog(cfg.FragDir, cfg.FragSync)
		if err != nil {
			return nil, err
		}
		if cfg.Metrics != nil {
			registerFragLogMetrics(cfg.Metrics, flog)
		}
	}
	a.assembler = newAssembler(assemblerConfig{
		window:      cfg.Window,
		stride:      cfg.Stride,
		expect:      cfg.Expect,
		straggler:   cfg.Straggler,
		buffer:      cfg.Buffer,
		log:         cfg.Logger,
		tr:          cfg.Tracer,
		mWait:       mWait,
		mSealCommit: mSealCommit,
		mHop:        mHop,
		mE2E:        mE2E,
		flog:        flog,
		exactlyOnce: true,
		applied:     cfg.AppliedWindows,
		onSeal:      a.sealWindow,
	})
	return a, nil
}

// clusterSinkName labels a sink for spans and metrics (see
// stream.NamedSink).
func clusterSinkName(s stream.Sink) string {
	if n, ok := s.(stream.NamedSink); ok {
		return n.SinkName()
	}
	return "sink"
}

// Start launches the aggregation loop and returns the result channel. The
// channel closes once every expected node has sent its final marker and
// all pending windows have been flushed, or after Stop.
func (a *Aggregator) Start(ctx context.Context) <-chan stream.WindowResult {
	if a.started {
		panic("cluster: Start called twice")
	}
	a.started = true
	go func() {
		// done (closed by run) precedes out, so a consumer that has seen
		// the output channel close can rely on Submit failing from then
		// on.
		defer close(a.out)
		a.run(ctx)
	}()
	return a.out
}

// Tracker exposes the cross-window lineage tracker (for end-of-run
// summaries). Valid once the output channel has closed.
func (a *Aggregator) Tracker() *tracker.Tracker { return a.tk }

// sealWindow is the aggregator's half of a seal: detection on the merged
// index, tracker observation, delta derivation, sinks, and result
// publication — the same commit path a standalone stream engine drives.
// The hop trail was already folded into spans by the assembler; the
// aggregator is the tree's root, so it forwards the trail nowhere.
func (a *Aggregator) sealWindow(ctx context.Context, w int64, seq int, start time.Time, merged *trace.Index, _ []wire.Hop, aborted bool) {
	res := stream.WindowResult{
		Seq:      seq,
		Start:    start,
		End:      start.Add(a.cfg.Window),
		Requests: merged.RequestCount,
		Index:    merged,
	}
	if merged.RequestCount > 0 && !aborted && ctx.Err() == nil {
		name := fmt.Sprintf("%s-w%d", a.cfg.Name, seq)
		var extra []core.Observer
		if a.tr != nil || a.mStage != nil {
			extra = append(extra, stream.StageTraceObserver(a.tr, a.mStage, int64(seq)))
		}
		t0 := time.Now()
		report, err := a.det.RunIndexContext(ctx, merged, merged.ComputeStats(name), extra...)
		d := time.Since(t0)
		if a.tr != nil {
			attrs := []string(nil)
			if err != nil {
				attrs = []string{"error", err.Error()}
			}
			a.tr.Record(int64(seq), "detect", t0, d, attrs...)
		}
		a.mDetect.Observe(d.Seconds())
		switch {
		case err == nil:
			res.Report = report
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			a.setErr(err)
		default:
			a.setErr(fmt.Errorf("cluster: window %d: %w", seq, err))
			a.log.Error("window detection failed", "window", seq, "err", err)
		}
	}
	report := res.Report
	if report == nil {
		report = &core.Report{}
	}
	res.Matches = a.tk.Observe(report)
	// Retire deltas lead, mirroring the standalone engine's emit path
	// so cluster runs stay byte-identical to single-node runs.
	res.Deltas = append(stream.RetireDeltas(res.Seq, a.tk.RetiredNow()),
		stream.DeltasFor(res.Seq, report.AllCampaigns(), res.Matches)...)
	for _, s := range a.cfg.Sinks {
		name := clusterSinkName(s)
		t0 := time.Now()
		err := s.Consume(&res)
		d := time.Since(t0)
		a.tr.Record(int64(seq), name, t0, d)
		a.mSink[name].Observe(d.Seconds())
		if err != nil {
			a.setErr(fmt.Errorf("cluster: sink: %w", err))
			a.log.Error("sink failed", "window", seq, "sink", name, "err", err)
		}
	}
	a.out <- res
}
