package cluster

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"smash/internal/core"
	"smash/internal/wire"
)

// The merge-tier acceptance test: two ingest nodes feeding a merger that
// forwards to a one-child root must produce exactly the windows of the
// same two nodes feeding the root directly — merge is associative, and
// the deterministic per-tier node ordering makes it byte-identical.
func TestMergeTierMatchesDirect(t *testing.T) {
	window := 24 * time.Hour
	det := []core.Option{core.WithSeed(1)}
	reqs := sortedWorld(t, 3)
	ctx := context.Background()

	runNodes := func(url string) {
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				runIngestNode(t, url, nodeName(i), i, 2, reqs, window)
			}(i)
		}
		wg.Wait()
	}

	// Direct: both nodes feed the root.
	direct, directResults := startedAggregator(t, AggregatorConfig{
		Name: "mt", Window: window, Expect: 2, Detector: det,
	})
	directSrv := httptest.NewServer(ingestHandler(t, direct))
	defer directSrv.Close()
	directGot := drainResults(directResults)
	runNodes(directSrv.URL)
	want := directGot()
	if err := direct.Err(); err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("direct topology produced no windows")
	}

	// Tiered: both nodes feed a merger, which feeds the root as its only
	// child.
	root, rootResults := startedAggregator(t, AggregatorConfig{
		Name: "mt", Window: window, Expect: 1, Detector: det,
	})
	rootSrv := httptest.NewServer(ingestHandler(t, root))
	defer rootSrv.Close()
	rootGot := drainResults(rootResults)

	merger, err := NewMerger(MergerConfig{
		Window: window, Expect: 2,
		Forward: ForwarderConfig{URL: rootSrv.URL, Node: "merge-0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	mergeSrv := httptest.NewServer(ingestHandler(t, merger))
	defer mergeSrv.Close()
	mergeDone := merger.Start(ctx)

	runNodes(mergeSrv.URL)
	<-mergeDone
	if err := merger.Err(); err != nil {
		t.Fatal(err)
	}
	if err := merger.CloseUpstream(ctx); err != nil {
		t.Fatal(err)
	}

	got := rootGot()
	if err := root.Err(); err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, got, want)
	if gotSum, wantSum := root.Tracker().Summary(), direct.Tracker().Summary(); gotSum != wantSum {
		t.Errorf("lineage summary diverged:\ngot:\n%s\nwant:\n%s", gotSum, wantSum)
	}

	mst := merger.Stats()
	if mst.Nodes != 2 || mst.Windows != len(want) {
		t.Errorf("merger stats: nodes=%d windows=%d, want 2/%d", mst.Nodes, mst.Windows, len(want))
	}
	if fst := merger.Forwarder().Stats(); fst.Forwarded != len(want)+1 { // windows + final
		t.Errorf("merger forwarded %d fragments, want %d", fst.Forwarded, len(want)+1)
	}
}

func nodeName(i int) string { return "ingest-" + string(rune('0'+i)) }

// The merge tier is at-least-once: a merger that crashed after forwarding
// a window but before committing its frontier re-forwards that window on
// restart, and the parent's (node, window) dedupe keeps the output
// exactly-once. Modeled with two merger incarnations replaying identical
// fragment logs under the same node name.
func TestMergerDuplicateForwardDedupes(t *testing.T) {
	window := 24 * time.Hour
	det := []core.Option{core.WithSeed(1)}
	ctx := context.Background()
	frags := []*wire.Fragment{
		fragFor("a", 0, "c-a"), fragFor("b", 0, "c-b"),
		{Node: "a", Final: true, Window: 0}, {Node: "b", Final: true, Window: 0},
	}

	// Reference: the same children feeding an aggregator directly.
	ref, refResults := startedAggregator(t, AggregatorConfig{
		Name: "dup", Window: window, Expect: 2, Detector: det,
	})
	refGot := drainResults(refResults)
	for _, f := range frags {
		if err := ref.Submit(f); err != nil {
			t.Fatal(err)
		}
	}
	want := refGot()
	if len(want) != 1 {
		t.Fatalf("reference produced %d windows, want 1", len(want))
	}

	root, rootResults := startedAggregator(t, AggregatorConfig{
		Name: "dup", Window: window, Expect: 1, Detector: det,
	})
	rootSrv := httptest.NewServer(ingestHandler(t, root))
	defer rootSrv.Close()
	rootGot := drainResults(rootResults)

	// Each incarnation replays the same pre-crash fragment log (built
	// fresh per incarnation: a real crash leaves the files in place, but
	// a clean merger exit garbage-collects them).
	runIncarnation := func() *Merger {
		dir := t.TempDir()
		flog, err := OpenFragLog(dir, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range frags {
			if err := flog.Append(f); err != nil {
				t.Fatal(err)
			}
		}
		flog.Close()
		m, err := NewMerger(MergerConfig{
			Window: window, Expect: 2, FragDir: dir,
			Forward: ForwarderConfig{URL: rootSrv.URL, Node: "m0"},
		})
		if err != nil {
			t.Fatal(err)
		}
		<-m.Start(ctx) // completes on replay alone: the finals are logged
		if err := m.Err(); err != nil {
			t.Fatal(err)
		}
		return m
	}

	runIncarnation() // forwards window 0, "crashes" before the final marker
	m2 := runIncarnation()
	if err := m2.CloseUpstream(ctx); err != nil {
		t.Fatal(err)
	}

	got := rootGot()
	if err := root.Err(); err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, got, want)
	st := root.Stats()
	// The re-forwarded window is dropped on the duplicate path if it
	// races ahead of the seal, the late path otherwise — either way it
	// never reaches the output.
	if st.DuplicateFragments+st.LateFragments != 1 {
		t.Errorf("root dropped %d dups + %d late, want 1 total (the re-forwarded window)",
			st.DuplicateFragments, st.LateFragments)
	}
	if st.Fragments != 1 || st.Windows != 1 {
		t.Errorf("root stats: fragments=%d windows=%d, want 1/1", st.Fragments, st.Windows)
	}
}

// Merger validation mirrors the aggregator's plus the forward leg.
func TestMergerValidation(t *testing.T) {
	cases := []MergerConfig{
		{},
		{Window: time.Hour},
		{Window: time.Hour, Expect: 1},
		{Window: time.Hour, Expect: 1, Forward: ForwarderConfig{URL: "http://x"}},
		{Window: time.Hour, Expect: 1, Straggler: -1,
			Forward: ForwarderConfig{URL: "http://x", Node: "m"}},
	}
	for i, cfg := range cases {
		if _, err := NewMerger(cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}
