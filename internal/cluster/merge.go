package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"smash/internal/obs"
	"smash/internal/trace"
	"smash/internal/wire"
)

// MergerConfig parameterizes a Merger.
type MergerConfig struct {
	// Window and Stride mirror AggregatorConfig — they must match the
	// whole tree's, or window ids will not align (Stride 0 defaults to
	// Window).
	Window time.Duration
	Stride time.Duration
	// Expect is the number of child nodes feeding this merge tier
	// (required, > 0); Straggler is the same policy an aggregator
	// applies to lagging children.
	Expect    int
	Straggler int
	// Forward configures delivery to the parent (URL and Node required;
	// Stride is filled in from this config). Give it a SpoolDir to make
	// the hop durable.
	Forward ForwarderConfig
	// Buffer is the fragment inbox capacity (default 64).
	Buffer int
	// FragDir, when set, makes the merger crash-recoverable, exactly as
	// for the aggregator — except the merger re-forwards (rather than
	// redoes) the one window a crash can interrupt, relying on the
	// parent's (node, window) dedupe; it keeps no sink, so no applied
	// count is needed. FragSync fsyncs every append.
	FragDir  string
	FragSync bool
	// Metrics registers the merge latency histograms and, via Forward,
	// the delivery counters. Nil disables metrics.
	Metrics *obs.Registry
	// Logger receives structured merger logs. Nil discards them.
	Logger *slog.Logger
}

// Merger is the cluster's fan-in tier: it accepts fragments from Expect
// child nodes (ingest nodes or other mergers), merges each window's
// fragments per the aggregator's alignment/dedupe/straggler rules, and
// forwards one combined fragment per window to its parent — no
// detection, no tracker, just remap-merge. A tree of mergers under one
// aggregator produces byte-identical output to every node feeding the
// aggregator directly (TestMergeTierMatchesDirect), because index
// merging is associative and the merge order within any window is the
// sorted node order at each tier.
type Merger struct {
	*assembler

	cfg MergerConfig
	fwd *Forwarder
}

// NewMerger validates the config and builds a merger.
func NewMerger(cfg MergerConfig) (*Merger, error) {
	if cfg.Window <= 0 {
		return nil, errors.New("cluster: Window must be > 0")
	}
	if cfg.Stride == 0 {
		cfg.Stride = cfg.Window
	}
	if cfg.Stride < 0 || cfg.Stride > cfg.Window {
		return nil, errors.New("cluster: Stride must be in (0, Window]")
	}
	if cfg.Expect <= 0 {
		return nil, errors.New("cluster: Expect must be > 0 (the child node count)")
	}
	if cfg.Straggler < 0 {
		return nil, errors.New("cluster: Straggler must be >= 0")
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 64
	}
	cfg.Forward.Stride = cfg.Stride
	if cfg.Forward.Role == "" {
		cfg.Forward.Role = "merge"
	}
	fwd, err := NewForwarder(cfg.Forward)
	if err != nil {
		return nil, err
	}
	m := &Merger{cfg: cfg, fwd: fwd}
	var mWait, mSealCommit, mHop *obs.Histogram
	if reg := cfg.Metrics; reg != nil {
		mWait = reg.Histogram("smash_cluster_fragment_wait_seconds",
			"Wall-clock from a cluster window's first fragment arrival to its seal.")
		mSealCommit = reg.Histogram("smash_seal_commit_seconds",
			"Wall-clock from a window's sealed index to its committed result (sinks done, result published).")
		mHop = reg.Histogram("smash_hop_transit_seconds",
			"Per-hop send-to-accept transit of incoming fragments (clamped at zero under clock skew).")
	}
	var flog *FragLog
	if cfg.FragDir != "" {
		flog, err = OpenFragLog(cfg.FragDir, cfg.FragSync)
		if err != nil {
			return nil, err
		}
		if cfg.Metrics != nil {
			registerFragLogMetrics(cfg.Metrics, flog)
		}
	}
	m.assembler = newAssembler(assemblerConfig{
		window:      cfg.Window,
		stride:      cfg.Stride,
		expect:      cfg.Expect,
		straggler:   cfg.Straggler,
		buffer:      cfg.Buffer,
		log:         cfg.Logger,
		mWait:       mWait,
		mSealCommit: mSealCommit,
		mHop:        mHop,
		flog:        flog,
		exactlyOnce: false, // the parent dedupes; commit after forward
		applied:     -1,    // no sink to reconcile against
		onSeal:      m.sealWindow,
	})
	return m, nil
}

// Forwarder exposes the upstream delivery leg (for stats).
func (m *Merger) Forwarder() *Forwarder { return m.fwd }

// Start launches the merge loop. The returned channel closes once every
// expected child has finished and all windows are forwarded (or after
// Stop, Abandon or ctx cancellation); call CloseUpstream then to deliver
// this tier's final marker.
func (m *Merger) Start(ctx context.Context) <-chan struct{} {
	if m.started {
		panic("cluster: Start called twice")
	}
	m.started = true
	go m.run(ctx)
	return m.done
}

// CloseUpstream tells the parent no further windows will arrive from
// this tier, retrying (and draining any spool) until delivery succeeds
// or ctx is cancelled. Call it after the Start channel has closed
// cleanly; skip it after Abandon, where the restarted merger owns the
// stream's tail.
func (m *Merger) CloseUpstream(ctx context.Context) error {
	return m.fwd.CloseContext(ctx)
}

// sealWindow is the merger's half of a seal: wrap the merged index as
// this tier's own fragment for window w and deliver it to the parent,
// with the children's hop trails copied onto it — the forwarder appends
// this tier's own hop at send time, so the root sees the whole path.
// Empty windows forward too — the parent needs this tier's watermark to
// advance exactly as if the children fed it directly. Delivery failure
// (attempts exhausted without a spool) is recorded, not fatal: the
// parent's straggler policy already owns the missing-window case.
func (m *Merger) sealWindow(ctx context.Context, w int64, seq int, start time.Time, merged *trace.Index, hops []wire.Hop, aborted bool) {
	frag := &wire.Fragment{
		Node:   m.cfg.Forward.Node,
		Window: w,
		Start:  start,
		End:    start.Add(m.cfg.Window),
		Index:  merged,
		Hops:   hops,
	}
	if err := m.fwd.forward(frag); err != nil {
		m.setErr(fmt.Errorf("cluster: merge forward: %w", err))
		m.log.Error("merged fragment delivery failed", "windowID", w, "err", err)
	}
}
