package cluster

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"smash/internal/core"
	"smash/internal/stream"
	"smash/internal/tracker"
	"smash/internal/wire"
)

// drainResults collects an aggregator's output concurrently; call the
// returned func after the channel has closed to get everything emitted.
func drainResults(results <-chan stream.WindowResult) func() []stream.WindowResult {
	var (
		got  []stream.WindowResult
		done = make(chan struct{})
	)
	go func() {
		defer close(done)
		for w := range results {
			got = append(got, w)
		}
	}()
	return func() []stream.WindowResult {
		<-done
		return got
	}
}

// assertSameResults compares two emitted-window sequences field by field:
// frame, index fingerprint, report JSON, delta JSON.
func assertSameResults(t *testing.T, got, want []stream.WindowResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("windows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := &want[i], &got[i]
		if g.Seq != w.Seq || !g.Start.Equal(w.Start) || !g.End.Equal(w.End) || g.Requests != w.Requests {
			t.Fatalf("window %d frame diverged: got seq=%d [%s %s) req=%d, want seq=%d req=%d",
				i, g.Seq, g.Start, g.End, g.Requests, w.Seq, w.Requests)
		}
		if g.Index.Fingerprint() != w.Index.Fingerprint() {
			t.Errorf("window %d index fingerprint diverged", i)
		}
		wantJSON, _ := json.Marshal(w.Report)
		gotJSON, _ := json.Marshal(g.Report)
		if string(gotJSON) != string(wantJSON) {
			t.Errorf("window %d report diverged:\ngot:  %s\nwant: %s", i, gotJSON, wantJSON)
		}
		dWant, _ := json.Marshal(w.Deltas)
		dGot, _ := json.Marshal(g.Deltas)
		if string(dGot) != string(dWant) {
			t.Errorf("window %d deltas diverged:\ngot:  %s\nwant: %s", i, dGot, dWant)
		}
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// The tentpole guarantee: an aggregator killed (kill -9 equivalent:
// Abandon, no flush, no log cleanup) and restarted on the same fragment
// log resumes byte-identical to a run that never crashed — including
// fragments that were acked but never reached the loop, duplicates
// resubmitted across the restart, and continued window numbering.
func TestAggregatorCrashRecovery(t *testing.T) {
	window := 24 * time.Hour
	det := []core.Option{core.WithSeed(1)}
	ctx := context.Background()

	// Reference run, never crashed.
	ref, refResults := startedAggregator(t, AggregatorConfig{
		Name: "cr", Window: window, Expect: 2, Detector: det,
	})
	refGot := drainResults(refResults)
	for w := int64(0); w <= 1; w++ {
		for _, n := range []string{"a", "b"} {
			if err := ref.Submit(fragFor(n, w, "c-"+n)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, n := range []string{"a", "b"} {
		if err := ref.Submit(&wire.Fragment{Node: n, Final: true, Window: 1}); err != nil {
			t.Fatal(err)
		}
	}
	want := refGot()
	if err := ref.Err(); err != nil {
		t.Fatal(err)
	}
	if len(want) != 2 {
		t.Fatalf("reference run produced %d windows", len(want))
	}

	// Crashing run: same fragments, killed after window 0 committed and
	// node a's window-1 fragment was acked (logged but maybe unprocessed).
	dir := t.TempDir()
	tk := tracker.New() // stands in for store.Restore across the restart
	agg1, err := NewAggregator(AggregatorConfig{
		Name: "cr", Window: window, Expect: 2, Detector: det,
		Tracker: tk, FragDir: dir, AppliedWindows: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	got1 := drainResults(agg1.Start(ctx))
	for _, n := range []string{"a", "b"} {
		if err := agg1.Submit(fragFor(n, 0, "c-"+n)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "window 0 to seal", func() bool { return agg1.Stats().Windows >= 1 })
	if err := agg1.Submit(fragFor("a", 1, "c-a")); err != nil {
		t.Fatal(err)
	}
	agg1.Abandon()
	res1 := got1()
	if len(res1) != 1 {
		t.Fatalf("pre-crash run emitted %d windows, want 1", len(res1))
	}
	if err := agg1.Submit(fragFor("b", 1, "c-b")); err == nil {
		t.Error("Submit accepted after Abandon")
	}

	// Restart on the same state: the tracker carries over exactly as a
	// store restore would, and AppliedWindows reports what the sink saw.
	agg2, err := NewAggregator(AggregatorConfig{
		Name: "cr", Window: window, Expect: 2, Detector: det,
		Tracker: tk, FragDir: dir, AppliedWindows: len(res1),
	})
	if err != nil {
		t.Fatal(err)
	}
	got2 := drainResults(agg2.Start(ctx))
	// At-least-once across the restart: node a redelivers the fragment
	// the dead process already acked; it must dedupe to exactly-once.
	if err := agg2.Submit(fragFor("a", 1, "c-a")); err != nil {
		t.Fatal(err)
	}
	if err := agg2.Submit(fragFor("b", 1, "c-b")); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"a", "b"} {
		if err := agg2.Submit(&wire.Fragment{Node: n, Final: true, Window: 1}); err != nil {
			t.Fatal(err)
		}
	}
	res2 := got2()
	if err := agg2.Err(); err != nil {
		t.Fatal(err)
	}

	assertSameResults(t, append(res1, res2...), want)
	if got, wantSum := tk.Summary(), ref.Tracker().Summary(); got != wantSum {
		t.Errorf("lineage summary diverged:\ngot:\n%s\nwant:\n%s", got, wantSum)
	}
	st := agg2.Stats()
	if st.Replayed != 1 {
		t.Errorf("replayed = %d, want 1 (node a's acked window-1 fragment)", st.Replayed)
	}
	if st.DuplicateFragments != 1 {
		t.Errorf("duplicates = %d, want 1 (the redelivery)", st.DuplicateFragments)
	}

	// A clean completion leaves the log directory empty.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("fragment log not cleaned: %s left behind", e.Name())
	}
}

// The redo path: a crash after the frontier committed but before the
// sink applied the window (frontier one ahead of AppliedWindows) re-runs
// that window from its surviving log file, byte-identical.
func TestAggregatorRedoWindow(t *testing.T) {
	window := 24 * time.Hour
	det := []core.Option{core.WithSeed(1)}

	ref, refResults := startedAggregator(t, AggregatorConfig{
		Name: "redo", Window: window, Expect: 2, Detector: det,
	})
	refGot := drainResults(refResults)
	frags := []*wire.Fragment{
		fragFor("a", 0, "c-a"), fragFor("b", 0, "c-b"),
		fragFor("a", 1, "c-a"), fragFor("b", 1, "c-b"),
		{Node: "a", Final: true, Window: 1}, {Node: "b", Final: true, Window: 1},
	}
	for _, f := range frags {
		if err := ref.Submit(f); err != nil {
			t.Fatal(err)
		}
	}
	want := refGot()
	if len(want) != 2 {
		t.Fatalf("reference run produced %d windows", len(want))
	}

	// Hand-craft the crash state: every fragment acked (logged), frontier
	// says window 0 sealed as emission 1, but the sink never saw it —
	// exactly what a kill between Commit and the sink leaves behind.
	dir := t.TempDir()
	flog, err := OpenFragLog(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frags {
		if err := flog.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := flog.Commit(1, 1); err != nil {
		t.Fatal(err)
	}
	flog.Close()

	agg, err := NewAggregator(AggregatorConfig{
		Name: "redo", Window: window, Expect: 2, Detector: det,
		FragDir: dir, AppliedWindows: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Everything needed is in the log: the run completes on replay alone.
	got := drainResults(agg.Start(context.Background()))()
	if err := agg.Err(); err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, got, want)
	if st := agg.Stats(); st.Replayed != 6 {
		t.Errorf("replayed = %d, want 6", st.Replayed)
	}
}

// A frontier that disagrees with the sink by more than one window is a
// mixed-up state dir, and fatal.
func TestFrontierMismatchFatal(t *testing.T) {
	dir := t.TempDir()
	flog, err := OpenFragLog(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := flog.Commit(5, 5); err != nil {
		t.Fatal(err)
	}
	flog.Close()

	agg, err := NewAggregator(AggregatorConfig{
		Window: 24 * time.Hour, Expect: 1, FragDir: dir, AppliedWindows: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	drainResults(agg.Start(context.Background()))()
	if err := agg.Err(); err == nil || !strings.Contains(err.Error(), "frontier") {
		t.Errorf("mismatched frontier error = %v", err)
	}
	if err := agg.Submit(fragFor("a", 0, "cA")); err == nil {
		t.Error("Submit accepted after fatal recovery error")
	}
}

// FragLog heals torn tails at open and excludes the torn frame from
// replay — the WAL discipline, applied to fragments.
func TestFragLogTornTail(t *testing.T) {
	dir := t.TempDir()
	flog, err := OpenFragLog(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := flog.Append(fragFor("a", 3, "cA")); err != nil {
		t.Fatal(err)
	}
	if err := flog.Append(fragFor("b", 3, "cB")); err != nil {
		t.Fatal(err)
	}
	flog.Close()

	// Tear the tail: append half a frame, as a crash mid-write would.
	path := filepath.Join(dir, "w3.frag")
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := wire.AppendFrame(nil, wire.EncodeFragment(fragFor("c", 3, "cC")))
	if err := os.WriteFile(path, append(append([]byte(nil), intact...), torn[:len(torn)/2]...), 0o644); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenFragLog(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	var nodes []string
	if err := reopened.Replay(func(f *wire.Fragment) error {
		nodes = append(nodes, f.Node)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 || nodes[0] != "a" || nodes[1] != "b" {
		t.Errorf("replayed nodes = %v, want [a b]", nodes)
	}
	if info, err := os.Stat(path); err != nil || info.Size() != int64(len(intact)) {
		t.Errorf("torn tail not truncated: size=%v err=%v, want %d", info.Size(), err, len(intact))
	}
	reopened.Close()
}

// Append refuses fragments for windows behind the committed frontier:
// they are late by definition, and logging them would resurrect removed
// window files.
func TestFragLogFrontierFloor(t *testing.T) {
	dir := t.TempDir()
	flog, err := OpenFragLog(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := flog.Commit(5, 2); err != nil {
		t.Fatal(err)
	}
	if err := flog.Append(fragFor("a", 3, "cA")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "w3.frag")); !os.IsNotExist(err) {
		t.Error("fragment behind the frontier was logged")
	}
	if err := flog.Append(fragFor("a", 5, "cA")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "w5.frag")); err != nil {
		t.Errorf("fragment at the frontier not logged: %v", err)
	}
	flog.Close()
}

// A node that keeps streaming after a peer finished is flagged overdue —
// the /v1/stats signal that a final marker may have been lost.
func TestFinalOverdue(t *testing.T) {
	agg, results := startedAggregator(t, AggregatorConfig{
		Window: 24 * time.Hour, Expect: 2,
	})
	got := drainResults(results)
	if err := agg.Submit(fragFor("a", 0, "cA")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "node a to join", func() bool { return agg.Stats().Nodes == 1 })
	for _, n := range agg.NodeStats() {
		if n.FinalOverdue {
			t.Errorf("node %s overdue with no peer finished", n.Node)
		}
		if n.LastSeen.IsZero() {
			t.Errorf("node %s has no LastSeen stamp", n.Node)
		}
	}
	if err := agg.Submit(&wire.Fragment{Node: "b", Final: true, Window: -1 << 62}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "node b to finish", func() bool { return agg.Stats().FinishedNodes == 1 })
	for _, n := range agg.NodeStats() {
		if overdue := n.Node == "a"; n.FinalOverdue != overdue {
			t.Errorf("node %s FinalOverdue = %v, want %v", n.Node, n.FinalOverdue, overdue)
		}
	}
	if err := agg.Submit(&wire.Fragment{Node: "a", Final: true, Window: 0}); err != nil {
		t.Fatal(err)
	}
	got()
	if err := agg.Err(); err != nil {
		t.Fatal(err)
	}
}

// Full jitter: every retry delay is drawn from [0, cap) with the cap
// doubling per attempt up to maxBackoff.
func TestBackoffJitterBounds(t *testing.T) {
	fwd, err := NewForwarder(ForwarderConfig{
		URL: "http://x", Node: "n", Stride: time.Hour, Backoff: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 1; attempt <= 10; attempt++ {
		limit := 100 * time.Millisecond << (attempt - 1)
		if limit > maxBackoff || limit <= 0 {
			limit = maxBackoff
		}
		for i := 0; i < 50; i++ {
			if d := fwd.backoffFor(attempt); d < 0 || d >= limit {
				t.Fatalf("attempt %d: delay %v outside [0, %v)", attempt, d, limit)
			}
		}
	}
}
