package cluster

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"smash/internal/core"
	"smash/internal/obs"
	"smash/internal/stream"
	"smash/internal/trace"
	"smash/internal/tracker"
	"smash/internal/wire"
)

// promBody renders a registry's Prometheus exposition for substring
// asserts.
func promBody(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// spanByPhase finds one span in a window trace by phase name.
func spanByPhase(wt *obs.WindowTrace, phase string) *obs.Span {
	if wt == nil {
		return nil
	}
	for i := range wt.Spans {
		if wt.Spans[i].Phase == phase {
			return &wt.Spans[i]
		}
	}
	return nil
}

// The provenance round trip: a real forwarder stamps its hop onto the
// wire, the aggregator stamps the receive side, and the hop surfaces as a
// stitched trace span, a skew estimate, a transit-histogram sample and a
// topology child — with none of it disturbing the merged output.
func TestHopProvenanceEndToEnd(t *testing.T) {
	window := 24 * time.Hour
	tr := obs.NewTracer(8)
	reg := obs.NewRegistry()
	agg, results := startedAggregator(t, AggregatorConfig{
		Window: window, Expect: 1,
		Detector: []core.Option{core.WithSeed(1)},
		Metrics:  reg, Tracer: tr,
	})
	got := drainResults(results)
	ts := httptest.NewServer(ingestHandler(t, agg))
	defer ts.Close()

	fwd, err := NewForwarder(ForwarderConfig{URL: ts.URL, Node: "n0", Stride: window})
	if err != nil {
		t.Fatal(err)
	}
	idx := trace.NewIndex()
	r := trace.Request{
		Time: Epoch.Add(time.Hour), Client: "c0",
		Host: "h.test", ServerIP: "10.0.0.1", Path: "/", Status: 200,
	}
	idx.Add(&r)
	if err := fwd.Consume(&stream.WindowResult{
		Start: Epoch, End: Epoch.Add(window), Requests: 1, Index: idx,
	}); err != nil {
		t.Fatal(err)
	}
	if err := fwd.Close(); err != nil {
		t.Fatal(err)
	}
	res := got()
	if err := agg.Err(); err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Requests != 1 {
		t.Fatalf("windows = %+v, want one with the forwarded request", res)
	}

	ns := agg.NodeStats()
	if len(ns) != 1 || ns[0].Role != "ingest" {
		t.Fatalf("node stats = %+v, want n0 with role ingest", ns)
	}
	if ns[0].ClockSkewSeconds == nil {
		t.Error("no skew estimate after a stamped hop")
	} else if s := *ns[0].ClockSkewSeconds; s < 0 || s > 5 {
		t.Errorf("loopback skew estimate = %vs, want small and non-negative", s)
	}
	if ns[0].SkewWarn {
		t.Error("loopback transit tripped the skew warning")
	}

	top := agg.Topology()
	if len(top) != 1 || top[0].Node != "n0" || top[0].Role != "ingest" || !top[0].Finished {
		t.Errorf("topology = %+v, want finished ingest child n0", top)
	}

	span := spanByPhase(tr.Trace(0), "hop:n0")
	if span == nil {
		t.Fatalf("window 0 trace has no hop span: %+v", tr.Trace(0))
	}
	if span.Attrs["from"] != "n0" || span.Attrs["role"] != "ingest" {
		t.Errorf("hop span attrs = %v", span.Attrs)
	}
	if span.Attrs["replay"] != "" {
		t.Error("live hop span marked as replay")
	}

	body := promBody(t, reg)
	for _, want := range []string{
		"smash_hop_transit_seconds_count 1",
		"smash_e2e_event_to_seal_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// DisableHops must strip provenance from the wire: the aggregator then
// sees plain fragments, estimates no skew and records no hop spans — the
// bench A/B knob and the escape hatch for byte-austere links.
func TestForwarderDisableHops(t *testing.T) {
	window := 24 * time.Hour
	tr := obs.NewTracer(8)
	agg, results := startedAggregator(t, AggregatorConfig{
		Window: window, Expect: 1, Tracer: tr,
		Detector: []core.Option{core.WithSeed(1)},
	})
	got := drainResults(results)
	ts := httptest.NewServer(ingestHandler(t, agg))
	defer ts.Close()

	fwd, err := NewForwarder(ForwarderConfig{URL: ts.URL, Node: "n0", Stride: window, DisableHops: true})
	if err != nil {
		t.Fatal(err)
	}
	idx := trace.NewIndex()
	r := trace.Request{
		Time: Epoch.Add(time.Hour), Client: "c0",
		Host: "h.test", ServerIP: "10.0.0.1", Path: "/", Status: 200,
	}
	idx.Add(&r)
	if err := fwd.Consume(&stream.WindowResult{
		Start: Epoch, End: Epoch.Add(window), Requests: 1, Index: idx,
	}); err != nil {
		t.Fatal(err)
	}
	if err := fwd.Close(); err != nil {
		t.Fatal(err)
	}
	got()
	if err := agg.Err(); err != nil {
		t.Fatal(err)
	}
	ns := agg.NodeStats()
	if len(ns) != 1 || ns[0].Role != "" || ns[0].ClockSkewSeconds != nil {
		t.Errorf("node stats with hops disabled = %+v, want no hop-derived state", ns)
	}
	if span := spanByPhase(tr.Trace(0), "hop:n0"); span != nil {
		t.Errorf("hop span recorded with hops disabled: %+v", span)
	}
}

// A merge tier must pass its children's hop trails through: the fragment
// it forwards carries the child's stamped hop (receive side filled in by
// the merger) plus the merger's own freshly stamped hop, so the root can
// stitch the full path.
func TestMergerForwardsChildHops(t *testing.T) {
	window := 24 * time.Hour
	var mu sync.Mutex
	var forwarded []*wire.Fragment
	parent := httptest.NewServer(ingestHandler(t, submitFunc(func(f *wire.Fragment) error {
		mu.Lock()
		forwarded = append(forwarded, f)
		mu.Unlock()
		return nil
	})))
	defer parent.Close()

	m, err := NewMerger(MergerConfig{
		Window: window, Expect: 1,
		Forward: ForwarderConfig{URL: parent.URL, Node: "m0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := m.Start(context.Background())

	frag := fragFor("a", 0, "cA")
	frag.Hops = []wire.Hop{{Node: "a", Role: "ingest", Send: time.Now().UTC().Add(-time.Second), Attempts: 1}}
	if err := m.Submit(frag); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(&wire.Fragment{Node: "a", Final: true, Window: 0}); err != nil {
		t.Fatal(err)
	}
	<-done
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	if err := m.CloseUpstream(context.Background()); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	var window0 *wire.Fragment
	for _, f := range forwarded {
		if !f.Final {
			window0 = f
		}
	}
	if window0 == nil {
		t.Fatalf("no window fragment reached the parent: %+v", forwarded)
	}
	if len(window0.Hops) != 2 {
		t.Fatalf("forwarded hops = %+v, want the child's plus the merger's", window0.Hops)
	}
	child, own := window0.Hops[0], window0.Hops[1]
	if child.Node != "a" || child.Role != "ingest" {
		t.Errorf("child hop = %+v", child)
	}
	if child.Recv.IsZero() {
		t.Error("merger did not stamp the child hop's receive time")
	}
	if own.Node != "m0" || own.Role != "merge" || own.Send.IsZero() || !own.Recv.IsZero() {
		t.Errorf("merger's own hop = %+v, want m0/merge with only a send stamp", own)
	}
	// The merger's subtree view mirrors the trail it relays.
	if top := m.Topology(); len(top) != 1 || top[0].Node != "a" || top[0].Role != "ingest" {
		t.Errorf("merger topology = %+v", top)
	}
}

// submitFunc adapts a function to the submitter interface used by
// ingestHandler.
type submitFunc func(*wire.Fragment) error

func (f submitFunc) Submit(frag *wire.Fragment) error { return f(frag) }

// Crash recovery must not corrupt the latency plane: a restarted
// aggregator's replayed fragments keep their original transit stamps, the
// stitched spans they produce are marked replay="true", and the
// end-to-end histogram skips replayed windows instead of double-counting
// a seal the dead process already measured.
func TestTracerAcrossCrashRecovery(t *testing.T) {
	window := 24 * time.Hour
	det := []core.Option{core.WithSeed(1)}
	dir := t.TempDir()
	tk := tracker.New()

	stamped := func(node string, w int64) *wire.Fragment {
		f := fragFor(node, w, "c-"+node)
		f.Hops = []wire.Hop{{Node: node, Role: "ingest", Send: time.Now().UTC().Add(-time.Second), Attempts: 1}}
		return f
	}

	reg1, tr1 := obs.NewRegistry(), obs.NewTracer(8)
	agg1, err := NewAggregator(AggregatorConfig{
		Name: "tcr", Window: window, Expect: 2, Detector: det,
		Tracker: tk, FragDir: dir, AppliedWindows: 0,
		Metrics: reg1, Tracer: tr1,
	})
	if err != nil {
		t.Fatal(err)
	}
	got1 := drainResults(agg1.Start(context.Background()))
	for _, n := range []string{"a", "b"} {
		if err := agg1.Submit(stamped(n, 0)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "window 0 to seal", func() bool { return agg1.Stats().Windows >= 1 })
	// Node a's window-1 fragment is acked (durable, hop stamps included)
	// but the process dies before the window seals.
	if err := agg1.Submit(stamped("a", 1)); err != nil {
		t.Fatal(err)
	}
	agg1.Abandon()
	if res1 := got1(); len(res1) != 1 {
		t.Fatalf("pre-crash run emitted %d windows, want 1", len(res1))
	}
	if !strings.Contains(promBody(t, reg1), "smash_e2e_event_to_seal_seconds_count 1") {
		t.Error("pre-crash run did not observe its live window's e2e latency")
	}

	reg2, tr2 := obs.NewRegistry(), obs.NewTracer(8)
	agg2, err := NewAggregator(AggregatorConfig{
		Name: "tcr", Window: window, Expect: 2, Detector: det,
		Tracker: tk, FragDir: dir, AppliedWindows: 1,
		Metrics: reg2, Tracer: tr2,
	})
	if err != nil {
		t.Fatal(err)
	}
	got2 := drainResults(agg2.Start(context.Background()))
	// b's window-1 fragment arrives live after the restart.
	if err := agg2.Submit(stamped("b", 1)); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"a", "b"} {
		if err := agg2.Submit(&wire.Fragment{Node: n, Final: true, Window: 1}); err != nil {
			t.Fatal(err)
		}
	}
	res2 := got2()
	if err := agg2.Err(); err != nil {
		t.Fatal(err)
	}
	if len(res2) != 1 || res2[0].Seq != 1 {
		t.Fatalf("post-crash run emitted %+v, want window seq 1", res2)
	}

	// Window 1's trace stitches both fragments' hops, marking only the
	// replayed one.
	wt := tr2.Trace(1)
	replayedSpan := spanByPhase(wt, "hop:a")
	liveSpan := spanByPhase(wt, "hop:b")
	if replayedSpan == nil || liveSpan == nil {
		t.Fatalf("window 1 trace missing hop spans: %+v", wt)
	}
	if replayedSpan.Attrs["replay"] != "true" {
		t.Errorf("replayed hop span not marked: %v", replayedSpan.Attrs)
	}
	if liveSpan.Attrs["replay"] != "" {
		t.Errorf("live hop span marked as replay: %v", liveSpan.Attrs)
	}
	// The replayed hop's stamps are the original transit times (durable in
	// the fragment log), not the replay wall-clock.
	if d := replayedSpan.DurationSeconds; d < 0.9 {
		t.Errorf("replayed hop transit = %vs, want the original ~1s stamp", d)
	}

	body := promBody(t, reg2)
	if !strings.Contains(body, "smash_e2e_event_to_seal_seconds_count 0") {
		t.Errorf("replayed window leaked into the e2e histogram:\n%s", body)
	}
	// Per-hop transit is still real latency, replayed or not: both hops
	// are observed.
	if !strings.Contains(body, "smash_hop_transit_seconds_count 2") {
		t.Errorf("hop transit histogram miscounted:\n%s", body)
	}
}
