package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"smash/internal/store"
	"smash/internal/wire"
)

// FragLog is the aggregation tier's crash-recovery layer: an append-only,
// per-window log of every fragment the process has acknowledged, plus a
// frontier record of how far sealing has progressed. Layout, in one
// directory:
//
//	w<id>.frag     one file per pending window: accepted data fragments
//	               as length-prefixed wire frames (wire.AppendFrame),
//	               deleted once the window's seal has committed
//	final.frag     final markers, same framing, kept until Clean
//	frontier.json  {"nextSeal": N, "emitted": M}, rewritten atomically
//	               (store.WriteFileAtomic) at every seal
//
// The discipline mirrors internal/store's WAL: each append is one write
// syscall of a framed fragment (flushed, fsynced under Sync), torn tails
// are truncated at open, and replay is idempotent because the consumer —
// the aggregator's (node, window) dedupe and late-drop filters — already
// tolerates redelivery. Append is called from Submit before the fragment
// enters the inbox, so a 202 to a forwarder means the fragment survives
// kill -9 from that moment on.
type FragLog struct {
	dir  string
	sync bool

	mu     sync.Mutex
	files  map[int64]*os.File // open append handles, keyed by window id
	sizes  map[int64]int64    // on-disk bytes per window file
	finalF *os.File
	closed bool

	// replay inventory, captured (and torn-tail-healed) at open: live
	// appends land past these limits and reach the consumer through the
	// inbox instead.
	replayWindows []int64
	replayLimits  map[int64]int64
	finalLimit    int64

	frontier    Frontier
	hasFrontier bool

	ctrAppends  atomic.Int64
	ctrReplayed atomic.Int64
	ctrBytes    atomic.Int64
}

// Frontier records seal progress: the next window id to seal and the
// number of windows emitted so far. It is written before a window's
// effects reach the sinks, so after a crash it may run at most one window
// ahead of the durable sink — the reconcile rule assemblers apply at open.
type Frontier struct {
	NextSeal int64 `json:"nextSeal"`
	Emitted  int   `json:"emitted"`
}

const (
	fragSuffix   = ".frag"
	finalName    = "final" + fragSuffix
	frontierName = "frontier.json"
)

func fragFileName(w int64) string { return "w" + strconv.FormatInt(w, 10) + fragSuffix }

// OpenFragLog opens (creating if needed) the fragment log in dir, heals
// torn tails left by a crash and takes the replay inventory. With sync,
// every append is fsynced — the WAL durability class.
func OpenFragLog(dir string, sync bool) (*FragLog, error) {
	if dir == "" {
		return nil, fmt.Errorf("cluster: fragment log dir is required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: fraglog: %w", err)
	}
	l := &FragLog{
		dir:          dir,
		sync:         sync,
		files:        make(map[int64]*os.File),
		sizes:        make(map[int64]int64),
		replayLimits: make(map[int64]int64),
	}
	if data, err := os.ReadFile(filepath.Join(dir, frontierName)); err == nil {
		if jerr := json.Unmarshal(data, &l.frontier); jerr != nil {
			return nil, fmt.Errorf("cluster: fraglog: frontier: %w", jerr)
		}
		l.hasFrontier = true
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("cluster: fraglog: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cluster: fraglog: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, fragSuffix) {
			continue
		}
		path := filepath.Join(dir, name)
		good, err := healTornTail(path)
		if err != nil {
			return nil, fmt.Errorf("cluster: fraglog: %s: %w", name, err)
		}
		if name == finalName {
			l.finalLimit = good
			continue
		}
		w, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "w"), fragSuffix), 10, 64)
		if err != nil || !strings.HasPrefix(name, "w") {
			continue // not ours; leave it alone
		}
		l.replayWindows = append(l.replayWindows, w)
		l.replayLimits[w] = good
		l.sizes[w] = good
		l.ctrBytes.Add(good)
	}
	sort.Slice(l.replayWindows, func(i, j int) bool { return l.replayWindows[i] < l.replayWindows[j] })
	l.ctrBytes.Add(l.finalLimit)
	return l, nil
}

// healTornTail scans path's frames and truncates whatever trails the last
// intact one — a partial write from the previous process's death. Returns
// the healed size.
func healTornTail(path string) (int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	good, err := wire.ReadFrames(f, nil)
	if err != nil && !errors.Is(err, wire.ErrCorrupt) {
		// A garbage length is a torn header wearing random bytes: truncate
		// it like any other torn tail. Anything else is a real I/O error.
		return 0, err
	}
	info, serr := f.Stat()
	if serr != nil {
		return 0, serr
	}
	if good < info.Size() {
		if terr := f.Truncate(good); terr != nil {
			return 0, terr
		}
	}
	return good, nil
}

// Frontier returns the seal frontier restored at open, if one was found.
func (l *FragLog) Frontier() (Frontier, bool) { return l.frontier, l.hasFrontier }

// Append logs one fragment — data fragments to their window's file, final
// markers to final.frag — before the caller acknowledges it. Safe for
// concurrent use (Submit runs on HTTP handler goroutines).
func (l *FragLog) Append(frag *wire.Fragment) error {
	frame := wire.AppendFrame(nil, wire.EncodeFragment(frag))
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("cluster: fraglog closed")
	}
	if !frag.Final && l.hasFrontier && frag.Window < l.frontier.NextSeal {
		// The window already sealed, so the live path will drop this
		// fragment as late; logging it would resurrect the window's
		// removed file and change a redo's merged set.
		return nil
	}
	var (
		f   *os.File
		err error
	)
	if frag.Final {
		if l.finalF == nil {
			l.finalF, err = os.OpenFile(filepath.Join(l.dir, finalName),
				os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		}
		f = l.finalF
	} else {
		f = l.files[frag.Window]
		if f == nil {
			f, err = os.OpenFile(filepath.Join(l.dir, fragFileName(frag.Window)),
				os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
			if err == nil {
				l.files[frag.Window] = f
			}
		}
	}
	if err != nil {
		return fmt.Errorf("cluster: fraglog: %w", err)
	}
	if _, err := f.Write(frame); err != nil {
		return fmt.Errorf("cluster: fraglog append: %w", err)
	}
	if l.sync {
		if err := f.Sync(); err != nil {
			return fmt.Errorf("cluster: fraglog sync: %w", err)
		}
	}
	if !frag.Final {
		l.sizes[frag.Window] += int64(len(frame))
	}
	l.ctrAppends.Add(1)
	l.ctrBytes.Add(int64(len(frame)))
	return nil
}

// Replay decodes every fragment captured at open — pending windows in
// ascending window order, then the final markers, matching live arrival
// order — and hands each to fn. Content appended after open is excluded
// (it reaches the consumer through the live path).
func (l *FragLog) Replay(fn func(*wire.Fragment) error) error {
	decode := func(payload []byte) error {
		frag, err := wire.DecodeFragment(payload)
		if err != nil {
			return err
		}
		l.ctrReplayed.Add(1)
		return fn(frag)
	}
	for _, w := range l.replayWindows {
		if err := l.replayFile(filepath.Join(l.dir, fragFileName(w)), l.replayLimits[w], decode); err != nil {
			return fmt.Errorf("cluster: fraglog replay w%d: %w", w, err)
		}
	}
	if l.finalLimit > 0 {
		if err := l.replayFile(filepath.Join(l.dir, finalName), l.finalLimit, decode); err != nil {
			return fmt.Errorf("cluster: fraglog replay finals: %w", err)
		}
	}
	return nil
}

func (l *FragLog) replayFile(path string, limit int64, fn func([]byte) error) error {
	if limit == 0 {
		return nil
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // removed by RemoveBelow between open and replay
		}
		return err
	}
	defer f.Close()
	_, err = wire.ReadFrames(io.LimitReader(f, limit), fn)
	return err
}

// Commit durably records the seal frontier: window nextSeal-1 is being
// (or has been) sealed as emission number emitted-1. Written atomically
// and always fsynced — the frontier is the recovery protocol's anchor and
// is one small file per window, so the fsync is cheap relative to a seal.
func (l *FragLog) Commit(nextSeal int64, emitted int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("cluster: fraglog closed")
	}
	l.frontier = Frontier{NextSeal: nextSeal, Emitted: emitted}
	l.hasFrontier = true
	data, err := json.Marshal(&l.frontier)
	if err != nil {
		return err
	}
	if err := store.WriteFileAtomic(filepath.Join(l.dir, frontierName), data, true); err != nil {
		return fmt.Errorf("cluster: fraglog frontier: %w", err)
	}
	if err := store.SyncDir(l.dir); err != nil {
		return fmt.Errorf("cluster: fraglog frontier: %w", err)
	}
	return nil
}

// Remove garbage-collects window w's file after its seal has committed.
func (l *FragLog) Remove(w int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if f := l.files[w]; f != nil {
		f.Close()
		delete(l.files, w)
	}
	os.Remove(filepath.Join(l.dir, fragFileName(w)))
	l.ctrBytes.Add(-l.sizes[w])
	delete(l.sizes, w)
	delete(l.replayLimits, w)
}

// RemoveBelow deletes files for windows sealed before the frontier —
// stale leftovers of a crash that landed between a seal's sink commit and
// its Remove. Call before Replay.
func (l *FragLog) RemoveBelow(nextSeal int64) {
	kept := l.replayWindows[:0]
	for _, w := range l.replayWindows {
		if w < nextSeal {
			l.Remove(w)
			continue
		}
		kept = append(kept, w)
	}
	l.replayWindows = kept
}

// Clean removes every log artifact — a run that completed cleanly leaves
// an empty directory, so the next run starts fresh.
func (l *FragLog) Clean() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closeLocked()
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	var firstErr error
	for _, e := range entries {
		name := e.Name()
		if name == frontierName || strings.HasSuffix(name, fragSuffix) || strings.HasSuffix(name, ".tmp") {
			if err := os.Remove(filepath.Join(l.dir, name)); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	l.ctrBytes.Store(0)
	return firstErr
}

// Close drops every open file handle without flushing pending state —
// alongside Aggregator.Abandon it is the kill -9 simulator; the on-disk
// bytes stay exactly as the last append left them.
func (l *FragLog) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closeLocked()
}

func (l *FragLog) closeLocked() {
	for w, f := range l.files {
		f.Close()
		delete(l.files, w)
	}
	if l.finalF != nil {
		l.finalF.Close()
		l.finalF = nil
	}
	l.closed = true
}

// FragLogStats is a live snapshot of the log's counters.
type FragLogStats struct {
	// Appends counts fragments logged this run; Replayed counts fragments
	// restored from the previous process's log at startup.
	Appends  int64 `json:"appends"`
	Replayed int64 `json:"replayed"`
	// Bytes is the current on-disk size of the log.
	Bytes int64 `json:"bytes"`
}

// Stats returns a live snapshot of the log's counters.
func (l *FragLog) Stats() FragLogStats {
	return FragLogStats{
		Appends:  l.ctrAppends.Load(),
		Replayed: l.ctrReplayed.Load(),
		Bytes:    l.ctrBytes.Load(),
	}
}
