package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smash/internal/core"
	"smash/internal/stream"
	"smash/internal/synth"
	"smash/internal/trace"
	"smash/internal/tracker"
	"smash/internal/wire"
)

// submitter is the ingest-side surface shared by Aggregator and Merger.
type submitter interface {
	Submit(*wire.Fragment) error
}

// ingestHandler is the minimal HTTP face of an aggregator (or merger)
// for tests — internal/serve wires the production /v1/ingest the same
// way.
func ingestHandler(t *testing.T, agg submitter) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Errorf("ingest read: %v", err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		frag, err := wire.DecodeFragment(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := agg.Submit(frag); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	})
}

// sortedWorld synthesizes a malicious world and returns its requests in
// arrival (timestamp) order as one continuous stream.
func sortedWorld(t *testing.T, days int) []trace.Request {
	t.Helper()
	world, err := synth.Generate(synth.Config{
		Name: "cluster-test", Seed: 7, Days: days,
		Clients: 220, BenignServers: 500, MeanRequests: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var all []trace.Request
	for _, day := range world.Days {
		all = append(all, day.Requests...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Time.Before(all[j].Time) })
	return all
}

// runIngestNode streams one partition through an IndexOnly engine into a
// forwarder pointed at url, then delivers the final marker.
func runIngestNode(t *testing.T, url, node string, shard, of int, reqs []trace.Request, window time.Duration) {
	t.Helper()
	fwd, err := NewForwarder(ForwarderConfig{URL: url, Node: node, Stride: window})
	if err != nil {
		t.Error(err)
		return
	}
	eng, err := stream.New(stream.Config{
		Window:    window,
		Origin:    Epoch,
		IndexOnly: true,
		Sinks:     []stream.Sink{fwd},
	})
	if err != nil {
		t.Error(err)
		return
	}
	src := &ShardSource{Src: &stream.SliceSource{Requests: reqs}, Shard: shard, Of: of}
	for range eng.Start(src) {
	}
	if err := eng.Err(); err != nil {
		t.Errorf("node %s: %v", node, err)
	}
	if err := fwd.Close(); err != nil {
		t.Errorf("node %s final marker: %v", node, err)
	}
}

// The tentpole guarantee: a 2-ingest-node + aggregator run over a
// client-hash-partitioned trace produces window fingerprints, reports,
// deltas and the final lineage summary identical to a standalone
// single-node run over the same trace.
func TestClusterMatchesStandalone(t *testing.T) {
	const nodes = 2
	window := 24 * time.Hour
	reqs := sortedWorld(t, 3)
	det := []core.Option{core.WithSeed(1)}

	// Standalone reference run, keeping window indexes for fingerprints.
	std, err := stream.New(stream.Config{
		Name: "eq", Window: window, Origin: Epoch,
		KeepIndex: true, Detector: det,
	})
	if err != nil {
		t.Fatal(err)
	}
	var want []stream.WindowResult
	for w := range std.Start(&stream.SliceSource{Requests: reqs}) {
		want = append(want, w)
	}
	if err := std.Err(); err != nil {
		t.Fatal(err)
	}
	if len(want) < 3 {
		t.Fatalf("reference run produced %d windows", len(want))
	}

	// Cluster run: aggregator behind HTTP, two ingest nodes.
	agg, err := NewAggregator(AggregatorConfig{
		Name: "eq", Window: window, Expect: nodes, Detector: det,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(ingestHandler(t, agg))
	defer ts.Close()

	results := agg.Start(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runIngestNode(t, ts.URL, fmt.Sprintf("ingest-%d", i), i, nodes, reqs, window)
		}(i)
	}
	var got []stream.WindowResult
	for w := range results {
		got = append(got, w)
	}
	wg.Wait()
	if err := agg.Err(); err != nil {
		t.Fatal(err)
	}

	if len(got) != len(want) {
		t.Fatalf("cluster windows = %d, standalone = %d", len(got), len(want))
	}
	for i := range want {
		w, g := &want[i], &got[i]
		if g.Seq != w.Seq || !g.Start.Equal(w.Start) || !g.End.Equal(w.End) || g.Requests != w.Requests {
			t.Fatalf("window %d frame diverged: got seq=%d [%s %s) req=%d", i, g.Seq, g.Start, g.End, g.Requests)
		}
		if g.Index.Fingerprint() != w.Index.Fingerprint() {
			t.Errorf("window %d index fingerprint diverged", i)
		}
		wantJSON, _ := json.Marshal(w.Report)
		gotJSON, _ := json.Marshal(g.Report)
		if string(gotJSON) != string(wantJSON) {
			t.Errorf("window %d report diverged:\ngot:  %s\nwant: %s", i, gotJSON, wantJSON)
		}
		dWant, _ := json.Marshal(w.Deltas)
		dGot, _ := json.Marshal(g.Deltas)
		if string(dGot) != string(dWant) {
			t.Errorf("window %d deltas diverged:\ngot:  %s\nwant: %s", i, dGot, dWant)
		}
	}
	if got, want := agg.Tracker().Summary(), std.Tracker().Summary(); got != want {
		t.Errorf("lineage summary diverged:\ngot:\n%s\nwant:\n%s", got, want)
	}

	st := agg.Stats()
	if st.Nodes != nodes || st.FinishedNodes != nodes {
		t.Errorf("node accounting: %+v", st)
	}
	if st.LateFragments != 0 || st.DuplicateFragments != 0 {
		t.Errorf("unexpected drops: %+v", st)
	}
	ns := agg.NodeStats()
	if len(ns) != nodes || ns[0].Node != "ingest-0" || !ns[0].Finished {
		t.Errorf("node stats: %+v", ns)
	}
}

// fragFor builds a one-request fragment for direct Submit tests.
func fragFor(node string, window int64, client string) *wire.Fragment {
	idx := trace.NewIndex()
	r := trace.Request{
		Time:   WindowStart(window, 24*time.Hour).Add(time.Hour),
		Client: client, Host: "srv.example.com", ServerIP: "10.0.0.1",
		Path: "/f", Status: 200,
	}
	idx.Add(&r)
	start := WindowStart(window, 24*time.Hour)
	return &wire.Fragment{
		Node: node, Window: window,
		Start: start, End: start.Add(24 * time.Hour),
		Index: idx,
	}
}

func startedAggregator(t *testing.T, cfg AggregatorConfig) (*Aggregator, <-chan stream.WindowResult) {
	t.Helper()
	agg, err := NewAggregator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return agg, agg.Start(context.Background())
}

// The straggler watermark: a lagging node's windows seal without it once
// the lead runs Straggler windows ahead, and its late fragments are
// counted and dropped.
func TestStragglerWatermark(t *testing.T) {
	agg, results := startedAggregator(t, AggregatorConfig{
		Window: 24 * time.Hour, Expect: 2, Straggler: 2,
	})
	var got []stream.WindowResult
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for w := range results {
			got = append(got, w)
		}
	}()

	// Node A runs ahead; node B never shows up for window 0.
	for w := int64(0); w <= 3; w++ {
		if err := agg.Submit(fragFor("a", w, "cA")); err != nil {
			t.Fatal(err)
		}
	}
	// With maxSeen=3 and Straggler=2, windows 0 and 1 are force-sealed.
	// B's fragment for window 0 is now late: counted, dropped.
	deadline := time.Now().Add(10 * time.Second)
	for agg.Stats().Windows < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if agg.Stats().Windows < 2 {
		t.Fatalf("straggler policy did not force-seal: %+v", agg.Stats())
	}
	if err := agg.Submit(fragFor("b", 0, "cB")); err != nil {
		t.Fatal(err)
	}
	for w := int64(2); w <= 3; w++ {
		if err := agg.Submit(fragFor("b", w, "cB")); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []string{"a", "b"} {
		if err := agg.Submit(&wire.Fragment{Node: n, Final: true, Window: 3}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if err := agg.Err(); err != nil {
		t.Fatal(err)
	}

	if len(got) != 4 {
		t.Fatalf("windows = %d, want 4", len(got))
	}
	st := agg.Stats()
	if st.LateFragments != 1 {
		t.Errorf("late fragments = %d, want 1", st.LateFragments)
	}
	// Window 0 sealed with only A's request; window 2 merged both nodes.
	if got[0].Requests != 1 || got[2].Requests != 2 {
		t.Errorf("requests per window = %d,%d, want 1,2", got[0].Requests, got[2].Requests)
	}
	for _, n := range agg.NodeStats() {
		if n.Node == "b" && n.LateFragments != 1 {
			t.Errorf("node b late = %d, want 1", n.LateFragments)
		}
	}
}

// Redelivered fragments (at-least-once delivery after a lost ack, or a
// node restarting and resending its last window) are deduplicated.
func TestDuplicateFragmentsDropped(t *testing.T) {
	agg, results := startedAggregator(t, AggregatorConfig{
		Window: 24 * time.Hour, Expect: 2,
	})
	for i := 0; i < 3; i++ { // original + two redeliveries
		if err := agg.Submit(fragFor("a", 0, "cA")); err != nil {
			t.Fatal(err)
		}
	}
	if err := agg.Submit(fragFor("b", 0, "cB")); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"a", "b"} {
		if err := agg.Submit(&wire.Fragment{Node: n, Final: true, Window: 0}); err != nil {
			t.Fatal(err)
		}
	}
	var got []stream.WindowResult
	for w := range results {
		got = append(got, w)
	}
	if len(got) != 1 || got[0].Requests != 2 {
		t.Fatalf("windows = %+v, want one window with 2 requests", got)
	}
	if st := agg.Stats(); st.DuplicateFragments != 2 || st.Fragments != 2 {
		t.Errorf("stats = %+v, want 2 duplicates over 2 accepted", st)
	}
}

// An empty partition still participates: its node sends only the final
// marker, and windows seal on the other nodes' data.
func TestEmptyPartitionFinishes(t *testing.T) {
	agg, results := startedAggregator(t, AggregatorConfig{
		Window: 24 * time.Hour, Expect: 2,
	})
	if err := agg.Submit(fragFor("a", 5, "cA")); err != nil {
		t.Fatal(err)
	}
	if err := agg.Submit(&wire.Fragment{Node: "idle", Final: true, Window: -1 << 62}); err != nil {
		t.Fatal(err)
	}
	if err := agg.Submit(&wire.Fragment{Node: "a", Final: true, Window: 5}); err != nil {
		t.Fatal(err)
	}
	var got []stream.WindowResult
	for w := range results {
		got = append(got, w)
	}
	if len(got) != 1 || got[0].Requests != 1 {
		t.Fatalf("windows = %+v", got)
	}
}

// Stop flushes pending windows even when expected nodes never connected.
func TestStopFlushes(t *testing.T) {
	agg, results := startedAggregator(t, AggregatorConfig{
		Window: 24 * time.Hour, Expect: 3,
	})
	if err := agg.Submit(fragFor("a", 1, "cA")); err != nil {
		t.Fatal(err)
	}
	if err := agg.Submit(fragFor("a", 2, "cA")); err != nil {
		t.Fatal(err)
	}
	agg.Stop()
	var got []stream.WindowResult
	for w := range results {
		got = append(got, w)
	}
	if len(got) != 2 {
		t.Fatalf("windows after Stop = %d, want 2", len(got))
	}
	if err := agg.Submit(fragFor("a", 3, "cA")); err == nil {
		t.Error("Submit accepted after stop")
	}
}

func TestAggregatorValidation(t *testing.T) {
	if _, err := NewAggregator(AggregatorConfig{Expect: 1}); err == nil {
		t.Error("zero Window accepted")
	}
	if _, err := NewAggregator(AggregatorConfig{Window: time.Hour}); err == nil {
		t.Error("zero Expect accepted")
	}
	if _, err := NewAggregator(AggregatorConfig{Window: time.Hour, Expect: 1, Straggler: -1}); err == nil {
		t.Error("negative Straggler accepted")
	}
}

// The forwarder retries transient failures with backoff and gives up
// after MaxAttempts; 4xx fails immediately.
func TestForwarderRetry(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	}))
	defer ts.Close()

	fwd, err := NewForwarder(ForwarderConfig{
		URL: ts.URL, Node: "n0", Stride: time.Hour,
		MaxAttempts: 5, Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := &stream.WindowResult{Start: Epoch.Add(3 * time.Hour), End: Epoch.Add(4 * time.Hour), Index: trace.NewIndex()}
	if err := fwd.Consume(w); err != nil {
		t.Fatalf("consume with retries: %v", err)
	}
	st := fwd.Stats()
	if st.Forwarded != 1 || st.Retries != 2 || st.LastWindow != 3 {
		t.Errorf("stats = %+v", st)
	}

	// Permanent 5xx exhausts the attempt budget.
	calls.Store(-1000)
	if err := fwd.Consume(w); err == nil || !strings.Contains(err.Error(), "after 5 attempts") {
		t.Errorf("permanent failure error = %v", err)
	}

	// 4xx fails fast, without retries.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	}))
	defer bad.Close()
	fwd2, err := NewForwarder(ForwarderConfig{URL: bad.URL, Node: "n0", Stride: time.Hour, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := fwd2.Consume(w); err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Errorf("4xx error = %v", err)
	}
	if fwd2.Stats().Retries != 0 {
		t.Error("4xx was retried")
	}

	// An index-less window is a configuration error.
	if err := fwd2.Consume(&stream.WindowResult{}); err == nil {
		t.Error("index-less window accepted")
	}
}

func TestForwarderValidation(t *testing.T) {
	if _, err := NewForwarder(ForwarderConfig{Node: "n", Stride: time.Hour}); err == nil {
		t.Error("empty URL accepted")
	}
	if _, err := NewForwarder(ForwarderConfig{URL: "::bogus::", Node: "n", Stride: time.Hour}); err == nil {
		t.Error("bogus URL accepted")
	}
	if _, err := NewForwarder(ForwarderConfig{URL: "http://x", Stride: time.Hour}); err == nil {
		t.Error("empty node accepted")
	}
	if _, err := NewForwarder(ForwarderConfig{URL: "http://x", Node: "n"}); err == nil {
		t.Error("zero stride accepted")
	}
}

// PartitionOf partitions are disjoint, covering, and agree with
// ShardSource filtering.
func TestPartitioning(t *testing.T) {
	reqs := sortedWorld(t, 1)
	const n = 3
	var total int
	seen := make(map[int]int)
	for shard := 0; shard < n; shard++ {
		src := &ShardSource{Src: &stream.SliceSource{Requests: reqs}, Shard: shard, Of: n}
		for {
			r, err := src.Read()
			if err != nil {
				break
			}
			if PartitionOf(r.Client, n) != shard {
				t.Fatalf("shard %d leaked client %q", shard, r.Client)
			}
			seen[shard]++
			total++
		}
	}
	if total != len(reqs) {
		t.Errorf("partitions cover %d of %d requests", total, len(reqs))
	}
	if len(seen) != n {
		t.Errorf("only %d of %d partitions non-empty (weak test world?)", len(seen), n)
	}
}

// WindowID/WindowStart are inverses and floor correctly around the epoch.
func TestWindowIDMath(t *testing.T) {
	stride := 6 * time.Hour
	for _, tc := range []struct {
		t    time.Time
		want int64
	}{
		{Epoch, 0},
		{Epoch.Add(5 * time.Hour), 0},
		{Epoch.Add(6 * time.Hour), 1},
		{Epoch.Add(-time.Hour), -1},
		{time.Date(2011, 10, 1, 3, 0, 0, 0, time.UTC), 1317427200 / (6 * 3600)},
	} {
		if got := WindowID(tc.t, stride); got != tc.want {
			t.Errorf("WindowID(%s) = %d, want %d", tc.t, got, tc.want)
		}
	}
	for _, id := range []int64{-3, 0, 7, 61002} {
		if got := WindowID(WindowStart(id, stride), stride); got != id {
			t.Errorf("WindowID(WindowStart(%d)) = %d", id, got)
		}
	}
}

// A tracker with retirement policy threads through the aggregator
// config, mirroring stream.Config.Tracker.
func TestAggregatorCustomTracker(t *testing.T) {
	tk := tracker.New()
	tk.RetireAfter = 7
	agg, err := NewAggregator(AggregatorConfig{Window: time.Hour, Expect: 1, Tracker: tk})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Tracker() != tk {
		t.Error("tracker override ignored")
	}
}

// NodeStats must list nodes in name order no matter the order their
// fragments arrived — stats responses and per-node metric series stay
// deterministic across runs.
func TestNodeStatsOrdered(t *testing.T) {
	agg, results := startedAggregator(t, AggregatorConfig{
		Window: 24 * time.Hour, Expect: 3,
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range results {
		}
	}()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := agg.Submit(fragFor(n, 0, "c-"+n)); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := agg.Submit(&wire.Fragment{Node: n, Final: true, Window: 0}); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if err := agg.Err(); err != nil {
		t.Fatal(err)
	}
	ns := agg.NodeStats()
	if len(ns) != 3 || ns[0].Node != "alpha" || ns[1].Node != "mid" || ns[2].Node != "zeta" {
		t.Errorf("node stats out of order: %+v", ns)
	}
}
