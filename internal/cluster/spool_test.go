package cluster

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smash/internal/obs"
	"smash/internal/stream"
	"smash/internal/trace"
	"smash/internal/wire"
)

// recordingAggregator is an /v1/ingest endpoint whose availability the
// test flips, recording delivery order.
type recordingAggregator struct {
	refuse atomic.Bool

	mu      sync.Mutex
	windows []int64
	finals  int
}

func (a *recordingAggregator) handler(t *testing.T) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if a.refuse.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Errorf("ingest read: %v", err)
			return
		}
		frag, err := wire.DecodeFragment(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		a.mu.Lock()
		if frag.Final {
			a.finals++
		} else {
			a.windows = append(a.windows, frag.Window)
		}
		a.mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
	})
}

func (a *recordingAggregator) delivered() ([]int64, int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]int64(nil), a.windows...), a.finals
}

func spoolWindow(i int64) *stream.WindowResult {
	start := Epoch.Add(time.Duration(i) * time.Hour)
	idx := trace.NewIndex()
	r := trace.Request{
		Time: start.Add(time.Minute), Client: "c", Host: "h.example.com",
		ServerIP: "10.0.0.1", Path: "/", Status: 200,
	}
	idx.Add(&r)
	return &stream.WindowResult{
		Seq: int(i), Start: start, End: start.Add(time.Hour), Index: idx,
	}
}

// The durable-forwarder contract: fragments that exhaust their delivery
// attempts during an outage spill to the spool instead of erroring, a
// restarted forwarder picks the spool up, and everything drains in the
// original window order once the aggregator answers again.
func TestForwarderSpoolOutageAndRestart(t *testing.T) {
	var agg recordingAggregator
	srv := httptest.NewServer(agg.handler(t))
	defer srv.Close()

	dir := t.TempDir()
	newFwd := func() *Forwarder {
		f, err := NewForwarder(ForwarderConfig{
			URL: srv.URL, Node: "n0", Stride: time.Hour,
			MaxAttempts: 2, Backoff: time.Millisecond, SpoolDir: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	f1 := newFwd()
	if err := f1.Consume(spoolWindow(0)); err != nil {
		t.Fatal(err)
	}
	agg.refuse.Store(true)
	// The outage: both fragments exhaust retries and spill, no error.
	if err := f1.Consume(spoolWindow(1)); err != nil {
		t.Fatalf("outage consume should spool, got %v", err)
	}
	if err := f1.Consume(spoolWindow(2)); err != nil {
		t.Fatalf("outage consume should spool, got %v", err)
	}
	st := f1.Stats()
	if st.Spooled != 2 || st.SpoolPending != 2 || st.SpoolBytes == 0 {
		t.Fatalf("spool stats after outage: %+v", st)
	}
	// f1 is abandoned here: the node process "crashed" with a full spool.

	// A restarted forwarder on the same spool dir sees the backlog...
	f2 := newFwd()
	if got := f2.Stats().SpoolPending; got != 2 {
		t.Fatalf("restarted forwarder sees %d pending, want 2", got)
	}
	// ...and with the aggregator back, a new window queues behind the
	// backlog and the whole spool drains oldest-first.
	agg.refuse.Store(false)
	if err := f2.Consume(spoolWindow(3)); err != nil {
		t.Fatal(err)
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}

	windows, finals := agg.delivered()
	want := []int64{0, 1, 2, 3}
	if len(windows) != len(want) {
		t.Fatalf("delivered windows = %v, want %v", windows, want)
	}
	for i := range want {
		if windows[i] != want[i] {
			t.Fatalf("delivered windows = %v, want %v (order matters)", windows, want)
		}
	}
	if finals != 1 {
		t.Errorf("finals delivered = %d, want 1", finals)
	}
	if st := f2.Stats(); st.SpoolPending != 0 || st.SpoolBytes != 0 {
		t.Errorf("spool not drained: %+v", st)
	}
}

// A 4xx is a permanent rejection: never spooled, surfaced as an error.
func TestForwarderRejectionNotSpooled(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad fragment", http.StatusBadRequest)
	}))
	defer srv.Close()

	f, err := NewForwarder(ForwarderConfig{
		URL: srv.URL, Node: "n0", Stride: time.Hour,
		MaxAttempts: 3, Backoff: time.Millisecond, SpoolDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Consume(spoolWindow(0)); err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("rejection error = %v", err)
	}
	if st := f.Stats(); st.Spooled != 0 || st.SpoolPending != 0 || st.Retries != 0 {
		t.Errorf("rejected fragment touched the spool: %+v", st)
	}
}

// The spool bound: oldest entries are evicted (and counted) to admit new
// ones; drain order among survivors is preserved.
func TestSpoolBound(t *testing.T) {
	bodies := make([][]byte, 4)
	for i := range bodies {
		bodies[i] = wire.EncodeFragment(fragFor("n", int64(i), "c"))
	}
	// Room for roughly two entries.
	max := int64(len(bodies[0])+len(bodies[1])) + 8
	sp, err := openSpool(t.TempDir(), max, obs.Discard())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bodies {
		if err := sp.put(b); err != nil {
			t.Fatal(err)
		}
	}
	_, dropped := sp.counters()
	if dropped == 0 {
		t.Fatal("bound exceeded without evictions")
	}
	var got []int64
	for sp.pending() > 0 {
		seq, body, _, ok := sp.peek()
		if !ok {
			break
		}
		frag, err := wire.DecodeFragment(body)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, frag.Window)
		sp.remove(seq)
	}
	if len(got) == 0 || len(got) >= len(bodies) {
		t.Fatalf("survivors = %v, want a strict non-empty subset", got)
	}
	// Survivors are the newest entries, still in order.
	wantFirst := int64(len(bodies) - len(got))
	for i, w := range got {
		if w != wantFirst+int64(i) {
			t.Fatalf("survivors = %v, want the newest %d in order", got, len(got))
		}
	}
	if sp.pendingBytes() != 0 {
		t.Errorf("pendingBytes = %d after full drain", sp.pendingBytes())
	}
}

// CloseContext keeps retrying the final marker through an outage and
// gives up only when its context ends — satellite semantics for a node
// shutting down while the aggregator is briefly gone.
func TestForwarderCloseContext(t *testing.T) {
	var agg recordingAggregator
	srv := httptest.NewServer(agg.handler(t))
	defer srv.Close()

	dir := t.TempDir()
	f, err := NewForwarder(ForwarderConfig{
		URL: srv.URL, Node: "n0", Stride: time.Hour,
		MaxAttempts: 2, Backoff: time.Millisecond, SpoolDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	agg.refuse.Store(true)
	if err := f.Consume(spoolWindow(0)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := f.CloseContext(ctx); err == nil || !strings.Contains(err.Error(), "abandoned") {
		t.Fatalf("CloseContext during outage = %v, want abandoned error", err)
	}

	// The aggregator returns; a retried shutdown drains spool + final.
	agg.refuse.Store(false)
	f2, err := NewForwarder(ForwarderConfig{
		URL: srv.URL, Node: "n0", Stride: time.Hour,
		MaxAttempts: 2, Backoff: time.Millisecond, SpoolDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.CloseContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	windows, finals := agg.delivered()
	if len(windows) != 1 || windows[0] != 0 || finals != 1 {
		t.Errorf("after recovery: windows=%v finals=%d, want [0] and 1", windows, finals)
	}
}
