package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"smash/internal/obs"
	"smash/internal/trace"
	"smash/internal/wire"
)

// noWindow marks "no window seen yet" in watermark and seal bookkeeping.
const noWindow = int64(math.MinInt64)

// ErrStopped is returned by Submit once the assembler has shut down — a
// transient condition from a sender's point of view (retry elsewhere or
// give up), unlike the permanent validation errors Submit also returns.
var ErrStopped = errors.New("cluster: aggregator stopped")

// ErrUnavailable wraps fragment-log append failures: the fragment was
// valid but could not be made durable, so the sender should retry (or
// spool) rather than drop it. internal/serve maps it to 503.
var ErrUnavailable = errors.New("cluster: fragment log unavailable")

// Stats is a live snapshot of an assembler's counters.
type Stats struct {
	// Nodes is the number of distinct ingest nodes seen so far.
	Nodes int `json:"nodes"`
	// FinishedNodes counts nodes that sent their final marker.
	FinishedNodes int `json:"finishedNodes"`
	// Fragments counts accepted window fragments (excluding final
	// markers, duplicates and late drops).
	Fragments int `json:"fragments"`
	// DuplicateFragments counts redelivered (node, window) fragments
	// dropped for idempotence.
	DuplicateFragments int `json:"duplicateFragments"`
	// LateFragments counts fragments dropped because their window had
	// already sealed (the straggler policy).
	LateFragments int `json:"lateFragments"`
	// Windows counts emitted windows; EmptyWindows those with no events.
	Windows      int `json:"windows"`
	EmptyWindows int `json:"emptyWindows"`
	// Requests sums merged request counts over emitted windows.
	Requests int `json:"requests"`
	// Replayed counts fragments restored from the fragment log at
	// startup — nonzero only on a run that recovered from a crash.
	Replayed int `json:"replayed"`
}

// NodeStat describes one ingest node as seen by the aggregator.
type NodeStat struct {
	// Node is the node's self-reported name.
	Node string `json:"node"`
	// Role is the node's self-reported role from its hop records
	// ("ingest", "merge"); empty until a hop-stamped fragment arrives.
	Role string `json:"role,omitempty"`
	// Fragments and Requests count accepted fragments and their events.
	Fragments int `json:"fragments"`
	Requests  int `json:"requests"`
	// LateFragments counts this node's fragments dropped after sealing.
	LateFragments int `json:"lateFragments"`
	// LastWindow is the node's watermark: the highest window id it has
	// forwarded.
	LastWindow int64 `json:"lastWindow"`
	// LastSeen is when the node's most recent fragment arrived.
	LastSeen time.Time `json:"lastSeen"`
	// ClockSkewSeconds estimates the node's wall clock minus this
	// process's, smoothed over the node's hop stamps (receive − send per
	// transit; network latency biases it positive by the transit time).
	// Nil until a stamped hop arrives.
	ClockSkewSeconds *float64 `json:"clockSkewSeconds,omitempty"`
	// SkewWarn flags |skew| at or above SkewWarnThreshold — windows from
	// this node may land in the wrong stride or seal late.
	SkewWarn bool `json:"skewWarn,omitempty"`
	// Finished reports whether the node sent its final marker.
	Finished bool `json:"finished"`
	// FinalOverdue flags a node still streaming after at least one peer
	// finished — the operator's cue that a final marker may have been
	// lost (its sender logs loudly when it gives one up).
	FinalOverdue bool `json:"finalOverdue,omitempty"`
}

// SkewWarnThreshold is the estimated clock-skew magnitude past which
// NodeStat.SkewWarn (and the topology view) flag a peer.
const SkewWarnThreshold = 2 * time.Second

type nodeState struct {
	last      int64
	finished  bool
	fragments int
	requests  int
	late      int
	lastSeen  time.Time

	// Hop-derived observability state.
	role      string
	skew      time.Duration
	skewKnown bool
	dwell     time.Duration // latest observed spool dwell
	// remotes are deeper senders seen in this node's hop trails — e.g.
	// the ingest shards behind a merge tier. Their skew is relative to
	// the node that stamped the hop's receive time (their parent), not to
	// this process.
	remotes map[string]*nodeState
}

// observeHop folds one stamped hop into the node's skew estimate (EWMA,
// weight 1/4 — stable against transit jitter but converging within a few
// windows) and dwell/role bookkeeping.
func (n *nodeState) observeHop(h *wire.Hop) {
	if h.Role != "" {
		n.role = h.Role
	}
	if h.SpoolDwell > 0 {
		n.dwell = h.SpoolDwell
	}
	if h.Send.IsZero() || h.Recv.IsZero() {
		return
	}
	sample := h.Recv.Sub(h.Send)
	if !n.skewKnown {
		n.skew, n.skewKnown = sample, true
		return
	}
	n.skew += (sample - n.skew) / 4
}

func (n *nodeState) skewSeconds() (*float64, bool) {
	if !n.skewKnown {
		return nil, false
	}
	s := n.skew.Seconds()
	return &s, n.skew >= SkewWarnThreshold || n.skew <= -SkewWarnThreshold
}

// assemblerConfig parameterizes the shared fragment-assembly loop.
type assemblerConfig struct {
	window    time.Duration
	stride    time.Duration
	expect    int
	straggler int
	buffer    int
	log       *slog.Logger
	tr        *obs.Tracer
	// mWait and mSealCommit instrument the shared seal path (nil no-ops).
	mWait, mSealCommit *obs.Histogram
	// mHop observes per-hop send→accept transit (clamped at zero when
	// skew runs it negative); mE2E observes window-end→seal latency for
	// live (non-replayed) windows. Both nil no-op.
	mHop, mE2E *obs.Histogram
	// flog enables crash recovery; nil runs in-memory only.
	flog *FragLog
	// exactlyOnce selects the frontier-commit ordering relative to
	// onSeal: true commits before (the sink is the source of truth and
	// must never see a window twice — the aggregator, whose reconcile
	// against applied redoes at most the interrupted window); false
	// commits after (the downstream dedupes, so a crash between onSeal
	// and commit costs one duplicate delivery — the merger).
	exactlyOnce bool
	// applied is the durable sink's lifetime window count at open, used
	// to reconcile the frontier after a crash; -1 trusts the frontier.
	applied int
	// onSeal performs the role-specific half of a seal — detection and
	// sinks for the aggregator, upstream forwarding for the merger —
	// given the merged index of window id w, emitted as sequence seq.
	// hops is the window's combined hop trail (fragments in sorted node
	// order); the merger copies it onto the merged fragment so the root
	// sees the whole path.
	onSeal func(ctx context.Context, w int64, seq int, start time.Time, merged *trace.Index, hops []wire.Hop, aborted bool)
}

// pendingFrag is one accepted fragment awaiting its window's seal.
type pendingFrag struct {
	idx      *trace.Index
	hops     []wire.Hop
	replayed bool
}

// assembler is the loop shared by the Aggregator and the Merger: it
// accepts wire fragments, aligns them on epoch-derived window ids with
// per-(node, window) dedupe and straggler-policy late drops, merges each
// sealed window's fragments in sorted node order, and hands the merged
// index to a role-specific onSeal. With a FragLog it is crash-recoverable:
// Submit makes every fragment durable before acking, and run replays the
// log through the same accept path at startup, so a restarted process
// resumes exactly where the dead one stopped.
type assembler struct {
	cfg assemblerConfig
	log *slog.Logger
	tr  *obs.Tracer

	in   chan *wire.Fragment
	done chan struct{}
	quit chan struct{}
	abnd chan struct{}

	stopOnce sync.Once
	abndOnce sync.Once
	started  bool

	errMu sync.Mutex
	err   error

	nodeMu sync.Mutex
	nodes  map[string]*nodeState

	ctrFragments, ctrDup, ctrLate     atomic.Int64
	ctrWindows, ctrEmpty, ctrRequests atomic.Int64

	// Loop state, owned by the run goroutine (resume touches it before
	// the loop starts, from the same goroutine).
	pending          map[int64]map[string]*pendingFrag
	firstFrag        map[int64]time.Time
	minSeen, maxSeen int64
	nextSeal         int64
	sealedAny        bool
	emitted          int
	// replaying is true while resume feeds logged fragments through
	// accept, marking them so their spans carry a replay flag and the
	// e2e histogram skips their windows.
	replaying bool
}

func newAssembler(cfg assemblerConfig) *assembler {
	s := &assembler{
		cfg:      cfg,
		log:      cfg.log,
		tr:       cfg.tr,
		in:       make(chan *wire.Fragment, cfg.buffer),
		done:     make(chan struct{}),
		quit:     make(chan struct{}),
		abnd:     make(chan struct{}),
		nodes:    make(map[string]*nodeState),
		pending:  make(map[int64]map[string]*pendingFrag),
		minSeen:  math.MaxInt64,
		maxSeen:  noWindow,
		nextSeal: noWindow,
	}
	if s.log == nil {
		s.log = obs.Discard()
	}
	if s.tr != nil || cfg.mWait != nil {
		s.firstFrag = make(map[int64]time.Time)
	}
	return s
}

// Submit hands one decoded fragment to the assembly loop, blocking while
// the inbox is full (that blocking is the cluster's backpressure). With a
// fragment log the fragment is durable before Submit returns, so an ack
// survives kill -9. It fails with ErrStopped once the loop has stopped;
// an ErrUnavailable-wrapped error means the fragment could not be made
// durable and should be retried; any other error marks the fragment
// itself as invalid and will not heal on retry.
func (s *assembler) Submit(frag *wire.Fragment) error {
	if frag.Node == "" {
		return errors.New("cluster: fragment without a node name")
	}
	if !frag.Final && frag.Index == nil {
		return errors.New("cluster: non-final fragment without an index")
	}
	select {
	case <-s.done:
		return ErrStopped
	default:
	}
	// Stamp the receive time on the fragment's own transit hop before the
	// log append, so the stamp is durable and a replay reconstructs the
	// original arrival time instead of the replay time.
	if n := len(frag.Hops); n > 0 && frag.Hops[n-1].Recv.IsZero() {
		frag.Hops[n-1].Recv = time.Now().UTC()
	}
	if s.cfg.flog != nil {
		if err := s.cfg.flog.Append(frag); err != nil {
			return fmt.Errorf("%w: %v", ErrUnavailable, err)
		}
	}
	select {
	case s.in <- frag:
		return nil
	case <-s.done:
		return ErrStopped
	}
}

// Stop asks the loop to flush every pending window (in window order,
// without waiting for stragglers) and shut down. Safe to call
// concurrently and more than once.
func (s *assembler) Stop() {
	s.stopOnce.Do(func() { close(s.quit) })
}

// Abandon terminates the loop immediately: no flush, no final results,
// no fragment-log cleanup — alongside FragLog.Close it is the kill -9
// simulator for crash-recovery tests. The on-disk state stays exactly as
// the last acked fragment left it.
func (s *assembler) Abandon() {
	s.abndOnce.Do(func() { close(s.abnd) })
}

// Err returns the first detection, sink, forward or context error, if
// any. Valid once the loop has stopped.
func (s *assembler) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

func (s *assembler) setErr(err error) {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	if s.err == nil {
		s.err = err
	}
}

// Stats returns a live snapshot of the assembler's counters.
func (s *assembler) Stats() Stats {
	s.nodeMu.Lock()
	nodes, finished := len(s.nodes), 0
	for _, n := range s.nodes {
		if n.finished {
			finished++
		}
	}
	s.nodeMu.Unlock()
	st := Stats{
		Nodes:              nodes,
		FinishedNodes:      finished,
		Fragments:          int(s.ctrFragments.Load()),
		DuplicateFragments: int(s.ctrDup.Load()),
		LateFragments:      int(s.ctrLate.Load()),
		Windows:            int(s.ctrWindows.Load()),
		EmptyWindows:       int(s.ctrEmpty.Load()),
		Requests:           int(s.ctrRequests.Load()),
	}
	if s.cfg.flog != nil {
		st.Replayed = int(s.cfg.flog.Stats().Replayed)
	}
	return st
}

// NodeStats returns per-node counters, sorted by node name.
func (s *assembler) NodeStats() []NodeStat {
	s.nodeMu.Lock()
	defer s.nodeMu.Unlock()
	anyFinished := false
	for _, n := range s.nodes {
		if n.finished {
			anyFinished = true
			break
		}
	}
	out := make([]NodeStat, 0, len(s.nodes))
	for name, n := range s.nodes {
		skew, warn := n.skewSeconds()
		out = append(out, NodeStat{
			Node:             name,
			Role:             n.role,
			Fragments:        n.fragments,
			Requests:         n.requests,
			LateFragments:    n.late,
			LastWindow:       n.last,
			LastSeen:         n.lastSeen,
			ClockSkewSeconds: skew,
			SkewWarn:         warn,
			Finished:         n.finished,
			FinalOverdue:     anyFinished && !n.finished,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// accept folds one fragment into the window bookkeeping: node watermark,
// dedupe, late drop, pending index. Called from the run goroutine only —
// both for live arrivals and for startup replay, which is what makes the
// replayed state indistinguishable from having never crashed.
func (s *assembler) accept(frag *wire.Fragment) {
	s.nodeMu.Lock()
	node := s.nodes[frag.Node]
	if node == nil {
		node = &nodeState{last: noWindow}
		s.nodes[frag.Node] = node
		s.log.Info("node joined", "node", frag.Node)
	}
	node.lastSeen = time.Now()
	// Fold the hop trail into per-node observability state: the trail's
	// last hop is the fragment's own transit (role, skew, dwell); earlier
	// hops name deeper senders — the shards behind a merge tier — which
	// become the node's remotes in the topology view.
	if n := len(frag.Hops); n > 0 {
		if h := &frag.Hops[n-1]; h.Node == frag.Node {
			node.observeHop(h)
		}
		for i := 0; i < n-1; i++ {
			h := &frag.Hops[i]
			if h.Node == frag.Node || h.Node == "" {
				continue
			}
			if node.remotes == nil {
				node.remotes = make(map[string]*nodeState)
			}
			r := node.remotes[h.Node]
			if r == nil {
				r = &nodeState{last: noWindow}
				node.remotes[h.Node] = r
			}
			if !frag.Final && frag.Window > r.last {
				r.last = frag.Window
			}
			r.lastSeen = node.lastSeen
			r.observeHop(h)
		}
	}
	if frag.Final {
		node.finished = true
		s.nodeMu.Unlock()
		s.log.Info("node finished", "node", frag.Node, "lastWindow", frag.Window)
		return
	}
	if frag.Window > node.last {
		node.last = frag.Window
	}
	sealed := s.sealedAny && frag.Window < s.nextSeal
	dup := !sealed && s.pending[frag.Window][frag.Node] != nil
	if sealed {
		node.late++
	} else if !dup {
		node.fragments++
		node.requests += frag.Index.RequestCount
	}
	s.nodeMu.Unlock()
	switch {
	case sealed:
		s.ctrLate.Add(1)
		s.log.Warn("late fragment dropped", "node", frag.Node, "windowID", frag.Window)
		return
	case dup:
		s.ctrDup.Add(1)
		s.log.Debug("duplicate fragment dropped", "node", frag.Node, "windowID", frag.Window)
		return
	}
	s.ctrFragments.Add(1)
	w := s.pending[frag.Window]
	if w == nil {
		w = make(map[string]*pendingFrag, s.cfg.expect)
		s.pending[frag.Window] = w
		if s.firstFrag != nil {
			s.firstFrag[frag.Window] = time.Now()
		}
	}
	w[frag.Node] = &pendingFrag{idx: frag.Index, hops: frag.Hops, replayed: s.replaying}
	if frag.Window < s.minSeen {
		s.minSeen = frag.Window
	}
	if frag.Window > s.maxSeen {
		s.maxSeen = frag.Window
	}
}

// watermark is the highest window id known complete: the minimum over
// all expected nodes of their last forwarded window. Unknown nodes hold
// it at -inf; finished nodes lift theirs to +inf.
func (s *assembler) watermark() (int64, bool) {
	s.nodeMu.Lock()
	defer s.nodeMu.Unlock()
	if len(s.nodes) < s.cfg.expect {
		return noWindow, false
	}
	w, allDone := int64(math.MaxInt64), true
	for _, n := range s.nodes {
		if n.finished {
			continue
		}
		allDone = false
		if n.last < w {
			w = n.last
		}
	}
	return w, allDone
}

// seal merges window w's fragments in sorted node order, runs the
// role-specific onSeal, and advances the durable frontier: in
// exactly-once mode the frontier commits before onSeal's effects (the
// sink's applied count reconciles a crash in between), in at-least-once
// mode after (the downstream dedupes the one window a crash can repeat).
func (s *assembler) seal(ctx context.Context, w int64, aborted bool) {
	sealStart := time.Now()
	seq := int64(s.emitted)
	frags := s.pending[w]
	delete(s.pending, w)
	if s.firstFrag != nil {
		if t0, ok := s.firstFrag[w]; ok {
			delete(s.firstFrag, w)
			d := sealStart.Sub(t0)
			s.tr.Record(seq, "fragments", t0, d, "nodes", strconv.Itoa(len(frags)))
			s.cfg.mWait.Observe(d.Seconds())
		}
	}
	names := make([]string, 0, len(frags))
	for n := range frags {
		names = append(names, n)
	}
	sort.Strings(names)
	merged := trace.NewIndex()
	var hops []wire.Hop
	replayed := false
	for _, n := range names {
		merged.Merge(frags[n].idx)
		hops = append(hops, frags[n].hops...)
		replayed = replayed || frags[n].replayed
	}
	sealedAt := time.Now()

	start := WindowStart(w, s.cfg.stride)
	if s.tr != nil {
		s.tr.Window(seq, start, start.Add(s.cfg.window))
		s.tr.Record(seq, "merge", sealStart, sealedAt.Sub(sealStart),
			"nodes", strconv.Itoa(len(names)), "requests", strconv.Itoa(merged.RequestCount))
	}
	s.recordHops(seq, frags, names)
	if s.cfg.mE2E != nil && !replayed && !aborted {
		s.cfg.mE2E.Observe(max(sealedAt.Sub(start.Add(s.cfg.window)).Seconds(), 0))
	}
	if s.cfg.flog != nil && s.cfg.exactlyOnce {
		if err := s.cfg.flog.Commit(w+1, s.emitted+1); err != nil {
			s.setErr(err)
			s.log.Error("frontier commit failed", "windowID", w, "err", err)
		}
	}
	s.cfg.onSeal(ctx, w, s.emitted, start, merged, hops, aborted)
	if s.cfg.flog != nil {
		if !s.cfg.exactlyOnce {
			if err := s.cfg.flog.Commit(w+1, s.emitted+1); err != nil {
				s.setErr(err)
				s.log.Error("frontier commit failed", "windowID", w, "err", err)
			}
		}
		s.cfg.flog.Remove(w)
	}
	s.cfg.mSealCommit.ObserveSince(sealedAt)
	if merged.RequestCount == 0 {
		s.ctrEmpty.Add(1)
	}
	s.ctrWindows.Add(1)
	s.ctrRequests.Add(int64(merged.RequestCount))
	s.log.Debug("window committed",
		"window", s.emitted, "windowID", w, "nodes", len(names), "requests", merged.RequestCount)
	s.emitted++
	s.sealedAny = true
}

// recordHops folds the sealed window's hop trails into stitched spans
// ("hop:<node>", starting at the sender's send stamp, lasting until the
// receive stamp) and the hop-transit histogram. Replayed fragments are
// span-marked replay="true"; their stamps are the original transit times
// restored from the fragment log, not the replay's.
func (s *assembler) recordHops(seq int64, frags map[string]*pendingFrag, names []string) {
	if s.tr == nil && s.cfg.mHop == nil {
		return
	}
	for _, n := range names {
		pf := frags[n]
		for _, h := range pf.hops {
			if h.Send.IsZero() {
				continue
			}
			var transit time.Duration
			if !h.Recv.IsZero() {
				transit = max(h.Recv.Sub(h.Send), 0)
				s.cfg.mHop.Observe(transit.Seconds())
			}
			attrs := []string{"from", n}
			if h.Role != "" {
				attrs = append(attrs, "role", h.Role)
			}
			if h.Attempts > 1 {
				attrs = append(attrs, "attempts", strconv.Itoa(h.Attempts))
			}
			if h.SpoolDwell > 0 {
				attrs = append(attrs, "spoolDwell", h.SpoolDwell.String())
			}
			if pf.replayed {
				attrs = append(attrs, "replay", "true")
			}
			s.tr.Record(seq, "hop:"+h.Node, h.Send, transit, attrs...)
		}
	}
}

// flush seals every remaining window in order, report-less when the
// context has been cancelled. A cancelled assembler with a fragment log
// instead stops crash-consistent: pending windows stay on disk and the
// next run resumes them, which is the durable tier's shutdown semantics.
func (s *assembler) flush(ctx context.Context) {
	if ctx.Err() != nil && s.cfg.flog != nil {
		return
	}
	for ; s.sealedAny && s.nextSeal <= s.maxSeen; s.nextSeal++ {
		s.seal(ctx, s.nextSeal, ctx.Err() != nil)
	}
	if !s.sealedAny && s.maxSeen != noWindow {
		for s.nextSeal = s.minSeen; s.nextSeal <= s.maxSeen; s.nextSeal++ {
			s.seal(ctx, s.nextSeal, ctx.Err() != nil)
		}
	}
}

// evaluate runs the watermark/straggler sealing policy after new
// fragments arrived; it reports whether every expected node has finished
// (after flushing).
func (s *assembler) evaluate(ctx context.Context) (finished bool) {
	wm, allDone := s.watermark()
	if allDone {
		s.flush(ctx)
		return true
	}
	if s.maxSeen == noWindow {
		return false
	}
	if !s.sealedAny {
		s.nextSeal = s.minSeen
	}
	for s.nextSeal <= s.maxSeen {
		ready := s.nextSeal <= wm ||
			(s.cfg.straggler > 0 && s.maxSeen-s.nextSeal >= int64(s.cfg.straggler))
		if !ready {
			break
		}
		s.seal(ctx, s.nextSeal, false)
		s.nextSeal++
	}
	return false
}

// resume restores the crash frontier and replays the fragment log
// through accept, leaving the loop exactly where the previous process
// stopped. The reconcile rule: the frontier is written before a seal's
// effects reach the sink, so after a crash it runs at most one window
// ahead of the sink's applied count — equal means the seal completed,
// one ahead means it was interrupted and the window is redone from its
// surviving log file (its fragment set is frozen: later arrivals were
// already late-dropped and are excluded from the log by the frontier
// floor). Anything else means the state dir and the sink belong to
// different runs, which is fatal.
func (s *assembler) resume(ctx context.Context) error {
	flog := s.cfg.flog
	if fr, ok := flog.Frontier(); ok {
		emitted, nextSeal := fr.Emitted, fr.NextSeal
		switch {
		case s.cfg.applied < 0 || s.cfg.applied == emitted:
			// The interrupted run's last seal fully committed.
		case s.cfg.applied == emitted-1:
			emitted--
			nextSeal--
			s.log.Warn("seal interrupted by crash; redoing window",
				"windowID", nextSeal, "window", emitted)
		default:
			return fmt.Errorf("cluster: fragment log frontier says %d windows emitted but the sink applied %d; state dir from a different run?",
				emitted, s.cfg.applied)
		}
		s.emitted, s.nextSeal, s.sealedAny = emitted, nextSeal, emitted > 0
	}
	flog.RemoveBelow(s.nextSeal)
	s.replaying = true
	err := flog.Replay(func(frag *wire.Fragment) error {
		s.accept(frag)
		return nil
	})
	s.replaying = false
	if err != nil {
		return err
	}
	if n := flog.Stats().Replayed; n > 0 || s.emitted > 0 {
		s.log.Info("resumed from fragment log",
			"replayed", n, "windows", s.emitted, "nextSeal", s.nextSeal)
	}
	return nil
}

// finish disposes of the fragment log at loop exit: a clean completion
// leaves an empty directory; a cancelled one keeps the pending state for
// the next run.
func (s *assembler) finish(ctx context.Context) {
	if s.cfg.flog == nil {
		return
	}
	if ctx.Err() == nil {
		if err := s.cfg.flog.Clean(); err != nil {
			s.log.Warn("fragment log cleanup failed", "err", err)
		}
	} else {
		s.cfg.flog.Close()
	}
}

// run is the single assembly goroutine: it owns all window bookkeeping
// and seals in window order, so worker-free sequencing is the
// determinism guarantee (fragment arrival order never changes output).
func (s *assembler) run(ctx context.Context) {
	// done closes when the loop exits, so a caller that has seen the
	// output side complete can rely on Submit failing from then on.
	defer close(s.done)
	s.log.Info("assembler starting",
		"window", s.cfg.window, "stride", s.cfg.stride,
		"expect", s.cfg.expect, "straggler", s.cfg.straggler,
		"recovery", s.cfg.flog != nil)
	defer func() { s.log.Info("assembler stopped", "windows", s.emitted) }()

	if s.cfg.flog != nil {
		if err := s.resume(ctx); err != nil {
			s.setErr(err)
			s.log.Error("fragment log recovery failed", "err", err)
			s.cfg.flog.Close()
			return
		}
		// Replay may already complete the run (every final marker was
		// logged before the crash).
		if s.evaluate(ctx) {
			s.finish(ctx)
			return
		}
	}

	for {
		select {
		case frag := <-s.in:
			s.accept(frag)
		case <-s.quit:
			// Drain fragments already accepted into the inbox before
			// flushing, so Stop never discards a buffered submission.
		drain:
			for {
				select {
				case frag := <-s.in:
					s.accept(frag)
				default:
					break drain
				}
			}
			s.flush(ctx)
			s.finish(ctx)
			return
		case <-s.abnd:
			if s.cfg.flog != nil {
				s.cfg.flog.Close()
			}
			return
		case <-ctx.Done():
			s.setErr(ctx.Err())
			s.flush(ctx)
			s.finish(ctx)
			return
		}
		if s.evaluate(ctx) {
			s.finish(ctx)
			return
		}
	}
}

// registerFragLogMetrics exposes a fragment log's counters on reg.
func registerFragLogMetrics(reg *obs.Registry, l *FragLog) {
	reg.CounterFunc("smash_cluster_fraglog_appends_total",
		"Fragments made durable in the fragment log before acknowledgement.",
		func(emit obs.Emit) { emit(float64(l.Stats().Appends)) })
	reg.CounterFunc("smash_cluster_replayed_fragments_total",
		"Fragments replayed from the fragment log at startup (crash recovery).",
		func(emit obs.Emit) { emit(float64(l.Stats().Replayed)) })
	reg.GaugeFunc("smash_cluster_fraglog_bytes",
		"Current on-disk size of the fragment log.",
		func(emit obs.Emit) { emit(float64(l.Stats().Bytes)) })
}
