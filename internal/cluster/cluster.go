// Package cluster is SMASH's horizontal scale-out layer: N ingest nodes,
// each windowing one client-hash partition of the traffic, feed one
// aggregator that merges their window fragments and runs detection once
// per cluster-wide window.
//
//	partition 0 ─▶ smashd -role ingest ──┐ (wire fragments over HTTP)
//	partition 1 ─▶ smashd -role ingest ──┼▶ smashd -role aggregate
//	partition … ─▶ smashd -role ingest ──┘   └▶ detection → tracker → store
//
// The split leans on two earlier invariants: trace.Index aggregation
// commutes (any partition of the requests merges back to the exact index a
// sequential build would produce), and Merge's name-remap path makes
// fragments from foreign symbol tables safe to fold in. An ingest node is
// a stream.Engine in IndexOnly mode — full windowing, watermark and
// backpressure semantics, no detection — whose sink is a Forwarder that
// encodes each sealed fragment (internal/wire) and POSTs it to the
// aggregator with bounded retry. The aggregator aligns fragments from all
// nodes onto epoch-derived window ids, merges them in sorted node order,
// and drives the same core.Pipeline → tracker → sink path a standalone
// engine drives, so a partitioned run reproduces a single-node run's
// output byte-for-byte (TestClusterMatchesStandalone).
//
// # Window alignment
//
// Nodes never coordinate: every window is identified by its epoch-derived
// id, WindowID(start) = (start − origin) / stride, with origin fixed at
// the Unix epoch (Epoch) cluster-wide. Ingest engines run with
// Config.Origin = Epoch so each node derives identical window boundaries
// from timestamps alone.
//
// # Straggler policy
//
// Each node forwards its windows in order, so the aggregator keeps one
// watermark per node — the highest window id the node has forwarded — and
// seals window w once every expected node's watermark reaches w (a final
// marker lifts a node's watermark to infinity). Config.Straggler bounds
// how long a lagging shard can hold the cluster back: when the lead
// node's watermark runs Straggler windows ahead, w seals without the
// stragglers, and their fragments for w are counted and dropped on
// arrival — the fragment-level mirror of the stream engine's event
// lateness policy. Duplicate fragments (at-least-once delivery after a
// lost response) are detected per (node, window) and dropped, keeping
// application idempotent.
package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"smash/internal/obs"
	"smash/internal/stream"
	"smash/internal/trace"
	"smash/internal/wire"
)

// Epoch is the cluster-wide window origin: window ids count strides since
// the Unix epoch, so every node maps a timestamp to the same window id
// with no coordination.
var Epoch = time.Unix(0, 0).UTC()

// PartitionOf maps a client id to one of n partitions with FNV-1a — the
// cluster's partitioning function, shared by tracegen -partitions and
// smashd -shard-of so pre-partitioned traces and self-partitioning nodes
// agree.
func PartitionOf(client string, n int) int {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(client); i++ {
		h ^= uint32(client[i])
		h *= prime32
	}
	return int(h % uint32(n))
}

// ShardSource filters a source down to one client-hash partition: an
// ingest node pointed at the full trace ingests only its shard. Shard is
// 0-based; Of is the cluster's ingest node count.
type ShardSource struct {
	Src   stream.Source
	Shard int
	Of    int
}

// Read returns the next request belonging to the shard.
func (s *ShardSource) Read() (trace.Request, error) {
	for {
		r, err := s.Src.Read()
		if err != nil {
			return r, err
		}
		if PartitionOf(r.Client, s.Of) == s.Shard {
			return r, nil
		}
	}
}

// WindowID returns the epoch-derived id of the window starting at start.
func WindowID(start time.Time, stride time.Duration) int64 {
	d := start.Sub(Epoch)
	id := int64(d / stride)
	if d%stride != 0 && d < 0 {
		id--
	}
	return id
}

// WindowStart is WindowID's inverse: the start time of window id.
func WindowStart(id int64, stride time.Duration) time.Time {
	return Epoch.Add(time.Duration(id) * stride)
}

// ForwarderConfig parameterizes a Forwarder.
type ForwarderConfig struct {
	// URL is the aggregator's base URL (e.g. "http://agg:8080"); the
	// forwarder POSTs to URL + "/v1/ingest".
	URL string
	// Node names this ingest node in fragments (required; the aggregator
	// keys watermarks and metrics by it).
	Node string
	// Stride is the cluster window stride — must match the aggregator's
	// and the ingest engine's (required, > 0).
	Stride time.Duration
	// Client overrides the HTTP client (default: 30s-timeout client).
	Client *http.Client
	// MaxAttempts bounds delivery attempts per fragment (default 5).
	MaxAttempts int
	// Backoff is the first retry delay; it doubles per attempt
	// (default 100ms).
	Backoff time.Duration
	// Metrics registers the forward POST latency histogram and the
	// fragment/retry/byte counters (nil disables metrics).
	Metrics *obs.Registry
	// Logger receives structured retry and failure logs (nil discards).
	Logger *slog.Logger
}

// ForwarderStats is a live snapshot of a forwarder's counters.
type ForwarderStats struct {
	// Forwarded counts fragments acknowledged by the aggregator
	// (including the final marker).
	Forwarded int `json:"forwarded"`
	// Retries counts failed attempts that were retried.
	Retries int `json:"retries"`
	// Bytes counts encoded fragment bytes acknowledged.
	Bytes int64 `json:"bytes"`
	// LastWindow is the highest window id forwarded so far.
	LastWindow int64 `json:"lastWindow"`
}

// Forwarder is the ingest node's stream.Sink: it encodes every emitted
// window's index as a wire fragment and delivers it to the aggregator
// with bounded retry and exponential backoff. Because sinks run on the
// engine's emit path, a slow or unreachable aggregator backpressures
// ingestion instead of buffering fragments without bound.
type Forwarder struct {
	cfg    ForwarderConfig
	client *http.Client
	log    *slog.Logger
	mPost  *obs.Histogram

	ctrForwarded, ctrRetries atomic.Int64
	ctrBytes, lastWindow     atomic.Int64
}

// NewForwarder validates the config and builds a forwarder.
func NewForwarder(cfg ForwarderConfig) (*Forwarder, error) {
	if cfg.URL == "" {
		return nil, errors.New("cluster: ForwarderConfig.URL is required")
	}
	if u, err := url.Parse(cfg.URL); err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("cluster: bad forward URL %q", cfg.URL)
	}
	if cfg.Node == "" {
		return nil, errors.New("cluster: ForwarderConfig.Node is required")
	}
	if cfg.Stride <= 0 {
		return nil, errors.New("cluster: ForwarderConfig.Stride must be > 0")
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	f := &Forwarder{cfg: cfg, client: cfg.Client, log: cfg.Logger}
	if f.client == nil {
		f.client = &http.Client{Timeout: 30 * time.Second}
	}
	if f.log == nil {
		f.log = obs.Discard()
	}
	if reg := cfg.Metrics; reg != nil {
		f.mPost = reg.Histogram("smash_forward_post_seconds",
			"Wall-clock delivering one fragment to the aggregator, retries included.")
		reg.CounterFunc("smash_forward_fragments_total",
			"Fragments acknowledged by the aggregator (including the final marker).",
			func(emit obs.Emit) { emit(float64(f.ctrForwarded.Load())) })
		reg.CounterFunc("smash_forward_retries_total",
			"Failed fragment delivery attempts that were retried.",
			func(emit obs.Emit) { emit(float64(f.ctrRetries.Load())) })
		reg.CounterFunc("smash_forward_bytes_total",
			"Encoded fragment bytes acknowledged by the aggregator.",
			func(emit obs.Emit) { emit(float64(f.ctrBytes.Load())) })
	}
	f.lastWindow.Store(-1 << 62)
	return f, nil
}

// SinkName implements stream.NamedSink: fragment deliveries show up as
// the "forward" span and sink-latency series on the ingest engine.
func (f *Forwarder) SinkName() string { return "forward" }

// Consume implements stream.Sink: it ships the window's index to the
// aggregator. The engine must run with Config.IndexOnly (or KeepIndex).
func (f *Forwarder) Consume(w *stream.WindowResult) error {
	if w.Index == nil {
		return fmt.Errorf("cluster: window %d has no index; run the engine with Config.IndexOnly", w.Seq)
	}
	id := WindowID(w.Start, f.cfg.Stride)
	frag := &wire.Fragment{
		Node:   f.cfg.Node,
		Window: id,
		Start:  w.Start,
		End:    w.End,
		Index:  w.Index,
	}
	if err := f.post(wire.EncodeFragment(frag)); err != nil {
		return err
	}
	f.lastWindow.Store(id)
	return nil
}

// Close delivers the node's end-of-stream marker, telling the aggregator
// no further windows will arrive from this node. Call it after the ingest
// engine's output channel has closed.
func (f *Forwarder) Close() error {
	frag := &wire.Fragment{Node: f.cfg.Node, Window: f.lastWindow.Load(), Final: true}
	return f.post(wire.EncodeFragment(frag))
}

// Stats returns a live snapshot of the forwarder's counters.
func (f *Forwarder) Stats() ForwarderStats {
	return ForwarderStats{
		Forwarded:  int(f.ctrForwarded.Load()),
		Retries:    int(f.ctrRetries.Load()),
		Bytes:      f.ctrBytes.Load(),
		LastWindow: f.lastWindow.Load(),
	}
}

// ContentType labels wire-encoded fragment bodies.
const ContentType = "application/x-smash-fragment"

// post delivers one encoded fragment, retrying transient failures
// (network errors and 5xx) with doubling backoff. 4xx responses fail
// immediately: a rejected fragment will not heal by resending.
func (f *Forwarder) post(body []byte) error {
	t0 := time.Now()
	defer f.mPost.ObserveSince(t0)
	backoff := f.cfg.Backoff
	var lastErr error
	for attempt := 1; ; attempt++ {
		resp, err := f.client.Post(f.cfg.URL+"/v1/ingest", ContentType, bytes.NewReader(body))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch {
			case resp.StatusCode < 300:
				f.ctrForwarded.Add(1)
				f.ctrBytes.Add(int64(len(body)))
				return nil
			case resp.StatusCode >= 400 && resp.StatusCode < 500:
				return fmt.Errorf("cluster: aggregator rejected fragment: %s", resp.Status)
			default:
				err = fmt.Errorf("aggregator: %s", resp.Status)
			}
		}
		lastErr = err
		if attempt >= f.cfg.MaxAttempts {
			f.log.Error("fragment delivery abandoned",
				"node", f.cfg.Node, "attempts", attempt, "err", lastErr)
			return fmt.Errorf("cluster: forward failed after %d attempts: %w", attempt, lastErr)
		}
		f.ctrRetries.Add(1)
		f.log.Warn("fragment delivery failed; retrying",
			"node", f.cfg.Node, "attempt", attempt, "backoff", backoff, "err", lastErr)
		time.Sleep(backoff)
		backoff *= 2
	}
}
