// Package cluster is SMASH's horizontal scale-out layer: N ingest nodes,
// each windowing one client-hash partition of the traffic, feed one
// aggregator that merges their window fragments and runs detection once
// per cluster-wide window.
//
//	partition 0 ─▶ smashd -role ingest ──┐ (wire fragments over HTTP)
//	partition 1 ─▶ smashd -role ingest ──┼▶ smashd -role aggregate
//	partition … ─▶ smashd -role ingest ──┘   └▶ detection → tracker → store
//
// The split leans on two earlier invariants: trace.Index aggregation
// commutes (any partition of the requests merges back to the exact index a
// sequential build would produce), and Merge's name-remap path makes
// fragments from foreign symbol tables safe to fold in. An ingest node is
// a stream.Engine in IndexOnly mode — full windowing, watermark and
// backpressure semantics, no detection — whose sink is a Forwarder that
// encodes each sealed fragment (internal/wire) and POSTs it to the
// aggregator with bounded retry. The aggregator aligns fragments from all
// nodes onto epoch-derived window ids, merges them in sorted node order,
// and drives the same core.Pipeline → tracker → sink path a standalone
// engine drives, so a partitioned run reproduces a single-node run's
// output byte-for-byte (TestClusterMatchesStandalone).
//
// # Window alignment
//
// Nodes never coordinate: every window is identified by its epoch-derived
// id, WindowID(start) = (start − origin) / stride, with origin fixed at
// the Unix epoch (Epoch) cluster-wide. Ingest engines run with
// Config.Origin = Epoch so each node derives identical window boundaries
// from timestamps alone.
//
// # Straggler policy
//
// Each node forwards its windows in order, so the aggregator keeps one
// watermark per node — the highest window id the node has forwarded — and
// seals window w once every expected node's watermark reaches w (a final
// marker lifts a node's watermark to infinity). Config.Straggler bounds
// how long a lagging shard can hold the cluster back: when the lead
// node's watermark runs Straggler windows ahead, w seals without the
// stragglers, and their fragments for w are counted and dropped on
// arrival — the fragment-level mirror of the stream engine's event
// lateness policy. Duplicate fragments (at-least-once delivery after a
// lost response) are detected per (node, window) and dropped, keeping
// application idempotent.
//
// # Hop provenance and tracing
//
// Every transit stamps a hop record (wire.Hop) onto the fragment: node,
// role, send/receive times, delivery attempts, spool dwell. Mergers
// carry their children's trails upstream, so the root aggregator
// stitches the full path into hop:<node> spans on its obs.Tracer,
// observes per-hop transit and end-to-end event-time-to-seal
// histograms, estimates per-child clock skew from the stamps, and
// reconstructs the tree below it (Topology, served as /v1/cluster)
// from hop records alone — no registration protocol. Receive stamps
// land before the fragment log append, so crash-recovery replays
// rebuild the same spans marked replay=true and are excluded from the
// end-to-end histogram rather than double-counted.
package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"smash/internal/obs"
	"smash/internal/stream"
	"smash/internal/trace"
	"smash/internal/wire"
)

// Epoch is the cluster-wide window origin: window ids count strides since
// the Unix epoch, so every node maps a timestamp to the same window id
// with no coordination.
var Epoch = time.Unix(0, 0).UTC()

// PartitionOf maps a client id to one of n partitions with FNV-1a — the
// cluster's partitioning function, shared by tracegen -partitions and
// smashd -shard-of so pre-partitioned traces and self-partitioning nodes
// agree.
func PartitionOf(client string, n int) int {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(client); i++ {
		h ^= uint32(client[i])
		h *= prime32
	}
	return int(h % uint32(n))
}

// ShardSource filters a source down to one client-hash partition: an
// ingest node pointed at the full trace ingests only its shard. Shard is
// 0-based; Of is the cluster's ingest node count.
type ShardSource struct {
	Src   stream.Source
	Shard int
	Of    int
}

// Read returns the next request belonging to the shard.
func (s *ShardSource) Read() (trace.Request, error) {
	for {
		r, err := s.Src.Read()
		if err != nil {
			return r, err
		}
		if PartitionOf(r.Client, s.Of) == s.Shard {
			return r, nil
		}
	}
}

// WindowID returns the epoch-derived id of the window starting at start.
func WindowID(start time.Time, stride time.Duration) int64 {
	d := start.Sub(Epoch)
	id := int64(d / stride)
	if d%stride != 0 && d < 0 {
		id--
	}
	return id
}

// WindowStart is WindowID's inverse: the start time of window id.
func WindowStart(id int64, stride time.Duration) time.Time {
	return Epoch.Add(time.Duration(id) * stride)
}

// ForwarderConfig parameterizes a Forwarder.
type ForwarderConfig struct {
	// URL is the aggregator's base URL (e.g. "http://agg:8080"); the
	// forwarder POSTs to URL + "/v1/ingest".
	URL string
	// Node names this ingest node in fragments (required; the aggregator
	// keys watermarks and metrics by it).
	Node string
	// Role labels this node's hop records ("ingest", "merge"); default
	// "ingest". The receiver folds it into topology and trace views.
	Role string
	// DisableHops suppresses hop-provenance stamping on outgoing
	// fragments (used to measure tracing overhead; production nodes leave
	// it off).
	DisableHops bool
	// Stride is the cluster window stride — must match the aggregator's
	// and the ingest engine's (required, > 0).
	Stride time.Duration
	// Client overrides the HTTP client (default: 30s-timeout client).
	Client *http.Client
	// MaxAttempts bounds delivery attempts per fragment (default 5).
	MaxAttempts int
	// Backoff caps the first retry delay; the cap doubles per attempt and
	// each actual delay is drawn uniformly from [0, cap) — full jitter, so
	// a fleet of nodes retrying against a recovering aggregator spreads
	// its load instead of thundering in lockstep (default 100ms).
	Backoff time.Duration
	// SpoolDir, when set, makes the forwarder durable: fragments whose
	// delivery attempts exhaust are written to this directory (fsynced)
	// and drained in order once the aggregator answers again, instead of
	// being dropped with an error. Spooled fragments survive restarts.
	SpoolDir string
	// SpoolMaxBytes bounds the spool's on-disk size; when exceeded the
	// oldest entries are dropped and counted (default 256 MiB).
	SpoolMaxBytes int64
	// Metrics registers the forward POST latency histogram and the
	// fragment/retry/byte counters (nil disables metrics).
	Metrics *obs.Registry
	// Logger receives structured retry and failure logs (nil discards).
	Logger *slog.Logger
}

// ForwarderStats is a live snapshot of a forwarder's counters.
type ForwarderStats struct {
	// Forwarded counts fragments acknowledged by the aggregator
	// (including the final marker).
	Forwarded int `json:"forwarded"`
	// Retries counts failed attempts that were retried.
	Retries int `json:"retries"`
	// Bytes counts encoded fragment bytes acknowledged.
	Bytes int64 `json:"bytes"`
	// LastWindow is the highest window id handed to the forwarder so far
	// (delivered or spooled).
	LastWindow int64 `json:"lastWindow"`
	// Spooled counts fragments written to the on-disk spool after their
	// delivery attempts exhausted; SpoolDropped counts entries evicted to
	// respect the spool bound (or unreadable at drain).
	Spooled      int `json:"spooled"`
	SpoolDropped int `json:"spoolDropped"`
	// SpoolPending and SpoolBytes describe what is on disk right now.
	SpoolPending int   `json:"spoolPending"`
	SpoolBytes   int64 `json:"spoolBytes"`
}

// Forwarder is the ingest node's stream.Sink: it encodes every emitted
// window's index as a wire fragment and delivers it to the aggregator
// with bounded retry and exponential backoff. Because sinks run on the
// engine's emit path, a slow or unreachable aggregator backpressures
// ingestion instead of buffering fragments without bound.
type Forwarder struct {
	cfg    ForwarderConfig
	client *http.Client
	log    *slog.Logger
	mPost  *obs.Histogram
	sp     *spool // nil without SpoolDir

	ctrForwarded, ctrRetries atomic.Int64
	ctrBytes, lastWindow     atomic.Int64
}

// NewForwarder validates the config and builds a forwarder.
func NewForwarder(cfg ForwarderConfig) (*Forwarder, error) {
	if cfg.URL == "" {
		return nil, errors.New("cluster: ForwarderConfig.URL is required")
	}
	if u, err := url.Parse(cfg.URL); err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("cluster: bad forward URL %q", cfg.URL)
	}
	if cfg.Node == "" {
		return nil, errors.New("cluster: ForwarderConfig.Node is required")
	}
	if cfg.Stride <= 0 {
		return nil, errors.New("cluster: ForwarderConfig.Stride must be > 0")
	}
	if cfg.Role == "" {
		cfg.Role = "ingest"
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	if cfg.SpoolMaxBytes <= 0 {
		cfg.SpoolMaxBytes = defaultSpoolMaxBytes
	}
	f := &Forwarder{cfg: cfg, client: cfg.Client, log: cfg.Logger}
	if f.client == nil {
		f.client = &http.Client{Timeout: 30 * time.Second}
	}
	if f.log == nil {
		f.log = obs.Discard()
	}
	if cfg.SpoolDir != "" {
		sp, err := openSpool(cfg.SpoolDir, cfg.SpoolMaxBytes, f.log)
		if err != nil {
			return nil, err
		}
		f.sp = sp
		if n := sp.pending(); n > 0 {
			f.log.Info("spool holds undelivered fragments from a previous run",
				"pending", n, "bytes", sp.pendingBytes())
		}
	}
	if reg := cfg.Metrics; reg != nil {
		f.mPost = reg.Histogram("smash_forward_post_seconds",
			"Wall-clock delivering one fragment to the aggregator, retries included.")
		reg.CounterFunc("smash_forward_fragments_total",
			"Fragments acknowledged by the aggregator (including the final marker).",
			func(emit obs.Emit) { emit(float64(f.ctrForwarded.Load())) })
		reg.CounterFunc("smash_forward_retries_total",
			"Failed fragment delivery attempts that were retried.",
			func(emit obs.Emit) { emit(float64(f.ctrRetries.Load())) })
		reg.CounterFunc("smash_forward_bytes_total",
			"Encoded fragment bytes acknowledged by the aggregator.",
			func(emit obs.Emit) { emit(float64(f.ctrBytes.Load())) })
		if f.sp != nil {
			reg.CounterFunc("smash_forward_spooled_total",
				"Fragments spilled to the on-disk spool after delivery attempts exhausted.",
				func(emit obs.Emit) { n, _ := f.sp.counters(); emit(float64(n)) })
			reg.CounterFunc("smash_forward_spool_dropped_total",
				"Spooled fragments evicted to respect the spool's byte bound.",
				func(emit obs.Emit) { _, n := f.sp.counters(); emit(float64(n)) })
			reg.GaugeFunc("smash_forward_spool_pending",
				"Fragments waiting in the on-disk spool.",
				func(emit obs.Emit) { emit(float64(f.sp.pending())) })
			reg.GaugeFunc("smash_forward_spool_bytes",
				"On-disk size of the fragment spool.",
				func(emit obs.Emit) { emit(float64(f.sp.pendingBytes())) })
		}
	}
	f.lastWindow.Store(-1 << 62)
	return f, nil
}

// SinkName implements stream.NamedSink: fragment deliveries show up as
// the "forward" span and sink-latency series on the ingest engine.
func (f *Forwarder) SinkName() string { return "forward" }

// Consume implements stream.Sink: it ships the window's index to the
// aggregator. The engine must run with Config.IndexOnly (or KeepIndex).
//
// With a spool configured, delivery failure is absorbed instead of
// surfaced: a fragment whose attempts exhaust is written to disk and the
// engine keeps streaming; a fragment arriving while a backlog exists
// queues behind it (the aggregator needs each node's windows in order),
// after which Consume opportunistically drains. Only a 4xx rejection —
// which resending cannot heal — still errors.
func (f *Forwarder) Consume(w *stream.WindowResult) error {
	if w.Index == nil {
		return fmt.Errorf("cluster: window %d has no index; run the engine with Config.IndexOnly", w.Seq)
	}
	return f.forward(&wire.Fragment{
		Node:   f.cfg.Node,
		Window: WindowID(w.Start, f.cfg.Stride),
		Start:  w.Start,
		End:    w.End,
		Index:  w.Index,
	})
}

// forward encodes and delivers one fragment — the shared implementation
// behind Consume, also called directly by the Merger so its children's
// hop trails (already on frag.Hops) ride the merged fragment. The encoded
// bytes stay hop-free for this transit; each delivery attempt appends its
// own freshly-stamped hop record via hopBody, and spooled fragments get
// theirs at drain time so dwell and attempt counts are accurate.
func (f *Forwarder) forward(frag *wire.Fragment) error {
	id := frag.Window
	body := wire.EncodeFragment(frag)
	if f.sp != nil && f.sp.pending() > 0 {
		if err := f.sp.put(body); err != nil {
			return err
		}
		f.lastWindow.Store(id)
		f.drain()
		return nil
	}
	if err := f.post(body, 0); err != nil {
		var rej *rejectError
		if f.sp == nil || errors.As(err, &rej) {
			return err
		}
		if perr := f.sp.put(body); perr != nil {
			return perr
		}
		f.log.Warn("fragment spooled after delivery attempts exhausted",
			"node", f.cfg.Node, "window", id, "err", err)
	}
	f.lastWindow.Store(id)
	return nil
}

// hopBody returns body with this node's hop record appended: Send stamped
// now, the attempt count, and how long the fragment sat in the spool.
// AppendHop is a pure byte append, so the base encoding is paid once per
// fragment, not per attempt. With DisableHops set it returns body as-is.
func (f *Forwarder) hopBody(body []byte, attempt int, dwell time.Duration) []byte {
	if f.cfg.DisableHops {
		return body
	}
	return wire.AppendHop(body, wire.Hop{
		Node:       f.cfg.Node,
		Role:       f.cfg.Role,
		Send:       time.Now().UTC(),
		Attempts:   attempt,
		SpoolDwell: dwell,
	})
}

// drain delivers spooled fragments oldest-first with single attempts,
// stopping at the first transient failure — the aggregator is still (or
// again) unreachable, and the next Consume or Close will try again. A 4xx
// rejection drops the entry: resending cannot heal it.
func (f *Forwarder) drain() {
	for f.sp.pending() > 0 {
		seq, body, dwell, ok := f.sp.peek()
		if !ok {
			continue // unreadable entry was dropped; move on
		}
		err := f.postOnce(f.hopBody(body, 1, dwell))
		var rej *rejectError
		switch {
		case err == nil:
			f.sp.remove(seq)
		case errors.As(err, &rej):
			f.log.Error("aggregator rejected spooled fragment; dropped", "seq", seq, "err", err)
			f.sp.remove(seq)
		default:
			return
		}
	}
}

// Close drains any spooled backlog (bounded retries per entry), then
// delivers the node's end-of-stream marker, telling the aggregator no
// further windows will arrive from this node. Call it after the ingest
// engine's output channel has closed; use CloseContext when shutdown
// should wait out an aggregator outage instead of giving up.
func (f *Forwarder) Close() error {
	if f.sp != nil {
		for f.sp.pending() > 0 {
			seq, body, dwell, ok := f.sp.peek()
			if !ok {
				continue
			}
			if err := f.post(body, dwell); err != nil {
				var rej *rejectError
				if errors.As(err, &rej) {
					f.log.Error("aggregator rejected spooled fragment; dropped", "seq", seq, "err", err)
					f.sp.remove(seq)
					continue
				}
				return fmt.Errorf("cluster: spool drain: %w", err)
			}
			f.sp.remove(seq)
		}
	}
	frag := &wire.Fragment{Node: f.cfg.Node, Window: f.lastWindow.Load(), Final: true}
	return f.post(wire.EncodeFragment(frag), 0)
}

// CloseContext is Close with patience: it keeps draining the spool and
// re-posting the final marker — capped, jittered backoff between rounds —
// until everything is delivered or ctx is cancelled. A durable ingest
// node shuts down through here so an aggregator outage at end-of-stream
// costs waiting, not the final marker. A 4xx rejection returns
// immediately; on cancellation the give-up is logged loudly, because the
// aggregator will now hold this node's watermark open until its
// straggler policy forces the issue.
func (f *Forwarder) CloseContext(ctx context.Context) error {
	final := wire.EncodeFragment(&wire.Fragment{Node: f.cfg.Node, Window: f.lastWindow.Load(), Final: true})
	for attempt := 1; ; attempt++ {
		if f.sp != nil {
			f.drain()
		}
		var err error
		if n := f.spoolPending(); n > 0 {
			err = fmt.Errorf("cluster: %d spooled fragments undelivered", n)
		} else if err = f.postOnce(f.hopBody(final, attempt, 0)); err == nil {
			return nil
		} else {
			var rej *rejectError
			if errors.As(err, &rej) {
				return err
			}
		}
		delay := f.backoffFor(attempt)
		f.ctrRetries.Add(1)
		f.log.Warn("shutdown delivery incomplete; retrying",
			"node", f.cfg.Node, "attempt", attempt, "backoff", delay, "err", err)
		select {
		case <-ctx.Done():
			f.log.Error("final marker abandoned at shutdown; aggregator will wait on this node's watermark",
				"node", f.cfg.Node, "spoolPending", f.spoolPending(), "err", err)
			return fmt.Errorf("cluster: final marker abandoned: %w", err)
		case <-time.After(delay):
		}
	}
}

func (f *Forwarder) spoolPending() int {
	if f.sp == nil {
		return 0
	}
	return f.sp.pending()
}

// Stats returns a live snapshot of the forwarder's counters.
func (f *Forwarder) Stats() ForwarderStats {
	st := ForwarderStats{
		Forwarded:  int(f.ctrForwarded.Load()),
		Retries:    int(f.ctrRetries.Load()),
		Bytes:      f.ctrBytes.Load(),
		LastWindow: f.lastWindow.Load(),
	}
	if f.sp != nil {
		spooled, dropped := f.sp.counters()
		st.Spooled = int(spooled)
		st.SpoolDropped = int(dropped)
		st.SpoolPending = f.sp.pending()
		st.SpoolBytes = f.sp.pendingBytes()
	}
	return st
}

// ContentType labels wire-encoded fragment bodies.
const ContentType = "application/x-smash-fragment"

// rejectError marks a 4xx response: the aggregator understood the request
// and said no, so retrying or spooling the fragment is pointless.
type rejectError struct{ status string }

func (e *rejectError) Error() string {
	return fmt.Sprintf("cluster: aggregator rejected fragment: %s", e.status)
}

// maxBackoff caps the retry-delay window however many attempts have
// failed.
const maxBackoff = 10 * time.Second

// backoffFor returns the delay before the retry following failed attempt
// number attempt (1-based): full jitter, drawn uniformly from [0, cap)
// where cap starts at cfg.Backoff and doubles per attempt up to
// maxBackoff. Randomizing the whole window (rather than adding a little
// noise to a deterministic delay) keeps a fleet of nodes hammering a
// recovering aggregator from synchronizing into retry waves.
func (f *Forwarder) backoffFor(attempt int) time.Duration {
	max := f.cfg.Backoff
	for i := 1; i < attempt && max < maxBackoff; i++ {
		max *= 2
	}
	if max > maxBackoff {
		max = maxBackoff
	}
	return time.Duration(rand.Int64N(int64(max)))
}

// postOnce makes a single delivery attempt. It returns nil on success, a
// *rejectError on 4xx, and the transport or status error otherwise.
func (f *Forwarder) postOnce(body []byte) error {
	resp, err := f.client.Post(f.cfg.URL+"/v1/ingest", ContentType, bytes.NewReader(body))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode < 300:
		f.ctrForwarded.Add(1)
		f.ctrBytes.Add(int64(len(body)))
		return nil
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		return &rejectError{status: resp.Status}
	default:
		return fmt.Errorf("aggregator: %s", resp.Status)
	}
}

// post delivers one encoded fragment, retrying transient failures
// (network errors and 5xx) with full-jitter doubling backoff. 4xx
// responses fail immediately: a rejected fragment will not heal by
// resending. Each attempt ships its own hop record — fresh Send stamp and
// attempt count — so the receiver sees the true last-transit timing, not
// the first try's.
func (f *Forwarder) post(body []byte, dwell time.Duration) error {
	t0 := time.Now()
	defer f.mPost.ObserveSince(t0)
	var lastErr error
	for attempt := 1; ; attempt++ {
		err := f.postOnce(f.hopBody(body, attempt, dwell))
		if err == nil {
			return nil
		}
		var rej *rejectError
		if errors.As(err, &rej) {
			return err
		}
		lastErr = err
		if attempt >= f.cfg.MaxAttempts {
			f.log.Error("fragment delivery abandoned",
				"node", f.cfg.Node, "attempts", attempt, "err", lastErr)
			return fmt.Errorf("cluster: forward failed after %d attempts: %w", attempt, lastErr)
		}
		delay := f.backoffFor(attempt)
		f.ctrRetries.Add(1)
		f.log.Warn("fragment delivery failed; retrying",
			"node", f.cfg.Node, "attempt", attempt, "backoff", delay, "err", lastErr)
		time.Sleep(delay)
	}
}
