package cluster

import (
	"sort"
	"time"
)

// TreeNode is one node in the cluster topology tree (GET /v1/cluster): a
// sender as seen by its receiver, assembled from per-node watermarks and
// the hop metadata riding each fragment. Children below the first level
// are known only through hop trails — the shards behind a merge tier —
// so their skew is relative to their own parent and some per-node
// counters are unavailable for them.
type TreeNode struct {
	// Node and Role identify the sender ("ingest", "merge").
	Node string `json:"node"`
	Role string `json:"role,omitempty"`
	// LastWindow is the node's watermark: the highest window id seen
	// from it (math.MinInt64 before its first window fragment).
	LastWindow int64 `json:"lastWindow"`
	// LastSeen is when the node's traffic was last observed; LagSeconds
	// is how long ago that was at snapshot time.
	LastSeen   time.Time `json:"lastSeen,omitzero"`
	LagSeconds float64   `json:"lagSeconds"`
	// ClockSkewSeconds estimates the node's clock offset relative to the
	// process that stamped its hops' receive times (its parent); nil
	// until a stamped hop arrives. SkewWarn flags |skew| at or above
	// SkewWarnThreshold.
	ClockSkewSeconds *float64 `json:"clockSkewSeconds,omitempty"`
	SkewWarn         bool     `json:"skewWarn,omitempty"`
	// SpoolDwellSeconds is the node's most recently reported spool dwell
	// — nonzero means its fragments sat in a durable spool, i.e. this
	// link recently suffered an outage.
	SpoolDwellSeconds float64 `json:"spoolDwellSeconds,omitempty"`
	// Finished and FinalOverdue mirror NodeStat's end-of-stream flags.
	Finished     bool `json:"finished,omitempty"`
	FinalOverdue bool `json:"finalOverdue,omitempty"`
	// Children are the node's own known senders.
	Children []TreeNode `json:"children,omitempty"`
}

// Topology returns the assembler's subtree: one TreeNode per known
// sender, sorted by name, each carrying the deeper senders its hop
// trails revealed.
func (s *assembler) Topology() []TreeNode {
	s.nodeMu.Lock()
	defer s.nodeMu.Unlock()
	anyFinished := false
	for _, n := range s.nodes {
		if n.finished {
			anyFinished = true
			break
		}
	}
	return treeNodes(s.nodes, time.Now(), anyFinished)
}

func treeNodes(nodes map[string]*nodeState, now time.Time, anyFinished bool) []TreeNode {
	names := make([]string, 0, len(nodes))
	for name := range nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]TreeNode, 0, len(nodes))
	for _, name := range names {
		n := nodes[name]
		skew, warn := n.skewSeconds()
		t := TreeNode{
			Node:              name,
			Role:              n.role,
			LastWindow:        n.last,
			LastSeen:          n.lastSeen,
			ClockSkewSeconds:  skew,
			SkewWarn:          warn,
			SpoolDwellSeconds: n.dwell.Seconds(),
			Finished:          n.finished,
			FinalOverdue:      anyFinished && !n.finished,
		}
		if !n.lastSeen.IsZero() {
			t.LagSeconds = max(now.Sub(n.lastSeen).Seconds(), 0)
		}
		if len(n.remotes) > 0 {
			// Remotes carry no final markers of their own, so the
			// overdue flag does not apply below the first level.
			t.Children = treeNodes(n.remotes, now, false)
		}
		out = append(out, t)
	}
	return out
}
