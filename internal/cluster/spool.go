package cluster

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"smash/internal/store"
)

// spool is the Forwarder's durable overflow: encoded fragments whose
// delivery exhausted its retry budget are written here (one file per
// fragment, fsynced) and drained in arrival order once the aggregator
// answers again — so an aggregator outage costs latency, not data. The
// spool is bounded: when a new entry would push it past maxBytes, the
// oldest entries are dropped and counted, keeping a long outage from
// filling the disk. Entries survive process restarts; a new Forwarder
// pointed at the same directory picks them up and continues the sequence.
//
// Order matters: the aggregator derives each node's watermark from the
// highest window it has received, so fragments must arrive in window
// order. Consume therefore appends behind a non-empty spool instead of
// racing past it, and the final marker is only sent once the spool is dry.
type spool struct {
	dir string
	max int64
	log *slog.Logger

	mu      sync.Mutex
	seqs    []int64 // pending entries, ascending
	sizes   map[int64]int64
	next    int64
	bytes   int64
	spooled int64 // fragments ever spooled (counter)
	dropped int64 // fragments dropped to respect the bound (counter)
}

const spoolSuffix = ".frag"

// defaultSpoolMaxBytes bounds the spool when the config leaves the limit
// unset — the same ceiling serve puts on one fragment body.
const defaultSpoolMaxBytes = 256 << 20

func openSpool(dir string, max int64, log *slog.Logger) (*spool, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: spool: %w", err)
	}
	s := &spool{dir: dir, max: max, log: log, sizes: make(map[int64]int64)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cluster: spool: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, spoolSuffix) {
			continue
		}
		seq, err := strconv.ParseInt(strings.TrimSuffix(name, spoolSuffix), 10, 64)
		if err != nil {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		s.seqs = append(s.seqs, seq)
		s.sizes[seq] = info.Size()
		s.bytes += info.Size()
		if seq >= s.next {
			s.next = seq + 1
		}
	}
	sort.Slice(s.seqs, func(i, j int) bool { return s.seqs[i] < s.seqs[j] })
	return s, nil
}

func (s *spool) path(seq int64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%012d%s", seq, spoolSuffix))
}

// put appends one encoded fragment, evicting the oldest entries when the
// bound demands it. The write is atomic and fsynced: once put returns,
// the fragment survives kill -9.
func (s *spool) put(body []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int64(len(body)) > s.max {
		s.dropped++
		s.log.Error("fragment larger than the whole spool bound; dropped",
			"bytes", len(body), "spoolMaxBytes", s.max)
		return nil
	}
	for len(s.seqs) > 0 && s.bytes+int64(len(body)) > s.max {
		oldest := s.seqs[0]
		s.removeLocked(oldest)
		s.dropped++
		s.log.Warn("spool full; dropped oldest fragment", "seq", oldest, "spoolMaxBytes", s.max)
	}
	seq := s.next
	if err := store.WriteFileAtomic(s.path(seq), body, true); err != nil {
		return fmt.Errorf("cluster: spool: %w", err)
	}
	s.next = seq + 1
	s.seqs = append(s.seqs, seq)
	s.sizes[seq] = int64(len(body))
	s.bytes += int64(len(body))
	s.spooled++
	return nil
}

// peek returns the oldest pending entry without removing it, plus how
// long it has sat on disk (from the file's mtime — the put time, which
// survives restarts; zero when the clock went backwards or stat failed).
func (s *spool) peek() (seq int64, body []byte, dwell time.Duration, ok bool) {
	s.mu.Lock()
	if len(s.seqs) == 0 {
		s.mu.Unlock()
		return 0, nil, 0, false
	}
	seq = s.seqs[0]
	s.mu.Unlock()
	body, err := os.ReadFile(s.path(seq))
	if err != nil {
		// The entry is unreadable; drop it so the drain can make progress.
		s.mu.Lock()
		s.removeLocked(seq)
		s.dropped++
		s.mu.Unlock()
		s.log.Error("spool entry unreadable; dropped", "seq", seq, "err", err)
		return 0, nil, 0, false
	}
	if info, err := os.Stat(s.path(seq)); err == nil {
		dwell = max(time.Since(info.ModTime()), 0)
	}
	return seq, body, dwell, true
}

// remove deletes one delivered (or abandoned) entry.
func (s *spool) remove(seq int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.removeLocked(seq)
}

func (s *spool) removeLocked(seq int64) {
	os.Remove(s.path(seq))
	for i, q := range s.seqs {
		if q == seq {
			s.seqs = append(s.seqs[:i], s.seqs[i+1:]...)
			break
		}
	}
	s.bytes -= s.sizes[seq]
	delete(s.sizes, seq)
}

func (s *spool) pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.seqs)
}

func (s *spool) pendingBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

func (s *spool) counters() (spooled, dropped int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spooled, s.dropped
}
