package ids

import (
	"testing"
	"time"

	"smash/internal/trace"
)

func testIndex() *trace.Index {
	tr := &trace.Trace{Requests: []trace.Request{
		{Time: time.Unix(0, 0), Client: "bot1", Host: "cc.evil.com", ServerIP: "9.9.9.9",
			Path: "/images/news.php", UserAgent: "Internet Exploder", Status: 200},
		{Time: time.Unix(0, 0), Client: "bot1", Host: "dl.evil2.com", ServerIP: "9.9.9.8",
			Path: "/images/file.txt", UserAgent: "Mozilla/4.0", Status: 200},
		{Time: time.Unix(0, 0), Client: "user", Host: "benign.com", ServerIP: "8.8.8.8",
			Path: "/news.php", UserAgent: "Mozilla/5.0", Status: 200},
	}}
	return trace.BuildIndex(tr)
}

func TestEngineServerSignature(t *testing.T) {
	e := NewEngine("IDS2012", []Signature{
		{ThreatID: "Bagle", Server: "evil.com", URIFile: "news.php"},
	})
	labels := e.Scan(testIndex())
	if !labels.Detected("evil.com") {
		t.Error("Bagle C&C not detected")
	}
	if labels.Detected("benign.com") {
		t.Error("benign.com matched a server-bound signature")
	}
	if labels.Detected("evil2.com") {
		t.Error("evil2.com matched wrong signature")
	}
	if e.Name() != "IDS2012" || e.RuleCount() != 1 {
		t.Errorf("engine meta wrong: %s %d", e.Name(), e.RuleCount())
	}
}

func TestEngineGenericSignature(t *testing.T) {
	// A generic signature (no server) fires on every server exhibiting the
	// URI file + UA combination.
	e := NewEngine("IDS", []Signature{
		{ThreatID: "Bagle-generic", URIFile: "news.php", UserAgent: "Internet Exploder"},
	})
	labels := e.Scan(testIndex())
	if !labels.Detected("evil.com") {
		t.Error("generic signature missed evil.com")
	}
	if labels.Detected("benign.com") {
		t.Error("generic signature false-fired on benign.com (UA differs)")
	}
}

func TestEmptySignatureNeverFires(t *testing.T) {
	e := NewEngine("IDS", []Signature{{ThreatID: "broken"}})
	if labels := e.Scan(testIndex()); len(labels) != 0 {
		t.Errorf("empty signature fired: %v", labels)
	}
}

func TestLabelsHelpers(t *testing.T) {
	e := NewEngine("IDS", []Signature{
		{ThreatID: "T1", Server: "evil.com", URIFile: "news.php"},
		{ThreatID: "T1", Server: "evil2.com", URIFile: "file.txt"},
		{ThreatID: "T2", Server: "evil.com", URIFile: "news.php"},
	})
	labels := e.Scan(testIndex())
	servers := labels.Servers()
	if len(servers) != 2 || servers[0] != "evil.com" {
		t.Errorf("Servers = %v", servers)
	}
	groups := labels.ThreatGroups()
	if len(groups["T1"]) != 2 {
		t.Errorf("T1 group = %v", groups["T1"])
	}
	if len(groups["T2"]) != 1 || groups["T2"][0] != "evil.com" {
		t.Errorf("T2 group = %v", groups["T2"])
	}
}

func TestDuplicateThreatDeduped(t *testing.T) {
	e := NewEngine("IDS", []Signature{
		{ThreatID: "T", Server: "evil.com", URIFile: "news.php"},
		{ThreatID: "T", Server: "evil.com", UserAgent: "Internet Exploder"},
	})
	labels := e.Scan(testIndex())
	if got := labels["evil.com"]; len(got) != 1 {
		t.Errorf("labels = %v, want single T", got)
	}
}

func TestBlacklist(t *testing.T) {
	b := NewBlacklist("MDL", []string{"evil.com", "bad.net"})
	if !b.Contains("evil.com") || b.Contains("good.com") {
		t.Error("blacklist membership wrong")
	}
}

func TestBlacklistSetPolicy(t *testing.T) {
	bs := NewBlacklistSet()
	bs.Direct = append(bs.Direct,
		NewBlacklist("MDL", []string{"direct.com"}),
		NewBlacklist("Phishtank", []string{"phish.com"}))
	bs.AggregatedHits["agg1.com"] = 1
	bs.AggregatedHits["agg2.com"] = 2
	if !bs.Confirmed("direct.com") {
		t.Error("direct listing not confirmed")
	}
	if !bs.Confirmed("phish.com") {
		t.Error("second direct list not confirmed")
	}
	if bs.Confirmed("agg1.com") {
		t.Error("single aggregator hit confirmed (needs >= 2)")
	}
	if !bs.Confirmed("agg2.com") {
		t.Error("double aggregator hit not confirmed")
	}
	if bs.Confirmed("unknown.com") {
		t.Error("unknown server confirmed")
	}
	src := bs.Sources("direct.com")
	if len(src) != 1 || src[0] != "MDL" {
		t.Errorf("Sources = %v", src)
	}
}

func TestBlacklistSetDefaultMin(t *testing.T) {
	bs := &BlacklistSet{AggregatedHits: map[string]int{"x.com": 2}}
	if !bs.Confirmed("x.com") {
		t.Error("zero MinAggregatedHits should default to 2")
	}
}
