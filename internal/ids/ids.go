// Package ids provides the ground-truth labelling oracles used to evaluate
// SMASH: a signature-matching intrusion detection engine with two frozen
// signature snapshots (standing in for the paper's commercial IDS with early
// 2012 and June 2013 signature sets) and a collection of blacklist services
// (standing in for Malware Domain List, Phishtank, ZeuS Tracker, etc.),
// including a WhatIsMyIPAddress-style aggregator that requires at least two
// member-list hits to confirm a server.
//
// The paper uses these services only as labelling oracles with known
// coverage gaps; simulating them with controlled coverage reproduces the
// evaluation's IDS-total / IDS-partial / Blacklist / New-Server accounting
// (see DESIGN.md substitution table).
package ids

import (
	"sort"

	"smash/internal/trace"
)

// Signature is one IDS rule: it fires on a server when the server matches
// every non-empty field. URIFile matches against the server's observed URI
// files; UserAgent against observed User-Agent strings.
type Signature struct {
	// ThreatID names the threat the signature detects (e.g. "Bagle").
	ThreatID string
	// Server is the exact server key to match; empty matches any server.
	Server string
	// URIFile is the exact URI file to require; empty matches any.
	URIFile string
	// UserAgent is the exact User-Agent to require; empty matches any.
	UserAgent string
}

// matches reports whether the signature fires on the server's traffic.
func (s *Signature) matches(key string, info *trace.ServerInfo) bool {
	if s.Server != "" && s.Server != key {
		return false
	}
	if s.URIFile != "" && !info.HasFile(s.URIFile) {
		return false
	}
	if s.UserAgent != "" && !info.HasUserAgent(s.UserAgent) {
		return false
	}
	// A signature with no constraining field never fires.
	return s.Server != "" || s.URIFile != "" || s.UserAgent != ""
}

// Engine is a signature IDS with a frozen rule set.
type Engine struct {
	name     string
	byServer map[string][]Signature
	generic  []Signature // signatures without a server constraint
}

// NewEngine builds an engine named name over the given signatures.
func NewEngine(name string, sigs []Signature) *Engine {
	e := &Engine{name: name, byServer: make(map[string][]Signature)}
	for _, s := range sigs {
		if s.Server != "" {
			e.byServer[s.Server] = append(e.byServer[s.Server], s)
		} else {
			e.generic = append(e.generic, s)
		}
	}
	return e
}

// Name returns the engine's label (e.g. "IDS2012").
func (e *Engine) Name() string { return e.name }

// RuleCount reports the number of loaded signatures.
func (e *Engine) RuleCount() int {
	n := len(e.generic)
	for _, sigs := range e.byServer {
		n += len(sigs)
	}
	return n
}

// Labels maps server key -> sorted threat IDs that fired on it.
type Labels map[string][]string

// Detected reports whether any signature fired on the server.
func (l Labels) Detected(server string) bool { return len(l[server]) > 0 }

// Servers returns the sorted list of labelled servers.
func (l Labels) Servers() []string {
	out := make([]string, 0, len(l))
	for s := range l {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// ThreatGroups groups labelled servers by threat ID — the paper's ground
// truth for false-negative analysis (servers sharing a threat identifier
// are assumed to belong to one malicious campaign).
func (l Labels) ThreatGroups() map[string][]string {
	groups := make(map[string][]string)
	for server, threats := range l {
		for _, t := range threats {
			groups[t] = append(groups[t], server)
		}
	}
	for t := range groups {
		sort.Strings(groups[t])
	}
	return groups
}

// Scan runs the engine over an aggregated traffic index and returns the
// fired labels.
func (e *Engine) Scan(idx *trace.Index) Labels {
	labels := make(Labels)
	for key, info := range idx.Servers {
		var fired []string
		for _, s := range e.byServer[key] {
			if s.matches(key, info) {
				fired = append(fired, s.ThreatID)
			}
		}
		for _, s := range e.generic {
			if s.matches(key, info) {
				fired = append(fired, s.ThreatID)
			}
		}
		if len(fired) > 0 {
			sort.Strings(fired)
			fired = dedupSorted(fired)
			labels[key] = fired
		}
	}
	return labels
}

func dedupSorted(s []string) []string {
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// Blacklist is one blacklist service: a named set of known-bad servers.
type Blacklist struct {
	// Name identifies the service (e.g. "MalwareDomainList").
	Name string
	// Servers is the blacklisted server set.
	Servers map[string]struct{}
}

// NewBlacklist builds a blacklist from a server list.
func NewBlacklist(name string, servers []string) *Blacklist {
	set := make(map[string]struct{}, len(servers))
	for _, s := range servers {
		set[s] = struct{}{}
	}
	return &Blacklist{Name: name, Servers: set}
}

// Contains reports whether the server is blacklisted.
func (b *Blacklist) Contains(server string) bool {
	_, ok := b.Servers[server]
	return ok
}

// BlacklistSet models the paper's verification policy: a server is
// confirmed malicious if any direct blacklist lists it, or if at least
// MinAggregatedHits of the aggregator's member lists report it
// (WhatIsMyIPAddress integrates 78 lists and the paper requires >= 2).
type BlacklistSet struct {
	// Direct holds the individually trusted blacklists.
	Direct []*Blacklist
	// AggregatedHits maps server -> number of aggregator member lists
	// reporting it.
	AggregatedHits map[string]int
	// MinAggregatedHits is the aggregator confirmation threshold
	// (default 2 when zero).
	MinAggregatedHits int
}

// NewBlacklistSet returns an empty set with the default aggregator policy.
func NewBlacklistSet() *BlacklistSet {
	return &BlacklistSet{AggregatedHits: make(map[string]int), MinAggregatedHits: 2}
}

// Confirmed reports whether the policy confirms the server as malicious.
func (bs *BlacklistSet) Confirmed(server string) bool {
	for _, b := range bs.Direct {
		if b.Contains(server) {
			return true
		}
	}
	min := bs.MinAggregatedHits
	if min <= 0 {
		min = 2
	}
	return bs.AggregatedHits[server] >= min
}

// Sources returns the names of direct lists containing the server, sorted.
func (bs *BlacklistSet) Sources(server string) []string {
	var out []string
	for _, b := range bs.Direct {
		if b.Contains(server) {
			out = append(out, b.Name)
		}
	}
	sort.Strings(out)
	return out
}
