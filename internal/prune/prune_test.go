package prune

import (
	"testing"
	"time"

	"smash/internal/correlate"
	"smash/internal/trace"
	"smash/internal/webprobe"
	"smash/internal/whois"
)

func susp(servers ...string) []correlate.SuspiciousASH {
	return []correlate.SuspiciousASH{{Servers: servers, Score: 1.5}}
}

// indexFromReqs builds an index from (client, host, ip, path, referrer).
func indexFromReqs(rows [][5]string) *trace.Index {
	tr := &trace.Trace{}
	for _, r := range rows {
		tr.Requests = append(tr.Requests, trace.Request{
			Time: time.Unix(0, 0), Client: r[0], Host: r[1], ServerIP: r[2],
			Path: r[3], Referrer: r[4], Status: 200,
		})
	}
	return trace.BuildIndex(tr)
}

func TestReferrerGroupCollapsed(t *testing.T) {
	// ad1/ad2/ad3 are embedded in landing.com pages: all their requests
	// carry the landing referrer. The group collapses to landing.com alone
	// and is then dropped (single server).
	idx := indexFromReqs([][5]string{
		{"c1", "ad1.com", "1.1.1.1", "/pixel.gif", "landing.com"},
		{"c1", "ad2.com", "1.1.1.2", "/pixel.gif", "landing.com"},
		{"c1", "ad3.com", "1.1.1.3", "/pixel.gif", "landing.com"},
		{"c2", "ad1.com", "1.1.1.1", "/pixel.gif", "landing.com"},
		{"c2", "ad2.com", "1.1.1.2", "/pixel.gif", "landing.com"},
		{"c2", "ad3.com", "1.1.1.3", "/pixel.gif", "landing.com"},
	})
	out, st := Prune(susp("ad1.com", "ad2.com", "ad3.com"), idx, Options{})
	if len(out) != 0 {
		t.Errorf("referrer group not dropped: %+v", out)
	}
	if st.ReferrerGroups != 1 || st.Dropped != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReferrerGroupPartial(t *testing.T) {
	// Two members referred by a landing page, two genuinely independent
	// malicious servers: the herd survives with landing + the two others.
	idx := indexFromReqs([][5]string{
		{"c1", "ad1.com", "1.1.1.1", "/p.gif", "landing.com"},
		{"c1", "ad2.com", "1.1.1.2", "/p.gif", "landing.com"},
		{"c1", "evil1.com", "9.9.9.9", "/login.php", ""},
		{"c1", "evil2.com", "9.9.9.9", "/login.php", ""},
	})
	out, st := Prune(susp("ad1.com", "ad2.com", "evil1.com", "evil2.com"), idx, Options{})
	if len(out) != 1 {
		t.Fatalf("herds = %d, want 1", len(out))
	}
	got := out[0].Servers
	want := []string{"evil1.com", "evil2.com", "landing.com"}
	if len(got) != len(want) {
		t.Fatalf("servers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("servers = %v, want %v", got, want)
		}
	}
	if st.ReferrerGroups != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSingleReferredMemberKept(t *testing.T) {
	// Only one member referred by some landing page: not a referrer group,
	// member is kept.
	idx := indexFromReqs([][5]string{
		{"c1", "a.com", "1.1.1.1", "/x.php", "portal.com"},
		{"c1", "b.com", "1.1.1.1", "/x.php", ""},
	})
	out, _ := Prune(susp("a.com", "b.com"), idx, Options{})
	if len(out) != 1 || len(out[0].Servers) != 2 {
		t.Errorf("herd changed unexpectedly: %+v", out)
	}
}

func TestRedirectionChainCollapsed(t *testing.T) {
	// r1 -> r2 -> landing.com; all share an IP, so the chain collapses to
	// the landing server; evil.com is untouched.
	idx := indexFromReqs([][5]string{
		{"c1", "r1.com", "5.5.5.5", "/go", ""},
		{"c1", "r2.com", "5.5.5.5", "/go", ""},
		{"c1", "landing.com", "5.5.5.5", "/home", ""},
		{"c1", "evil.com", "9.9.9.9", "/login.php", ""},
	})
	prober := webprobe.NewMapProber()
	prober.Redirects["r1.com"] = "r2.com"
	prober.Redirects["r2.com"] = "landing.com"
	out, st := Prune(susp("evil.com", "landing.com", "r1.com", "r2.com"), idx, Options{Prober: prober})
	if len(out) != 1 {
		t.Fatalf("herds = %d, want 1", len(out))
	}
	got := out[0].Servers
	want := []string{"evil.com", "landing.com"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("servers = %v, want %v", got, want)
	}
	if st.RedirectGroups != 1 {
		t.Errorf("stats = %+v", st)
	}
	if out[0].ReplacedRedirect != 2 {
		t.Errorf("ReplacedRedirect = %d, want 2", out[0].ReplacedRedirect)
	}
}

func TestRedirectionWithoutSharingKept(t *testing.T) {
	// A redirect between servers that share nothing (different IPs, files,
	// no whois) must NOT collapse — the sharing condition gates replacement.
	idx := indexFromReqs([][5]string{
		{"c1", "a.com", "1.1.1.1", "/x.php", ""},
		{"c1", "b.com", "2.2.2.2", "/y.php", ""},
	})
	prober := webprobe.NewMapProber()
	prober.Redirects["a.com"] = "b.com"
	out, _ := Prune(susp("a.com", "b.com"), idx, Options{Prober: prober})
	if len(out) != 1 || len(out[0].Servers) != 2 {
		t.Errorf("unrelated redirect collapsed: %+v", out)
	}
}

func TestRedirectionSharedWhoisCollapses(t *testing.T) {
	idx := indexFromReqs([][5]string{
		{"c1", "a.com", "1.1.1.1", "/x.php", ""},
		{"c1", "b.com", "2.2.2.2", "/y.php", ""},
		{"c1", "other.com", "3.3.3.3", "/z.php", ""},
	})
	reg := whois.NewMapRegistry()
	reg.Add(whois.Record{Domain: "a.com", Phone: "+7", Address: "Evil St"})
	reg.Add(whois.Record{Domain: "b.com", Phone: "+7", Address: "Evil St"})
	prober := webprobe.NewMapProber()
	prober.Redirects["a.com"] = "b.com"
	out, _ := Prune(susp("a.com", "b.com", "other.com"), idx, Options{Prober: prober, Whois: reg})
	if len(out) != 1 {
		t.Fatalf("out = %+v", out)
	}
	got := out[0].Servers
	if len(got) != 2 || got[0] != "b.com" || got[1] != "other.com" {
		t.Errorf("servers = %v, want [b.com other.com]", got)
	}
}

func TestRedirectCycleTerminates(t *testing.T) {
	idx := indexFromReqs([][5]string{
		{"c1", "a.com", "1.1.1.1", "/x", ""},
		{"c1", "b.com", "1.1.1.1", "/x", ""},
	})
	prober := webprobe.NewMapProber()
	prober.Redirects["a.com"] = "b.com"
	prober.Redirects["b.com"] = "a.com"
	out, _ := Prune(susp("a.com", "b.com"), idx, Options{Prober: prober})
	// a -> b (stops: a seen), b -> a (stops: b seen); both collapse to the
	// other and dedupe to {a, b}. The key property: no infinite loop.
	if len(out) != 1 {
		t.Fatalf("out = %+v", out)
	}
}

func TestCleanHerdUntouched(t *testing.T) {
	idx := indexFromReqs([][5]string{
		{"bot1", "cc1.com", "9.9.9.1", "/login.php", ""},
		{"bot1", "cc2.com", "9.9.9.2", "/login.php", ""},
		{"bot2", "cc1.com", "9.9.9.1", "/login.php", ""},
		{"bot2", "cc2.com", "9.9.9.2", "/login.php", ""},
	})
	out, st := Prune(susp("cc1.com", "cc2.com"), idx, Options{})
	if len(out) != 1 || len(out[0].Servers) != 2 {
		t.Fatalf("clean herd modified: %+v", out)
	}
	if st.ReferrerGroups != 0 || st.RedirectGroups != 0 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.In != 1 || st.Out != 1 {
		t.Errorf("in/out = %d/%d", st.In, st.Out)
	}
}

func TestUnknownServerInHerd(t *testing.T) {
	// A herd member absent from the index (edge case) must not panic.
	idx := indexFromReqs([][5]string{
		{"c1", "known.com", "1.1.1.1", "/x", ""},
	})
	out, _ := Prune(susp("known.com", "ghost.com"), idx, Options{})
	if len(out) != 1 || len(out[0].Servers) != 2 {
		t.Errorf("out = %+v", out)
	}
}
