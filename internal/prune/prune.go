// Package prune implements the noise-pruning stage of SMASH (§III-D). Two
// kinds of benign herds survive correlation and must be collapsed:
//
//   - Redirection groups: servers on one redirection chain share exactly the
//     same clients, IP addresses and sometimes URI files. When the chain
//     members also share IPs, URI files or whois records, the whole chain is
//     replaced by its landing (final) server rather than dropped.
//   - Referrer groups: servers embedded in or referred by a common landing
//     page share the landing page's visitors. All members referred by the
//     same landing server are replaced by that landing server.
//
// After replacement, herds left with fewer than two distinct servers are
// removed from the candidate set.
package prune

import (
	"sort"

	"smash/internal/correlate"
	"smash/internal/trace"
	"smash/internal/webprobe"
	"smash/internal/whois"
)

// Options tunes pruning.
type Options struct {
	// MinReferrerShare is the minimum fraction of a server's requests that
	// must come from one referrer for it to count as "referred by" that
	// landing server. Zero uses DefaultMinReferrerShare.
	MinReferrerShare float64
	// Prober answers redirection-chain questions; nil uses NullProber
	// (passive-only pruning).
	Prober webprobe.Prober
	// Whois resolves registration records for the shared-whois test on
	// redirection chains; may be nil.
	Whois whois.Registry
}

// DefaultMinReferrerShare requires a dominant referrer to account for at
// least 80% of a server's requests.
const DefaultMinReferrerShare = 0.8

func (o Options) normalized() Options {
	if o.MinReferrerShare == 0 {
		o.MinReferrerShare = DefaultMinReferrerShare
	}
	if o.Prober == nil {
		o.Prober = webprobe.NullProber{}
	}
	return o
}

// PrunedASH is a candidate malicious herd after noise pruning.
type PrunedASH struct {
	// Suspicious is the correlated herd this candidate came from.
	Suspicious *correlate.SuspiciousASH
	// Servers is the surviving (possibly replaced) sorted server list.
	Servers []string
	// ReplacedReferrer counts members replaced via referrer grouping.
	ReplacedReferrer int
	// ReplacedRedirect counts members replaced via redirection chains.
	ReplacedRedirect int
}

// Stats summarizes what pruning did across all herds.
type Stats struct {
	// In and Out count herds before/after pruning.
	In, Out int
	// ReferrerGroups counts herds where referrer replacement fired.
	ReferrerGroups int
	// RedirectGroups counts herds where redirection replacement fired.
	RedirectGroups int
	// Dropped counts herds removed entirely (one or zero servers left).
	Dropped int
}

// Prune applies §III-D to the correlated herds.
func Prune(herds []correlate.SuspiciousASH, idx *trace.Index, opts Options) ([]PrunedASH, Stats) {
	opts = opts.normalized()
	var out []PrunedASH
	st := Stats{In: len(herds)}
	for i := range herds {
		h := &herds[i]
		p := pruneOne(h, idx, opts)
		if p.ReplacedReferrer > 0 {
			st.ReferrerGroups++
		}
		if p.ReplacedRedirect > 0 {
			st.RedirectGroups++
		}
		if len(p.Servers) < 2 {
			st.Dropped++
			continue
		}
		out = append(out, p)
	}
	st.Out = len(out)
	return out, st
}

func pruneOne(h *correlate.SuspiciousASH, idx *trace.Index, opts Options) PrunedASH {
	p := PrunedASH{Suspicious: h}
	members := append([]string(nil), h.Servers...)

	// Referrer grouping: members whose requests are dominated by a common
	// external landing server are collapsed into that landing server.
	byLanding := make(map[string][]string)
	var independent []string
	for _, s := range members {
		info := idx.Servers[s]
		if info == nil {
			independent = append(independent, s)
			continue
		}
		ref, share := info.DominantReferrer()
		if ref != "" && share >= opts.MinReferrerShare && !contains(h.Servers, ref) {
			byLanding[ref] = append(byLanding[ref], s)
			continue
		}
		independent = append(independent, s)
	}
	replaced := independent
	for landing, referred := range byLanding {
		if len(referred) >= 2 {
			// A genuine referrer group: the landing server stands in for
			// all its referred members.
			replaced = append(replaced, landing)
			p.ReplacedReferrer += len(referred)
		} else {
			replaced = append(replaced, referred...)
		}
	}
	members = replaced

	// Redirection chains: members that redirect (per the prober) are walked
	// to their landing. The chain is collapsed only when its members share
	// IPs, URI files or whois records (§III-D's condition), which correlated
	// herds normally do; otherwise members are kept as-is.
	final := members[:0]
	memberSet := make(map[string]struct{}, len(members))
	for _, s := range members {
		memberSet[s] = struct{}{}
	}
	for _, s := range members {
		landing, hops := followChain(s, opts.Prober, 8)
		if hops == 0 || landing == s {
			final = append(final, s)
			continue
		}
		if chainShares(s, landing, idx, opts.Whois) {
			final = append(final, landing)
			p.ReplacedRedirect++
		} else {
			final = append(final, s)
		}
	}

	// Deduplicate and sort.
	seen := make(map[string]struct{}, len(final))
	uniq := final[:0]
	for _, s := range final {
		if _, ok := seen[s]; ok {
			continue
		}
		seen[s] = struct{}{}
		uniq = append(uniq, s)
	}
	sort.Strings(uniq)
	p.Servers = append([]string(nil), uniq...)
	return p
}

// followChain walks redirects from s up to maxHops, returning the landing
// server and the number of hops taken. Cycles terminate at the first repeat.
func followChain(s string, prober webprobe.Prober, maxHops int) (string, int) {
	visited := map[string]struct{}{s: {}}
	cur := s
	hops := 0
	for hops < maxHops {
		next, ok := prober.RedirectTarget(cur)
		if !ok || next == "" {
			break
		}
		if _, seen := visited[next]; seen {
			break
		}
		visited[next] = struct{}{}
		cur = next
		hops++
	}
	return cur, hops
}

// chainShares reports whether two servers on a redirection chain share IP
// addresses, URI files, or whois records — the paper's condition for
// replacing a chain by its landing server instead of keeping the members.
func chainShares(a, b string, idx *trace.Index, reg whois.Registry) bool {
	ia, ib := idx.Servers[a], idx.Servers[b]
	if ia != nil && ib != nil {
		for ip := range ia.IPs {
			if _, ok := ib.IPs[ip]; ok {
				return true
			}
		}
		for f := range ia.Files {
			if _, ok := ib.Files[f]; ok {
				return true
			}
		}
	}
	if reg != nil {
		ra, okA := reg.Lookup(a)
		rb, okB := reg.Lookup(b)
		if okA && okB && whois.SharedFields(ra, rb) >= whois.MinSharedFields {
			return true
		}
	}
	// A landing server never observed in the trace (external landing) still
	// legitimately stands in for the chain.
	return ib == nil
}

func contains(sorted []string, s string) bool {
	i := sort.SearchStrings(sorted, s)
	return i < len(sorted) && sorted[i] == s
}
