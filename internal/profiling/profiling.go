// Package profiling wires the standard pprof CPU/heap profiles into the
// command-line daemons (-cpuprofile / -memprofile on smashd and
// smashbench), so hot paths can be captured in the field and fed straight
// into `go tool pprof`.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile at cpuPath (if non-empty) and returns a stop
// function that ends it and, when memPath is non-empty, writes a heap
// profile taken after a final GC — the retention picture, not transient
// garbage. The stop function is safe to call exactly once, typically via
// defer around the daemon's whole run.
func Start(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}
