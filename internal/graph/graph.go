// Package graph provides the weighted undirected graph model and the Louvain
// community-detection algorithm (Blondel, Guillaume, Lambiotte, Lefebvre,
// "Fast unfolding of communities in large networks", J. Stat. Mech. 2008)
// that SMASH uses to extract Associated Server Herds from per-dimension
// similarity graphs (§III-B1 of the paper).
package graph

import (
	"fmt"
	"slices"

	"smash/internal/stats"
)

type edge struct {
	to int32
	w  float64
}

// Graph is a weighted undirected graph over nodes 0..n-1. Parallel AddEdge
// calls for the same pair accumulate weight.
type Graph struct {
	adj       [][]edge
	selfLoop  []float64
	sumWeight float64 // sum of all edge weights, each undirected edge once
}

// New returns a graph with n isolated nodes.
func New(n int) *Graph {
	return &Graph{
		adj:      make([][]edge, n),
		selfLoop: make([]float64, n),
	}
}

// N reports the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// AddEdge adds weight w between u and v. Self-edges are stored as self-loops.
// Adding an edge with w <= 0 or out-of-range endpoints returns an error.
func (g *Graph) AddEdge(u, v int, w float64) error {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, len(g.adj))
	}
	if w <= 0 {
		return fmt.Errorf("graph: edge (%d,%d) weight %g must be positive", u, v, w)
	}
	if u == v {
		g.selfLoop[u] += w
		g.sumWeight += w
		return nil
	}
	g.adj[u] = append(g.adj[u], edge{to: int32(v), w: w})
	g.adj[v] = append(g.adj[v], edge{to: int32(u), w: w})
	g.sumWeight += w
	return nil
}

// Degree returns the weighted degree of node u: the sum of incident edge
// weights, with self-loops counted twice (the Louvain convention).
func (g *Graph) Degree(u int) float64 {
	d := 2 * g.selfLoop[u]
	for _, e := range g.adj[u] {
		d += e.w
	}
	return d
}

// EdgeCount returns the number of stored undirected non-loop edge entries
// (parallel edges counted separately).
func (g *Graph) EdgeCount() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// TotalWeight returns the sum of all edge weights (each undirected edge
// counted once, self-loops once).
func (g *Graph) TotalWeight() float64 { return g.sumWeight }

// Neighbors calls fn for each (neighbor, weight) pair of u. A neighbor may
// be reported multiple times if parallel edges were added.
func (g *Graph) Neighbors(u int, fn func(v int, w float64)) {
	for _, e := range g.adj[u] {
		fn(int(e.to), e.w)
	}
}

// ConnectedComponents returns the node sets of the graph's connected
// components (ignoring isolated self-loops-only semantics: every node is in
// exactly one component). Components and their members are sorted.
func (g *Graph) ConnectedComponents() [][]int {
	n := g.N()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var stack []int
	next := 0
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = next
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.adj[u] {
				if comp[e.to] < 0 {
					comp[e.to] = next
					stack = append(stack, int(e.to))
				}
			}
		}
		next++
	}
	out := make([][]int, next)
	for v, c := range comp {
		out[c] = append(out[c], v)
	}
	return out
}

// Modularity computes the Newman modularity Q of a community assignment
// (nodes with the same label are one community), Q in [-1, 1].
func (g *Graph) Modularity(community []int) float64 {
	m2 := 2 * g.sumWeight
	if m2 == 0 {
		return 0
	}
	in := make(map[int]float64)  // community -> 2*intra-community weight
	tot := make(map[int]float64) // community -> sum of member degrees
	for u := range g.adj {
		cu := community[u]
		tot[cu] += g.Degree(u)
		in[cu] += 2 * g.selfLoop[u]
		for _, e := range g.adj[u] {
			if community[e.to] == cu {
				in[cu] += e.w // visited from both sides -> counts twice
			}
		}
	}
	q := 0.0
	for c, w := range in {
		t := tot[c]
		q += w/m2 - (t/m2)*(t/m2)
	}
	return q
}

// Louvain runs the multi-level Louvain method and returns the community
// label of each node. Labels are compacted to 0..k-1. The node visit order
// is shuffled deterministically from seed, making results reproducible for a
// fixed (graph, seed) pair.
func (g *Graph) Louvain(seed int64) []int {
	n := g.N()
	assignment := make([]int, n)
	for i := range assignment {
		assignment[i] = i
	}
	work := g
	level := 0
	for {
		moved, local := work.louvainLocal(stats.DeriveSeed(seed, fmt.Sprintf("louvain-%d", level)))
		// Project the local labels back onto the original nodes.
		for i := range assignment {
			assignment[i] = local[assignment[i]]
		}
		if !moved {
			break
		}
		var k int
		work, k = work.aggregate(local)
		if k == work.N() && k == n {
			break
		}
		level++
		if level > 64 { // defensive bound; Louvain converges in a few levels
			break
		}
	}
	return compactLabels(assignment)
}

// louvainLocal performs one local-move phase. It returns whether any node
// changed community and the (compacted) community label of each node.
//
// The per-node neighbor-community weights accumulate into a dense scratch
// array indexed by community id (community ids stay < n), with a touched
// list swept in sorted order — the candidate visit order is therefore the
// same sorted-community order the original map-based implementation used,
// keeping results identical while removing all hashing and allocation from
// the innermost loop.
func (g *Graph) louvainLocal(seed int64) (bool, []int) {
	n := g.N()
	community := make([]int, n)
	degree := make([]float64, n)
	tot := make([]float64, n) // community -> sum of member degrees
	for i := 0; i < n; i++ {
		community[i] = i
		degree[i] = g.Degree(i)
		tot[i] = degree[i]
	}
	m2 := 2 * g.sumWeight
	if m2 == 0 {
		return false, compactLabels(community)
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng := stats.NewRand(seed, "order")
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })

	neighW := make([]float64, n) // community -> weight from u (dense scratch)
	seen := make([]bool, n)      // community touched by u's neighbors
	touched := make([]int32, 0, 64)
	improvedAny := false
	for pass := 0; pass < 100; pass++ {
		improved := false
		for _, u := range order {
			cu := community[u]
			// Weight from u to each neighboring community.
			for _, e := range g.adj[u] {
				c := community[e.to]
				if !seen[c] {
					seen[c] = true
					touched = append(touched, int32(c))
				}
				neighW[c] += e.w
			}
			// Remove u from its community.
			tot[cu] -= degree[u]
			// Best community by modularity gain. The constant parts of
			// the gain cancel, so compare k_i,in - tot_c*k_i/m2.
			bestC, bestGain := cu, neighW[cu]-tot[cu]*degree[u]/m2
			// Deterministic iteration: candidates in sorted order.
			slices.Sort(touched)
			for _, c32 := range touched {
				c := int(c32)
				gain := neighW[c] - tot[c]*degree[u]/m2
				if gain > bestGain+1e-12 {
					bestC, bestGain = c, gain
				}
			}
			tot[bestC] += degree[u]
			if bestC != cu {
				community[u] = bestC
				improved = true
				improvedAny = true
			}
			for _, c := range touched {
				neighW[c] = 0
				seen[c] = false
			}
			touched = touched[:0]
		}
		if !improved {
			break
		}
	}
	return improvedAny, compactLabels(community)
}

// aggregate builds the community super-graph: one node per community, edge
// weights summed, intra-community weight folded into self-loops. It returns
// the new graph and the number of communities.
func (g *Graph) aggregate(community []int) (*Graph, int) {
	k := 0
	for _, c := range community {
		if c+1 > k {
			k = c + 1
		}
	}
	agg := New(k)
	for u := range g.adj {
		cu := community[u]
		if g.selfLoop[u] > 0 {
			agg.selfLoop[cu] += g.selfLoop[u]
			agg.sumWeight += g.selfLoop[u]
		}
	}
	type pairKey struct{ a, b int }
	acc := make(map[pairKey]float64)
	for u := range g.adj {
		cu := community[u]
		for _, e := range g.adj[u] {
			cv := community[e.to]
			if int(e.to) < u {
				continue // visit each undirected edge once
			}
			if cu == cv {
				agg.selfLoop[cu] += e.w
				agg.sumWeight += e.w
				continue
			}
			a, b := cu, cv
			if a > b {
				a, b = b, a
			}
			acc[pairKey{a, b}] += e.w
		}
	}
	for pk, w := range acc {
		agg.adj[pk.a] = append(agg.adj[pk.a], edge{to: int32(pk.b), w: w})
		agg.adj[pk.b] = append(agg.adj[pk.b], edge{to: int32(pk.a), w: w})
		agg.sumWeight += w
	}
	return agg, k
}

// compactLabels renumbers arbitrary labels to 0..k-1 preserving first-seen
// order.
func compactLabels(labels []int) []int {
	remap := make(map[int]int)
	out := make([]int, len(labels))
	for i, l := range labels {
		id, ok := remap[l]
		if !ok {
			id = len(remap)
			remap[l] = id
		}
		out[i] = id
	}
	return out
}

// Communities groups node ids by community label; members are in ascending
// node order, communities ordered by label.
func Communities(labels []int) [][]int {
	k := 0
	for _, l := range labels {
		if l+1 > k {
			k = l + 1
		}
	}
	out := make([][]int, k)
	for v, l := range labels {
		out[l] = append(out[l], v)
	}
	return out
}

// SubgraphDensity computes the density of the node set within g as defined
// by the paper's w(C): 2|e| / (|v|·(|v|-1)), where |e| counts distinct
// member pairs connected by at least one edge. Singleton sets have density 0.
func (g *Graph) SubgraphDensity(members []int) float64 {
	v := len(members)
	if v < 2 {
		return 0
	}
	in := make(map[int]bool, v)
	for _, u := range members {
		in[u] = true
	}
	type pairKey struct{ a, b int }
	seen := make(map[pairKey]bool)
	for _, u := range members {
		for _, e := range g.adj[u] {
			t := int(e.to)
			if !in[t] || t == u {
				continue
			}
			a, b := u, t
			if a > b {
				a, b = b, a
			}
			seen[pairKey{a, b}] = true
		}
	}
	return 2 * float64(len(seen)) / (float64(v) * float64(v-1))
}
