package graph

import (
	"math"
	"testing"
	"testing/quick"

	"smash/internal/stats"
)

// clique adds a complete subgraph over the given nodes with weight w.
func clique(t *testing.T, g *Graph, nodes []int, w float64) {
	t.Helper()
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if err := g.AddEdge(nodes[i], nodes[j], w); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 3, 1); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := g.AddEdge(-1, 0, 1); err == nil {
		t.Error("negative node accepted")
	}
	if err := g.AddEdge(0, 1, 0); err == nil {
		t.Error("zero-weight edge accepted")
	}
	if err := g.AddEdge(0, 1, -2); err == nil {
		t.Error("negative-weight edge accepted")
	}
}

func TestDegreeAndWeights(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 2, 1); err != nil { // self-loop
		t.Fatal(err)
	}
	if got := g.Degree(1); got != 5 {
		t.Errorf("Degree(1) = %g, want 5", got)
	}
	if got := g.Degree(2); got != 5 { // 3 + 2*selfloop
		t.Errorf("Degree(2) = %g, want 5", got)
	}
	if got := g.TotalWeight(); got != 6 {
		t.Errorf("TotalWeight = %g, want 6", got)
	}
	if got := g.EdgeCount(); got != 2 {
		t.Errorf("EdgeCount = %g, want 2", float64(got))
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(6)
	clique(t, g, []int{0, 1, 2}, 1)
	clique(t, g, []int{3, 4}, 1)
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[3] != 1 || sizes[2] != 1 || sizes[1] != 1 {
		t.Errorf("component sizes wrong: %v", comps)
	}
}

func TestLouvainTwoCliques(t *testing.T) {
	g := New(8)
	clique(t, g, []int{0, 1, 2, 3}, 1)
	clique(t, g, []int{4, 5, 6, 7}, 1)
	if err := g.AddEdge(3, 4, 0.1); err != nil { // weak bridge
		t.Fatal(err)
	}
	labels := g.Louvain(1)
	if labels[0] != labels[1] || labels[1] != labels[2] || labels[2] != labels[3] {
		t.Errorf("first clique split: %v", labels)
	}
	if labels[4] != labels[5] || labels[5] != labels[6] || labels[6] != labels[7] {
		t.Errorf("second clique split: %v", labels)
	}
	if labels[0] == labels[4] {
		t.Errorf("cliques merged despite weak bridge: %v", labels)
	}
}

func TestLouvainDeterministic(t *testing.T) {
	g := New(20)
	rng := stats.NewRand(3, "graph")
	for i := 0; i < 60; i++ {
		u, v := rng.Intn(20), rng.Intn(20)
		if u != v {
			if err := g.AddEdge(u, v, 1+rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
	}
	a := g.Louvain(7)
	b := g.Louvain(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic Louvain at node %d: %v vs %v", i, a, b)
		}
	}
}

func TestLouvainImprovesModularity(t *testing.T) {
	// Property: on random graphs the Louvain partition's modularity must be
	// >= the singleton partition's modularity (which is <= 0).
	f := func(seed int64, edges []uint16) bool {
		n := 16
		g := New(n)
		for _, e := range edges {
			u, v := int(e>>8)%n, int(e&0xff)%n
			if u != v {
				_ = g.AddEdge(u, v, 1)
			}
		}
		labels := g.Louvain(seed)
		singleton := make([]int, n)
		for i := range singleton {
			singleton[i] = i
		}
		return g.Modularity(labels) >= g.Modularity(singleton)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLouvainRing(t *testing.T) {
	// Ring of 4 cliques of 5 nodes: the canonical Louvain test topology.
	g := New(20)
	for c := 0; c < 4; c++ {
		nodes := make([]int, 5)
		for i := range nodes {
			nodes[i] = c*5 + i
		}
		clique(t, g, nodes, 1)
	}
	for c := 0; c < 4; c++ {
		if err := g.AddEdge(c*5, ((c+1)%4)*5, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	labels := g.Louvain(11)
	groups := Communities(labels)
	if len(groups) != 4 {
		t.Fatalf("found %d communities, want 4: %v", len(groups), labels)
	}
	q := g.Modularity(labels)
	if q < 0.5 {
		t.Errorf("modularity %g too low for ring of cliques", q)
	}
}

func TestModularityEmptyGraph(t *testing.T) {
	g := New(4)
	if got := g.Modularity([]int{0, 1, 2, 3}); got != 0 {
		t.Errorf("empty graph modularity = %g, want 0", got)
	}
	labels := g.Louvain(5)
	if len(labels) != 4 {
		t.Fatalf("labels = %v", labels)
	}
}

func TestModularityBounds(t *testing.T) {
	f := func(seed int64, edges []uint16, labelSeed uint8) bool {
		n := 12
		g := New(n)
		for _, e := range edges {
			u, v := int(e>>8)%n, int(e&0xff)%n
			if u != v {
				_ = g.AddEdge(u, v, 1)
			}
		}
		rng := stats.NewRand(int64(labelSeed), "labels")
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(4)
		}
		q := g.Modularity(labels)
		return q >= -1-1e-9 && q <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSubgraphDensity(t *testing.T) {
	g := New(5)
	clique(t, g, []int{0, 1, 2}, 1)
	if got := g.SubgraphDensity([]int{0, 1, 2}); math.Abs(got-1) > 1e-12 {
		t.Errorf("triangle density = %g, want 1", got)
	}
	if got := g.SubgraphDensity([]int{0, 1, 2, 3}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("triangle+isolate density = %g, want 0.5", got)
	}
	if got := g.SubgraphDensity([]int{4}); got != 0 {
		t.Errorf("singleton density = %g, want 0", got)
	}
	// Parallel edges must not inflate density.
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if got := g.SubgraphDensity([]int{0, 1, 2}); math.Abs(got-1) > 1e-12 {
		t.Errorf("density with parallel edge = %g, want 1", got)
	}
}

func TestCommunities(t *testing.T) {
	groups := Communities([]int{0, 1, 0, 2, 1})
	if len(groups) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	if len(groups[0]) != 2 || groups[0][0] != 0 || groups[0][1] != 2 {
		t.Errorf("group 0 = %v", groups[0])
	}
}

func TestLouvainSingletonNoise(t *testing.T) {
	// Isolated nodes stay singleton; a dense herd among noise is recovered.
	g := New(30)
	clique(t, g, []int{10, 11, 12, 13, 14, 15}, 1)
	labels := g.Louvain(2)
	herd := labels[10]
	for _, v := range []int{11, 12, 13, 14, 15} {
		if labels[v] != herd {
			t.Errorf("herd member %d has label %d, want %d", v, labels[v], herd)
		}
	}
	for v := 0; v < 10; v++ {
		if labels[v] == herd {
			t.Errorf("isolated node %d joined the herd", v)
		}
	}
}
