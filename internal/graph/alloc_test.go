package graph

import "testing"

// Louvain's local-move phase must not allocate per node: the dense
// community-weight scratch replaced a per-node map + candidate slice +
// sort. Allocations should scale with levels (a handful of slices each),
// not with nodes×passes. This is the -benchmem guard for the miner's
// community-detection hot loop in test form.
func TestLouvainAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc bounds only hold on production builds")
	}
	const n = 600
	g := New(n)
	// Planted partition: 12 communities, dense intra edges, sparse noise.
	state := uint64(2463534242)
	next := func(m int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(m))
	}
	for i := 0; i < 6*n; i++ {
		c := next(12)
		lo, hi := c*n/12, (c+1)*n/12
		u, v := lo+next(hi-lo), lo+next(hi-lo)
		if u != v {
			_ = g.AddEdge(u, v, 1)
		}
	}
	for i := 0; i < n/4; i++ {
		u, v := next(n), next(n)
		if u != v {
			_ = g.AddEdge(u, v, 0.3)
		}
	}
	allocs := testing.AllocsPerRun(5, func() {
		if labels := g.Louvain(7); len(labels) != n {
			t.Fatal("bad labels")
		}
	})
	// Observed ~120 for this graph (per-level slices + aggregation maps).
	// A return to per-node allocation would be tens of thousands.
	if allocs > 600 {
		t.Errorf("Louvain = %.0f allocs, want <= 600 (scratch reuse regressed)", allocs)
	}
}
