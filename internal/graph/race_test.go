//go:build race

package graph

// raceEnabled flags that the race detector is instrumenting allocations;
// the AllocsPerRun guards skip themselves because instrumented runs
// allocate on paths the production build does not.
const raceEnabled = true
