package herd

import (
	"fmt"
	"testing"
	"time"

	"smash/internal/similarity"
	"smash/internal/trace"
	"smash/internal/whois"
)

// campaignIndex builds an index with a malicious herd (nServers contacted by
// the same nBots bots, all requesting file) plus background benign traffic.
func campaignIndex(nServers, nBots, nBenign int) *trace.Index {
	tr := &trace.Trace{}
	for s := 0; s < nServers; s++ {
		host := fmt.Sprintf("evil%d.com", s)
		ip := fmt.Sprintf("9.9.%d.%d", s/250, s%250)
		for b := 0; b < nBots; b++ {
			tr.Requests = append(tr.Requests, trace.Request{
				Time: time.Unix(0, 0), Client: fmt.Sprintf("bot%d", b),
				Host: host, ServerIP: ip, Path: "/login.php", Status: 200,
			})
		}
	}
	for s := 0; s < nBenign; s++ {
		host := fmt.Sprintf("benign%d.com", s)
		// Each benign server gets its own disjoint pair of clients.
		for c := 0; c < 2; c++ {
			tr.Requests = append(tr.Requests, trace.Request{
				Time: time.Unix(0, 0), Client: fmt.Sprintf("user%d-%d", s, c),
				Host: host, ServerIP: fmt.Sprintf("8.8.%d.%d", s/250, s%250),
				Path: fmt.Sprintf("/page%d.html", s), Status: 200,
			})
		}
	}
	return trace.BuildIndex(tr)
}

func TestMineGraphFindsHerd(t *testing.T) {
	idx := campaignIndex(6, 3, 10)
	sg := similarity.BuildClientGraph(idx, similarity.Options{})
	herds := MineGraph(similarity.DimClient, sg, 1)
	if len(herds) != 1 {
		t.Fatalf("got %d herds, want 1: %+v", len(herds), herds)
	}
	h := herds[0]
	if len(h.Servers) != 6 {
		t.Errorf("herd size = %d, want 6: %v", len(h.Servers), h.Servers)
	}
	for _, s := range h.Servers {
		if !h.Contains(s) {
			t.Errorf("Contains(%q) = false for member", s)
		}
	}
	if h.Contains("benign0.com") {
		t.Error("benign server in herd")
	}
	if h.Density <= 0.9 {
		t.Errorf("herd density = %g, want ~1 (identical client sets)", h.Density)
	}
	if h.Dimension != similarity.DimClient {
		t.Errorf("dimension = %q", h.Dimension)
	}
	if h.Key() == "" {
		t.Error("empty key")
	}
}

func TestMineGraphDeterministic(t *testing.T) {
	idx := campaignIndex(5, 3, 20)
	sg := similarity.BuildClientGraph(idx, similarity.Options{})
	a := MineGraph(similarity.DimClient, sg, 42)
	b := MineGraph(similarity.DimClient, sg, 42)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic herd count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Servers) != len(b[i].Servers) {
			t.Fatalf("herd %d size differs", i)
		}
		for j := range a[i].Servers {
			if a[i].Servers[j] != b[i].Servers[j] {
				t.Fatalf("herd %d member %d differs", i, j)
			}
		}
	}
}

func TestNewMinerValidation(t *testing.T) {
	if _, err := NewMiner(nil, nil, 1); err == nil {
		t.Error("nil main dimension accepted")
	}
	main := ClientDimension(similarity.Options{})
	dup := ClientDimension(similarity.Options{})
	if _, err := NewMiner(main, []Dimension{dup}, 1); err == nil {
		t.Error("duplicate dimension accepted")
	}
}

func TestMinerMine(t *testing.T) {
	idx := campaignIndex(5, 3, 8)
	reg := whois.NewMapRegistry()
	for s := 0; s < 5; s++ {
		reg.Add(whois.Record{
			Domain: fmt.Sprintf("evil%d.com", s),
			Phone:  "+7-666", Address: "1 Evil St",
		})
	}
	main := ClientDimension(similarity.Options{})
	secondary := []Dimension{
		FileDimension(similarity.Options{}),
		IPDimension(similarity.Options{}),
		WhoisDimension(reg, similarity.Options{}),
	}
	m, err := NewMiner(main, secondary, 7)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Mine(idx)
	if res.MainDimension != similarity.DimClient {
		t.Errorf("MainDimension = %q", res.MainDimension)
	}
	if len(res.Main) == 0 {
		t.Fatal("no main herds")
	}
	if len(res.Secondary[similarity.DimFile]) == 0 {
		t.Error("no file herds (5 servers share login.php)")
	}
	if len(res.Secondary[similarity.DimWhois]) == 0 {
		t.Error("no whois herds (5 servers share registration)")
	}
	if len(res.Graphs) != 4 {
		t.Errorf("graphs = %d, want 4", len(res.Graphs))
	}
	names := m.SecondaryNames()
	if len(names) != 3 || names[0] != similarity.DimFile {
		t.Errorf("SecondaryNames = %v", names)
	}
}

func TestBuildMembership(t *testing.T) {
	idx := campaignIndex(4, 3, 5)
	m, err := NewMiner(
		ClientDimension(similarity.Options{}),
		[]Dimension{FileDimension(similarity.Options{})}, 3)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Mine(idx)
	mem := BuildMembership(res)
	byDim := mem["evil0.com"]
	if byDim == nil {
		t.Fatal("evil0.com has no membership")
	}
	if byDim[similarity.DimClient] == nil {
		t.Error("evil0.com missing main herd")
	}
	if byDim[similarity.DimFile] == nil {
		t.Error("evil0.com missing file herd")
	}
	if mem["benign0.com"][similarity.DimClient] != nil {
		t.Error("benign server assigned to a client herd")
	}
}

func TestMineGraphEmptyIndex(t *testing.T) {
	idx := trace.NewIndex()
	sg := similarity.BuildClientGraph(idx, similarity.Options{})
	if herds := MineGraph(similarity.DimClient, sg, 1); len(herds) != 0 {
		t.Errorf("empty index produced %d herds", len(herds))
	}
}

func TestMineComponentsBaseline(t *testing.T) {
	idx := campaignIndex(6, 3, 10)
	sg := similarity.BuildClientGraph(idx, similarity.Options{})
	herds := MineComponents(similarity.DimClient, sg, 0)
	if len(herds) == 0 {
		t.Fatal("no component herds")
	}
	found := false
	for _, h := range herds {
		if h.Contains("evil0.com") && h.Contains("evil5.com") {
			found = true
		}
	}
	if !found {
		t.Error("campaign not in one component")
	}
}

func TestSetMineFunc(t *testing.T) {
	idx := campaignIndex(4, 3, 5)
	m, err := NewMiner(ClientDimension(similarity.Options{}), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.SetMineFunc(MineComponents)
	m.SetMineFunc(nil) // nil must be ignored, not panic later
	res := m.Mine(idx)
	if len(res.Main) == 0 {
		t.Error("no herds after strategy swap")
	}
}

func TestSingleClientASHes(t *testing.T) {
	tr := &trace.Trace{}
	add := func(client, host string) {
		tr.Requests = append(tr.Requests, trace.Request{
			Time: time.Unix(0, 0), Client: client, Host: host, Status: 200,
		})
	}
	// lone1 exclusively visits three servers; lone2 only one; shared.com
	// has two clients and must be excluded.
	add("lone1", "a.com")
	add("lone1", "b.com")
	add("lone1", "c.com")
	add("lone2", "d.com")
	add("lone1", "shared.com")
	add("other", "shared.com")
	idx := trace.BuildIndex(tr)
	herds := SingleClientASHes(similarity.DimClient, idx, 10)
	if len(herds) != 1 {
		t.Fatalf("herds = %+v, want exactly one (lone1's)", herds)
	}
	h := herds[0]
	if h.SingleClient != "lone1" || h.ID != 10 || h.Density != 1 {
		t.Errorf("herd meta = %+v", h)
	}
	if len(h.Servers) != 3 || h.Contains("shared.com") || h.Contains("d.com") {
		t.Errorf("herd servers = %v", h.Servers)
	}
}

// TestMineConcurrencyDeterminism: concurrent dimension mining must produce
// byte-identical results across runs (run with -race to also check for
// data races between the dimension builders).
func TestMineConcurrencyDeterminism(t *testing.T) {
	idx := campaignIndex(6, 3, 30)
	reg := whois.NewMapRegistry()
	for s := 0; s < 6; s++ {
		reg.Add(whois.Record{Domain: fmt.Sprintf("evil%d.com", s), Phone: "+7", Address: "X"})
	}
	mk := func() *Result {
		m, err := NewMiner(ClientDimension(similarity.Options{}), []Dimension{
			FileDimension(similarity.Options{}),
			IPDimension(similarity.Options{}),
			WhoisDimension(reg, similarity.Options{}),
		}, 9)
		if err != nil {
			t.Fatal(err)
		}
		return m.Mine(idx)
	}
	a, b := mk(), mk()
	if len(a.Main) != len(b.Main) {
		t.Fatalf("main herd counts differ: %d vs %d", len(a.Main), len(b.Main))
	}
	for dim := range a.Secondary {
		if len(a.Secondary[dim]) != len(b.Secondary[dim]) {
			t.Fatalf("dimension %s herd counts differ", dim)
		}
		for i := range a.Secondary[dim] {
			ha, hb := a.Secondary[dim][i], b.Secondary[dim][i]
			if ha.Key() != hb.Key() || len(ha.Servers) != len(hb.Servers) {
				t.Fatalf("dimension %s herd %d differs", dim, i)
			}
		}
	}
}
