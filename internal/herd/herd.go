// Package herd implements Associated Server Herd mining (§III-B3): each
// dimension's server-similarity graph is partitioned with Louvain community
// detection, and every community with at least two servers becomes an ASH
// for that dimension. The miner keeps a registry of dimensions — the main
// client dimension plus any number of secondary dimensions — mirroring the
// paper's extensibility note (new dimensions "can be easily added").
package herd

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"smash/internal/similarity"
	"smash/internal/trace"
	"smash/internal/whois"
)

// ASH is one Associated Server Herd: a set of servers grouped together by a
// single dimension.
type ASH struct {
	// Dimension is the name of the dimension that produced the herd.
	Dimension string
	// ID is the herd's index within its dimension.
	ID int
	// Servers is the sorted member server keys.
	Servers []string
	// Density is the paper's w(C): 2|e| / (|v|(|v|-1)) over the dimension's
	// similarity graph restricted to the herd members.
	Density float64
	// SingleClient, when non-empty, marks a main-dimension herd formed by
	// the servers visited exclusively by this one client (Appendix C).
	SingleClient string
}

// Key returns a unique identifier of the herd across dimensions.
func (a *ASH) Key() string { return fmt.Sprintf("%s/%d", a.Dimension, a.ID) }

// Contains reports whether the herd includes the server (binary search over
// the sorted member list).
func (a *ASH) Contains(server string) bool {
	i := sort.SearchStrings(a.Servers, server)
	return i < len(a.Servers) && a.Servers[i] == server
}

// MineFunc extracts the ASHs of one dimension from its similarity graph.
// MineGraph (Louvain, the paper's choice) is the default; MineComponents is
// the connected-components baseline used by the ablation benchmarks.
type MineFunc func(dim string, sg *similarity.ServerGraph, seed int64) []ASH

// MineGraph extracts the ASHs of one dimension from its similarity graph:
// Louvain communities with >= 2 members, each annotated with its density.
// Herds are ordered by their smallest member for determinism.
func MineGraph(dim string, sg *similarity.ServerGraph, seed int64) []ASH {
	return herdsFromGroups(dim, sg, sg.G.Louvain(seed))
}

// MineComponents is the naive baseline: connected components instead of
// modularity communities. A single weak edge merges groups, so component
// herds are larger and less dense — the ablation that motivates Louvain.
func MineComponents(dim string, sg *similarity.ServerGraph, _ int64) []ASH {
	comps := sg.G.ConnectedComponents()
	labels := make([]int, sg.G.N())
	for ci, members := range comps {
		for _, v := range members {
			labels[v] = ci
		}
	}
	return herdsFromGroups(dim, sg, labels)
}

func herdsFromGroups(dim string, sg *similarity.ServerGraph, labels []int) []ASH {
	groups := make(map[int][]int)
	for node, l := range labels {
		groups[l] = append(groups[l], node)
	}
	var herds []ASH
	for _, members := range groups {
		if len(members) < 2 {
			continue
		}
		// Louvain communities are connected in practice, but guard against
		// a community with no internal edges (can happen when every member
		// is isolated yet got the same label): density 0 herds carry no
		// evidence, drop them.
		density := sg.G.SubgraphDensity(members)
		if density == 0 {
			continue
		}
		names := make([]string, len(members))
		for i, n := range members {
			names[i] = sg.Names[n]
		}
		sort.Strings(names)
		herds = append(herds, ASH{Dimension: dim, Servers: names, Density: density})
	}
	sort.Slice(herds, func(i, j int) bool { return herds[i].Servers[0] < herds[j].Servers[0] })
	for i := range herds {
		herds[i].ID = i
	}
	return herds
}

// Dimension produces a similarity graph for one relationship dimension.
type Dimension interface {
	// Name returns the dimension's unique name.
	Name() string
	// Build constructs the server-similarity graph from the index.
	Build(idx *trace.Index) *similarity.ServerGraph
}

// builtin adapts a build function to the Dimension interface.
type builtin struct {
	name  string
	build func(idx *trace.Index) *similarity.ServerGraph
}

func (b builtin) Name() string                                   { return b.name }
func (b builtin) Build(idx *trace.Index) *similarity.ServerGraph { return b.build(idx) }

// ClientDimension returns the main dimension (client-set similarity). An
// edge requires at least two shared clients unless the options say
// otherwise; servers with a single visitor are grouped by the dedicated
// single-client ASHs instead (Appendix C).
func ClientDimension(opts similarity.Options) Dimension {
	if opts.MinSharedFeatures == 0 {
		opts.MinSharedFeatures = 2
	}
	if opts.MinSimilarity == 0 {
		opts.MinSimilarity = similarity.DefaultClientMinSimilarity
	}
	return builtin{similarity.DimClient, func(idx *trace.Index) *similarity.ServerGraph {
		return similarity.BuildClientGraph(idx, opts)
	}}
}

// FileDimension returns the URI-file secondary dimension.
func FileDimension(opts similarity.Options) Dimension {
	return builtin{similarity.DimFile, func(idx *trace.Index) *similarity.ServerGraph {
		return similarity.BuildFileGraph(idx, opts)
	}}
}

// IPDimension returns the IP-address-set secondary dimension.
func IPDimension(opts similarity.Options) Dimension {
	return builtin{similarity.DimIP, func(idx *trace.Index) *similarity.ServerGraph {
		return similarity.BuildIPGraph(idx, opts)
	}}
}

// WhoisDimension returns the whois secondary dimension backed by reg.
func WhoisDimension(reg whois.Registry, opts similarity.Options) Dimension {
	return builtin{similarity.DimWhois, func(idx *trace.Index) *similarity.ServerGraph {
		return similarity.BuildWhoisGraph(idx, reg, opts)
	}}
}

// QueryDimension returns the optional query-parameter-pattern secondary
// dimension — the paper's suggested extension for the parameter-pattern
// campaigns its built-in dimensions miss (§V-A2). Register it with
// core.WithExtraDimension.
func QueryDimension(opts similarity.Options) Dimension {
	return builtin{similarity.DimQuery, func(idx *trace.Index) *similarity.ServerGraph {
		return similarity.BuildQueryGraph(idx, opts)
	}}
}

// UserAgentDimension returns the optional User-Agent secondary dimension
// (rare malware-specific UA strings shared across a campaign's servers).
func UserAgentDimension(opts similarity.Options) Dimension {
	return builtin{similarity.DimUserAgent, func(idx *trace.Index) *similarity.ServerGraph {
		return similarity.BuildUserAgentGraph(idx, opts)
	}}
}

// PayloadDimension returns the optional payload-similarity secondary
// dimension (§VI Extensions): servers serving the same captured payload
// digests are linked.
func PayloadDimension(opts similarity.Options) Dimension {
	return builtin{similarity.DimPayload, func(idx *trace.Index) *similarity.ServerGraph {
		return similarity.BuildPayloadGraph(idx, opts)
	}}
}

// TemporalDimension returns the optional temporal co-occurrence secondary
// dimension (§VI Extensions): servers one client contacts within the same
// short window are linked. It closes over the raw trace for timestamps.
func TemporalDimension(t *trace.Trace, opts similarity.Options) Dimension {
	return builtin{similarity.DimTemporal, func(idx *trace.Index) *similarity.ServerGraph {
		return similarity.BuildTemporalGraph(t, idx, opts)
	}}
}

// Miner mines ASHs for a main dimension and a set of secondary dimensions.
type Miner struct {
	main      Dimension
	secondary []Dimension
	seed      int64
	mine      MineFunc
}

// NewMiner returns a miner over the given dimensions. The main dimension is
// required; secondary dimensions may be empty (correlation will then find
// nothing, by design).
func NewMiner(main Dimension, secondary []Dimension, seed int64) (*Miner, error) {
	if main == nil {
		return nil, fmt.Errorf("herd: main dimension is required")
	}
	seen := map[string]bool{main.Name(): true}
	for _, d := range secondary {
		if seen[d.Name()] {
			return nil, fmt.Errorf("herd: duplicate dimension %q", d.Name())
		}
		seen[d.Name()] = true
	}
	return &Miner{
		main:      main,
		secondary: append([]Dimension(nil), secondary...),
		seed:      seed,
		mine:      MineGraph,
	}, nil
}

// SetMineFunc overrides the community extraction strategy (default Louvain).
func (m *Miner) SetMineFunc(fn MineFunc) {
	if fn != nil {
		m.mine = fn
	}
}

// Result holds the mined herds and graphs of all dimensions.
type Result struct {
	// MainDimension is the main dimension's name.
	MainDimension string
	// Main holds the main-dimension herds.
	Main []ASH
	// Secondary maps secondary dimension name -> its herds.
	Secondary map[string][]ASH
	// Graphs maps dimension name -> the similarity graph it was mined
	// from, kept for density computations and diagnostics.
	Graphs map[string]*similarity.ServerGraph
}

// Mine builds every dimension's similarity graph and extracts its ASHs.
// The dimensions are independent, so they are mined concurrently; results
// are collected positionally so the output is identical to a sequential
// run. Mine is MineContext without cancellation, with one worker per
// dimension.
//
// The main dimension additionally receives the single-client ASHs: for
// every client, the servers visited by that client alone form one herd
// (Appendix C — they are perfectly correlated through their sole visitor,
// which no pairwise similarity edge can express once edges require two
// shared clients).
func (m *Miner) Mine(idx *trace.Index) *Result {
	res, _ := m.MineContext(context.Background(), idx, 1+len(m.secondary))
	return res
}

// MineContext mines every dimension on a bounded worker pool. workers <= 0
// uses runtime.NumCPU(); the pool never exceeds the dimension count. The
// fan-out is deterministic: per-dimension results land in fixed slots
// keyed by registration order (dimension names are unique per NewMiner),
// so the Result is identical for any worker count.
//
// Cancellation is cooperative with per-dimension granularity: once ctx is
// done no further dimension build starts, in-flight builds finish, and
// MineContext returns (nil, ctx.Err()). A caller therefore waits at most
// one dimension's build beyond cancellation.
func (m *Miner) MineContext(ctx context.Context, idx *trace.Index, workers int) (*Result, error) {
	dims := append([]Dimension{m.main}, m.secondary...)
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(dims) {
		workers = len(dims)
	}
	type mined struct {
		graph *similarity.ServerGraph
		herds []ASH
	}
	results := make([]mined, len(dims))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// Drain without building once cancelled, so a job that
				// raced past the feeder's check cannot start a build.
				if ctx.Err() != nil {
					continue
				}
				d := dims[i]
				sg := d.Build(idx)
				results[i] = mined{graph: sg, herds: m.mine(d.Name(), sg, m.seed)}
			}
		}()
	}
feed:
	for i := range dims {
		// Checked before the select: when both cases are ready the select
		// picks randomly, which could keep feeding after cancellation.
		if ctx.Err() != nil {
			break
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &Result{
		MainDimension: m.main.Name(),
		Secondary:     make(map[string][]ASH, len(m.secondary)),
		Graphs:        make(map[string]*similarity.ServerGraph, 1+len(m.secondary)),
	}
	res.Graphs[m.main.Name()] = results[0].graph
	res.Main = results[0].herds
	res.Main = append(res.Main, SingleClientASHes(m.main.Name(), idx, len(res.Main))...)
	for i, d := range m.secondary {
		res.Graphs[d.Name()] = results[i+1].graph
		res.Secondary[d.Name()] = results[i+1].herds
	}
	return res, nil
}

// SingleClientASHes groups servers visited by exactly one client into one
// herd per client (herds need >= 2 servers). Density is 1: the members are
// fully associated through their single shared visitor. Herd IDs start at
// baseID to stay unique within the dimension.
func SingleClientASHes(dim string, idx *trace.Index, baseID int) []ASH {
	clientNames := idx.Syms.Clients.Names()
	byClient := make(map[string][]string)
	for key, info := range idx.Servers {
		if len(info.Clients) != 1 {
			continue
		}
		for c := range info.Clients {
			byClient[clientNames[c]] = append(byClient[clientNames[c]], key)
		}
	}
	clients := make([]string, 0, len(byClient))
	for c, servers := range byClient {
		if len(servers) >= 2 {
			clients = append(clients, c)
		}
	}
	sort.Strings(clients)
	herds := make([]ASH, 0, len(clients))
	for i, c := range clients {
		servers := byClient[c]
		sort.Strings(servers)
		herds = append(herds, ASH{
			Dimension:    dim,
			ID:           baseID + i,
			Servers:      servers,
			Density:      1,
			SingleClient: c,
		})
	}
	return herds
}

// SecondaryNames returns the secondary dimension names in registration order.
func (m *Miner) SecondaryNames() []string {
	out := make([]string, len(m.secondary))
	for i, d := range m.secondary {
		out[i] = d.Name()
	}
	return out
}

// MembershipIndex maps each server to the herd (at most one per dimension,
// since Louvain is a partition) that contains it.
type MembershipIndex map[string]map[string]*ASH // server -> dimension -> herd

// BuildMembership indexes herd membership for fast correlation.
func BuildMembership(res *Result) MembershipIndex {
	idx := make(MembershipIndex)
	add := func(herds []ASH) {
		for i := range herds {
			h := &herds[i]
			for _, s := range h.Servers {
				byDim := idx[s]
				if byDim == nil {
					byDim = make(map[string]*ASH, 4)
					idx[s] = byDim
				}
				byDim[h.Dimension] = h
			}
		}
	}
	add(res.Main)
	for _, herds := range res.Secondary {
		add(herds)
	}
	return idx
}
