// Package preprocess implements SMASH's traffic preprocessing stage
// (§III-A): second-level-domain aggregation (performed by trace.BuildIndex)
// and removal of very popular servers by the IDF popularity measure — the
// number of distinct clients contacting a server. The paper picks an IDF
// threshold of 200, which filters the handful of mega-popular benign
// services while keeping 99% of servers (Appendix A, Fig. 9).
package preprocess

import (
	"fmt"

	"smash/internal/stats"
	"smash/internal/trace"
)

// DefaultIDFThreshold is the paper's popularity cut: servers contacted by
// more than this many distinct clients are removed.
const DefaultIDFThreshold = 200

// Result reports what the preprocessing stage did.
type Result struct {
	// ServersBefore / ServersAfter count logical servers pre/post filter.
	ServersBefore, ServersAfter int
	// RequestsBefore / RequestsAfter count requests pre/post filter.
	RequestsBefore, RequestsAfter int
	// Removed lists the filtered (popular) server keys, sorted.
	Removed []string
}

// TrafficReduction is the fraction of requests removed, in [0,1].
func (r Result) TrafficReduction() float64 {
	if r.RequestsBefore == 0 {
		return 0
	}
	return 1 - float64(r.RequestsAfter)/float64(r.RequestsBefore)
}

// ServerRetention is the fraction of servers kept, in [0,1].
func (r Result) ServerRetention() float64 {
	if r.ServersBefore == 0 {
		return 0
	}
	return float64(r.ServersAfter) / float64(r.ServersBefore)
}

// Render formats the result for reports.
func (r Result) Render() string {
	return fmt.Sprintf(
		"preprocess: servers %d -> %d (%.1f%% kept), requests %d -> %d (%.1f%% removed)",
		r.ServersBefore, r.ServersAfter, 100*r.ServerRetention(),
		r.RequestsBefore, r.RequestsAfter, 100*r.TrafficReduction())
}

// FilterIDF removes servers whose IDF (distinct client count) exceeds
// threshold from the index, in place, and reports the reduction. A
// threshold <= 0 uses DefaultIDFThreshold.
func FilterIDF(idx *trace.Index, threshold int) Result {
	if threshold <= 0 {
		threshold = DefaultIDFThreshold
	}
	res := Result{
		ServersBefore:  len(idx.Servers),
		RequestsBefore: idx.RequestCount,
	}
	for _, key := range idx.ServerKeys() {
		if idx.Servers[key].IDF() > threshold {
			res.Removed = append(res.Removed, key)
		}
	}
	for _, key := range res.Removed {
		idx.Remove(key)
	}
	res.ServersAfter = len(idx.Servers)
	res.RequestsAfter = idx.RequestCount
	return res
}

// IDFHistogram returns the distribution of server IDF values (Fig. 9): for
// each server, one observation of its distinct-client count.
func IDFHistogram(idx *trace.Index) *stats.Histogram {
	h := stats.NewHistogram()
	for _, info := range idx.Servers {
		h.Add(info.IDF())
	}
	return h
}

// FilenameLengthHistogram returns the distribution of URI-file name lengths
// over the given servers (Fig. 10; the paper computes it over IDS-confirmed
// malicious servers to justify len=25). Unknown server keys are skipped.
func FilenameLengthHistogram(idx *trace.Index, servers []string) *stats.Histogram {
	h := stats.NewHistogram()
	names := idx.Syms.Files.Names()
	for _, key := range servers {
		info := idx.Servers[key]
		if info == nil {
			continue
		}
		for f := range info.Files {
			h.Add(len(names[f]))
		}
	}
	return h
}
