package preprocess

import (
	"fmt"
	"testing"
	"time"

	"smash/internal/trace"
)

// indexWithPopularity builds an index with one server contacted by n clients
// for each n in clientCounts, keyed srv0, srv1, ...
func indexWithPopularity(clientCounts []int) *trace.Index {
	tr := &trace.Trace{}
	for si, n := range clientCounts {
		for c := 0; c < n; c++ {
			tr.Requests = append(tr.Requests, trace.Request{
				Time:   time.Unix(0, 0),
				Client: fmt.Sprintf("client%d", c),
				Host:   fmt.Sprintf("srv%d.com", si),
				Status: 200,
			})
		}
	}
	return trace.BuildIndex(tr)
}

func TestFilterIDF(t *testing.T) {
	idx := indexWithPopularity([]int{5, 50, 300})
	res := FilterIDF(idx, 200)
	if res.ServersBefore != 3 || res.ServersAfter != 2 {
		t.Errorf("servers %d -> %d, want 3 -> 2", res.ServersBefore, res.ServersAfter)
	}
	if len(res.Removed) != 1 || res.Removed[0] != "srv2.com" {
		t.Errorf("Removed = %v, want [srv2.com]", res.Removed)
	}
	if _, ok := idx.Servers["srv2.com"]; ok {
		t.Error("popular server still in index")
	}
	if res.RequestsBefore != 355 || res.RequestsAfter != 55 {
		t.Errorf("requests %d -> %d, want 355 -> 55", res.RequestsBefore, res.RequestsAfter)
	}
	if red := res.TrafficReduction(); red < 0.8 {
		t.Errorf("TrafficReduction = %g, want > 0.8", red)
	}
	if keep := res.ServerRetention(); keep < 0.6 {
		t.Errorf("ServerRetention = %g", keep)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestFilterIDFDefaultThreshold(t *testing.T) {
	idx := indexWithPopularity([]int{150, 250})
	res := FilterIDF(idx, 0)
	if res.ServersAfter != 1 {
		t.Errorf("default threshold kept %d servers, want 1", res.ServersAfter)
	}
}

func TestFilterIDFBoundary(t *testing.T) {
	idx := indexWithPopularity([]int{200})
	res := FilterIDF(idx, 200)
	if res.ServersAfter != 1 {
		t.Error("server with IDF exactly at threshold must be kept")
	}
}

func TestFilterIDFEmpty(t *testing.T) {
	idx := trace.NewIndex()
	res := FilterIDF(idx, 200)
	if res.TrafficReduction() != 0 || res.ServerRetention() != 0 {
		t.Error("empty index ratios should be 0")
	}
}

func TestIDFHistogram(t *testing.T) {
	idx := indexWithPopularity([]int{1, 1, 5, 10})
	h := IDFHistogram(idx)
	if h.Total() != 4 {
		t.Errorf("Total = %d, want 4", h.Total())
	}
	if h.Max() != 10 {
		t.Errorf("Max = %d, want 10", h.Max())
	}
	if got := h.FractionAtMost(1); got != 0.5 {
		t.Errorf("FractionAtMost(1) = %g, want 0.5", got)
	}
}

func TestFilenameLengthHistogram(t *testing.T) {
	tr := &trace.Trace{Requests: []trace.Request{
		{Time: time.Unix(0, 0), Client: "c", Host: "a.com", Path: "/login.php", Status: 200},
		{Time: time.Unix(0, 0), Client: "c", Host: "a.com", Path: "/x/averyveryverylongobfuscatedname.php", Status: 200},
		{Time: time.Unix(0, 0), Client: "c", Host: "b.com", Path: "/short", Status: 200},
	}}
	idx := trace.BuildIndex(tr)
	h := FilenameLengthHistogram(idx, []string{"a.com", "missing.com"})
	if h.Total() != 2 {
		t.Errorf("Total = %d, want 2 (missing server skipped, b.com excluded)", h.Total())
	}
	if h.Max() != len("averyveryverylongobfuscatedname.php") {
		t.Errorf("Max = %d", h.Max())
	}
}
