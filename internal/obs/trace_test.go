package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

var traceBase = time.Date(2020, 9, 13, 0, 0, 0, 0, time.UTC)

func TestTracerRecordAndSnapshot(t *testing.T) {
	tr := NewTracer(8)
	tr.Window(3, traceBase, traceBase.Add(24*time.Hour))
	// Recorded out of order; Trace must sort by start time.
	tr.Record(3, "seal", traceBase.Add(2*time.Second), 50*time.Millisecond)
	tr.Record(3, "build", traceBase, 2*time.Second, "requests", "26")
	tr.Record(3, "detect", traceBase.Add(3*time.Second), time.Second)

	got := tr.Trace(3)
	if got == nil {
		t.Fatal("no trace for window 3")
	}
	if got.Window != 3 || !got.Start.Equal(traceBase) {
		t.Errorf("trace header = %+v", got)
	}
	phases := make([]string, len(got.Spans))
	for i, s := range got.Spans {
		phases[i] = s.Phase
	}
	if want := []string{"build", "seal", "detect"}; strings.Join(phases, ",") != strings.Join(want, ",") {
		t.Errorf("span order = %v, want %v", phases, want)
	}
	if got.Spans[0].Attrs["requests"] != "26" {
		t.Errorf("attrs = %v", got.Spans[0].Attrs)
	}
	if tr.Trace(99) != nil {
		t.Error("unknown window must return nil")
	}
	// The snapshot is a copy: mutating it must not corrupt the ring.
	got.Spans[0].Phase = "mutated"
	if tr.Trace(3).Spans[0].Phase != "build" {
		t.Error("Trace returned a live reference")
	}
}

func TestTracerEviction(t *testing.T) {
	tr := NewTracer(4)
	for seq := int64(0); seq < 10; seq++ {
		tr.Record(seq, "build", traceBase, time.Millisecond)
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring holds %d windows, want 4", len(recent))
	}
	if recent[0] != 9 || recent[3] != 6 {
		t.Errorf("recent = %v, want [9 8 7 6]", recent)
	}
	if tr.Trace(0) != nil {
		t.Error("window 0 should be evicted")
	}
}

func TestTracerNDJSONLog(t *testing.T) {
	var buf strings.Builder
	tr := NewTracer(4)
	tr.LogTo(&buf)
	tr.Record(1, "build", traceBase, 2*time.Second, "requests", "10")
	tr.Record(1, "seal", traceBase.Add(2*time.Second), 10*time.Millisecond)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("ndjson lines = %d, want 2", len(lines))
	}
	var rec struct {
		Window          int64             `json:"window"`
		Phase           string            `json:"phase"`
		DurationSeconds float64           `json:"durationSeconds"`
		Attrs           map[string]string `json:"attrs"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Window != 1 || rec.Phase != "build" || rec.DurationSeconds != 2 || rec.Attrs["requests"] != "10" {
		t.Errorf("ndjson record = %+v", rec)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int64) {
			defer wg.Done()
			for seq := int64(0); seq < 200; seq++ {
				tr.Record(seq, "build", traceBase, time.Millisecond)
				tr.Trace(seq)
				tr.Window(seq, traceBase, traceBase.Add(time.Hour))
			}
		}(int64(g))
	}
	wg.Wait()
	if got := tr.Trace(199); got == nil || len(got.Spans) != 4 {
		t.Errorf("trace 199 = %+v", got)
	}
}

func TestStartSpan(t *testing.T) {
	tr := NewTracer(4)
	end := tr.StartSpan(5, "store")
	time.Sleep(2 * time.Millisecond)
	end("bytes", "128")
	got := tr.Trace(5)
	if got == nil || len(got.Spans) != 1 {
		t.Fatalf("trace = %+v", got)
	}
	s := got.Spans[0]
	if s.Phase != "store" || s.DurationSeconds <= 0 || s.Attrs["bytes"] != "128" {
		t.Errorf("span = %+v", s)
	}
}
