package obs

import (
	"fmt"
	"os"
	"sync"
)

// RotatingWriter is a size-bounded log file: writes append to path until
// the next write would push it past maxBytes, at which point the file
// rotates — path moves to path.1, path.1 to path.2, and so on, keeping at
// most keep rotated segments — and a fresh file takes over. It bounds the
// -trace-log NDJSON stream on endless runs, where an unbounded file would
// eventually fill the disk.
//
// Writes are line-oriented: a single Write larger than maxBytes still
// goes out whole (to its own fresh file) rather than being split or
// dropped, so NDJSON lines stay intact across rotations.
type RotatingWriter struct {
	path     string
	maxBytes int64
	keep     int

	mu   sync.Mutex
	f    *os.File
	size int64
}

// NewRotatingWriter opens (or resumes appending to) path. maxBytes <= 0
// disables rotation; keep < 0 keeps no rotated segments (the old file is
// removed at rotation).
func NewRotatingWriter(path string, maxBytes int64, keep int) (*RotatingWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &RotatingWriter{path: path, maxBytes: maxBytes, keep: max(keep, 0), f: f, size: info.Size()}, nil
}

// Write implements io.Writer.
func (w *RotatingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.maxBytes > 0 && w.size > 0 && w.size+int64(len(p)) > w.maxBytes {
		if err := w.rotate(); err != nil {
			return 0, err
		}
	}
	n, err := w.f.Write(p)
	w.size += int64(n)
	return n, err
}

// rotate shifts path.i to path.i+1 (oldest first, dropping past keep),
// moves the active file to path.1, and opens a fresh one. Called with the
// lock held.
func (w *RotatingWriter) rotate() error {
	w.f.Close()
	if w.keep == 0 {
		os.Remove(w.path)
	} else {
		os.Remove(w.segment(w.keep))
		for i := w.keep - 1; i >= 1; i-- {
			os.Rename(w.segment(i), w.segment(i+1))
		}
		os.Rename(w.path, w.segment(1))
	}
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w.f, w.size = f, 0
	return nil
}

func (w *RotatingWriter) segment(i int) string {
	return fmt.Sprintf("%s.%d", w.path, i)
}

// Size returns the active file's current byte size (for the
// smash_trace_log_bytes gauge).
func (w *RotatingWriter) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Close closes the active file.
func (w *RotatingWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}
