package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRotatingWriterRotates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.ndjson")
	w, err := NewRotatingWriter(path, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	line := strings.Repeat("x", 39) + "\n" // 40 bytes; 2 fit per segment
	for i := 0; i < 9; i++ {
		if _, err := w.Write([]byte(line)); err != nil {
			t.Fatal(err)
		}
	}
	// 9 lines, 2 per full segment: active holds 1 line, .1 and .2 hold 2
	// each, the rest were dropped past keep=2.
	if got := w.Size(); got != 40 {
		t.Errorf("active size = %d, want 40", got)
	}
	for seg, want := range map[string]int64{path: 40, path + ".1": 80, path + ".2": 80} {
		info, err := os.Stat(seg)
		if err != nil {
			t.Errorf("%s: %v", seg, err)
			continue
		}
		if info.Size() != want {
			t.Errorf("%s: size = %d, want %d", seg, info.Size(), want)
		}
	}
	if _, err := os.Stat(path + ".3"); !os.IsNotExist(err) {
		t.Errorf("segment past keep bound exists (err=%v)", err)
	}
}

func TestRotatingWriterKeepsLinesIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.ndjson")
	w, err := NewRotatingWriter(path, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	big := strings.Repeat("y", 120) + "\n" // larger than maxBytes
	if _, err := w.Write([]byte("first\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte(big)); err != nil {
		t.Fatal(err)
	}
	// The oversized line rotated the small file out and went out whole.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != big {
		t.Errorf("active file = %q, want the oversized line intact", string(data))
	}
	prev, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatal(err)
	}
	if string(prev) != "first\n" {
		t.Errorf("rotated segment = %q, want %q", string(prev), "first\n")
	}
}

func TestRotatingWriterResumesAppending(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.ndjson")
	for i := 0; i < 2; i++ {
		w, err := NewRotatingWriter(path, 1000, 1)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(w, "run-%d\n", i)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "run-0\nrun-1\n" {
		t.Errorf("reopened file = %q, want both runs appended", string(data))
	}
}
