// Package obs is SMASH's observability core: a dependency-free metrics
// registry (atomic counters, gauges and log-bucketed latency histograms
// rendered in Prometheus text format), a window-lifecycle span tracer, and
// structured-logging helpers on log/slog. Every long-running component —
// the stream engine, the cluster forwarder and aggregator, the store sink
// and the HTTP ops API — instruments itself through this package, so one
// /metrics scrape and one /v1/windows/{seq}/trace fetch answer "where is
// my latency and what happened to window N" without a debugger.
//
// The package imports only the standard library and sits below every other
// internal package; nothing in it knows about traces, windows or
// campaigns. Instrument methods on nil receivers are no-ops, so call sites
// stay unconditional and a component built without a registry pays only a
// nil check.
package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing float64 (atomic; safe for
// concurrent Add and scrape). Prometheus type: counter.
type Counter struct {
	bits atomic.Uint64
}

// Add increments the counter by v (no-op on a nil receiver or negative v).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a settable float64 (atomic; safe for concurrent Set and
// scrape). Prometheus type: gauge.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v (no-op on a nil receiver).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last value set.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram buckets: geometric, growing by 2^(1/4) (~19%) per bucket from
// 1µs, so 144 upper bounds span 1µs to ~18h and any quantile read off the
// buckets is within one growth factor of the exact value. Values at or
// under histMin land in bucket 0; values past the last bound land in the
// implicit +Inf bucket.
const (
	histMin     = 1e-6 // seconds
	histBuckets = 144
)

var (
	histBounds  [histBuckets]float64
	invLnGrowth float64
)

func init() {
	growth := math.Pow(2, 0.25)
	invLnGrowth = 1 / math.Log(growth)
	b := histMin
	for i := range histBounds {
		histBounds[i] = b
		b *= growth
	}
}

// Histogram is a log-bucketed latency histogram in seconds: lock-free
// Observe, Prometheus histogram rendering (cumulative le buckets, sum,
// count) and quantile extraction accurate to one bucket's relative error
// (~19%). Safe for concurrent Observe and scrape.
type Histogram struct {
	counts [histBuckets + 1]atomic.Uint64 // last entry is the +Inf bucket
	sum    Counter
	count  atomic.Uint64
}

// bucketIndex maps a value in seconds to its bucket.
func bucketIndex(v float64) int {
	if v <= histMin {
		return 0
	}
	i := int(math.Ceil(math.Log(v/histMin)*invLnGrowth - 1e-9))
	if i > histBuckets {
		i = histBuckets
	}
	return i
}

// Observe records one value in seconds (no-op on a nil receiver; negative
// and NaN values are dropped).
func (h *Histogram) Observe(seconds float64) {
	if h == nil || math.IsNaN(seconds) || seconds < 0 {
		return
	}
	h.counts[bucketIndex(seconds)].Add(1)
	h.sum.Add(seconds)
	h.count.Add(1)
}

// ObserveSince records the wall-clock elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values in seconds.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Quantile returns the q-th quantile (0 <= q <= 1) of the observed values:
// the geometric midpoint of the bucket holding the q-th sample, which is
// within one bucket growth factor (~19%) of the exact order statistic.
// Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	var counts [histBuckets + 1]uint64
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			switch i {
			case 0:
				return histBounds[0]
			case histBuckets:
				return histBounds[histBuckets-1]
			default:
				return math.Sqrt(histBounds[i-1] * histBounds[i])
			}
		}
	}
	return histBounds[histBuckets-1] // unreachable
}

// Emit publishes one sample from a Func collector; labels are alternating
// key, value pairs appended to the family's name.
type Emit func(value float64, labels ...string)

// metric kinds, driving the rendered # TYPE line.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one named metric family: help, type and either concrete label
// series or a scrape-time collector.
type family struct {
	name, help, kind string

	mu     sync.Mutex
	series map[string]any // label signature -> *Counter / *Gauge / *Histogram

	collect func(Emit) // set for CounterFunc/GaugeFunc families
}

// Registry holds metric families and renders them as Prometheus text
// exposition format. Safe for concurrent registration, updates and
// scrapes. The zero Registry is not usable; create with NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// lookup returns the family, creating it on first use; a name reused with
// a different kind panics — that is a wiring bug, not a runtime condition.
func (r *Registry) lookup(name, help, kind string) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]any)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.kind, kind))
	}
	return f
}

// labelSignature renders alternating key, value pairs as a canonical
// `k1="v1",k2="v2"` string (the series key and the rendered label set).
func labelSignature(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be alternating key, value pairs")
	}
	var b strings.Builder
	for i := 0; i < len(labels); i += 2 {
		if !nameRE.MatchString(labels[i]) {
			panic(fmt.Sprintf("obs: invalid label name %q", labels[i]))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// Counter returns the counter series for name + labels, registering the
// family (with help) on first use. Repeated calls with the same name and
// labels return the same Counter.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	f := r.lookup(name, help, kindCounter)
	sig := labelSignature(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.series[sig]; ok {
		return c.(*Counter)
	}
	c := &Counter{}
	f.series[sig] = c
	return c
}

// Gauge returns the gauge series for name + labels, registering the family
// on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	f := r.lookup(name, help, kindGauge)
	sig := labelSignature(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if g, ok := f.series[sig]; ok {
		return g.(*Gauge)
	}
	g := &Gauge{}
	f.series[sig] = g
	return g
}

// Histogram returns the histogram series for name + labels, registering
// the family on first use.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	f := r.lookup(name, help, kindHistogram)
	sig := labelSignature(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if h, ok := f.series[sig]; ok {
		return h.(*Histogram)
	}
	h := &Histogram{}
	f.series[sig] = h
	return h
}

// CounterFunc registers a scrape-time counter collector: collect is called
// on every render and emits any number of samples (with per-sample
// labels), which makes it the bridge for components that already keep
// their own atomic counters and for dynamic label sets (e.g. per-node
// series). Re-registering the same name replaces the collector.
func (r *Registry) CounterFunc(name, help string, collect func(Emit)) {
	f := r.lookup(name, help, kindCounter)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.collect = collect
}

// GaugeFunc registers a scrape-time gauge collector (see CounterFunc).
func (r *Registry) GaugeFunc(name, help string, collect func(Emit)) {
	f := r.lookup(name, help, kindGauge)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.collect = collect
}

// formatValue renders a sample value the Prometheus way.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in name order: # HELP and # TYPE
// first, then the family's series (static series in label order, collector
// series in emission order). Histograms render cumulative non-empty
// buckets plus +Inf, _sum and _count per series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		f.render(&b)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// render writes one family's exposition block.
func (f *family) render(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)

	f.mu.Lock()
	collect := f.collect
	sigs := make([]string, 0, len(f.series))
	for s := range f.series {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	type snap struct {
		sig string
		m   any
	}
	series := make([]snap, 0, len(sigs))
	for _, s := range sigs {
		series = append(series, snap{s, f.series[s]})
	}
	f.mu.Unlock()

	if collect != nil {
		collect(func(v float64, labels ...string) {
			writeSample(b, f.name, labelSignature(labels), v)
		})
		return
	}
	for _, s := range series {
		switch m := s.m.(type) {
		case *Counter:
			writeSample(b, f.name, s.sig, m.Value())
		case *Gauge:
			writeSample(b, f.name, s.sig, m.Value())
		case *Histogram:
			m.render(b, f.name, s.sig)
		}
	}
}

// writeSample renders one `name{labels} value` line.
func writeSample(b *strings.Builder, name, sig string, v float64) {
	b.WriteString(name)
	if sig != "" {
		b.WriteByte('{')
		b.WriteString(sig)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

// render writes one histogram series: cumulative buckets for every
// non-empty bucket bound plus the mandatory +Inf, then _sum and _count.
// Counts are snapshotted once so the +Inf bucket always equals _count even
// while observes race the scrape.
func (h *Histogram) render(b *strings.Builder, name, sig string) {
	var counts [histBuckets + 1]uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	var cum uint64
	withLE := func(le string) string {
		if sig == "" {
			return `le="` + le + `"`
		}
		return sig + `,le="` + le + `"`
	}
	for i := 0; i < histBuckets; i++ {
		if counts[i] == 0 {
			continue
		}
		cum += counts[i]
		writeSampleCount(b, name+"_bucket", withLE(formatValue(histBounds[i])), cum)
	}
	cum += counts[histBuckets]
	writeSampleCount(b, name+"_bucket", withLE("+Inf"), cum)
	writeSample(b, name+"_sum", sig, h.sum.Value())
	writeSampleCount(b, name+"_count", sig, cum)
}

func writeSampleCount(b *strings.Builder, name, sig string, v uint64) {
	b.WriteString(name)
	if sig != "" {
		b.WriteByte('{')
		b.WriteString(sig)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(v, 10))
	b.WriteByte('\n')
}

// RegisterRuntimeMetrics adds Go runtime health series to the registry:
// goroutine count, heap bytes, cumulative GC pause seconds and GC cycles.
// Values are collected at scrape time.
func RegisterRuntimeMetrics(r *Registry) {
	r.GaugeFunc("smash_go_goroutines",
		"Number of live goroutines.",
		func(emit Emit) { emit(float64(runtime.NumGoroutine())) })
	r.GaugeFunc("smash_go_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func(emit Emit) {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			emit(float64(ms.HeapAlloc))
		})
	r.CounterFunc("smash_go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time.",
		func(emit Emit) {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			emit(float64(ms.PauseTotalNs) / 1e9)
		})
	r.CounterFunc("smash_go_gcs_total",
		"Completed GC cycles.",
		func(emit Emit) {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			emit(float64(ms.NumGC))
		})
}
