package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one recorded phase of a window's lifecycle: build (first event
// to seal), seal (fragment merge), detect and detect:<stage>, store
// (sink append), forward (fragment delivery), fragments (aggregator
// fragment wait) and merge (aggregator fold).
type Span struct {
	// Phase names the lifecycle step.
	Phase string `json:"phase"`
	// Start is the span's wall-clock start.
	Start time.Time `json:"start"`
	// DurationSeconds is the span's wall-clock length.
	DurationSeconds float64 `json:"durationSeconds"`
	// Attrs carries optional key/value detail (request counts, errors).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// WindowTrace is the span timeline of one window, keyed by the window's
// emitted sequence number — the same seq the store records and
// /v1/windows/latest reports.
type WindowTrace struct {
	// Window is the emitted window sequence number.
	Window int64 `json:"window"`
	// Start/End are the window's event-time bounds (zero until the window
	// seals).
	Start time.Time `json:"start,omitzero"`
	End   time.Time `json:"end,omitzero"`
	// Spans is the recorded timeline, ordered by span start time.
	Spans []Span `json:"spans"`
}

// Tracer records window-lifecycle spans into a bounded ring of recent
// windows and optionally appends every span to an NDJSON log. All methods
// are safe for concurrent use and no-ops on a nil receiver, so components
// take a *Tracer and never guard call sites.
type Tracer struct {
	mu     sync.Mutex
	limit  int
	traces map[int64]*WindowTrace

	logMu sync.Mutex
	log   io.Writer
}

// DefaultTraceWindows is the default ring capacity: enough to hold every
// window an operator might ask about while debugging a live incident,
// small enough to be invisible in memory.
const DefaultTraceWindows = 256

// NewTracer returns a tracer keeping the most recent limit windows
// (DefaultTraceWindows when limit <= 0).
func NewTracer(limit int) *Tracer {
	if limit <= 0 {
		limit = DefaultTraceWindows
	}
	return &Tracer{limit: limit, traces: make(map[int64]*WindowTrace)}
}

// LogTo streams every subsequently recorded span to w as one NDJSON line:
// {"window":N,"phase":"...","start":"...","durationSeconds":...}.
func (t *Tracer) LogTo(w io.Writer) {
	if t == nil {
		return
	}
	t.logMu.Lock()
	t.log = w
	t.logMu.Unlock()
}

// trace returns the ring entry for seq, creating it (and evicting the
// oldest entries past the limit) on first use. Caller holds mu.
func (t *Tracer) trace(seq int64) *WindowTrace {
	tr := t.traces[seq]
	if tr != nil {
		return tr
	}
	tr = &WindowTrace{Window: seq}
	t.traces[seq] = tr
	for len(t.traces) > t.limit {
		oldest := seq
		for s := range t.traces {
			if s < oldest {
				oldest = s
			}
		}
		delete(t.traces, oldest)
	}
	return tr
}

// Window stamps the window's event-time bounds on its trace.
func (t *Tracer) Window(seq int64, start, end time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	tr := t.trace(seq)
	tr.Start, tr.End = start, end
	t.mu.Unlock()
}

// Record adds one completed span to window seq's trace. attrs are
// alternating key, value pairs; a trailing odd key is dropped.
func (t *Tracer) Record(seq int64, phase string, start time.Time, d time.Duration, attrs ...string) {
	if t == nil {
		return
	}
	span := Span{Phase: phase, Start: start, DurationSeconds: d.Seconds()}
	if len(attrs) >= 2 {
		span.Attrs = make(map[string]string, len(attrs)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			span.Attrs[attrs[i]] = attrs[i+1]
		}
	}
	t.mu.Lock()
	tr := t.trace(seq)
	tr.Spans = append(tr.Spans, span)
	t.mu.Unlock()

	t.logMu.Lock()
	w := t.log
	if w != nil {
		line := struct {
			Window int64 `json:"window"`
			Span
		}{seq, span}
		if data, err := json.Marshal(line); err == nil {
			w.Write(append(data, '\n'))
		}
	}
	t.logMu.Unlock()
}

// StartSpan begins a span now and returns the function that completes it;
// attrs given at completion are attached to the recorded span.
func (t *Tracer) StartSpan(seq int64, phase string) func(attrs ...string) {
	if t == nil {
		return func(...string) {}
	}
	start := time.Now()
	return func(attrs ...string) {
		t.Record(seq, phase, start, time.Since(start), attrs...)
	}
}

// Trace returns a deep copy of window seq's trace with spans ordered by
// start time (ties broken by phase name), or nil when the window is
// unknown or already evicted.
func (t *Tracer) Trace(seq int64) *WindowTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	tr := t.traces[seq]
	var out *WindowTrace
	if tr != nil {
		out = &WindowTrace{Window: tr.Window, Start: tr.Start, End: tr.End,
			Spans: append([]Span(nil), tr.Spans...)}
	}
	t.mu.Unlock()
	if out == nil {
		return nil
	}
	sort.SliceStable(out.Spans, func(i, j int) bool {
		if !out.Spans[i].Start.Equal(out.Spans[j].Start) {
			return out.Spans[i].Start.Before(out.Spans[j].Start)
		}
		return out.Spans[i].Phase < out.Spans[j].Phase
	})
	return out
}

// Recent returns the sequence numbers currently held in the ring, newest
// first.
func (t *Tracer) Recent() []int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]int64, 0, len(t.traces))
	for s := range t.traces {
		out = append(out, s)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}
