package obs

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// quantile tolerance: one bucket growth factor (2^(1/4) ≈ 1.19) on either
// side of the exact order statistic, with a little float headroom.
const quantileTol = 1.27

// oracle computes the exact order statistic the histogram approximates.
func oracle(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

func checkQuantiles(t *testing.T, name string, values []float64) {
	t.Helper()
	h := &Histogram{}
	for _, v := range values {
		h.Observe(v)
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		want := oracle(sorted, q)
		got := h.Quantile(q)
		lo, hi := want/quantileTol, want*quantileTol
		if got < lo || got > hi {
			t.Errorf("%s: p%g = %g, want within [%g, %g] of oracle %g",
				name, q*100, got, lo, hi, want)
		}
	}
}

// TestHistogramQuantilesVsOracle checks p50/p90/p99 against a
// sorted-slice oracle across distributions spanning microseconds to
// minutes.
func TestHistogramQuantilesVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 20000

	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = 1e-5 + rng.Float64()*0.5 // 10µs .. 500ms
	}
	checkQuantiles(t, "uniform", uniform)

	exponential := make([]float64, n)
	for i := range exponential {
		exponential[i] = 1e-4 * rng.ExpFloat64() // mean 100µs, long tail
	}
	checkQuantiles(t, "exponential", exponential)

	lognormal := make([]float64, n)
	for i := range lognormal {
		lognormal[i] = math.Exp(rng.NormFloat64()*1.5 - 6) // median ~2.5ms
	}
	checkQuantiles(t, "lognormal", lognormal)

	bimodal := make([]float64, n)
	for i := range bimodal {
		if i%10 == 0 {
			bimodal[i] = 2 + rng.Float64() // slow mode: seconds
		} else {
			bimodal[i] = 1e-4 + rng.Float64()*1e-3
		}
	}
	checkQuantiles(t, "bimodal", bimodal)
}

func TestHistogramEdgeCases(t *testing.T) {
	h := &Histogram{}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram p50 = %g, want 0", got)
	}
	h.Observe(-1)         // dropped
	h.Observe(math.NaN()) // dropped
	if h.Count() != 0 {
		t.Errorf("count after invalid observes = %d", h.Count())
	}
	h.Observe(0) // clamps into the first bucket
	if got := h.Quantile(0.5); got != histMin {
		t.Errorf("p50 of a zero observation = %g, want %g", got, histMin)
	}
	h.Observe(1e9) // past the last bound: +Inf bucket
	if got := h.Quantile(1); got != histBounds[histBuckets-1] {
		t.Errorf("p100 of overflow = %g, want last bound %g", got, histBounds[histBuckets-1])
	}
	if h.Count() != 2 {
		t.Errorf("count = %d, want 2", h.Count())
	}
}

// TestNilInstrumentsAreNoOps: every instrument must be callable through a
// nil pointer so unwired components pay only a nil check.
func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Add(1)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter value")
	}
	var g *Gauge
	g.Set(3)
	if g.Value() != 0 {
		t.Error("nil gauge value")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram")
	}
	var tr *Tracer
	tr.Window(0, time.Time{}, time.Time{})
	tr.Record(0, "x", time.Now(), time.Second)
	tr.StartSpan(0, "x")()
	tr.LogTo(nil)
	if tr.Trace(0) != nil || tr.Recent() != nil {
		t.Error("nil tracer")
	}
}

func TestRegistryRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("smash_test_total", "A test counter.").Add(3)
	r.Counter("smash_test_labeled_total", "A labeled counter.", "kind", "a").Add(1)
	r.Counter("smash_test_labeled_total", "A labeled counter.", "kind", "b").Add(2)
	r.Gauge("smash_test_gauge", "A gauge.").Set(0.25)
	r.Histogram("smash_test_seconds", "A histogram.").Observe(0.004)
	r.GaugeFunc("smash_test_func", "A collector.", func(emit Emit) {
		emit(7, "node", "n0")
		emit(9, "node", "n1")
	})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	for _, want := range []string{
		"# HELP smash_test_total A test counter.\n",
		"# TYPE smash_test_total counter\n",
		"smash_test_total 3\n",
		`smash_test_labeled_total{kind="a"} 1`,
		`smash_test_labeled_total{kind="b"} 2`,
		"smash_test_gauge 0.25\n",
		"# TYPE smash_test_seconds histogram\n",
		`smash_test_seconds_bucket{le="+Inf"} 1`,
		"smash_test_seconds_sum 0.004\n",
		"smash_test_seconds_count 1\n",
		`smash_test_func{node="n0"} 7`,
		`smash_test_func{node="n1"} 9`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("render missing %q in:\n%s", want, body)
		}
	}
	// Families render in name order, HELP before TYPE before samples.
	if strings.Index(body, "smash_test_gauge") > strings.Index(body, "smash_test_total") {
		t.Error("families not sorted by name")
	}
}

func TestRegistryIdempotentSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("smash_same_total", "h", "k", "v")
	b := r.Counter("smash_same_total", "h", "k", "v")
	if a != b {
		t.Error("same name+labels must return the same series")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind conflict must panic")
		}
	}()
	r.Gauge("smash_same_total", "h")
}

// TestRegistryRace hammers one registry with concurrent increments,
// observes and scrapes; run under -race this is the registry's data-race
// proof.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("smash_race_total", "h")
	h := r.Histogram("smash_race_seconds", "h")
	g := r.Gauge("smash_race_gauge", "h")
	RegisterRuntimeMetrics(r)

	var writers, scrapers sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < 5000; j++ {
				c.Inc()
				h.Observe(rng.Float64())
				g.Set(rng.Float64())
				// New labeled series mid-scrape exercise family locking.
				r.Counter("smash_race_labeled_total", "h", "w", string(rune('a'+seed))).Inc()
			}
		}(int64(i))
	}
	for i := 0; i < 2; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	scrapers.Wait()
	if c.Value() != 4*5000 {
		t.Errorf("counter = %g, want %d", c.Value(), 4*5000)
	}
	if h.Count() != 4*5000 {
		t.Errorf("histogram count = %d", h.Count())
	}
}
