package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the daemon's root structured logger on log/slog.
// format is "text" or "json"; level is "debug", "info", "warn" or
// "error". Components derive children with logger.With("component", ...),
// so every line carries its origin.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}

// Discard is a logger that drops everything — the default for components
// built without a configured logger, so call sites never nil-check.
func Discard() *slog.Logger { return slog.New(slog.DiscardHandler) }
