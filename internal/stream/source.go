package stream

import (
	"io"
	"time"

	"smash/internal/trace"
)

// Source yields HTTP request events in arrival order, returning io.EOF when
// the stream ends. *trace.Reader satisfies Source, so any TSV trace file
// (or stdin pipe) is directly ingestible.
type Source interface {
	Read() (trace.Request, error)
}

var _ Source = (*trace.Reader)(nil)

// SliceSource replays an in-memory request slice (e.g. a synthesized
// trace's Requests) in order.
type SliceSource struct {
	Requests []trace.Request
	pos      int
}

// Read returns the next request or io.EOF.
func (s *SliceSource) Read() (trace.Request, error) {
	if s.pos >= len(s.Requests) {
		return trace.Request{}, io.EOF
	}
	r := s.Requests[s.pos]
	s.pos++
	return r, nil
}

// MultiSource concatenates sources in order, reading each to exhaustion
// before moving on — how smashd replays day1.tsv day2.tsv … as one stream.
type MultiSource struct {
	Sources []Source
	pos     int
}

// Read returns the next request across all sources, or io.EOF after the
// last source ends.
func (m *MultiSource) Read() (trace.Request, error) {
	for m.pos < len(m.Sources) {
		r, err := m.Sources[m.pos].Read()
		if err == io.EOF {
			m.pos++
			continue
		}
		return r, err
	}
	return trace.Request{}, io.EOF
}

// PacedSource throttles replay so event spacing approximates recorded time
// divided by Speedup: Speedup 86400 replays a day per second, Speedup 1 in
// real time. Speedup <= 0 disables pacing. Gaps are measured between
// consecutive event timestamps, so out-of-order events never sleep.
type PacedSource struct {
	Src     Source
	Speedup float64
	prev    time.Time
}

// Read returns the next request after the paced delay.
func (p *PacedSource) Read() (trace.Request, error) {
	r, err := p.Src.Read()
	if err != nil {
		return r, err
	}
	if p.Speedup > 0 {
		if !p.prev.IsZero() {
			if gap := r.Time.Sub(p.prev); gap > 0 {
				time.Sleep(time.Duration(float64(gap) / p.Speedup))
			}
		}
		p.prev = r.Time
	}
	return r, nil
}
